# The corrected sector (examples/sources.ml): respects the Valve protocol
# and its own claim. Part of the CI lint gate — it must stay free of
# error-severity findings.
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)
        self.clean = Pin(28, OUT)
        self.status = Pin(29, IN)

    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        self.control.on()
        return ["close"]

    @op_final
    def close(self):
        self.control.off()
        return ["test"]

    @op_final
    def clean(self):
        self.clean.on()
        return ["test"]


@claim("(!a.open) W b.open")
@sys(["a", "b"])
class GoodSector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial
    def start(self):
        match self.b.test():
            case ["open"]:
                self.b.open()
                return ["open_a", "drain"]
            case ["clean"]:
                self.b.clean()
                return ["abort"]

    @op
    def open_a(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                return ["shutdown"]
            case ["clean"]:
                self.a.clean()
                return ["drain"]

    @op_final
    def shutdown(self):
        self.a.close()
        self.b.close()
        return ["start"]

    @op_final
    def drain(self):
        self.b.close()
        return ["start"]

    @op_final
    def abort(self):
        return ["start"]
