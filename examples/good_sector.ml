(* A corrected sector that passes verification, plus the paper's Listing 3.1
   Sector whose dependency graph is Figure 3.

   Run with:  dune exec examples/good_sector.exe *)

let () =
  print_endline "=== GoodSector: a sector that verifies ===\n";
  let result =
    Pipeline.verify_source_exn (Sources.valve ^ Sources.good_sector)
  in
  (match Report.errors result.Pipeline.reports with
  | [] -> print_endline "verified: no errors — both valves always released, claim holds\n"
  | errors ->
    List.iter (fun r -> Format.printf "%a@.@." Report.pp r) errors;
    failwith "GoodSector unexpectedly failed verification");

  let good = Option.get (Pipeline.find_model result "GoodSector") in

  (* Show a few valid end-to-end usages and what each valve observes. *)
  let expanded = Usage.expanded_nfa good in
  print_endline "--- shortest complete usages of GoodSector ---";
  let words = Nfa.words_upto ~max_len:7 expanded in
  Trace.Set.iter
    (fun w -> if w <> [] then Format.printf "  %s@." (Trace.to_string w))
    words;

  (* The claim holds on every bounded subsystem-call trace. *)
  let claim = Ltl_parser.parse "(!a.open) W b.open" in
  let calls_only = Claims.subsystem_call_nfa good in
  Format.printf "@.claim '(!a.open) W b.open' holds on all call traces up to length 8: %b@."
    (Ltl_check.holds_on_all_words ~max_len:8 claim calls_only);

  (* Listing 3.1 and its §3.1 dependency graph (Figure 3). *)
  print_endline "\n=== Listing 3.1 Sector: method dependency graph (Figure 3) ===\n";
  let listing =
    Pipeline.verify_source_exn (Sources.valve ^ Sources.listing31_sector)
  in
  let sector = Option.get (Pipeline.find_model listing "Sector") in
  let graph = Depgraph.of_model sector in
  Format.printf "%a@." Depgraph.pp graph;
  print_endline "--- Figure 3 (DOT) ---";
  print_string (Dot.of_depgraph sector)
