(* The paper's running failure (§2.2): BadSector (Listing 2.2) misuses its
   two valves and violates its temporal claim. This example reproduces both
   error transcripts and the Figure 2 diagram.

   Run with:  dune exec examples/bad_sector.exe *)

let () =
  print_endline "=== BadSector (Listing 2.2): both paper errors ===\n";
  let result =
    Pipeline.verify_source_exn (Sources.valve ^ Sources.bad_sector)
  in

  (* The paper's two transcripts. *)
  List.iter
    (fun report -> Format.printf "%a@.@." Report.pp report)
    (Report.errors result.Pipeline.reports);

  (* Explain the subsystem failure against the Valve specification. *)
  let bad = Option.get (Pipeline.find_model result "BadSector") in
  let valve = Option.get (Pipeline.find_model result "Valve") in
  let expanded = Usage.expanded_nfa bad in
  print_endline "--- why: some complete BadSector traces and valve a's view ---";
  let explain names =
    let trace = Trace.of_names names in
    let accepted = Nfa.accepts expanded trace in
    let projected = Usage.project_subsystem ~field:"a" trace in
    let valve_view = Trace.of_names projected in
    let valve_ok = Nfa.accepts (Depgraph.usage_nfa valve) valve_view in
    Format.printf "  %-60s %-9s a sees: %-22s %s@." (Trace.to_string trace)
      (if accepted then "possible," else "(not a trace)")
      (String.concat ", " projected)
      (if accepted then (if valve_ok then "valid" else "INVALID") else "")
  in
  explain [ "open_a"; "a.test"; "a.open" ];
  explain [ "open_a"; "a.test"; "a.clean" ];
  explain
    [ "open_a"; "a.test"; "a.open"; "open_b"; "b.test"; "b.open"; "a.close"; "b.close" ];

  (* Check the paper's own (longer) claim counterexample against our claim
     semantics: it must violate the formula too. *)
  let formula = Ltl_parser.parse "(!a.open) W b.open" in
  let paper_counterexample =
    Trace.of_names [ "a.test"; "a.open"; "b.open"; "b.test"; "b.open"; "a.close"; "b.close" ]
  in
  Format.printf "@.paper's claim counterexample still violates the formula: %b@."
    (not (Ltlf.holds formula paper_counterexample));

  (* Figure 2: the BadSector diagram. *)
  print_endline "\n--- Figure 2 (DOT) ---";
  print_string (Dot.of_model bad);

  (* NuSMV translation (the paper's §5 back end). *)
  print_endline "\n--- NuSMV model (excerpt) ---";
  let smv = Nusmv.model_of_class bad in
  String.split_on_char '\n' smv
  |> List.filteri (fun i _ -> i < 12)
  |> List.iter print_endline;
  Printf.printf "... (%d lines total)\n" (List.length (String.split_on_char '\n' smv))
