(* The paper's motivating scenario (§2): a battery-operated wireless
   controller that switches water valves according to an irrigation plan.
   This example builds a three-level hierarchy — Valve/Battery/Radio base
   classes, a Sector composite over two valves, and a Controller composite
   over battery + radio + sector — verifies it, checks two temporal claims,
   and then injects a fault (a report method that forgets to disconnect the
   radio) to show the resulting error.

   Run with:  dune exec examples/irrigation.exe *)

let battery =
  {|
@sys
class Battery:
    def __init__(self):
        self.adc = ADC(0)

    @op_initial
    def check(self):
        if self.adc.read() > 3300:
            return ["ok"]
        else:
            return ["low"]

    @op_final
    def ok(self):
        return ["check"]

    @op_final
    def low(self):
        return ["check"]
|}

let radio =
  {|
@sys
class Radio:
    def __init__(self):
        self.lora = LoRa()

    @op_initial
    def connect(self):
        self.lora.up()
        return ["send", "disconnect"]

    @op
    def send(self):
        self.lora.tx()
        return ["send", "disconnect"]

    @op_final
    def disconnect(self):
        self.lora.down()
        return ["connect"]
|}

let sector =
  {|
@sys(["a", "b"])
class Sector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial
    def start(self):
        match self.b.test():
            case ["open"]:
                self.b.open()
                return ["open_a", "drain"]
            case ["clean"]:
                self.b.clean()
                return ["abort"]

    @op
    def open_a(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                return ["shutdown"]
            case ["clean"]:
                self.a.clean()
                return ["drain"]

    @op_final
    def shutdown(self):
        self.a.close()
        self.b.close()
        return ["start"]

    @op_final
    def drain(self):
        self.b.close()
        return ["start"]

    @op_final
    def abort(self):
        return ["start"]
|}

let controller =
  {|
@claim("(!s.open_a) W s.start")
@claim("G (s.start -> F radio.connect)")
@sys(["batt", "radio", "s"])
class Controller:
    def __init__(self):
        self.batt = Battery()
        self.radio = Radio()
        self.s = Sector()

    @op_initial
    def boot(self):
        match self.batt.check():
            case ["ok"]:
                self.batt.ok()
                return ["irrigate"]
            case ["low"]:
                self.batt.low()
                return ["sleep"]

    @op
    def irrigate(self):
        match self.s.start():
            case ["open_a", "drain"]:
                match self.s.open_a():
                    case ["shutdown"]:
                        self.s.shutdown()
                        return ["report"]
                    case ["drain"]:
                        self.s.drain()
                        return ["report"]
            case ["abort"]:
                self.s.abort()
                return ["report"]

    @op_final
    def report(self):
        self.radio.connect()
        self.radio.send()
        self.radio.disconnect()
        return ["boot"]

    @op_final
    def sleep(self):
        return ["boot"]
|}

(* Fault injection: the report method forgets to disconnect the radio. *)
let leaky_controller =
  {|
@sys(["batt", "radio"])
class LeakyController:
    def __init__(self):
        self.batt = Battery()
        self.radio = Radio()

    @op_initial
    def boot(self):
        match self.batt.check():
            case ["ok"]:
                self.batt.ok()
                return ["report"]
            case ["low"]:
                self.batt.low()
                return ["report"]

    @op_final
    def report(self):
        self.radio.connect()
        self.radio.send()
        return ["boot"]
|}

let () =
  print_endline "=== irrigation controller: a three-level hierarchy ===\n";
  let source = Sources.valve ^ battery ^ radio ^ sector ^ controller in
  let result =
    Pipeline.verify_source_exn source
  in
  (match Report.errors result.Pipeline.reports with
  | [] -> print_endline "verified: Valve, Battery, Radio, Sector, Controller — no errors\n"
  | errors ->
    List.iter (fun r -> Format.printf "%a@.@." Report.pp r) errors;
    failwith "irrigation system unexpectedly failed verification");

  (* Model sizes across the hierarchy. *)
  print_endline "--- model inventory ---";
  List.iter
    (fun (m : Model.t) ->
      let usage = Depgraph.usage_nfa m in
      let states, transitions = Nfa.count_states_and_transitions usage in
      let expanded_states, expanded_transitions =
        Nfa.count_states_and_transitions (Usage.expanded_nfa m)
      in
      Format.printf "  %-12s %d ops, usage automaton %d states / %d transitions, \
                     expanded %d states / %d transitions@."
        m.Model.name
        (List.length m.Model.operations)
        states transitions expanded_states expanded_transitions)
    result.Pipeline.models;

  (* A complete mission: boot, irrigate, report. *)
  let controller_model = Option.get (Pipeline.find_model result "Controller") in
  let expanded = Usage.expanded_nfa controller_model in
  print_endline "\n--- one complete mission trace ---";
  (match Nfa.shortest_accepted (Nfa.trim expanded) with
  | Some trace when trace <> [] -> Format.printf "  %s@." (Trace.to_string trace)
  | _ ->
    (* The shortest accepted trace is the empty usage; show a real one. *)
    let words = Nfa.words_upto ~max_len:8 expanded in
    (match Trace.Set.fold (fun w acc -> if w <> [] && acc = None then Some w else acc) words None with
    | Some w -> Format.printf "  %s@." (Trace.to_string w)
    | None -> print_endline "  (none up to length 8)"));

  (* Claims. *)
  print_endline "\n--- claims ---";
  List.iter
    (fun (text, _) -> Format.printf "  holds: %s@." text)
    controller_model.Model.claims;

  (* Fault injection. *)
  print_endline "\n=== fault injection: report without radio.disconnect ===\n";
  let leaky_source = Sources.valve ^ battery ^ radio ^ leaky_controller in
  let leaky =
    Pipeline.verify_source_exn leaky_source
  in
  (match Report.errors leaky.Pipeline.reports with
  | [] -> failwith "expected the leaky controller to fail verification"
  | errors -> List.iter (fun r -> Format.printf "%a@.@." Report.pp r) errors)
