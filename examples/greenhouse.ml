(* A larger case study: a greenhouse irrigation system, three levels deep.

     Greenhouse ──┬── pump  : Pump        (base)
                  ├── timer : Timer       (base)
                  └── z1/z2 : Zone        (composite)
                                ├── moist : MoistureSensor (base)
                                └── v     : Valve          (base)

   Demonstrates, on top of the paper's pipeline:
   - hierarchy: composites used as subsystems of other composites;
   - claims written through the Patterns library and checked both statically
     (claim checking) and dynamically (four-valued monitoring);
   - model metrics (Stats) across the hierarchy;
   - exporting the whole hierarchy for separate verification.

   Run with:  dune exec examples/greenhouse.exe *)

let source =
  Sources.valve
  ^ {|
@sys
class MoistureSensor:
    def __init__(self):
        self.adc = ADC(1)

    @op_initial
    def read(self):
        if self.adc.sample() < 400:
            return ["dry"]
        else:
            return ["wet"]

    @op_final
    def dry(self):
        return ["read"]

    @op_final
    def wet(self):
        return ["read"]

@sys
class Pump:
    def __init__(self):
        self.motor = Pin(5, OUT)

    @op_initial
    def prime(self):
        self.motor.on()
        return ["run"]

    @op
    def run(self):
        return ["stop"]

    @op_final
    def stop(self):
        self.motor.off()
        return ["prime"]

@sys
class Timer:
    def __init__(self):
        self.rtc = RTC()

    @op_initial_final
    def wait(self):
        self.rtc.sleep()
        return ["wait"]

@sys(["moist", "v"])
class Zone:
    def __init__(self):
        self.moist = MoistureSensor()
        self.v = Valve()

    @op_initial
    def sense(self):
        match self.moist.read():
            case ["dry"]:
                self.moist.dry()
                return ["water"]
            case ["wet"]:
                self.moist.wet()
                return ["skip_zone"]

    @op
    def water(self):
        match self.v.test():
            case ["open"]:
                self.v.open()
                self.v.close()
                return ["done_zone"]
            case ["clean"]:
                self.v.clean()
                return ["done_zone"]

    @op_final
    def skip_zone(self):
        return ["sense"]

    @op_final
    def done_zone(self):
        return ["sense"]

@claim("(!z1.water) W z1.sense")
@claim("(!pump.run) W pump.prime")
@claim("G (z1.water -> F pump.stop)")
@sys(["pump", "timer", "z1", "z2"])
class Greenhouse:
    def __init__(self):
        self.pump = Pump()
        self.timer = Timer()
        self.z1 = Zone()
        self.z2 = Zone()

    @op_initial
    def wake(self):
        self.timer.wait()
        return ["irrigate", "standby"]

    @op
    def irrigate(self):
        self.pump.prime()
        self.pump.run()
        match self.z1.sense():
            case ["water"]:
                self.z1.water()
                self.z1.done_zone()
            case ["skip_zone"]:
                self.z1.skip_zone()
        match self.z2.sense():
            case ["water"]:
                self.z2.water()
                self.z2.done_zone()
            case ["skip_zone"]:
                self.z2.skip_zone()
        self.pump.stop()
        return ["standby"]

    @op_final
    def standby(self):
        return ["wake"]
|}

let () =
  print_endline "=== greenhouse: a three-level verified hierarchy ===\n";
  let result =
    Pipeline.verify_source_exn source
  in
  (match Report.errors result.Pipeline.reports with
  | [] -> print_endline "verified: all six classes, all three claims\n"
  | errors ->
    List.iter (fun r -> Format.printf "%a@.@." Report.pp r) errors;
    failwith "greenhouse unexpectedly failed verification");

  (* Metrics across the hierarchy. *)
  print_endline Stats.header;
  List.iter
    (fun m -> Format.printf "%a@." Stats.pp_row (Stats.of_model m))
    result.Pipeline.models;

  (* The same claims, built through the pattern library, agree with the
     @claim strings. *)
  print_endline "\n--- claims as patterns ---";
  let greenhouse = Option.get (Pipeline.find_model result "Greenhouse") in
  let precedence_claim =
    Patterns.precedence ~first:(Symbol.intern "z1.sense") ~before:(Symbol.intern "z1.water")
  in
  (match greenhouse.Model.claims with
  | (text, parsed) :: _ ->
    Format.printf "  @claim(%S) parsed = pattern: %b@." text
      (Ltlf.equal parsed precedence_claim)
  | [] -> failwith "expected claims");

  (* Watch the pump-response claim along one irrigation mission. *)
  print_endline "\n--- four-valued monitoring of G (z1.water -> F pump.stop) ---";
  let response =
    Patterns.response
      ~cause:(Symbol.intern "z1.water")
      ~effect:(Symbol.intern "pump.stop")
  in
  let mission =
    Trace.of_names
      [ "timer.wait"; "pump.prime"; "pump.run"; "z1.water"; "z2.water"; "pump.stop" ]
  in
  let events =
    Symbol.Set.elements
      (Symbol.Set.union (Ltlf.atoms response) (Symbol.Set.of_list mission))
  in
  List.iteri
    (fun i v ->
      let prefix = if i = 0 then "(start)" else Symbol.name (List.nth mission (i - 1)) in
      Format.printf "  %-12s %a@." prefix Ltl_monitor.pp_verdict v)
    (Ltl_monitor.verdict_trajectory ~alphabet:events response mission);

  (* Export every model of the hierarchy for separate verification. *)
  let dir = Filename.temp_file "greenhouse" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      List.iter
        (fun (m : Model.t) ->
          Model_io.save ~path:(Filename.concat dir (m.Model.name ^ ".shelley")) m)
        result.Pipeline.models;
      Printf.printf "\nexported %d models to %s (then cleaned up)\n"
        (List.length result.Pipeline.models)
        dir;
      (* Reload and re-verify the Greenhouse source against loaded substrates
         only. *)
      let paths =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> f <> "Greenhouse.shelley")
        |> List.map (Filename.concat dir)
      in
      match Model_io.env_of_files paths with
      | Error msg -> failwith msg
      | Ok env ->
        let reports = Usage.check ~env greenhouse in
        Printf.printf "separate verification of Greenhouse against loaded models: %s\n"
          (if reports = [] then "clean" else "errors!"))
