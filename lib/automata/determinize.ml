module Config_map = Map.Make (States.Set)

let determinize ?(limits = Limits.default) ?alphabet nfa =
  Obs.with_span "determinize" @@ fun () ->
  let alphabet =
    match alphabet with
    | Some syms -> List.sort_uniq Symbol.compare syms
    | None -> Symbol.Set.elements (Nfa.alphabet nfa)
  in
  (* Discover all reachable ε-closed configurations, numbering them densely. *)
  let budget =
    Limits.fuel ~within:limits ~resource:"determinization states" limits.Limits.max_states
  in
  let index = ref Config_map.empty in
  let configs = ref [] in
  let count = ref 0 in
  let queue = Queue.create () in
  let intern config =
    match Config_map.find_opt config !index with
    | Some i -> i
    | None ->
      Limits.spend budget;
      let i = !count in
      incr count;
      index := Config_map.add config i !index;
      configs := config :: !configs;
      Queue.add config queue;
      i
  in
  let start_id = intern (Nfa.initial_config nfa) in
  let edges = Hashtbl.create 64 in
  let rec explore () =
    match Queue.take_opt queue with
    | None -> ()
    | Some config ->
      let src = Config_map.find config !index in
      List.iter
        (fun sym ->
          let dst = intern (Nfa.step nfa config sym) in
          Hashtbl.replace edges (src, sym) dst)
        alphabet;
      explore ()
  in
  explore ();
  Obs.count "determinize.calls" 1;
  Obs.count "determinize.states" !count;
  let configs = Array.of_list (List.rev !configs) in
  let accept =
    Array.to_list configs
    |> List.mapi (fun i config -> if Nfa.accepting_config nfa config then Some i else None)
    |> List.filter_map Fun.id
  in
  Dfa.create ~alphabet ~num_states:!count ~start:start_id ~accept ~next:(fun q sym ->
      match Hashtbl.find_opt edges (q, sym) with
      | Some q' -> q'
      | None ->
        invalid_arg
          (Printf.sprintf
             "Determinize.determinize: no transition from state %d on symbol '%s' \
              (symbol outside the DFA alphabet?)"
             q (Symbol.name sym)))
