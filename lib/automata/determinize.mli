(** Subset construction: NFA → complete DFA.

    The resulting DFA's alphabet is the NFA's transition alphabet unless a
    larger one is supplied (Shelley lifts specification automata to the
    alphabet of the implementation before comparing languages). *)

val determinize : ?limits:Limits.t -> ?alphabet:Symbol.t list -> Nfa.t -> Dfa.t
(** Classic ε-closed subset construction. The empty configuration becomes the
    (rejecting, absorbing) sink, so the result is complete.

    The construction is exponential in the worst case; at most
    [limits.max_states] subset configurations are discovered
    (default {!Limits.default}).
    @raise Limits.Budget_exceeded when the state budget runs out.
    @raise Invalid_argument if the resulting DFA is queried on a symbol
    outside its alphabet (the error names the state and symbol). *)
