(** Language-level comparisons between NFAs.

    These are the checks the Shelley verifier actually issues: is every trace
    an implementation can produce allowed by a specification, and if not,
    what is the shortest offending trace. Implemented by an on-the-fly
    product of subset constructions — no full determinization when a
    counterexample is close to the start state.

    Every comparison explores at most [limits.max_configs] product
    configurations (default {!Limits.default}) and raises
    {!Limits.Budget_exceeded} beyond that, so an exponential product
    terminates with a typed error instead of exhausting memory. *)

val inclusion_counterexample :
  ?limits:Limits.t ->
  ?alphabet:Symbol.Set.t ->
  impl:Nfa.t ->
  spec:Nfa.t ->
  unit ->
  Trace.t option
(** Shortest trace accepted by [impl] but not by [spec]. The alphabet
    defaults to the union of both automata's alphabets; pass a larger one if
    the implementation may emit symbols neither mentions.
    @raise Limits.Budget_exceeded when the configuration budget runs out. *)

val included :
  ?limits:Limits.t -> ?alphabet:Symbol.Set.t -> impl:Nfa.t -> spec:Nfa.t -> unit -> bool

val equivalence_counterexample : ?limits:Limits.t -> Nfa.t -> Nfa.t -> Trace.t option
(** Shortest trace in exactly one of the two languages. *)

val equivalent : ?limits:Limits.t -> Nfa.t -> Nfa.t -> bool

val intersect : ?limits:Limits.t -> Nfa.t -> Nfa.t -> Nfa.t
(** Product NFA accepting the intersection (ε-transitions are handled by
    closing configurations on the fly; the result is ε-free).
    @raise Limits.Budget_exceeded when the configuration budget runs out. *)
