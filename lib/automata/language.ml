module Pair = struct
  type t = States.Set.t * States.Set.t

  let compare (a1, a2) (b1, b2) =
    let c = States.Set.compare a1 b1 in
    if c <> 0 then c else States.Set.compare a2 b2
end

module Pair_set = Set.Make (Pair)

(* BFS over pairs of ε-closed configurations of two NFAs run in lockstep;
   [bad] spots a distinguishing pair, and breadth-first order makes the
   witness shortest. *)
let find_witness ?(limits = Limits.default) ?alphabet ~bad n1 n2 =
  Obs.with_span "language.product" @@ fun () ->
  let alphabet =
    match alphabet with
    | Some set -> set
    | None -> Symbol.Set.union (Nfa.alphabet n1) (Nfa.alphabet n2)
  in
  let syms = Symbol.Set.elements alphabet in
  let budget =
    Limits.fuel ~within:limits ~resource:"language-product configurations"
      limits.Limits.max_configs
  in
  let seen = ref Pair_set.empty in
  let queue = Queue.create () in
  let push pair rev_path =
    if not (Pair_set.mem pair !seen) then begin
      Limits.spend budget;
      seen := Pair_set.add pair !seen;
      Queue.add (pair, rev_path) queue
    end
  in
  push (Nfa.initial_config n1, Nfa.initial_config n2) [];
  let rec loop () =
    match Queue.take_opt queue with
    | None -> None
    | Some ((c1, c2), rev_path) ->
      if bad (Nfa.accepting_config n1 c1) (Nfa.accepting_config n2 c2) then
        Some (List.rev rev_path)
      else begin
        List.iter
          (fun sym -> push (Nfa.step n1 c1 sym, Nfa.step n2 c2 sym) (sym :: rev_path))
          syms;
        loop ()
      end
  in
  let witness = loop () in
  Obs.count "language.configs" (Pair_set.cardinal !seen);
  witness

let inclusion_counterexample ?limits ?alphabet ~impl ~spec () =
  find_witness ?limits ?alphabet ~bad:(fun a b -> a && not b) impl spec

let included ?limits ?alphabet ~impl ~spec () =
  Option.is_none (inclusion_counterexample ?limits ?alphabet ~impl ~spec ())

let equivalence_counterexample ?limits n1 n2 =
  find_witness ?limits ~bad:(fun a b -> a <> b) n1 n2

let equivalent ?limits n1 n2 = Option.is_none (equivalence_counterexample ?limits n1 n2)

let intersect ?(limits = Limits.default) n1 n2 =
  Obs.with_span "language.intersect" @@ fun () ->
  (* Explore reachable configuration pairs, interning each as a product
     state; the result is ε-free by construction. *)
  let alphabet = Symbol.Set.inter (Nfa.alphabet n1) (Nfa.alphabet n2) in
  let syms = Symbol.Set.elements alphabet in
  let budget =
    Limits.fuel ~within:limits ~resource:"intersection-product configurations"
      limits.Limits.max_configs
  in
  let index = Hashtbl.create 64 in
  let order = ref [] in
  let count = ref 0 in
  let queue = Queue.create () in
  let intern pair =
    match Hashtbl.find_opt index pair with
    | Some i -> i
    | None ->
      Limits.spend budget;
      let i = !count in
      incr count;
      Hashtbl.add index pair i;
      order := pair :: !order;
      Queue.add pair queue;
      i
  in
  let start = intern (Nfa.initial_config n1, Nfa.initial_config n2) in
  let transitions = ref [] in
  let rec explore () =
    match Queue.take_opt queue with
    | None -> ()
    | Some ((c1, c2) as pair) ->
      let src = Hashtbl.find index pair in
      List.iter
        (fun sym ->
          let d1 = Nfa.step n1 c1 sym in
          let d2 = Nfa.step n2 c2 sym in
          if not (States.Set.is_empty d1 || States.Set.is_empty d2) then begin
            let dst = intern (d1, d2) in
            transitions := (src, sym, dst) :: !transitions
          end)
        syms;
      explore ()
  in
  explore ();
  let pairs = Array.of_list (List.rev !order) in
  let accept =
    List.filter
      (fun i ->
        let c1, c2 = pairs.(i) in
        Nfa.accepting_config n1 c1 && Nfa.accepting_config n2 c2)
      (List.init !count Fun.id)
  in
  Nfa.create ~num_states:!count ~start:[ start ] ~accept ~transitions:!transitions ()
