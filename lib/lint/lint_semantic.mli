(** The semantic lint rules (SY101–SY108).

    Where {!Validate} checks the *shape* of a model, these rules reuse the
    verification machinery itself — usage automata, language inclusion,
    LTLf tableau/progression — to catch specification bugs that only show
    up at the language level: operations no accepted usage exercises,
    claims that constrain nothing (or can never hold, or are implied by
    the rest of the specification), subsystems that are declared but never
    driven, calls that silently escape verification, code the lowered
    bodies can never reach, and behavior regexes big enough to make the
    downstream automata expensive.

    Every rule runs under the caller's {!Limits.t} fuel budget; a blown
    budget surfaces as {!Limits.Budget_exceeded}, which the engine
    ({!Lint}) converts into an SY090 diagnostic for that class while the
    other rules still run. *)

type thresholds = {
  max_behavior_size : int;
      (** SY108 fires when an operation's inferred behavior regex has more
          AST nodes than this. *)
  max_star_height : int;
      (** SY108 fires when the regex nests stars deeper than this. *)
}

val default_thresholds : thresholds
(** [{ max_behavior_size = 200; max_star_height = 3 }] — generous for
    hand-written classes, low enough to flag machine-generated blowup
    before the expanded-automaton checks pay for it. *)

type ctx = {
  limits : Limits.t;
  thresholds : thresholds;
  env : string -> Model.t option;
      (** resolve a class name to its extracted model (program-local) *)
  cls : Mpy_ast.class_def;  (** the class's surface syntax (for call sites) *)
  model : Model.t;
}

val rules : (Rules.t * (ctx -> (int option * string) list)) list
(** Every semantic rule with its registry entry, in code order. A rule
    returns its findings as [(line, message)] pairs, in source order. *)
