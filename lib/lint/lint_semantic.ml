type thresholds = {
  max_behavior_size : int;
  max_star_height : int;
}

let default_thresholds = { max_behavior_size = 200; max_star_height = 3 }

type ctx = {
  limits : Limits.t;
  thresholds : thresholds;
  env : string -> Model.t option;
  cls : Mpy_ast.class_def;
  model : Model.t;
}

(* --- SY101 dead operation --------------------------------------------------

   An operation is dead when no *accepted* usage word contains it: callers
   can never legally exercise it to completion. This unifies (and subsumes,
   at the language level) the two graph-reachability warnings SY006/SY007:
   the witness language  L(usage) ∩ Σ*·op·Σ*  is empty iff the operation is
   unreachable from every initial operation or no final operation is
   reachable beyond it. *)

let dead_operation ctx =
  let model = ctx.model in
  if model.Model.operations = [] || Model.initial_ops model = []
     || Model.final_ops model = []
  then [] (* SY002/SY003 already explain why nothing is usable *)
  else begin
    let dfa = Determinize.determinize ~limits:ctx.limits (Depgraph.usage_nfa model) in
    let alphabet = Dfa.alphabet dfa in
    List.filter_map
      (fun (op : Model.operation) ->
        let sym = Model.entry_symbol op in
        let dead =
          if not (Dfa.mem_alphabet dfa sym) then true
          else begin
            (* Σ*·op·Σ* over the usage alphabet, as a two-state DFA. *)
            let contains =
              Dfa.create ~alphabet ~num_states:2 ~start:0 ~accept:[ 1 ]
                ~next:(fun s x -> if s = 1 || Symbol.equal x sym then 1 else s)
            in
            Dfa.is_empty (Dfa.intersect dfa contains)
          end
        in
        if dead then
          Some
            ( Some op.op_line,
              Printf.sprintf
                "operation '%s' occurs in no accepted usage of %s: no caller can \
                 legally exercise it"
                op.op_name model.Model.name )
        else None)
      model.Model.operations
  end

(* --- Claim rules (SY102/SY103/SY104) --------------------------------------- *)

(* The alphabet all claim automata are built over: the class's subsystem-call
   events plus every atom any claim mentions. *)
let claim_alphabet ctx impl =
  List.fold_left
    (fun acc (_, formula) -> Symbol.Set.union acc (Ltlf.atoms formula))
    (Nfa.alphabet impl) ctx.model.Model.claims

let universal_nfa alphabet =
  Nfa.create ~num_states:1 ~start:[ 0 ] ~accept:[ 0 ]
    ~transitions:(List.map (fun sym -> (0, sym, 0)) (Symbol.Set.elements alphabet))
    ()

let vacuous_claim ctx =
  let model = ctx.model in
  if model.Model.claims = [] then []
  else begin
    let impl = Claims.subsystem_call_nfa ~limits:ctx.limits model in
    let alphabet = claim_alphabet ctx impl in
    let no_calls = Symbol.Set.is_empty (Nfa.alphabet impl) in
    List.filter_map
      (fun (text, formula) ->
        if no_calls then
          Some
            ( Some model.Model.line,
              Printf.sprintf
                "claim '%s' is vacuous: %s performs no subsystem calls, so the claim \
                 is checked only against the empty trace"
                text model.Model.name )
        else if
          (not (Symbol.Set.is_empty alphabet))
          && Result.is_ok
               (Ltl_check.check ~limits:ctx.limits ~impl:(universal_nfa alphabet) formula)
        then
          Some
            ( Some model.Model.line,
              Printf.sprintf
                "claim '%s' is vacuous: it holds over every trace (a tautology over \
                 the class's events)"
                text )
        else None)
      model.Model.claims
  end

let unsatisfiable_claim ctx =
  let model = ctx.model in
  if model.Model.claims = [] then []
  else begin
    let impl = Claims.subsystem_call_nfa ~limits:ctx.limits model in
    let alphabet = claim_alphabet ctx impl in
    if Symbol.Set.is_empty alphabet then []
    else
      List.filter_map
        (fun (text, formula) ->
          let nfa =
            Tableau.to_nfa ~limits:ctx.limits
              ~alphabet:(Symbol.Set.elements alphabet)
              formula
          in
          (* The empty trace also satisfies a claim; a claim is contradictory
             only when no trace — empty or not — models it. *)
          if Nfa.is_empty nfa && not (Ltlf.holds formula []) then
            Some
              ( Some model.Model.line,
                Printf.sprintf
                  "claim '%s' is unsatisfiable: no trace at all can satisfy it, so \
                   verification can only fail"
                  text )
          else None)
        model.Model.claims
  end

let redundant_claim ctx =
  let model = ctx.model in
  match model.Model.claims with
  | [] | [ _ ] -> [] (* redundancy is relative to the *other* claims *)
  | claims ->
    let impl = Claims.subsystem_call_nfa ~limits:ctx.limits model in
    let alphabet = claim_alphabet ctx impl in
    let alpha_list = Symbol.Set.elements alphabet in
    let nfas =
      List.map
        (fun (text, formula) ->
          (text, Tableau.to_nfa ~limits:ctx.limits ~alphabet:alpha_list formula))
        claims
    in
    List.mapi (fun i (text, spec) -> (i, text, spec)) nfas
    |> List.filter_map (fun (i, text, spec) ->
           let others =
             List.filteri (fun j _ -> j <> i) nfas |> List.map snd
           in
           let constrained =
             List.fold_left
               (fun acc nfa -> Language.intersect ~limits:ctx.limits acc nfa)
               impl others
           in
           if Language.included ~limits:ctx.limits ~alphabet ~impl:constrained ~spec ()
           then
             Some
               ( Some model.Model.line,
                 Printf.sprintf
                   "claim '%s' is redundant: the usage language and the remaining \
                    claims already imply it"
                   text )
           else None)

(* --- SY105 unused declared subsystem --------------------------------------- *)

let unused_subsystem ctx =
  let model = ctx.model in
  let called_scopes =
    List.fold_left
      (fun acc (op : Model.operation) ->
        Symbol.Set.fold
          (fun sym acc ->
            match Symbol.split_scope sym with
            | Some (scope, _) -> scope :: acc
            | None -> acc)
          (Regex.alphabet (Model.behavior_of_op op))
          acc)
      [] model.Model.operations
  in
  List.filter_map
    (fun field ->
      if List.mem field called_scopes then None
      else
        Some
          ( Some model.Model.line,
            Printf.sprintf
              "declared subsystem '%s' is never called by any operation of %s" field
              model.Model.name ))
    model.Model.declared_subsystems

(* --- SY106 undeclared subsystem call --------------------------------------- *)

let undeclared_subsystem_call ctx =
  let model = ctx.model in
  let escaping field =
    (not (List.mem field model.Model.declared_subsystems))
    && (match List.assoc_opt field model.Model.subsystem_fields with
       | Some cls_name -> ctx.env cls_name <> None
       | None -> false)
  in
  Invocation.calls_on_fields ~fields:escaping ctx.cls
  |> List.map (fun (line, field, meth) ->
         let cls_name =
           Option.value ~default:"?" (List.assoc_opt field model.Model.subsystem_fields)
         in
         ( Some line,
           Printf.sprintf
             "call '%s.%s' escapes verification: field '%s' holds modeled class %s \
              but is not declared in @sys([...])"
             field meth field cls_name ))

(* --- SY107 unreachable code after return ----------------------------------- *)

(* The lowering erases statements of no interest to [Skip], so "unreachable"
   is only reported when the dead region still performs calls (or returns) —
   i.e. when the dead code would have mattered to the inferred behavior. *)
let unreachable_after_return ctx =
  let interesting p =
    (not (Symbol.Set.is_empty (Prog.calls p))) || Prog.has_return p
  in
  let rec dead = function
    | Prog.Seq (a, b) -> (Prog.always_returns a && interesting b) || dead a || dead b
    | Prog.If (a, b) -> dead a || dead b
    | Prog.Loop p -> dead p
    | Prog.Call _ | Prog.Skip | Prog.Return -> false
  in
  List.filter_map
    (fun (op : Model.operation) ->
      if dead op.plain_body then
        Some
          ( Some op.op_line,
            Printf.sprintf
              "operation '%s' performs calls after a point where every path has \
               returned: they can never execute"
              op.op_name )
      else None)
    ctx.model.Model.operations

(* --- SY108 behavior blowup -------------------------------------------------- *)

let behavior_blowup ctx =
  let t = ctx.thresholds in
  List.filter_map
    (fun (op : Model.operation) ->
      let r = Model.behavior_of_op op in
      let size = Regex.size r in
      let height = Regex.star_height r in
      if size > t.max_behavior_size then
        Some
          ( Some op.op_line,
            Printf.sprintf
              "behavior of '%s' has %d regex nodes (threshold %d): downstream \
               automaton constructions may blow up"
              op.op_name size t.max_behavior_size )
      else if height > t.max_star_height then
        Some
          ( Some op.op_line,
            Printf.sprintf
              "behavior of '%s' nests %d loops (star-height threshold %d): \
               downstream automaton constructions may blow up"
              op.op_name height t.max_star_height )
      else None)
    ctx.model.Model.operations

let rules =
  [
    (Rules.dead_operation, dead_operation);
    (Rules.vacuous_claim, vacuous_claim);
    (Rules.unsatisfiable_claim, unsatisfiable_claim);
    (Rules.redundant_claim, redundant_claim);
    (Rules.unused_subsystem, unused_subsystem);
    (Rules.undeclared_subsystem_call, undeclared_subsystem_call);
    (Rules.unreachable_after_return, unreachable_after_return);
    (Rules.behavior_blowup, behavior_blowup);
  ]
