type format =
  | Text
  | Json
  | Sarif

let format_of_string = function
  | "text" -> Ok Text
  | "json" -> Ok Json
  | "sarif" -> Ok Sarif
  | s -> Error (Printf.sprintf "unknown lint format '%s' (expected text, json or sarif)" s)

let severity_word = function
  | Report.Error -> "error"
  | Report.Warning -> "warning"
  | Report.Info -> "info"

(* --- Text ------------------------------------------------------------------ *)

let text_line (d : Lint.diagnostic) =
  let pos = if d.Lint.line > 0 then Printf.sprintf ":%d" d.Lint.line else "" in
  let cls = if d.Lint.class_name = "" then "" else Printf.sprintf " [%s]" d.Lint.class_name in
  Printf.sprintf "%s%s: %s %s%s: %s" d.Lint.file pos (severity_word d.Lint.severity)
    d.Lint.rule cls d.Lint.message

let plural n word = if n = 1 then word else word ^ "s"

let summary_line results =
  let findings =
    List.fold_left (fun acc (r : Lint.file_result) -> acc + List.length r.Lint.findings) 0
      results
  in
  let suppressed =
    List.fold_left
      (fun acc (r : Lint.file_result) -> acc + List.length r.Lint.suppressed)
      0 results
  in
  let nfiles = List.length results in
  let files = Printf.sprintf "%d %s" nfiles (plural nfiles "file") in
  let tail = if suppressed = 0 then "" else Printf.sprintf ", %d suppressed" suppressed in
  if findings = 0 then Printf.sprintf "no findings in %s%s" files tail
  else begin
    let count severity =
      let n = Lint.count_severity results severity in
      if n = 0 then None else Some (Printf.sprintf "%d %s" n (plural n (severity_word severity)))
    in
    let breakdown =
      List.filter_map count [ Report.Error; Report.Warning; Report.Info ]
      |> String.concat ", "
    in
    Printf.sprintf "%d %s (%s) in %s%s" findings (plural findings "finding") breakdown
      files tail
  end

let text results =
  let lines =
    List.concat_map
      (fun (r : Lint.file_result) -> List.map text_line r.Lint.findings)
      results
  in
  String.concat "" (List.map (fun l -> l ^ "\n") lines) ^ summary_line results ^ "\n"

(* --- A small JSON emitter --------------------------------------------------

   No JSON library in the build closure, so: a value type, a string escaper
   covering the mandatory escapes (quote, backslash, control characters),
   and a two-space pretty-printer. Objects print their fields in the order
   given — determinism comes from construction order, not sorting. *)

type json =
  | S of string
  | I of int
  | L of json list
  | O of (string * json) list

let escape_string s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let emit_json v =
  let b = Buffer.create 1024 in
  let pad depth = Buffer.add_string b (String.make (2 * depth) ' ') in
  let rec go depth = function
    | S s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape_string s);
      Buffer.add_char b '"'
    | I n -> Buffer.add_string b (string_of_int n)
    | L [] -> Buffer.add_string b "[]"
    | L items ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (depth + 1);
          go (depth + 1) item)
        items;
      Buffer.add_char b '\n';
      pad depth;
      Buffer.add_char b ']'
    | O [] -> Buffer.add_string b "{}"
    | O fields ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (depth + 1);
          Buffer.add_char b '"';
          Buffer.add_string b (escape_string k);
          Buffer.add_string b "\": ";
          go (depth + 1) v)
        fields;
      Buffer.add_char b '\n';
      pad depth;
      Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

(* --- shelley.lint/1 -------------------------------------------------------- *)

let diagnostic_json (d : Lint.diagnostic) =
  O
    ([ ("rule", S d.Lint.rule);
       ("name", S d.Lint.rule_name);
       ("severity", S (severity_word d.Lint.severity));
     ]
    @ (if d.Lint.line > 0 then [ ("line", I d.Lint.line) ] else [])
    @ (if d.Lint.class_name = "" then [] else [ ("class", S d.Lint.class_name) ])
    @ [ ("message", S d.Lint.message) ])

let json results =
  let file_json (r : Lint.file_result) =
    O
      [ ("file", S r.Lint.lint_file);
        ("findings", L (List.map diagnostic_json r.Lint.findings));
        ("suppressed", L (List.map diagnostic_json r.Lint.suppressed));
      ]
  in
  let suppressed =
    List.fold_left
      (fun acc (r : Lint.file_result) -> acc + List.length r.Lint.suppressed)
      0 results
  in
  emit_json
    (O
       [ ("format", S "shelley.lint/1");
         ("files", L (List.map file_json results));
         ( "summary",
           O
             [ ("files", I (List.length results));
               ( "findings",
                 I
                   (List.fold_left
                      (fun acc (r : Lint.file_result) ->
                        acc + List.length r.Lint.findings)
                      0 results) );
               ("errors", I (Lint.count_severity results Report.Error));
               ("warnings", I (Lint.count_severity results Report.Warning));
               ("infos", I (Lint.count_severity results Report.Info));
               ("suppressed", I suppressed);
             ] );
       ])

(* --- SARIF 2.1.0 ----------------------------------------------------------- *)

let sarif_level = function
  | Report.Error -> "error"
  | Report.Warning -> "warning"
  | Report.Info -> "note"

let sarif results =
  let rule_index =
    List.mapi (fun i (r : Rules.t) -> (r.Rules.code, i)) Rules.all
  in
  let rules_json =
    List.map
      (fun (r : Rules.t) ->
        O
          [ ("id", S r.Rules.code);
            ("name", S r.Rules.name);
            ("shortDescription", O [ ("text", S r.Rules.summary) ]);
            ("defaultConfiguration", O [ ("level", S (sarif_level r.Rules.severity)) ]);
          ])
      Rules.all
  in
  let result_json ~suppressed (d : Lint.diagnostic) =
    let location =
      O
        [ ( "physicalLocation",
            O
              ([ ("artifactLocation", O [ ("uri", S d.Lint.file) ]) ]
              @
              if d.Lint.line > 0 then
                [ ("region", O [ ("startLine", I d.Lint.line) ]) ]
              else []) )
        ]
    in
    let message =
      if d.Lint.class_name = "" then d.Lint.message
      else Printf.sprintf "[%s] %s" d.Lint.class_name d.Lint.message
    in
    O
      ([ ("ruleId", S d.Lint.rule) ]
      @ (match List.assoc_opt d.Lint.rule rule_index with
        | Some i -> [ ("ruleIndex", I i) ]
        | None -> [])
      @ [ ("level", S (sarif_level d.Lint.severity));
          ("message", O [ ("text", S message) ]);
          ("locations", L [ location ]);
        ]
      @
      if suppressed then [ ("suppressions", L [ O [ ("kind", S "inSource") ] ]) ]
      else [])
  in
  let all_results =
    List.concat_map
      (fun (r : Lint.file_result) ->
        List.map (result_json ~suppressed:false) r.Lint.findings
        @ List.map (result_json ~suppressed:true) r.Lint.suppressed)
      results
  in
  emit_json
    (O
       [ ("$schema", S "https://json.schemastore.org/sarif-2.1.0.json");
         ("version", S "2.1.0");
         ( "runs",
           L
             [ O
                 [ ( "tool",
                     O
                       [ ( "driver",
                           O
                             [ ("name", S "shelley");
                               ( "informationUri",
                                 S "https://github.com/shelley-checker/shelley" );
                               ("rules", L rules_json);
                             ] )
                       ] );
                   ("results", L all_results);
                 ]
             ] );
       ])

let render = function
  | Text -> text
  | Json -> json
  | Sarif -> sarif
