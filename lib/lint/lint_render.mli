(** Renderers for lint results: human text, machine JSON, SARIF 2.1.0.

    All three are deterministic functions of the {!Lint.file_result} list —
    no clocks, no environment — so the same inputs always produce the same
    bytes regardless of [-j] level or input-file order (the driver replays
    results in input order). *)

type format =
  | Text
  | Json  (** the [shelley.lint/1] envelope *)
  | Sarif  (** SARIF 2.1.0, for code-scanning upload *)

val format_of_string : string -> (format, string) result
(** Accepts ["text"], ["json"], ["sarif"]. *)

val severity_word : Report.severity -> string
(** ["error"] / ["warning"] / ["info"] — shared by the text renderer and
    [check --lint]. *)

val text_line : Lint.diagnostic -> string
(** One finding as ["file:line: severity SY101 \[Class\]: message"]. The
    [:line] part is omitted when the diagnostic has no position and the
    [\[Class\]] part when it has no class context. *)

val text : Lint.file_result list -> string
(** Every active finding (one {!text_line} each, files in input order)
    followed by a summary line, e.g.
    ["3 findings (1 error, 2 warnings) in 2 files, 1 suppressed"] or
    ["no findings in 2 files"]. Ends with a newline. *)

val json : Lint.file_result list -> string
(** The [shelley.lint/1] envelope: per-file findings and suppressed
    diagnostics plus a summary object. Pretty-printed, ends with a
    newline. *)

val sarif : Lint.file_result list -> string
(** A single-run SARIF 2.1.0 log: the full {!Rules.all} registry as
    [tool.driver.rules], one [result] per diagnostic ([level] maps
    Error/Warning/Info to [error]/[warning]/[note]), file and line as a
    [physicalLocation] when known, and suppressed findings carried with
    [suppressions: \[{kind: "inSource"}\]] rather than dropped.
    Pretty-printed, ends with a newline. *)

val render : format -> Lint.file_result list -> string
