(** The lint engine: run every registered rule over one source file.

    [shelley lint] (and [shelley check --lint]) sit on top of this module:
    it parses tolerantly, extracts every class, routes the {!Validate}
    structural checks and the {!Lint_semantic} rules through the
    {!Rules} registry, honors inline suppression comments
    ([# shelley: disable=SY001,SY104] — end-of-line for that line, a
    standalone comment line for the next line), and returns plain
    marshal-safe diagnostics the renderers ({!Lint_render}) and the
    parallel driver ({!Checker.lint_files}) consume.

    Discipline inherited from the verification pipeline: every rule runs
    behind an exception barrier under the caller's {!Limits.t} budget — a
    blown budget becomes an SY090 diagnostic, an unexpected exception an
    SY091 diagnostic, and every other rule still runs. With the {!Obs}
    recorder enabled, each rule gets a span ([lint.<rule-name>]) and each
    finding a counter ([lint.findings.<code>]), so [--stats] and
    [--metrics-out] cover linting exactly as they cover checking. *)

type diagnostic = {
  rule : string;  (** stable code, e.g. ["SY101"] *)
  rule_name : string;  (** registry slug, e.g. ["dead-operation"] *)
  severity : Report.severity;
  file : string;
  line : int;  (** 1-based; 0 = no meaningful position *)
  class_name : string;  (** [""] for file-scope diagnostics *)
  message : string;
}
(** Marshal-safe by construction (strings, ints, a plain variant): worker
    processes send diagnostics back over the {!Runner} result pipe. *)

type file_result = {
  lint_file : string;
  findings : diagnostic list;  (** active findings, sorted by (line, code) *)
  suppressed : diagnostic list;
      (** findings silenced by a [# shelley: disable] comment (kept for the
          JSON/SARIF renderers, which mark rather than drop them) *)
}

val lint_source :
  ?limits:Limits.t -> ?thresholds:Lint_semantic.thresholds -> file:string -> string ->
  file_result
(** Lint one source text. Never raises. *)

val lint_path :
  ?limits:Limits.t -> ?thresholds:Lint_semantic.thresholds -> string -> file_result
(** Read then {!lint_source}; an unreadable path yields one SY011
    diagnostic. Never raises. *)

val file_exit_code : file_result -> int
(** The per-file exit-code contract, mirroring [shelley check]:
    3 when a rule ran out of budget (SY090), else 2 when the file could not
    be read or parsed cleanly (SY010/SY011), else 1 when an error-severity
    finding is active, else 0. Suppressed findings never count. *)

val exit_code : file_result list -> int
(** Maximum of {!file_exit_code} over the run (0 for no files). *)

val count_severity : file_result list -> Report.severity -> int
(** Active findings of one severity across the run. *)
