type diagnostic = {
  rule : string;
  rule_name : string;
  severity : Report.severity;
  file : string;
  line : int;
  class_name : string;
  message : string;
}

type file_result = {
  lint_file : string;
  findings : diagnostic list;
  suppressed : diagnostic list;
}

let diag ?(line = 0) ?(class_name = "") ?severity (rule : Rules.t) ~file message =
  {
    rule = rule.Rules.code;
    rule_name = rule.Rules.name;
    severity = Option.value severity ~default:rule.Rules.severity;
    file;
    line;
    class_name;
    message;
  }

(* Exception barrier around one rule of one class, with the pipeline's span
   and counter conventions: findings are counted per rule code; a blown
   budget or a crash becomes an engine diagnostic for this class while the
   other rules still run. *)
let guarded_rule ~file ~class_name (rule : Rules.t) f =
  Obs.with_span
    ~args:[ ("class", class_name); ("rule", rule.Rules.code) ]
    ("lint." ^ rule.Rules.name)
  @@ fun () ->
  match f () with
  | found ->
    if found <> [] then Obs.count ("lint.findings." ^ rule.Rules.code) (List.length found);
    List.map (fun (line, message) -> diag ?line ~class_name rule ~file message) found
  | exception Limits.Budget_exceeded { resource; limit } ->
    Obs.count "lint.rules_budget_exceeded" 1;
    [
      diag ~class_name Rules.rule_resource_limit ~file
        (Printf.sprintf "lint rule %s (%s) exceeded its budget: %s (limit %d)"
           rule.Rules.code rule.Rules.name resource limit);
    ]
  | exception exn ->
    Obs.count "lint.rules_crashed" 1;
    [
      diag ~class_name Rules.rule_internal_error ~file
        (Printf.sprintf "lint rule %s (%s) failed: %s" rule.Rules.code rule.Rules.name
           (Printexc.to_string exn));
    ]

(* Extraction diagnostics are Report.Structural values; give them the SY020
   umbrella code but keep their own severity and wording. *)
let of_extraction_report ~file report =
  match (report : Report.t) with
  | Report.Structural { class_name; line; severity; message } ->
    Some (diag ?line ~class_name ~severity Rules.annotation_error ~file message)
  | _ -> None

let structural_diagnostics ~file (model : Model.t) =
  List.map
    (fun ((rule : Rules.t), line, message) ->
      diag ?line ~class_name:model.Model.name rule ~file message)
    (Validate.diagnostics model)

let semantic_diagnostics ~limits ~thresholds ~env ~file (cls, model) =
  let ctx =
    { Lint_semantic.limits; thresholds; env; cls; model }
  in
  List.concat_map
    (fun (rule, run) ->
      guarded_rule ~file ~class_name:model.Model.name rule (fun () -> run ctx))
    Lint_semantic.rules

(* --- Suppressions ----------------------------------------------------------

   A suppression comment governs its own line when it trails code, and the
   next line when it stands alone — so both of these silence the SY101 on
   the operation at line 12:

     12  @op    # shelley: disable=SY101
     --
     11  # shelley: disable=SY101
     12  @op
*)
let suppression_plan source =
  let sups = Mpy_parser.suppressions source in
  let governed =
    List.map
      (fun (s : Mpy_parser.suppression) ->
        let line = if s.Mpy_parser.sup_standalone then s.sup_line + 1 else s.sup_line in
        (line, s.Mpy_parser.sup_codes))
      sups
  in
  let unknown =
    List.concat_map
      (fun (s : Mpy_parser.suppression) ->
        List.filter_map
          (fun code ->
            if Rules.find_code code = None then Some (s.Mpy_parser.sup_line, code)
            else None)
          s.Mpy_parser.sup_codes)
      sups
  in
  (governed, unknown)

let suppressed_by governed (d : diagnostic) =
  d.line > 0
  && List.exists
       (fun (line, codes) ->
         line = d.line && (codes = [] || List.mem d.rule codes))
       governed

let sort_diagnostics ds =
  List.stable_sort
    (fun a b ->
      let c = compare a.line b.line in
      if c <> 0 then c
      else
        let c = compare a.rule b.rule in
        if c <> 0 then c else compare a.message b.message)
    ds

let lint_source ?(limits = Limits.default)
    ?(thresholds = Lint_semantic.default_thresholds) ~file source =
  Obs.with_span ~args:[ ("file", file) ] "lint" @@ fun () ->
  let program, parse_diags = Mpy_parser.parse_program_tolerant source in
  let syntax =
    List.map
      (fun (d : Mpy_parser.diagnostic) ->
        diag ~line:d.Mpy_parser.diag_line Rules.syntax_error ~file
          (Printf.sprintf "syntax error (col %d): %s" d.Mpy_parser.diag_col
             d.Mpy_parser.diag_message))
      parse_diags
  in
  (* Extract every class first: the semantic rules need the program-local
     environment (undeclared-subsystem-call resolves field classes in it). *)
  let extractions =
    List.map
      (fun (cls : Mpy_ast.class_def) ->
        match Extract.extract_class cls with
        | extraction -> (cls, Ok extraction)
        | exception Limits.Budget_exceeded { resource; limit } ->
          ( cls,
            Error
              (diag ~class_name:cls.Mpy_ast.cls_name Rules.rule_resource_limit ~file
                 (Printf.sprintf "extraction exceeded its budget: %s (limit %d)" resource
                    limit)) )
        | exception exn ->
          ( cls,
            Error
              (diag ~class_name:cls.Mpy_ast.cls_name Rules.rule_internal_error ~file
                 (Printf.sprintf "extraction failed: %s" (Printexc.to_string exn))) ))
      program.Mpy_ast.prog_classes
  in
  let models =
    List.filter_map
      (fun (_, ext) ->
        match ext with
        | Ok (e : Extract.result) -> Some e.Extract.model
        | Error _ -> None)
      extractions
  in
  let env name =
    List.find_opt (fun (m : Model.t) -> String.equal m.Model.name name) models
  in
  let per_class =
    List.concat_map
      (fun (cls, ext) ->
        match ext with
        | Error d -> [ d ]
        | Ok (extraction : Extract.result) ->
          let model = extraction.Extract.model in
          List.filter_map (of_extraction_report ~file) extraction.Extract.diagnostics
          @ structural_diagnostics ~file model
          @ semantic_diagnostics ~limits ~thresholds ~env ~file (cls, model))
      extractions
  in
  let governed, unknown = suppression_plan source in
  let unknown_diags =
    List.map
      (fun (line, code) ->
        diag ~line Rules.unknown_suppression ~file
          (Printf.sprintf "suppression comment names unknown rule code '%s'" code))
      unknown
  in
  let all = syntax @ per_class @ unknown_diags in
  let suppressed, findings = List.partition (suppressed_by governed) all in
  Obs.count "lint.findings" (List.length findings);
  Obs.count "lint.suppressed" (List.length suppressed);
  {
    lint_file = file;
    findings = sort_diagnostics findings;
    suppressed = sort_diagnostics suppressed;
  }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_path ?limits ?thresholds path =
  match read_file path with
  | source -> lint_source ?limits ?thresholds ~file:path source
  | exception Sys_error msg ->
    {
      lint_file = path;
      findings = [ diag Rules.unreadable_file ~file:path ("cannot read file: " ^ msg) ];
      suppressed = [];
    }

let file_exit_code r =
  let has code = List.exists (fun d -> String.equal d.rule code) r.findings in
  if has Rules.rule_resource_limit.Rules.code then 3
  else if has Rules.syntax_error.Rules.code || has Rules.unreadable_file.Rules.code then 2
  else if List.exists (fun d -> d.severity = Report.Error) r.findings then 1
  else 0

let exit_code results = List.fold_left (fun acc r -> max acc (file_exit_code r)) 0 results

let count_severity results severity =
  List.fold_left
    (fun acc r ->
      acc + List.length (List.filter (fun d -> d.severity = severity) r.findings))
    0 results
