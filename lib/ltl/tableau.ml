module Fset = Set.Make (struct
  type t = Ltlf.t

  let compare = Ltlf.compare
end)

(* α/β decomposition of a pending obligation list into elementary sets
   (literals and X/WX obligations only). Branches that contain False or
   contradictory/unsatisfiable literals are pruned. *)
let expand pending =
  let rec go pending elem =
    match pending with
    | [] -> if consistent elem then [ elem ] else []
    | f :: rest -> (
      match (f : Ltlf.t) with
      | True -> go rest elem
      | False -> []
      | Atom _ | Not (Atom _) | Next _ | Wnext _ -> go rest (Fset.add f elem)
      | And (a, b) -> go (a :: b :: rest) elem
      | Or (a, b) -> go (a :: rest) elem @ go (b :: rest) elem
      | Globally a -> go (a :: Ltlf.Wnext f :: rest) elem
      | Finally a -> go (a :: rest) elem @ go (Ltlf.Next f :: rest) elem
      | Until (a, b) -> go (b :: rest) elem @ go (a :: Ltlf.Next f :: rest) elem
      | Wuntil (a, b) -> go (b :: rest) elem @ go (a :: Ltlf.Wnext f :: rest) elem
      | Not _ -> invalid_arg "Tableau: input not in negation normal form")
  and consistent elem =
    let positives =
      Fset.elements elem
      |> List.filter_map (function
           | Ltlf.Atom a -> Some a
           | _ -> None)
    in
    let negatives =
      Fset.elements elem
      |> List.filter_map (function
           | Ltlf.Not (Ltlf.Atom a) -> Some a
           | _ -> None)
    in
    (* At most one event happens per position: two distinct positive atoms,
       or a positive atom that is also negated, are unsatisfiable. *)
    (match positives with
    | [] | [ _ ] -> true
    | first :: rest -> List.for_all (Symbol.equal first) rest)
    && not (List.exists (fun p -> List.exists (Symbol.equal p) negatives) positives)
  in
  go pending Fset.empty |> List.sort_uniq Fset.compare

let elementary_sets f =
  expand [ Nnf.nnf f ] |> List.map Fset.elements

let literals_allow elem event =
  Fset.for_all
    (fun f ->
      match (f : Ltlf.t) with
      | Atom a -> Symbol.equal a event
      | Not (Atom a) -> not (Symbol.equal a event)
      | _ -> true)
    elem

(* Carrying a next-obligation across an event must preserve its end-of-trace
   reading: X g additionally demands that the remainder is nonempty (F true),
   WX g is discharged outright if the remainder is empty (G false). Both
   guards are inert for transitions — F true's branches impose nothing, and
   G false's branch is inconsistent — but decide acceptance correctly. *)
let nonempty = Ltlf.finally Ltlf.tt
let empty_trace = Ltlf.globally Ltlf.ff

let next_obligations elem =
  Fset.fold
    (fun f acc ->
      match (f : Ltlf.t) with
      | Next g -> Ltlf.conj nonempty g :: acc
      | Wnext g -> Ltlf.disj empty_trace g :: acc
      | _ -> acc)
    elem []

(* The trace may end in this state iff every pending obligation holds of the
   empty remainder. Evaluated on the *un-expanded* obligations: expanding
   first would lose end-of-trace disjuncts (e.g. G a must accept the empty
   trace even though its elementary form demands an 'a' event). *)
let accepting obligations = Fset.for_all (fun f -> Ltlf.holds f []) obligations

(* NFA states are obligation sets; the alpha/beta expansion lives inside the
   transition function: consuming [event] from [obligations] first
   decomposes them into elementary sets, keeps the ones whose literals agree
   with [event], and carries each one's next-obligations as a successor. *)
let successors obligations event =
  expand (Fset.elements obligations)
  |> List.filter (fun elem -> literals_allow elem event)
  |> List.map (fun elem -> Fset.of_list (next_obligations elem))
  |> List.sort_uniq Fset.compare

let to_nfa ?(limits = Limits.default) ~alphabet f =
  Obs.with_span "tableau" @@ fun () ->
  let budget =
    Limits.fuel ~within:limits ~resource:"tableau states" limits.Limits.max_states
  in
  let alphabet = List.sort_uniq Symbol.compare alphabet in
  let index = Hashtbl.create 64 in
  let order = ref [] in
  let count = ref 0 in
  let queue = Queue.create () in
  let intern obligations =
    let key = Fset.elements obligations in
    match Hashtbl.find_opt index key with
    | Some i -> i
    | None ->
      let i = !count in
      Limits.spend budget;
      incr count;
      Hashtbl.add index key i;
      order := obligations :: !order;
      Queue.add obligations queue;
      i
  in
  let start = [ intern (Fset.singleton (Nnf.nnf f)) ] in
  let transitions = ref [] in
  let rec explore () =
    match Queue.take_opt queue with
    | None -> ()
    | Some obligations ->
      let src = Hashtbl.find index (Fset.elements obligations) in
      List.iter
        (fun event ->
          List.iter
            (fun succ -> transitions := (src, event, intern succ) :: !transitions)
            (successors obligations event))
        alphabet;
      explore ()
  in
  explore ();
  Obs.count "tableau.states" !count;
  let states = Array.of_list (List.rev !order) in
  let accept =
    List.filter (fun i -> accepting states.(i)) (List.init !count Fun.id)
  in
  Nfa.create ~num_states:(max 1 !count) ~start ~accept ~transitions:!transitions ()

let check ?limits ?(alphabet = Symbol.Set.empty) ~impl formula =
  Obs.with_span "ltl.check" @@ fun () ->
  let full_alphabet =
    Symbol.Set.union alphabet (Symbol.Set.union (Nfa.alphabet impl) (Ltlf.atoms formula))
  in
  let spec = to_nfa ?limits ~alphabet:(Symbol.Set.elements full_alphabet) formula in
  match Language.inclusion_counterexample ?limits ~alphabet:full_alphabet ~impl ~spec () with
  | None -> Ok ()
  | Some counterexample -> Error { Ltl_check.formula; counterexample }
