(** Four-valued runtime monitoring of LTLf claims (RV-LTL style).

    While {!Ltl_check} decides a claim against the *whole* language of a
    model, a monitor watches one live trace, event by event, and reports
    what is already knowable about the still-growing execution:

    - [Definitely_true]: every possible continuation (including stopping
      now) satisfies the claim — monitoring can be switched off;
    - [Definitely_false]: no continuation can satisfy it — raise the alarm;
    - [Presumably_true]: stopping now would satisfy the claim, but some
      continuation could still violate it;
    - [Presumably_false]: stopping now would violate it, but some
      continuation could still satisfy it.

    Implemented over the {!Progression} DFA: the two definitive verdicts are
    reachability properties of the current state, so each step is a single
    table lookup. Verdicts are *monotone*: once definitive, a verdict never
    changes (checked by the test-suite). *)

type verdict =
  | Definitely_true
  | Definitely_false
  | Presumably_true
  | Presumably_false

val pp_verdict : Format.formatter -> verdict -> unit

val is_definitive : verdict -> bool

type t

val start : ?limits:Limits.t -> alphabet:Symbol.t list -> Ltlf.t -> t
(** Builds the progression DFA and the per-state verdict table. The alphabet
    must cover every event the monitored system can emit; {!step} on a
    symbol outside it raises [Invalid_argument].
    @raise Limits.Budget_exceeded if the claim's automaton exceeds
    [limits.max_states] (default {!Limits.default}). *)

val step : t -> Symbol.t -> t
val verdict : t -> verdict

val run : ?limits:Limits.t -> alphabet:Symbol.t list -> Ltlf.t -> Trace.t -> verdict
(** The verdict after feeding the whole trace. *)

val verdict_trajectory :
  ?limits:Limits.t -> alphabet:Symbol.t list -> Ltlf.t -> Trace.t -> verdict list
(** The verdict after each prefix (starting with the empty prefix) — length
    [length trace + 1]. *)
