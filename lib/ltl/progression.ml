let nonempty = Ltlf.finally Ltlf.tt

(* Flatten an And/Or spine into a sorted, deduplicated list of juncts. *)
let rec flatten_and acc (f : Ltlf.t) =
  match f with
  | And (a, b) -> flatten_and (flatten_and acc a) b
  | f -> f :: acc

let rec flatten_or acc (f : Ltlf.t) =
  match f with
  | Or (a, b) -> flatten_or (flatten_or acc a) b
  | f -> f :: acc

let rec aci (f : Ltlf.t) : Ltlf.t =
  match f with
  | True | False | Atom _ -> f
  | Not g -> Ltlf.neg (aci g)
  | Next g -> Ltlf.next (aci g)
  | Wnext g -> Ltlf.wnext (aci g)
  | Globally g -> Ltlf.globally (aci g)
  | Finally g -> Ltlf.finally (aci g)
  | Until (a, b) -> Ltlf.until (aci a) (aci b)
  | Wuntil (a, b) -> Ltlf.wuntil (aci a) (aci b)
  | And _ ->
    let juncts = flatten_and [] f |> List.map aci in
    let juncts = List.concat_map (flatten_and []) juncts in
    let juncts = List.sort_uniq Ltlf.compare juncts in
    if List.mem Ltlf.ff juncts then Ltlf.ff
    else
      (match List.filter (fun g -> g <> Ltlf.tt) juncts with
      | [] -> Ltlf.tt
      | first :: rest -> List.fold_left (fun acc g -> Ltlf.And (acc, g)) first rest)
  | Or _ ->
    let juncts = flatten_or [] f |> List.map aci in
    let juncts = List.concat_map (flatten_or []) juncts in
    let juncts = List.sort_uniq Ltlf.compare juncts in
    if List.mem Ltlf.tt juncts then Ltlf.tt
    else
      (match List.filter (fun g -> g <> Ltlf.ff) juncts with
      | [] -> Ltlf.ff
      | first :: rest -> List.fold_left (fun acc g -> Ltlf.Or (acc, g)) first rest)

(* Negation normal form first: progression through [Not] merely wraps the
   progressed obligation, so without NNF the state formulas can nest
   negations unboundedly and the obligation closure need not be finite. In
   NNF the reachable obligations are ACI combinations over a finite base,
   which guarantees the automaton construction terminates. *)
let normalize f = aci (Nnf.nnf f)

let rec progress (f : Ltlf.t) e : Ltlf.t =
  match f with
  | True -> Ltlf.tt
  | False -> Ltlf.ff
  | Atom a -> if Symbol.equal a e then Ltlf.tt else Ltlf.ff
  | Not g -> Ltlf.neg (progress g e)
  | And (a, b) -> Ltlf.conj (progress a e) (progress b e)
  | Or (a, b) -> Ltlf.disj (progress a e) (progress b e)
  | Next g -> Ltlf.conj nonempty g
  | Wnext g -> Ltlf.disj (Ltlf.neg nonempty) g
  | Until (a, b) -> Ltlf.disj (progress b e) (Ltlf.conj (progress a e) f)
  | Wuntil (a, b) -> Ltlf.disj (progress b e) (Ltlf.conj (progress a e) f)
  | Globally g -> Ltlf.conj (progress g e) f
  | Finally g -> Ltlf.disj (progress g e) f

let accepts_empty f = Ltlf.holds f []

module Fmap = Map.Make (struct
  type t = Ltlf.t

  let compare = Ltlf.compare
end)

let explore ?(limits = Limits.default) ~alphabet f =
  Obs.with_span "progression" @@ fun () ->
  let start = normalize f in
  let budget =
    Limits.fuel ~within:limits ~resource:"progression obligations" limits.Limits.max_states
  in
  let index = ref Fmap.empty in
  let order = ref [] in
  let count = ref 0 in
  let queue = Queue.create () in
  let intern g =
    match Fmap.find_opt g !index with
    | Some i -> i
    | None ->
      Limits.spend budget;
      let i = !count in
      incr count;
      index := Fmap.add g i !index;
      order := g :: !order;
      Queue.add g queue;
      i
  in
  let start_id = intern start in
  let edges = Hashtbl.create 64 in
  let rec loop () =
    match Queue.take_opt queue with
    | None -> ()
    | Some g ->
      let src = Fmap.find g !index in
      List.iter
        (fun e ->
          let dst = intern (normalize (progress g e)) in
          Hashtbl.replace edges (src, e) dst)
        alphabet;
      loop ()
  in
  loop ();
  Obs.count "progression.obligations" !count;
  (start_id, Array.of_list (List.rev !order), edges, !count)

let to_dfa ?limits ~alphabet f =
  let alphabet = List.sort_uniq Symbol.compare alphabet in
  let start_id, states, edges, count = explore ?limits ~alphabet f in
  Dfa.create ~alphabet ~num_states:count ~start:start_id
    ~accept:
      (List.filter (fun i -> accepts_empty states.(i)) (List.init count Fun.id))
    ~next:(fun q sym ->
      match Hashtbl.find_opt edges (q, sym) with
      | Some q' -> q'
      | None ->
        invalid_arg
          (Printf.sprintf
             "Progression.to_dfa: no transition from state %d on symbol '%s' (symbol \
              outside the DFA alphabet?)"
             q (Symbol.name sym)))

let num_reachable_obligations ~alphabet f =
  let _, _, _, count = explore ~alphabet:(List.sort_uniq Symbol.compare alphabet) f in
  count
