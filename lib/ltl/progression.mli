(** Formula progression and the LTLf → DFA construction.

    [progress φ e] rewrites φ into the obligation that the *rest* of the
    trace must satisfy after observing event [e] — the classic
    Bacchus–Kabanza progression adapted to finite traces: strong next [X φ]
    progresses to [nonempty ∧ φ] (encoded as [F true ∧ φ]) and weak next to
    [¬nonempty ∨ φ], so end-of-trace acceptance is decided uniformly by
    evaluating the state formula on the empty trace.

    Because obligations are built from subformulas of φ closed under ∧/∨,
    ACI-normalization ({!normalize}) makes the state space finite, giving a
    *deterministic* automaton directly: states are normal forms, the
    transition function is progression, and a state accepts iff its formula
    holds of the empty trace. This realizes the paper's §5 remark about
    checking claims directly on regular languages (no NuSMV detour). *)

val progress : Ltlf.t -> Symbol.t -> Ltlf.t
(** One-event progression (result not yet normalized). *)

val normalize : Ltlf.t -> Ltlf.t
(** Negation normal form followed by ACI normalization (And/Or chains
    flattened, sorted, deduplicated, unit/absorption laws applied).
    Language-preserving; guarantees the obligation closure is finite. *)

val accepts_empty : Ltlf.t -> bool
(** Does the empty remainder satisfy the obligation? *)

val to_dfa : ?limits:Limits.t -> alphabet:Symbol.t list -> Ltlf.t -> Dfa.t
(** The progression DFA over the given alphabet. The alphabet must cover
    every event the checked system can emit (atoms outside it can never
    hold, which is almost never what a claim means).

    The obligation closure is finite but can be doubly exponential in the
    formula size; the construction discovers at most [limits.max_states]
    obligations (default {!Limits.default}), turning a pathological claim
    into a clean typed error instead of an apparent hang.
    @raise Limits.Budget_exceeded beyond [limits.max_states] states. *)

val num_reachable_obligations : alphabet:Symbol.t list -> Ltlf.t -> int
(** Size of the progression state space (before DFA minimization) —
    benchmarked against the formula size. *)
