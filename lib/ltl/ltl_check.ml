type violation = {
  formula : Ltlf.t;
  counterexample : Trace.t;
}

let pp_violation fmt v =
  Format.fprintf fmt "@[<v>Formula: %a@,Counter example: %a@]" Ltlf.pp v.formula Trace.pp
    v.counterexample

let check ?limits ?(alphabet = Symbol.Set.empty) ~impl formula =
  Obs.with_span "ltl.check" @@ fun () ->
  let full_alphabet =
    Symbol.Set.union alphabet (Symbol.Set.union (Nfa.alphabet impl) (Ltlf.atoms formula))
  in
  let dfa =
    Progression.to_dfa ?limits ~alphabet:(Symbol.Set.elements full_alphabet) formula
  in
  let spec = Dfa.to_nfa dfa in
  match Language.inclusion_counterexample ?limits ~alphabet:full_alphabet ~impl ~spec () with
  | None -> Ok ()
  | Some counterexample -> Error { formula; counterexample }

let check_claim ?limits ?alphabet ~impl claim =
  check ?limits ?alphabet ~impl (Ltl_parser.parse claim)

let holds_on_all_words ~max_len formula impl =
  Trace.Set.for_all (fun w -> Ltlf.holds formula w) (Nfa.words_upto ~max_len impl)
