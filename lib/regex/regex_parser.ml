exception Parse_error of string * int * int

let () =
  Printexc.register_printer (function
    | Parse_error (msg, line, col) ->
      Some (Printf.sprintf "Regex_parser.Parse_error(line %d, col %d: %s)" line col msg)
    | _ -> None)

type token =
  | Event of string
  | Eps
  | Empty
  | Plus
  | Dot  (** explicit concatenation *)
  | Star
  | Lparen
  | Rparen
  | Eof

type positioned = {
  tok : token;
  tok_line : int;  (** 1-based *)
  tok_col : int;  (** 0-based *)
}

let describe = function
  | Event s -> Printf.sprintf "event %S" s
  | Eps -> "'\xce\xb5'"
  | Empty -> "'\xe2\x88\x85'"
  | Plus -> "'+'"
  | Dot -> "'\xc2\xb7'"
  | Star -> "'*'"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Eof -> "end of input"

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  || c = '.' || c = '%' || c = ':'

let eps_utf8 = "\xce\xb5"
let empty_utf8 = "\xe2\x88\x85"
let middot_utf8 = "\xc2\xb7"

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let rec go i ~line ~bol =
    let emit tok width =
      tokens := { tok; tok_line = line; tok_col = i - bol } :: !tokens;
      go (i + width) ~line ~bol
    in
    if i >= n then tokens := { tok = Eof; tok_line = line; tok_col = i - bol } :: !tokens
    else if i + 2 <= n && String.sub input i 2 = eps_utf8 then emit Eps 2
    else if i + 2 <= n && String.sub input i 2 = middot_utf8 then emit Dot 2
    else if i + 3 <= n && String.sub input i 3 = empty_utf8 then emit Empty 3
    else
      match input.[i] with
      | '\n' -> go (i + 1) ~line:(line + 1) ~bol:(i + 1)
      | ' ' | '\t' | '\r' -> go (i + 1) ~line ~bol
      | '+' -> emit Plus 1
      | '*' -> emit Star 1
      | '(' -> emit Lparen 1
      | ')' -> emit Rparen 1
      | c when is_ident_char c ->
        let j = ref i in
        while !j < n && is_ident_char input.[!j] do
          incr j
        done;
        let word = String.sub input i (!j - i) in
        let tok =
          match word with
          | "eps" | "1" -> Eps
          | "empty" | "0" -> Empty
          | _ -> Event word
        in
        emit tok (!j - i)
      | c ->
        raise
          (Parse_error (Printf.sprintf "unexpected character %C" c, line, i - bol))
  in
  go 0 ~line:1 ~bol:0;
  List.rev !tokens

type cursor = { mutable tokens : positioned list }

let peek cur =
  match cur.tokens with
  | [] -> { tok = Eof; tok_line = 1; tok_col = 0 }
  | t :: _ -> t

let advance cur =
  match cur.tokens with
  | [] -> ()
  | _ :: rest -> cur.tokens <- rest

let error_at (p : positioned) msg = raise (Parse_error (msg, p.tok_line, p.tok_col))

let expect cur t =
  let p = peek cur in
  if p.tok = t then advance cur
  else
    error_at p (Printf.sprintf "expected %s but found %s" (describe t) (describe p.tok))

let starts_atom = function
  | Event _ | Eps | Empty | Lparen -> true
  | Plus | Dot | Star | Rparen | Eof -> false

let rec parse_alt cur =
  let first = parse_cat cur in
  match (peek cur).tok with
  | Plus ->
    advance cur;
    Regex.alt first (parse_alt cur)
  | _ -> first

and parse_cat cur =
  let first = parse_star cur in
  let rec continue_ acc =
    match (peek cur).tok with
    | Dot ->
      advance cur;
      continue_ (Regex.seq acc (parse_star cur))
    | t when starts_atom t -> continue_ (Regex.seq acc (parse_star cur))
    | _ -> acc
  in
  continue_ first

and parse_star cur =
  let atom = parse_atom cur in
  let rec stars acc =
    match (peek cur).tok with
    | Star ->
      advance cur;
      stars (Regex.star acc)
    | _ -> acc
  in
  stars atom

and parse_atom cur =
  let p = peek cur in
  match p.tok with
  | Event name ->
    advance cur;
    Regex.sym_of_name name
  | Eps ->
    advance cur;
    Regex.eps
  | Empty ->
    advance cur;
    Regex.empty
  | Lparen ->
    advance cur;
    let r = parse_alt cur in
    expect cur Rparen;
    r
  | t -> error_at p (Printf.sprintf "expected an expression but found %s" (describe t))

let parse input =
  let cur = { tokens = tokenize input } in
  let r = parse_alt cur in
  expect cur Eof;
  r

let parse_result input =
  match parse input with
  | r -> Ok r
  | exception Parse_error (msg, line, col) ->
    Error (Printf.sprintf "line %d, col %d: %s" line col msg)
