type event = {
  ev_name : string;
  ev_args : (string * string) list;
  ev_ts_us : int;
  ev_begin : bool;
}

type profile = {
  unit_name : string;
  events : event list;
  counters : (string * int) list;
}

let fake_clock_env = "SHELLEY_OBS_FAKE_CLOCK"

type state = {
  mutable events : event list;  (* reversed *)
  mutable ctrs : (string, int) Hashtbl.t;
  mutable stable_ctrs : (string, int) Hashtbl.t;
      (* deterministic orchestrator counters (cache hits/misses, …): unlike
         [ctrs] these are shown in the --stats table, so only byte-stable
         values belong here — never timings *)
  mutable unit_profiles : (int * profile) list;  (* reversed *)
  mutable ticks : int;  (* fake-clock position, meaningful iff [fake] *)
  fake : bool;
  mutable epoch : float;  (* real-clock origin, Unix.gettimeofday *)
}

(* The whole enabled/disabled story is this one ref: [None] means every
   instrumentation entry point is a single branch and nothing allocates. *)
let state : state option ref = ref None

let enabled () = !state <> None
let using_fake_clock () =
  match !state with
  | Some st -> st.fake
  | None -> false

let env_fake () =
  match Sys.getenv_opt fake_clock_env with
  | None | Some "" -> false
  | Some _ -> true

let enable ?fake_clock () =
  let fake = match fake_clock with Some b -> b | None -> env_fake () in
  state :=
    Some
      {
        events = [];
        ctrs = Hashtbl.create 32;
        stable_ctrs = Hashtbl.create 8;
        unit_profiles = [];
        ticks = 0;
        fake;
        epoch = Unix.gettimeofday ();
      }

let disable () = state := None

let reset () =
  match !state with
  | None -> ()
  | Some st ->
    st.events <- [];
    st.ctrs <- Hashtbl.create 32;
    st.stable_ctrs <- Hashtbl.create 8;
    st.unit_profiles <- [];
    st.ticks <- 0;
    st.epoch <- Unix.gettimeofday ()

(* Fake mode: every read advances one tick = 1 ms, so durations count clock
   reads — deterministic for a deterministic span structure. *)
let now_us st =
  if st.fake then begin
    let t = st.ticks * 1000 in
    st.ticks <- st.ticks + 1;
    t
  end
  else int_of_float ((Unix.gettimeofday () -. st.epoch) *. 1e6)

let count key n =
  match !state with
  | None -> ()
  | Some st -> (
    match Hashtbl.find_opt st.ctrs key with
    | Some v -> Hashtbl.replace st.ctrs key (v + n)
    | None -> Hashtbl.add st.ctrs key n)

(* Stable counters live in their own table so [in_unit]'s buffer swap never
   redirects them: they always describe the orchestrator's own bookkeeping. *)
let count_stable key n =
  match !state with
  | None -> ()
  | Some st -> (
    match Hashtbl.find_opt st.stable_ctrs key with
    | Some v -> Hashtbl.replace st.stable_ctrs key (v + n)
    | None -> Hashtbl.add st.stable_ctrs key n)

let with_span ?(args = []) name f =
  match !state with
  | None -> f ()
  | Some st ->
    st.events <-
      { ev_name = name; ev_args = args; ev_ts_us = now_us st; ev_begin = true }
      :: st.events;
    let close () =
      (* Re-read [!state]: [f] may have swapped buffers (units) or disabled
         the recorder; close on whatever recorder is live now so B/E stay
         paired within one buffer. *)
      match !state with
      | None -> ()
      | Some st ->
        st.events <-
          { ev_name = name; ev_args = []; ev_ts_us = now_us st; ev_begin = false }
          :: st.events
    in
    Fun.protect ~finally:close f

module Span = struct
  let run = with_span
end

module Counter = struct
  let add = count
end

let sorted_counters tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let in_unit ~name f =
  match !state with
  | None -> (f (), None)
  | Some st ->
    let saved_events = st.events in
    let saved_ctrs = st.ctrs in
    let saved_ticks = st.ticks in
    st.events <- [];
    st.ctrs <- Hashtbl.create 32;
    if st.fake then st.ticks <- 0;
    let restore () =
      st.events <- saved_events;
      st.ctrs <- saved_ctrs;
      if st.fake then st.ticks <- saved_ticks
    in
    (match with_span ~args:[ ("file", name) ] "unit" f with
    | result ->
      let profile =
        {
          unit_name = name;
          events = List.rev st.events;
          counters = sorted_counters st.ctrs;
        }
      in
      restore ();
      (result, Some profile)
    | exception exn ->
      restore ();
      raise exn)

let add_unit ~lane profile =
  match !state with
  | None -> ()
  | Some st -> st.unit_profiles <- (lane, profile) :: st.unit_profiles

let units () =
  match !state with
  | None -> []
  | Some st -> List.rev st.unit_profiles

let profile_total_us (p : profile) =
  match p.events with
  | [] -> 0
  | first :: _ ->
    let last_ts = List.fold_left (fun _ ev -> ev.ev_ts_us) first.ev_ts_us p.events in
    max 0 (last_ts - first.ev_ts_us)

let counters () =
  match !state with
  | None -> []
  | Some st -> sorted_counters st.ctrs

let stable_counters () =
  match !state with
  | None -> []
  | Some st -> sorted_counters st.stable_ctrs

let unit_counters () =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (_, p) ->
      List.iter
        (fun (k, n) ->
          match Hashtbl.find_opt tbl k with
          | Some v -> Hashtbl.replace tbl k (v + n)
          | None -> Hashtbl.add tbl k n)
        p.counters)
    (units ());
  sorted_counters tbl

(* Phase aggregation over merged unit profiles: walk each profile's events
   with an explicit stack (they are well-nested by construction) and total
   the B→E durations per span name, in order of first appearance. *)
let phase_totals () =
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun ((_ : int), (p : profile)) ->
      let stack = ref [] in
      List.iter
        (fun ev ->
          if ev.ev_begin then stack := (ev.ev_name, ev.ev_ts_us) :: !stack
          else
            match !stack with
            | [] -> ()
            | (name, t0) :: rest ->
              stack := rest;
              let dur = max 0 (ev.ev_ts_us - t0) in
              (match Hashtbl.find_opt tbl name with
              | Some (c, tot) -> Hashtbl.replace tbl name (c + 1, tot + dur)
              | None ->
                order := name :: !order;
                Hashtbl.add tbl name (1, dur)))
        p.events)
    (units ());
  List.rev_map
    (fun name ->
      let c, tot = Hashtbl.find tbl name in
      (name, c, tot))
    !order

let clock_label () =
  match !state with
  | None -> "off"
  | Some st -> if st.fake then "fake" else "real"

(* --- sinks ----------------------------------------------------------------- *)

let merge_counter_lists lists =
  let tbl = Hashtbl.create 32 in
  List.iter
    (List.iter (fun (k, v) ->
         match Hashtbl.find_opt tbl k with
         | Some v0 -> Hashtbl.replace tbl k (v0 + v)
         | None -> Hashtbl.add tbl k v))
    lists;
  sorted_counters tbl

let render_stats fmt =
  let phases = phase_totals () in
  let n_units = List.length (units ()) in
  Format.fprintf fmt "== shelley run stats (%d unit%s, clock: %s) ==@." n_units
    (if n_units = 1 then "" else "s")
    (clock_label ());
  if phases = [] then Format.fprintf fmt "(no profiles recorded)@."
  else begin
    Format.fprintf fmt "%-36s %7s %12s %12s@." "phase" "count" "total_us" "mean_us";
    List.iter
      (fun (name, c, tot) ->
        Format.fprintf fmt "%-36s %7d %12d %12d@." name c tot (tot / max 1 c))
      phases
  end;
  (* Unit counters plus the stable orchestrator counters (cache behavior):
     both are byte-stable for a given corpus, so — unlike the worker-pool
     timing counters, which feed only the metrics sink — they may appear in
     this table. A warm all-hits run has no unit profiles at all, but its
     cache counters still print. *)
  let ctrs = merge_counter_lists [ unit_counters (); stable_counters () ] in
  if ctrs <> [] then begin
    Format.fprintf fmt "counters@.";
    List.iter (fun (k, v) -> Format.fprintf fmt "  %-44s %12d@." k v) ctrs
  end

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render_metrics_json () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"shelley.metrics/1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"clock\": \"%s\",\n" (clock_label ()));
  (* units *)
  Buffer.add_string b "  \"units\": [";
  let first = ref true in
  List.iter
    (fun (lane, (p : profile)) ->
      if not !first then Buffer.add_string b ",";
      first := false;
      Buffer.add_string b
        (Printf.sprintf "\n    {\"name\": \"%s\", \"lane\": %d, \"total_us\": %d, \"spans\": %d}"
           (json_escape p.unit_name) lane (profile_total_us p)
           (List.length (List.filter (fun ev -> ev.ev_begin) p.events))))
    (units ());
  Buffer.add_string b (if !first then "],\n" else "\n  ],\n");
  (* phases *)
  Buffer.add_string b "  \"phases\": [";
  let first = ref true in
  List.iter
    (fun (name, c, tot) ->
      if not !first then Buffer.add_string b ",";
      first := false;
      Buffer.add_string b
        (Printf.sprintf
           "\n    {\"name\": \"%s\", \"count\": %d, \"total_us\": %d, \"mean_us\": %d}"
           (json_escape name) c tot (tot / max 1 c)))
    (phase_totals ());
  Buffer.add_string b (if !first then "],\n" else "\n  ],\n");
  (* counters: unit sums, then recorder-level (worker pool etc.) and the
     stable orchestrator counters (cache behavior) merged in *)
  let merged = merge_counter_lists [ unit_counters (); counters (); stable_counters () ] in
  Buffer.add_string b "  \"counters\": {";
  let first = ref true in
  List.iter
    (fun (k, v) ->
      if not !first then Buffer.add_string b ",";
      first := false;
      Buffer.add_string b (Printf.sprintf "\n    \"%s\": %d" (json_escape k) v))
    merged;
  Buffer.add_string b (if !first then "}\n" else "\n  }\n");
  Buffer.add_string b "}\n";
  Buffer.contents b

let render_chrome_trace () =
  let b = Buffer.create 4096 in
  let emitted_something = ref false in
  let emit_raw s =
    if !emitted_something then Buffer.add_string b ",\n";
    emitted_something := true;
    Buffer.add_string b ("  " ^ s)
  in
  let emit_meta ~tid ~name ~value =
    emit_raw
      (Printf.sprintf
         "{\"name\": \"%s\", \"ph\": \"M\", \"pid\": 1, \"tid\": %d, \"args\": {\"name\": \"%s\"}}"
         name tid (json_escape value))
  in
  let emit_event ~tid ev =
    if ev.ev_begin then begin
      let args =
        String.concat ", "
          (List.map
             (fun (k, v) -> Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape v))
             ev.ev_args)
      in
      emit_raw
        (Printf.sprintf
           "{\"name\": \"%s\", \"cat\": \"shelley\", \"ph\": \"B\", \"ts\": %d, \"pid\": 1, \
            \"tid\": %d, \"args\": {%s}}"
           (json_escape ev.ev_name) ev.ev_ts_us tid args)
    end
    else
      emit_raw
        (Printf.sprintf "{\"name\": \"%s\", \"ph\": \"E\", \"ts\": %d, \"pid\": 1, \"tid\": %d}"
           (json_escape ev.ev_name) ev.ev_ts_us tid)
  in
  Buffer.add_string b "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  emit_meta ~tid:0 ~name:"process_name" ~value:"shelley";
  emit_meta ~tid:0 ~name:"thread_name" ~value:"orchestrator";
  let lanes =
    List.sort_uniq compare (List.map fst (units ()))
  in
  List.iter
    (fun lane ->
      emit_meta ~tid:(lane + 1) ~name:"thread_name"
        ~value:(Printf.sprintf "worker %d" lane))
    lanes;
  (* Orchestrator events (tid 0): whatever the parent recorded outside units.
     Parent buffers are reversed; unit profiles are already chronological. *)
  (match !state with
  | None -> ()
  | Some st -> List.iter (emit_event ~tid:0) (List.rev st.events));
  List.iter
    (fun (lane, (p : profile)) -> List.iter (emit_event ~tid:(lane + 1)) p.events)
    (units ());
  Buffer.add_string b "\n]}\n";
  Buffer.contents b
