(** Observability: spans, counters, and sinks for the verification pipeline.

    [Obs] is the one metrics story for the whole stack: nested wall-clock
    spans keyed by phase/class/file, monotonic counters (fuel consumed,
    automaton states created, product configurations explored, worker-pool
    stats), and three sinks over the same recorded data — a human summary
    table ([shelley check --stats]), machine-readable metrics JSON
    ([--metrics-out]), and Chrome [trace_event] output ([--trace-out],
    loadable in [chrome://tracing] / Perfetto).

    Design constraints, in order:

    - {b Zero overhead when disabled.} The recorder defaults to off; every
      instrumentation call ({!with_span}, {!count}) then costs one branch
      on an option ref and allocates nothing. [bench/bench_parallel.exe]
      guards this with a hard ns/op budget.
    - {b Never on stdout.} Sinks render to [stderr] or to files the caller
      names; the verification report stream stays byte-identical whether
      observability is enabled or not (property-tested in the suite).
    - {b Process-crossing profiles.} A forked worker ({!Runner}) records
      into its own (inherited) recorder; {!in_unit} delimits one
      verification unit and yields a marshal-safe {!profile} — plain
      strings and ints, no interned symbols — that the parent merges with
      {!add_unit} under the worker's lane, so one trace shows every
      worker's timeline.
    - {b Determinism seam.} When the [SHELLEY_OBS_FAKE_CLOCK] environment
      variable is set (or [enable ~fake_clock:true]), timestamps come from
      a deterministic tick counter that {!in_unit} resets per unit, so
      [--stats] output is byte-stable across runs and across [-j] levels —
      the cram tests pin it. *)

type event = {
  ev_name : string;
  ev_args : (string * string) list;  (** only on begin events *)
  ev_ts_us : int;  (** microseconds since the recorder (or unit) epoch *)
  ev_begin : bool;  (** [true] = span open ("B"), [false] = span close ("E") *)
}

type profile = {
  unit_name : string;  (** the file (or other unit) this profile covers *)
  events : event list;  (** chronological, well-nested by construction *)
  counters : (string * int) list;  (** sorted by counter name *)
}
(** Everything one verification unit recorded. Marshal-safe: workers send
    profiles back over the result pipe. *)

val fake_clock_env : string
(** ["SHELLEY_OBS_FAKE_CLOCK"]. *)

val enabled : unit -> bool

val enable : ?fake_clock:bool -> unit -> unit
(** Install a fresh recorder. [fake_clock] defaults to whether
    {!fake_clock_env} is set to a non-empty value. *)

val disable : unit -> unit
(** Drop the recorder; instrumentation reverts to the one-branch no-op. *)

val reset : unit -> unit
(** Clear recorded events/counters/units, keeping the recorder enabled
    (and re-zeroing the fake clock). No-op when disabled. *)

val using_fake_clock : unit -> bool

(** {1 Instrumentation} *)

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span: a begin event now, an end
    event when [f] returns {e or raises} (the exception is re-raised).
    When disabled this is exactly [f ()]. *)

val count : string -> int -> unit
(** [count key n] adds [n] to counter [key] (created at 0). One branch
    when disabled. *)

val count_stable : string -> int -> unit
(** Like {!count}, but into the recorder's {e stable} counter table: values
    that are deterministic for a given corpus and configuration (cache hits,
    misses, bytes — never timings). Stable counters are exempt from
    {!in_unit}'s buffer swap (they always describe the orchestrator), are
    shown in the [--stats] table alongside the unit counters, and merge into
    the metrics JSON like every other counter. The worker-pool timing
    counters deliberately use plain {!count} so nondeterministic values
    never reach the byte-stable stats table. *)

(** Aliases matching the subsystem vocabulary ([Obs.Span.run],
    [Obs.Counter.add]). *)
module Span : sig
  val run : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
end

module Counter : sig
  val add : string -> int -> unit
end

(** {1 Units and worker-profile merging} *)

val in_unit : name:string -> (unit -> 'a) -> 'a * profile option
(** Delimit one verification unit: run [f] against a fresh event buffer and
    counter table (fake clock re-zeroed), wrapped in a root span ["unit"]
    carrying [("file", name)]. Returns [f]'s result plus the captured
    profile; the enclosing recorder state is restored afterwards.
    [(f (), None)] when disabled. *)

val add_unit : lane:int -> profile -> unit
(** Merge a unit profile into the recorder under worker lane [lane]
    (lane [k] renders as Chrome tid [k + 1]; tid 0 is the orchestrator). *)

val units : unit -> (int * profile) list
(** Merged unit profiles, in {!add_unit} order. *)

val profile_total_us : profile -> int
(** Duration of the profile's root span (0 if malformed/empty). *)

(** {1 Inspection} *)

val counters : unit -> (string * int) list
(** Recorder-level (parent/orchestrator) counters, sorted by name —
    e.g. the worker-pool stats {!Runner} records. Does not include unit
    counters ({!unit_counters}) or stable counters ({!stable_counters}). *)

val stable_counters : unit -> (string * int) list
(** The {!count_stable} table, sorted by name. *)

val unit_counters : unit -> (string * int) list
(** Counters summed across all merged unit profiles, sorted by name.
    Deterministic under the fake clock — this is what the [--stats] table
    shows. *)

val phase_totals : unit -> (string * int * int) list
(** [(phase, count, total_us)] aggregated over merged unit profiles, in
    order of first appearance. *)

(** {1 Sinks} *)

val render_stats : Format.formatter -> unit
(** The human [--stats] table: per-phase counts and timings plus unit
    counters and stable orchestrator counters. Built only from merged unit
    profiles and {!count_stable} values, so it is byte-stable under the
    fake clock regardless of [-j]. *)

val render_metrics_json : unit -> string
(** Machine-readable metrics, schema ["shelley.metrics/1"]: top-level keys
    [schema], [clock], [units] (array of [{name, lane, total_us, spans}]),
    [phases] (array of [{name, count, total_us, mean_us}]), and [counters]
    (object; unit counters summed, then recorder counters merged in). *)

val render_chrome_trace : unit -> string
(** Chrome [trace_event] JSON ([{"traceEvents": [...]}]): orchestrator
    events on tid 0, each unit's events on tid [lane + 1], with
    [thread_name] metadata per lane. Every ["E"] closes a matching ["B"]
    by construction. *)
