(** Parallel, fault-isolated driving of the verification pipeline over
    files — the engine behind [shelley check -j N --timeout S] and the
    [shelley serve] daemon.

    Each file is one verification unit: a {!Supervisor} pool worker parses,
    extracts and checks it ({!Pipeline.verify_source}) and sends back the
    fully rendered report block plus the per-file exit code. Because workers
    return {e rendered text} (not interned symbols or models, which are not
    stable across process boundaries), the parent only concatenates blocks
    in input order — so the aggregate output is byte-identical for
    [jobs = 1] and [jobs = N], and a unit's block depends only on that
    unit.

    A unit that exceeds {!Limits.t.deadline} or whose worker dies is
    retried once under {!Limits.reduced} (so a fuel-reachable blowup
    resurfaces as a deterministic [Resource_limit] report instead of a
    bare timeout); a failed retry yields a {!Report.Timeout} /
    {!Report.Worker_crashed} block and per-file code 3 while every other
    unit still completes. *)

type verdict = {
  path : string;
  output : string;
      (** the file's full report block, ["== path ==…"], empty when the
          file verified silently *)
  code : int;  (** per-file exit code: 0 / 1 / 2 / 3, see {!exit_code} *)
  profile : Obs.profile option;
      (** the unit's span tree and counters when the {!Obs} recorder was
          enabled during the check (in the worker, for forked units);
          [None] when observability is off or the unit timed out /
          crashed. Already merged into the parent recorder by
          {!check_files}. *)
}

val check_file :
  ?limits:Limits.t ->
  ?warnings:bool ->
  ?explain:bool ->
  ?lint:bool ->
  ?extra_env:Usage.env ->
  string ->
  verdict
(** Check one file in the current process (no fork, no deadline): read,
    verify tolerantly, render. Never raises on unreadable or broken input —
    that is a rendered error block with code 2.

    With [~lint:true], the lint pass ({!Lint.lint_source}) also runs and
    its {e semantic} findings (SY012, SY090/SY091, SY101–SY108 — the codes
    plain [check] has no counterpart for) are appended to the file's block
    as [file:line: severity CODE \[Class\]: message] lines; an
    error-severity lint finding raises the per-file code to at least 1.
    With linting off the output is byte-identical to what [check] has
    always printed. *)

type pool
(** A persistent {!Supervisor} worker pool able to serve both {!check_files}
    and {!lint_files} jobs. One pool can outlive any number of calls — the
    daemon keeps a single pool across requests so workers stay hot. *)

val make_pool :
  ?after_fork:(unit -> unit) -> ?max_as_mb:int -> ?jobs:int -> unit -> pool
(** Build a pool of [jobs] (default 1) persistent workers. Workers are
    forked lazily on first use; [after_fork] runs in each child right after
    the fork (the daemon closes its listening socket there). With
    [max_as_mb > 0] each worker's address space is capped via
    setrlimit(RLIMIT_AS): a check or lint unit that balloons past the cap
    fails with a rendered resource-limit verdict (exit 3, same class as
    running out of fuel) instead of a crash — and instead of inviting the
    host OOM killer. *)

val pool_stats : pool -> Supervisor.stats
val pool_worker_pids : pool -> int list

val quiesce_pool : pool -> unit
(** Retire the pool's live workers but keep it usable — the next call
    respawns on demand. The daemon calls this after an idle period. *)

val shutdown_pool : pool -> unit
(** Retire the workers and close the pool. Idempotent; a closed pool still
    completes calls by running jobs in-process. *)

val check_files :
  ?jobs:int ->
  ?limits:Limits.t ->
  ?warnings:bool ->
  ?explain:bool ->
  ?lint:bool ->
  ?using:string list ->
  ?pool:pool ->
  ?cache:Cache.t ->
  ?cache_extra:string list ->
  string list ->
  verdict list
(** All files, in input order, through a persistent {!Supervisor} pool of
    [jobs] workers (default 1) with [limits.deadline] as the per-unit wall
    clock (enforced externally by the supervisor, per attempt). With
    [jobs <= 1], no deadline and no [?pool] the files run in-process with
    identical settle/retry semantics and no forks at all. With [?pool] the
    caller's pool is used (and kept open), [jobs] is ignored in favor of
    the pool's width, and [limits.deadline] applies per call — this is how
    the daemon multiplexes requests over one pool.

    [?using] names model files whose exported environment
    ({!Model_io.env_of_files}) augments verification; workers rebuild and
    memoize it by path + content digest, so a long-lived worker notices
    edits between requests. Unreadable or broken [--using] files should be
    rejected by the caller up front (the CLI exits 2); a file that breaks
    {e after} that validation degrades to an empty environment rather than
    crashing the unit.

    With [?cache], every readable file is first looked up under its
    {!check_cache_key} (computed in the orchestrator, so an entry is read
    once however many workers run); hits yield their stored verdict without
    running a worker or {!fault_hook}, misses run as usual and the
    orchestrator stores each rendered result after the pool settles — but
    only results whose {e first} attempt succeeded: timed-out and crashed
    units are never stored, and a success on the reduced-budget retry is
    not stored either (it answers a smaller-fuel question than the key
    describes). Store-on-settle is also what makes the daemon's graceful
    drain safe: finished units are persisted by the orchestrator even if a
    worker dies later. A warm rerun is byte-identical to the cold run at
    any [jobs] level. [cache_extra] carries key material only the caller
    knows — the CLI passes the digests of every [--using] model file, since
    those shape verdicts too.

    When the {!Obs} recorder is enabled, each completed unit's profile
    (captured inside the worker and marshaled back with the result) is
    merged into the parent recorder under the worker's pool lane,
    timed-out / crashed units are tallied under [checker.timeout_units] /
    [checker.crashed_units], and cache behavior appears as [cache.hits] /
    [cache.misses] / [cache.stale_evictions] / [cache.corrupt_entries] /
    [cache.bytes_read] (stable orchestrator counters) plus
    [cache.bytes_written] tallied at store time. Observability never
    touches [output]: report text stays byte-identical with it on or
    off. *)

val check_cache_key :
  ?limits:Limits.t ->
  ?warnings:bool ->
  ?explain:bool ->
  ?lint:bool ->
  ?extra:string list ->
  path:string ->
  string ->
  string
(** The content-addressed cache key of one check-mode verification unit:
    a digest over the [path] and source bytes, the deterministic budget
    fields of [limits] (the wall-clock deadline is excluded — it can prevent
    a verdict but never change one), the output-shaping flags,
    {!Cache.tool_version}, {!Pipeline.semantics_version},
    {!Rules.fingerprint} (when [lint]) and any [extra] caller material.
    [path] is key material because rendered blocks embed it ("== path =="):
    equal bytes at two paths must not share an entry. Exposed so tests can
    pin the invalidation rules. *)

val lint_cache_key :
  ?limits:Limits.t ->
  ?thresholds:Lint_semantic.thresholds ->
  ?extra:string list ->
  path:string ->
  string ->
  string
(** The key of one lint-mode unit: path and source bytes, budgets,
    thresholds, {!Rules.fingerprint}, tool and semantics versions. *)

val exit_code : verdict list -> int
(** The process exit code: the maximum per-file code. 0 = every file
    verified; 1 = a verification failure; 2 = unreadable / syntax error;
    3 = a resource budget was exceeded — deterministic fuel, the wall-clock
    deadline, or a crashed worker. *)

val lint_files :
  ?jobs:int ->
  ?limits:Limits.t ->
  ?thresholds:Lint_semantic.thresholds ->
  ?pool:pool ->
  ?cache:Cache.t ->
  ?cache_extra:string list ->
  string list ->
  Lint.file_result list
(** All files through the lint engine ({!Lint.lint_path}), in input order,
    using the same {!Supervisor} worker pool, wall-clock deadline and
    reduced-budget retry as {!check_files} (including [?pool] reuse). [Lint.file_result] is
    marshal-safe by construction, so it crosses the worker pipe as-is; a
    unit that times out yields one SY090 finding, a crashed worker one
    SY091 finding, and every other file still completes. Output built from
    the results is byte-identical for any [jobs] level. Per-unit [Obs]
    profiles merge into the parent recorder exactly as for checking.
    [?cache] / [?cache_extra] behave exactly as in {!check_files}, with
    {!lint_cache_key} as the key and the whole [Lint.file_result] as the
    stored payload. *)

val fault_injection : bool ref
(** Arms {!fault_hook} and the supervisor-level faults — this is the very
    same ref as {!Supervisor.fault_injection}. Defaults to [false], in
    which case the hooks are inert no matter what the environment says — a
    stale [SHELLEY_FAULT] variable in a user's shell must not be able to
    sabotage real runs. Set by the hidden [shelley check
    --fault-injection] flag and by the fault-isolation tests. *)

val fault_hook : string -> unit
(** Test seam for the fault-isolation contract. Only when {!fault_injection}
    is [true] {e and} the [SHELLEY_FAULT] environment variable is set to
    [KIND:SUBSTR] (comma-separated entries allowed), a checked path
    containing [SUBSTR] misbehaves before parsing: [hang] spins forever
    (exercises the deadline killer), [crash] raises SIGKILL against its own
    process (exercises crash isolation), [slow] sleeps one second and then
    proceeds normally (gives drain tests an in-flight window), [balloon]
    allocates until the worker's RLIMIT_AS cap raises [Out_of_memory]
    (exercises the memory-cap classification; bounded at ~4 GiB, so it is
    a no-op in an uncapped process). The supervisor-level kinds
    ([garbage], [wedge], [forkfail]) are documented at
    {!Supervisor.fault_injection}. Inert in normal operation; ignored
    entries are harmless. *)
