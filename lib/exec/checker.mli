(** Parallel, fault-isolated driving of the verification pipeline over
    files — the engine behind [shelley check -j N --timeout S].

    Each file is one verification unit: a worker process parses, extracts
    and checks it ({!Pipeline.verify_source}) and sends back the fully
    rendered report block plus the per-file exit code. Because workers
    return {e rendered text} (not interned symbols or models, which are not
    stable across process boundaries), the parent only concatenates blocks
    in input order — so the aggregate output is byte-identical for
    [jobs = 1] and [jobs = N], and a unit's block depends only on that
    unit.

    A unit that exceeds {!Limits.t.deadline} or whose worker dies is
    retried once under {!Limits.reduced} (so a fuel-reachable blowup
    resurfaces as a deterministic [Resource_limit] report instead of a
    bare timeout); a failed retry yields a {!Report.Timeout} /
    {!Report.Worker_crashed} block and per-file code 3 while every other
    unit still completes. *)

type verdict = {
  path : string;
  output : string;
      (** the file's full report block, ["== path ==…"], empty when the
          file verified silently *)
  code : int;  (** per-file exit code: 0 / 1 / 2 / 3, see {!exit_code} *)
  profile : Obs.profile option;
      (** the unit's span tree and counters when the {!Obs} recorder was
          enabled during the check (in the worker, for forked units);
          [None] when observability is off or the unit timed out /
          crashed. Already merged into the parent recorder by
          {!check_files}. *)
}

val check_file :
  ?limits:Limits.t ->
  ?warnings:bool ->
  ?explain:bool ->
  ?lint:bool ->
  ?extra_env:Usage.env ->
  string ->
  verdict
(** Check one file in the current process (no fork, no deadline): read,
    verify tolerantly, render. Never raises on unreadable or broken input —
    that is a rendered error block with code 2.

    With [~lint:true], the lint pass ({!Lint.lint_source}) also runs and
    its {e semantic} findings (SY012, SY090/SY091, SY101–SY108 — the codes
    plain [check] has no counterpart for) are appended to the file's block
    as [file:line: severity CODE \[Class\]: message] lines; an
    error-severity lint finding raises the per-file code to at least 1.
    With linting off the output is byte-identical to what [check] has
    always printed. *)

val check_files :
  ?jobs:int ->
  ?limits:Limits.t ->
  ?warnings:bool ->
  ?explain:bool ->
  ?lint:bool ->
  ?extra_env:Usage.env ->
  ?cache:Cache.t ->
  ?cache_extra:string list ->
  string list ->
  verdict list
(** All files, in input order, through a {!Runner} pool of [jobs] workers
    (default 1) with [limits.deadline] as the per-unit wall clock. With
    [jobs <= 1] and no deadline this degenerates to {!check_file} in-process.

    With [?cache], every readable file is first looked up under its
    {!check_cache_key} (computed in the orchestrator, so an entry is read
    once however many workers run); hits yield their stored verdict without
    forking a worker or running {!fault_hook}, misses run as usual and the
    {e worker} stores the rendered result atomically before exiting, so a
    warm rerun is byte-identical to the cold run at any [jobs] level.
    Timed-out and crashed units are never stored (their blocks are built in
    the parent), and the reduced-budget retry's result is never stored (it
    answers a smaller-fuel question than the key describes). [cache_extra]
    carries key material only the caller knows — the CLI passes the digests
    of every [--using] model file, since those shape verdicts too.

    When the {!Obs} recorder is enabled, each completed unit's profile
    (captured inside the worker and marshaled back with the verdict) is
    merged into the parent recorder under the worker's pool lane
    ({!Runner.map_ex}), timed-out / crashed units are tallied under
    [checker.timeout_units] / [checker.crashed_units], and cache behavior
    appears as [cache.hits] / [cache.misses] / [cache.stale_evictions] /
    [cache.corrupt_entries] / [cache.bytes_read] (stable orchestrator
    counters) plus [cache.bytes_written] inside each storing unit's profile.
    Observability never touches [output]: report text stays byte-identical
    with it on or off. *)

val check_cache_key :
  ?limits:Limits.t ->
  ?warnings:bool ->
  ?explain:bool ->
  ?lint:bool ->
  ?extra:string list ->
  path:string ->
  string ->
  string
(** The content-addressed cache key of one check-mode verification unit:
    a digest over the [path] and source bytes, the deterministic budget
    fields of [limits] (the wall-clock deadline is excluded — it can prevent
    a verdict but never change one), the output-shaping flags,
    {!Cache.tool_version}, {!Pipeline.semantics_version},
    {!Rules.fingerprint} (when [lint]) and any [extra] caller material.
    [path] is key material because rendered blocks embed it ("== path =="):
    equal bytes at two paths must not share an entry. Exposed so tests can
    pin the invalidation rules. *)

val lint_cache_key :
  ?limits:Limits.t ->
  ?thresholds:Lint_semantic.thresholds ->
  ?extra:string list ->
  path:string ->
  string ->
  string
(** The key of one lint-mode unit: path and source bytes, budgets,
    thresholds, {!Rules.fingerprint}, tool and semantics versions. *)

val exit_code : verdict list -> int
(** The process exit code: the maximum per-file code. 0 = every file
    verified; 1 = a verification failure; 2 = unreadable / syntax error;
    3 = a resource budget was exceeded — deterministic fuel, the wall-clock
    deadline, or a crashed worker. *)

val lint_files :
  ?jobs:int ->
  ?limits:Limits.t ->
  ?thresholds:Lint_semantic.thresholds ->
  ?cache:Cache.t ->
  ?cache_extra:string list ->
  string list ->
  Lint.file_result list
(** All files through the lint engine ({!Lint.lint_path}), in input order,
    using the same {!Runner} worker pool, wall-clock deadline and
    reduced-budget retry as {!check_files}. [Lint.file_result] is
    marshal-safe by construction, so it crosses the worker pipe as-is; a
    unit that times out yields one SY090 finding, a crashed worker one
    SY091 finding, and every other file still completes. Output built from
    the results is byte-identical for any [jobs] level. Per-unit [Obs]
    profiles merge into the parent recorder exactly as for checking.
    [?cache] / [?cache_extra] behave exactly as in {!check_files}, with
    {!lint_cache_key} as the key and the whole [Lint.file_result] as the
    stored payload. *)

val fault_injection : bool ref
(** Arms {!fault_hook}. Defaults to [false], in which case the hook is
    inert no matter what the environment says — a stale [SHELLEY_FAULT]
    variable in a user's shell must not be able to sabotage real runs.
    Set by the hidden [shelley check --fault-injection] flag and by the
    fault-isolation tests. *)

val fault_hook : string -> unit
(** Test seam for the fault-isolation contract. Only when {!fault_injection}
    is [true] {e and} the [SHELLEY_FAULT] environment variable is set to
    [KIND:SUBSTR] (comma-separated entries allowed), a checked path
    containing [SUBSTR] misbehaves before parsing: [hang] spins forever
    (exercises the deadline killer), [crash] raises SIGKILL against its own
    process (exercises crash isolation). Inert in normal operation; ignored
    entries are harmless. *)
