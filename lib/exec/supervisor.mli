(** A supervised, persistent prefork worker pool.

    Where {!Runner} forks one short-lived process per task (and pays ~ms of
    fork + pipe setup for ~µs of work), a [Supervisor] pool forks its
    workers {e once} and then streams tasks to them over pipes as
    length-prefixed [Marshal] frames, batching several tasks per dispatch to
    amortize the IPC round trip. The pool is built to stay up for days under
    a long-running daemon ({!Serve}), so the supervision loop assumes
    everything fails eventually:

    - {b deadlines}: a task that outlives [config.deadline] is killed
      externally (process-group SIGKILL, exactly like {!Runner}) and
      reported [Timed_out]; the killed worker's remaining batch is re-queued
      untouched.
    - {b crashes}: a worker that dies mid-task charges only the task it was
      running ([Crashed], with the same ["killed by SIGNAL"] reasons as
      {!Runner.signal_name}); the rest of its batch is re-queued at the same
      attempt number. The slot restarts under capped exponential backoff
      with jitter.
    - {b poisoned tasks}: a task whose retry also fails is final after 2
      attempts — the pool never retries the same input forever.
    - {b heartbeats}: idle workers are pinged; a worker that accepts a batch
      but never acknowledges starting it (or an idle worker that stops
      answering pings) is declared wedged, its batch re-queued, the slot
      restarted.
    - {b protocol corruption}: a garbage frame on a result pipe (bad magic,
      insane length, undecodable payload) condemns that worker alone; the
      in-flight task is charged, everything else re-queued.
    - {b recycling}: a worker is retired and respawned after
      [max_tasks_per_worker] tasks or when its RSS exceeds [max_rss_kb]
      (leak containment for day-long daemons).
    - {b fork failure}: if forking itself fails persistently, the pool
      degrades to in-process sequential execution — a run always completes.

    Scheduling never affects output: results are reassembled in submission
    order, so a caller that renders them is byte-identical at any pool
    width. Lanes (pool slot indices) are reported per result so the {!Obs}
    trace sink can draw one timeline row per worker.

    Lifecycle counters (plain {!Obs.count}, never in the byte-stable
    [--stats] table): [pool.spawns], [pool.restarts], [pool.recycles],
    [pool.backoff_waits], [pool.heartbeat_misses], [pool.kills],
    [pool.poisoned], [pool.fork_failures], [pool.batches],
    [pool.inline_tasks] and the timing tallies [pool.fork_us],
    [pool.queue_wait_us], [pool.task_wall_us]. *)

type 'r outcome =
  | Done of 'r
  | Timed_out of {
      seconds : float;
      attempts : int;
    }
  | Crashed of {
      reason : string;
      attempts : int;
    }

type config = {
  jobs : int;  (** pool width: number of worker slots (min 1) *)
  batch_size : int;
      (** max tasks per dispatch frame; the effective chunk also never
          exceeds ⌈pending / jobs⌉, so small runs still spread across
          lanes *)
  deadline : float option;  (** per-task wall-clock bound, [None] = none *)
  max_tasks_per_worker : int;
      (** recycle a worker after this many tasks (0 = never) *)
  max_rss_kb : int;
      (** recycle an idle worker whose RSS exceeds this (0 = never;
          measured from /proc, a no-op where that is absent) *)
  max_as_mb : int;
      (** cap each worker's address space via setrlimit(RLIMIT_AS) right
          after the fork (0 = uncapped). Unlike [max_rss_kb] — containment
          of slow leaks in idle workers — this bounds a single ballooning
          task: the allocation that crosses the cap raises a catchable
          [Out_of_memory] inside the worker, which the task function can
          classify (the checker renders it as a resource-limit verdict)
          instead of the host OOM killer picking a victim *)
  max_restarts : int;
      (** consecutive failed spawns / crashes per slot before the slot is
          written off; when every slot is written off and no worker is
          live, the pool falls back to in-process execution *)
  backoff_base : float;  (** first restart delay, seconds *)
  backoff_cap : float;  (** max restart delay, seconds *)
  heartbeat_interval : float;
      (** idle-ping period; also the dispatch-acknowledge deadline after
          which an unresponsive worker is declared wedged *)
  grace : float;  (** seconds to wait for a worker to exit on Quit *)
}

val config :
  ?jobs:int ->
  ?batch_size:int ->
  ?deadline:float ->
  ?max_tasks_per_worker:int ->
  ?max_rss_kb:int ->
  ?max_as_mb:int ->
  ?max_restarts:int ->
  ?backoff_base:float ->
  ?backoff_cap:float ->
  ?heartbeat_interval:float ->
  ?grace:float ->
  unit ->
  config
(** Defaults: [jobs = 1], [batch_size = 8], no deadline,
    [max_tasks_per_worker = 128], [max_rss_kb = 524288] (512 MB),
    [max_as_mb = 0] (uncapped), [max_restarts = 3], [backoff_base = 0.05],
    [backoff_cap = 1.0], [heartbeat_interval = 2.0], [grace = 0.5]. *)

type ('t, 'r) t
(** A pool mapping marshal-safe tasks ['t] to marshal-safe results ['r].
    The worker function is fixed at {!create} (it crosses into the workers
    by fork inheritance, never by marshaling), so one pool serves any
    number of {!map_ex} calls — the daemon keeps one pool across
    requests. *)

val create :
  ?after_fork:(unit -> unit) ->
  ?label:('t -> string) ->
  config ->
  ('t -> 'r) ->
  ('t, 'r) t
(** [create config f] builds a pool whose workers each apply [f]. Workers
    are spawned lazily (on first demand), become their own session leaders
    (so a deadline kill takes out any task-spawned subprocesses too),
    ignore SIGTERM/SIGINT (shutdown is by pipe EOF / [Quit], so a signal
    to the parent's group cannot kill them mid-write), and exit when the
    job pipe reaches EOF — so even an abruptly dead parent leaves no
    orphans behind. [after_fork] runs in each child right after the fork
    (the daemon uses it to close its listening socket). [label] names
    tasks for the fault-injection seam and error text (default
    [fun _ -> ""]). *)

type 'r settled = {
  outcome : 'r outcome;
  lane : int;  (** pool slot that produced the outcome; [0] when inline *)
  attempts : int;
      (** attempts actually consumed, including for [Done] — the checker
          refuses to cache a result whose successful attempt was the
          reduced-budget retry *)
}

val run :
  ?retry:('t -> 't) -> ?deadline:float -> ('t, 'r) t -> 't list -> 'r settled list
(** Run every task through the pool; results in submission order. With
    [?retry], a failed first attempt is re-queued once as [retry task] (the
    checker shrinks fuel budgets with it); the second failure is final with
    [attempts = 2]. Without [?retry] a failure is final immediately.
    [?deadline] overrides [config.deadline] for this call only — the daemon
    applies per-request deadlines over one long-lived pool. Never raises;
    never loses or duplicates a task. *)

val map_ex :
  ?retry:('t -> 't) -> ?deadline:float -> ('t, 'r) t -> 't list -> ('r outcome * int) list
(** {!run} projected to (outcome, lane) — the shape {!Runner.map_ex}
    returns, for drop-in callers. *)

val map : ?retry:('t -> 't) -> ?deadline:float -> ('t, 'r) t -> 't list -> 'r outcome list
(** {!run} projected to outcomes alone. *)

val quiesce : ('t, 'r) t -> unit
(** Retire every live worker (Quit, grace, SIGKILL, reap) but keep the pool
    usable: the next {!map_ex} respawns on demand. The daemon calls this
    after an idle period so a dormant service holds no processes. *)

val shutdown : ('t, 'r) t -> unit
(** {!quiesce} and mark the pool closed. Idempotent. A closed pool runs
    subsequent {!map_ex} calls inline (degraded), so even a use-after-close
    bug cannot lose results. *)

type stats = {
  spawns : int;  (** workers forked, ever *)
  restarts : int;  (** respawns after a crash / wedge / garbage frame *)
  recycles : int;  (** planned retirements (task count or RSS ceiling) *)
  backoff_waits : int;  (** times a slot entered a backoff delay *)
  heartbeat_misses : int;  (** pings or dispatch-acks that timed out *)
  kills : int;  (** deadline kills *)
  poisoned : int;  (** tasks final-failed after their retry *)
  fork_failures : int;  (** fork attempts that themselves failed *)
  batches : int;  (** job frames dispatched *)
  tasks : int;  (** tasks completed by workers *)
  inline_tasks : int;  (** tasks run in-process by graceful degradation *)
  live_workers : int;  (** workers alive right now *)
}

val stats : ('t, 'r) t -> stats

val worker_pids : ('t, 'r) t -> int list
(** PIDs of the live workers, for the no-orphans test assertions. *)

val fault_injection : bool ref
(** The shared fault-injection master switch ({!Checker.fault_injection} is
    this very ref). When armed, [SHELLEY_FAULT] entries extend to
    supervisor-level faults: [garbage:SUBSTR] (the worker writes a corrupt
    frame instead of the matching task's result), [wedge:SUBSTR] (the
    worker stops reading its job pipe after completing the batch containing
    the matching task, ignoring heartbeats), [forkfail:N] (the pool's next
    N fork attempts fail). Inert by default. *)

val signal_name : int -> string
(** Re-export of {!Runner.signal_name}: ["SIGKILL"], ["SIGSEGV"], …. *)
