type verdict = {
  path : string;
  output : string;
  code : int;
  profile : Obs.profile option;
}

(* Deliberate misbehavior for the fault-injection tests: a worker that hangs
   (until the deadline kills it) or dies by SIGKILL (as the OOM killer
   would), triggered by substring match on the checked path. Armed only by
   an explicit in-process opt-in ([fault_injection], set by the hidden
   --fault-injection flag or directly by tests): a stale SHELLEY_FAULT
   variable inherited from some test environment must never be able to
   sabotage a real verification run on its own. *)
let fault_injection = ref false

let fault_hook path =
  if not !fault_injection then ()
  else
    match Sys.getenv_opt "SHELLEY_FAULT" with
    | None | Some "" -> ()
    | Some spec ->
    String.split_on_char ',' spec
    |> List.iter (fun entry ->
           match String.index_opt entry ':' with
           | None -> ()
           | Some i ->
             let kind = String.sub entry 0 i in
             let substr = String.sub entry (i + 1) (String.length entry - i - 1) in
             let matches =
               substr <> ""
               && String.length path >= String.length substr
               && List.exists
                    (fun off -> String.sub path off (String.length substr) = substr)
                    (List.init (String.length path - String.length substr + 1) Fun.id)
             in
             if matches then
               match kind with
               | "hang" ->
                 while true do
                   Unix.sleepf 0.05
                 done
               | "crash" -> Unix.kill (Unix.getpid ()) Sys.sigkill
               | _ -> ())

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Renders exactly what the sequential `shelley check` loop has always
   printed, but into a buffer, so the parent process can replay blocks in
   input order no matter which worker finished first. *)
let check_file_raw ?(limits = Limits.default) ?(warnings = false) ?(explain = false)
    ?(extra_env = fun _ -> None) path =
  fault_hook path;
  match read_file path with
  | exception Sys_error msg ->
    ( Format.asprintf "== %s ==@.Error: cannot read file: %s@.@." path msg,
      2 )
  | source ->
    let result = Pipeline.verify_source ~extra_env ~limits source in
    let reports =
      if warnings then result.Pipeline.reports else Report.errors result.Pipeline.reports
    in
    let buf = Buffer.create 256 in
    let fmt = Format.formatter_of_buffer buf in
    if reports <> [] then begin
      Format.fprintf fmt "== %s ==@." path;
      List.iter
        (fun r ->
          Format.fprintf fmt "%a@.@." Report.pp r;
          if explain then
            List.iter
              (fun model ->
                match Explain.of_report ~model r with
                | Some explanation -> Format.fprintf fmt "%a@.@." Explain.pp explanation
                | None -> ())
              result.Pipeline.models)
        reports
    end;
    Format.pp_print_flush fmt ();
    let code =
      if List.exists Report.is_resource_limit result.Pipeline.reports then 3
      else if List.exists Report.is_syntax_error result.Pipeline.reports then 2
      else if not (Pipeline.verified result) then 1
      else 0
    in
    (Buffer.contents buf, code)

(* The whole file runs inside one [Obs] unit, so its span tree and counters
   come back as one marshal-safe profile (strings and ints only) — identical
   in shape whether this executes in-process or inside a forked worker. *)
let check_file ?limits ?warnings ?explain ?extra_env path =
  let (output, code), profile =
    Obs.in_unit ~name:path (fun () ->
        check_file_raw ?limits ?warnings ?explain ?extra_env path)
  in
  { path; output; code; profile }

let fault_block path report =
  Format.asprintf "== %s ==@.%a@.@." path Report.pp report

let check_files ?(jobs = 1) ?(limits = Limits.default) ?warnings ?explain ?extra_env
    paths =
  (* Workers send back (output, code, profile) only: plain marshal-safe
     data. The verdict's [path] is re-attached from the input list, which
     also keeps aggregation in input order. *)
  let payload limits path =
    let v = check_file ~limits ?warnings ?explain ?extra_env path in
    (v.output, v.code, v.profile)
  in
  let outcomes =
    Runner.map_ex ~jobs ?deadline:limits.Limits.deadline
      ~retry:(payload (Limits.reduced limits))
      ~f:(payload limits) paths
  in
  List.map2
    (fun path (outcome, lane) ->
      match outcome with
      | Runner.Done (output, code, profile) ->
        (* Merge the worker's profile into the parent recorder under its pool
           lane; the sinks then see one timeline row per worker. *)
        Option.iter (Obs.add_unit ~lane) profile;
        { path; output; code; profile }
      | Runner.Timed_out { seconds; attempts } ->
        Obs.count "checker.timeout_units" 1;
        {
          path;
          output = fault_block path (Report.Timeout { unit_name = path; seconds; attempts });
          code = 3;
          profile = None;
        }
      | Runner.Crashed { reason; attempts } ->
        Obs.count "checker.crashed_units" 1;
        {
          path;
          output =
            fault_block path (Report.Worker_crashed { unit_name = path; reason; attempts });
          code = 3;
          profile = None;
        })
    paths outcomes

let exit_code verdicts = List.fold_left (fun acc v -> max acc v.code) 0 verdicts
