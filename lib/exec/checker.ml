type verdict = {
  path : string;
  output : string;
  code : int;
  profile : Obs.profile option;
}

(* Deliberate misbehavior for the fault-injection tests: a worker that hangs
   (until the deadline kills it) or dies by SIGKILL (as the OOM killer
   would), triggered by substring match on the checked path. Armed only by
   an explicit in-process opt-in ([fault_injection], set by the hidden
   --fault-injection flag or directly by tests): a stale SHELLEY_FAULT
   variable inherited from some test environment must never be able to
   sabotage a real verification run on its own. The ref itself lives in
   {!Supervisor} so the process-plumbing faults (garbage / wedge /
   forkfail) share the same master switch. *)
let fault_injection = Supervisor.fault_injection

let fault_hook path =
  if not !fault_injection then ()
  else
    match Sys.getenv_opt "SHELLEY_FAULT" with
    | None | Some "" -> ()
    | Some spec ->
    String.split_on_char ',' spec
    |> List.iter (fun entry ->
           match String.index_opt entry ':' with
           | None -> ()
           | Some i ->
             let kind = String.sub entry 0 i in
             let substr = String.sub entry (i + 1) (String.length entry - i - 1) in
             let matches =
               substr <> ""
               && String.length path >= String.length substr
               && List.exists
                    (fun off -> String.sub path off (String.length substr) = substr)
                    (List.init (String.length path - String.length substr + 1) Fun.id)
             in
             if matches then
               match kind with
               | "hang" ->
                 while true do
                   Unix.sleepf 0.05
                 done
               | "crash" -> Unix.kill (Unix.getpid ()) Sys.sigkill
               | "slow" -> Unix.sleepf 1.0
               | "balloon" ->
                 (* Allocate until the worker's RLIMIT_AS cap turns into a
                    catchable Out_of_memory. Bounded at ~4 GiB so arming
                    this in an uncapped process is a no-op rather than a
                    host-wide memory grab. *)
                 let hoard = ref [] in
                 (try
                    for _ = 1 to 256 do
                      hoard := Bytes.create (16 * 1024 * 1024) :: !hoard
                    done
                  with Out_of_memory ->
                    hoard := [];
                    raise Out_of_memory);
                 hoard := []
               | _ -> ())

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- Result caching ---------------------------------------------------------

   One cache entry = one fully rendered per-file result, wrapped in a variant
   so a key that somehow named the wrong mode's entry decodes to a visibly
   wrong constructor (treated as a miss) instead of a type confusion. Both
   constructors are marshal-safe by construction — the same property that
   lets them cross the worker pipe lets them live on disk. *)
type cache_payload =
  | Cached_check of {
      output : string;
      code : int;
    }
  | Cached_lint of Lint.file_result

let limits_key_parts (l : Limits.t) =
  (* The wall-clock deadline is deliberately absent: it can prevent a
     verdict (and timed-out units are never stored), but it cannot change
     one, so results computed with and without --timeout share entries. *)
  [
    Printf.sprintf "max_states=%d" l.Limits.max_states;
    Printf.sprintf "max_configs=%d" l.Limits.max_configs;
    Printf.sprintf "max_regex_size=%d" l.Limits.max_regex_size;
  ]

(* The path is key material, not just the content: rendered blocks and lint
   findings embed it ("== path ==", "path:line:"), so two files with equal
   bytes at different paths must not share an entry — the second would
   replay the first one's header. A renamed file recomputes once; that is
   the cheap side of the trade. *)
let check_cache_key ?(limits = Limits.default) ?(warnings = false) ?(explain = false)
    ?(lint = false) ?(extra = []) ~path source =
  Cache.key
    ([
       "mode=check/1";
       "tool=" ^ Cache.tool_version;
       "semantics=" ^ Pipeline.semantics_version;
       "path=" ^ path;
       "src=" ^ Digest.to_hex (Digest.string source);
     ]
    @ limits_key_parts limits
    @ [
        Printf.sprintf "warnings=%b" warnings;
        Printf.sprintf "explain=%b" explain;
        Printf.sprintf "lint=%b" lint;
      ]
    @ (if lint then [ "rules=" ^ Rules.fingerprint ] else [])
    @ List.map (fun e -> "extra=" ^ e) extra)

let lint_cache_key ?(limits = Limits.default)
    ?(thresholds = Lint_semantic.default_thresholds) ?(extra = []) ~path source =
  Cache.key
    ([
       "mode=lint/1";
       "tool=" ^ Cache.tool_version;
       "semantics=" ^ Pipeline.semantics_version;
       "rules=" ^ Rules.fingerprint;
       "path=" ^ path;
       "src=" ^ Digest.to_hex (Digest.string source);
     ]
    @ limits_key_parts limits
    @ [
        Printf.sprintf "max_behavior_size=%d" thresholds.Lint_semantic.max_behavior_size;
        Printf.sprintf "max_star_height=%d" thresholds.Lint_semantic.max_star_height;
      ]
    @ List.map (fun e -> "extra=" ^ e) extra)

(* [check --lint] appends only what plain [check] does not already say:
   the structural checks (SY001–SY007), syntax errors (SY010/SY011) and
   extraction diagnostics (SY020) are printed by the pipeline as reports,
   so the lint pass contributes the purely semantic codes on top. *)
let lint_only (d : Lint.diagnostic) =
  match d.Lint.rule with
  | "SY001" | "SY002" | "SY003" | "SY004" | "SY005" | "SY006" | "SY007" | "SY010"
  | "SY011" | "SY020" ->
    false
  | _ -> true

(* Renders exactly what the sequential `shelley check` loop has always
   printed, but into a buffer, so the parent process can replay blocks in
   input order no matter which worker finished first. *)
let check_file_raw ?(limits = Limits.default) ?(warnings = false) ?(explain = false)
    ?(lint = false) ?(extra_env = fun _ -> None) path =
  fault_hook path;
  match read_file path with
  | exception Sys_error msg ->
    ( Format.asprintf "== %s ==@.Error: cannot read file: %s@.@." path msg,
      2 )
  | source ->
    let result = Pipeline.verify_source ~extra_env ~limits source in
    let reports =
      if warnings then result.Pipeline.reports else Report.errors result.Pipeline.reports
    in
    let lint_result =
      if not lint then None
      else begin
        let r = Lint.lint_source ~limits ~file:path source in
        Some { r with Lint.findings = List.filter lint_only r.Lint.findings }
      end
    in
    let lint_findings =
      match lint_result with
      | None -> []
      | Some r -> r.Lint.findings
    in
    let buf = Buffer.create 256 in
    let fmt = Format.formatter_of_buffer buf in
    if reports <> [] || lint_findings <> [] then begin
      Format.fprintf fmt "== %s ==@." path;
      List.iter
        (fun r ->
          Format.fprintf fmt "%a@.@." Report.pp r;
          if explain then
            List.iter
              (fun model ->
                match Explain.of_report ~model r with
                | Some explanation -> Format.fprintf fmt "%a@.@." Explain.pp explanation
                | None -> ())
              result.Pipeline.models)
        reports;
      List.iter
        (fun d -> Format.fprintf fmt "%s@." (Lint_render.text_line d))
        lint_findings;
      if lint_findings <> [] then Format.fprintf fmt "@."
    end;
    Format.pp_print_flush fmt ();
    let code =
      if List.exists Report.is_resource_limit result.Pipeline.reports then 3
      else if List.exists Report.is_syntax_error result.Pipeline.reports then 2
      else if not (Pipeline.verified result) then 1
      else 0
    in
    let code =
      match lint_result with
      | None -> code
      | Some r -> max code (Lint.file_exit_code r)
    in
    (Buffer.contents buf, code)

(* The whole file runs inside one [Obs] unit, so its span tree and counters
   come back as one marshal-safe profile (strings and ints only) — identical
   in shape whether this executes in-process or inside a forked worker.
   [after] runs inside the unit too: the cache store performed there (and
   its cache.bytes_written counter) lands in the unit's profile, so it
   crosses the worker pipe with everything else. *)
let check_file_with ?limits ?warnings ?explain ?lint ?extra_env ~after path =
  let (output, code), profile =
    Obs.in_unit ~name:path (fun () ->
        let output, code =
          check_file_raw ?limits ?warnings ?explain ?lint ?extra_env path
        in
        after output code;
        (output, code))
  in
  { path; output; code; profile }

let check_file ?limits ?warnings ?explain ?lint ?extra_env path =
  check_file_with ?limits ?warnings ?explain ?lint ?extra_env
    ~after:(fun _ _ -> ())
    path

let fault_block path report =
  Format.asprintf "== %s ==@.%a@.@." path Report.pp report

(* Replay the pool's outcomes over the annotated input list: hits keep their
   cached verdict, misses consume the next outcome — strictly in input
   order, so the aggregate output is byte-identical whatever mix of hits,
   misses and jobs levels produced it. *)
let merge_outcomes ~of_outcome annotated outcomes =
  let rec go annotated outcomes =
    match annotated with
    | [] -> []
    | (_, Some hit, _) :: rest -> hit :: go rest outcomes
    | (path, None, _) :: rest -> (
      match outcomes with
      | [] ->
        (* Runner returns exactly one outcome per submitted task. *)
        invalid_arg "Checker.merge_outcomes: outcome list too short"
      | (outcome, lane) :: more -> of_outcome path outcome lane :: go rest more)
  in
  go annotated outcomes

(* Annotate each path with its cache fate before any forking: [Some verdict]
   for a hit, otherwise the key the worker should store its result under
   (and [None] keys for unreadable files and uncached runs). Lookups happen
   in the orchestrator so hit entries are read once, not once per worker. *)
let annotate ~cache ~key_of ~hit_of paths =
  List.map
    (fun path ->
      match cache with
      | None -> (path, None, None)
      | Some c -> (
        match read_file path with
        | exception Sys_error _ -> (path, None, None)
        | source -> (
          let key = key_of ~path source in
          match (Cache.find c key : cache_payload option) with
          | Some payload -> (
            match hit_of path payload with
            | Some hit -> (path, Some hit, Some key)
            | None ->
              (* The key named an entry of the wrong mode: only possible if
                 key composition is broken, so refuse the value and
                 recompute. *)
              (path, None, Some key))
          | None -> (path, None, Some key))))
    paths

(* --- The pooled job engine --------------------------------------------------

   One marshal-safe job type covers both modes, so a single persistent
   {!Supervisor} pool (and a single long-running daemon) serves check and
   lint requests alike. [Limits.t] holds a mutable ledger and [Usage.env]
   is a closure — neither crosses a pipe — so a job carries the raw budget
   numbers and the [--using] paths instead, and the worker rebuilds both. *)

type job_mode =
  | Job_check of {
      warnings : bool;
      explain : bool;
      lint : bool;
    }
  | Job_lint of {
      max_behavior_size : int;
      max_star_height : int;
    }

type job_spec = {
  job_path : string;
  job_mode : job_mode;
  job_max_states : int;
  job_max_configs : int;
  job_max_regex_size : int;
  job_reduced : bool;  (* second attempt: rebuild under Limits.reduced *)
  job_using : string list;
}

type job_result = {
  jr_output : string;  (* rendered block (check mode), "" for lint *)
  jr_code : int;
  jr_lint : Lint.file_result option;
  jr_profile : Obs.profile option;
}

(* Workers are persistent, so the [--using] environment is rebuilt at most
   once per (paths, content digests) — a daemon picks up edits to a model
   file between requests, while a batch pays the parse once. *)
let using_memo : (string, Usage.env) Hashtbl.t = Hashtbl.create 4

let env_of_using = function
  | [] -> fun _ -> None
  | paths -> (
    let digest p =
      match Digest.to_hex (Digest.file p) with
      | d -> d
      | exception Sys_error _ -> "unreadable"
    in
    let key = String.concat "\x00" (List.map (fun p -> p ^ "#" ^ digest p) paths) in
    match Hashtbl.find_opt using_memo key with
    | Some env -> env
    | None ->
      let env =
        match Model_io.env_of_files paths with
        | Ok env -> env
        | Error _ ->
          (* The CLI validates --using before any job runs; reaching this
             means the file broke between validation and execution. An
             empty environment keeps the job total — missing methods then
             surface as ordinary verification reports. *)
          fun _ -> None
      in
      Hashtbl.add using_memo key env;
      env)

let job_limits (j : job_spec) =
  let l =
    Limits.make ~max_states:j.job_max_states ~max_configs:j.job_max_configs
      ~max_regex_size:j.job_max_regex_size ()
  in
  if j.job_reduced then Limits.reduced l else l

let engine_result path (rule : Rules.t) message =
  {
    Lint.lint_file = path;
    findings =
      [
        {
          Lint.rule = rule.Rules.code;
          rule_name = rule.Rules.name;
          severity = rule.Rules.severity;
          file = path;
          line = 0;
          class_name = "";
          message;
        };
      ];
    suppressed = [];
  }

(* The address-space cap this worker runs under (MiB), set by [make_pool]'s
   after_fork hook inside the child; 0 in uncapped workers and in-process
   runs. Only used to *render* the limit in the report — enforcement is
   setrlimit's. *)
let worker_mem_cap = ref 0

let oom_report () =
  Report.Resource_limit
    {
      class_name = "<worker>";
      check = "memory";
      resource = "worker address space MiB";
      limit = !worker_mem_cap;
    }

(* The worker function fixed into every pool at fork time. Each job runs
   inside its own [Obs] unit with a fresh ledger, so a worker's 1000th task
   profiles exactly like its first. An allocation that blows through the
   worker's RLIMIT_AS cap surfaces here as [Out_of_memory] and is rendered
   as a resource-limit verdict (exit 3), not a crash: running out of budget
   is a classified outcome, same as running out of fuel. *)
let run_job (j : job_spec) : job_result =
  let limits = job_limits j in
  match j.job_mode with
  | Job_check { warnings; explain; lint } ->
    let extra_env = env_of_using j.job_using in
    let (output, code), profile =
      Obs.in_unit ~name:j.job_path (fun () ->
          try check_file_raw ~limits ~warnings ~explain ~lint ~extra_env j.job_path
          with Out_of_memory -> (fault_block j.job_path (oom_report ()), 3))
    in
    { jr_output = output; jr_code = code; jr_lint = None; jr_profile = profile }
  | Job_lint { max_behavior_size; max_star_height } ->
    let thresholds = { Lint_semantic.max_behavior_size; max_star_height } in
    let result, profile =
      Obs.in_unit ~name:j.job_path (fun () ->
          try
            fault_hook j.job_path;
            Lint.lint_path ~limits ~thresholds j.job_path
          with Out_of_memory ->
            engine_result j.job_path Rules.rule_resource_limit
              (Printf.sprintf
                 "linting exceeded the worker's %d MiB address-space cap"
                 !worker_mem_cap))
    in
    { jr_output = ""; jr_code = 0; jr_lint = Some result; jr_profile = profile }

type pool = (job_spec, job_result) Supervisor.t

let make_pool ?(after_fork = fun () -> ()) ?(max_as_mb = 0) ?(jobs = 1) () =
  let after_fork () =
    worker_mem_cap := max_as_mb;
    after_fork ()
  in
  Supervisor.create ~after_fork
    ~label:(fun j -> j.job_path)
    (Supervisor.config ~jobs ~max_as_mb ())
    run_job

let pool_stats = Supervisor.stats
let pool_worker_pids = Supervisor.worker_pids
let quiesce_pool = Supervisor.quiesce
let shutdown_pool = Supervisor.shutdown

(* The reduced-budget second attempt is the same task transformed, because
   the worker function is fixed at fork time. *)
let retry_spec j = { j with job_reduced = true }

(* In-process fast path for [jobs <= 1] with no deadline and no pool: same
   settle/retry semantics as the pool, no forks at all. *)
let settle_inline spec =
  let attempt s n : job_result Supervisor.settled =
    match run_job s with
    | r -> { Supervisor.outcome = Supervisor.Done r; lane = 0; attempts = n }
    | exception exn ->
      {
        Supervisor.outcome =
          Supervisor.Crashed { reason = Printexc.to_string exn; attempts = n };
        lane = 0;
        attempts = n;
      }
  in
  match attempt spec 1 with
  | { Supervisor.outcome = Supervisor.Done _; _ } as s -> s
  | _ -> attempt (retry_spec spec) 2

let run_specs ?pool ~jobs ~(limits : Limits.t) specs =
  match pool with
  | Some p -> Supervisor.run ~retry:retry_spec ?deadline:limits.Limits.deadline p specs
  | None ->
    if jobs <= 1 && limits.Limits.deadline = None then List.map settle_inline specs
    else begin
      let p = make_pool ~jobs () in
      Fun.protect
        ~finally:(fun () -> Supervisor.shutdown p)
        (fun () ->
          Supervisor.run ~retry:retry_spec ?deadline:limits.Limits.deadline p specs)
    end

(* Stores happen in the orchestrator, after the pool settles: a result is
   stored only when its {e first} attempt succeeded — the reduced-budget
   retry answers a smaller-fuel question than the key was composed for.
   (Workers cannot store: a persistent worker's cwd-relative cache handle
   could go stale, and crashed/timed-out units must never be stored.) *)
let store_settled ~cache ~payload_of misses settled =
  match cache with
  | None -> ()
  | Some c ->
    List.iter2
      (fun (_path, key) (s : job_result Supervisor.settled) ->
        match (key, s.Supervisor.outcome, s.Supervisor.attempts) with
        | Some k, Supervisor.Done jr, 1 -> (
          match payload_of jr with
          | Some payload -> Cache.store c k payload
          | None -> ())
        | _ -> ())
      misses settled

let misses_of annotated =
  List.filter_map
    (fun (path, hit, key) ->
      match hit with
      | Some _ -> None
      | None -> Some (path, key))
    annotated

let check_files ?(jobs = 1) ?(limits = Limits.default) ?(warnings = false)
    ?(explain = false) ?(lint = false) ?(using = []) ?pool ?cache ?(cache_extra = [])
    paths =
  let annotated =
    annotate ~cache
      ~key_of:(check_cache_key ~limits ~warnings ~explain ~lint ~extra:cache_extra)
      ~hit_of:(fun path payload ->
        match payload with
        | Cached_check { output; code } -> Some { path; output; code; profile = None }
        | Cached_lint _ -> None)
      paths
  in
  let misses = misses_of annotated in
  let spec (path, _key) =
    {
      job_path = path;
      job_mode = Job_check { warnings; explain; lint };
      job_max_states = limits.Limits.max_states;
      job_max_configs = limits.Limits.max_configs;
      job_max_regex_size = limits.Limits.max_regex_size;
      job_reduced = false;
      job_using = using;
    }
  in
  let settled = run_specs ?pool ~jobs ~limits (List.map spec misses) in
  store_settled ~cache
    ~payload_of:(fun jr -> Some (Cached_check { output = jr.jr_output; code = jr.jr_code }))
    misses settled;
  let of_outcome path outcome lane =
    match outcome with
    | Supervisor.Done jr ->
      (* Merge the worker's profile into the parent recorder under its pool
         lane; the sinks then see one timeline row per worker. *)
      Option.iter (Obs.add_unit ~lane) jr.jr_profile;
      { path; output = jr.jr_output; code = jr.jr_code; profile = jr.jr_profile }
    | Supervisor.Timed_out { seconds; attempts } ->
      Obs.count "checker.timeout_units" 1;
      {
        path;
        output = fault_block path (Report.Timeout { unit_name = path; seconds; attempts });
        code = 3;
        profile = None;
      }
    | Supervisor.Crashed { reason; attempts } ->
      Obs.count "checker.crashed_units" 1;
      {
        path;
        output =
          fault_block path (Report.Worker_crashed { unit_name = path; reason; attempts });
        code = 3;
        profile = None;
      }
  in
  merge_outcomes ~of_outcome annotated
    (List.map (fun (s : _ Supervisor.settled) -> (s.Supervisor.outcome, s.Supervisor.lane)) settled)

let exit_code verdicts = List.fold_left (fun acc v -> max acc v.code) 0 verdicts

(* --- Parallel linting -------------------------------------------------------

   Same pooled engine as [check_files]: the job carries the lint thresholds,
   the result carries a [Lint.file_result] — plain strings, ints and a small
   variant, so it marshals across the worker pipe — plus the unit's [Obs]
   profile. Results are replayed in input order, so lint output is
   byte-identical for any [-j] level. *)

let lint_files ?(jobs = 1) ?(limits = Limits.default)
    ?(thresholds = Lint_semantic.default_thresholds) ?pool ?cache ?(cache_extra = [])
    paths =
  let annotated =
    annotate ~cache
      ~key_of:(lint_cache_key ~limits ~thresholds ~extra:cache_extra)
      ~hit_of:(fun _path payload ->
        match payload with
        | Cached_lint result -> Some result
        | Cached_check _ -> None)
      paths
  in
  let misses = misses_of annotated in
  let spec (path, _key) =
    {
      job_path = path;
      job_mode =
        Job_lint
          {
            max_behavior_size = thresholds.Lint_semantic.max_behavior_size;
            max_star_height = thresholds.Lint_semantic.max_star_height;
          };
      job_max_states = limits.Limits.max_states;
      job_max_configs = limits.Limits.max_configs;
      job_max_regex_size = limits.Limits.max_regex_size;
      job_reduced = false;
      job_using = [];
    }
  in
  let settled = run_specs ?pool ~jobs ~limits (List.map spec misses) in
  store_settled ~cache
    ~payload_of:(fun jr -> Option.map (fun r -> Cached_lint r) jr.jr_lint)
    misses settled;
  let of_outcome path outcome lane =
    match outcome with
    | Supervisor.Done jr -> (
      Option.iter (Obs.add_unit ~lane) jr.jr_profile;
      match jr.jr_lint with
      | Some result -> result
      | None ->
        (* A check-mode result under a lint job is impossible by
           construction of [run_job]. *)
        engine_result path Rules.rule_internal_error "lint worker returned no result")
    | Supervisor.Timed_out { seconds; attempts } ->
      Obs.count "checker.timeout_units" 1;
      engine_result path Rules.rule_resource_limit
        (Printf.sprintf "linting exceeded the %gs wall-clock deadline (%d attempts)"
           seconds attempts)
    | Supervisor.Crashed { reason; attempts } ->
      Obs.count "checker.crashed_units" 1;
      engine_result path Rules.rule_internal_error
        (Printf.sprintf "lint worker died without a result: %s (%d attempts)" reason
           attempts)
  in
  merge_outcomes ~of_outcome annotated
    (List.map (fun (s : _ Supervisor.settled) -> (s.Supervisor.outcome, s.Supervisor.lane)) settled)
