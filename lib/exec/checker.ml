type verdict = {
  path : string;
  output : string;
  code : int;
  profile : Obs.profile option;
}

(* Deliberate misbehavior for the fault-injection tests: a worker that hangs
   (until the deadline kills it) or dies by SIGKILL (as the OOM killer
   would), triggered by substring match on the checked path. Armed only by
   an explicit in-process opt-in ([fault_injection], set by the hidden
   --fault-injection flag or directly by tests): a stale SHELLEY_FAULT
   variable inherited from some test environment must never be able to
   sabotage a real verification run on its own. *)
let fault_injection = ref false

let fault_hook path =
  if not !fault_injection then ()
  else
    match Sys.getenv_opt "SHELLEY_FAULT" with
    | None | Some "" -> ()
    | Some spec ->
    String.split_on_char ',' spec
    |> List.iter (fun entry ->
           match String.index_opt entry ':' with
           | None -> ()
           | Some i ->
             let kind = String.sub entry 0 i in
             let substr = String.sub entry (i + 1) (String.length entry - i - 1) in
             let matches =
               substr <> ""
               && String.length path >= String.length substr
               && List.exists
                    (fun off -> String.sub path off (String.length substr) = substr)
                    (List.init (String.length path - String.length substr + 1) Fun.id)
             in
             if matches then
               match kind with
               | "hang" ->
                 while true do
                   Unix.sleepf 0.05
                 done
               | "crash" -> Unix.kill (Unix.getpid ()) Sys.sigkill
               | _ -> ())

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* [check --lint] appends only what plain [check] does not already say:
   the structural checks (SY001–SY007), syntax errors (SY010/SY011) and
   extraction diagnostics (SY020) are printed by the pipeline as reports,
   so the lint pass contributes the purely semantic codes on top. *)
let lint_only (d : Lint.diagnostic) =
  match d.Lint.rule with
  | "SY001" | "SY002" | "SY003" | "SY004" | "SY005" | "SY006" | "SY007" | "SY010"
  | "SY011" | "SY020" ->
    false
  | _ -> true

(* Renders exactly what the sequential `shelley check` loop has always
   printed, but into a buffer, so the parent process can replay blocks in
   input order no matter which worker finished first. *)
let check_file_raw ?(limits = Limits.default) ?(warnings = false) ?(explain = false)
    ?(lint = false) ?(extra_env = fun _ -> None) path =
  fault_hook path;
  match read_file path with
  | exception Sys_error msg ->
    ( Format.asprintf "== %s ==@.Error: cannot read file: %s@.@." path msg,
      2 )
  | source ->
    let result = Pipeline.verify_source ~extra_env ~limits source in
    let reports =
      if warnings then result.Pipeline.reports else Report.errors result.Pipeline.reports
    in
    let lint_result =
      if not lint then None
      else begin
        let r = Lint.lint_source ~limits ~file:path source in
        Some { r with Lint.findings = List.filter lint_only r.Lint.findings }
      end
    in
    let lint_findings =
      match lint_result with
      | None -> []
      | Some r -> r.Lint.findings
    in
    let buf = Buffer.create 256 in
    let fmt = Format.formatter_of_buffer buf in
    if reports <> [] || lint_findings <> [] then begin
      Format.fprintf fmt "== %s ==@." path;
      List.iter
        (fun r ->
          Format.fprintf fmt "%a@.@." Report.pp r;
          if explain then
            List.iter
              (fun model ->
                match Explain.of_report ~model r with
                | Some explanation -> Format.fprintf fmt "%a@.@." Explain.pp explanation
                | None -> ())
              result.Pipeline.models)
        reports;
      List.iter
        (fun d -> Format.fprintf fmt "%s@." (Lint_render.text_line d))
        lint_findings;
      if lint_findings <> [] then Format.fprintf fmt "@."
    end;
    Format.pp_print_flush fmt ();
    let code =
      if List.exists Report.is_resource_limit result.Pipeline.reports then 3
      else if List.exists Report.is_syntax_error result.Pipeline.reports then 2
      else if not (Pipeline.verified result) then 1
      else 0
    in
    let code =
      match lint_result with
      | None -> code
      | Some r -> max code (Lint.file_exit_code r)
    in
    (Buffer.contents buf, code)

(* The whole file runs inside one [Obs] unit, so its span tree and counters
   come back as one marshal-safe profile (strings and ints only) — identical
   in shape whether this executes in-process or inside a forked worker. *)
let check_file ?limits ?warnings ?explain ?lint ?extra_env path =
  let (output, code), profile =
    Obs.in_unit ~name:path (fun () ->
        check_file_raw ?limits ?warnings ?explain ?lint ?extra_env path)
  in
  { path; output; code; profile }

let fault_block path report =
  Format.asprintf "== %s ==@.%a@.@." path Report.pp report

let check_files ?(jobs = 1) ?(limits = Limits.default) ?warnings ?explain ?lint
    ?extra_env paths =
  (* Workers send back (output, code, profile) only: plain marshal-safe
     data. The verdict's [path] is re-attached from the input list, which
     also keeps aggregation in input order. *)
  let payload limits path =
    let v = check_file ~limits ?warnings ?explain ?lint ?extra_env path in
    (v.output, v.code, v.profile)
  in
  let outcomes =
    Runner.map_ex ~jobs ?deadline:limits.Limits.deadline
      ~retry:(payload (Limits.reduced limits))
      ~f:(payload limits) paths
  in
  List.map2
    (fun path (outcome, lane) ->
      match outcome with
      | Runner.Done (output, code, profile) ->
        (* Merge the worker's profile into the parent recorder under its pool
           lane; the sinks then see one timeline row per worker. *)
        Option.iter (Obs.add_unit ~lane) profile;
        { path; output; code; profile }
      | Runner.Timed_out { seconds; attempts } ->
        Obs.count "checker.timeout_units" 1;
        {
          path;
          output = fault_block path (Report.Timeout { unit_name = path; seconds; attempts });
          code = 3;
          profile = None;
        }
      | Runner.Crashed { reason; attempts } ->
        Obs.count "checker.crashed_units" 1;
        {
          path;
          output =
            fault_block path (Report.Worker_crashed { unit_name = path; reason; attempts });
          code = 3;
          profile = None;
        })
    paths outcomes

let exit_code verdicts = List.fold_left (fun acc v -> max acc v.code) 0 verdicts

(* --- Parallel linting -------------------------------------------------------

   Same worker-pool shape as [check_files]: the payload is a
   [Lint.file_result] — plain strings, ints and a small variant, so it
   marshals across the result pipe — plus the unit's [Obs] profile. Results
   are replayed in input order, so lint output is byte-identical for any
   [-j] level. *)

let lint_file ?limits ?thresholds path =
  fault_hook path;
  let result, profile =
    Obs.in_unit ~name:path (fun () -> Lint.lint_path ?limits ?thresholds path)
  in
  (result, profile)

let engine_result path (rule : Rules.t) message =
  {
    Lint.lint_file = path;
    findings =
      [
        {
          Lint.rule = rule.Rules.code;
          rule_name = rule.Rules.name;
          severity = rule.Rules.severity;
          file = path;
          line = 0;
          class_name = "";
          message;
        };
      ];
    suppressed = [];
  }

let lint_files ?(jobs = 1) ?(limits = Limits.default) ?thresholds paths =
  let payload limits path = lint_file ~limits ?thresholds path in
  let outcomes =
    Runner.map_ex ~jobs ?deadline:limits.Limits.deadline
      ~retry:(payload (Limits.reduced limits))
      ~f:(payload limits) paths
  in
  List.map2
    (fun path (outcome, lane) ->
      match outcome with
      | Runner.Done (result, profile) ->
        Option.iter (Obs.add_unit ~lane) profile;
        result
      | Runner.Timed_out { seconds; attempts } ->
        Obs.count "checker.timeout_units" 1;
        engine_result path Rules.rule_resource_limit
          (Printf.sprintf
             "linting exceeded the %gs wall-clock deadline (%d attempts)" seconds
             attempts)
      | Runner.Crashed { reason; attempts } ->
        Obs.count "checker.crashed_units" 1;
        engine_result path Rules.rule_internal_error
          (Printf.sprintf "lint worker died without a result: %s (%d attempts)" reason
             attempts))
    paths outcomes
