(* The shelley verification daemon. One process owns a persistent
   Supervisor pool (via Checker) and a Unix-domain listening socket;
   requests are newline-delimited JSON-RPC, answered strictly in arrival
   order through the shared pool. The protocol handler is pure string ->
   string (handle_line), so unit tests drive it without any socket. *)

type state = {
  pool : Checker.pool;
  cache : Cache.t option;
  default_timeout : float option;
  mutable requests : int;
  mutable errors : int;
}

let make_state ?after_fork ?cache ?default_timeout ~jobs () =
  Option.iter Cache.defer_writes cache;
  {
    pool = Checker.make_pool ?after_fork ~jobs ();
    cache;
    default_timeout;
    requests = 0;
    errors = 0;
  }

let state_pool st = st.pool

let shutdown_state st =
  Option.iter (fun c -> ignore (Cache.flush c)) st.cache;
  Checker.shutdown_pool st.pool

(* --- responses -------------------------------------------------------------- *)

let num_i n = Jsonl.Num (float_of_int n)
let ok_response id fields = Jsonl.Obj [ ("id", id); ("result", Jsonl.Obj fields) ]

let error_response ?(code = 2) id msg =
  Jsonl.Obj [ ("id", id); ("error", Jsonl.Str msg); ("code", num_i code) ]

(* --- request parameters ----------------------------------------------------- *)

let limits_of_params st params =
  let d = Limits.default in
  let int_param key default =
    match Jsonl.mem_num key params with
    | Some f -> int_of_float f
    | None -> default
  in
  let deadline =
    match Jsonl.mem_num "timeout" params with
    | Some f -> Some f
    | None -> st.default_timeout
  in
  Limits.make
    ~max_states:(int_param "max_states" d.Limits.max_states)
    ~max_configs:(int_param "fuel" d.Limits.max_configs)
    ?deadline ()

let digests paths =
  List.filter_map
    (fun path ->
      match Digest.file path with
      | d -> Some (Digest.to_hex d)
      | exception Sys_error _ -> None)
    paths

let files_of_params params = Jsonl.mem_str_list "files" params

(* --- methods ---------------------------------------------------------------- *)

let do_check st id params =
  match files_of_params params with
  | None | Some [] ->
    error_response id "check: params.files must be a non-empty array of strings"
  | Some files -> (
    let using = Option.value (Jsonl.mem_str_list "using" params) ~default:[] in
    (* Same up-front validation as the one-shot CLI: a broken --using model
       is one request-level error, not N per-file failures. *)
    match Model_io.env_of_files using with
    | Error msg -> error_response id msg
    | Ok _ ->
      let warnings = Jsonl.mem_bool "warnings" params in
      let explain = Jsonl.mem_bool "explain" params in
      let lint = Jsonl.mem_bool "lint" params in
      let limits = limits_of_params st params in
      let verdicts =
        Checker.check_files ~limits ~warnings ~explain ~lint ~using ~pool:st.pool
          ?cache:st.cache ~cache_extra:(digests using) files
      in
      let code = Checker.exit_code verdicts in
      let buf = Buffer.create 256 in
      List.iter
        (fun (v : Checker.verdict) -> Buffer.add_string buf v.Checker.output)
        verdicts;
      (* Byte-identity with one-shot stdout includes the success line. *)
      if code = 0 then Buffer.add_string buf "OK: specification verified\n";
      ok_response id [ ("output", Jsonl.Str (Buffer.contents buf)); ("code", num_i code) ])

let do_lint st id params =
  match files_of_params params with
  | None | Some [] ->
    error_response id "lint: params.files must be a non-empty array of strings"
  | Some files -> (
    let format_name = Option.value (Jsonl.mem_str "format" params) ~default:"text" in
    match Lint_render.format_of_string format_name with
    | Error msg -> error_response id msg
    | Ok format ->
      let d = Lint_semantic.default_thresholds in
      let int_param key default =
        match Jsonl.mem_num key params with
        | Some f -> int_of_float f
        | None -> default
      in
      let thresholds =
        {
          Lint_semantic.max_behavior_size =
            int_param "max_behavior_size" d.Lint_semantic.max_behavior_size;
          max_star_height = int_param "max_star_height" d.Lint_semantic.max_star_height;
        }
      in
      let limits = limits_of_params st params in
      let results =
        Checker.lint_files ~limits ~thresholds ~pool:st.pool ?cache:st.cache files
      in
      ok_response id
        [
          ("output", Jsonl.Str (Lint_render.render format results));
          ("code", num_i (Lint.exit_code results));
        ])

let do_status st id =
  let s = Checker.pool_stats st.pool in
  ok_response id
    [
      ("pid", num_i (Unix.getpid ()));
      ("requests", num_i st.requests);
      ("errors", num_i st.errors);
      ( "pool",
        Jsonl.Obj
          [
            ("spawns", num_i s.Supervisor.spawns);
            ("restarts", num_i s.Supervisor.restarts);
            ("recycles", num_i s.Supervisor.recycles);
            ("backoff_waits", num_i s.Supervisor.backoff_waits);
            ("heartbeat_misses", num_i s.Supervisor.heartbeat_misses);
            ("kills", num_i s.Supervisor.kills);
            ("poisoned", num_i s.Supervisor.poisoned);
            ("fork_failures", num_i s.Supervisor.fork_failures);
            ("batches", num_i s.Supervisor.batches);
            ("tasks", num_i s.Supervisor.tasks);
            ("inline_tasks", num_i s.Supervisor.inline_tasks);
            ("live_workers", num_i s.Supervisor.live_workers);
          ] );
      ( "workers",
        Jsonl.Arr (List.map num_i (Checker.pool_worker_pids st.pool)) );
    ]

let handle_line st line =
  let dispatch () =
    match Jsonl.parse line with
    | Error msg ->
      (error_response Jsonl.Null (Printf.sprintf "bad request: %s" msg), `Continue)
    | Ok req -> (
      let id = Option.value (Jsonl.member "id" req) ~default:Jsonl.Null in
      match Jsonl.mem_str "method" req with
      | None -> (error_response id "missing method", `Continue)
      | Some m -> (
        let params = Option.value (Jsonl.member "params" req) ~default:(Jsonl.Obj []) in
        st.requests <- st.requests + 1;
        Obs.count "serve.requests" 1;
        match m with
        | "check" -> (do_check st id params, `Continue)
        | "lint" -> (do_lint st id params, `Continue)
        | "status" -> (do_status st id, `Continue)
        | "shutdown" -> (ok_response id [ ("ok", Jsonl.Bool true) ], `Shutdown)
        | m -> (error_response id ("unknown method: " ^ m), `Continue)))
  in
  let resp, k =
    (* The handler must outlive any single request: an unexpected exception
       becomes an error response on that request, never a dead daemon. *)
    match dispatch () with
    | r -> r
    | exception exn ->
      (error_response Jsonl.Null ("internal error: " ^ Printexc.to_string exn), `Continue)
  in
  (match resp with
  | Jsonl.Obj fields when List.mem_assoc "error" fields ->
    st.errors <- st.errors + 1;
    Obs.count "serve.errors" 1
  | _ -> ());
  (Jsonl.to_string resp, k)

(* --- socket plumbing -------------------------------------------------------- *)

let rec write_all fd bytes pos len =
  if pos < len then
    match Unix.write fd bytes pos (len - pos) with
    | k -> write_all fd bytes (pos + k) len
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd bytes pos len

type conn = {
  fd : Unix.file_descr;
  rbuf : Buffer.t;
}

(* Split the buffer's complete lines off, keeping the partial tail. *)
let take_lines buf =
  let s = Buffer.contents buf in
  match String.rindex_opt s '\n' with
  | None -> []
  | Some last ->
    Buffer.clear buf;
    Buffer.add_string buf (String.sub s (last + 1) (String.length s - last - 1));
    String.split_on_char '\n' (String.sub s 0 last)

let serve ~socket ?(jobs = 1) ?cache ?default_timeout ?(idle_reap = 30.) ?metrics_out
    () =
  (* Replace a stale socket from a previous daemon; refuse to clobber
     anything that is not a socket. *)
  (match Unix.stat socket with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (try Unix.unlink socket with Unix.Unix_error _ -> ())
  | _ ->
    prerr_endline ("shelley serve: " ^ socket ^ " exists and is not a socket");
    exit 2
  | exception Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.bind listen_fd (Unix.ADDR_UNIX socket) with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
    prerr_endline
      (Printf.sprintf "shelley serve: cannot bind %s: %s" socket (Unix.error_message e));
    exit 2);
  Unix.listen listen_fd 16;
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 8 in
  (* Workers fork lazily, possibly while clients are connected: every
     daemon-side descriptor must close in the child or a worker would hold
     the socket open past the daemon's exit. *)
  let after_fork () =
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) conns
  in
  let st = make_state ~after_fork ?cache ?default_timeout ~jobs () in
  let draining = ref false in
  let handler = Sys.Signal_handle (fun _ -> draining := true) in
  Sys.set_signal Sys.sigterm handler;
  Sys.set_signal Sys.sigint handler;
  let drop conn =
    Hashtbl.remove conns conn.fd;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  in
  let respond conn line =
    let payload = Bytes.of_string (line ^ "\n") in
    match write_all conn.fd payload 0 (Bytes.length payload) with
    | () -> ()
    | exception Unix.Unix_error _ -> drop conn
  in
  (* Serve every complete line this connection has buffered. Returns after
     the shutdown acknowledgment has been written, so the client that asked
     always hears the answer. *)
  let pump conn =
    List.iter
      (fun line ->
        if String.trim line <> "" then begin
          let resp, k = handle_line st line in
          respond conn resp;
          match k with
          | `Shutdown -> draining := true
          | `Continue -> ()
        end)
      (take_lines conn.rbuf)
  in
  let chunk = Bytes.create 65536 in
  let read_conn conn =
    match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
    | 0 -> drop conn
    | n ->
      Buffer.add_subbytes conn.rbuf chunk 0 n;
      pump conn
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> drop conn
  in
  let last_activity = ref (Unix.gettimeofday ()) in
  let reaped = ref false in
  while not !draining do
    let fds = listen_fd :: Hashtbl.fold (fun fd _ acc -> fd :: acc) conns [] in
    match Unix.select fds [] [] 0.5 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
      List.iter
        (fun fd ->
          if fd == listen_fd then begin
            match Unix.accept listen_fd with
            | client, _ ->
              Hashtbl.replace conns client { fd = client; rbuf = Buffer.create 256 };
              last_activity := Unix.gettimeofday ();
              reaped := false
            | exception Unix.Unix_error _ -> ()
          end
          else
            match Hashtbl.find_opt conns fd with
            | Some conn ->
              last_activity := Unix.gettimeofday ();
              reaped := false;
              read_conn conn
            | None -> ())
        readable;
      (* A dormant daemon holds no worker processes and no unflushed cache
         entries: both respawn / refill on the next request. *)
      if
        (not !reaped)
        && Hashtbl.length conns = 0
        && Unix.gettimeofday () -. !last_activity > idle_reap
      then begin
        Checker.quiesce_pool st.pool;
        Option.iter (fun c -> ignore (Cache.flush c)) st.cache;
        Obs.count "serve.idle_reaps" 1;
        reaped := true
      end
  done;
  (* Graceful drain: answer what has already arrived in full, then flush
     state and dismantle. In-flight requests finished above — the handler
     runs to completion even when the signal lands mid-verification (the
     supervisor retries its selects on EINTR). *)
  Hashtbl.iter (fun _ conn -> pump conn) (Hashtbl.copy conns);
  Option.iter (fun c -> ignore (Cache.flush c)) st.cache;
  Option.iter
    (fun path ->
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (Obs.render_metrics_json ())))
    metrics_out;
  shutdown_state st;
  Hashtbl.iter (fun _ conn -> try Unix.close conn.fd with Unix.Unix_error _ -> ()) conns;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  0

(* --- client ----------------------------------------------------------------- *)

let client_call ~socket line =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        match Unix.connect fd (Unix.ADDR_UNIX socket) with
        | exception Unix.Unix_error (e, _, _) ->
          Error
            (Printf.sprintf "cannot connect to %s: %s" socket (Unix.error_message e))
        | () -> (
          let payload = Bytes.of_string (line ^ "\n") in
          match write_all fd payload 0 (Bytes.length payload) with
          | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
          | () ->
            let buf = Buffer.create 1024 in
            let chunk = Bytes.create 65536 in
            let rec go () =
              if String.contains (Buffer.contents buf) '\n' then ()
              else
                match Unix.read fd chunk 0 (Bytes.length chunk) with
                | 0 -> ()
                | n ->
                  Buffer.add_subbytes buf chunk 0 n;
                  go ()
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
            in
            (match go () with
            | () -> ()
            | exception Unix.Unix_error _ -> ());
            let s = Buffer.contents buf in
            (match String.index_opt s '\n' with
            | Some i -> Ok (String.sub s 0 i)
            | None ->
              if s = "" then Error "connection closed without a response" else Ok s)))
