(* The shelley verification daemon. One process owns a persistent
   Supervisor pool (via Checker) and a Unix-domain listening socket;
   requests are newline-delimited JSON-RPC. The protocol handler is pure
   string -> string (handle_line), so unit tests drive it without any
   socket.

   Overload safety is layered in front of the pool:

   - every per-connection read buffer is bounded ([max_frame_bytes]): an
     oversized frame gets a structured [frame_too_large] error and the
     connection is closed, so one hostile client cannot OOM the daemon
     with a single unbounded line;
   - a per-connection read deadline ([read_deadline]) reaps slow-loris
     clients that start a frame and never finish it (idle clients with
     *no* partial frame are welcome to stay connected);
   - [check]/[lint] requests pass a bounded {!Admission} queue: a full
     queue sheds with a structured [overloaded] error carrying a
     [retry_after_ms] hint; a queued request whose deadline passes is
     answered [expired] and never dispatched; dispatch is per-client
     round-robin within a [priority] level, so no client can starve the
     others. [status] and [shutdown] bypass the queue entirely, so the
     daemon stays observable while loaded;
   - worker memory is capped via setrlimit(RLIMIT_AS) (see
     {!Supervisor.config} [max_as_mb]), so a ballooning check fails as a
     classified resource limit instead of summoning the OOM killer.

   All daemon-side timers run on the monotonic clock ({!Sysconf}): a
   wall-clock jump can neither reap a warm pool nor expire a fresh
   request. *)

type load = {
  mutable queue_depth : int;
  queue_cap : int;
  mutable conns : int;
  conns_cap : int;
  mutable shed : int;
  mutable expired : int;
  mutable frames_oversized : int;
  mutable conns_reaped : int;
  mutable conns_rejected : int;
}

type state = {
  pool : Checker.pool;
  cache : Cache.t option;
  default_timeout : float option;
  load : load;
  mutable requests : int;
  mutable errors : int;
}

let make_state ?after_fork ?cache ?default_timeout ?(max_queue = 64)
    ?(max_conns = 512) ?(max_worker_mem = 0) ~jobs () =
  Option.iter Cache.defer_writes cache;
  {
    pool = Checker.make_pool ?after_fork ~max_as_mb:max_worker_mem ~jobs ();
    cache;
    default_timeout;
    load =
      {
        queue_depth = 0;
        queue_cap = max_queue;
        conns = 0;
        conns_cap = max_conns;
        shed = 0;
        expired = 0;
        frames_oversized = 0;
        conns_reaped = 0;
        conns_rejected = 0;
      };
    requests = 0;
    errors = 0;
  }

let state_pool st = st.pool

let shutdown_state st =
  Option.iter (fun c -> ignore (Cache.flush c)) st.cache;
  Checker.shutdown_pool st.pool

(* --- responses -------------------------------------------------------------- *)

let num_i n = Jsonl.Num (float_of_int n)
let ok_response id fields = Jsonl.Obj [ ("id", id); ("result", Jsonl.Obj fields) ]

(* Degradation-path errors are structured: a stable [error_code] machine
   key next to the human message, plus [retry_after_ms] where a retry is
   what the daemon is asking for. Errors without an [error_code] are plain
   request mistakes (bad JSON, unknown method, bad params). *)
let error_response ?(code = 2) ?error_code ?retry_after_ms id msg =
  Jsonl.Obj
    ([ ("id", id); ("error", Jsonl.Str msg); ("code", num_i code) ]
    @ (match error_code with
      | Some ec -> [ ("error_code", Jsonl.Str ec) ]
      | None -> [])
    @
    match retry_after_ms with
    | Some ms -> [ ("retry_after_ms", num_i ms) ]
    | None -> [])

let overloaded_response ~retry_after_ms id =
  error_response ~code:4 ~error_code:"overloaded" ~retry_after_ms id
    (Printf.sprintf
       "daemon overloaded: admission queue is full; retry in %dms" retry_after_ms)

let expired_response id =
  error_response ~code:3 ~error_code:"expired" id
    "request deadline expired while queued; it was never dispatched"

(* A connection refused at accept time, before any request: same
   [overloaded] error code as a queue shed, so self-healing clients back
   off and retry rather than giving up, but counted separately
   ([conns_rejected]) so queue sheds stay deterministic. *)
let connection_limit_response ~max_conns =
  error_response ~code:4 ~error_code:"overloaded" ~retry_after_ms:1000 Jsonl.Null
    (Printf.sprintf
       "daemon overloaded: at its %d-connection limit; retry in 1000ms" max_conns)

let frame_too_large_response ~max_frame_bytes =
  error_response ~code:2 ~error_code:"frame_too_large" Jsonl.Null
    (Printf.sprintf "frame exceeds the %d-byte limit; closing connection"
       max_frame_bytes)

let read_timeout_response ~read_deadline =
  error_response ~code:2 ~error_code:"read_timeout" Jsonl.Null
    (Printf.sprintf
       "no complete frame within %gs of the first byte; closing connection"
       read_deadline)

(* --- request parameters ----------------------------------------------------- *)

let limits_of_params st params =
  let d = Limits.default in
  let int_param key default =
    Option.value (Jsonl.mem_int key params) ~default
  in
  let deadline =
    match Jsonl.mem_num "timeout" params with
    | Some f -> Some f
    | None -> st.default_timeout
  in
  Limits.make
    ~max_states:(int_param "max_states" d.Limits.max_states)
    ~max_configs:(int_param "fuel" d.Limits.max_configs)
    ?deadline ()

let digests paths =
  List.filter_map
    (fun path ->
      match Digest.file path with
      | d -> Some (Digest.to_hex d)
      | exception Sys_error _ -> None)
    paths

let files_of_params params = Jsonl.mem_str_list "files" params

(* --- methods ---------------------------------------------------------------- *)

let do_check st id params =
  match files_of_params params with
  | None | Some [] ->
    error_response id "check: params.files must be a non-empty array of strings"
  | Some files -> (
    let using = Option.value (Jsonl.mem_str_list "using" params) ~default:[] in
    (* Same up-front validation as the one-shot CLI: a broken --using model
       is one request-level error, not N per-file failures. *)
    match Model_io.env_of_files using with
    | Error msg -> error_response id msg
    | Ok _ ->
      let warnings = Jsonl.mem_bool "warnings" params in
      let explain = Jsonl.mem_bool "explain" params in
      let lint = Jsonl.mem_bool "lint" params in
      let limits = limits_of_params st params in
      let verdicts =
        Checker.check_files ~limits ~warnings ~explain ~lint ~using ~pool:st.pool
          ?cache:st.cache ~cache_extra:(digests using) files
      in
      let code = Checker.exit_code verdicts in
      let buf = Buffer.create 256 in
      List.iter
        (fun (v : Checker.verdict) -> Buffer.add_string buf v.Checker.output)
        verdicts;
      (* Byte-identity with one-shot stdout includes the success line. *)
      if code = 0 then Buffer.add_string buf "OK: specification verified\n";
      ok_response id [ ("output", Jsonl.Str (Buffer.contents buf)); ("code", num_i code) ])

let do_lint st id params =
  match files_of_params params with
  | None | Some [] ->
    error_response id "lint: params.files must be a non-empty array of strings"
  | Some files -> (
    let format_name = Option.value (Jsonl.mem_str "format" params) ~default:"text" in
    match Lint_render.format_of_string format_name with
    | Error msg -> error_response id msg
    | Ok format ->
      let d = Lint_semantic.default_thresholds in
      let int_param key default =
        Option.value (Jsonl.mem_int key params) ~default
      in
      let thresholds =
        {
          Lint_semantic.max_behavior_size =
            int_param "max_behavior_size" d.Lint_semantic.max_behavior_size;
          max_star_height = int_param "max_star_height" d.Lint_semantic.max_star_height;
        }
      in
      let limits = limits_of_params st params in
      let results =
        Checker.lint_files ~limits ~thresholds ~pool:st.pool ?cache:st.cache files
      in
      ok_response id
        [
          ("output", Jsonl.Str (Lint_render.render format results));
          ("code", num_i (Lint.exit_code results));
        ])

let do_status st id =
  let s = Checker.pool_stats st.pool in
  ok_response id
    [
      ("pid", num_i (Unix.getpid ()));
      ("requests", num_i st.requests);
      ("errors", num_i st.errors);
      ( "load",
        Jsonl.Obj
          [
            ("queue_depth", num_i st.load.queue_depth);
            ("max_queue", num_i st.load.queue_cap);
            ("conns", num_i st.load.conns);
            ("max_conns", num_i st.load.conns_cap);
            ("shed", num_i st.load.shed);
            ("expired", num_i st.load.expired);
            ("frames_oversized", num_i st.load.frames_oversized);
            ("conns_reaped", num_i st.load.conns_reaped);
            ("conns_rejected", num_i st.load.conns_rejected);
          ] );
      ( "pool",
        Jsonl.Obj
          [
            ("spawns", num_i s.Supervisor.spawns);
            ("restarts", num_i s.Supervisor.restarts);
            ("recycles", num_i s.Supervisor.recycles);
            ("backoff_waits", num_i s.Supervisor.backoff_waits);
            ("heartbeat_misses", num_i s.Supervisor.heartbeat_misses);
            ("kills", num_i s.Supervisor.kills);
            ("poisoned", num_i s.Supervisor.poisoned);
            ("fork_failures", num_i s.Supervisor.fork_failures);
            ("batches", num_i s.Supervisor.batches);
            ("tasks", num_i s.Supervisor.tasks);
            ("inline_tasks", num_i s.Supervisor.inline_tasks);
            ("live_workers", num_i s.Supervisor.live_workers);
          ] );
      ( "workers",
        Jsonl.Arr (List.map num_i (Checker.pool_worker_pids st.pool)) );
    ]

(* --- classification ----------------------------------------------------------

   One request line either gets an immediate reply (status, shutdown, and
   every malformed request — all cheap, all answered at read time, so the
   daemon stays observable however deep the work queue is) or is verifiable
   *work* to be run through admission control. [handle_line] executes work
   immediately — the admission queue is the socket loop's business — so its
   pure request->response contract (and every test built on it) is
   unchanged. *)

type work = {
  w_id : Jsonl.t;
  w_kind : [ `Check | `Lint ];
  w_params : Jsonl.t;
  w_priority : int;
  w_deadline_ms : float option;  (* max queue wait the client will accept *)
}

type classified =
  | Reply of Jsonl.t * [ `Continue | `Shutdown ]
  | Admit of work

let classify st line =
  match Jsonl.parse line with
  | Error msg ->
    Reply (error_response Jsonl.Null (Printf.sprintf "bad request: %s" msg), `Continue)
  | Ok req -> (
    let id = Option.value (Jsonl.member "id" req) ~default:Jsonl.Null in
    match Jsonl.mem_str "method" req with
    | None -> Reply (error_response id "missing method", `Continue)
    | Some m -> (
      let params = Option.value (Jsonl.member "params" req) ~default:(Jsonl.Obj []) in
      st.requests <- st.requests + 1;
      Obs.count "serve.requests" 1;
      let work kind =
        Admit
          {
            w_id = id;
            w_kind = kind;
            w_params = params;
            w_priority = Option.value (Jsonl.mem_int "priority" params) ~default:0;
            w_deadline_ms = Jsonl.mem_num "deadline_ms" params;
          }
      in
      match m with
      | "check" -> work `Check
      | "lint" -> work `Lint
      | "status" -> Reply (do_status st id, `Continue)
      | "shutdown" -> Reply (ok_response id [ ("ok", Jsonl.Bool true) ], `Shutdown)
      | m -> Reply (error_response id ("unknown method: " ^ m), `Continue)))

(* Work can fail arbitrarily (the pool, the cache, the filesystem): an
   unexpected exception becomes an error response on that request, never a
   dead daemon. *)
let execute st (w : work) =
  match
    match w.w_kind with
    | `Check -> do_check st w.w_id w.w_params
    | `Lint -> do_lint st w.w_id w.w_params
  with
  | resp -> resp
  | exception exn ->
    error_response w.w_id ("internal error: " ^ Printexc.to_string exn)

(* Every response funnels through here so the error ledger can't drift
   between the in-process handler and the socket loop. *)
let track st resp =
  (match resp with
  | Jsonl.Obj fields when List.mem_assoc "error" fields ->
    st.errors <- st.errors + 1;
    Obs.count "serve.errors" 1
  | _ -> ());
  resp

let handle_line st line =
  match
    match classify st line with
    | Reply (resp, k) -> (resp, k)
    | Admit w -> (execute st w, `Continue)
  with
  | resp, k -> (Jsonl.to_string (track st resp), k)
  | exception exn ->
    ( Jsonl.to_string
        (track st
           (error_response Jsonl.Null ("internal error: " ^ Printexc.to_string exn))),
      `Continue )

(* --- socket plumbing -------------------------------------------------------- *)

let rec write_all fd bytes pos len =
  if pos < len then
    match Unix.write fd bytes pos (len - pos) with
    | k -> write_all fd bytes (pos + k) len
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd bytes pos len

type conn = {
  fd : Unix.file_descr;  (* nonblocking *)
  cid : int;  (* admission-control client identity *)
  rbuf : Buffer.t;
  mutable partial_since : float;
      (* monotonic instant the current partial frame started; 0.0 = the
         buffer is empty (an idle connection is never reaped for slowness) *)
  wq : string Queue.t;
      (* pending response lines (newline included): responses are never
         written synchronously — a client that stops reading fills its own
         buffer here, not the daemon's one thread *)
  mutable wpos : int;  (* written prefix of the head of [wq] *)
  mutable wbytes : int;  (* total bytes pending across [wq] *)
  mutable write_since : float;
      (* monotonic instant of the last write progress while data is
         pending; 0.0 = nothing pending *)
  mutable closing : bool;  (* drop as soon as [wq] drains *)
}

let pending conn = conn.wbytes

(* A stalled reader may buffer this much undelivered response data before
   the connection is reaped — bounded, so N hostile clients cost at most
   N * 32 MiB, never unbounded daemon growth. *)
let max_write_buffer = 32 * 1024 * 1024

(* Split the buffer's complete lines off, keeping the partial tail. *)
let take_lines buf =
  let s = Buffer.contents buf in
  match String.rindex_opt s '\n' with
  | None -> []
  | Some last ->
    Buffer.clear buf;
    Buffer.add_string buf (String.sub s (last + 1) (String.length s - last - 1));
    String.split_on_char '\n' (String.sub s 0 last)

(* --- startup safety ----------------------------------------------------------

   A pre-existing socket file is only stale if nothing is listening on it.
   Probe with a nonblocking connect (a blocking one could hang startup
   indefinitely against a live daemon with a full backlog) — only a clean
   refusal (ECONNREFUSED/ENOENT) means the previous daemon is gone and the
   path can be reclaimed; success means a live daemon owns it, and a second
   daemon must refuse to steal the socket rather than silently orphan it;
   any *other* failure (EACCES, EINTR, ...) proves nothing, so the safe
   answer is "assume live, refuse to start" rather than unlink a socket a
   healthy daemon may still be serving. A [status] call (bounded wait)
   decorates the refusal with the pid. *)

let probe_live_daemon socket =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> `Undetermined (Unix.error_message e)
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
        let outcome =
          match Unix.connect fd (Unix.ADDR_UNIX socket) with
          | () -> `Connected
          | exception
              Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
            `Refused
          | exception
              Unix.Unix_error
                ( (Unix.EINPROGRESS | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR),
                  _,
                  _ ) -> (
            match Unix.select [] [ fd ] [] 2.0 with
            | _, _ :: _, _ -> (
              match Unix.getsockopt_error fd with
              | None -> `Connected
              | Some (Unix.ECONNREFUSED | Unix.ENOENT) -> `Refused
              | Some e -> `Error e)
            | _ ->
              (* No resolution within the window: something is listening
                 but its backlog is full — a live, if swamped, daemon. *)
              `Busy
            | exception Unix.Unix_error _ -> `Busy)
          | exception Unix.Unix_error (e, _, _) -> `Error e
        in
        match outcome with
        | `Refused -> `Stale
        | `Busy -> `Live None
        | `Error e -> `Undetermined (Unix.error_message e)
        | `Connected ->
          (try Unix.clear_nonblock fd with Unix.Unix_error _ -> ());
          let pid =
            let line = "{\"id\":0,\"method\":\"status\"}\n" in
            match write_all fd (Bytes.of_string line) 0 (String.length line) with
            | exception Unix.Unix_error _ -> None
            | () ->
              let deadline = Sysconf.monotonic_time () +. 2.0 in
              let buf = Buffer.create 256 in
              let chunk = Bytes.create 4096 in
              let rec go () =
                if String.contains (Buffer.contents buf) '\n' then
                  Option.bind
                    (Jsonl.parse
                       (List.hd (String.split_on_char '\n' (Buffer.contents buf)))
                     |> Result.to_option)
                    (fun resp ->
                      Option.bind (Jsonl.member "result" resp) (Jsonl.mem_int "pid"))
                else begin
                  let left = deadline -. Sysconf.monotonic_time () in
                  if left <= 0.0 then None
                  else
                    match Unix.select [ fd ] [] [] left with
                    | [], _, _ -> None
                    | _ -> (
                      match Unix.read fd chunk 0 (Bytes.length chunk) with
                      | 0 -> None
                      | n ->
                        Buffer.add_subbytes buf chunk 0 n;
                        go ()
                      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
                      | exception Unix.Unix_error _ -> None)
                end
              in
              go ()
          in
          `Live pid)

(* --- the daemon loop --------------------------------------------------------- *)

let serve ~socket ?(jobs = 1) ?cache ?default_timeout ?(idle_reap = 30.)
    ?metrics_out ?(max_queue = 64) ?(max_conns = 512)
    ?(max_frame_bytes = 8 * 1024 * 1024) ?(read_deadline = 30.) ?queue_deadline
    ?(max_worker_mem = 0) () =
  (* select(2) rejects fds >= FD_SETSIZE (1024): keep the connection count
     comfortably below it so worker pipes and cache fds still fit. *)
  let max_conns = max 1 (min max_conns 960) in
  (* Reclaim a stale socket from a dead daemon; refuse both non-sockets and
     the socket of a daemon that is still alive. *)
  (match Unix.stat socket with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
    match probe_live_daemon socket with
    | `Stale -> ( try Unix.unlink socket with Unix.Unix_error _ -> ())
    | `Undetermined reason ->
      prerr_endline
        (Printf.sprintf
           "shelley serve: cannot tell whether a daemon still owns %s (%s); \
            refusing to start — remove the socket manually if its daemon is \
            gone"
           socket reason);
      exit 2
    | `Live pid ->
      prerr_endline
        (Printf.sprintf
           "shelley serve: a daemon%s is already running on %s; refusing to \
            steal its socket"
           (match pid with
           | Some pid -> Printf.sprintf " (pid %d)" pid
           | None -> "")
           socket);
      exit 2)
  | _ ->
    prerr_endline ("shelley serve: " ^ socket ^ " exists and is not a socket");
    exit 2
  | exception Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.bind listen_fd (Unix.ADDR_UNIX socket) with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
    prerr_endline
      (Printf.sprintf "shelley serve: cannot bind %s: %s" socket (Unix.error_message e));
    exit 2);
  Unix.listen listen_fd 16;
  (* Nonblocking, so one select round can drain the whole accept backlog:
     otherwise a burst of connects is admitted one per round, and a client
     whose connect is still queued behind its siblings' can miss the round
     in which their requests contend for the admission queue. *)
  Unix.set_nonblock listen_fd;
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 8 in
  let conns_by_cid : (int, conn) Hashtbl.t = Hashtbl.create 8 in
  (* Workers fork lazily, possibly while clients are connected: every
     daemon-side descriptor must close in the child or a worker would hold
     the socket open past the daemon's exit. *)
  let after_fork () =
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) conns
  in
  let st =
    make_state ~after_fork ?cache ?default_timeout ~max_queue ~max_conns
      ~max_worker_mem ~jobs ()
  in
  let queue : work Admission.t = Admission.create ~max_queue in
  let sync_depth () = st.load.queue_depth <- Admission.length queue in
  let sync_conns () = st.load.conns <- Hashtbl.length conns in
  let draining = ref false in
  let handler = Sys.Signal_handle (fun _ -> draining := true) in
  Sys.set_signal Sys.sigterm handler;
  Sys.set_signal Sys.sigint handler;
  let next_cid = ref 0 in
  let drop conn =
    Hashtbl.remove conns conn.fd;
    Hashtbl.remove conns_by_cid conn.cid;
    ignore (Admission.drop_client queue conn.cid);
    sync_depth ();
    sync_conns ();
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  in
  (* A connection is done for once it is closing or already dropped:
     buffered input from it must not be served. *)
  let conn_live conn = Hashtbl.mem conns conn.fd && not conn.closing in
  (* Drain as much of [conn]'s pending output as the socket accepts right
     now; the select writable set calls back for the rest. Never blocks —
     a stalled reader costs an O(1) EAGAIN, not a wedged daemon. *)
  let rec flush_conn conn =
    if pending conn = 0 then begin
      conn.write_since <- 0.0;
      if conn.closing && Hashtbl.mem conns conn.fd then drop conn
    end
    else
      let line = Queue.peek conn.wq in
      let len = String.length line in
      match Unix.write_substring conn.fd line conn.wpos (len - conn.wpos) with
      | k ->
        conn.wbytes <- conn.wbytes - k;
        conn.wpos <- conn.wpos + k;
        conn.write_since <- Sysconf.monotonic_time ();
        if conn.wpos >= len then begin
          ignore (Queue.pop conn.wq);
          conn.wpos <- 0
        end;
        flush_conn conn
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> flush_conn conn
      | exception Unix.Unix_error _ -> drop conn
  in
  let respond conn resp =
    let line = Jsonl.to_string (track st resp) ^ "\n" in
    Queue.push line conn.wq;
    conn.wbytes <- conn.wbytes + String.length line;
    if conn.write_since = 0.0 then conn.write_since <- Sysconf.monotonic_time ();
    if pending conn > max_write_buffer then begin
      (* The client has stopped reading: nothing we queue can reach it. *)
      st.load.conns_reaped <- st.load.conns_reaped + 1;
      Obs.count_stable "serve.conns_reaped" 1;
      drop conn
    end
    else flush_conn conn
  in
  (* Close once everything queued (typically a final error) is delivered;
     the write-stall reaper bounds how long that delivery may take. *)
  let close_after_flush conn =
    conn.closing <- true;
    if pending conn = 0 && Hashtbl.mem conns conn.fd then drop conn
  in
  let respond_cid cid resp =
    (* The client may have disconnected while its request was queued or
       running; its work is then simply discarded. *)
    match Hashtbl.find_opt conns_by_cid cid with
    | Some conn -> respond conn resp
    | None -> ignore (track st resp)
  in
  let oversize conn =
    st.load.frames_oversized <- st.load.frames_oversized + 1;
    Obs.count_stable "serve.frames_oversized" 1;
    respond conn (frame_too_large_response ~max_frame_bytes);
    if Hashtbl.mem conns conn.fd then close_after_flush conn
  in
  let admit conn (w : work) =
    let now = Sysconf.monotonic_time () in
    let deadline =
      (* The effective queue-wait budget: the tighter of the request's own
         deadline_ms and the server-wide --queue-deadline, if either. *)
      let of_ms ms = now +. (ms /. 1000.) in
      match (w.w_deadline_ms, queue_deadline) with
      | Some ms, Some qd -> Some (Float.min (of_ms ms) (now +. qd))
      | Some ms, None -> Some (of_ms ms)
      | None, Some qd -> Some (now +. qd)
      | None, None -> None
    in
    (match
       Admission.submit queue ~client:conn.cid ~priority:w.w_priority ~deadline ~now w
     with
    | Admission.Admitted -> ()
    | Admission.Shed retry_after_ms ->
      st.load.shed <- st.load.shed + 1;
      Obs.count_stable "serve.shed" 1;
      respond conn (overloaded_response ~retry_after_ms w.w_id)
    | Admission.Expired ->
      st.load.expired <- st.load.expired + 1;
      Obs.count_stable "serve.expired" 1;
      respond conn (expired_response w.w_id));
    sync_depth ()
  in
  (* Serve every complete line this connection has buffered: immediate
     replies (status/shutdown/errors) are written at once — that is what
     keeps [status] answerable under load — and work goes through
     admission. The shutdown acknowledgment is written here too, so the
     client that asked always hears the answer. *)
  let pump conn =
    List.iter
      (fun line ->
        if conn_live conn && String.trim line <> "" then begin
          if String.length line > max_frame_bytes then oversize conn
          else
            match classify st line with
            | Reply (resp, k) ->
              respond conn resp;
              (match k with
              | `Shutdown -> draining := true
              | `Continue -> ())
            | Admit w -> admit conn w
            | exception exn ->
              respond conn
                (error_response Jsonl.Null
                   ("internal error: " ^ Printexc.to_string exn))
        end)
      (take_lines conn.rbuf);
    if conn_live conn then
      if Buffer.length conn.rbuf > max_frame_bytes then
        (* The partial tail alone already exceeds any legal frame. *)
        oversize conn
      else if Buffer.length conn.rbuf = 0 then conn.partial_since <- 0.0
      else if conn.partial_since = 0.0 then
        conn.partial_since <- Sysconf.monotonic_time ()
  in
  let chunk = Bytes.create 65536 in
  (* Does the newly read chunk contain a newline? Scanning only the chunk
     (never the accumulated buffer) keeps a hostile near-limit partial
     frame O(bytes received) instead of O(bytes^2). *)
  let chunk_has_nl n =
    let rec go i = i < n && (Bytes.get chunk i = '\n' || go (i + 1)) in
    go 0
  in
  let read_conn conn =
    match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
    | 0 -> drop conn
    | n ->
      Buffer.add_subbytes conn.rbuf chunk 0 n;
      if chunk_has_nl n then pump conn
        (* No newline arrived, so the buffer still holds one partial
           frame (pump always consumes through the last newline). A
           partial frame larger than any legal frame can never complete:
           shed it now rather than buffering an attacker's stream. *)
      else if Buffer.length conn.rbuf > max_frame_bytes then oversize conn
      else if conn.partial_since = 0.0 then
        conn.partial_since <- Sysconf.monotonic_time ()
    | exception
        Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      ()
    | exception Unix.Unix_error _ -> drop conn
  in
  let last_activity = ref (Sysconf.monotonic_time ()) in
  let reaped = ref false in
  (* select refused our fd set (EBADF from a descriptor closed under us,
     EINVAL past FD_SETSIZE): self-heal by dropping what is verifiably
     dead, and failing that shed the newest connection — degraded service
     beats an uncaught exception that skips every cleanup on the way out. *)
  let shed_broken () =
    let dead =
      Hashtbl.fold
        (fun _ conn acc ->
          match Unix.fstat conn.fd with
          | _ -> acc
          | exception Unix.Unix_error _ -> conn :: acc)
        conns []
    in
    match dead with
    | _ :: _ -> List.iter drop dead
    | [] ->
      Hashtbl.fold
        (fun _ (conn : conn) acc ->
          match acc with
          | Some (newest : conn) when newest.cid >= conn.cid -> acc
          | _ -> Some conn)
        conns None
      |> Option.iter (fun conn ->
             st.load.conns_reaped <- st.load.conns_reaped + 1;
             Obs.count_stable "serve.conns_reaped" 1;
             drop conn)
  in
  while not !draining do
    let rfds =
      listen_fd
      :: Hashtbl.fold
           (fun fd conn acc -> if conn.closing then acc else fd :: acc)
           conns []
    in
    let wfds =
      Hashtbl.fold
        (fun fd conn acc -> if pending conn > 0 then fd :: acc else acc)
        conns []
    in
    (* With admitted work waiting, only poll — dispatch must not starve
       behind the select timer. *)
    let select_timeout = if Admission.length queue > 0 then 0.0 else 0.5 in
    (match Unix.select rfds wfds [] select_timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> shed_broken ()
    | readable, writable, _ ->
      List.iter
        (fun fd ->
          if fd == listen_fd then begin
            let accepting = ref true in
            while !accepting do
              match Unix.accept listen_fd with
              | client, _ ->
                if Hashtbl.length conns >= max_conns then begin
                  (* At the connection cap (kept below FD_SETSIZE so select
                     keeps working): refuse with a structured, retryable
                     error rather than crash later or hang the client. *)
                  st.load.conns_rejected <- st.load.conns_rejected + 1;
                  Obs.count_stable "serve.conns_rejected" 1;
                  let line =
                    Jsonl.to_string
                      (track st (connection_limit_response ~max_conns))
                    ^ "\n"
                  in
                  (try Unix.set_nonblock client with Unix.Unix_error _ -> ());
                  (try
                     ignore
                       (Unix.write_substring client line 0 (String.length line))
                   with Unix.Unix_error _ -> ());
                  try Unix.close client with Unix.Unix_error _ -> ()
                end
                else begin
                  (* Client fds are nonblocking: reads that would block are
                     skipped and writes buffer in [wq], so no single client
                     can stall the loop. (The accepted fd does not inherit
                     the listening socket's nonblocking flag on Linux.) *)
                  (try Unix.set_nonblock client with Unix.Unix_error _ -> ());
                  incr next_cid;
                  let conn =
                    { fd = client; cid = !next_cid; rbuf = Buffer.create 256;
                      partial_since = 0.0; wq = Queue.create (); wpos = 0;
                      wbytes = 0; write_since = 0.0; closing = false }
                  in
                  Hashtbl.replace conns client conn;
                  Hashtbl.replace conns_by_cid conn.cid conn;
                  sync_conns ();
                  last_activity := Sysconf.monotonic_time ();
                  reaped := false
                end
              | exception Unix.Unix_error _ -> accepting := false
            done
          end
          else
            match Hashtbl.find_opt conns fd with
            | Some conn ->
              last_activity := Sysconf.monotonic_time ();
              reaped := false;
              read_conn conn
            | None -> ())
        readable;
      List.iter
        (fun fd ->
          match Hashtbl.find_opt conns fd with
          | Some conn -> flush_conn conn
          | None -> ())
        writable);
    let now = Sysconf.monotonic_time () in
    (* Queued requests whose deadline passed are answered, never run. *)
    List.iter
      (fun (cid, (w : work)) ->
        st.load.expired <- st.load.expired + 1;
        Obs.count_stable "serve.expired" 1;
        respond_cid cid (expired_response w.w_id))
      (Admission.expired queue ~now);
    (* Dispatch exactly one admitted request per iteration, so arrivals,
       expiries and reaps are re-examined between dispatches. *)
    (match Admission.next queue ~now with
    | Some (cid, w) ->
      sync_depth ();
      respond_cid cid (execute st w);
      last_activity := Sysconf.monotonic_time ();
      reaped := false
    | None -> sync_depth ());
    (* Reap slow-loris connections: a partial frame has [read_deadline]
       seconds to complete, counted from its first byte. *)
    let stalled =
      Hashtbl.fold
        (fun _ conn acc ->
          if
            (not conn.closing)
            && conn.partial_since > 0.0
            && now -. conn.partial_since > read_deadline
          then conn :: acc
          else acc)
        conns []
    in
    List.iter
      (fun conn ->
        st.load.conns_reaped <- st.load.conns_reaped + 1;
        Obs.count_stable "serve.conns_reaped" 1;
        respond conn (read_timeout_response ~read_deadline);
        if Hashtbl.mem conns conn.fd then close_after_flush conn)
      stalled;
    (* Reap write-stalled connections: pending output that has made no
       progress for [read_deadline] seconds will never be delivered — the
       peer has stopped reading. No farewell response; it could not be
       delivered either. *)
    let write_stalled =
      Hashtbl.fold
        (fun _ conn acc ->
          if conn.write_since > 0.0 && now -. conn.write_since > read_deadline
          then conn :: acc
          else acc)
        conns []
    in
    List.iter
      (fun conn ->
        st.load.conns_reaped <- st.load.conns_reaped + 1;
        Obs.count_stable "serve.conns_reaped" 1;
        drop conn)
      write_stalled;
    (* A dormant daemon holds no worker processes and no unflushed cache
       entries: both respawn / refill on the next request. *)
    if
      (not !reaped)
      && Hashtbl.length conns = 0
      && Sysconf.monotonic_time () -. !last_activity > idle_reap
    then begin
      Checker.quiesce_pool st.pool;
      Option.iter (fun c -> ignore (Cache.flush c)) st.cache;
      Obs.count "serve.idle_reaps" 1;
      reaped := true
    end
  done;
  (* Graceful drain: answer everything fully received — buffered lines are
     classified and admitted, then the whole queue is dispatched (expiries
     still honored) — then flush state and dismantle. The handler runs to
     completion even when the signal lands mid-verification (the
     supervisor retries its selects on EINTR). *)
  Hashtbl.iter (fun _ conn -> pump conn) (Hashtbl.copy conns);
  let drain_now = Sysconf.monotonic_time () in
  List.iter
    (fun (cid, (w : work)) ->
      st.load.expired <- st.load.expired + 1;
      Obs.count_stable "serve.expired" 1;
      respond_cid cid (expired_response w.w_id))
    (Admission.expired queue ~now:drain_now);
  let rec drain_queue () =
    match Admission.next queue ~now:(Sysconf.monotonic_time ()) with
    | Some (cid, w) ->
      sync_depth ();
      respond_cid cid (execute st w);
      drain_queue ()
    | None -> sync_depth ()
  in
  drain_queue ();
  (* Responses are buffered per connection: give slow readers a bounded
     window to take delivery before the daemon dismantles itself. *)
  let flush_deadline = Sysconf.monotonic_time () +. 5.0 in
  let rec final_flush () =
    let wfds =
      Hashtbl.fold
        (fun fd conn acc -> if pending conn > 0 then fd :: acc else acc)
        conns []
    in
    let left = flush_deadline -. Sysconf.monotonic_time () in
    if wfds <> [] && left > 0.0 then
      match Unix.select [] wfds [] left with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> final_flush ()
      | exception Unix.Unix_error _ -> ()
      | _, writable, _ ->
        List.iter
          (fun fd ->
            match Hashtbl.find_opt conns fd with
            | Some conn -> flush_conn conn
            | None -> ())
          writable;
        final_flush ()
  in
  final_flush ();
  Option.iter (fun c -> ignore (Cache.flush c)) st.cache;
  Option.iter
    (fun path ->
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (Obs.render_metrics_json ())))
    metrics_out;
  shutdown_state st;
  Hashtbl.iter (fun _ conn -> try Unix.close conn.fd with Unix.Unix_error _ -> ()) conns;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  0

(* --- client ----------------------------------------------------------------- *)

let client_call ~socket line =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        match Unix.connect fd (Unix.ADDR_UNIX socket) with
        | exception Unix.Unix_error (e, _, _) ->
          Error
            (Printf.sprintf "cannot connect to %s: %s" socket (Unix.error_message e))
        | () -> (
          let payload = Bytes.of_string (line ^ "\n") in
          match write_all fd payload 0 (Bytes.length payload) with
          | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
          | () ->
            let buf = Buffer.create 1024 in
            let chunk = Bytes.create 65536 in
            let rec go () =
              if String.contains (Buffer.contents buf) '\n' then ()
              else
                match Unix.read fd chunk 0 (Bytes.length chunk) with
                | 0 -> ()
                | n ->
                  Buffer.add_subbytes buf chunk 0 n;
                  go ()
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
            in
            (match go () with
            | () -> ()
            | exception Unix.Unix_error _ -> ());
            let s = Buffer.contents buf in
            (match String.index_opt s '\n' with
            | Some i -> Ok (String.sub s 0 i)
            | None ->
              if s = "" then Error "connection closed without a response" else Ok s)))

(* --- self-healing client ------------------------------------------------------

   The retry loop the CLI client uses: transparently retries the two
   failures that mean "try again" — a connection that cannot be established
   (the daemon is restarting, or its socket briefly missing) and a
   structured [overloaded] shed — under capped exponential backoff with
   jitter, honoring the daemon's [retry_after_ms] hint as a floor. Every
   other response (including [expired] and [frame_too_large]) is returned
   to the caller as-is: retrying those without new information would just
   reheat the overload.

   The two exhaustion flavors stay distinct so the CLI can exit
   differently: [`Unreachable] is a connectivity/protocol failure, while
   [`Overloaded] means the daemon is alive and explicitly shedding. *)

let default_retries = 5

let retryable_shed line =
  match Jsonl.parse line with
  | Ok resp when Jsonl.mem_str "error_code" resp = Some "overloaded" ->
    Some (Option.value (Jsonl.mem_int "retry_after_ms" resp) ~default:0)
  | _ -> None

let client_request ~socket ?(retries = default_retries) ?(backoff_base_ms = 50)
    ?(backoff_cap_ms = 2000) ?(sleep = Unix.sleepf) line =
  let rng = lazy (Random.State.make_self_init ()) in
  let backoff attempt hint_ms =
    let exp =
      float_of_int backoff_base_ms *. (2.0 ** float_of_int attempt)
      |> Float.min (float_of_int backoff_cap_ms)
    in
    let base = Float.max (float_of_int hint_ms) exp in
    let jitter = 0.75 +. Random.State.float (Lazy.force rng) 0.5 in
    sleep (base *. jitter /. 1000.0)
  in
  let rec attempt k =
    match client_call ~socket line with
    | Error msg ->
      if k >= retries then Error (`Unreachable (k + 1, msg))
      else begin
        backoff k 0;
        attempt (k + 1)
      end
    | Ok resp_line -> (
      match retryable_shed resp_line with
      | None -> Ok resp_line
      | Some hint_ms ->
        if k >= retries then Error (`Overloaded (k + 1, resp_line))
        else begin
          backoff k hint_ms;
          attempt (k + 1)
        end)
  in
  attempt 0
