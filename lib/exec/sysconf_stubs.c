/* Small OS-facing primitives the overload-safe daemon needs and the OCaml
   stdlib does not expose:

   - a monotonic clock, so idle-reap / read-deadline / queue-expiry timers
     survive wall-clock jumps (NTP step, manual date change);
   - setrlimit(RLIMIT_AS), so a worker whose check balloons fails its own
     allocation (Out_of_memory, classified as a resource limit) instead of
     inviting the OOM killer (an unclassifiable SIGKILL).

   Everything degrades gracefully where the OS lacks the facility: the
   monotonic clock falls back to the real-time clock, the rlimit call
   reports failure and the caller simply runs uncapped. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>

#include <time.h>
#include <sys/time.h>
#include <sys/resource.h>

CAMLprim value shelley_monotonic_time(value unit)
{
  CAMLparam1(unit);
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    CAMLreturn(caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9));
#endif
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    CAMLreturn(caml_copy_double((double)tv.tv_sec + (double)tv.tv_usec * 1e-6));
  }
}

CAMLprim value shelley_set_rlimit_as(value mb)
{
  CAMLparam1(mb);
#if defined(RLIMIT_AS)
  struct rlimit rl;
  rlim_t bytes = (rlim_t)Long_val(mb) * 1024 * 1024;
  rl.rlim_cur = bytes;
  rl.rlim_max = bytes;
  CAMLreturn(Val_bool(setrlimit(RLIMIT_AS, &rl) == 0));
#else
  CAMLreturn(Val_false);
#endif
}
