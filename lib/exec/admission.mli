(** Bounded admission queue with deadline expiry and fair scheduling — the
    policy half of the daemon's overload story, factored out of the socket
    loop so it is unit-testable pure bookkeeping.

    All time is an explicit [now] supplied by the caller (the daemon passes
    {!Sysconf.monotonic_time}); the module never reads a clock and performs
    no I/O. Operations are O(queue length), and the queue is bounded. *)

type 'a t

val create : max_queue:int -> 'a t
(** An empty queue admitting at most [max_queue] waiting requests. *)

val length : 'a t -> int
val max_queue : 'a t -> int

val min_priority : int
(** -10. Client-supplied priorities are clamped to
    [min_priority..max_priority] at submission: priority is a hint from an
    untrusted client, so an absurd value must not buy unbounded precedence. *)

val max_priority : int
(** 10. See {!min_priority}. *)

val clamp_priority : int -> int
(** Clamp into [min_priority..max_priority] — what {!submit} stores. *)

val aging_interval : float
(** Seconds per effective-priority level gained while queued (1.0). A
    queued request's effective priority is
    [clamped priority + floor(wait / aging_interval)], so after
    [max_priority - min_priority + 1] seconds (~21 s) any waiting request
    outranks a freshly submitted one at [max_priority]: a continuous
    high-priority flood delays low-priority work by a bounded interval,
    never starves it. *)

val retry_after_ms : 'a t -> int
(** The backoff hint a shed client receives: proportional to the backlog,
    clamped to [100..5000] ms. Deterministic — the {e client} adds jitter —
    so tests can assert on it. *)

type 'a verdict =
  | Admitted
  | Shed of int  (** queue full; payload is the [retry_after_ms] hint *)
  | Expired  (** the deadline was already in the past at submission *)

val submit :
  'a t ->
  client:int ->
  priority:int ->
  deadline:float option ->
  now:float ->
  'a ->
  'a verdict
(** Try to enqueue a request from [client]. [priority] is clamped (see
    {!min_priority}); [deadline] is absolute on the caller's clock; [None]
    waits indefinitely. The queue is never grown past [max_queue] — a full
    queue sheds immediately rather than buffering unboundedly. *)

val expired : 'a t -> now:float -> (int * 'a) list
(** Remove and return every queued request whose deadline has passed, in
    arrival order, as [(client, payload)] pairs — the daemon answers each
    with a structured [expired] error and never dispatches it. *)

val next : 'a t -> now:float -> (int * 'a) option
(** Dispatch the next request: among each client's head-of-line request,
    pick the highest effective priority — clamped priority plus the aging
    credit earned since submission (see {!aging_interval}); within a
    level, the client served longest ago (round-robin, never-served
    first); ties break by arrival. One client queueing a hundred requests
    therefore cannot starve a client queueing one, and no priority value
    can starve lower-priority clients indefinitely. *)

val drop_client : 'a t -> int -> int
(** Remove every queued request of a disconnected client (their responses
    have nowhere to go); returns how many were dropped. *)
