(** Fork-based worker pool with per-task wall-clock deadlines.

    [Runner] is the fault-isolation layer under [shelley check -j]: each
    task runs in its own forked child process, so a hang, a fatal signal,
    a stack-smashing native bug or an OOM kill in one task cannot take
    down the run — it surfaces as a structured {!outcome} while every
    other task completes. This is the same containment discipline
    verification stacks apply to external solvers (kill on deadline,
    classify the corpse), applied to our own checks.

    Guarantees:

    - {b Determinism}: outcomes are returned in input order, independent
      of completion order and of [jobs]. A pure [f] therefore yields
      byte-identical aggregate output for [jobs = 1] and [jobs = N].
    - {b Isolation}: a child that dies (signal, [exit], OOM) or exceeds
      the deadline is reaped and classified; no exception escapes {!map}.
    - {b Degradation}: with [retry], a timed-out or crashed task is
      re-run once — callers pass a reduced-budget variant of the task
      (see {!Limits.reduced}) so the second attempt fails fast and
      deterministically instead of re-burning the full deadline.

    Results cross the process boundary via [Marshal], so ['r] must be
    marshal-safe: no closures, no custom blocks. Strings, ints, and
    plain variants/records of those are fine. Interned {!Symbol.t}
    values must {e not} be sent back (the child's intern table may have
    grown past the parent's) — render them to strings in the child.

    When [jobs <= 1] and no deadline is set, {!map} runs tasks inline in
    the parent (no fork): the zero-cost path for the common
    [shelley check file.py] invocation. *)

type 'r outcome =
  | Done of 'r
  | Timed_out of {
      seconds : float;  (** the configured per-attempt deadline *)
      attempts : int;
    }
  | Crashed of {
      reason : string;  (** e.g. ["killed by SIGKILL"], ["exited with code 42"] *)
      attempts : int;
    }

val map :
  ?jobs:int ->
  ?deadline:float ->
  ?retry:('a -> 'r) ->
  f:('a -> 'r) ->
  'a list ->
  'r outcome list
(** [map ~jobs ~deadline ~retry ~f tasks] applies [f] to every task in a
    pool of at most [jobs] (default 1) concurrent worker processes,
    killing any worker that runs longer than [deadline] seconds
    (default: no deadline), and returns the outcomes in input order.

    An exception raised by [f] inside a worker is contained and
    classified as {!Crashed} with the exception text as [reason] (the
    pipeline's own exception barrier means this only fires for faults
    outside {!Pipeline.verify_source}).

    [retry] (default: none) is invoked — in a fresh worker, under the
    same deadline — for a task whose first attempt timed out or crashed;
    its failure is final, reported with [attempts = 2]. *)

val map_ex :
  ?jobs:int ->
  ?deadline:float ->
  ?retry:('a -> 'r) ->
  f:('a -> 'r) ->
  'a list ->
  ('r outcome * int) list
(** {!map} plus, per task, the pool {e lane} (slot index, [0 .. jobs-1])
    its settling attempt ran on. Lanes are claimed smallest-first at fork
    and released at reap, so with [jobs = N] at most [N] lanes appear and
    concurrently-running tasks never share one — exactly the property the
    trace sink needs to draw one timeline row per worker. On the inline
    path (no fork) every task reports lane [0].

    When the {!Obs} recorder is enabled the pool also tallies its own
    overhead counters on the parent recorder: [runner.spawns],
    [runner.fork_us], [runner.queue_wait_us], [runner.task_wall_us],
    [runner.kills], [runner.retries]. These use the real clock even under
    the fake-clock regime (pool timing is inherently nondeterministic),
    which is why they feed only the metrics sink, never the stats table. *)

val signal_name : int -> string
(** Human-readable name for an OCaml [Sys] signal number (["SIGKILL"],
    ["SIGSEGV"], …); ["signal <n>"] for unknown ones. Exposed for
    tests. *)
