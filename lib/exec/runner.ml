type 'r outcome =
  | Done of 'r
  | Timed_out of {
      seconds : float;
      attempts : int;
    }
  | Crashed of {
      reason : string;
      attempts : int;
    }

let signal_name n =
  if n = Sys.sigkill then "SIGKILL"
  else if n = Sys.sigsegv then "SIGSEGV"
  else if n = Sys.sigabrt then "SIGABRT"
  else if n = Sys.sigbus then "SIGBUS"
  else if n = Sys.sigill then "SIGILL"
  else if n = Sys.sigfpe then "SIGFPE"
  else if n = Sys.sigterm then "SIGTERM"
  else if n = Sys.sigint then "SIGINT"
  else if n = Sys.sigpipe then "SIGPIPE"
  else if n = Sys.sigalrm then "SIGALRM"
  else if n = Sys.sighup then "SIGHUP"
  else if n = Sys.sigquit then "SIGQUIT"
  else Printf.sprintf "signal %d" n

(* One live worker process. [buf] accumulates the child's marshaled result;
   the message is complete only at EOF on [fd] (the pipe's sole writer is the
   child, which closes it — by exiting — once the payload is flushed). *)
type worker = {
  idx : int;
  pid : int;
  fd : Unix.file_descr;
  buf : Buffer.t;
  deadline_at : float option;  (* absolute, Unix.gettimeofday clock *)
  attempt : int;
  lane : int;  (* pool slot, 0 .. jobs-1; stable for a worker's lifetime *)
  spawned_at : float;  (* stamp () at fork, 0.0 when obs is off *)
}

(* Pool timing only exists for the observability layer: when the recorder is
   off, [stamp] costs one branch and the counters are never touched. *)
let stamp () = if Obs.enabled () then Unix.gettimeofday () else 0.0
let us since = int_of_float ((Unix.gettimeofday () -. since) *. 1e6)
let tally key since = if Obs.enabled () then Obs.count key (us since)

(* The child writes its payload with raw [Unix.write] and leaves with
   [Unix._exit]: no [at_exit] handlers, no flushing of stdio buffers
   inherited (pre-filled!) from the parent — a forked child that touched the
   parent's Format/stdout machinery would duplicate pending output. *)
let child_main ~task ~wr f =
  (* Become a session/group leader so a deadline kill can take out any
     subprocess the task spawned along with the worker itself. *)
  (try ignore (Unix.setsid ()) with Unix.Unix_error _ -> ());
  let result =
    match f task with
    | r -> (Ok r : (_, string) result)
    | exception exn -> Error (Printexc.to_string exn)
  in
  let bytes =
    match Marshal.to_bytes result [] with
    | b -> b
    | exception exn ->
      Marshal.to_bytes
        ((Error ("unmarshalable worker result: " ^ Printexc.to_string exn))
          : (_, string) result)
        []
  in
  let len = Bytes.length bytes in
  let rec write_all pos =
    if pos < len then
      match Unix.write wr bytes pos (len - pos) with
      | k -> write_all (pos + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all pos
  in
  (try write_all 0 with _ -> ());
  (try Unix.close wr with _ -> ());
  Unix._exit 0

let rec waitpid_no_eintr pid =
  match Unix.waitpid [] pid with
  | _, status -> status
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_no_eintr pid

(* Decode a reaped worker's exit status + accumulated payload. *)
let classify ~attempt status buf : _ outcome =
  match status with
  | Unix.WEXITED 0 -> (
    let data = Buffer.to_bytes buf in
    match (Marshal.from_bytes data 0 : (_, string) result) with
    | Ok r -> Done r
    | Error reason -> Crashed { reason; attempts = attempt }
    | exception _ ->
      Crashed { reason = "worker returned a truncated result"; attempts = attempt })
  | Unix.WEXITED code ->
    Crashed { reason = Printf.sprintf "exited with code %d" code; attempts = attempt }
  | Unix.WSIGNALED n | Unix.WSTOPPED n ->
    Crashed { reason = "killed by " ^ signal_name n; attempts = attempt }

let run_inline ?retry ~f tasks =
  let attempt_with g x ~attempts =
    match g x with
    | r -> Done r
    | exception exn -> Crashed { reason = Printexc.to_string exn; attempts }
  in
  List.map
    (fun x ->
      let t0 = stamp () in
      let outcome =
        match attempt_with f x ~attempts:1 with
        | Done _ as done_ -> done_
        | Timed_out _ | Crashed _ as failed -> (
          match retry with
          | None -> failed
          | Some g ->
            if Obs.enabled () then Obs.count "runner.retries" 1;
            attempt_with g x ~attempts:2)
      in
      tally "runner.task_wall_us" t0;
      (outcome, 0))
    tasks

let map_ex ?(jobs = 1) ?deadline ?retry ~f tasks =
  let n = List.length tasks in
  if n = 0 then []
  else if jobs <= 1 && deadline = None then run_inline ?retry ~f tasks
  else begin
    let tasks = Array.of_list tasks in
    let results = Array.make n None in
    let pending = Queue.create () in
    Array.iteri (fun i _ -> Queue.add (i, 1, stamp ()) pending) tasks;
    let workers = ref [] in
    (* Pool slots ("lanes"): a worker claims the smallest free slot at fork
       and releases it when reaped. Lane identity is what lets the trace sink
       draw one timeline row per concurrent worker instead of one per task. *)
    let free_lanes = ref (List.init (max 1 jobs) Fun.id) in
    let claim_lane () =
      match !free_lanes with
      | lane :: rest ->
        free_lanes := rest;
        lane
      | [] -> 0 (* unreachable: spawns are gated on pool occupancy *)
    in
    let release_lane lane =
      free_lanes := List.sort compare (lane :: !free_lanes)
    in
    (* A *failed* first attempt goes back on the queue when a retry function
       is available; a success is final immediately — re-running it would
       waste a worker and let the retry's (reduced-budget) result overwrite
       the good one. A failed second attempt is final too. *)
    let settle idx attempt lane outcome =
      match outcome with
      | Done _ -> results.(idx) <- Some (outcome, lane)
      | Timed_out _ | Crashed _ ->
        if attempt = 1 && retry <> None then begin
          if Obs.enabled () then Obs.count "runner.retries" 1;
          Queue.add (idx, 2, stamp ()) pending
        end
        else results.(idx) <- Some (outcome, lane)
    in
    let spawn idx attempt enqueued_at =
      (* Flush before forking: anything buffered would otherwise be written
         twice if the child ever touches the same channels. *)
      flush stdout;
      flush stderr;
      let g = if attempt = 1 then f else Option.get retry in
      let fork_start = stamp () in
      match Unix.pipe () with
      | exception exn ->
        settle idx attempt 0
          (Crashed { reason = Printexc.to_string exn; attempts = attempt })
      | rd, wr -> (
        match Unix.fork () with
        | exception exn ->
          Unix.close rd;
          Unix.close wr;
          settle idx attempt 0
            (Crashed { reason = Printexc.to_string exn; attempts = attempt })
        | 0 ->
          Unix.close rd;
          child_main ~task:tasks.(idx) ~wr g
        | pid ->
          Unix.close wr;
          let lane = claim_lane () in
          if Obs.enabled () then begin
            Obs.count "runner.spawns" 1;
            tally "runner.fork_us" fork_start;
            tally "runner.queue_wait_us" enqueued_at
          end;
          let deadline_at = Option.map (fun s -> Unix.gettimeofday () +. s) deadline in
          workers :=
            {
              idx;
              pid;
              fd = rd;
              buf = Buffer.create 1024;
              deadline_at;
              attempt;
              lane;
              spawned_at = fork_start;
            }
            :: !workers)
    in
    let drop w =
      workers := List.filter (fun w' -> w'.pid <> w.pid) !workers;
      release_lane w.lane
    in
    (* EOF on the pipe: the child is done writing (or dead) — reap it. *)
    let finish w =
      drop w;
      (try Unix.close w.fd with _ -> ());
      let status = waitpid_no_eintr w.pid in
      tally "runner.task_wall_us" w.spawned_at;
      settle w.idx w.attempt w.lane (classify ~attempt:w.attempt status w.buf)
    in
    let kill_expired w =
      drop w;
      (try Unix.close w.fd with _ -> ());
      (try Unix.kill (-w.pid) Sys.sigkill with Unix.Unix_error _ -> ());
      (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (waitpid_no_eintr w.pid);
      if Obs.enabled () then Obs.count "runner.kills" 1;
      tally "runner.task_wall_us" w.spawned_at;
      settle w.idx w.attempt w.lane
        (Timed_out { seconds = Option.get deadline; attempts = w.attempt })
    in
    let chunk = Bytes.create 65536 in
    while !workers <> [] || not (Queue.is_empty pending) do
      while List.length !workers < max 1 jobs && not (Queue.is_empty pending) do
        let idx, attempt, enqueued_at = Queue.pop pending in
        spawn idx attempt enqueued_at
      done;
      if !workers <> [] then begin
        let now = Unix.gettimeofday () in
        let select_timeout =
          List.fold_left
            (fun acc w ->
              match w.deadline_at with
              | None -> acc
              | Some d ->
                let left = max 0.0 (d -. now) in
                if acc < 0.0 then left else Float.min acc left)
            (-1.0) !workers
        in
        let readable, _, _ =
          try Unix.select (List.map (fun w -> w.fd) !workers) [] [] select_timeout
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        List.iter
          (fun fd ->
            match List.find_opt (fun w -> w.fd = fd) !workers with
            | None -> ()
            | Some w -> (
              match Unix.read fd chunk 0 (Bytes.length chunk) with
              | 0 -> finish w
              | k -> Buffer.add_subbytes w.buf chunk 0 k
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
              | exception Unix.Unix_error _ -> finish w))
          readable;
        let now = Unix.gettimeofday () in
        List.iter
          (fun w ->
            match w.deadline_at with
            | Some d when now >= d -> kill_expired w
            | _ -> ())
          !workers
      end
    done;
    Array.to_list results
    |> List.map (function
         | Some outcome_lane -> outcome_lane
         | None ->
           (* Unreachable: every queued (idx, attempt) either settles or
              re-queues exactly once, and the loop drains both sets. *)
           (Crashed { reason = "worker was never scheduled"; attempts = 0 }, 0))
  end

let map ?jobs ?deadline ?retry ~f tasks =
  List.map fst (map_ex ?jobs ?deadline ?retry ~f tasks)
