(* Bounded admission queue with fair scheduling, for the serve daemon.

   The queue answers three questions the strict-FIFO daemon could not:

   - admission: may this request wait at all? A full queue sheds the
     request immediately with a [retry_after_ms] hint scaled to the
     backlog, so an overloaded daemon degrades into fast structured
     refusals instead of unbounded latency;
   - expiry: a request whose deadline passes while it is still queued is
     answered [expired], never dispatched — work nobody is waiting for
     anymore is never performed;
   - order: dispatch is per-client round-robin within a priority level
     (highest effective priority first), so one client queueing a hundred
     requests cannot starve a client queueing one.

   Priority is client-supplied, so it is clamped to a small documented
   band ([min_priority]..[max_priority]) and queued requests *age*: a
   request gains one effective priority level per second waited, so even
   a continuous flood at [max_priority] can only delay lower-priority
   work by a bounded interval, never starve it.

   Pure bookkeeping over an explicit [now] (callers pass a monotonic
   clock), no I/O — unit-testable without a socket in sight. Operations
   are O(queue length); the queue is bounded, so that is a constant. *)

let min_priority = -10
let max_priority = 10
let clamp_priority p = max min_priority (min max_priority p)

(* One effective priority level gained per second queued: after
   [max_priority - min_priority + 1] seconds (~21 s) a waiting request
   outranks any freshly submitted one, whatever its priority. *)
let aging_interval = 1.0

type 'a item = {
  seq : int;  (* arrival order, globally increasing *)
  client : int;
  priority : int;  (* already clamped *)
  enqueued : float;  (* submission instant, caller's clock *)
  deadline : float option;  (* absolute, caller's clock; None = patient *)
  payload : 'a;
}

type 'a t = {
  max_queue : int;
  mutable items : 'a item list;  (* arrival order (oldest first) *)
  mutable seq : int;
  mutable serve_stamp : int;
  last_served : (int, int) Hashtbl.t;  (* client -> stamp of last dispatch *)
}

let create ~max_queue =
  {
    max_queue = max 0 max_queue;
    items = [];
    seq = 0;
    serve_stamp = 0;
    last_served = Hashtbl.create 8;
  }

let length t = List.length t.items
let max_queue t = t.max_queue

(* The hint a shed client gets: proportional to the backlog it would have
   waited behind, clamped to a sane band. Deliberately deterministic — the
   *client* adds jitter, so the hint can be asserted in tests. *)
let retry_after_ms t = min 5000 (100 * max 1 (length t))

type 'a verdict =
  | Admitted
  | Shed of int  (* retry_after_ms *)
  | Expired  (* deadline already in the past at submission *)

let submit t ~client ~priority ~deadline ~now payload =
  match deadline with
  | Some d when d <= now -> Expired
  | _ ->
    if length t >= t.max_queue then Shed (retry_after_ms t)
    else begin
      let item =
        {
          seq = t.seq;
          client;
          priority = clamp_priority priority;
          enqueued = now;
          deadline;
          payload;
        }
      in
      t.seq <- t.seq + 1;
      t.items <- t.items @ [ item ];
      Admitted
    end

(* Requests whose deadline has passed, in arrival order; removed. *)
let expired t ~now =
  let dead, live =
    List.partition
      (fun item ->
        match item.deadline with
        | Some d -> d <= now
        | None -> false)
      t.items
  in
  t.items <- live;
  List.map (fun item -> (item.client, item.payload)) dead

(* Head-of-line per client, then: max effective (aged) priority; among
   those, the client served longest ago (never-served wins); among those,
   arrival order. *)
let next t ~now =
  match t.items with
  | [] -> None
  | items ->
    let heads =
      List.fold_left
        (fun acc item ->
          if List.exists (fun h -> h.client = item.client) acc then acc
          else item :: acc)
        [] items
      |> List.rev
    in
    let stamp_of item =
      Option.value (Hashtbl.find_opt t.last_served item.client) ~default:0
    in
    let effective item =
      item.priority + max 0 (int_of_float ((now -. item.enqueued) /. aging_interval))
    in
    let best =
      List.fold_left
        (fun (best : _ item) item ->
          let better =
            effective item > effective best
            || (effective item = effective best
               && (stamp_of item < stamp_of best
                  || (stamp_of item = stamp_of best && item.seq < best.seq)))
          in
          if better then item else best)
        (List.hd heads) (List.tl heads)
    in
    t.serve_stamp <- t.serve_stamp + 1;
    Hashtbl.replace t.last_served best.client t.serve_stamp;
    let chosen = best.seq in
    t.items <- List.filter (fun (item : _ item) -> item.seq <> chosen) t.items;
    Some (best.client, best.payload)

(* A disconnected client's queued requests have nowhere to be answered:
   free their slots. Returns how many were dropped. *)
let drop_client t client =
  let mine, rest = List.partition (fun item -> item.client = client) t.items in
  t.items <- rest;
  Hashtbl.remove t.last_served client;
  List.length mine
