type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- printing --------------------------------------------------------------- *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec print_into buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.0f" f)
    else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | Str s -> escape_into buf s
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        print_into buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_into buf k;
        Buffer.add_char buf ':';
        print_into buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  print_into buf v;
  Buffer.contents buf

(* --- parsing ---------------------------------------------------------------- *)

exception Bad of string

type cursor = {
  src : string;
  mutable pos : int;
}

let fail c msg = raise (Bad (Printf.sprintf "%s at offset %d" msg c.pos))
let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    &&
    match c.src.[c.pos] with
    | ' ' | '\t' | '\n' | '\r' -> true
    | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some k when k = ch -> c.pos <- c.pos + 1
  | _ -> fail c (Printf.sprintf "expected '%c'" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

(* UTF-8 encode one BMP code point (surrogate pairs are combined by the
   caller before reaching here). *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end

let hex4 c =
  if c.pos + 4 > String.length c.src then fail c "truncated \\u escape";
  let v =
    try int_of_string ("0x" ^ String.sub c.src c.pos 4)
    with Failure _ -> fail c "bad \\u escape"
  in
  c.pos <- c.pos + 4;
  v

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' -> (
      c.pos <- c.pos + 1;
      (match peek c with
      | Some '"' -> Buffer.add_char buf '"'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '/' -> Buffer.add_char buf '/'
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'b' -> Buffer.add_char buf '\b'
      | Some 'f' -> Buffer.add_char buf '\012'
      | Some 'u' ->
        c.pos <- c.pos + 1;
        let cp = hex4 c in
        let cp =
          (* High surrogate: try to combine with an immediately following
             \uDC00-\uDFFF low surrogate. *)
          if cp >= 0xd800 && cp <= 0xdbff
             && c.pos + 6 <= String.length c.src
             && c.src.[c.pos] = '\\'
             && c.src.[c.pos + 1] = 'u'
          then begin
            let save = c.pos in
            c.pos <- c.pos + 2;
            let lo = hex4 c in
            if lo >= 0xdc00 && lo <= 0xdfff then
              0x10000 + (((cp - 0xd800) lsl 10) lor (lo - 0xdc00))
            else begin
              c.pos <- save;
              0xfffd
            end
          end
          else if cp >= 0xd800 && cp <= 0xdfff then 0xfffd
          else cp
        in
        add_utf8 buf cp;
        c.pos <- c.pos - 1 (* counteract the shared post-increment below *)
      | _ -> fail c "bad escape");
      c.pos <- c.pos + 1;
      go ())
    | Some ch ->
      Buffer.add_char buf ch;
      c.pos <- c.pos + 1;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let numeric ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    c.pos < String.length c.src && numeric c.src.[c.pos]
  do
    c.pos <- c.pos + 1
  done;
  match float_of_string_opt (String.sub c.src start (c.pos - start)) with
  | Some f -> f
  | None -> fail c "bad number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some '{' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some '}' then begin
      c.pos <- c.pos + 1;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          fields ((k, v) :: acc)
        | Some '}' ->
          c.pos <- c.pos + 1;
          List.rev ((k, v) :: acc)
        | _ -> fail c "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some '[' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some ']' then begin
      c.pos <- c.pos + 1;
      Arr []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          items (v :: acc)
        | Some ']' ->
          c.pos <- c.pos + 1;
          List.rev (v :: acc)
        | _ -> fail c "expected ',' or ']'"
      in
      Arr (items [])
    end
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number c)
  | Some ch -> fail c (Printf.sprintf "unexpected '%c'" ch)

let parse s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos = String.length s then Ok v
    else Error (Printf.sprintf "trailing input at offset %d" c.pos)
  | exception Bad msg -> Error msg

(* --- accessors -------------------------------------------------------------- *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_str = function
  | Str s -> Some s
  | _ -> None

let to_num = function
  | Num f -> Some f
  | _ -> None

let to_bool = function
  | Bool b -> Some b
  | _ -> None

let to_list = function
  | Arr items -> Some items
  | _ -> None

let mem_str k v = Option.bind (member k v) to_str
let mem_num k v = Option.bind (member k v) to_num

(* JSON has one number type; every protocol field that is semantically an
   int goes through this single truncation point. *)
let mem_int k v = Option.map int_of_float (mem_num k v)

let mem_bool ?(default = false) k v =
  match Option.bind (member k v) to_bool with
  | Some b -> b
  | None -> default

let mem_str_list k v =
  match Option.bind (member k v) to_list with
  | None -> None
  | Some items ->
    let strs = List.filter_map to_str items in
    if List.length strs = List.length items then Some strs else None
