(** Minimal JSON for the [shelley serve] wire protocol.

    The daemon speaks newline-delimited JSON-RPC over a Unix socket; this
    module is the self-contained value type, printer and parser it uses (the
    project deliberately carries no JSON dependency). The printer emits one
    line — no raw newlines ever appear inside an encoded value, so a frame
    boundary is always a ['\n'] — and [parse] accepts anything the printer
    emits plus ordinary interchange JSON (whitespace, nested containers,
    [\uXXXX] escapes for the Basic Multilingual Plane). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** One-line encoding. Integral floats print without a decimal point
    ([Num 3.] → ["3"]); strings escape ["\""], ["\\"] and every control
    character, so the result contains no newline. *)

val parse : string -> (t, string) result
(** Parse one JSON document (surrounding whitespace allowed; trailing
    non-whitespace is an error). Never raises. *)

(** {1 Accessors} — each returns [None] on a type mismatch. *)

val member : string -> t -> t option
(** [member k (Obj ...)] is the first binding of [k]; [None] otherwise. *)

val to_str : t -> string option
val to_num : t -> float option
val to_bool : t -> bool option
val to_list : t -> t list option

val mem_str : string -> t -> string option
val mem_num : string -> t -> float option

val mem_int : string -> t -> int option
(** [mem_num] truncated to [int] — the single conversion point for protocol
    fields that are semantically integers ([priority], [retry_after_ms],
    budget knobs). *)

val mem_bool : ?default:bool -> string -> t -> bool
(** Missing member or type mismatch yields [default] (default [false]). *)

val mem_str_list : string -> t -> string list option
(** [Some strings] when the member is an array of strings; [None] when
    absent or otherwise shaped. *)
