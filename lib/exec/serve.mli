(** The [shelley serve] daemon: a crash-tolerant, long-running verification
    service over a Unix-domain socket.

    Protocol: newline-delimited JSON-RPC. Each request is one line,
    [{"id": ..., "method": M, "params": {...}}]; each response one line,
    [{"id": ..., "result": {...}}] or [{"id": ..., "error": MSG, "code": N}].
    Methods:

    - [check] — params [files] (required), [warnings] / [explain] / [lint]
      (bools), [using] (array of model files), [timeout] (seconds),
      [max_states] / [fuel] (ints). The result's [output] is byte-identical
      to what one-shot [shelley check] prints on stdout for the same
      arguments (including the trailing ["OK: specification verified"] line
      on success) and [code] is the one-shot exit code.
    - [lint] — params [files] (required), [format] ([text]/[json]/[sarif]),
      [timeout], [max_states] / [fuel], [max_behavior_size] /
      [max_star_height]. Same one-shot-equivalence contract against
      [shelley lint].
    - [status] — daemon pid, request counters, pool lifecycle stats and
      live worker pids.
    - [shutdown] — acknowledge, then drain and exit.

    All requests multiplex over one persistent {!Supervisor} pool (via
    {!Checker.check_files}'s [?pool]), so concurrent clients queue FIFO and
    workers stay hot across requests. Per-request deadlines ride on the
    pool's per-call deadline override. Cache stores are deferred
    ({!Cache.defer_writes}) and flushed on idle, drain and shutdown.

    Failure semantics: a malformed line gets an [error] response and the
    connection stays up; a worker crash mid-request yields the standard
    [Worker_crashed] block for that unit only; SIGTERM/SIGINT request a
    graceful drain — in-flight and fully-received requests finish, caches
    flush, the metrics sink is written, workers are reaped, the socket is
    unlinked, and {!serve} returns 0 with no orphan processes. *)

type state
(** One daemon's mutable context: the worker pool, the optional deferred
    cache, request counters. *)

val make_state :
  ?after_fork:(unit -> unit) ->
  ?cache:Cache.t ->
  ?default_timeout:float ->
  jobs:int ->
  unit ->
  state
(** Build daemon state with a fresh [jobs]-wide pool. [cache] is switched to
    deferred writes. [default_timeout] applies to requests that carry no
    [timeout] param. [after_fork] is installed into the pool (the socket
    loop uses it to close its listening and client descriptors inside
    workers). Exposed separately from {!serve} so unit tests can drive
    {!handle_line} without a socket. *)

val handle_line : state -> string -> string * [ `Continue | `Shutdown ]
(** Process one request line (without its newline), producing one response
    line (without its newline) and whether the daemon should drain. Never
    raises: parse and dispatch failures become [error] responses. *)

val shutdown_state : state -> unit
(** Flush the deferred cache and shut the pool down. Idempotent. *)

val state_pool : state -> Checker.pool
(** The daemon's pool — tests assert on its stats and worker pids. *)

val serve :
  socket:string ->
  ?jobs:int ->
  ?cache:Cache.t ->
  ?default_timeout:float ->
  ?idle_reap:float ->
  ?metrics_out:string ->
  unit ->
  int
(** Run the daemon on [socket] until [shutdown] or SIGTERM/SIGINT; returns
    the process exit code (0 on a graceful drain). A stale socket path is
    replaced. [idle_reap] (default 30 s) retires pool workers and flushes
    the cache after that much request silence; the next request respawns
    them. [metrics_out] writes the {!Obs} metrics JSON at drain time. *)

val client_call : socket:string -> string -> (string, string) result
(** Connect, send one request line, read one response line. [Error] carries
    a connection-level message (the server being down, a closed socket); an
    in-band [error] response is returned as [Ok] — the caller distinguishes
    transport failures from request failures. *)
