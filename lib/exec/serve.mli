(** The [shelley serve] daemon: a crash-tolerant, overload-safe,
    long-running verification service over a Unix-domain socket.

    Protocol: newline-delimited JSON-RPC. Each request is one line,
    [{"id": ..., "method": M, "params": {...}}]; each response one line,
    [{"id": ..., "result": {...}}] or
    [{"id": ..., "error": MSG, "code": N, "error_code": EC?,
    "retry_after_ms": MS?}]. Methods:

    - [check] — params [files] (required), [warnings] / [explain] / [lint]
      (bools), [using] (array of model files), [timeout] (seconds),
      [max_states] / [fuel] (ints). The result's [output] is byte-identical
      to what one-shot [shelley check] prints on stdout for the same
      arguments (including the trailing ["OK: specification verified"] line
      on success) and [code] is the one-shot exit code.
    - [lint] — params [files] (required), [format] ([text]/[json]/[sarif]),
      [timeout], [max_states] / [fuel], [max_behavior_size] /
      [max_star_height]. Same one-shot-equivalence contract against
      [shelley lint].
    - [status] — daemon pid, request counters, the [load] overload counters
      (queue depth/cap, shed, expired, frames_oversized, conns_reaped),
      pool lifecycle stats and live worker pids.
    - [shutdown] — acknowledge, then drain and exit.

    [check] and [lint] may additionally carry [priority] (int, higher is
    dispatched sooner; default 0; clamped to
    [Admission.min_priority..Admission.max_priority] since it is
    client-supplied, and aged while queued so no priority can starve the
    rest) and [deadline_ms] (max milliseconds the request will wait in the
    admission queue before being answered [expired]).

    {2 Overload behavior}

    Work requests pass a bounded {!Admission} queue. A full queue sheds the
    request immediately with [error_code = "overloaded"], [code = 4] and a
    [retry_after_ms] hint; a queued request whose deadline passes is
    answered [error_code = "expired"], [code = 3], and never dispatched.
    Dispatch is per-client round-robin within a priority level, so one
    flooding connection cannot starve the rest. [status] and [shutdown]
    bypass the queue and are answered at read time, so the daemon stays
    observable however deep the backlog is.

    Hostile connections are bounded too: the connection count is capped
    ([max_conns], kept below select's FD_SETSIZE) — a connection beyond
    the cap is answered with a retryable [overloaded] error and closed at
    accept time; a frame larger than the configured maximum gets
    [error_code = "frame_too_large"] and the connection is closed; a
    connection that starts a frame and does not finish it within the read
    deadline is reaped ([error_code = "read_timeout"]). Client fds are
    nonblocking with per-connection write buffers drained via select, so
    a client that stops {e reading} cannot stall the loop either: its
    buffered output is bounded, and a connection whose pending output
    makes no progress for the read deadline is reaped without ceremony.
    Worker memory is capped via setrlimit(RLIMIT_AS), so a ballooning
    check is a classified resource-limit verdict, not a daemon (or host)
    casualty. Stable counters [serve.shed] / [serve.expired] /
    [serve.frames_oversized] / [serve.conns_reaped] /
    [serve.conns_rejected] record every degradation in [--stats] and the
    metrics JSON.

    Failure semantics: a malformed line gets an [error] response and the
    connection stays up; a worker crash mid-request yields the standard
    [Worker_crashed] block for that unit only; SIGTERM/SIGINT request a
    graceful drain — in-flight and fully-received requests finish (queued
    deadlines still honored), caches flush, the metrics sink is written,
    workers are reaped, the socket is unlinked, and {!serve} returns 0
    with no orphan processes. *)

type state
(** One daemon's mutable context: the worker pool, the optional deferred
    cache, request and overload counters. *)

val make_state :
  ?after_fork:(unit -> unit) ->
  ?cache:Cache.t ->
  ?default_timeout:float ->
  ?max_queue:int ->
  ?max_conns:int ->
  ?max_worker_mem:int ->
  jobs:int ->
  unit ->
  state
(** Build daemon state with a fresh [jobs]-wide pool. [cache] is switched to
    deferred writes. [default_timeout] applies to requests that carry no
    [timeout] param. [after_fork] is installed into the pool (the socket
    loop uses it to close its listening and client descriptors inside
    workers). [max_queue] (default 64) sizes the admission queue reported
    by [status]; [max_conns] (default 512) is the connection cap reported
    by [status]; [max_worker_mem] (MiB, default 0 = uncapped) is the
    per-worker RLIMIT_AS cap. Exposed separately from {!serve} so unit
    tests can drive {!handle_line} without a socket. *)

val handle_line : state -> string -> string * [ `Continue | `Shutdown ]
(** Process one request line (without its newline), producing one response
    line (without its newline) and whether the daemon should drain. Work
    requests are executed immediately — admission control is the socket
    loop's concern — so this is a pure request->response function. Never
    raises: parse and dispatch failures become [error] responses. *)

val shutdown_state : state -> unit
(** Flush the deferred cache and shut the pool down. Idempotent. *)

val state_pool : state -> Checker.pool
(** The daemon's pool — tests assert on its stats and worker pids. *)

val serve :
  socket:string ->
  ?jobs:int ->
  ?cache:Cache.t ->
  ?default_timeout:float ->
  ?idle_reap:float ->
  ?metrics_out:string ->
  ?max_queue:int ->
  ?max_conns:int ->
  ?max_frame_bytes:int ->
  ?read_deadline:float ->
  ?queue_deadline:float ->
  ?max_worker_mem:int ->
  unit ->
  int
(** Run the daemon on [socket] until [shutdown] or SIGTERM/SIGINT; returns
    the process exit code (0 on a graceful drain). A pre-existing socket
    path is probed with a nonblocking, bounded connect before anything
    else: ECONNREFUSED/ENOENT means the previous daemon is dead and the
    path is reclaimed; an accepted (or backlogged) connect means a live
    daemon owns it and this process refuses to steal the socket (exits 2,
    naming the owner's pid when a [status] call yields one within a
    bounded wait); any other probe failure proves nothing, so the daemon
    also refuses to start rather than clobber a possibly-live socket.

    [idle_reap] (default 30 s, measured on the monotonic clock) retires
    pool workers and flushes the cache after that much request silence;
    the next request respawns them. [metrics_out] writes the {!Obs}
    metrics JSON at drain time. [max_queue] (default 64) bounds the
    admission queue; [max_conns] (default 512, clamped below select's
    FD_SETSIZE) bounds concurrent connections — beyond it, accepts are
    answered with a retryable [overloaded] error and closed;
    [max_frame_bytes] (default 8 MiB) bounds one request line;
    [read_deadline] (default 30 s) bounds how long a started frame may
    stay unfinished and how long pending response bytes may go
    undelivered; [queue_deadline] (seconds, default none) is a
    server-wide cap on queue wait, combined with each request's own
    [deadline_ms] by taking the tighter of the two; [max_worker_mem]
    (MiB, default 0 = uncapped) caps each worker's address space. *)

val client_call : socket:string -> string -> (string, string) result
(** Connect, send one request line, read one response line. [Error] carries
    a connection-level message (the server being down, a closed socket); an
    in-band [error] response is returned as [Ok] — the caller distinguishes
    transport failures from request failures. *)

val default_retries : int
(** Default retry budget of {!client_request} (5). *)

val client_request :
  socket:string ->
  ?retries:int ->
  ?backoff_base_ms:int ->
  ?backoff_cap_ms:int ->
  ?sleep:(float -> unit) ->
  string ->
  (string, [ `Overloaded of int * string | `Unreachable of int * string ]) result
(** {!client_call} under a self-healing retry loop: connection failures and
    structured [overloaded] sheds are retried up to [retries] more times
    under capped exponential backoff ([backoff_base_ms] · 2{^attempt},
    capped at [backoff_cap_ms]) with ±25% jitter, honoring the daemon's
    [retry_after_ms] hint as a floor. Every other response — including
    [expired] and [frame_too_large] — is returned as [Ok] verbatim:
    retrying those without new information would only reheat the overload.

    [Error (`Overloaded (attempts, last_response))] means the daemon was
    alive and still shedding after the whole budget (the CLI exits 4);
    [Error (`Unreachable (attempts, message))] means no connection ever
    produced a response (the CLI exits 2). [sleep] is a test seam. *)
