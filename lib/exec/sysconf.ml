(* OS primitives behind the overload story (see sysconf_stubs.c). *)

external monotonic_time : unit -> float = "shelley_monotonic_time"
(** A clock that only moves forward, immune to wall-clock jumps. The origin
    is arbitrary (boot time on Linux): only differences are meaningful. *)

external set_rlimit_as : int -> bool = "shelley_set_rlimit_as"
(** [set_rlimit_as mb] caps this process's address space at [mb] MiB (hard
    and soft). Returns [false] where the OS refused or lacks RLIMIT_AS —
    callers must treat the cap as best-effort. *)
