type 'r outcome =
  | Done of 'r
  | Timed_out of {
      seconds : float;
      attempts : int;
    }
  | Crashed of {
      reason : string;
      attempts : int;
    }

let signal_name = Runner.signal_name

type config = {
  jobs : int;
  batch_size : int;
  deadline : float option;
  max_tasks_per_worker : int;
  max_rss_kb : int;
  max_as_mb : int;  (* setrlimit(RLIMIT_AS) in each worker; 0 = uncapped *)
  max_restarts : int;
  backoff_base : float;
  backoff_cap : float;
  heartbeat_interval : float;
  grace : float;
}

let config ?(jobs = 1) ?(batch_size = 8) ?deadline ?(max_tasks_per_worker = 128)
    ?(max_rss_kb = 512 * 1024) ?(max_as_mb = 0) ?(max_restarts = 3)
    ?(backoff_base = 0.05) ?(backoff_cap = 1.0) ?(heartbeat_interval = 2.0)
    ?(grace = 0.5) () =
  {
    jobs = max 1 jobs;
    batch_size = max 1 batch_size;
    deadline;
    max_tasks_per_worker;
    max_rss_kb;
    max_as_mb = max 0 max_as_mb;
    max_restarts;
    backoff_base;
    backoff_cap;
    heartbeat_interval;
    grace;
  }

(* --- Fault-injection seam ---------------------------------------------------

   Same master switch and SHELLEY_FAULT syntax as the checker-level faults
   (hang/crash): armed only by an explicit in-process opt-in, so a stale
   environment variable can never sabotage a real run. The supervisor adds
   the process-plumbing faults: [garbage:SUBSTR] (corrupt result frame),
   [wedge:SUBSTR] (worker stops reading, ignoring heartbeats), [forkfail:N]
   (the next N forks fail). *)
let fault_injection = ref false

let contains ~sub s =
  sub <> ""
  && String.length s >= String.length sub
  && List.exists
       (fun off -> String.sub s off (String.length sub) = sub)
       (List.init (String.length s - String.length sub + 1) Fun.id)

let fault_entries () =
  if not !fault_injection then []
  else
    match Sys.getenv_opt "SHELLEY_FAULT" with
    | None | Some "" -> []
    | Some spec ->
      String.split_on_char ',' spec
      |> List.filter_map (fun entry ->
             match String.index_opt entry ':' with
             | None -> None
             | Some i ->
               Some
                 ( String.sub entry 0 i,
                   String.sub entry (i + 1) (String.length entry - i - 1) ))

let fault_matches kind label =
  List.exists
    (fun (k, sub) -> String.equal k kind && contains ~sub label)
    (fault_entries ())

let fault_forkfail_budget () =
  List.fold_left
    (fun acc (k, v) ->
      if String.equal k "forkfail" then
        match int_of_string_opt v with
        | Some n when n > 0 -> acc + n
        | _ -> acc
      else acc)
    0 (fault_entries ())

(* --- Wire protocol ----------------------------------------------------------

   Frame = 3-byte magic + 4-byte big-endian payload length + Marshal
   payload. The magic and a length sanity cap let the parent classify a
   corrupt pipe byte-stream as such instead of feeding garbage to
   [Marshal.from_string] at an attacker-chosen length. *)

let frame_magic = "SF1"
let frame_header_len = 7
let max_frame_len = 1 lsl 26 (* 64 MB: far above any rendered report block *)

type 't to_worker =
  | Job of (int * 't) list
  | Ping of int
  | Quit

type 'r from_worker =
  | Started of int
  | Result of int * ('r, string) result
  | Pong of int

let rec write_all fd bytes pos len =
  if pos < len then
    match Unix.write fd bytes pos (len - pos) with
    | k -> write_all fd bytes (pos + k) len
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd bytes pos len

let frame_bytes payload =
  let len = Bytes.length payload in
  let b = Bytes.create (frame_header_len + len) in
  Bytes.blit_string frame_magic 0 b 0 3;
  Bytes.set b 3 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set b 4 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set b 5 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set b 6 (Char.chr (len land 0xff));
  Bytes.blit payload 0 b frame_header_len len;
  b

let send_frame fd v =
  let b = frame_bytes (Marshal.to_bytes v []) in
  write_all fd b 0 (Bytes.length b)

(* Parse every complete frame out of [buf]; [`Garbage] the moment the
   stream stops looking like frames. The decoded values are returned along
   with the number of consumed bytes so the caller can keep the tail. *)
let parse_frames (buf : Buffer.t) : [ `Frames of 'a list * int | `Garbage ] =
  let s = Buffer.contents buf in
  let total = String.length s in
  let rec go acc off =
    if total - off < frame_header_len then `Frames (List.rev acc, off)
    else if String.sub s off 3 <> frame_magic then `Garbage
    else begin
      let len =
        (Char.code s.[off + 3] lsl 24)
        lor (Char.code s.[off + 4] lsl 16)
        lor (Char.code s.[off + 5] lsl 8)
        lor Char.code s.[off + 6]
      in
      if len < 0 || len > max_frame_len then `Garbage
      else if total - off - frame_header_len < len then `Frames (List.rev acc, off)
      else
        match (Marshal.from_string s (off + frame_header_len) : 'a) with
        | v -> go (v :: acc) (off + frame_header_len + len)
        | exception _ -> `Garbage
    end
  in
  go [] 0

(* --- The worker process -----------------------------------------------------

   A worker is a blocking read-dispatch loop: read a frame from the job
   pipe, acknowledge each task with [Started] (the parent's wedge detector
   and per-task deadline clock both key off it), run it, send [Result].
   EOF on the job pipe — however the parent died — is a clean exit, so a
   crashed daemon leaves no orphan workers behind. *)

let rec read_exact fd b pos len =
  if len = 0 then true
  else
    match Unix.read fd b pos len with
    | 0 -> false
    | k -> read_exact fd b (pos + k) (len - k)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_exact fd b pos len

let read_frame fd : 'a option =
  let header = Bytes.create frame_header_len in
  if not (read_exact fd header 0 frame_header_len) then None
  else if Bytes.sub_string header 0 3 <> frame_magic then None
  else begin
    let len =
      (Char.code (Bytes.get header 3) lsl 24)
      lor (Char.code (Bytes.get header 4) lsl 16)
      lor (Char.code (Bytes.get header 5) lsl 8)
      lor Char.code (Bytes.get header 6)
    in
    if len < 0 || len > max_frame_len then None
    else begin
      let payload = Bytes.create len in
      if not (read_exact fd payload 0 len) then None
      else
        match (Marshal.from_bytes payload 0 : 'a) with
        | v -> Some v
        | exception _ -> None
    end
  end

let send_result res_wr idx (res : ('r, string) result) =
  match Marshal.to_bytes (Result (idx, res) : 'r from_worker) [] with
  | payload ->
    let b = frame_bytes payload in
    write_all res_wr b 0 (Bytes.length b)
  | exception exn ->
    let reason = "unmarshalable worker result: " ^ Printexc.to_string exn in
    send_frame res_wr (Result (idx, (Error reason : ('r, string) result)))

let worker_main ~job_rd ~res_wr run label =
  (* Session leader: a deadline kill of the process group takes out any
     subprocess the task spawned along with the worker itself. *)
  (try ignore (Unix.setsid ()) with Unix.Unix_error _ -> ());
  (* Lifecycle is pipe-driven (Quit / EOF): the parent's signals must not
     race a half-written result frame into the parent's parser. *)
  (try Sys.set_signal Sys.sigterm Sys.Signal_ignore with _ -> ());
  (try Sys.set_signal Sys.sigint Sys.Signal_ignore with _ -> ());
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  let armed = !fault_injection in
  let rec loop () =
    match (read_frame job_rd : _ to_worker option) with
    | None | Some Quit -> Unix._exit 0
    | Some (Ping n) ->
      send_frame res_wr (Pong n : _ from_worker);
      loop ()
    | Some (Job tasks) ->
      let wedge = ref false in
      List.iter
        (fun (idx, task) ->
          send_frame res_wr (Started idx : _ from_worker);
          if armed && fault_matches "garbage" (label task) then
            write_all res_wr (Bytes.of_string "!!corrupt-frame!!") 0 17
          else begin
            let result =
              match run task with
              | r -> (Ok r : (_, string) result)
              | exception exn -> Error (Printexc.to_string exn)
            in
            send_result res_wr idx result
          end;
          if armed && fault_matches "wedge" (label task) then wedge := true)
        tasks;
      if !wedge then
        (* Simulate a worker that stops servicing its job pipe: alive, but
           deaf to dispatches and heartbeats alike. *)
        while true do
          Unix.sleepf 3600.0
        done;
      loop ()
  in
  try loop () with _ -> Unix._exit 1

(* --- The supervisor ---------------------------------------------------------

   Parent-side state: one slot per lane; a slot may hold a live worker
   process or be empty (backing off after a crash, or not yet demanded).
   All scheduling state is per-[map_ex] call; slots and their workers
   persist across calls — that is the whole point. *)

type 't item = {
  idx : int;
  attempt : int;
  task : 't;
  enqueued_at : float;
}

type 't proc = {
  pid : int;
  job_wr : Unix.file_descr;
  res_rd : Unix.file_descr;
  rbuf : Buffer.t;
  assigned : 't item Queue.t;
  mutable dispatched_at : float;  (* last Job frame send time *)
  mutable head_started_at : float;  (* 0.0 until Started for the head arrives *)
  mutable tasks_done : int;
  mutable ping_at : float;  (* 0.0 = no ping outstanding *)
  mutable last_heard : float;
}

type 't slot = {
  lane : int;
  mutable proc : 't proc option;
  mutable ready_at : float;  (* backoff gate; 0.0 = ready now *)
  mutable consec_failures : int;
}

type stats = {
  spawns : int;
  restarts : int;
  recycles : int;
  backoff_waits : int;
  heartbeat_misses : int;
  kills : int;
  poisoned : int;
  fork_failures : int;
  batches : int;
  tasks : int;
  inline_tasks : int;
  live_workers : int;
}

type stats_mut = {
  mutable m_spawns : int;
  mutable m_restarts : int;
  mutable m_recycles : int;
  mutable m_backoff_waits : int;
  mutable m_heartbeat_misses : int;
  mutable m_kills : int;
  mutable m_poisoned : int;
  mutable m_fork_failures : int;
  mutable m_batches : int;
  mutable m_tasks : int;
  mutable m_inline_tasks : int;
}

type ('t, 'r) t = {
  cfg : config;
  run : 't -> 'r;
  label : 't -> string;
  after_fork : unit -> unit;
  slots : 't slot array;
  st : stats_mut;
  mutable ping_seq : int;
  mutable forkfail_budget : int;  (* armed fault: fail this many forks *)
  mutable closed : bool;
}

let stamp () = if Obs.enabled () then Unix.gettimeofday () else 0.0
let us since = int_of_float ((Unix.gettimeofday () -. since) *. 1e6)
let tally key since = if Obs.enabled () then Obs.count key (us since)
let bump key n = if Obs.enabled () then Obs.count key n

(* Jitter from a private RNG: the pool must not perturb any caller that
   seeds the global [Random] state for reproducibility. *)
let rng = lazy (Random.State.make_self_init ())

let create ?(after_fork = fun () -> ()) ?(label = fun _ -> "") cfg run =
  (* The parent writes into worker pipes; a worker that died between the
     liveness check and the write must surface as a catchable EPIPE, not a
     process-killing SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  {
    cfg;
    run;
    label;
    after_fork;
    slots =
      Array.init cfg.jobs (fun lane ->
          { lane; proc = None; ready_at = 0.0; consec_failures = 0 });
    st =
      {
        m_spawns = 0;
        m_restarts = 0;
        m_recycles = 0;
        m_backoff_waits = 0;
        m_heartbeat_misses = 0;
        m_kills = 0;
        m_poisoned = 0;
        m_fork_failures = 0;
        m_batches = 0;
        m_tasks = 0;
        m_inline_tasks = 0;
      };
    ping_seq = 0;
    forkfail_budget = (if !fault_injection then fault_forkfail_budget () else 0);
    closed = false;
  }

let live_workers pool =
  Array.fold_left
    (fun acc slot -> if slot.proc = None then acc else acc + 1)
    0 pool.slots

let stats pool =
  {
    spawns = pool.st.m_spawns;
    restarts = pool.st.m_restarts;
    recycles = pool.st.m_recycles;
    backoff_waits = pool.st.m_backoff_waits;
    heartbeat_misses = pool.st.m_heartbeat_misses;
    kills = pool.st.m_kills;
    poisoned = pool.st.m_poisoned;
    fork_failures = pool.st.m_fork_failures;
    batches = pool.st.m_batches;
    tasks = pool.st.m_tasks;
    inline_tasks = pool.st.m_inline_tasks;
    live_workers = live_workers pool;
  }

let worker_pids pool =
  Array.to_list pool.slots
  |> List.filter_map (fun slot -> Option.map (fun p -> p.pid) slot.proc)

let rec waitpid_no_eintr pid =
  match Unix.waitpid [] pid with
  | _, status -> status
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_no_eintr pid

(* Resident set size in KB, from /proc (field 2 of statm is resident
   pages). 0 — never triggering the recycle ceiling — where /proc is not
   a thing or the process is already gone. *)
let rss_kb pid =
  match open_in (Printf.sprintf "/proc/%d/statm" pid) with
  | exception Sys_error _ -> 0
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match String.split_on_char ' ' (input_line ic) with
        | _ :: resident :: _ -> (
          match int_of_string_opt resident with
          | Some pages -> pages * 4096 / 1024
          | None -> 0)
        | _ | (exception End_of_file) -> 0)

exception Fork_failed of string

let spawn pool slot =
  if pool.forkfail_budget > 0 then begin
    pool.forkfail_budget <- pool.forkfail_budget - 1;
    raise (Fork_failed "injected fork failure")
  end;
  (* Flush before forking: anything buffered would be written twice if the
     child ever touched the same channels. *)
  flush stdout;
  flush stderr;
  let fork_start = stamp () in
  let job_rd, job_wr =
    try Unix.pipe () with exn -> raise (Fork_failed (Printexc.to_string exn))
  in
  let res_rd, res_wr =
    try Unix.pipe ()
    with exn ->
      Unix.close job_rd;
      Unix.close job_wr;
      raise (Fork_failed (Printexc.to_string exn))
  in
  match Unix.fork () with
  | exception exn ->
    List.iter (fun fd -> try Unix.close fd with _ -> ()) [ job_rd; job_wr; res_rd; res_wr ];
    raise (Fork_failed (Printexc.to_string exn))
  | 0 ->
    (try Unix.close job_wr with _ -> ());
    (try Unix.close res_rd with _ -> ());
    (* Close every sibling's pipe ends: a worker holding a dup of another
       worker's job pipe would keep that pipe open past the parent's
       close, breaking the EOF-means-quit contract. *)
    Array.iter
      (fun s ->
        match s.proc with
        | None -> ()
        | Some p ->
          (try Unix.close p.job_wr with _ -> ());
          (try Unix.close p.res_rd with _ -> ()))
      pool.slots;
    (* The address-space cap goes on before any task code runs: a
       ballooning verification then dies on a catchable Out_of_memory
       inside the worker (classified by the task runner) instead of
       dragging the whole machine through the OOM killer. *)
    if pool.cfg.max_as_mb > 0 then ignore (Sysconf.set_rlimit_as pool.cfg.max_as_mb);
    (try pool.after_fork () with _ -> ());
    worker_main ~job_rd ~res_wr pool.run pool.label
  | pid ->
    (try Unix.close job_rd with _ -> ());
    (try Unix.close res_wr with _ -> ());
    pool.st.m_spawns <- pool.st.m_spawns + 1;
    bump "pool.spawns" 1;
    tally "pool.fork_us" fork_start;
    let now = Unix.gettimeofday () in
    slot.proc <-
      Some
        {
          pid;
          job_wr;
          res_rd;
          rbuf = Buffer.create 1024;
          assigned = Queue.create ();
          dispatched_at = now;
          head_started_at = 0.0;
          tasks_done = 0;
          ping_at = 0.0;
          last_heard = now;
        }

(* Tear a worker down: close pipes (EOF doubles as Quit), give it [grace]
   to exit, then SIGKILL its whole group and reap. Never blocks forever —
   a wedged worker hits the SIGKILL arm. *)
let terminate pool slot (p : 't proc) =
  (try send_frame p.job_wr (Quit : _ to_worker) with _ -> ());
  (try Unix.close p.job_wr with _ -> ());
  (try Unix.close p.res_rd with _ -> ());
  let deadline = Unix.gettimeofday () +. pool.cfg.grace in
  let rec reap () =
    match Unix.waitpid [ Unix.WNOHANG ] p.pid with
    | 0, _ ->
      if Unix.gettimeofday () >= deadline then begin
        (try Unix.kill (-p.pid) Sys.sigkill with Unix.Unix_error _ -> ());
        (try Unix.kill p.pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (waitpid_no_eintr p.pid)
      end
      else begin
        Unix.sleepf 0.005;
        reap ()
      end
    | _, _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap ()
    | exception Unix.Unix_error _ -> ()
  in
  reap ();
  slot.proc <- None

let quiesce pool =
  Array.iter
    (fun slot ->
      match slot.proc with
      | None -> ()
      | Some p ->
        terminate pool slot p;
        slot.ready_at <- 0.0;
        slot.consec_failures <- 0)
    pool.slots

let shutdown pool =
  quiesce pool;
  pool.closed <- true

let backoff pool slot =
  slot.consec_failures <- slot.consec_failures + 1;
  let n = slot.consec_failures in
  let base = pool.cfg.backoff_base *. (2.0 ** float_of_int (n - 1)) in
  let capped = Float.min pool.cfg.backoff_cap base in
  let jitter = 1.0 +. (0.25 *. Random.State.float (Lazy.force rng) 1.0) in
  slot.ready_at <- Unix.gettimeofday () +. (capped *. jitter);
  pool.st.m_backoff_waits <- pool.st.m_backoff_waits + 1;
  bump "pool.backoff_waits" 1;
  bump "pool.backoff_us" (int_of_float (capped *. jitter *. 1e6))

(* --- map_ex ----------------------------------------------------------------- *)

type 'r settled = {
  outcome : 'r outcome;
  lane : int;
  attempts : int;
}

let run ?retry ?deadline pool tasks =
  let deadline =
    match deadline with
    | Some _ as d -> d
    | None -> pool.cfg.deadline
  in
  let n = List.length tasks in
  if n = 0 then []
  else begin
    let arr = Array.of_list tasks in
    let results = Array.make n None in
    let unsettled = ref n in
    let pending : _ item Queue.t = Queue.create () in
    Array.iteri
      (fun idx task -> Queue.add { idx; attempt = 1; task; enqueued_at = stamp () } pending)
      arr;
    (* A failed first attempt re-queues once (transformed) when a retry is
       available; a failed second attempt — or any failure without a retry
       — is final: the task is poisoned, never retried forever. *)
    let settle (item : _ item) lane outcome =
      match outcome with
      | Done _ ->
        results.(item.idx) <- Some { outcome; lane; attempts = item.attempt };
        decr unsettled
      | Timed_out _ | Crashed _ ->
        if item.attempt = 1 && retry <> None then begin
          bump "pool.retries" 1;
          Queue.add
            {
              idx = item.idx;
              attempt = 2;
              task = (Option.get retry) item.task;
              enqueued_at = stamp ();
            }
            pending
        end
        else begin
          if item.attempt >= 2 then begin
            pool.st.m_poisoned <- pool.st.m_poisoned + 1;
            bump "pool.poisoned" 1
          end;
          results.(item.idx) <- Some { outcome; lane; attempts = item.attempt };
          decr unsettled
        end
    in
    (* In-process fallback: same attempt/retry semantics, no deadline (the
       whole point of running inline is that there is no worker to kill).
       Used when the pool is closed or forking has been written off. *)
    let run_one_inline (item : _ item) =
      pool.st.m_inline_tasks <- pool.st.m_inline_tasks + 1;
      bump "pool.inline_tasks" 1;
      let t0 = stamp () in
      let outcome =
        match pool.run item.task with
        | r -> Done r
        | exception exn ->
          Crashed { reason = Printexc.to_string exn; attempts = item.attempt }
      in
      tally "pool.task_wall_us" t0;
      settle item 0 outcome
    in
    let drain_inline () =
      (* Index order, for the avoidance of any doubt: inline execution must
         produce the same (input-ordered) result list as any pool width. *)
      let items = List.of_seq (Queue.to_seq pending) in
      Queue.clear pending;
      List.sort (fun a b -> compare (a.idx, a.attempt) (b.idx, b.attempt)) items
      |> List.iter (fun item -> if results.(item.idx) = None then run_one_inline item)
    in
    let requeue_assigned (p : _ proc) =
      Queue.iter (fun item -> Queue.add item pending) p.assigned;
      Queue.clear p.assigned
    in
    (* Worker died (EOF / read error on its result pipe): reap, classify
       from the exit status with the same reasons Runner reports, charge
       the started head, re-queue the rest. *)
    let handle_death slot (p : _ proc) =
      (try Unix.close p.job_wr with _ -> ());
      (try Unix.close p.res_rd with _ -> ());
      let status = waitpid_no_eintr p.pid in
      slot.proc <- None;
      let reason =
        match status with
        | Unix.WEXITED 0 -> "worker exited before returning a result"
        | Unix.WEXITED code -> Printf.sprintf "exited with code %d" code
        | Unix.WSIGNALED s | Unix.WSTOPPED s -> "killed by " ^ signal_name s
      in
      (match Queue.take_opt p.assigned with
      | Some head when p.head_started_at > 0.0 ->
        tally "pool.task_wall_us" p.head_started_at;
        settle head slot.lane (Crashed { reason; attempts = head.attempt })
      | Some head -> Queue.add head pending (* never started: not its fault *)
      | None -> ());
      requeue_assigned p;
      backoff pool slot;
      bump "pool.restarts" 1;
      pool.st.m_restarts <- pool.st.m_restarts + 1
    in
    (* Deliberate kill of a live-but-condemned worker (deadline expiry,
       wedge, garbage frame): process-group SIGKILL so task-spawned
       subprocesses die too, then charge/re-queue as appropriate. *)
    let kill_worker slot (p : _ proc) ~charge =
      (try Unix.close p.job_wr with _ -> ());
      (try Unix.close p.res_rd with _ -> ());
      (try Unix.kill (-p.pid) Sys.sigkill with Unix.Unix_error _ -> ());
      (try Unix.kill p.pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (waitpid_no_eintr p.pid);
      slot.proc <- None;
      (match Queue.take_opt p.assigned with
      | Some head -> (
        match charge with
        | `Timeout ->
          pool.st.m_kills <- pool.st.m_kills + 1;
          bump "pool.kills" 1;
          tally "pool.task_wall_us" p.head_started_at;
          settle head slot.lane
            (Timed_out { seconds = Option.get deadline; attempts = head.attempt })
        | `Crash reason ->
          if p.head_started_at > 0.0 then begin
            tally "pool.task_wall_us" p.head_started_at;
            settle head slot.lane (Crashed { reason; attempts = head.attempt })
          end
          else Queue.add head pending
        | `No_charge -> Queue.add head pending)
      | None -> ());
      requeue_assigned p
    in
    (* One decoded frame from a live worker. *)
    let handle_frame slot (p : _ proc) (frame : _ from_worker) =
      p.last_heard <- Unix.gettimeofday ();
      match frame with
      | Pong _ -> p.ping_at <- 0.0
      | Started idx ->
        (match Queue.peek_opt p.assigned with
        | Some head when head.idx = idx ->
          p.head_started_at <- Unix.gettimeofday ();
          tally "pool.queue_wait_us" head.enqueued_at
        | _ -> () (* stale ack from a previous incarnation: ignore *))
      | Result (idx, res) -> (
        match Queue.peek_opt p.assigned with
        | Some head when head.idx = idx ->
          ignore (Queue.take p.assigned);
          tally "pool.task_wall_us" p.head_started_at;
          p.head_started_at <- 0.0;
          p.tasks_done <- p.tasks_done + 1;
          pool.st.m_tasks <- pool.st.m_tasks + 1;
          bump "pool.tasks" 1;
          slot.consec_failures <- 0;
          (match res with
          | Ok r -> settle head slot.lane (Done r)
          | Error reason ->
            settle head slot.lane (Crashed { reason; attempts = head.attempt }))
        | _ ->
          (* A result for a task this worker does not own: protocol
             corruption — condemn the worker, charge nothing blindly. *)
          kill_worker slot p ~charge:(`Crash "out-of-order frame on result pipe");
          backoff pool slot;
          pool.st.m_restarts <- pool.st.m_restarts + 1;
          bump "pool.restarts" 1)
    in
    let read_chunk = Bytes.create 65536 in
    let handle_readable slot (p : _ proc) =
      match Unix.read p.res_rd read_chunk 0 (Bytes.length read_chunk) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ -> handle_death slot p
      | 0 -> handle_death slot p
      | k -> (
        Buffer.add_subbytes p.rbuf read_chunk 0 k;
        match parse_frames p.rbuf with
        | `Garbage ->
          kill_worker slot p ~charge:(`Crash "garbage frame on result pipe");
          backoff pool slot;
          pool.st.m_restarts <- pool.st.m_restarts + 1;
          bump "pool.restarts" 1
        | `Frames (frames, consumed) ->
          let rest = Buffer.sub p.rbuf consumed (Buffer.length p.rbuf - consumed) in
          Buffer.clear p.rbuf;
          Buffer.add_string p.rbuf rest;
          List.iter
            (fun frame ->
              (* The worker may have been condemned by an earlier frame in
                 this very batch of frames. *)
              match slot.proc with
              | Some q when q == p -> handle_frame slot p frame
              | _ -> ())
            frames)
    in
    (* Write a Job frame; a write failure means the worker just died — let
       the death path classify it (nothing was started, so nothing can be
       charged to a task). *)
    let dispatch slot (p : _ proc) items =
      List.iter (fun item -> Queue.add item p.assigned) items;
      p.dispatched_at <- Unix.gettimeofday ();
      p.head_started_at <- 0.0;
      pool.st.m_batches <- pool.st.m_batches + 1;
      bump "pool.batches" 1;
      bump "pool.batch_tasks" (List.length items);
      match send_frame p.job_wr (Job (List.map (fun i -> (i.idx, i.task)) items)) with
      | () -> ()
      | exception _ -> handle_death slot p
    in
    (* Spread small runs across lanes (chunk ≤ ⌈pending / width⌉) while
       batching large ones (chunk ≤ batch_size): two files at -j 4 land on
       lanes 0 and 1, a thousand files go out 8 at a time. *)
    let chunk_size () =
      let p = Queue.length pending in
      max 1 (min pool.cfg.batch_size ((p + pool.cfg.jobs - 1) / pool.cfg.jobs))
    in
    let take_chunk () =
      let rec go k acc =
        if k = 0 then List.rev acc
        else
          match Queue.take_opt pending with
          | None -> List.rev acc
          | Some item -> go (k - 1) (item :: acc)
      in
      go (chunk_size ()) []
    in
    let degraded () =
      live_workers pool = 0
      && Array.for_all
           (fun slot -> slot.consec_failures > pool.cfg.max_restarts)
           pool.slots
    in
    let now () = Unix.gettimeofday () in
    if pool.closed then drain_inline ()
    else begin
      while !unsettled > 0 do
        (* 1. Spawn / respawn where there is demand and the backoff gate is
           open. A spawn failure is a counted fork failure; persistent
           failure everywhere degrades the whole run to inline. *)
        Array.iter
          (fun slot ->
            if
              slot.proc = None
              && (not (Queue.is_empty pending))
              && slot.consec_failures <= pool.cfg.max_restarts
              && now () >= slot.ready_at
            then
              try spawn pool slot
              with Fork_failed reason ->
                ignore reason;
                pool.st.m_fork_failures <- pool.st.m_fork_failures + 1;
                bump "pool.fork_failures" 1;
                backoff pool slot)
          pool.slots;
        if degraded () && not (Queue.is_empty pending) then drain_inline ()
        else begin
          (* 2. Dispatch to idle workers, lane order (determinism of the
             trace lanes, not of the output — output order is pinned by
             idx). *)
          Array.iter
            (fun slot ->
              match slot.proc with
              | Some p when Queue.is_empty p.assigned && not (Queue.is_empty pending)
                ->
                dispatch slot p (take_chunk ())
              | _ -> ())
            pool.slots;
          (* 3. Wait for frames, deadlines, backoff gates or heartbeats —
             whichever is nearest. *)
          let timeout =
            let t = ref 0.25 in
            let consider v = t := Float.min !t (Float.max 0.0 v) in
            let n0 = now () in
            Array.iter
              (fun slot ->
                match slot.proc with
                | None -> if slot.ready_at > n0 then consider (slot.ready_at -. n0)
                | Some p ->
                  if Queue.is_empty p.assigned then begin
                    if p.ping_at > 0.0 then
                      consider (p.ping_at +. pool.cfg.heartbeat_interval -. n0)
                  end
                  else if p.head_started_at > 0.0 then
                    Option.iter
                      (fun d -> consider (p.head_started_at +. d -. n0))
                      deadline
                  else
                    consider (p.dispatched_at +. pool.cfg.heartbeat_interval -. n0))
              pool.slots;
            !t
          in
          let fds =
            Array.to_list pool.slots
            |> List.filter_map (fun slot -> Option.map (fun p -> p.res_rd) slot.proc)
          in
          let readable, _, _ =
            if fds = [] then begin
              Unix.sleepf (Float.min timeout 0.25);
              ([], [], [])
            end
            else
              try Unix.select fds [] [] timeout
              with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
          in
          List.iter
            (fun fd ->
              Array.iter
                (fun slot ->
                  match slot.proc with
                  | Some p when p.res_rd = fd -> handle_readable slot p
                  | _ -> ())
                pool.slots)
            readable;
          (* 4. Enforce deadlines and wedge detection. *)
          let n1 = now () in
          Array.iter
            (fun slot ->
              match slot.proc with
              | None -> ()
              | Some p ->
                if not (Queue.is_empty p.assigned) then begin
                  if p.head_started_at > 0.0 then (
                    match deadline with
                    | Some d when n1 -. p.head_started_at > d ->
                      kill_worker slot p ~charge:`Timeout
                    | _ -> ())
                  else if n1 -. p.dispatched_at > pool.cfg.heartbeat_interval then begin
                    (* Accepted a batch but never acknowledged starting it:
                       wedged. Nothing ran, so nothing is charged. *)
                    pool.st.m_heartbeat_misses <- pool.st.m_heartbeat_misses + 1;
                    bump "pool.heartbeat_misses" 1;
                    kill_worker slot p ~charge:`No_charge;
                    backoff pool slot;
                    pool.st.m_restarts <- pool.st.m_restarts + 1;
                    bump "pool.restarts" 1
                  end
                end
                else if p.ping_at > 0.0 then begin
                  if n1 -. p.ping_at > pool.cfg.heartbeat_interval then begin
                    pool.st.m_heartbeat_misses <- pool.st.m_heartbeat_misses + 1;
                    bump "pool.heartbeat_misses" 1;
                    kill_worker slot p ~charge:`No_charge;
                    backoff pool slot;
                    pool.st.m_restarts <- pool.st.m_restarts + 1;
                    bump "pool.restarts" 1
                  end
                end
                else if n1 -. p.last_heard > pool.cfg.heartbeat_interval then begin
                  pool.ping_seq <- pool.ping_seq + 1;
                  match send_frame p.job_wr (Ping pool.ping_seq : _ to_worker) with
                  | () -> p.ping_at <- n1
                  | exception _ -> handle_death slot p
                end)
            pool.slots;
          (* 5. Recycle idle workers that hit their task or RSS ceiling —
             leak containment for pools that live for days. *)
          Array.iter
            (fun slot ->
              match slot.proc with
              | Some p
                when Queue.is_empty p.assigned
                     && ((pool.cfg.max_tasks_per_worker > 0
                         && p.tasks_done >= pool.cfg.max_tasks_per_worker)
                        || (pool.cfg.max_rss_kb > 0 && rss_kb p.pid > pool.cfg.max_rss_kb)
                        ) ->
                terminate pool slot p;
                slot.ready_at <- 0.0;
                pool.st.m_recycles <- pool.st.m_recycles + 1;
                bump "pool.recycles" 1
              | _ -> ())
            pool.slots
        end
      done
    end;
    Array.to_list results
    |> List.map (function
         | Some settled -> settled
         | None ->
           (* Unreachable: every queued item either settles or re-queues
              exactly once, and the loop only exits at zero unsettled. *)
           {
             outcome = Crashed { reason = "task was never scheduled"; attempts = 0 };
             lane = 0;
             attempts = 0;
           })
  end

let map_ex ?retry ?deadline pool tasks =
  List.map (fun s -> (s.outcome, s.lane)) (run ?retry ?deadline pool tasks)

let map ?retry ?deadline pool tasks =
  List.map (fun s -> s.outcome) (run ?retry ?deadline pool tasks)
