(* Content-addressed blob store behind `shelley check --cache`.

   On-disk layout: DIR/<k0k1>/<key>.entry, with a 2-hex-char fan-out so a
   million entries do not share one directory. Entry bytes:

     line 1   "shelley-cache <format_version>\n"     (magic + layout version)
     line 2   <32 hex chars: MD5 of the payload>\n   (checksum)
     rest     the marshalled payload

   The checksum is verified before the payload reaches Marshal, so the
   unmarshaller only ever sees bit-exact bytes that a previous store wrote —
   truncation and bit rot classify as corruption, never as a crash or a
   wrong value. *)

type t = {
  root : string;
  (* [Some pending]: deferred-write mode — stores buffer here (newest first)
     until [flush]. [None]: classic write-through. *)
  mutable deferred : (string * string) list option;
}

let tool_version = "1.0.0"
let format_version = 1
let magic = Printf.sprintf "shelley-cache %d" format_version
let magic_prefix = "shelley-cache "

let dir t = t.root

let is_dir path =
  match Unix.stat path with
  | { Unix.st_kind = Unix.S_DIR; _ } -> true
  | _ -> false
  | exception Unix.Unix_error _ -> false

let mkdir_if_missing path =
  match Unix.mkdir path 0o755 with
  | () -> true
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> is_dir path
  | exception Unix.Unix_error _ -> false

let open_dir root =
  let ok =
    is_dir root
    ||
    (* Create the directory, accepting one missing parent (mkdir -p depth 2:
       enough for the conventional <repo>/.shelley-cache and tmp paths the
       tests use, without reimplementing a full recursive mkdir). *)
    mkdir_if_missing root
    || (mkdir_if_missing (Filename.dirname root) && mkdir_if_missing root)
  in
  if ok then Ok { root; deferred = None }
  else Error (Printf.sprintf "cannot open cache directory %s" root)

(* Length-prefixed concatenation: part boundaries survive, so ["ab"; "c"]
   and ["a"; "bc"] compose different keys. *)
let key parts =
  let canonical =
    String.concat ""
      (List.map (fun p -> Printf.sprintf "%d:%s" (String.length p) p) parts)
  in
  Digest.to_hex (Digest.string canonical)

let entry_path t key =
  let fanout =
    if String.length key >= 2 then String.sub key 0 2 else "xx"
  in
  Filename.concat (Filename.concat t.root fanout) (key ^ ".entry")

(* --- classification (shared by find / stats / gc) -------------------------- *)

type classified =
  | Live of string  (* payload bytes, checksum-verified *)
  | Stale  (* another format version wrote it *)
  | Corrupt  (* truncated, garbage, or checksum mismatch *)

let read_entry path =
  match open_in_bin path with
  | exception Sys_error _ -> Corrupt
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match input_line ic with
        | exception End_of_file -> Corrupt
        | header when String.equal header magic -> (
          match input_line ic with
          | exception End_of_file -> Corrupt
          | checksum -> (
            let pos = pos_in ic in
            let len = in_channel_length ic - pos in
            if len < 0 then Corrupt
            else
              match really_input_string ic len with
              | exception End_of_file -> Corrupt
              | payload ->
                if String.equal (Digest.to_hex (Digest.string payload)) checksum
                then Live payload
                else Corrupt))
        | header
          when String.length header >= String.length magic_prefix
               && String.equal
                    (String.sub header 0 (String.length magic_prefix))
                    magic_prefix -> Stale
        | _ -> Corrupt)

(* Classification of entries only ever degrades availability, so every
   filesystem surprise (entry vanished between readdir and open, permissions)
   collapses to Corrupt and, on the find path, to a miss. *)

let find t key =
  Obs.Span.run "cache.lookup" @@ fun () ->
  let pending_hit =
    match t.deferred with
    | None -> None
    | Some pending -> List.assoc_opt key pending
  in
  match pending_hit with
  | Some payload -> (
    match Marshal.from_string payload 0 with
    | value ->
      Obs.count_stable "cache.hits" 1;
      Obs.count_stable "cache.bytes_read" (String.length payload);
      Some value
    | exception _ ->
      Obs.count_stable "cache.corrupt_entries" 1;
      Obs.count_stable "cache.misses" 1;
      None)
  | None ->
  let path = entry_path t key in
  if not (Sys.file_exists path) then begin
    Obs.count_stable "cache.misses" 1;
    None
  end
  else
    match read_entry path with
    | Live payload -> (
      match Marshal.from_string payload 0 with
      | value ->
        Obs.count_stable "cache.hits" 1;
        Obs.count_stable "cache.bytes_read" (String.length payload);
        Some value
      | exception _ ->
        (* The checksum passed but the blob does not decode (written by an
           incompatible runtime, or the marshal format changed): a corrupt
           entry, counted and treated as a miss. *)
        Obs.count_stable "cache.corrupt_entries" 1;
        Obs.count_stable "cache.misses" 1;
        None)
    | Stale ->
      (* Evict on contact: a stale entry can never become live again (its
         format version is fixed in its header), so unlink it now rather
         than waiting for a gc. *)
      (try Sys.remove path with Sys_error _ -> ());
      Obs.count_stable "cache.stale_evictions" 1;
      Obs.count_stable "cache.misses" 1;
      None
    | Corrupt ->
      Obs.count_stable "cache.corrupt_entries" 1;
      Obs.count_stable "cache.misses" 1;
      None

let write_entry t key payload =
  let path = entry_path t key in
  let attempt () =
    if not (mkdir_if_missing (Filename.dirname path)) then failwith "mkdir";
    let tmp =
      Printf.sprintf "%s.tmp-%d-%s" (Filename.chop_suffix path ".entry")
        (Unix.getpid ()) key
    in
    let oc = open_out_bin tmp in
    (match
       output_string oc magic;
       output_char oc '\n';
       output_string oc (Digest.to_hex (Digest.string payload));
       output_char oc '\n';
       output_string oc payload
     with
    | () -> close_out oc
    | exception exn ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise exn);
    (match Sys.rename tmp path with
    | () -> ()
    | exception exn ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise exn);
    Obs.count "cache.bytes_written" (String.length payload)
  in
  match attempt () with
  | () -> ()
  | exception _ -> Obs.count "cache.store_failures" 1

let store t key value =
  Obs.Span.run "cache.store" @@ fun () ->
  let payload = Marshal.to_string value [] in
  match t.deferred with
  | Some pending ->
    t.deferred <- Some ((key, payload) :: pending);
    Obs.count "cache.deferred_stores" 1
  | None -> write_entry t key payload

let defer_writes t =
  match t.deferred with
  | Some _ -> ()
  | None -> t.deferred <- Some []

let flush t =
  match t.deferred with
  | None -> 0
  | Some pending ->
    (* Newest-first: the first occurrence of a key is the latest store. *)
    let seen = Hashtbl.create 16 in
    let written = ref 0 in
    List.iter
      (fun (key, payload) ->
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          write_entry t key payload;
          incr written
        end)
      pending;
    t.deferred <- Some [];
    !written

(* --- maintenance ------------------------------------------------------------ *)

type stats = {
  live_entries : int;
  live_bytes : int;
  stale_entries : int;
  corrupt_entries : int;
  tmp_files : int;
}

type gc_result = {
  gc_removed_stale : int;
  gc_removed_corrupt : int;
  gc_removed_tmp : int;
  gc_kept : int;
}

let file_size path = match Unix.stat path with
  | { Unix.st_size; _ } -> st_size
  | exception Unix.Unix_error _ -> 0

(* Walk every regular file under the fan-out directories, classifying it as
   an entry (live/stale/corrupt) or a leftover temp file. *)
let scan t f =
  match Sys.readdir t.root with
  | exception Sys_error _ -> ()
  | subdirs ->
    Array.sort String.compare subdirs;
    Array.iter
      (fun sub ->
        let subpath = Filename.concat t.root sub in
        if is_dir subpath then
          match Sys.readdir subpath with
          | exception Sys_error _ -> ()
          | files ->
            Array.sort String.compare files;
            Array.iter
              (fun file ->
                let path = Filename.concat subpath file in
                if Filename.check_suffix file ".entry" then
                  f path (`Entry (read_entry path))
                else f path `Tmp)
              files)
      subdirs

let stats t =
  let s =
    ref
      {
        live_entries = 0;
        live_bytes = 0;
        stale_entries = 0;
        corrupt_entries = 0;
        tmp_files = 0;
      }
  in
  scan t (fun path kind ->
      match kind with
      | `Entry (Live _) ->
        s :=
          {
            !s with
            live_entries = !s.live_entries + 1;
            live_bytes = !s.live_bytes + file_size path;
          }
      | `Entry Stale -> s := { !s with stale_entries = !s.stale_entries + 1 }
      | `Entry Corrupt -> s := { !s with corrupt_entries = !s.corrupt_entries + 1 }
      | `Tmp -> s := { !s with tmp_files = !s.tmp_files + 1 });
  !s

let stats_json s =
  Printf.sprintf
    "{\n\
    \  \"schema\": \"shelley.cache-stats/1\",\n\
    \  \"format_version\": %d,\n\
    \  \"live_entries\": %d,\n\
    \  \"live_bytes\": %d,\n\
    \  \"stale_entries\": %d,\n\
    \  \"corrupt_entries\": %d,\n\
    \  \"tmp_files\": %d\n\
     }\n"
    format_version s.live_entries s.live_bytes s.stale_entries s.corrupt_entries
    s.tmp_files

let gc t =
  let r =
    ref { gc_removed_stale = 0; gc_removed_corrupt = 0; gc_removed_tmp = 0; gc_kept = 0 }
  in
  scan t (fun path kind ->
      let remove () = try Sys.remove path; true with Sys_error _ -> false in
      match kind with
      | `Entry (Live _) -> r := { !r with gc_kept = !r.gc_kept + 1 }
      | `Entry Stale ->
        if remove () then r := { !r with gc_removed_stale = !r.gc_removed_stale + 1 }
      | `Entry Corrupt ->
        if remove () then r := { !r with gc_removed_corrupt = !r.gc_removed_corrupt + 1 }
      | `Tmp ->
        if remove () then r := { !r with gc_removed_tmp = !r.gc_removed_tmp + 1 });
  !r

let clear t =
  let removed = ref 0 in
  scan t (fun path _ -> try Sys.remove path; incr removed with Sys_error _ -> ());
  !removed
