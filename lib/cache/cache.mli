(** A persistent, content-addressed result cache.

    The cache is a directory of immutable blob entries, one per key, where a
    key is the hex digest of everything the cached computation depends on
    (source bytes, budgets, rule configuration, tool version — composed by
    the caller with {!key}). Because keys are content-addressed there is no
    invalidation protocol: a changed input composes a different key, and the
    old entry simply stops being referenced until {!gc} sweeps it.

    Trust model: the cache is an {e untrusted} optimization. Every failure
    mode on the read path — a missing entry, a truncated file, a
    wrong-format-version header, a payload whose checksum does not match, an
    undecodable marshal blob — classifies as a miss and the caller
    recomputes; {!find} never raises and never returns a value whose bytes
    were not exactly the bytes {!store} wrote (a checksum guards the marshal
    payload, so [Marshal.from_string] only ever sees bit-exact input). The
    write path is atomic (temp file + [rename] in the same directory), so
    concurrent writers — the worker processes of [shelley check -j N] —
    can race on one key and readers still see either nothing or a complete
    entry. A store that fails (read-only directory, full disk) is counted
    and dropped; it never aborts the computation that produced the value.

    Observability: lookups tally [cache.hits] / [cache.misses] /
    [cache.stale_evictions] / [cache.corrupt_entries] / [cache.bytes_read]
    as {e stable} recorder counters ({!Obs.count_stable} — deterministic for
    a given corpus, so they may appear in the [--stats] table), and stores
    tally [cache.bytes_written] / [cache.store_failures] with plain
    {!Obs.count} so a store performed inside a worker's unit lands in that
    unit's marshal-safe profile. *)

type t

val tool_version : string
(** The shelley release this build writes entries for (also the CLI
    [--version]). Callers include it in every {!key}, so upgrading the tool
    orphans old entries instead of replaying them. *)

val format_version : int
(** Version of the on-disk entry layout. An entry whose header names a
    different format version is {e stale}: {!find} evicts it (unlinks the
    file, counts [cache.stale_evictions]) and reports a miss. *)

val open_dir : string -> (t, string) result
(** Open (creating if needed, including one missing parent) a cache rooted
    at the given directory. [Error] when the path exists but is not a
    directory or cannot be created — callers are expected to degrade to
    uncached operation, not abort. *)

val dir : t -> string

val key : string list -> string
(** Compose a cache key from its parts: a hex digest over the
    length-prefixed concatenation (so part boundaries cannot be forged by
    concatenation). Callers pass every input the cached computation depends
    on; see {!Checker.check_cache_key} for the composition the CLI uses. *)

val find : t -> string -> 'a option
(** Look up a key. [None] on a missing, truncated, stale, checksum-failed or
    undecodable entry (each classified and counted separately). Type safety
    is the caller's bargain, as with [Marshal]: compose keys so that one key
    can only ever name one payload type (the [Checker] wraps payloads in a
    single variant and treats an unexpected constructor as a miss). Never
    raises. *)

val store : t -> string -> 'a -> unit
(** Write an entry atomically (temp + rename). Failures are counted under
    [cache.store_failures] and swallowed: a cache that cannot be written is
    a slow cache, not a broken run. Values must be marshal-safe (no
    closures, no custom blocks, no interned symbols). Never raises. *)

val defer_writes : t -> unit
(** Switch the handle into deferred-write mode: subsequent {!store}s buffer
    in memory (counted under [cache.deferred_stores]) until {!flush} writes
    them to disk. {!find} consults the pending buffer first, so a deferred
    store is immediately visible through the same handle. The daemon defers
    its stores and flushes at drain time — one fsync-ish burst on shutdown
    instead of disk traffic on the request path. Idempotent. *)

val flush : t -> int
(** Write every pending deferred store (atomically, latest store per key
    wins) and return how many entries were written. [0] when the handle is
    write-through or nothing is pending. Stays in deferred mode. Failures
    are counted and swallowed, as for {!store}. *)

(** {1 Maintenance} *)

type stats = {
  live_entries : int;  (** readable entries in the current format version *)
  live_bytes : int;  (** their total on-disk size *)
  stale_entries : int;  (** entries written by another format version *)
  corrupt_entries : int;  (** unreadable / truncated / checksum-failed *)
  tmp_files : int;  (** abandoned temp files from interrupted writers *)
}

val stats : t -> stats
(** Scan the cache directory and classify every file. Read-only. *)

val stats_json : stats -> string
(** The stats as JSON, schema ["shelley.cache-stats/1"]. *)

type gc_result = {
  gc_removed_stale : int;
  gc_removed_corrupt : int;
  gc_removed_tmp : int;
  gc_kept : int;
}

val gc : t -> gc_result
(** Sweep everything {!find} would refuse to use: stale-version entries,
    corrupt entries, abandoned temp files. Live entries are kept. *)

val clear : t -> int
(** Remove every entry and temp file; returns how many files were removed.
    The directory itself is kept. *)
