type severity =
  | Error
  | Warning
  | Info

type usage_failure =
  | Not_allowed of string
  | Not_final of string

type t =
  | Invalid_subsystem_usage of {
      class_name : string;
      field : string;
      subsystem_class : string;
      counterexample : Trace.t;
      projected : string list;
      failure : usage_failure;
    }
  | Requirement_failure of {
      class_name : string;
      formula : string;
      counterexample : Trace.t;
    }
  | Structural of {
      class_name : string;
      line : int option;
      severity : severity;
      message : string;
    }
  | Syntax_error of {
      line : int;
      col : int;
      message : string;
    }
  | Resource_limit of {
      class_name : string;
      check : string;
      resource : string;
      limit : int;
    }
  | Internal_error of {
      class_name : string;
      check : string;
      message : string;
    }
  | Timeout of {
      unit_name : string;
      seconds : float;
      attempts : int;
    }
  | Worker_crashed of {
      unit_name : string;
      reason : string;
      attempts : int;
    }

let severity = function
  | Invalid_subsystem_usage _ | Requirement_failure _ -> Error
  | Structural { severity; _ } -> severity
  | Syntax_error _ | Resource_limit _ | Internal_error _ | Timeout _ | Worker_crashed _ ->
    Error

let class_name = function
  | Invalid_subsystem_usage { class_name; _ }
  | Requirement_failure { class_name; _ }
  | Structural { class_name; _ }
  | Resource_limit { class_name; _ }
  | Internal_error { class_name; _ } ->
    class_name
  | Timeout { unit_name; _ } | Worker_crashed { unit_name; _ } -> unit_name
  | Syntax_error _ -> "<source>"

let structural ?line severity ~class_name message =
  Structural { class_name; line; severity; message }

let syntax_error ~line ~col message = Syntax_error { line; col; message }

let is_syntax_error = function
  | Syntax_error _ -> true
  | Invalid_subsystem_usage _ | Requirement_failure _ | Structural _ | Resource_limit _
  | Internal_error _ | Timeout _ | Worker_crashed _ ->
    false

let is_resource_limit = function
  | Resource_limit _ | Timeout _ -> true
  | Invalid_subsystem_usage _ | Requirement_failure _ | Structural _ | Syntax_error _
  | Internal_error _ | Worker_crashed _ ->
    false

let is_execution_fault = function
  | Timeout _ | Worker_crashed _ -> true
  | Invalid_subsystem_usage _ | Requirement_failure _ | Structural _ | Syntax_error _
  | Resource_limit _ | Internal_error _ ->
    false

let pp_severity fmt = function
  | Error -> Format.pp_print_string fmt "Error"
  | Warning -> Format.pp_print_string fmt "Warning"
  | Info -> Format.pp_print_string fmt "Info"

(* The projected subsystem calls with the offending operation bracketed, in
   the paper's style: "test, >open< (not final)". *)
let pp_projected fmt (projected, failure) =
  (* The failure is always detected at the end of the shortest
     counterexample, so the offending call is the last one. *)
  let note =
    match failure with
    | Not_allowed _ -> "not allowed here"
    | Not_final _ -> "not final"
  in
  let n = List.length projected in
  List.iteri
    (fun i op ->
      if i > 0 then Format.pp_print_string fmt ", ";
      if i = n - 1 then Format.fprintf fmt ">%s< (%s)" op note
      else Format.pp_print_string fmt op)
    projected

let pp fmt = function
  | Invalid_subsystem_usage r ->
    Format.fprintf fmt
      "@[<v>Error in specification: INVALID SUBSYSTEM USAGE@,\
       Counter example: %a@,\
       Subsystems errors:@,\
      \  * %s '%s': %a@]"
      Trace.pp r.counterexample r.subsystem_class r.field pp_projected
      (r.projected, r.failure)
  | Requirement_failure r ->
    Format.fprintf fmt
      "@[<v>Error in specification: FAIL TO MEET REQUIREMENT@,\
       Formula: %s@,\
       Counter example: %a@]"
      r.formula Trace.pp r.counterexample
  | Structural r ->
    Format.fprintf fmt "%a in class %s%s: %s" pp_severity r.severity r.class_name
      (match r.line with
      | Some l -> Printf.sprintf " (line %d)" l
      | None -> "")
      r.message
  | Syntax_error r ->
    Format.fprintf fmt "Error: syntax error at line %d, col %d: %s" r.line r.col r.message
  | Resource_limit r ->
    Format.fprintf fmt
      "@[<v>Error in verification: RESOURCE LIMIT EXCEEDED@,\
       Class: %s@,\
       Check: %s (skipped; other checks still ran)@,\
       Budget: %s (limit %d)@]"
      r.class_name r.check r.resource r.limit
  | Internal_error r ->
    Format.fprintf fmt
      "@[<v>Error in verification: INTERNAL CHECK FAILURE@,\
       Class: %s@,\
       Check: %s (skipped; other checks still ran)@,\
       Failure: %s@]"
      r.class_name r.check r.message
  | Timeout r ->
    Format.fprintf fmt
      "@[<v>Error in verification: WALL-CLOCK DEADLINE EXCEEDED@,\
       Unit: %s@,\
       Deadline: %gs per attempt (%d attempt%s; the worker was killed; other \
       units unaffected)@]"
      r.unit_name r.seconds r.attempts
      (if r.attempts = 1 then "" else "s")
  | Worker_crashed r ->
    Format.fprintf fmt
      "@[<v>Error in verification: WORKER CRASHED@,\
       Unit: %s@,\
       Failure: %s (%d attempt%s; other units unaffected)@]"
      r.unit_name r.reason r.attempts
      (if r.attempts = 1 then "" else "s")

let to_string t = Format.asprintf "%a" pp t

let pp_all fmt reports =
  Format.fprintf fmt "@[<v>";
  List.iteri
    (fun i r ->
      if i > 0 then Format.pp_print_cut fmt ();
      pp fmt r)
    reports;
  Format.fprintf fmt "@]"

let errors reports = List.filter (fun r -> severity r = Error) reports
