(** Verification reports, formatted like the paper's transcripts (§2.2). *)

type severity =
  | Error
  | Warning
  | Info

type usage_failure =
  | Not_allowed of string
      (** the bracketed operation is not permitted at that point *)
  | Not_final of string
      (** the trace may stop after the bracketed operation, which is not
          final in the subsystem's specification *)

type t =
  | Invalid_subsystem_usage of {
      class_name : string;
      field : string;  (** e.g. ["a"] *)
      subsystem_class : string;  (** e.g. ["Valve"] *)
      counterexample : Trace.t;
          (** mixed trace of operation entries and subsystem calls, e.g.
              [open_a, a.test, a.open] *)
      projected : string list;  (** the field's own calls, unqualified *)
      failure : usage_failure;
    }
  | Requirement_failure of {
      class_name : string;
      formula : string;  (** as written in the [@claim] *)
      counterexample : Trace.t;
    }
  | Structural of {
      class_name : string;
      line : int option;
      severity : severity;
      message : string;
    }
  | Syntax_error of {
      line : int;
      col : int;
      message : string;
    }
      (** A lexical or syntax error recovered by the tolerant parser; the
          rest of the file was still analyzed. *)
  | Resource_limit of {
      class_name : string;
      check : string;  (** which pipeline check was cut short, e.g. ["usage"] *)
      resource : string;  (** which budget ran out, e.g. ["progression obligations"] *)
      limit : int;
    }
      (** A check exceeded its {!Limits.t} budget and was skipped; every
          other check still ran. *)
  | Internal_error of {
      class_name : string;
      check : string;
      message : string;
    }
      (** A check raised an unexpected exception; it was skipped and every
          other check still ran. *)
  | Timeout of {
      unit_name : string;  (** the file (or class) whose worker was killed *)
      seconds : float;  (** the configured per-attempt wall-clock deadline *)
      attempts : int;  (** 2 when the reduced-budget retry also timed out *)
    }
      (** A verification unit exceeded its wall-clock deadline
          ({!Limits.t.deadline}) and its worker process was killed; every
          other unit still completed. Counts as a resource limit for the
          exit-code contract (exit 3). *)
  | Worker_crashed of {
      unit_name : string;
      reason : string;  (** e.g. ["killed by SIGSEGV"] or ["exited with code 42"] *)
      attempts : int;  (** 2 when the reduced-budget retry also crashed *)
    }
      (** A verification unit's worker process died without producing a
          result (fatal signal, OOM kill, hard exit); every other unit still
          completed. *)

val severity : t -> severity
(** [Syntax_error], [Resource_limit], [Internal_error], [Timeout] and
    [Worker_crashed] are [Error]s: verification did not complete, so the
    program cannot be claimed verified. *)

val class_name : t -> string
(** ["<source>"] for [Syntax_error] (no class context); the unit name (file
    path or class) for [Timeout] / [Worker_crashed]. *)

val structural : ?line:int -> severity -> class_name:string -> string -> t

val syntax_error : line:int -> col:int -> string -> t

val is_syntax_error : t -> bool

val is_resource_limit : t -> bool
(** True for [Resource_limit] and [Timeout]: both mean a budget (fuel or
    wall clock) ran out, and both map to exit code 3. *)

val is_execution_fault : t -> bool
(** True for [Timeout] and [Worker_crashed]: the unit's worker process died
    rather than returning a verdict. *)

val pp : Format.formatter -> t -> unit
(** Paper-style rendering, e.g.
    {v
Error in specification: INVALID SUBSYSTEM USAGE
Counter example: open_a, a.test, a.open
Subsystems errors:
  * Valve 'a': test, >open< (not final)
    v} *)

val to_string : t -> string

val pp_all : Format.formatter -> t list -> unit

val errors : t list -> t list
(** Only the [Error]-severity reports. *)
