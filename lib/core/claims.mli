(** Temporal-claim checking (§2.2, "Checking temporal requirements").

    A [@claim] formula speaks about subsystem-call events ([a.open],
    [b.open]); it must hold on every trace of subsystem calls the composite
    can produce — the expanded automaton's language with operation-entry
    events erased. *)

val subsystem_call_nfa : ?limits:Limits.t -> Model.t -> Nfa.t
(** {!Usage.expanded_nfa} projected onto subsystem-call events. *)

val check_claim : ?limits:Limits.t -> Model.t -> string * Ltlf.t -> Report.t option
(** [None] when the claim holds on all traces. *)

val check : ?limits:Limits.t -> Model.t -> Report.t list
(** All claims of the class, in declaration order. *)
