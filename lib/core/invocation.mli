(** Method invocation analysis (§3, step 3).

    Two checks on a class's source against the models of its subsystems:

    - every call [self.f.m()] on a *declared* subsystem field [f] must name
      an operation [m] of [f]'s class (calls on undeclared fields — plain
      attributes like GPIO pins — are not constrained);
    - a [match] on the result of such a call must handle *all* possible exit
      points of the called operation (the paper's "Matching exit points"),
      and handle nothing the operation cannot return. *)

val check :
  env:Usage.env -> model:Model.t -> Mpy_ast.class_def -> Report.t list
(** Diagnostics in source order. [model] must be the extraction of the given
    class (it provides the declared subsystem fields). *)

val calls_on_fields :
  fields:(string -> bool) -> Mpy_ast.class_def -> (int * string * string) list
(** Every call site [self.f.m()] with [fields f], as [(line, f, m)] in
    source order, over every method except [__init__]. The walk behind both
    checks above, exposed for the lint pass (undeclared-subsystem-call
    detection runs it with the *complement* of the declared fields). *)
