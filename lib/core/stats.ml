type t = {
  class_name : string;
  operations : int;
  exit_points : int;
  subsystems : int;
  claims : int;
  ir_nodes : int;
  usage_states : int;
  usage_transitions : int;
  usage_min_dfa_states : int;
  expanded_states : int;
  expanded_transitions : int;
  usages_upto_6 : int;
}

let to_counters s =
  [
    ("model.operations", s.operations);
    ("model.exit_points", s.exit_points);
    ("model.subsystems", s.subsystems);
    ("model.claims", s.claims);
    ("model.ir_nodes", s.ir_nodes);
    ("model.usage_states", s.usage_states);
    ("model.usage_transitions", s.usage_transitions);
    ("model.usage_min_dfa_states", s.usage_min_dfa_states);
    ("model.expanded_states", s.expanded_states);
    ("model.expanded_transitions", s.expanded_transitions);
  ]

let of_model (model : Model.t) =
  Obs.with_span ~args:[ ("class", model.Model.name) ] "stats" @@ fun () ->
  let usage = Depgraph.usage_nfa model in
  let usage_states, usage_transitions = Nfa.count_states_and_transitions usage in
  let expanded = Usage.expanded_nfa model in
  let expanded_states, expanded_transitions = Nfa.count_states_and_transitions expanded in
  let min_dfa = Minimize.minimize (Determinize.determinize usage) in
  let stats =
    {
    class_name = model.Model.name;
    operations = List.length model.Model.operations;
    exit_points =
      List.fold_left
        (fun acc (op : Model.operation) -> acc + List.length op.Model.exits)
        0 model.Model.operations;
    subsystems = List.length model.Model.declared_subsystems;
    claims = List.length model.Model.claims;
    ir_nodes =
      List.fold_left
        (fun acc (op : Model.operation) -> acc + Prog.size op.Model.plain_body)
        0 model.Model.operations;
    usage_states;
    usage_transitions;
    usage_min_dfa_states = Dfa.num_states min_dfa;
    expanded_states;
    expanded_transitions;
    usages_upto_6 = Trace.Set.cardinal (Nfa.words_upto ~max_len:6 usage);
    }
  in
  if Obs.enabled () then List.iter (fun (k, n) -> Obs.count k n) (to_counters stats);
  stats

let pp fmt s =
  Format.fprintf fmt
    "@[<v>%s:@,\
    \  operations:            %d (with %d exit points)@,\
    \  subsystems / claims:   %d / %d@,\
    \  lowered IR nodes:      %d@,\
    \  usage automaton:       %d states, %d transitions (min DFA: %d states)@,\
    \  expanded automaton:    %d states, %d transitions@,\
    \  complete usages ≤ 6:   %d@]"
    s.class_name s.operations s.exit_points s.subsystems s.claims s.ir_nodes s.usage_states
    s.usage_transitions s.usage_min_dfa_states s.expanded_states s.expanded_transitions
    s.usages_upto_6

let header =
  Printf.sprintf "%-14s %4s %5s %4s %6s %9s %9s %8s" "class" "ops" "exits" "sub" "irsize"
    "usage" "expanded" "minDFA"

let pp_row fmt s =
  Format.fprintf fmt "%-14s %4d %5d %4d %6d %4d/%-4d %4d/%-4d %8d" s.class_name s.operations
    s.exit_points s.subsystems s.ir_nodes s.usage_states s.usage_transitions s.expanded_states
    s.expanded_transitions s.usage_min_dfa_states
