(** Model metrics — sizes of everything the verifier builds for a class.

    Used by the CLI ([shelley model --stats]), the irrigation example's
    inventory, and the scaling benchmarks; also a convenient regression
    canary (a change that suddenly doubles automaton sizes shows up here). *)

type t = {
  class_name : string;
  operations : int;
  exit_points : int;
  subsystems : int;
  claims : int;
  ir_nodes : int;  (** total AST nodes of all lowered bodies *)
  usage_states : int;
  usage_transitions : int;
  usage_min_dfa_states : int;  (** canonical protocol size *)
  expanded_states : int;
  expanded_transitions : int;
  usages_upto_6 : int;  (** distinct complete usages of length ≤ 6 *)
}

val of_model : Model.t -> t
(** When the {!Obs} recorder is enabled, also runs under a ["stats"] span and
    feeds every size below into the run's counters (keys as in
    {!to_counters}). *)

val to_counters : t -> (string * int) list
(** The numeric fields as [("model." ^ field, value)] pairs, in declaration
    order — the bridge between model metrics and the {!Obs} counter
    namespace. *)

val pp : Format.formatter -> t -> unit
(** One aligned block per model. *)

val pp_row : Format.formatter -> t -> unit
(** One line, for tables. *)

val header : string
(** Column header matching {!pp_row}. *)
