type result = {
  models : Model.t list;
  reports : Report.t list;
}

(* Bumped whenever the meaning or wording of a verification result changes
   (new checks, reworded reports, different exit-code mapping). The result
   cache folds this into every key, so entries written by an older pipeline
   can never replay as current verdicts. *)
let semantics_version = "5"

let env_of result name =
  List.find_opt (fun (m : Model.t) -> String.equal m.Model.name name) result.models

let find_model = env_of

(* Exception barrier around one check of one class: a blown budget or an
   unexpected exception becomes a report, and every other check still runs. *)
let guard ~class_name ~check f =
  match f () with
  | reports -> reports
  | exception Limits.Budget_exceeded { resource; limit } ->
    [ Report.Resource_limit { class_name; check; resource; limit } ]
  | exception exn ->
    [ Report.Internal_error { class_name; check; message = Printexc.to_string exn } ]

(* [guard] plus a span per (check, class) and per-phase fuel attribution:
   diffing the budget ledger around the check turns cumulative fuel
   accounting into fuel-consumed-by-this-check counters. *)
let spanned ~limits ~class_name ~check f =
  Obs.with_span ~args:[ ("class", class_name) ] check @@ fun () ->
  let before = if Obs.enabled () then Limits.snapshot limits else [] in
  let reports = guard ~class_name ~check f in
  if Obs.enabled () then
    List.iter
      (fun (resource, d) -> Obs.count (Printf.sprintf "fuel.%s.%s" check resource) d)
      (Limits.consumed limits ~before);
  reports

let verify_program ?(extra_env = fun _ -> None) ?(limits = Limits.default)
    (program : Mpy_ast.program) =
  let extractions =
    List.map
      (fun (cls : Mpy_ast.class_def) ->
        Obs.with_span ~args:[ ("class", cls.Mpy_ast.cls_name) ] "extract" @@ fun () ->
        match Extract.extract_class cls with
        | extraction -> (cls, Ok extraction)
        | exception Limits.Budget_exceeded { resource; limit } ->
          ( cls,
            Error
              (Report.Resource_limit
                 { class_name = cls.Mpy_ast.cls_name; check = "extract"; resource; limit })
          )
        | exception exn ->
          ( cls,
            Error
              (Report.Internal_error
                 {
                   class_name = cls.Mpy_ast.cls_name;
                   check = "extract";
                   message = Printexc.to_string exn;
                 }) ))
      program.Mpy_ast.prog_classes
  in
  let models =
    List.filter_map
      (fun (_, ext) ->
        match ext with
        | Ok (e : Extract.result) -> Some e.Extract.model
        | Error _ -> None)
      extractions
  in
  Obs.count "models.extracted" (List.length models);
  let env name =
    match List.find_opt (fun (m : Model.t) -> String.equal m.Model.name name) models with
    | Some _ as found -> found
    | None -> extra_env name
  in
  let reports =
    List.concat_map
      (fun ((cls : Mpy_ast.class_def), ext) ->
        match ext with
        | Error report -> [ report ]
        | Ok (extraction : Extract.result) ->
          let model = extraction.Extract.model in
          let class_name = model.Model.name in
          let run check f = spanned ~limits ~class_name ~check f in
          extraction.Extract.diagnostics
          @ run "validate" (fun () -> Validate.check model)
          @ run "usage" (fun () -> Usage.check ~limits ~env model)
          @ run "claims" (fun () -> Claims.check ~limits model)
          @ run "invocation" (fun () -> Invocation.check ~env ~model cls)
          @ run "refine" (fun () -> Refine.check_inheritance ~limits ~env cls model))
      extractions
  in
  { models; reports }

let verify_source ?extra_env ?limits source =
  let program, diagnostics = Mpy_parser.parse_program_tolerant source in
  let result = verify_program ?extra_env ?limits program in
  let syntax_reports =
    List.map
      (fun (d : Mpy_parser.diagnostic) ->
        Report.syntax_error ~line:d.Mpy_parser.diag_line ~col:d.Mpy_parser.diag_col
          d.Mpy_parser.diag_message)
      diagnostics
  in
  { result with reports = syntax_reports @ result.reports }

let verify_source_exn ?extra_env ?limits source =
  verify_program ?extra_env ?limits (Mpy_parser.parse_program source)

let verified result = Report.errors result.reports = []
