type t = {
  code : string;
  name : string;
  severity : Report.severity;
  summary : string;
}

let rule code name severity summary = { code; name; severity; summary }

(* Structural rules: the Validate checks, one code per defect class. *)

let duplicate_operation =
  rule "SY001" "duplicate-operation" Report.Error
    "two operations of the class share a name, so returns naming it are ambiguous"

let missing_initial =
  rule "SY002" "missing-initial" Report.Error
    "no operation is @op_initial, so the class can never be used"

let missing_final =
  rule "SY003" "missing-final" Report.Error
    "no operation is @op_final, so no usage of the class can terminate"

let unknown_next_operation =
  rule "SY004" "unknown-next-operation" Report.Error
    "a return list names an operation the class does not declare"

let terminal_not_final =
  rule "SY005" "terminal-not-final" Report.Error
    "a non-final operation has a terminal exit (returns []), stranding callers"

let unreachable_operation =
  rule "SY006" "unreachable-operation" Report.Warning
    "the operation is unreachable from every initial operation"

let no_final_reachable =
  rule "SY007" "no-final-reachable" Report.Warning
    "no final operation is reachable after this one: objects get stuck there"

(* File-level rules. *)

let syntax_error =
  rule "SY010" "syntax-error" Report.Error
    "the file has a lexical or syntax error (the rest was still analyzed)"

let unreadable_file =
  rule "SY011" "unreadable-file" Report.Error "the file could not be read"

let unknown_suppression =
  rule "SY012" "unknown-suppression" Report.Warning
    "a '# shelley: disable=' comment names a rule code that does not exist"

let annotation_error =
  rule "SY020" "annotation-error" Report.Error
    "a decorator, claim or return shape could not be understood by extraction"

(* Lint-engine conditions. *)

let rule_resource_limit =
  rule "SY090" "rule-resource-limit" Report.Error
    "a lint rule exceeded its fuel budget and was skipped for this class"

let rule_internal_error =
  rule "SY091" "rule-internal-error" Report.Error
    "a lint rule raised an unexpected exception and was skipped for this class"

(* Semantic rules: computed from the inferred languages and claims. *)

let dead_operation =
  rule "SY101" "dead-operation" Report.Warning
    "the operation occurs in no accepted usage word of the class"

let vacuous_claim =
  rule "SY102" "vacuous-claim" Report.Warning
    "the claim constrains nothing: it holds over the empty language or over every trace"

let unsatisfiable_claim =
  rule "SY103" "unsatisfiable-claim" Report.Error
    "the claim is contradictory: no trace at all can satisfy it"

let redundant_claim =
  rule "SY104" "redundant-claim" Report.Info
    "the claim is implied by the usage language and the remaining claims"

let unused_subsystem =
  rule "SY105" "unused-subsystem" Report.Warning
    "a declared subsystem is never called by any operation"

let undeclared_subsystem_call =
  rule "SY106" "undeclared-subsystem-call" Report.Warning
    "a call on a field of a modeled class escapes verification (not in @sys([...]))"

let unreachable_after_return =
  rule "SY107" "unreachable-after-return" Report.Warning
    "the lowered body performs calls (or returns) after a point where every path returned"

let behavior_blowup =
  rule "SY108" "behavior-blowup" Report.Info
    "an inferred behavior regex exceeds the size or star-nesting threshold"

let all =
  [
    duplicate_operation;
    missing_initial;
    missing_final;
    unknown_next_operation;
    terminal_not_final;
    unreachable_operation;
    no_final_reachable;
    syntax_error;
    unreadable_file;
    unknown_suppression;
    annotation_error;
    rule_resource_limit;
    rule_internal_error;
    dead_operation;
    vacuous_claim;
    unsatisfiable_claim;
    redundant_claim;
    unused_subsystem;
    undeclared_subsystem_call;
    unreachable_after_return;
    behavior_blowup;
  ]

let find_code code = List.find_opt (fun r -> String.equal r.code code) all

let pp fmt r =
  Format.fprintf fmt "%s %s (%s)" r.code r.name
    (match r.severity with
    | Report.Error -> "error"
    | Report.Warning -> "warning"
    | Report.Info -> "info")

(* The registry fingerprint content-addresses the rule set itself: adding a
   rule, renaming a slug or changing a default severity changes the digest,
   which the lint result cache folds into its keys — so lint entries written
   under an older registry miss instead of replaying incomplete findings. *)
let fingerprint =
  let sev = function
    | Report.Error -> "error"
    | Report.Warning -> "warning"
    | Report.Info -> "info"
  in
  Digest.to_hex
    (Digest.string
       (String.concat ";"
          (List.map (fun r -> String.concat ":" [ r.code; r.name; sev r.severity ]) all)))
