type step = {
  op : string;
  op_line : int;
  calls : Symbol.t list;
}

type t = {
  steps : step list;
  field : string;
  subsystem_class : string;
  observed : string list;
  failure : Report.usage_failure;
}

let of_usage_error ~(model : Model.t) ~field ~subsystem_class ~counterexample ~failure =
  let line_of op_name =
    match Model.find_op model op_name with
    | Some op -> op.Model.op_line
    | None -> 0
  in
  let is_entry sym = Symbol.split_scope sym = None in
  let rec segment current acc = function
    | [] -> List.rev (close current acc)
    | sym :: rest ->
      if is_entry sym then
        let name = Symbol.name sym in
        segment (Some { op = name; op_line = line_of name; calls = [] }) (close current acc)
          rest
      else begin
        match current with
        | Some step -> segment (Some { step with calls = sym :: step.calls }) acc rest
        | None -> segment None acc rest
      end
  and close current acc =
    match current with
    | Some step -> { step with calls = List.rev step.calls } :: acc
    | None -> acc
  in
  {
    steps = segment None [] counterexample;
    field;
    subsystem_class;
    observed = Usage.project_subsystem ~field counterexample;
    failure;
  }

let of_report ~model (report : Report.t) =
  match report with
  | Report.Invalid_subsystem_usage
      { class_name; field; subsystem_class; counterexample; failure; _ }
    when String.equal class_name model.Model.name ->
    Some (of_usage_error ~model ~field ~subsystem_class ~counterexample ~failure)
  | Report.Invalid_subsystem_usage _ | Report.Requirement_failure _ | Report.Structural _
  | Report.Syntax_error _ | Report.Resource_limit _ | Report.Internal_error _
  | Report.Timeout _ | Report.Worker_crashed _ ->
    None

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iteri
    (fun i step ->
      Format.fprintf fmt "%d. %s (line %d) — calls: %s@," (i + 1) step.op step.op_line
        (match step.calls with
        | [] -> "(none)"
        | calls -> String.concat ", " (List.map Symbol.name calls)))
    t.steps;
  Format.fprintf fmt "%s '%s' observed: %s@," t.subsystem_class t.field
    (match t.observed with
    | [] -> "(nothing)"
    | calls -> String.concat ", " calls);
  (match t.failure with
  | Report.Not_allowed op ->
    Format.fprintf fmt "'%s' is not allowed at that point of %s's protocol" op
      t.subsystem_class
  | Report.Not_final op ->
    Format.fprintf fmt
      "the composite may stop here, but '%s' is not a final operation of %s" op
      t.subsystem_class);
  Format.fprintf fmt "@]"
