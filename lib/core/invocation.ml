(* A call self.f.m(...) on a field selected by [fields]. *)
let call_on ~fields expr =
  match expr with
  | Mpy_ast.Call (Mpy_ast.Attr (Mpy_ast.Attr (Mpy_ast.Name "self", field), meth), _)
    when fields field ->
    Some (field, meth)
  | _ -> None

let rec calls_in_expr ~fields expr acc =
  let acc =
    match call_on ~fields expr with
    | Some call -> call :: acc
    | None -> acc
  in
  match expr with
  | Mpy_ast.Name _ | Str _ | Int _ | Bool _ | None_lit -> acc
  | Attr (base, _) -> calls_in_expr ~fields base acc
  | Call (target, args) ->
    let acc = calls_in_expr ~fields target acc in
    List.fold_left (fun acc arg -> calls_in_expr ~fields arg acc) acc args
  | List items | Tuple items ->
    List.fold_left (fun acc item -> calls_in_expr ~fields item acc) acc items
  | Binop (_, a, b) -> calls_in_expr ~fields b (calls_in_expr ~fields a acc)
  | Unop (_, e) -> calls_in_expr ~fields e acc
  | Subscript (e, i) -> calls_in_expr ~fields i (calls_in_expr ~fields e acc)

(* The walk shared by the verification checks below and by the lint rules:
   every self.f.m() call site outside __init__, in source order. *)
let calls_on_fields ~fields (cls : Mpy_ast.class_def) =
  let sites = ref [] in
  let add line (field, meth) = sites := (line, field, meth) :: !sites in
  let rec walk_block block = List.iter walk_stmt block
  and walk_expr line e = List.iter (add line) (List.rev (calls_in_expr ~fields e []))
  and walk_stmt (s : Mpy_ast.stmt) =
    let line = s.Mpy_ast.stmt_line in
    match s.Mpy_ast.stmt with
    | Expr_stmt e -> walk_expr line e
    | Assign (t, v) ->
      walk_expr line t;
      walk_expr line v
    | Return value -> Option.iter (walk_expr line) value
    | If (branches, else_block) ->
      List.iter
        (fun (cond, body) ->
          walk_expr line cond;
          walk_block body)
        branches;
      Option.iter walk_block else_block
    | While (cond, body) ->
      walk_expr line cond;
      walk_block body
    | For (_, iter, body) ->
      walk_expr line iter;
      walk_block body
    | Match (scrutinee, cases) ->
      walk_expr line scrutinee;
      List.iter (fun (_, body) -> walk_block body) cases
    | Pass | Break | Continue | Import -> ()
  in
  List.iter
    (fun (meth : Mpy_ast.method_def) ->
      if not (String.equal meth.meth_name "__init__") then walk_block meth.meth_body)
    cls.Mpy_ast.cls_methods;
  List.rev !sites

let subsystem_call ~(model : Model.t) expr =
  call_on ~fields:(fun f -> List.mem f model.Model.declared_subsystems) expr

let subsystem_calls_in_expr ~model expr acc =
  calls_in_expr ~fields:(fun f -> List.mem f model.Model.declared_subsystems) expr acc

let check ~env ~(model : Model.t) (cls : Mpy_ast.class_def) =
  let class_name = cls.Mpy_ast.cls_name in
  let reports = ref [] in
  let add r = reports := r :: !reports in
  let model_of_field field =
    match Model.subsystem_class model field with
    | None -> None
    | Some cls_name -> env cls_name
  in
  let check_defined line (field, meth) =
    match model_of_field field with
    | None -> () (* unknown subsystem class: reported by Usage.check *)
    | Some sub_model ->
      if Model.find_op sub_model meth = None then
        add
          (Report.structural ~line Report.Error ~class_name
             (Printf.sprintf
                "call to undefined operation '%s.%s' (class %s declares: %s)" field meth
                (Option.value ~default:"?" (Model.subsystem_class model field))
                (String.concat ", " (Model.op_names sub_model))))
  in
  (* The possible next-op lists an operation can return, as a set of string
     lists (source order preserved inside each list). *)
  let possible_results (op : Model.operation) =
    List.filter_map
      (fun (e : Model.exit_point) -> if e.implicit then None else Some e.next_ops)
      op.exits
    |> List.sort_uniq compare
  in
  let check_match_exhaustive line scrutinee cases =
    match subsystem_call ~model scrutinee with
    | None -> ()
    | Some (field, meth) -> (
      match model_of_field field with
      | None -> ()
      | Some sub_model -> (
        match Model.find_op sub_model meth with
        | None -> () (* undefined op reported above *)
        | Some op ->
          let results = possible_results op in
          let patterns =
            List.filter_map
              (fun (pat, _) ->
                match pat with
                | Mpy_ast.Pat_list names -> Some (`List names)
                | Mpy_ast.Pat_wildcard | Mpy_ast.Pat_capture _ -> Some `Any
                | Mpy_ast.Pat_literal _ -> None)
              cases
          in
          let has_catch_all = List.mem `Any patterns in
          let covered result =
            has_catch_all || List.mem (`List result) patterns
          in
          List.iter
            (fun result ->
              if not (covered result) then
                add
                  (Report.structural ~line Report.Error ~class_name
                     (Printf.sprintf
                        "non-exhaustive match on result of '%s.%s': exit point returning \
                         [%s] is not handled"
                        field meth
                        (String.concat ", " result))))
            results;
          List.iter
            (function
              | `List names when not (List.mem names results) ->
                add
                  (Report.structural ~line Report.Warning ~class_name
                     (Printf.sprintf
                        "match on result of '%s.%s' has a case [%s] that the operation \
                         never returns"
                        field meth (String.concat ", " names)))
              | `List _ | `Any -> ())
            patterns))
  in
  let rec walk_block block = List.iter walk_stmt block
  and walk_expr line e =
    List.iter (check_defined line) (List.rev (subsystem_calls_in_expr ~model e []))
  and walk_stmt (s : Mpy_ast.stmt) =
    let line = s.Mpy_ast.stmt_line in
    match s.Mpy_ast.stmt with
    | Expr_stmt e -> walk_expr line e
    | Assign (t, v) ->
      walk_expr line t;
      walk_expr line v
    | Return value -> Option.iter (walk_expr line) value
    | If (branches, else_block) ->
      List.iter
        (fun (cond, body) ->
          walk_expr line cond;
          walk_block body)
        branches;
      Option.iter walk_block else_block
    | While (cond, body) ->
      walk_expr line cond;
      walk_block body
    | For (_, iter, body) ->
      walk_expr line iter;
      walk_block body
    | Match (scrutinee, cases) ->
      walk_expr line scrutinee;
      check_match_exhaustive line scrutinee cases;
      List.iter (fun (_, body) -> walk_block body) cases
    | Pass | Break | Continue | Import -> ()
  in
  List.iter
    (fun (meth : Mpy_ast.method_def) ->
      if not (String.equal meth.meth_name "__init__") then walk_block meth.meth_body)
    cls.Mpy_ast.cls_methods;
  List.rev !reports
