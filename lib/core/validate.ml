let diagnostics (model : Model.t) =
  let out = ref [] in
  let add ?line rule msg = out := (rule, line, msg) :: !out in
  let ops = model.Model.operations in
  (* Duplicate names. *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (op : Model.operation) ->
      if Hashtbl.mem seen op.op_name then
        add ~line:op.op_line Rules.duplicate_operation
          (Printf.sprintf "duplicate operation name '%s'" op.op_name)
      else Hashtbl.add seen op.op_name ())
    ops;
  if ops <> [] then begin
    if Model.initial_ops model = [] then
      add ~line:model.Model.line Rules.missing_initial
        "no operation is annotated @op_initial (or @op_initial_final): the class can \
         never be used";
    if Model.final_ops model = [] then
      add ~line:model.Model.line Rules.missing_final
        "no operation is annotated @op_final (or @op_initial_final): no usage of the \
         class can ever terminate"
  end;
  (* Unknown next-operations and terminal exits of non-final operations. *)
  List.iter
    (fun (op : Model.operation) ->
      List.iter
        (fun (e : Model.exit_point) ->
          List.iter
            (fun next ->
              if Model.find_op model next = None then
                add ~line:e.exit_line Rules.unknown_next_operation
                  (Printf.sprintf
                     "operation '%s' returns unknown operation '%s' (declared operations: %s)"
                     op.op_name next
                     (String.concat ", " (Model.op_names model))))
            e.next_ops;
          if e.next_ops = [] && not (Annotations.is_final op.op_kind) && not e.implicit then
            add ~line:e.exit_line Rules.terminal_not_final
              (Printf.sprintf
                 "operation '%s' has a terminal exit (returns []) but is not @op_final: \
                  callers reaching it can neither continue nor stop"
                 op.op_name))
        op.exits)
    ops;
  (* Reachability. *)
  let reachable = Depgraph.reachable_ops model in
  List.iter
    (fun (op : Model.operation) ->
      if not (List.mem op.op_name reachable) then
        add ~line:op.op_line Rules.unreachable_operation
          (Printf.sprintf "operation '%s' is unreachable from every initial operation"
             op.op_name))
    ops;
  let reaching = Depgraph.ops_reaching_final model in
  List.iter
    (fun (op : Model.operation) ->
      if List.mem op.op_name reachable && not (List.mem op.op_name reaching) then
        add ~line:op.op_line Rules.no_final_reachable
          (Printf.sprintf
             "no final operation is reachable after '%s': objects get stuck there"
             op.op_name))
    ops;
  List.rev !out

let check (model : Model.t) =
  let class_name = model.Model.name in
  List.map
    (fun ((rule : Rules.t), line, msg) ->
      Report.structural ?line rule.Rules.severity ~class_name msg)
    (diagnostics model)
