(** Subsystem-usage verification (§2.2, "Verifying object usage").

    For a composite class, every valid sequence of its operations (per its
    own model) induces a sequence of subsystem calls (per the operations'
    inferred behaviors). Each declared subsystem's induced call sequence must
    be a valid usage of that subsystem's own model. A violation yields the
    paper's INVALID SUBSYSTEM USAGE report with a shortest mixed
    counterexample such as [open_a, a.test, a.open]. *)

type env = string -> Model.t option
(** Resolve a class name to its extracted model. *)

val expanded_nfa : ?limits:Limits.t -> Model.t -> Nfa.t
(** The composite's *expanded* automaton: words interleave operation-entry
    events (the bare operation name, e.g. [open_a]) with the subsystem calls
    the operation's body performs (e.g. [a.test]). Acceptance at the
    completion of a final operation, or immediately (unused object).
    Subsystems whose class is unknown to [env] still contribute their call
    events (they are checked by {!Invocation} instead). *)

val project_subsystem : field:string -> Trace.t -> string list
(** Keep only the calls of one subsystem field, unqualified:
    [open_a, a.test, a.open] projected on [a] is [test; open]. *)

val subsystem_spec_nfa : env:env -> field:string -> subsystem_class:string -> Nfa.t option
(** The subsystem's usage automaton, relabeled to the composite's view
    ([test] → [a.test]). [None] when the class is not in the environment. *)

val check_subsystem :
  ?limits:Limits.t ->
  env:env ->
  Model.t ->
  field:string ->
  subsystem_class:string ->
  Report.t option
(** [None] when the subsystem is used correctly. *)

val check : ?limits:Limits.t -> env:env -> Model.t -> Report.t list
(** All declared subsystems of a composite, in declaration order. Also
    reports declared subsystems that are missing from [__init__] or whose
    class is unknown. For base classes, returns []. *)
