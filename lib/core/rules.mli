(** The static-analysis rule registry: one stable code per defect class.

    Every diagnostic Shelley can raise about a *specification* (as opposed
    to a verification verdict about its behavior) is an instance of a
    registered rule. Codes are stable across releases — they are what
    suppression comments ([# shelley: disable=SY001]) and CI SARIF uploads
    key on — so rules are only ever added, never renumbered.

    Numbering convention:
    - [SY0xx] — structural rules (shared with [Validate]) and file-level
      conditions (syntax errors, unreadable input, suppression hygiene);
    - [SY09x] — lint-engine conditions (a rule ran out of budget/crashed);
    - [SY1xx] — semantic rules, computed from the inferred languages and
      claims rather than from the model's shape. *)

type t = {
  code : string;  (** stable identifier, e.g. ["SY101"] *)
  name : string;  (** stable kebab-case slug, e.g. ["dead-operation"] *)
  severity : Report.severity;  (** default severity of a finding *)
  summary : string;  (** one-line description for [--help] / SARIF rules *)
}

(** {1 Structural rules} (the {!Validate} checks) *)

val duplicate_operation : t  (** SY001, error *)

val missing_initial : t  (** SY002, error *)

val missing_final : t  (** SY003, error *)

val unknown_next_operation : t  (** SY004, error *)

val terminal_not_final : t  (** SY005, error *)

val unreachable_operation : t  (** SY006, warning *)

val no_final_reachable : t  (** SY007, warning *)

(** {1 File-level rules} *)

val syntax_error : t  (** SY010, error *)

val unreadable_file : t  (** SY011, error *)

val unknown_suppression : t  (** SY012, warning *)

val annotation_error : t  (** SY020, error (extraction diagnostics) *)

(** {1 Lint-engine conditions} *)

val rule_resource_limit : t  (** SY090, error *)

val rule_internal_error : t  (** SY091, error *)

(** {1 Semantic rules} *)

val dead_operation : t  (** SY101, warning *)

val vacuous_claim : t  (** SY102, warning *)

val unsatisfiable_claim : t  (** SY103, error *)

val redundant_claim : t  (** SY104, info *)

val unused_subsystem : t  (** SY105, warning *)

val undeclared_subsystem_call : t  (** SY106, warning *)

val unreachable_after_return : t  (** SY107, warning *)

val behavior_blowup : t  (** SY108, info *)

(** {1 Registry} *)

val all : t list
(** Every registered rule, in code order. *)

val find_code : string -> t option
(** Look a rule up by its exact code (["SY104"]). *)

val pp : Format.formatter -> t -> unit
(** ["SY104 redundant-claim (info)"]. *)

val fingerprint : string
(** Hex digest over every registered rule's (code, slug, default severity):
    a content address for the rule set. The lint result cache includes it in
    its keys, so growing or retuning the registry invalidates cached lint
    results without any explicit versioning step. *)
