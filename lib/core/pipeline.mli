(** The end-to-end Shelley verification pipeline.

    Parse → extract each class (in file order, so substrates can precede the
    composites that use them) → validate structure → check subsystem usage →
    check temporal claims → run invocation analysis. All findings are
    returned as {!Report.t} values; {!verified} is the paper's notion of a
    program passing verification (no [Error]-severity reports).

    {b Fault isolation}: every per-class check runs behind an exception
    barrier. A check that exhausts its {!Limits.t} budget yields a
    {!Report.Resource_limit} report; one that raises anything else yields a
    {!Report.Internal_error} report. In both cases the remaining checks and
    classes still run — no exception escapes {!verify_program}. *)

type result = {
  models : Model.t list;  (** extraction results, in source order *)
  reports : Report.t list;
}

val semantics_version : string
(** Version tag of the verification {e semantics}: what the pipeline checks
    and how it words its reports. Content-addressed cache keys
    ({!Checker.check_cache_key}) include it, so bump it in the same change
    that alters any report text, adds a check, or changes the exit-code
    mapping — stale cached verdicts then miss instead of replaying. *)

val verify_program : ?extra_env:Usage.env -> ?limits:Limits.t -> Mpy_ast.program -> result
(** [extra_env] resolves class names not defined in the program itself —
    typically models loaded from [.shelley] files ({!Model_io.env_of_files})
    for separate verification. Local definitions shadow it.

    [limits] bounds the automata-theoretic checks (defaults to
    {!Limits.default}); a blown budget surfaces as a
    {!Report.Resource_limit} report, never as an exception. *)

val verify_source : ?extra_env:Usage.env -> ?limits:Limits.t -> string -> result
(** Parse with {!Mpy_parser.parse_program_tolerant} and verify whatever
    parsed. Lexical/syntax errors become {!Report.Syntax_error} reports
    (prepended, in source order); the well-formed classes are still fully
    verified. Never raises. *)

val verify_source_exn : ?extra_env:Usage.env -> ?limits:Limits.t -> string -> result
(** Strict variant: parse with {!Mpy_parser.parse_program}.
    @raise Mpy_parser.Parse_error / Mpy_lexer.Lex_error on bad input. *)

val verified : result -> bool
(** No error-severity report. *)

val env_of : result -> Usage.env
(** Lookup over the extracted models (by class name). *)

val find_model : result -> string -> Model.t option
