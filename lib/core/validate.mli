(** Structural validation of an extracted model.

    These checks do not need the environment: they catch classes whose own
    annotation structure is inconsistent before any caller is verified.
    Each check is an instance of a registered rule ({!Rules}), so the
    verification pipeline and the lint pass emit one uniformly-worded
    diagnostic per defect — [check] renders {!diagnostics} as reports, the
    linter renders the same list with its stable codes. *)

val diagnostics : Model.t -> (Rules.t * int option * string) list
(** Every structural defect as [(rule, line, message)]. In order:
    - {!Rules.duplicate_operation} (SY001, error);
    - {!Rules.missing_initial} (SY002, error — while operations exist);
    - {!Rules.missing_final} (SY003, error — every object's lifetime could
      never end legally);
    - {!Rules.unknown_next_operation} (SY004, error);
    - {!Rules.terminal_not_final} (SY005, error — callers reaching the exit
      can neither continue nor stop legally);
    - {!Rules.unreachable_operation} (SY006, warning);
    - {!Rules.no_final_reachable} (SY007, warning). *)

val check : Model.t -> Report.t list
(** {!diagnostics} as {!Report.Structural} values, severity taken from each
    rule. *)
