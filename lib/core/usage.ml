type env = string -> Model.t option

(* Rename a base model's call events (control.on, status.value, ...) and exit
   markers are irrelevant here: the body NFA of an operation is built from the
   *marked* denotation, with marker transitions redirected to boundary
   states. *)

let marked_behavior_regex (op : Model.operation) =
  (* Every alternative ends in an exit marker; the implicit exit (if any)
     needs its marker appended to the ongoing component. *)
  let explicit, ongoing =
    Extract.exit_behaviors_of_marked ~method_name:op.op_name op.marked_body
  in
  let explicit_res =
    List.map
      (fun (k, r) -> Regex.seq r (Regex.sym (Mpy_lower.exit_marker ~method_name:op.op_name k)))
      explicit
  in
  let implicit_res =
    match List.find_opt (fun (e : Model.exit_point) -> e.implicit) op.exits with
    | Some e ->
      [
        Regex.seq ongoing
          (Regex.sym (Mpy_lower.exit_marker ~method_name:op.op_name e.exit_id));
      ]
    | None -> []
  in
  Regex.alt_list (explicit_res @ implicit_res)

let expanded_nfa ?(limits = Limits.default) (model : Model.t) =
  Obs.with_span "usage.expand" @@ fun () ->
  (* Boundary states: 0 = start; one per (operation, exit). *)
  let boundary = Hashtbl.create 16 in
  let next_state = ref 1 in
  let labels = ref [ (0, "start") ] in
  List.iter
    (fun (op : Model.operation) ->
      List.iter
        (fun (e : Model.exit_point) ->
          Hashtbl.add boundary (op.op_name, e.exit_id) !next_state;
          labels := (!next_state, Printf.sprintf "%s/%d" op.op_name e.exit_id) :: !labels;
          incr next_state)
        op.exits)
    model.operations;
  let transitions = ref [] in
  let epsilons = ref [] in
  (* Embed one copy of each operation's body NFA. *)
  let entry_points = Hashtbl.create 16 in
  (* op name -> list of embedded start states *)
  List.iter
    (fun (op : Model.operation) ->
      let behavior = marked_behavior_regex op in
      let size = Regex.size behavior in
      Limits.check ~within:limits ~resource:"behavior regex size"
        ~limit:limits.Limits.max_regex_size size;
      Obs.count "usage.regex_size" size;
      let body_nfa = Glushkov.of_regex behavior in
      let offset = !next_state in
      next_state := !next_state + Nfa.num_states body_nfa;
      Hashtbl.add entry_points op.op_name
        (List.map (( + ) offset) (States.Set.elements (Nfa.start body_nfa)));
      List.iter
        (fun (src, sym, dst) ->
          match Mpy_lower.is_exit_marker sym with
          | Some (meth, k) when String.equal meth op.op_name ->
            epsilons := (src + offset, Hashtbl.find boundary (op.op_name, k)) :: !epsilons
          | Some _ | None -> transitions := (src + offset, sym, dst + offset) :: !transitions)
        (Nfa.transitions body_nfa);
      List.iter
        (fun (a, b) -> epsilons := (a + offset, b + offset) :: !epsilons)
        (Nfa.epsilons body_nfa))
    model.operations;
  (* Invocation edges: from a boundary state where [op] is allowed, consume
     the operation-entry event and jump into its body. *)
  let allow src (op : Model.operation) =
    List.iter
      (fun start -> transitions := (src, Model.entry_symbol op, start) :: !transitions)
      (Hashtbl.find entry_points op.op_name)
  in
  List.iter (fun op -> allow 0 op) (Model.initial_ops model);
  List.iter
    (fun (op : Model.operation) ->
      List.iter
        (fun (e : Model.exit_point) ->
          let src = Hashtbl.find boundary (op.op_name, e.exit_id) in
          List.iter
            (fun next ->
              match Model.find_op model next with
              | Some next_op -> allow src next_op
              | None -> ())
            e.next_ops)
        op.exits)
    model.operations;
  let accept =
    0
    :: List.concat_map
         (fun (op : Model.operation) ->
           List.map
             (fun (e : Model.exit_point) -> Hashtbl.find boundary (op.op_name, e.exit_id))
             op.exits)
         (Model.final_ops model)
  in
  Obs.count "usage.nfa_states" !next_state;
  Nfa.create ~labels:!labels ~num_states:!next_state ~start:[ 0 ] ~accept
    ~transitions:!transitions ~epsilons:!epsilons ()

let project_subsystem ~field trace =
  List.filter_map
    (fun sym ->
      match Symbol.split_scope sym with
      | Some (scope, op) when String.equal scope field -> Some op
      | Some _ | None -> None)
    trace

let subsystem_spec_nfa ~env ~field ~subsystem_class =
  match env subsystem_class with
  | None -> None
  | Some sub_model ->
    let nfa = Depgraph.usage_nfa sub_model in
    Some
      (Nfa.map_symbols
         (fun sym -> Some (Symbol.scoped ~scope:field (Symbol.name sym)))
         nfa)

(* Decide how the projected call sequence fails the subsystem model: either
   some call is not allowed at its position, or the whole sequence is a
   valid prefix but stops in a non-final position. *)
let diagnose_failure sub_model projected =
  let nfa = Depgraph.usage_nfa sub_model in
  let rec walk config = function
    | [] -> (
      match List.rev projected with
      | last :: _ -> Report.Not_final last
      | [] -> Report.Not_final "?")
    | op :: rest ->
      let next = Nfa.step nfa config (Symbol.intern op) in
      if States.Set.is_empty next then Report.Not_allowed op else walk next rest
  in
  walk (Nfa.initial_config nfa) projected

let check_subsystem ?limits ~env (model : Model.t) ~field ~subsystem_class =
  match env subsystem_class with
  | None -> None
  | Some sub_model -> (
    let impl = expanded_nfa ?limits model in
    let spec =
      match subsystem_spec_nfa ~env ~field ~subsystem_class with
      | Some s -> s
      | None -> assert false
    in
    let alphabet = Symbol.Set.union (Nfa.alphabet impl) (Nfa.alphabet spec) in
    let non_field_symbols =
      Symbol.Set.filter
        (fun sym ->
          match Symbol.split_scope sym with
          | Some (scope, _) -> not (String.equal scope field)
          | None -> true)
        alphabet
    in
    let lifted_spec = Nfa.add_self_loops non_field_symbols spec in
    match Language.inclusion_counterexample ?limits ~alphabet ~impl ~spec:lifted_spec () with
    | None -> None
    | Some counterexample ->
      let projected = project_subsystem ~field counterexample in
      let failure = diagnose_failure sub_model projected in
      Some
        (Report.Invalid_subsystem_usage
           {
             class_name = model.Model.name;
             field;
             subsystem_class;
             counterexample;
             projected;
             failure;
           }))

let check ?limits ~env (model : Model.t) =
  match model.Model.kind with
  | `Base -> []
  | `Composite ->
    List.filter_map
      (fun field ->
        match Model.subsystem_class model field with
        | None ->
          Some
            (Report.structural ~line:model.Model.line Report.Error
               ~class_name:model.Model.name
               (Printf.sprintf
                  "declared subsystem '%s' is never assigned in __init__" field))
        | Some subsystem_class -> (
          match env subsystem_class with
          | None ->
            Some
              (Report.structural ~line:model.Model.line Report.Error
                 ~class_name:model.Model.name
                 (Printf.sprintf "subsystem '%s' has unknown class %s" field subsystem_class))
          | Some _ -> check_subsystem ?limits ~env model ~field ~subsystem_class))
      model.Model.declared_subsystems
