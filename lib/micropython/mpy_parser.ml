exception Parse_error of string * int * int

type cursor = { mutable tokens : Mpy_token.t list }

let peek cur =
  match cur.tokens with
  | [] -> { Mpy_token.kind = Eof; line = 0; col = 0 }
  | t :: _ -> t

let peek_kind cur = (peek cur).Mpy_token.kind

let advance cur =
  match cur.tokens with
  | [] -> ()
  | _ :: rest -> cur.tokens <- rest

let fail_at (tok : Mpy_token.t) msg = raise (Parse_error (msg, tok.line, tok.col))

let expect cur kind =
  let tok = peek cur in
  if tok.Mpy_token.kind = kind then advance cur
  else
    fail_at tok
      (Printf.sprintf "expected %s but found %s" (Mpy_token.describe kind)
         (Mpy_token.describe tok.Mpy_token.kind))

let expect_name cur =
  let tok = peek cur in
  match tok.Mpy_token.kind with
  | Name n ->
    advance cur;
    n
  | k -> fail_at tok (Printf.sprintf "expected an identifier but found %s" (Mpy_token.describe k))

let skip_newlines cur =
  while peek_kind cur = Mpy_token.Newline do
    advance cur
  done

(* --- Expressions ----------------------------------------------------------- *)

let rec parse_expr cur = parse_or cur

and parse_or cur =
  let left = parse_and cur in
  match peek_kind cur with
  | Kw_or ->
    advance cur;
    Mpy_ast.Binop ("or", left, parse_or cur)
  | _ -> left

and parse_and cur =
  let left = parse_not cur in
  match peek_kind cur with
  | Kw_and ->
    advance cur;
    Mpy_ast.Binop ("and", left, parse_and cur)
  | _ -> left

and parse_not cur =
  match peek_kind cur with
  | Kw_not ->
    advance cur;
    Mpy_ast.Unop ("not", parse_not cur)
  | _ -> parse_comparison cur

and parse_comparison cur =
  let left = parse_arith cur in
  match peek_kind cur with
  | Operator (("==" | "!=" | "<" | ">" | "<=" | ">=") as op) ->
    advance cur;
    Mpy_ast.Binop (op, left, parse_arith cur)
  | Kw_in ->
    advance cur;
    Mpy_ast.Binop ("in", left, parse_arith cur)
  | _ -> left

and parse_arith cur =
  let left = parse_term cur in
  let rec continue_ left =
    match peek_kind cur with
    | Operator (("+" | "-") as op) ->
      advance cur;
      continue_ (Mpy_ast.Binop (op, left, parse_term cur))
    | _ -> left
  in
  continue_ left

and parse_term cur =
  let left = parse_unary cur in
  let rec continue_ left =
    match peek_kind cur with
    | Operator (("*" | "/" | "//" | "%" | "**") as op) ->
      advance cur;
      continue_ (Mpy_ast.Binop (op, left, parse_unary cur))
    | _ -> left
  in
  continue_ left

and parse_unary cur =
  match peek_kind cur with
  | Operator (("-" | "+") as op) ->
    advance cur;
    Mpy_ast.Unop (op, parse_unary cur)
  | _ -> parse_postfix cur

and parse_postfix cur =
  let base = parse_atom cur in
  let rec continue_ base =
    match peek_kind cur with
    | Dot ->
      advance cur;
      continue_ (Mpy_ast.Attr (base, expect_name cur))
    | Lparen ->
      advance cur;
      let args = parse_call_args cur in
      expect cur Rparen;
      continue_ (Mpy_ast.Call (base, args))
    | Lbracket ->
      advance cur;
      let index = parse_expr cur in
      expect cur Rbracket;
      continue_ (Mpy_ast.Subscript (base, index))
    | _ -> base
  in
  continue_ base

and parse_call_args cur =
  if peek_kind cur = Rparen then []
  else
    let rec go acc =
      let arg = parse_expr cur in
      match peek_kind cur with
      | Comma ->
        advance cur;
        if peek_kind cur = Rparen then List.rev (arg :: acc) else go (arg :: acc)
      | _ -> List.rev (arg :: acc)
    in
    go []

and parse_atom cur =
  let tok = peek cur in
  match tok.Mpy_token.kind with
  | Name n ->
    advance cur;
    Mpy_ast.Name n
  | Int_lit n ->
    advance cur;
    Mpy_ast.Int n
  | Str_lit s ->
    advance cur;
    Mpy_ast.Str s
  | Kw_true ->
    advance cur;
    Mpy_ast.Bool true
  | Kw_false ->
    advance cur;
    Mpy_ast.Bool false
  | Kw_none ->
    advance cur;
    Mpy_ast.None_lit
  | Lparen ->
    advance cur;
    let first = parse_expr cur in
    let rec tuple acc =
      match peek_kind cur with
      | Comma ->
        advance cur;
        if peek_kind cur = Rparen then List.rev acc else tuple (parse_expr cur :: acc)
      | _ -> List.rev acc
    in
    let items = tuple [ first ] in
    expect cur Rparen;
    (match items with
    | [ single ] -> single
    | several -> Mpy_ast.Tuple several)
  | Lbracket ->
    advance cur;
    let rec items acc =
      if peek_kind cur = Rbracket then List.rev acc
      else
        let item = parse_expr cur in
        match peek_kind cur with
        | Comma ->
          advance cur;
          items (item :: acc)
        | _ -> List.rev (item :: acc)
    in
    let elems = items [] in
    expect cur Rbracket;
    Mpy_ast.List elems
  | k -> fail_at tok (Printf.sprintf "expected an expression but found %s" (Mpy_token.describe k))

(* Top level of an expression statement / return value: a comma builds a tuple. *)
let parse_expr_tuple cur =
  let first = parse_expr cur in
  let rec go acc =
    match peek_kind cur with
    | Comma ->
      advance cur;
      go (parse_expr cur :: acc)
    | _ -> List.rev acc
  in
  match go [ first ] with
  | [ single ] -> single
  | several -> Mpy_ast.Tuple several

(* --- Statements -------------------------------------------------------------- *)

let rec parse_block cur =
  (* ':' already consumed. *)
  expect cur Newline;
  expect cur Indent;
  let rec go acc =
    skip_newlines cur;
    match peek_kind cur with
    | Dedent ->
      advance cur;
      List.rev acc
    | Eof -> List.rev acc
    | _ -> go (parse_stmt cur :: acc)
  in
  let body = go [] in
  if body = [] then fail_at (peek cur) "empty block";
  body

and parse_stmt cur : Mpy_ast.stmt =
  let tok = peek cur in
  let line = tok.Mpy_token.line in
  let mk stmt = { Mpy_ast.stmt; stmt_line = line } in
  match tok.Mpy_token.kind with
  | Kw_pass ->
    advance cur;
    expect cur Newline;
    mk Mpy_ast.Pass
  | Kw_break ->
    advance cur;
    expect cur Newline;
    mk Mpy_ast.Break
  | Kw_continue ->
    advance cur;
    expect cur Newline;
    mk Mpy_ast.Continue
  | Kw_import | Kw_from ->
    (* Skip the rest of the line. *)
    while peek_kind cur <> Mpy_token.Newline && peek_kind cur <> Mpy_token.Eof do
      advance cur
    done;
    expect cur Newline;
    mk Mpy_ast.Import
  | Kw_return ->
    advance cur;
    if peek_kind cur = Mpy_token.Newline then begin
      advance cur;
      mk (Mpy_ast.Return None)
    end
    else begin
      let value = parse_expr_tuple cur in
      expect cur Newline;
      mk (Mpy_ast.Return (Some value))
    end
  | Kw_if ->
    advance cur;
    let cond = parse_expr cur in
    expect cur Colon;
    let body = parse_block cur in
    let rec elifs acc =
      match peek_kind cur with
      | Kw_elif ->
        advance cur;
        let cond = parse_expr cur in
        expect cur Colon;
        let body = parse_block cur in
        elifs ((cond, body) :: acc)
      | _ -> List.rev acc
    in
    let branches = (cond, body) :: elifs [] in
    let else_block =
      match peek_kind cur with
      | Kw_else ->
        advance cur;
        expect cur Colon;
        Some (parse_block cur)
      | _ -> None
    in
    mk (Mpy_ast.If (branches, else_block))
  | Kw_while ->
    advance cur;
    let cond = parse_expr cur in
    expect cur Colon;
    mk (Mpy_ast.While (cond, parse_block cur))
  | Kw_for ->
    advance cur;
    let var = expect_name cur in
    expect cur Kw_in;
    let iter = parse_expr cur in
    expect cur Colon;
    mk (Mpy_ast.For (var, iter, parse_block cur))
  | Kw_match ->
    advance cur;
    let scrutinee = parse_expr cur in
    expect cur Colon;
    expect cur Newline;
    expect cur Indent;
    let rec cases acc =
      skip_newlines cur;
      match peek_kind cur with
      | Kw_case ->
        advance cur;
        let pat = parse_pattern cur in
        expect cur Colon;
        let body = parse_block cur in
        cases ((pat, body) :: acc)
      | Dedent ->
        advance cur;
        List.rev acc
      | k -> fail_at (peek cur) (Printf.sprintf "expected 'case' but found %s" (Mpy_token.describe k))
    in
    let case_list = cases [] in
    if case_list = [] then fail_at tok "match statement with no cases";
    mk (Mpy_ast.Match (scrutinee, case_list))
  | Kw_def -> fail_at tok "nested function definitions are outside the analyzed subset"
  | Kw_class -> fail_at tok "nested classes are outside the analyzed subset"
  | _ ->
    let target = parse_expr_tuple cur in
    (match peek_kind cur with
    | Assign ->
      advance cur;
      let value = parse_expr_tuple cur in
      expect cur Newline;
      mk (Mpy_ast.Assign (target, value))
    | Operator (("+=" | "-=" | "*=" | "/=") as op) ->
      advance cur;
      let value = parse_expr_tuple cur in
      expect cur Newline;
      (* Desugar augmented assignment: the analysis only cares about calls. *)
      mk (Mpy_ast.Assign (target, Mpy_ast.Binop (String.sub op 0 1, target, value)))
    | _ ->
      expect cur Newline;
      mk (Mpy_ast.Expr_stmt target))

and parse_pattern cur =
  let tok = peek cur in
  match tok.Mpy_token.kind with
  | Name "_" ->
    advance cur;
    Mpy_ast.Pat_wildcard
  | Name n ->
    advance cur;
    Mpy_ast.Pat_capture n
  | Lbracket ->
    advance cur;
    let rec strings acc =
      if peek_kind cur = Rbracket then List.rev acc
      else
        match peek_kind cur with
        | Str_lit s ->
          advance cur;
          (match peek_kind cur with
          | Comma ->
            advance cur;
            strings (s :: acc)
          | _ -> List.rev (s :: acc))
        | k ->
          fail_at (peek cur)
            (Printf.sprintf "expected a string in list pattern but found %s"
               (Mpy_token.describe k))
    in
    let names = strings [] in
    expect cur Rbracket;
    Mpy_ast.Pat_list names
  | Int_lit _ | Str_lit _ | Kw_true | Kw_false | Kw_none ->
    Mpy_ast.Pat_literal (parse_atom cur)
  | k -> fail_at tok (Printf.sprintf "expected a pattern but found %s" (Mpy_token.describe k))

(* --- Declarations -------------------------------------------------------------- *)

let parse_decorator cur : Mpy_ast.decorator =
  let tok = peek cur in
  expect cur At;
  let name = expect_name cur in
  let args =
    match peek_kind cur with
    | Lparen ->
      advance cur;
      let args = parse_call_args cur in
      expect cur Rparen;
      args
    | _ -> []
  in
  expect cur Newline;
  { Mpy_ast.dec_name = name; dec_args = args; dec_line = tok.Mpy_token.line }

let rec parse_decorators cur acc =
  if peek_kind cur = Mpy_token.At then parse_decorators cur (parse_decorator cur :: acc)
  else List.rev acc

let parse_params cur =
  expect cur Lparen;
  let rec go acc =
    match peek_kind cur with
    | Rparen ->
      advance cur;
      List.rev acc
    | Name n -> (
      advance cur;
      (* Skip an optional annotation. *)
      (match peek_kind cur with
      | Colon ->
        advance cur;
        ignore (parse_expr cur)
      | _ -> ());
      match peek_kind cur with
      | Comma ->
        advance cur;
        go (n :: acc)
      | _ -> go (n :: acc))
    | k ->
      fail_at (peek cur)
        (Printf.sprintf "expected a parameter name but found %s" (Mpy_token.describe k))
  in
  go []

let parse_method cur : Mpy_ast.method_def =
  let decorators = parse_decorators cur [] in
  let tok = peek cur in
  expect cur Kw_def;
  let name = expect_name cur in
  let params = parse_params cur in
  (* Skip an optional return annotation. *)
  (match peek_kind cur with
  | Arrow ->
    advance cur;
    ignore (parse_expr cur)
  | _ -> ());
  expect cur Colon;
  let body = parse_block cur in
  {
    Mpy_ast.meth_name = name;
    meth_params = params;
    meth_decorators = decorators;
    meth_body = body;
    meth_line = tok.Mpy_token.line;
  }

(* The class header up to and including the body's [Indent]:
   [class Name(Base, ...):\n]. *)
let parse_class_header cur =
  let tok = peek cur in
  expect cur Kw_class;
  let name = expect_name cur in
  let bases =
    match peek_kind cur with
    | Lparen ->
      advance cur;
      let rec go acc =
        match peek_kind cur with
        | Rparen ->
          advance cur;
          List.rev acc
        | Name n -> (
          advance cur;
          match peek_kind cur with
          | Comma ->
            advance cur;
            go (n :: acc)
          | _ -> go (n :: acc))
        | k ->
          fail_at (peek cur)
            (Printf.sprintf "expected a base class name but found %s" (Mpy_token.describe k))
      in
      go []
    | _ -> []
  in
  expect cur Colon;
  expect cur Newline;
  expect cur Indent;
  (tok, name, bases)

let parse_class_def cur decorators : Mpy_ast.class_def =
  let tok, name, bases = parse_class_header cur in
  let rec members acc =
    skip_newlines cur;
    match peek_kind cur with
    | Dedent ->
      advance cur;
      List.rev acc
    | Eof -> List.rev acc
    | At | Kw_def -> members (parse_method cur :: acc)
    | Kw_pass ->
      advance cur;
      expect cur Newline;
      members acc
    | k ->
      fail_at (peek cur)
        (Printf.sprintf "expected a method definition but found %s" (Mpy_token.describe k))
  in
  let methods = members [] in
  {
    Mpy_ast.cls_name = name;
    cls_bases = bases;
    cls_decorators = decorators;
    cls_methods = methods;
    cls_line = tok.Mpy_token.line;
  }

(* --- Error recovery ------------------------------------------------------------ *)

type diagnostic = {
  diag_message : string;
  diag_line : int;
  diag_col : int;
}

(* Panic-mode synchronization: skip to the next token that can plausibly
   start a top-level declaration — a decorator or [class] at column 0. *)
let sync_toplevel cur =
  let rec go () =
    let tok = peek cur in
    match tok.Mpy_token.kind with
    | Eof -> ()
    | (At | Kw_class) when tok.Mpy_token.col = 0 -> ()
    | _ ->
      advance cur;
      go ()
  in
  go ()

(* Synchronize inside a class body to the next member boundary: a decorator,
   [def] or [pass] back at the body's own indentation column. Stopping on a
   non-layout token *left* of the body column means the class itself has
   ended (its [Dedent]s were consumed while skipping); the caller closes the
   class without consuming that token. *)
let sync_member cur ~body_col =
  let rec go () =
    let tok = peek cur in
    match tok.Mpy_token.kind with
    | Eof -> ()
    | Newline | Indent | Dedent ->
      advance cur;
      go ()
    | (At | Kw_def | Kw_pass) when tok.Mpy_token.col = body_col -> ()
    | _ when tok.Mpy_token.col < body_col -> ()
    | _ ->
      advance cur;
      go ()
  in
  go ()

(* Like {!parse_class_def} but a syntax error inside one member is recorded
   and parsing resumes at the next member boundary, so the class keeps its
   other methods. A broken *header* drops the whole class (the caller
   resynchronizes at top level). *)
let parse_class_def_tolerant ~record cur decorators : Mpy_ast.class_def option =
  match parse_class_header cur with
  | exception Parse_error (msg, line, col) ->
    record msg line col;
    sync_toplevel cur;
    None
  | tok, name, bases ->
    skip_newlines cur;
    let body_col = (peek cur).Mpy_token.col in
    let rec members acc =
      skip_newlines cur;
      let t = peek cur in
      match t.Mpy_token.kind with
      | Dedent ->
        advance cur;
        List.rev acc
      | Eof -> List.rev acc
      | _ when t.Mpy_token.col < body_col -> List.rev acc
      | At | Kw_def -> (
        match parse_method cur with
        | m -> members (m :: acc)
        | exception Parse_error (msg, line, col) ->
          record msg line col;
          sync_member cur ~body_col;
          members acc)
      | Kw_pass ->
        advance cur;
        (match peek_kind cur with
        | Newline -> advance cur
        | _ -> ());
        members acc
      | k ->
        record
          (Printf.sprintf "expected a method definition but found %s" (Mpy_token.describe k))
          t.Mpy_token.line t.Mpy_token.col;
        sync_member cur ~body_col;
        members acc
    in
    let methods = members [] in
    Some
      {
        Mpy_ast.cls_name = name;
        cls_bases = bases;
        cls_decorators = decorators;
        cls_methods = methods;
        cls_line = tok.Mpy_token.line;
      }

let parse_program source =
  let cur = { tokens = Mpy_lexer.tokenize source } in
  let classes = ref [] in
  let toplevel = ref [] in
  let rec go () =
    skip_newlines cur;
    match peek_kind cur with
    | Eof -> ()
    | At | Kw_class -> (
      let decorators = parse_decorators cur [] in
      match peek_kind cur with
      | Kw_class ->
        classes := parse_class_def cur decorators :: !classes;
        go ()
      | Kw_def -> fail_at (peek cur) "top-level functions are outside the analyzed subset"
      | k ->
        fail_at (peek cur)
          (Printf.sprintf "expected a class after decorators but found %s"
             (Mpy_token.describe k)))
    | _ ->
      toplevel := parse_stmt cur :: !toplevel;
      go ()
  in
  go ();
  { Mpy_ast.prog_classes = List.rev !classes; prog_toplevel = List.rev !toplevel }

let parse_program_tolerant source =
  Obs.with_span "parse" @@ fun () ->
  let result =
    match Mpy_lexer.tokenize source with
  | exception Mpy_lexer.Lex_error (msg, line, col) ->
    ( { Mpy_ast.prog_classes = []; prog_toplevel = [] },
      [ { diag_message = msg; diag_line = line; diag_col = col } ] )
  | tokens ->
    let cur = { tokens } in
    let diags = ref [] in
    let record msg line col =
      diags := { diag_message = msg; diag_line = line; diag_col = col } :: !diags
    in
    let classes = ref [] in
    let toplevel = ref [] in
    let rec go () =
      skip_newlines cur;
      match peek_kind cur with
      | Mpy_token.Eof -> ()
      | At | Kw_class ->
        (match
           let decorators = parse_decorators cur [] in
           match peek_kind cur with
           | Mpy_token.Kw_class -> decorators
           | Kw_def ->
             fail_at (peek cur) "top-level functions are outside the analyzed subset"
           | k ->
             fail_at (peek cur)
               (Printf.sprintf "expected a class after decorators but found %s"
                  (Mpy_token.describe k))
         with
        | decorators -> (
          match parse_class_def_tolerant ~record cur decorators with
          | Some cls -> classes := cls :: !classes
          | None -> ())
        | exception Parse_error (msg, line, col) ->
          record msg line col;
          sync_toplevel cur);
        go ()
      | Indent | Dedent ->
        (* Recovery can leave stray layout tokens behind; drop them. *)
        advance cur;
        go ()
      | _ ->
        let before = cur.tokens in
        (match parse_stmt cur with
        | s -> toplevel := s :: !toplevel
        | exception Parse_error (msg, line, col) ->
          record msg line col;
          (* Guarantee progress even if the parser failed without
             consuming anything. *)
          if cur.tokens == before then advance cur;
          sync_toplevel cur);
        go ()
    in
    go ();
    ( { Mpy_ast.prog_classes = List.rev !classes; prog_toplevel = List.rev !toplevel },
      List.rev !diags )
  in
  let program, diags = result in
  Obs.count "parse.classes" (List.length program.Mpy_ast.prog_classes);
  Obs.count "parse.diagnostics" (List.length diags);
  result

let parse_class source =
  match (parse_program source).Mpy_ast.prog_classes with
  | [ cls ] -> cls
  | classes ->
    raise
      (Parse_error
         (Printf.sprintf "expected exactly one class definition, found %d" (List.length classes), 1, 0))

let parse_expression source =
  let cur = { tokens = Mpy_lexer.tokenize source } in
  skip_newlines cur;
  let e = parse_expr_tuple cur in
  skip_newlines cur;
  expect cur Eof;
  e

(* --- Suppression comments -------------------------------------------------- *)

type suppression = {
  sup_line : int;
  sup_codes : string list;
  sup_standalone : bool;
}

(* The lexer discards comments wholesale, so suppressions are recovered by a
   raw line scan: a comment of the shape

     # shelley: disable=SY001,SY104
     # shelley: disable

   anywhere on a line. Codes are comma-separated; 'disable' without '='
   (or with an empty list) suppresses every rule. *)
let suppressions source =
  let is_space c = c = ' ' || c = '\t' in
  let suppression_of_line line_no line =
    match String.index_opt line '#' with
    | None -> None
    | Some hash -> (
      let standalone =
        String.for_all is_space (String.sub line 0 hash)
      in
      let comment =
        String.sub line (hash + 1) (String.length line - hash - 1) |> String.trim
      in
      let strip_prefix prefix s =
        if String.length s >= String.length prefix
           && String.equal (String.sub s 0 (String.length prefix)) prefix
        then Some (String.sub s (String.length prefix) (String.length s - String.length prefix))
        else None
      in
      match strip_prefix "shelley:" comment with
      | None -> None
      | Some rest -> (
        let rest = String.trim rest in
        match strip_prefix "disable" rest with
        | None -> None
        | Some tail -> (
          let tail = String.trim tail in
          match tail with
          | "" -> Some { sup_line = line_no; sup_codes = []; sup_standalone = standalone }
          | _ when tail.[0] = '=' ->
            let codes =
              String.sub tail 1 (String.length tail - 1)
              |> String.split_on_char ','
              |> List.map String.trim
              |> List.filter (fun c -> c <> "")
            in
            Some { sup_line = line_no; sup_codes = codes; sup_standalone = standalone }
          | _ -> None)))
  in
  String.split_on_char '\n' source
  |> List.mapi (fun i line -> suppression_of_line (i + 1) line)
  |> List.filter_map Fun.id
