(** Recursive-descent parser for the MicroPython subset.

    Consumes the layout-token stream of {!Mpy_lexer} and produces
    {!Mpy_ast.program}. Anything the analysis does not model but Python
    allows in the subset's positions (arbitrary expressions, annotations,
    imports) is parsed and retained or explicitly erased; constructs outside
    the subset (nested [def], [try], [lambda], …) are parse errors with
    positions. *)

exception Parse_error of string * int * int
(** [(message, line, col)] *)

val parse_program : string -> Mpy_ast.program
(** @raise Parse_error on syntax errors.
    @raise Mpy_lexer.Lex_error on lexical errors. *)

type diagnostic = {
  diag_message : string;
  diag_line : int;
  diag_col : int;
}

val parse_program_tolerant : string -> Mpy_ast.program * diagnostic list
(** Fault-tolerant variant: never raises. On a syntax error the parser
    records a diagnostic and resynchronizes at the next [def]/[class]
    boundary (panic mode), so one broken method drops only that method and
    one broken class header drops only that class — everything else is still
    parsed. A *lexical* error cannot be recovered (the token stream is
    produced up front) and yields an empty program plus one diagnostic.
    Diagnostics are in source order.

    Caveat: an unclosed bracket suppresses layout tokens until the next
    closing bracket (implicit line joining), so a breakage such as
    [def broken(:] can swallow the line structure of the following
    definitions; recovery then resumes at the next syntactically intact
    top-level [class]. *)

type suppression = {
  sup_line : int;  (** 1-based line the comment sits on *)
  sup_codes : string list;  (** rule codes named after [disable=]; [] = all *)
  sup_standalone : bool;
      (** the comment is the whole line (only whitespace before [#]); such a
          suppression governs the *next* line, an end-of-line one its own *)
}

val suppressions : string -> suppression list
(** Every [# shelley: disable=SY001,SY104] (or bare [# shelley: disable])
    comment in the source, in line order. The lexer discards comments, so
    this is a raw line scan — it never fails, even on sources the parser
    rejects. *)

val parse_class : string -> Mpy_ast.class_def
(** Convenience: parse a source expected to contain exactly one class.
    @raise Parse_error if there is not exactly one class definition. *)

val parse_expression : string -> Mpy_ast.expr
(** Parse a single expression (used by tests and the Table 2 bench). *)
