type verdict =
  | Verified of { specs : int }
  | Counterexample of { failed : string list }
  | Rejected_input of { detail : string }
  | Tool_missing of { searched : string list }
  | Tool_timeout of { seconds : float }
  | Tool_failed of {
      reason : string;
      detail : string;
    }

type run = {
  verdict : verdict;
  stdout : string;
  stderr : string;
}

let default_binaries = [ "NuSMV"; "nusmv" ]

let runnable path =
  Sys.file_exists path
  && (not (Sys.is_directory path))
  && match Unix.access path [ Unix.X_OK ] with
     | () -> true
     | exception Unix.Unix_error _ -> false

let find_binary ?binary () =
  let candidates =
    match binary with
    | Some b -> [ b ]
    | None -> default_binaries
  in
  let resolve name =
    if String.contains name '/' then if runnable name then Some name else None
    else
      Sys.getenv_opt "PATH"
      |> Option.value ~default:""
      |> String.split_on_char ':'
      |> List.find_map (fun dir ->
             let dir = if dir = "" then "." else dir in
             let path = Filename.concat dir name in
             if runnable path then Some path else None)
  in
  match List.find_map resolve candidates with
  | Some path -> Ok path
  | None -> Error candidates

let lines s = String.split_on_char '\n' s

let contains_sub ~sub s =
  let n = String.length s and m = String.length sub in
  m = 0
  || (m <= n
     && List.exists (fun i -> String.sub s i m = sub) (List.init (n - m + 1) Fun.id))

(* Last non-empty stderr lines, for a compact diagnostic. *)
let tail_detail s =
  let nonempty = List.filter (fun l -> String.trim l <> "") (lines s) in
  let rec last_n n = function
    | [] -> []
    | _ :: rest as l -> if List.length l <= n then l else last_n n rest
  in
  String.concat "\n" (last_n 3 nonempty)

let classify_output ~status ~stdout ~stderr =
  let spec_lines verdict_word =
    List.filter
      (fun l ->
        contains_sub ~sub:"-- specification" l && contains_sub ~sub:("is " ^ verdict_word) l)
      (lines stdout)
  in
  (* Needles are anchored to NuSMV's own diagnostic phrasing ("undefined
     identifier", "is undefined") rather than the bare word "undefined",
     which also shows up in unrelated failures (a dynamic linker's
     "undefined symbol", a trace that mentions the word) that must stay
     classified as Tool_failed. *)
  let parse_trouble =
    List.exists
      (fun needle -> contains_sub ~sub:needle stderr || contains_sub ~sub:needle stdout)
      [
        "syntax error";
        "Parser error";
        "parse error";
        "TYPE ERROR";
        "undefined identifier";
        "is undefined";
      ]
  in
  match status with
  | Unix.WEXITED 0 -> (
    match spec_lines "false" with
    | [] ->
      if parse_trouble then Rejected_input { detail = tail_detail (stderr ^ "\n" ^ stdout) }
      else Verified { specs = List.length (spec_lines "true") }
    | failed -> Counterexample { failed = List.map String.trim failed })
  | Unix.WEXITED 127 -> Tool_missing { searched = [ "(exec failed: exit 127)" ] }
  | Unix.WEXITED code ->
    if parse_trouble then Rejected_input { detail = tail_detail (stderr ^ "\n" ^ stdout) }
    else
      Tool_failed
        { reason = Printf.sprintf "exited with code %d" code; detail = tail_detail stderr }
  | Unix.WSIGNALED n | Unix.WSTOPPED n ->
    Tool_failed { reason = "killed by " ^ Runner.signal_name n; detail = tail_detail stderr }

(* Read both output pipes to EOF under an absolute deadline; kill on
   expiry. Reading concurrently (select) avoids the classic deadlock where
   the tool blocks writing a long counterexample while we block in
   waitpid. On timeout the *process group* is killed (the child was made a
   group leader at spawn) and draining stops at once — a grandchild the
   tool forked may still hold the pipe's write end, and waiting for its
   EOF would turn one hung helper into a hung driver. *)
let drain_process ~timeout pid out_fd err_fd =
  let deadline = Unix.gettimeofday () +. timeout in
  let out_buf = Buffer.create 1024 and err_buf = Buffer.create 1024 in
  let chunk = Bytes.create 65536 in
  let open_fds = ref [ (out_fd, out_buf); (err_fd, err_buf) ] in
  let timed_out = ref false in
  while !open_fds <> [] && not !timed_out do
    let left = deadline -. Unix.gettimeofday () in
    if left <= 0.0 then begin
      timed_out := true;
      (try Unix.kill (-pid) Sys.sigkill with Unix.Unix_error _ -> ());
      try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()
    end
    else begin
      let readable, _, _ =
        try Unix.select (List.map fst !open_fds) [] [] left
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      List.iter
        (fun fd ->
          match List.assoc_opt fd !open_fds with
          | None -> ()
          | Some buf -> (
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 ->
              Unix.close fd;
              open_fds := List.remove_assoc fd !open_fds
            | k -> Buffer.add_subbytes buf chunk 0 k
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | exception Unix.Unix_error _ ->
              Unix.close fd;
              open_fds := List.remove_assoc fd !open_fds))
        readable
    end
  done;
  List.iter (fun (fd, _) -> try Unix.close fd with Unix.Unix_error _ -> ()) !open_fds;
  let rec wait () =
    match Unix.waitpid [] pid with
    | _, status -> status
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
  in
  (wait (), Buffer.contents out_buf, Buffer.contents err_buf, !timed_out)

let run_file ?binary ?(timeout = 30.0) path =
  match find_binary ?binary () with
  | Error searched -> { verdict = Tool_missing { searched }; stdout = ""; stderr = "" }
  | Ok exe -> (
    Obs.with_span ~args:[ ("binary", exe) ] "nusmv.spawn" @@ fun () ->
    Obs.count "nusmv.runs" 1;
    let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
    let out_rd, out_wr = Unix.pipe () in
    let err_rd, err_wr = Unix.pipe () in
    (* fork + exec by hand (not create_process) so the child can become a
       process-group leader first: on timeout the whole group is killed,
       including any helper processes the tool spawned. *)
    let spawn () =
      match Unix.fork () with
      | 0 ->
        (* The whole child branch must end in _exit: an exception escaping
           here (a failed dup2, say) would fall into the parent's handler
           below and run the rest of the CLI a second time. *)
        (try
           (try ignore (Unix.setsid ()) with Unix.Unix_error _ -> ());
           Unix.dup2 devnull Unix.stdin;
           Unix.dup2 out_wr Unix.stdout;
           Unix.dup2 err_wr Unix.stderr;
           ignore (Unix.execvp exe [| exe; path |])
         with _ -> ());
        Unix._exit 127
      | pid -> pid
    in
    match spawn () with
    | exception exn ->
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ devnull; out_rd; out_wr; err_rd; err_wr ];
      {
        verdict = Tool_failed { reason = "failed to spawn"; detail = Printexc.to_string exn };
        stdout = "";
        stderr = "";
      }
    | pid ->
      Unix.close devnull;
      Unix.close out_wr;
      Unix.close err_wr;
      let status, stdout, stderr, timed_out = drain_process ~timeout pid out_rd err_rd in
      if timed_out then Obs.count "nusmv.timeouts" 1;
      let verdict =
        if timed_out then Tool_timeout { seconds = timeout }
        else classify_output ~status ~stdout ~stderr
      in
      { verdict; stdout; stderr })

let run_text ?binary ?timeout text =
  let path = Filename.temp_file "shelley" ".smv" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc text);
      run_file ?binary ?timeout path)

let pp_verdict fmt = function
  | Verified { specs } ->
    Format.fprintf fmt "verified (%d spec%s true)" specs (if specs = 1 then "" else "s")
  | Counterexample { failed } ->
    Format.fprintf fmt "counterexample (%d spec%s false)" (List.length failed)
      (if List.length failed = 1 then "" else "s")
  | Rejected_input { detail } -> Format.fprintf fmt "NuSMV rejected the model: %s" detail
  | Tool_missing { searched } ->
    Format.fprintf fmt "NuSMV binary not found (searched: %s)"
      (String.concat ", " searched)
  | Tool_timeout { seconds } -> Format.fprintf fmt "NuSMV timed out after %gs" seconds
  | Tool_failed { reason; detail } ->
    Format.fprintf fmt "NuSMV failed: %s%s" reason
      (if detail = "" then "" else " — " ^ detail)

let exit_code = function
  | Verified _ -> 0
  | Counterexample _ -> 1
  | Rejected_input _ -> 2
  | Tool_missing _ | Tool_timeout _ | Tool_failed _ -> 3
