(** Hardened driver for the external NuSMV model checker.

    The paper's Shelley "delegates the actual model checking to NuSMV"
    (§5); {!Nusmv} provides the translation, and this module actually runs
    the external binary on it — with the containment any external-solver
    driver needs: a wall-clock timeout with a kill, captured stdout/stderr,
    and classification of every way the tool can come back (verified,
    counterexample, input rejected, died, absent). The driver never raises
    on tool misbehavior: absence of the binary, a hang, or a crash are all
    ordinary {!verdict}s, so [shelley smv --run] degrades gracefully on
    machines without NuSMV installed.

    Verdict classification is a pure function over (exit status, stdout,
    stderr) — {!classify_output} — so it is unit-testable without the
    binary. *)

type verdict =
  | Verified of { specs : int }
      (** exit 0 and every [-- specification … is true] *)
  | Counterexample of { failed : string list }
      (** the [-- specification … is false] lines, verbatim *)
  | Rejected_input of { detail : string }
      (** NuSMV could not parse / type-check the model we emitted *)
  | Tool_missing of { searched : string list }
      (** no runnable binary; [searched] are the names/paths tried *)
  | Tool_timeout of { seconds : float }  (** killed at the deadline *)
  | Tool_failed of {
      reason : string;  (** e.g. ["exited with code 1"], ["killed by SIGSEGV"] *)
      detail : string;  (** trailing stderr, for the diagnostic *)
    }

type run = {
  verdict : verdict;
  stdout : string;
  stderr : string;
}

val default_binaries : string list
(** [["NuSMV"; "nusmv"]] — the capitalization NuSMV ships under, then the
    common distro-package spelling. *)

val find_binary : ?binary:string -> unit -> (string, string list) result
(** Resolve the NuSMV executable: [binary] verbatim when it contains a
    [/], otherwise a PATH search over [binary] (or {!default_binaries}
    when omitted). [Error searched] lists what was tried. *)

val classify_output :
  status:Unix.process_status -> stdout:string -> stderr:string -> verdict
(** Pure classification of a finished run (never {!Tool_missing} /
    {!Tool_timeout}; those are decided by the spawn/deadline layer). *)

val run_file : ?binary:string -> ?timeout:float -> string -> run
(** Run NuSMV on a model file. [timeout] (default 30s) is enforced with
    SIGKILL; stdout/stderr are captured concurrently (no pipe deadlock on
    chatty counterexamples). Never raises on tool failure. *)

val run_text : ?binary:string -> ?timeout:float -> string -> run
(** {!run_file} on a temp file holding the given model text; the temp file
    is always removed. *)

val pp_verdict : Format.formatter -> verdict -> unit
(** One-line human rendering, e.g.
    ["verified (3 specs true)"] or
    ["NuSMV binary not found (searched: NuSMV, nusmv)"]. *)

val exit_code : verdict -> int
(** The [shelley smv --run] contract: 0 {!Verified}, 1 {!Counterexample},
    2 {!Rejected_input}, 3 {!Tool_missing} / {!Tool_timeout} /
    {!Tool_failed}. *)
