(** Translation of Shelley automata and claims to NuSMV.

    The Shelley of the paper "delegates the actual model checking to NuSMV,
    by implementing a translation from a nondeterministic finite automaton
    (NFA) into a NuSMV model" (§5). Our pipeline checks natively, but this
    module provides that translation so the emitted models can be fed to an
    external NuSMV for cross-validation.

    Encoding: finite traces over an ω-engine, the standard trick the paper
    alludes to — one [event] input variable ranged over the alphabet plus a
    distinguished [_end] event, a [state] variable ranged over automaton
    state *sets* is avoided by first determinizing, and an LTLSPEC of shape
    [G (state = accepting-sink-detection)]. Acceptance of the finite word
    [w] corresponds to the DFA state after [w] being accepting when the
    first [_end] is read; claims φ become [LTLSPEC] over the same event
    variable. *)

val module_of_dfa : ?universality_spec:bool -> name:string -> Dfa.t -> string
(** A NuSMV [MODULE main] whose [event] variable ranges over the DFA
    alphabet plus [_end]; the boolean [accept] holds exactly when the run so
    far is accepted. With [universality_spec] (default [true]) the module
    ends with [LTLSPEC G (event = e_end -> accept)] — a *descriptive* spec
    that holds only for universal languages; pass [false] when the emission
    is meant to be fed to a real NuSMV run whose verdict matters. *)

val module_of_nfa : ?universality_spec:bool -> name:string -> Nfa.t -> string
(** Determinizes first, then {!module_of_dfa}. *)

val ltlspec_of_claim : Ltlf.t -> string
(** The LTLf claim compiled as a NuSMV [LTLSPEC] line over the [event]
    variable, using the standard finite-trace embedding: the formula is
    rewritten over the alive-prefix (before the first [_end]). Unguarded:
    quantifies over {e every} event sequence. *)

val ltlspec_of_claim_checked : Ltlf.t -> string
(** The claim guarded by "the path plays a finite word the automaton
    accepts" — the embedding whose NuSMV verdict matches the native
    checker's claim verdict (claims are properties of valid usages only).
    Used by {!model_of_class}; the one caveat is the empty usage, which the
    ω-embedding cannot distinguish from an immediately-ended word. *)

val model_of_class : Model.t -> string
(** Full NuSMV file for a composite class: the expanded automaton module
    (without the universality spec) and one {!ltlspec_of_claim_checked} per
    claim — the file [shelley smv --run] executes. *)

val sanitize : string -> string
(** Make an event name a valid NuSMV identifier: dots become [__], other
    illegal characters become [_], and a result that is empty, starts with
    a digit, or collides with a NuSMV reserved word (e.g. [case], [next],
    [MODULE], [G]) is prefixed with [_]. Exposed for tests — this is a
    stable contract the external driver relies on. *)
