(* A ledger entry tracks cumulative fuel drawn against one named resource by
   every counter created from the same [t] — observability accounting only,
   never consulted for enforcement (each construction's own [fuel] does
   that). *)
type entry = {
  e_limit : int;
  mutable e_spent : int;
}

type ledger = (string, entry) Hashtbl.t

type t = {
  max_states : int;
  max_configs : int;
  max_regex_size : int;
  deadline : float option;
  ledger : ledger;
}

exception Budget_exceeded of { resource : string; limit : int }

let () =
  Printexc.register_printer (function
    | Budget_exceeded { resource; limit } ->
      Some (Printf.sprintf "Limits.Budget_exceeded(%s, limit %d)" resource limit)
    | _ -> None)

let create ~max_states ~max_configs ~max_regex_size ~deadline =
  { max_states; max_configs; max_regex_size; deadline; ledger = Hashtbl.create 8 }

let default =
  create ~max_states:50_000 ~max_configs:1_000_000 ~max_regex_size:500_000 ~deadline:None

let unlimited =
  create ~max_states:max_int ~max_configs:max_int ~max_regex_size:max_int ~deadline:None

let make ?(max_states = default.max_states) ?(max_configs = default.max_configs)
    ?(max_regex_size = default.max_regex_size) ?deadline () =
  create ~max_states ~max_configs ~max_regex_size ~deadline

(* /10 keeps the retry's fuel proportional to the configured budget, so a
   user-raised budget still degrades rather than resetting to a constant.
   Fresh ledger: the retry is a fresh attempt and its fuel accounting must
   answer to the reduced limits. *)
let reduced t =
  create
    ~max_states:(max 1 (t.max_states / 10))
    ~max_configs:(max 1 (t.max_configs / 10))
    ~max_regex_size:(max 1 (t.max_regex_size / 10))
    ~deadline:t.deadline

let exceeded ~resource ~limit = raise (Budget_exceeded { resource; limit })

let entry_of t ~resource ~limit =
  match Hashtbl.find_opt t.ledger resource with
  | Some e -> e
  | None ->
    let e = { e_limit = limit; e_spent = 0 } in
    Hashtbl.add t.ledger resource e;
    e

let check ?within ~resource ~limit n =
  if n > limit then exceeded ~resource ~limit;
  match within with
  | None -> ()
  | Some t ->
    (* Size-style checks are high-water marks, not countdowns: record the
       largest size that passed. *)
    let e = entry_of t ~resource ~limit in
    e.e_spent <- max e.e_spent n

type fuel = {
  mutable remaining : int;
  resource : string;
  limit : int;
  entry : entry option;
}

let fuel ?within ~resource limit =
  let entry = Option.map (fun t -> entry_of t ~resource ~limit) within in
  { remaining = limit; resource; limit; entry }

let spend f =
  if f.remaining <= 0 then exceeded ~resource:f.resource ~limit:f.limit;
  f.remaining <- f.remaining - 1;
  match f.entry with
  | None -> ()
  | Some e -> e.e_spent <- e.e_spent + 1

let snapshot t =
  Hashtbl.fold (fun resource e acc -> (resource, e.e_limit - e.e_spent) :: acc) t.ledger []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let consumed t ~before =
  List.filter_map
    (fun (resource, remaining_after) ->
      let remaining_before =
        match List.assoc_opt resource before with
        | Some r -> r
        | None -> (Hashtbl.find t.ledger resource).e_limit
      in
      let d = remaining_before - remaining_after in
      if d > 0 then Some (resource, d) else None)
    (snapshot t)

let describe = function
  | Budget_exceeded { resource; limit } ->
    Some (Printf.sprintf "%s budget exceeded (limit %d)" resource limit)
  | _ -> None
