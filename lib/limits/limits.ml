type t = {
  max_states : int;
  max_configs : int;
  max_regex_size : int;
  deadline : float option;
}

exception Budget_exceeded of { resource : string; limit : int }

let () =
  Printexc.register_printer (function
    | Budget_exceeded { resource; limit } ->
      Some (Printf.sprintf "Limits.Budget_exceeded(%s, limit %d)" resource limit)
    | _ -> None)

let default =
  { max_states = 50_000; max_configs = 1_000_000; max_regex_size = 500_000; deadline = None }

let unlimited =
  { max_states = max_int; max_configs = max_int; max_regex_size = max_int; deadline = None }

let make ?(max_states = default.max_states) ?(max_configs = default.max_configs)
    ?(max_regex_size = default.max_regex_size) ?deadline () =
  { max_states; max_configs; max_regex_size; deadline }

(* /10 keeps the retry's fuel proportional to the configured budget, so a
   user-raised budget still degrades rather than resetting to a constant. *)
let reduced t =
  {
    max_states = max 1 (t.max_states / 10);
    max_configs = max 1 (t.max_configs / 10);
    max_regex_size = max 1 (t.max_regex_size / 10);
    deadline = t.deadline;
  }

let exceeded ~resource ~limit = raise (Budget_exceeded { resource; limit })
let check ~resource ~limit n = if n > limit then exceeded ~resource ~limit

type fuel = {
  mutable remaining : int;
  resource : string;
  limit : int;
}

let fuel ~resource limit = { remaining = limit; resource; limit }

let spend f =
  if f.remaining <= 0 then exceeded ~resource:f.resource ~limit:f.limit;
  f.remaining <- f.remaining - 1

let describe = function
  | Budget_exceeded { resource; limit } ->
    Some (Printf.sprintf "%s budget exceeded (limit %d)" resource limit)
  | _ -> None
