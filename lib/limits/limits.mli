(** Deterministic resource budgets for the analysis constructions.

    Every automaton construction in the pipeline — subset construction,
    on-the-fly language products, LTLf progression — can blow up
    exponentially on adversarial input. A budget turns that blowup into a
    typed, catchable {!Budget_exceeded} instead of an apparent hang or an
    out-of-memory kill. Budgets are *fuel counters* (counts of discovered
    states / explored configurations / regex nodes), not wall-clock
    timeouts, so exhaustion is deterministic and reproducible.

    The one exception is {!field-deadline}: a wall-clock bound per
    verification *unit* (a whole file or class), enforced not by the checks
    themselves but by the fork-based worker pool ({!Runner}), which kills
    the unit's worker process when the deadline passes. Fuel bounds a
    construction from the inside; the deadline bounds a unit from the
    outside, catching whatever fuel cannot see (pathological GC churn,
    runaway native code, an unbounded loop outside any budgeted
    construction).

    The pipeline ({!Pipeline.verify_program}) runs every check behind an
    exception barrier that converts [Budget_exceeded] into a structured
    [Resource_limit] report, so one pathological check degrades gracefully
    while the others still run. *)

type ledger
(** Cumulative per-resource fuel accounting for one budget value — pure
    observability (it feeds {!snapshot}); enforcement always happens in the
    individual {!fuel} counters. *)

type t = {
  max_states : int;
      (** Cap on discovered automaton states: subset-construction
          configurations in {!Determinize.determinize} and progression
          obligations in {!Progression.to_dfa}. *)
  max_configs : int;
      (** Cap on explored product configurations in language comparisons
          ({!Language.inclusion_counterexample}, {!Language.intersect}). *)
  max_regex_size : int;
      (** Cap on the AST size of behavior regexes fed to automaton
          constructions (guards Glushkov blowup in {!Usage.expanded_nfa}). *)
  deadline : float option;
      (** Wall-clock seconds granted to one verification unit before its
          worker process is killed ({!Runner}); [None] = no deadline. Unlike
          the fuel fields this is inherently nondeterministic — it exists to
          isolate hangs the fuel counters cannot reach. *)
  ledger : ledger;
      (** Tallies fuel drawn by every counter created [~within] this budget,
          keyed by resource name. Mutable and shared by design: {!snapshot}
          diffs taken around a pipeline phase yield fuel-consumed-per-phase
          deltas for the observability layer. *)
}

exception Budget_exceeded of { resource : string; limit : int }
(** [resource] names what ran out (e.g. ["determinization states"]);
    [limit] is the configured cap. *)

val default : t
(** [max_states = 50_000], [max_configs = 1_000_000],
    [max_regex_size = 500_000], [deadline = None] — far above anything a
    realistic model needs, low enough to bound runaway constructions within
    seconds. *)

val unlimited : t
(** Every fuel field [max_int], no deadline; opt out of budgeting
    entirely. *)

val make :
  ?max_states:int ->
  ?max_configs:int ->
  ?max_regex_size:int ->
  ?deadline:float ->
  unit ->
  t
(** Missing fields default to {!default}'s values. *)

val reduced : t -> t
(** The degraded budget used for the retry after a unit times out or
    crashes: every fuel field divided by 10 (floor 1), same deadline, fresh
    ledger. The intent is that a unit whose first attempt blew the wall
    clock exhausts its (deterministic) fuel well before the deadline on the
    second attempt, so the user sees a reproducible [Resource_limit] report
    naming the hungry construction instead of a bare timeout. *)

val exceeded : resource:string -> limit:int -> 'a
(** @raise Budget_exceeded always. *)

val check : ?within:t -> resource:string -> limit:int -> int -> unit
(** [check ~resource ~limit n] raises iff [n > limit]. With [?within], a
    passing check records [n] in the budget's ledger as a high-water mark
    (sizes are not countdowns). *)

(** {1 Fuel counters}

    A [fuel] is a mutable countdown created from one budget field; call
    {!spend} once per unit of work (state interned, configuration pushed). *)

type fuel

val fuel : ?within:t -> resource:string -> int -> fuel
(** With [?within], every {!spend} also tallies one unit against the
    budget's ledger under [resource], feeding {!snapshot}. *)

val spend : fuel -> unit
(** @raise Budget_exceeded on the call after the fuel reaches zero. *)

(** {1 Fuel observability} *)

val snapshot : t -> (string * int) list
(** Remaining fuel per resource name, sorted — [limit - total spent] over
    every counter created [~within] this budget. Monotonically
    non-increasing per key over time. A resource appears once the first
    counter for it is created; the value may go negative when several
    constructions each draw from the same budget field (each construction
    is individually capped; the ledger records the cumulative draw). *)

val consumed : t -> before:(string * int) list -> (string * int) list
(** [consumed t ~before] diffs the current {!snapshot} against an earlier
    one: positive per-resource fuel consumption since [before] (resources
    first touched after [before] count from their full limit). Entries with
    zero consumption are omitted. *)

val describe : exn -> string option
(** Human-readable rendering of {!Budget_exceeded}; [None] for other
    exceptions. *)
