(* The shelley command-line tool: verify annotated MicroPython sources,
   inspect extracted models, render diagrams, and emit NuSMV translations.

   Subcommands:
     shelley check  FILE... [-j N] [--timeout S]   run the verification pipeline
     shelley lint   FILE... [--format text|json|sarif]   static analysis only
     shelley model  FILE [-c CLASS]    print extracted model(s)
     shelley viz    FILE [-c CLASS]    DOT diagram (--deps for the §3.1 graph)
     shelley nusmv  FILE -c CLASS      NuSMV translation (emission only)
     shelley smv    FILE [--run] [--cross-check]   NuSMV translation + driver
     shelley trace  FILE -c CLASS TR   check an operation trace against a model
     shelley infer  EXPR               behavior inference of an IR program

   Exit codes of 'shelley check' (the max across all FILEs):
     0  every file verified
     1  a verification failure (usage / claim / invocation / structural)
     2  a file could not be read or parsed cleanly
     3  a resource budget was exceeded — deterministic fuel
        (--max-states / --fuel), the per-file wall-clock deadline
        (--timeout), or a worker process that died checking the file *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Strict load, for the single-file inspection subcommands (model, viz, …):
   an unreadable or syntactically broken file is a hard error. 'check' has
   its own tolerant loop below. *)
let load ?extra_env path =
  match read_file path with
  | exception Sys_error msg -> Error msg
  | source -> (
    let result = Pipeline.verify_source ?extra_env source in
    match List.filter Report.is_syntax_error result.Pipeline.reports with
    | [] -> Ok result
    | d :: _ -> Error (Printf.sprintf "%s: %s" path (Report.to_string d)))

let select_models result = function
  | None -> Ok result.Pipeline.models
  | Some name -> (
    match Pipeline.find_model result name with
    | Some model -> Ok [ model ]
    | None ->
      Error
        (Printf.sprintf "class %s not found (classes: %s)" name
           (String.concat ", "
              (List.map (fun (m : Model.t) -> m.Model.name) result.Pipeline.models))))

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline msg;
    exit 2

(* Shared observability arguments: check and lint take the same three
   sinks, and both keep their primary stdout stream byte-identical whether
   the recorder is on or off. *)
let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print a per-phase timing and counter summary to standard error \
           after the run. Report output on standard output is unchanged. \
           Set SHELLEY_OBS_FAKE_CLOCK=1 to replace wall-clock readings \
           with a deterministic logical clock (for tests).")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write run metrics (per-unit totals, per-phase aggregates, all \
           counters) as JSON (schema shelley.metrics/1) to $(docv).")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event file to $(docv): one timeline lane \
           per worker process, loadable in chrome://tracing or Perfetto.")

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let flush_observability ~stats ~metrics_out ~trace_out =
  Option.iter (fun path -> write_file path (Obs.render_metrics_json ())) metrics_out;
  Option.iter (fun path -> write_file path (Obs.render_chrome_trace ())) trace_out;
  if stats then Obs.render_stats Format.err_formatter

(* Shared --cache argument: check and lint both accept a persistent result
   cache directory. An unusable directory degrades to an uncached run with a
   warning on stderr — caching is an optimization, never a precondition. *)
let cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"DIR"
        ~doc:
          "Reuse per-file results from the content-addressed cache in \
           $(docv) (created if missing). A file whose source, budgets and \
           configuration are unchanged replays its stored result instead of \
           being re-verified; any corrupted or stale entry is recomputed. \
           See 'shelley cache' for stats/gc/clear.")

let open_cache = function
  | None -> None
  | Some dir -> (
    match Cache.open_dir dir with
    | Ok c -> Some c
    | Error msg ->
      Printf.eprintf "warning: %s; continuing without a result cache\n%!" msg;
      None)

(* --- check ----------------------------------------------------------------- *)

let check_cmd =
  (* Deliberately [string], not [file]: cmdliner's [file] converter rejects a
     missing path during argument parsing (exit 124), aborting the whole run
     before any file is checked. 'check' promises per-file isolation, so an
     unreadable path must be reported in the loop (exit 2) with the other
     files still verified. *)
  let files = Arg.(non_empty & pos_all string [] & info [] ~docv:"FILE") in
  let warnings =
    Arg.(value & flag & info [ "warnings"; "w" ] ~doc:"Also print warnings and infos.")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ] ~doc:"Narrate usage counterexamples step by step.")
  in
  let using =
    Arg.(
      value
      & opt_all file []
      & info [ "using" ] ~docv:"MODEL.shelley"
          ~doc:"Pre-verified .shelley model files resolving substrate classes \
                not defined in the sources (separate verification). Repeatable.")
  in
  let max_states =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-states" ] ~docv:"N"
          ~doc:"Budget for automaton states (determinization, progression, \
                tableau). Exceeding it reports RESOURCE LIMIT EXCEEDED for \
                the affected check and exits 3.")
  in
  let fuel =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuel" ] ~docv:"N"
          ~doc:"Budget for product configurations explored by the language \
                checks. Exceeding it reports RESOURCE LIMIT EXCEEDED for the \
                affected check and exits 3.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Check files in N worker processes. Each file runs isolated in \
                its own fork; results are printed in input order, so the \
                output is byte-identical to a sequential run.")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Wall-clock deadline per file. A file whose worker outlives it \
                is killed, retried once under a reduced fuel budget, and \
                finally reported as WALL-CLOCK DEADLINE EXCEEDED (exit 3) \
                while every other file still completes.")
  in
  let fault_injection =
    (* Test seam, deliberately opt-in: without this flag the checker ignores
       the SHELLEY_FAULT variable entirely, so an inherited/stale variable
       cannot sabotage a real run. *)
    Arg.(
      value & flag
      & info [ "fault-injection" ]
          ~doc:
            "Testing only: arm the SHELLEY_FAULT fault-injection hook \
             (hang/crash workers by path substring) used by the \
             fault-isolation test suite.")
  in
  let lint =
    Arg.(
      value & flag
      & info [ "lint" ]
          ~doc:
            "Also run the static-analysis pass (see 'shelley lint') and \
             append its semantic findings (SY101–SY108, …) to each file's \
             report block. An error-severity finding fails the run (exit 1). \
             Without this flag the output is exactly the classic check \
             output.")
  in
  let run files warnings explain lint using max_states fuel jobs timeout fault_injection
      cache_dir stats metrics_out trace_out =
    Checker.fault_injection := fault_injection;
    (* Validate --using up front: a broken model file is a usage error (exit
       2, one message), not N per-file failures. The workers rebuild the
       environment themselves from the validated paths. *)
    (match Model_io.env_of_files using with
    | Ok _ -> ()
    | Error msg ->
      prerr_endline msg;
      exit 2);
    let cache = open_cache cache_dir in
    (* The --using models shape verdicts, so their contents are key
       material: a re-exported substrate model invalidates every entry that
       was checked against the old one. env_of_files just read these files
       successfully; a racing deletion still only disables caching. *)
    let cache_extra =
      List.filter_map
        (fun path ->
          match Digest.file path with
          | d -> Some (Digest.to_hex d)
          | exception Sys_error _ -> None)
        using
    in
    let limits =
      let d = Limits.default in
      Limits.make
        ~max_states:(Option.value max_states ~default:d.Limits.max_states)
        ~max_configs:(Option.value fuel ~default:d.Limits.max_configs)
        ?deadline:timeout ()
    in
    (* Observability is strictly additive: the recorder is enabled only when
       a sink was requested, stats go to stderr and metrics/trace to files,
       so the report stream on stdout stays byte-identical either way. *)
    let observe = stats || metrics_out <> None || trace_out <> None in
    if observe then Obs.enable ();
    (* One file never aborts the others: each gets its own exit code
       (0 verified, 1 verification failure, 2 unreadable/syntax error,
       3 resource limit / deadline / crashed worker) and the process exits
       with the maximum. Checker renders per-file blocks in the workers and
       replays them here in input order. *)
    let verdicts =
      Checker.check_files ~jobs ~limits ~warnings ~explain ~lint ~using ?cache
        ~cache_extra files
    in
    List.iter (fun (v : Checker.verdict) -> print_string v.Checker.output) verdicts;
    if observe then flush_observability ~stats ~metrics_out ~trace_out;
    let code = Checker.exit_code verdicts in
    if code = 0 then print_endline "OK: specification verified" else exit code
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Verify annotated MicroPython sources."
       ~exits:
         [
           Cmd.Exit.info 0 ~doc:"every file verified.";
           Cmd.Exit.info 1 ~doc:"a verification failure was reported.";
           Cmd.Exit.info 2 ~doc:"a file could not be read or parsed cleanly.";
           Cmd.Exit.info 3
             ~doc:
               "a resource budget was exceeded: deterministic fuel, the \
                per-file wall-clock deadline, or a worker crash.";
         ])
    Term.(
      const run $ files $ warnings $ explain $ lint $ using $ max_states $ fuel $ jobs
      $ timeout $ fault_injection $ cache_arg $ stats_arg $ metrics_out_arg
      $ trace_out_arg)

(* --- lint ------------------------------------------------------------------ *)

let lint_cmd =
  (* [string], not [file], for the same reason as 'check': an unreadable
     path must become a per-file SY011 diagnostic (exit 2), not an argument
     parse error that aborts the other files. *)
  let files = Arg.(non_empty & pos_all string [] & info [] ~docv:"FILE") in
  let format =
    Arg.(
      value & opt string "text"
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "Output format: $(b,text) (one 'file:line: severity CODE \
             [Class]: message' line per finding plus a summary), $(b,json) \
             (the shelley.lint/1 envelope, findings and suppressions per \
             file), or $(b,sarif) (SARIF 2.1.0, for code-scanning upload).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Lint files in N worker processes. Results are emitted in \
                input order, so the output is byte-identical to a \
                sequential run.")
  in
  let max_states =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-states" ] ~docv:"N"
          ~doc:"Budget for automaton states built by the semantic rules. A \
                rule that exceeds it reports SY090 for that class (exit 3) \
                while every other rule still runs.")
  in
  let fuel =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuel" ] ~docv:"N"
          ~doc:"Budget for product configurations explored by the \
                language-level rules (SY101/SY104). Exceeding it reports \
                SY090 for the affected class (exit 3).")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Wall-clock deadline per file; a file whose worker outlives \
                it is retried once under a reduced budget and finally \
                reported as one SY090 finding while every other file still \
                completes.")
  in
  let max_behavior_size =
    Arg.(
      value
      & opt int Lint_semantic.default_thresholds.Lint_semantic.max_behavior_size
      & info [ "max-behavior-size" ] ~docv:"N"
          ~doc:"SY108 threshold: flag operations whose inferred behavior \
                regex has more than N nodes.")
  in
  let max_star_height =
    Arg.(
      value
      & opt int Lint_semantic.default_thresholds.Lint_semantic.max_star_height
      & info [ "max-star-height" ] ~docv:"N"
          ~doc:"SY108 threshold: flag operations whose behavior regex nests \
                loops deeper than N.")
  in
  let run files format jobs max_states fuel timeout max_behavior_size max_star_height
      cache_dir stats metrics_out trace_out =
    let format =
      match Lint_render.format_of_string format with
      | Ok f -> f
      | Error msg ->
        prerr_endline msg;
        exit 2
    in
    let limits =
      let d = Limits.default in
      Limits.make
        ~max_states:(Option.value max_states ~default:d.Limits.max_states)
        ~max_configs:(Option.value fuel ~default:d.Limits.max_configs)
        ?deadline:timeout ()
    in
    let thresholds =
      { Lint_semantic.max_behavior_size; max_star_height }
    in
    let observe = stats || metrics_out <> None || trace_out <> None in
    if observe then Obs.enable ();
    let cache = open_cache cache_dir in
    let results = Checker.lint_files ~jobs ~limits ~thresholds ?cache files in
    print_string (Lint_render.render format results);
    if observe then flush_observability ~stats ~metrics_out ~trace_out;
    let code = Lint.exit_code results in
    if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static analysis of annotated MicroPython sources: structural \
          checks (SY001–SY007) plus semantic rules built on the \
          verification machinery (dead operations, vacuous / unsatisfiable \
          / redundant claims, unused or escaping subsystems, unreachable \
          code, behavior blowup — SY101–SY108). Findings carry stable rule \
          codes and can be silenced inline with '# shelley: \
          disable=SY101,...' comments (end-of-line for that line, a \
          standalone comment for the next line)."
       ~exits:
         [
           Cmd.Exit.info 0 ~doc:"no error-severity finding in any file.";
           Cmd.Exit.info 1 ~doc:"an error-severity finding is active.";
           Cmd.Exit.info 2 ~doc:"a file could not be read or parsed cleanly.";
           Cmd.Exit.info 3
             ~doc:
               "a lint rule exceeded its resource budget (SY090), or a \
                file's worker outlived the wall-clock deadline.";
         ])
    Term.(
      const run $ files $ format $ jobs $ max_states $ fuel $ timeout
      $ max_behavior_size $ max_star_height $ cache_arg $ stats_arg
      $ metrics_out_arg $ trace_out_arg)

(* --- model ----------------------------------------------------------------- *)

let class_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "c"; "class" ] ~docv:"CLASS" ~doc:"Restrict to one class.")

let model_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print model metrics instead of the model.")
  in
  let run file cls stats =
    let result = or_die (load file) in
    let models = or_die (select_models result cls) in
    if stats then begin
      print_endline Stats.header;
      List.iter (fun m -> Format.printf "%a@." Stats.pp_row (Stats.of_model m)) models
    end
    else List.iter (fun m -> Format.printf "%a@." Model.pp m) models
  in
  Cmd.v
    (Cmd.info "model" ~doc:"Print the extracted Shelley model(s).")
    Term.(const run $ file $ class_arg $ stats)

(* --- viz ------------------------------------------------------------------- *)

let viz_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let deps =
    Arg.(
      value & flag
      & info [ "deps" ] ~doc:"Render the §3.1 dependency graph instead of the usage automaton.")
  in
  let expanded =
    Arg.(
      value & flag
      & info [ "expanded" ]
          ~doc:"Render the expanded composite automaton (operation entries + subsystem calls).")
  in
  let behavior =
    Arg.(
      value
      & opt (some string) None
      & info [ "behavior" ] ~docv:"OP"
          ~doc:"Render the control-flow behavior of one operation instead.")
  in
  let run file cls deps expanded behavior =
    let result = or_die (load file) in
    let models = or_die (select_models result cls) in
    List.iter
      (fun (m : Model.t) ->
        let dot =
          match behavior with
          | Some op_name -> (
            match Model.find_op m op_name with
            | Some op -> Dot.of_operation op
            | None ->
              prerr_endline
                (Printf.sprintf "class %s has no operation %s" m.Model.name op_name);
              exit 2)
          | None ->
            if deps then Dot.of_depgraph m
            else if expanded then
              Dot.of_nfa ~name:m.Model.name (Nfa.trim (Usage.expanded_nfa m))
            else Dot.of_model m
        in
        print_string dot)
      models
  in
  Cmd.v
    (Cmd.info "viz" ~doc:"Emit Graphviz (DOT) diagrams of models.")
    Term.(const run $ file $ class_arg $ deps $ expanded $ behavior)

(* --- nusmv ----------------------------------------------------------------- *)

let nusmv_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run file cls =
    let result = or_die (load file) in
    let models = or_die (select_models result cls) in
    List.iter (fun m -> print_string (Nusmv.model_of_class m)) models
  in
  Cmd.v
    (Cmd.info "nusmv"
       ~doc:
         "Translate models to NuSMV (the paper's §5 back end; emission only — \
          see 'smv' for running the external checker).")
    Term.(const run $ file $ class_arg)

(* --- smv ------------------------------------------------------------------- *)

let smv_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let do_run =
    Arg.(
      value & flag
      & info [ "run" ]
          ~doc:"Actually execute the external NuSMV binary on the emitted \
                model(s) and classify its verdict instead of printing the \
                translation.")
  in
  let cross =
    Arg.(
      value & flag
      & info [ "cross-check" ]
          ~doc:"With --run: compare the NuSMV claim verdict against the \
                native checker's and report any divergence (exit 1).")
  in
  let binary =
    Arg.(
      value
      & opt (some string) None
      & info [ "binary" ] ~docv:"PATH"
          ~doc:"NuSMV executable to use (default: search PATH for NuSMV, \
                then nusmv).")
  in
  let timeout =
    Arg.(
      value & opt float 30.0
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Wall-clock deadline for one NuSMV run; the process is killed \
                on expiry and the verdict is classified as a timeout (exit 3).")
  in
  let run file cls do_run cross binary timeout =
    let result = or_die (load file) in
    let models = or_die (select_models result cls) in
    if (not do_run) && not cross then
      List.iter (fun m -> print_string (Nusmv.model_of_class m)) models
    else begin
      (* The native claim verdict per class: any FAIL TO MEET REQUIREMENT
         report. This is the dimension §5 delegates to NuSMV, so it is the
         one --cross-check compares. *)
      let native_claims_ok name =
        not
          (List.exists
             (function
               | Report.Requirement_failure { class_name; _ } ->
                 String.equal class_name name
               | _ -> false)
             result.Pipeline.reports)
      in
      let code_of_model (m : Model.t) =
        let r = Nusmv_driver.run_text ?binary ~timeout (Nusmv.model_of_class m) in
        Format.printf "== %s ==@." m.Model.name;
        Format.printf "NuSMV: %a@." Nusmv_driver.pp_verdict r.Nusmv_driver.verdict;
        let code = Nusmv_driver.exit_code r.Nusmv_driver.verdict in
        if not cross then code
        else begin
          let native_ok = native_claims_ok m.Model.name in
          Format.printf "native claims: %s@."
            (if native_ok then "verified" else "failed");
          match r.Nusmv_driver.verdict with
          | Nusmv_driver.Verified _ | Nusmv_driver.Counterexample _ ->
            let nusmv_ok =
              match r.Nusmv_driver.verdict with
              | Nusmv_driver.Verified _ -> true
              | _ -> false
            in
            if Bool.equal nusmv_ok native_ok then begin
              Format.printf "cross-check: agreement@.";
              code
            end
            else begin
              Format.printf "cross-check: DIVERGENCE (native=%s, NuSMV=%s)@."
                (if native_ok then "verified" else "failed")
                (if nusmv_ok then "verified" else "failed");
              max code 1
            end
          | _ ->
            Format.printf "cross-check: skipped (no NuSMV verdict)@.";
            code
        end
      in
      let code = List.fold_left (fun acc m -> max acc (code_of_model m)) 0 models in
      if code <> 0 then exit code
    end
  in
  Cmd.v
    (Cmd.info "smv"
       ~doc:
         "NuSMV back end: emit the translation, or with --run execute the \
          external NuSMV on it (timeout-killed, output-classified), \
          optionally cross-checking its claim verdicts against the native \
          checker."
       ~exits:
         [
           Cmd.Exit.info 0 ~doc:"emission only, or NuSMV verified every claim.";
           Cmd.Exit.info 1 ~doc:"NuSMV reported a counterexample, or --cross-check found a divergence.";
           Cmd.Exit.info 2 ~doc:"the input could not be loaded, or NuSMV rejected the emitted model.";
           Cmd.Exit.info 3 ~doc:"the NuSMV binary is missing, timed out, or crashed.";
         ])
    Term.(const run $ file $ class_arg $ do_run $ cross $ binary $ timeout)

(* --- trace ----------------------------------------------------------------- *)

let trace_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let cls =
    Arg.(
      required
      & opt (some string) None
      & info [ "c"; "class" ] ~docv:"CLASS" ~doc:"Class whose usage language to check.")
  in
  let trace_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"TRACE" ~doc:"Comma-separated operation names, e.g. 'test,open,close'.")
  in
  let run file cls trace_text =
    let result = or_die (load file) in
    let models = or_die (select_models result (Some cls)) in
    let model = List.hd models in
    let ops =
      String.split_on_char ',' trace_text
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    let nfa = Depgraph.usage_nfa model in
    let trace = Trace.of_names ops in
    if Nfa.accepts nfa trace then
      Format.printf "VALID: %a is a complete usage of %s@." Trace.pp trace model.Model.name
    else begin
      Format.printf "INVALID: %a is not a complete usage of %s@." Trace.pp trace
        model.Model.name;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Check an operation trace against a class usage language.")
    Term.(const run $ file $ cls $ trace_arg)

(* --- infer ----------------------------------------------------------------- *)

let infer_cmd =
  let doc = "Run the paper's behavior inference on the bundled example programs." in
  let name_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:"Corpus program name (omit to list them).")
  in
  let run name =
    match name with
    | None ->
      List.iter
        (fun (name, p) -> Format.printf "%-28s %a@." name Prog.pp p)
        Ir_examples.corpus
    | Some name -> (
      match Ir_examples.find name with
      | p ->
        let d = Infer.denote p in
        Format.printf "program:   %a@." Prog.pp p;
        Format.printf "denote:    %a@." Infer.pp_denotation d;
        Format.printf "infer:     %a@." Regex.pp (Infer.infer p)
      | exception Not_found ->
        prerr_endline ("unknown program " ^ name);
        exit 2)
  in
  Cmd.v (Cmd.info "infer" ~doc) Term.(const run $ name_arg)

(* --- sample ---------------------------------------------------------------- *)

let sample_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let cls =
    Arg.(
      required
      & opt (some string) None
      & info [ "c"; "class" ] ~docv:"CLASS" ~doc:"Class to sample usages of.")
  in
  let count =
    Arg.(value & opt int 5 & info [ "n"; "count" ] ~docv:"N" ~doc:"Number of samples.")
  in
  let length =
    Arg.(value & opt int 8 & info [ "l"; "length" ] ~docv:"LEN" ~doc:"Target trace length.")
  in
  let seed =
    Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")
  in
  let run file cls count length seed =
    let result = or_die (load file) in
    let models = or_die (select_models result (Some cls)) in
    let model = List.hd models in
    let state =
      match seed with
      | Some s -> Random.State.make [| s |]
      | None -> Random.State.make_self_init ()
    in
    let samples =
      Sample.many ~state ~target_len:length ~count (Depgraph.usage_nfa model)
    in
    if samples = [] then begin
      prerr_endline "the class has no valid usage at all";
      exit 1
    end;
    List.iter
      (fun trace ->
        if trace = [] then print_endline "(empty usage)"
        else Format.printf "%a@." Trace.pp trace)
      samples
  in
  Cmd.v
    (Cmd.info "sample" ~doc:"Generate random valid usage traces of a class.")
    Term.(const run $ file $ cls $ count $ length $ seed)

(* --- monitor --------------------------------------------------------------- *)

let monitor_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let cls =
    Arg.(
      required
      & opt (some string) None
      & info [ "c"; "class" ] ~docv:"CLASS" ~doc:"Class whose protocol to monitor.")
  in
  let trace_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"TRACE" ~doc:"Comma-separated operations to feed the monitor.")
  in
  let run file cls trace_text =
    let result = or_die (load file) in
    let models = or_die (select_models result (Some cls)) in
    let model = List.hd models in
    let ops =
      String.split_on_char ',' trace_text
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    let rec feed monitor = function
      | [] ->
        Format.printf "%a@." Monitor.pp monitor;
        if Monitor.may_stop monitor then print_endline "OK: legal stopping point"
        else begin
          print_endline "INCOMPLETE: stopping here violates the protocol";
          exit 1
        end
      | op :: rest -> (
        match Monitor.step monitor op with
        | Monitor.Continue monitor' ->
          Format.printf "%a@." Monitor.pp monitor';
          feed monitor' rest
        | Monitor.Reject { op; allowed } ->
          Format.printf "REJECTED '%s' (allowed: %s)@." op (String.concat ", " allowed);
          exit 1)
    in
    feed (Monitor.start model) ops
  in
  Cmd.v
    (Cmd.info "monitor" ~doc:"Replay a trace through the runtime monitor, step by step.")
    Term.(const run $ file $ cls $ trace_arg)

(* --- watch ----------------------------------------------------------------- *)

let watch_cmd =
  let doc =
    "Monitor an LTLf claim along an event trace (four-valued RV verdicts after \
     every event)."
  in
  let claim =
    Arg.(
      required
      & opt (some string) None
      & info [ "claim" ] ~docv:"FORMULA" ~doc:"The LTLf claim, e.g. '(!a.open) W b.open'.")
  in
  let trace_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE" ~doc:"Comma-separated events, e.g. 'a.test,a.open'.")
  in
  let run claim trace_text =
    let formula =
      match Ltl_parser.parse_result claim with
      | Ok f -> f
      | Error msg ->
        prerr_endline msg;
        exit 2
    in
    let events =
      String.split_on_char ',' trace_text
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
      |> List.map Symbol.intern
    in
    let alphabet =
      Symbol.Set.elements
        (Symbol.Set.union (Ltlf.atoms formula) (Symbol.Set.of_list events))
    in
    let trajectory = Ltl_monitor.verdict_trajectory ~alphabet formula events in
    List.iteri
      (fun i v ->
        let prefix = if i = 0 then "(start)" else Symbol.name (List.nth events (i - 1)) in
        Format.printf "%-16s %a@." prefix Ltl_monitor.pp_verdict v)
      trajectory;
    match List.rev trajectory with
    | Ltl_monitor.Definitely_false :: _ -> exit 1
    | _ -> ()
  in
  Cmd.v (Cmd.info "watch" ~doc) Term.(const run $ claim $ trace_arg)

(* --- lang ------------------------------------------------------------------ *)

let lang_cmd =
  let doc =
    "Compare two regular expressions (paper notation): equivalence, inclusion, \
     and a distinguishing trace if any."
  in
  let left = Arg.(required & pos 0 (some string) None & info [] ~docv:"REGEX1") in
  let right = Arg.(required & pos 1 (some string) None & info [] ~docv:"REGEX2") in
  let run left right =
    match Regex_parser.parse_result left, Regex_parser.parse_result right with
    | Error msg, _ | _, Error msg ->
      prerr_endline msg;
      exit 2
    | Ok r1, Ok r2 ->
      Format.printf "r1 = %a@.r2 = %a@." Regex.pp r1 Regex.pp r2;
      Format.printf "r1 ⊆ r2: %b@." (Equiv.included r1 r2);
      Format.printf "r2 ⊆ r1: %b@." (Equiv.included r2 r1);
      (match Equiv.counterexample r1 r2 with
      | None -> Format.printf "equivalent@."
      | Some w ->
        Format.printf "distinguished by: %s@."
          (if w = [] then "(the empty trace)" else Trace.to_string w);
        exit 1)
  in
  Cmd.v (Cmd.info "lang" ~doc) Term.(const run $ left $ right)

(* --- export ---------------------------------------------------------------- *)

let export_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let out_dir =
    Arg.(
      value & opt string "."
      & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Directory for the .shelley model files.")
  in
  let run file cls out_dir =
    let result = or_die (load file) in
    let models = or_die (select_models result cls) in
    List.iter
      (fun (m : Model.t) ->
        let path = Filename.concat out_dir (m.Model.name ^ ".shelley") in
        Model_io.save ~path m;
        Printf.printf "wrote %s\n" path)
      models
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:
         "Extract models and write them as .shelley files (for separate \
          verification with 'check --using').")
    Term.(const run $ file $ class_arg $ out_dir)

(* --- cache ----------------------------------------------------------------- *)

let cache_cmd =
  (* Maintenance acts on an existing cache: silently creating DIR here would
     turn a typo into an empty-looking cache, so a missing directory is an
     error — unlike 'check --cache', which creates its directory because a
     first (cold) run is the normal way a cache comes into being. *)
  let dir_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"The cache directory (as passed to --cache).")
  in
  let open_existing dir =
    if not (Sys.file_exists dir && Sys.is_directory dir) then begin
      Printf.eprintf "error: no cache directory at %s\n%!" dir;
      exit 2
    end;
    match Cache.open_dir dir with
    | Ok c -> c
    | Error msg ->
      Printf.eprintf "error: %s\n%!" msg;
      exit 2
  in
  let stats_cmd =
    let json =
      Arg.(
        value & flag
        & info [ "json" ]
            ~doc:
              "Emit the shelley.cache-stats/1 JSON object instead of the \
               human-readable table.")
    in
    let run dir json =
      let c = open_existing dir in
      let s = Cache.stats c in
      if json then print_string (Cache.stats_json s)
      else begin
        Printf.printf "cache directory: %s\n" (Cache.dir c);
        Printf.printf "live entries:    %d (%d bytes)\n" s.Cache.live_entries
          s.Cache.live_bytes;
        Printf.printf "stale entries:   %d\n" s.Cache.stale_entries;
        Printf.printf "corrupt entries: %d\n" s.Cache.corrupt_entries;
        Printf.printf "temp files:      %d\n" s.Cache.tmp_files
      end
    in
    Cmd.v
      (Cmd.info "stats"
         ~doc:
           "Scan the cache and classify every file: live entries, entries \
            written by another format version, corrupt entries, abandoned \
            temp files. Read-only.")
      Term.(const run $ dir_pos $ json)
  in
  let gc_cmd =
    let run dir =
      let c = open_existing dir in
      let r = Cache.gc c in
      Printf.printf "removed %d stale, %d corrupt, %d temp; kept %d live\n"
        r.Cache.gc_removed_stale r.Cache.gc_removed_corrupt r.Cache.gc_removed_tmp
        r.Cache.gc_kept
    in
    Cmd.v
      (Cmd.info "gc"
         ~doc:
           "Sweep everything a lookup would refuse to use — stale-version \
            entries, corrupt entries, abandoned temp files — and keep live \
            entries.")
      Term.(const run $ dir_pos)
  in
  let clear_cmd =
    let run dir =
      let c = open_existing dir in
      let n = Cache.clear c in
      Printf.printf "removed %d file%s\n" n (if n = 1 then "" else "s")
    in
    Cmd.v
      (Cmd.info "clear"
         ~doc:"Remove every entry and temp file. The directory itself is kept.")
      Term.(const run $ dir_pos)
  in
  Cmd.group
    (Cmd.info "cache"
       ~doc:
         "Inspect and maintain a result cache directory (see 'shelley check \
          --cache').")
    [ stats_cmd; gc_cmd; clear_cmd ]

(* --- serve / client --------------------------------------------------------- *)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path of the verification daemon.")

let serve_cmd =
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Width of the persistent worker pool shared by all requests.")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Default per-file wall-clock deadline for requests that do \
                not set their own $(b,timeout) parameter.")
  in
  let idle_reap =
    Arg.(
      value & opt float 30.
      & info [ "idle-reap" ] ~docv:"SECONDS"
          ~doc:"Retire pool workers (and flush deferred cache stores) after \
                this much request silence; the next request respawns them.")
  in
  let max_queue =
    Arg.(
      value & opt int 64
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Admission queue bound: at most this many check/lint requests \
             wait for a worker; beyond it the daemon sheds with a \
             structured $(b,overloaded) error and a retry_after_ms hint.")
  in
  let max_conns =
    Arg.(
      value & opt int 512
      & info [ "max-conns" ] ~docv:"N"
          ~doc:
            "Concurrent connection bound (clamped below select's \
             FD_SETSIZE): a connection accepted beyond it is answered with \
             a retryable $(b,overloaded) error and closed immediately.")
  in
  let max_frame_bytes =
    Arg.(
      value
      & opt int (8 * 1024 * 1024)
      & info [ "max-frame-bytes" ] ~docv:"BYTES"
          ~doc:
            "Largest request line accepted; an oversized frame gets a \
             structured $(b,frame_too_large) error and the connection is \
             closed.")
  in
  let read_deadline =
    Arg.(
      value & opt float 30.
      & info [ "read-deadline" ] ~docv:"SECONDS"
          ~doc:
            "A connection that starts a frame must finish it within this \
             long or it is reaped (slow-loris protection). Idle \
             connections with no partial frame are never reaped.")
  in
  let queue_deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "queue-deadline" ] ~docv:"SECONDS"
          ~doc:
            "Server-wide cap on how long a request may wait in the \
             admission queue before being answered $(b,expired); combined \
             with each request's own deadline_ms by taking the tighter.")
  in
  let max_worker_mem =
    Arg.(
      value & opt int 0
      & info [ "max-worker-mem" ] ~docv:"MIB"
          ~doc:
            "Cap each worker's address space (setrlimit RLIMIT_AS) so a \
             ballooning check fails as a classified resource-limit verdict \
             instead of a crash. 0 = uncapped.")
  in
  let fault_injection =
    Arg.(
      value & flag
      & info [ "fault-injection" ]
          ~doc:
            "Testing only: arm the SHELLEY_FAULT fault-injection seam \
             (worker crashes, wedges, garbage frames, fork failures) in \
             this daemon and its workers.")
  in
  let run socket jobs timeout idle_reap cache_dir metrics_out max_queue
      max_conns max_frame_bytes read_deadline queue_deadline max_worker_mem
      fault_injection =
    Checker.fault_injection := fault_injection;
    if metrics_out <> None then Obs.enable ();
    let cache = open_cache cache_dir in
    exit
      (Serve.serve ~socket ~jobs ?cache ?default_timeout:timeout ~idle_reap
         ?metrics_out ~max_queue ~max_conns ~max_frame_bytes ~read_deadline
         ?queue_deadline ~max_worker_mem ())
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the long-lived verification daemon: newline-delimited JSON-RPC \
          ($(b,check), $(b,lint), $(b,status), $(b,shutdown)) over a Unix \
          socket, multiplexing every request over one supervised persistent \
          worker pool with bounded admission (shed + retry_after_ms when \
          full), per-client fair scheduling, queued-deadline expiry, frame \
          size and read-deadline limits, and per-worker memory caps. \
          SIGTERM/SIGINT drain gracefully: in-flight requests finish, cache \
          stores flush, workers are reaped, exit 0. Refuses to start over \
          the socket of a daemon that is still alive."
       ~exits:
         [
           Cmd.Exit.info 0 ~doc:"graceful shutdown (request or signal).";
           Cmd.Exit.info 2
             ~doc:
               "the socket could not be created, or a live daemon already \
                owns it.";
         ])
    Term.(
      const run $ socket_arg $ jobs $ timeout $ idle_reap $ cache_arg
      $ metrics_out_arg $ max_queue $ max_conns $ max_frame_bytes
      $ read_deadline $ queue_deadline $ max_worker_mem $ fault_injection)

let client_cmd =
  let meth =
    Arg.(
      required
      & pos 0 (some (enum [ ("check", `Check); ("lint", `Lint); ("status", `Status); ("shutdown", `Shutdown) ])) None
      & info [] ~docv:"METHOD"
          ~doc:"One of $(b,check), $(b,lint), $(b,status), $(b,shutdown).")
  in
  let files = Arg.(value & pos_right 0 string [] & info [] ~docv:"FILE") in
  let warnings =
    Arg.(value & flag & info [ "warnings" ] ~doc:"check: include warning-level reports.")
  in
  let explain =
    Arg.(value & flag & info [ "explain" ] ~doc:"check: narrate counterexamples.")
  in
  let lint =
    Arg.(value & flag & info [ "lint" ] ~doc:"check: also run the lint pass.")
  in
  let using =
    Arg.(
      value & opt_all string []
      & info [ "using" ] ~docv:"MODEL" ~doc:"check: model files to pre-load.")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Per-file wall-clock deadline.")
  in
  let format =
    Arg.(
      value & opt (some string) None
      & info [ "format" ] ~docv:"FMT" ~doc:"lint: text, json or sarif.")
  in
  let retries =
    Arg.(
      value & opt int Serve.default_retries
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry budget when the daemon is unreachable or sheds with \
             $(b,overloaded): up to N retries under capped exponential \
             backoff with jitter, honoring the daemon's retry_after_ms \
             hint. 0 = fail fast.")
  in
  let priority =
    Arg.(
      value
      & opt (some int) None
      & info [ "priority" ] ~docv:"N"
          ~doc:
            "check/lint: scheduling priority in the daemon's admission \
             queue — higher dispatches sooner (default 0).")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "check/lint: give up if the request would wait more than MS \
             milliseconds in the daemon's queue (answered $(b,expired), \
             exit 3).")
  in
  let run socket meth files warnings explain lint using timeout format retries
      priority deadline_ms =
    let params =
      let open Jsonl in
      let base =
        match meth with
        | `Check ->
          [
            ("files", Arr (List.map (fun f -> Str f) files));
            ("warnings", Bool warnings);
            ("explain", Bool explain);
            ("lint", Bool lint);
            ("using", Arr (List.map (fun f -> Str f) using));
          ]
        | `Lint -> (
          [ ("files", Arr (List.map (fun f -> Str f) files)) ]
          @ match format with Some f -> [ ("format", Str f) ] | None -> [])
        | `Status | `Shutdown -> []
      in
      base
      @ (match timeout with Some t -> [ ("timeout", Num t) ] | None -> [])
      @ (match priority with
        | Some p -> [ ("priority", Num (float_of_int p)) ]
        | None -> [])
      @
      match deadline_ms with Some ms -> [ ("deadline_ms", Num ms) ] | None -> []
    in
    let method_name =
      match meth with
      | `Check -> "check"
      | `Lint -> "lint"
      | `Status -> "status"
      | `Shutdown -> "shutdown"
    in
    let request =
      Jsonl.(
        Obj
          [
            ("id", Num 1.); ("method", Str method_name); ("params", Obj params);
          ])
    in
    match Serve.client_request ~socket ~retries (Jsonl.to_string request) with
    | Error (`Unreachable (attempts, msg)) ->
      prerr_endline
        (Printf.sprintf "shelley client: %s (%d attempts)" msg attempts);
      exit 2
    | Error (`Overloaded (attempts, _last)) ->
      prerr_endline
        (Printf.sprintf
           "shelley client: daemon still overloaded after %d attempts" attempts);
      exit 4
    | Ok line -> (
      match Jsonl.parse line with
      | Error msg ->
        prerr_endline ("shelley client: unparseable response: " ^ msg);
        exit 2
      | Ok resp -> (
        match Jsonl.mem_str "error" resp with
        | Some msg ->
          prerr_endline msg;
          let code =
            match Jsonl.mem_num "code" resp with
            | Some f -> int_of_float f
            | None -> 2
          in
          exit code
        | None -> (
          match Jsonl.member "result" resp with
          | None ->
            prerr_endline "shelley client: malformed response";
            exit 2
          | Some result -> (
            match Jsonl.mem_str "output" result with
            | Some output ->
              (* check / lint: replay the one-shot stdout byte-for-byte and
                 exit with the one-shot code. *)
              print_string output;
              let code =
                match Jsonl.mem_num "code" result with
                | Some f -> int_of_float f
                | None -> 0
              in
              if code <> 0 then exit code
            | None ->
              (* status / shutdown: print the result object as one line. *)
              print_endline (Jsonl.to_string result)))))
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send one request to a running $(b,shelley serve) daemon and print \
          the response: check/lint replay the one-shot CLI's stdout and exit \
          code byte-for-byte; status/shutdown print the raw JSON result. \
          Connection failures and $(b,overloaded) sheds are retried \
          transparently (see $(b,--retries)); shed-and-exhausted exits 4, \
          distinct from protocol failure (2)."
       ~exits:
         [
           Cmd.Exit.info 0 ~doc:"request succeeded.";
           Cmd.Exit.info 2 ~doc:"connection or protocol failure.";
           Cmd.Exit.info 3
             ~doc:"the request expired in the daemon's queue (--deadline-ms).";
           Cmd.Exit.info 4
             ~doc:"the daemon was still shedding after the retry budget.";
         ])
    Term.(
      const run $ socket_arg $ meth $ files $ warnings $ explain $ lint $ using
      $ timeout $ format $ retries $ priority $ deadline_ms)

let main_cmd =
  let doc = "Shelley-style model inference and checking for MicroPython (DSN-W 2023)." in
  Cmd.group
    (Cmd.info "shelley" ~version:Cache.tool_version ~doc)
    [
      export_cmd;
      check_cmd;
      lint_cmd;
      serve_cmd;
      client_cmd;
      cache_cmd;
      model_cmd;
      viz_cmd;
      nusmv_cmd;
      smv_cmd;
      trace_cmd;
      infer_cmd;
      sample_cmd;
      monitor_cmd;
      watch_cmd;
      lang_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
