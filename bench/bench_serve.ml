(* Overload benchmark for [shelley serve]: floods a daemon with parallel
   clients and pins down the three invariants the overload machinery
   promises, emitting machine-readable results to BENCH_serve.json:

   - responsiveness: [status] bypasses the admission queue, so the daemon
     must keep answering it while worker-bound requests flood in — the max
     probe latency is recorded and bounded (it can never exceed one
     in-flight verification, since dispatch blocks the loop for exactly
     that long);
   - deterministic sheds: with one worker pinned by a slow verification
     and the whole burst buffered before the admission round, a burst of B
     requests against a Q-slot queue sheds exactly B - Q of them with a
     structured [overloaded] error, every round, every repeat;
   - byte-identity under load: every request the daemon accepts — during
     the flood, inside the bursts, and after the overload has passed —
     returns output byte-identical to the one-shot engine, and
     self-healing clients ([Serve.client_request]) ride out the sheds
     without surfacing them.

   Any violated invariant exits 1: this is a benchmark and a regression
   gate in one, same as bench_parallel's determinism checks.

   Run: dune exec bench/bench_serve.exe [--smoke] *)

let smoke = Array.exists (String.equal "--smoke") Sys.argv
let flood_clients = if smoke then 4 else 8
let requests_per_client = if smoke then 3 else 10
let burst_rounds = if smoke then 2 else 3
let burst_size = 8
let burst_queue = 4
let status_latency_budget_ms = 5000.0

(* --- small plumbing ----------------------------------------------------------- *)

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let rec waitpid_eintr pid =
  match Unix.waitpid [] pid with
  | r -> r
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_eintr pid

let wait_for ?(timeout = 10.) pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()

let raw_connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  fd

let send_raw fd s =
  let b = Bytes.of_string s in
  let rec go pos =
    if pos < Bytes.length b then go (pos + Unix.write fd b pos (Bytes.length b - pos))
  in
  go 0

let recv_line ?(timeout = 60.) fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    let s = Buffer.contents buf in
    match String.index_opt s '\n' with
    | Some i -> Some (String.sub s 0 i)
    | None ->
      let left = deadline -. Unix.gettimeofday () in
      if left <= 0.0 then None
      else (
        match Unix.select [ fd ] [] [] left with
        | [], _, _ -> None
        | _ -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> None
          | n ->
            Buffer.add_subbytes buf chunk 0 n;
            go ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("FAIL: " ^ msg); exit 1) fmt

let spawn_daemon ~socket serve =
  (* Children must not inherit (and later replay) buffered stdout. *)
  flush stdout;
  match Unix.fork () with
  | 0 -> ( try Unix._exit (serve ()) with _ -> Unix._exit 99)
  | pid ->
    if not (wait_for (fun () -> Sys.file_exists socket)) then
      fail "daemon socket %s never appeared" socket;
    pid

let graceful_stop ~socket pid =
  (match Serve.client_call ~socket "{\"id\":99,\"method\":\"shutdown\"}" with
  | Ok _ -> ()
  | Error msg -> fail "shutdown request failed: %s" msg);
  match waitpid_eintr pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> fail "daemon exited %d, not 0" n
  | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) -> fail "daemon died by signal"

let check_request files =
  Jsonl.to_string
    (Jsonl.Obj
       [
         ("id", Jsonl.Num 1.);
         ("method", Jsonl.Str "check");
         ("params", Jsonl.Obj [ ("files", Jsonl.Arr (List.map (fun f -> Jsonl.Str f) files)) ]);
       ])

(* (output, code) of a result response; None for error responses. *)
let result_of line =
  match Jsonl.parse line with
  | Error _ -> None
  | Ok j -> (
    match Jsonl.member "result" j with
    | None -> None
    | Some r -> (
      match (Jsonl.mem_str "output" r, Jsonl.mem_num "code" r) with
      | Some output, Some code -> Some (output, int_of_float code)
      | _ -> None))

let is_shed line =
  match Jsonl.parse line with
  | Ok j -> Jsonl.mem_str "error_code" j = Some "overloaded"
  | Error _ -> false

(* What one-shot `shelley check` prints for [files] — the identity target. *)
let oneshot files =
  let verdicts = Checker.check_files ~jobs:1 files in
  let code = Checker.exit_code verdicts in
  let buf = Buffer.create 256 in
  List.iter (fun (v : Checker.verdict) -> Buffer.add_string buf v.Checker.output) verdicts;
  if code = 0 then Buffer.add_string buf "OK: specification verified\n";
  (Buffer.contents buf, code)

let load_counter ~socket field =
  match Serve.client_call ~socket "{\"id\":7,\"method\":\"status\"}" with
  | Error msg -> fail "status failed: %s" msg
  | Ok resp -> (
    match Jsonl.parse resp with
    | Error msg -> fail "unparsable status: %s" msg
    | Ok j -> (
      match
        Option.bind (Jsonl.member "result" j) (fun r ->
            Option.bind (Jsonl.member "load" r) (Jsonl.mem_num field))
      with
      | Some f -> int_of_float f
      | None -> fail "status lacks load.%s" field))

(* --- the benchmark ------------------------------------------------------------ *)

let () =
  let dir = Filename.temp_file "shelley_bserve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let quick = Filename.concat dir "valve.py" in
  write_file quick Sources.valve;
  let pin = Filename.concat dir "pin.py" in
  write_file pin Sources.valve;
  let expected_out, expected_code = oneshot [ quick ] in
  let pin_out, pin_code = oneshot [ pin ] in
  Printf.printf "serve overload: %d clients x %d requests, burst %d vs queue %d x %d rounds%s\n\n"
    flood_clients requests_per_client burst_size burst_queue burst_rounds
    (if smoke then " [smoke]" else "");

  (* --- Phase 1: parallel-client flood, status probed throughout ------------- *)
  let socket1 = Filename.concat dir "flood.sock" in
  let d1 = spawn_daemon ~socket:socket1 (fun () -> Serve.serve ~socket:socket1 ~jobs:2 ~max_queue:16 ()) in
  let t0 = Unix.gettimeofday () in
  flush stdout;
  let clients =
    List.init flood_clients (fun _ ->
        match Unix.fork () with
        | 0 ->
          let req = check_request [ quick ] in
          for _ = 1 to requests_per_client do
            match Serve.client_request ~socket:socket1 req with
            | Error (`Unreachable _) -> Unix._exit 2
            | Error (`Overloaded _) -> Unix._exit 4
            | Ok line -> (
              match result_of line with
              | Some (out, code) when out = expected_out && code = expected_code -> ()
              | Some _ -> Unix._exit 3 (* wrong bytes *)
              | None -> Unix._exit 5 (* unexpected structured error *))
          done;
          Unix._exit 0
        | pid -> pid)
  in
  (* Probe status while the flood runs: latency of the queue-bypassing path. *)
  let latencies = ref [] in
  let live = ref clients in
  while !live <> [] do
    live :=
      List.filter
        (fun pid ->
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ -> true
          | _, Unix.WEXITED 0 -> false
          | _, Unix.WEXITED n -> fail "flood client exited %d (2=unreachable 3=bytes 4=shed-exhausted 5=protocol)" n
          | _, _ -> fail "flood client died by signal"
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> true)
        !live;
    if !live <> [] then begin
      let p0 = Unix.gettimeofday () in
      (match Serve.client_call ~socket:socket1 "{\"id\":8,\"method\":\"status\"}" with
      | Ok _ -> latencies := (Unix.gettimeofday () -. p0) *. 1000. :: !latencies
      | Error msg -> fail "status probe failed mid-flood: %s" msg);
      Unix.sleepf 0.05
    end
  done;
  let flood_wall = Unix.gettimeofday () -. t0 in
  let flood_sheds = load_counter ~socket:socket1 "shed" in
  let total_requests = flood_clients * requests_per_client in
  graceful_stop ~socket:socket1 d1;
  let latency_max = List.fold_left Float.max 0.0 !latencies in
  let latency_mean =
    match !latencies with
    | [] -> 0.0
    | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  if latency_max > status_latency_budget_ms then
    fail "status latency %.1f ms exceeds the %.0f ms budget" latency_max
      status_latency_budget_ms;
  Printf.printf
    "  flood: %d requests in %.2f s (%.1f req/s), %d shed-and-retried, every \
     response byte-identical\n"
    total_requests flood_wall
    (float_of_int total_requests /. flood_wall)
    flood_sheds;
  Printf.printf "  status under flood: %d probes, max %.1f ms, mean %.1f ms (budget %.0f ms)\n\n"
    (List.length !latencies) latency_max latency_mean status_latency_budget_ms;

  (* --- Phase 2: deterministic sheds under a pinned worker ------------------- *)
  (* The fault seam slows only pin.py; the daemon inherits the armed state
     at fork, the parent disarms immediately after. *)
  let socket2 = Filename.concat dir "burst.sock" in
  Checker.fault_injection := true;
  Unix.putenv "SHELLEY_FAULT" "slow:pin.py";
  let d2 =
    spawn_daemon ~socket:socket2 (fun () ->
        Serve.serve ~socket:socket2 ~jobs:1 ~max_queue:burst_queue ())
  in
  Checker.fault_injection := false;
  Unix.putenv "SHELLEY_FAULT" "";
  let expected_sheds = burst_size - burst_queue in
  let sheds_per_round =
    List.init burst_rounds (fun round ->
        (* Register every connection while the daemon is idle: accepts
           happen in connect order, so once the last one answers status
           they all exist. Then pin the single worker and fire the burst
           while it is blocked — every burst request is buffered before
           the daemon's next admission round, so exactly burst - queue of
           them shed. *)
        let pin_fd = raw_connect socket2 in
        let conns = List.init burst_size (fun _ -> raw_connect socket2) in
        let last = List.nth conns (burst_size - 1) in
        send_raw last "{\"id\":0,\"method\":\"status\"}\n";
        (match recv_line last with
        | Some _ -> ()
        | None -> fail "burst handshake failed (round %d)" round);
        send_raw pin_fd (check_request [ pin ] ^ "\n");
        Unix.sleepf 0.2;
        List.iter (fun fd -> send_raw fd (check_request [ quick ] ^ "\n")) conns;
        let responses =
          List.map
            (fun fd ->
              match recv_line fd with
              | Some line -> line
              | None -> fail "a burst client got no response (round %d)" round)
            conns
        in
        let sheds = List.filter is_shed responses in
        List.iter
          (fun line ->
            if not (is_shed line) then
              match result_of line with
              | Some (out, code) when out = expected_out && code = expected_code -> ()
              | _ -> fail "an admitted burst request lost byte-identity (round %d)" round)
          responses;
        List.iter
          (fun line ->
            match Jsonl.parse line with
            | Ok j when Jsonl.mem_num "retry_after_ms" j <> None -> ()
            | _ -> fail "a shed lacks its retry_after_ms hint (round %d)" round)
          sheds;
        (match recv_line pin_fd with
        | Some line -> (
          match result_of line with
          | Some (out, code) when out = pin_out && code = pin_code -> ()
          | _ -> fail "the pinned request lost byte-identity (round %d)" round)
        | None -> fail "the pinned request got no response (round %d)" round);
        List.iter Unix.close (pin_fd :: conns);
        List.length sheds)
  in
  List.iteri
    (fun i n ->
      if n <> expected_sheds then
        fail "round %d shed %d requests, expected exactly %d" i n expected_sheds)
    sheds_per_round;
  let counted = load_counter ~socket:socket2 "shed" in
  if counted <> burst_rounds * expected_sheds then
    fail "serve.shed says %d, expected %d" counted (burst_rounds * expected_sheds);
  Printf.printf "  bursts: %d rounds of %d vs queue %d — exactly %d shed each round\n"
    burst_rounds burst_size burst_queue expected_sheds;

  (* --- Recovery: one plain self-healing request after the storm ------------- *)
  (match Serve.client_request ~socket:socket2 (check_request [ quick ]) with
  | Ok line -> (
    match result_of line with
    | Some (out, code) when out = expected_out && code = expected_code -> ()
    | _ -> fail "post-overload request lost byte-identity")
  | Error _ -> fail "post-overload request failed");
  graceful_stop ~socket:socket2 d2;
  Printf.printf "  recovery: post-overload response byte-identical — OK\n";

  let json =
    Printf.sprintf
      "{\n  \"benchmark\": \"serve_overload\",\n  \"smoke\": %b,\n\
      \  \"flood\": {\"clients\": %d, \"requests_per_client\": %d,\n\
      \    \"wall_seconds\": %.6f, \"throughput_rps\": %.1f,\n\
      \    \"sheds_absorbed_by_retry\": %d, \"clients_failed\": 0,\n\
      \    \"status_probes\": %d, \"status_latency_max_ms\": %.2f,\n\
      \    \"status_latency_mean_ms\": %.2f, \"status_latency_budget_ms\": %.0f},\n\
      \  \"burst\": {\"rounds\": %d, \"burst_size\": %d, \"max_queue\": %d,\n\
      \    \"sheds_per_round_expected\": %d, \"sheds_per_round\": [%s],\n\
      \    \"deterministic\": true},\n\
      \  \"byte_identity_under_load\": true,\n  \"recovery_byte_identical\": true\n}\n"
      smoke flood_clients requests_per_client flood_wall
      (float_of_int total_requests /. flood_wall)
      flood_sheds (List.length !latencies) latency_max latency_mean
      status_latency_budget_ms burst_rounds burst_size burst_queue expected_sheds
      (String.concat ", " (List.map string_of_int sheds_per_round))
  in
  let oc = open_out_bin "BENCH_serve.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "\nwrote BENCH_serve.json; all overload invariants held\n";
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      try Unix.rmdir path with Unix.Unix_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()
  in
  rm dir
