(* Parallel-checking benchmark: wall-clock for [shelley check -j N] levels
   over a synthetic corpus, via the same {!Checker.check_files} entry the
   CLI uses. Emits machine-readable results to BENCH_parallel.json and a
   human summary to stdout, and asserts the determinism contract along the
   way: the concatenated output of every jobs level must be byte-identical
   to the sequential run.

   Run: dune exec bench/bench_parallel.exe [CORPUS_SIZE] *)

let corpus_size =
  if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 24

let repeats = 3

(* One corpus file = the paper's two listings together: a composite class
   with a claim, so each unit exercises parsing, inference, the product
   check and the LTL checker — a realistic per-file workload. *)
let file_source = Sources.valve ^ "\n" ^ Sources.bad_sector

let write_corpus dir =
  List.init corpus_size (fun i ->
      let path = Filename.concat dir (Printf.sprintf "unit_%02d.py" i) in
      let oc = open_out_bin path in
      output_string oc file_source;
      close_out oc;
      path)

let nproc () =
  (* getconf is POSIX; fall back to 1 if unavailable. *)
  let ic = Unix.open_process_in "getconf _NPROCESSORS_ONLN 2>/dev/null" in
  let n = try int_of_string (String.trim (input_line ic)) with _ -> 1 in
  ignore (Unix.close_process_in ic);
  max 1 n

let concat_output verdicts =
  String.concat "" (List.map (fun v -> v.Checker.output) verdicts)

let time_run ~jobs files =
  let t0 = Unix.gettimeofday () in
  let verdicts = Checker.check_files ~jobs files in
  let dt = Unix.gettimeofday () -. t0 in
  (dt, concat_output verdicts, Checker.exit_code verdicts)

let () =
  let dir = Filename.temp_file "shelley_bench" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let files = write_corpus dir in
  let cores = nproc () in
  let levels =
    List.sort_uniq compare [ 1; 2; 4; cores ] |> List.filter (fun j -> j >= 1)
  in
  Printf.printf "parallel checking: %d files x %d repeats, %d core(s) online\n\n"
    corpus_size repeats cores;
  let baseline_output = ref "" in
  let results =
    List.map
      (fun jobs ->
        let runs =
          List.init repeats (fun _ ->
              let dt, out, code = time_run ~jobs files in
              if !baseline_output = "" then baseline_output := out
              else if out <> !baseline_output then begin
                Printf.eprintf "DETERMINISM VIOLATION at -j %d\n" jobs;
                exit 1
              end;
              if code <> 1 then begin
                (* bad_sector's claim fails by design: every run must say so *)
                Printf.eprintf "unexpected exit code %d at -j %d\n" code jobs;
                exit 1
              end;
              dt)
        in
        let best = List.fold_left Float.min infinity runs in
        Printf.printf "  -j %-2d  best %7.1f ms  (all: %s)\n" jobs (best *. 1000.)
          (String.concat ", "
             (List.map (fun t -> Printf.sprintf "%.1f ms" (t *. 1000.)) runs));
        (jobs, best, runs))
      levels
  in
  let seq_best =
    match results with
    | (1, best, _) :: _ -> best
    | _ -> infinity
  in
  Printf.printf "\n";
  List.iter
    (fun (jobs, best, _) ->
      if jobs > 1 then
        Printf.printf "  speedup -j %d vs -j 1: %.2fx\n" jobs (seq_best /. best))
    results;
  let json =
    let run_json (jobs, best, runs) =
      Printf.sprintf
        "    {\"jobs\": %d, \"best_seconds\": %.6f, \"all_seconds\": [%s], \
         \"speedup_vs_sequential\": %.3f}"
        jobs best
        (String.concat ", " (List.map (Printf.sprintf "%.6f") runs))
        (seq_best /. best)
    in
    Printf.sprintf
      "{\n  \"benchmark\": \"parallel_checking\",\n  \"corpus_files\": %d,\n\
      \  \"repeats\": %d,\n  \"cores_online\": %d,\n\
      \  \"output_byte_identical_across_levels\": true,\n  \"results\": [\n%s\n  ]\n}\n"
      corpus_size repeats cores
      (String.concat ",\n" (List.map run_json results))
  in
  let oc = open_out_bin "BENCH_parallel.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "\nwrote BENCH_parallel.json; output byte-identical across all levels\n";
  List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) files;
  try Unix.rmdir dir with Unix.Unix_error _ -> ()
