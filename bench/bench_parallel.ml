(* Parallel-checking benchmark: wall-clock for [shelley check -j N] levels
   over a synthetic corpus, comparing the two execution engines the repo
   has carried:

   - [pool]: the supervised persistent prefork pool ({!Supervisor} via
     {!Checker.make_pool}) — workers forked once per level, jobs streamed
     over pipes in batches. This is what [shelley check -j N] and the serve
     daemon use.
   - [fork_per_task]: the pre-supervisor {!Runner}, one forked child per
     file, kept in-tree for exactly this comparison.

   Emits machine-readable results to BENCH_parallel.json and a human
   summary to stdout, and asserts three contracts along the way:

   - determinism: the concatenated output of every level and both engines
     (with and without the observability recorder) must be byte-identical
     to the sequential run;
   - zero disabled overhead: a disabled [Obs.count] must cost on the
     order of a branch — the run aborts if it exceeds a generous
     per-call budget;
   - the speedup floor: in full mode on a multicore machine, pool -j 4
     must beat -j 1 by >= 1.5x. On a single-core machine the floor is
     SKIPPED loudly (parallelism cannot pay where there is nothing to
     run on) — CI provides the multicore enforcement.

   Besides wall times, each level gets one *instrumented* run per engine
   whose counters (fork time, queue wait, task wall, batches) go into the
   JSON — the data behind EXPERIMENTS.md's prefork-vs-fork-per-task entry.

   Run: dune exec bench/bench_parallel.exe [--smoke] [CORPUS_SIZE] *)

let smoke = Array.exists (String.equal "--smoke") Sys.argv

let corpus_size =
  let positional =
    Array.to_list Sys.argv |> List.tl
    |> List.find_opt (fun a -> a <> "--smoke")
  in
  match positional with
  | Some n -> int_of_string n
  | None -> if smoke then 6 else 24

let repeats = if smoke then 1 else 3

(* One corpus file = the paper's two listings together: a composite class
   with a claim, so each unit exercises parsing, inference, the product
   check and the LTL checker — a realistic per-file workload. *)
let file_source = Sources.valve ^ "\n" ^ Sources.bad_sector

let write_corpus dir =
  List.init corpus_size (fun i ->
      let path = Filename.concat dir (Printf.sprintf "unit_%02d.py" i) in
      let oc = open_out_bin path in
      output_string oc file_source;
      close_out oc;
      path)

let nproc () =
  (* getconf is POSIX; fall back to 1 if unavailable. *)
  let ic = Unix.open_process_in "getconf _NPROCESSORS_ONLN 2>/dev/null" in
  let n = try int_of_string (String.trim (input_line ic)) with _ -> 1 in
  ignore (Unix.close_process_in ic);
  max 1 n

let concat_output verdicts =
  String.concat "" (List.map (fun v -> v.Checker.output) verdicts)

(* --- The two engines --------------------------------------------------------- *)

let pool_run ~pool ~jobs files = Checker.check_files ~jobs ~pool files

let forkper_run ~jobs files =
  Runner.map ~jobs ~f:(fun path -> Checker.check_file path) files
  |> List.map (function
       | Runner.Done v -> v
       | Runner.Timed_out _ | Runner.Crashed _ ->
         prerr_endline "fork-per-task run lost a task";
         exit 1)

let time engine files =
  let t0 = Unix.gettimeofday () in
  let verdicts = engine files in
  let dt = Unix.gettimeofday () -. t0 in
  (dt, concat_output verdicts, Checker.exit_code verdicts)

(* The no-op guard for the zero-overhead claim: with the recorder disabled,
   [Obs.count] is one branch on a ref. 200 ns/call is ~two orders of
   magnitude above what that costs on any machine this runs on, so a failure
   means someone made the disabled path allocate or take a lock. *)
let disabled_overhead_ns_per_call () =
  assert (not (Obs.enabled ()));
  let calls = 10_000_000 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to calls do
    Obs.count "bench.noop" 1
  done;
  let dt = Unix.gettimeofday () -. t0 in
  dt *. 1e9 /. float_of_int calls

let obs_budget_ns = 200.0

(* One instrumented run per engine per jobs level: same entry point,
   recorder on, counters harvested afterwards. [prefix] selects the
   engine's counter namespace ("pool" / "runner"). *)
type instrumented = {
  i_fork_us : int;
  i_queue_wait_us : int;
  i_task_wall_us : int;
  i_spawns : int;
  i_batches : int;  (* 0 for the fork-per-task engine *)
  i_unit_total_us : int;  (* summed in-unit span time across verdicts *)
}

let instrumented_run ~prefix engine files baseline_output =
  Obs.enable ~fake_clock:false ();
  let verdicts = engine files in
  if concat_output verdicts <> baseline_output then begin
    Printf.eprintf "DETERMINISM VIOLATION with observability enabled (%s)\n" prefix;
    exit 1
  end;
  let counter key = Option.value ~default:0 (List.assoc_opt key (Obs.counters ())) in
  let unit_total =
    List.fold_left
      (fun acc (v : Checker.verdict) ->
        acc
        + match v.Checker.profile with Some p -> Obs.profile_total_us p | None -> 0)
      0 verdicts
  in
  let r =
    {
      i_fork_us = counter (prefix ^ ".fork_us");
      i_queue_wait_us = counter (prefix ^ ".queue_wait_us");
      i_task_wall_us = counter (prefix ^ ".task_wall_us");
      i_spawns = counter (prefix ^ ".spawns");
      i_batches = counter (prefix ^ ".batches");
      i_unit_total_us = unit_total;
    }
  in
  Obs.disable ();
  r

(* --- Measurement -------------------------------------------------------------- *)

type engine_result = {
  e_best : float;
  e_runs : float list;
  e_instr : instrumented;
}

(* [instrument] (default [engine]) is what the counter-harvesting pass runs:
   the pool engine substitutes a fresh pool created *after* [Obs.enable], so
   the workers inherit the live recorder and the cold spawn cost is on the
   books — the timed runs still measure the warm persistent pool. *)
let measure ~prefix ?instrument engine files baseline_output =
  let runs =
    List.init repeats (fun _ ->
        let dt, out, code = time engine files in
        if out <> !baseline_output then begin
          if !baseline_output = "" then baseline_output := out
          else begin
            Printf.eprintf "DETERMINISM VIOLATION (%s)\n" prefix;
            exit 1
          end
        end;
        if code <> 1 then begin
          (* bad_sector's claim fails by design: every run must say so *)
          Printf.eprintf "unexpected exit code %d (%s)\n" code prefix;
          exit 1
        end;
        dt)
  in
  let instr =
    instrumented_run ~prefix
      (Option.value instrument ~default:engine)
      files !baseline_output
  in
  { e_best = List.fold_left Float.min infinity runs; e_runs = runs; e_instr = instr }

let () =
  let overhead_ns = disabled_overhead_ns_per_call () in
  if overhead_ns > obs_budget_ns then begin
    Printf.eprintf
      "FAIL: disabled Obs.count costs %.1f ns/call (budget %.0f ns) — the \
       disabled path must stay one branch\n"
      overhead_ns obs_budget_ns;
    exit 1
  end;
  Printf.printf "disabled-obs overhead: %.1f ns per Obs.count call (budget %.0f)\n"
    overhead_ns obs_budget_ns;
  let dir = Filename.temp_file "shelley_bench" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let files = write_corpus dir in
  let cores = nproc () in
  let levels = List.sort_uniq compare [ 1; 2; 4; cores ] in
  Printf.printf
    "parallel checking: %d files x %d repeats, %d core(s) online, pool vs \
     fork-per-task%s\n\n"
    corpus_size repeats cores
    (if smoke then " [smoke]" else "");
  let baseline_output = ref "" in
  (* Sequential inline baseline first: it defines the bytes every other
     configuration must reproduce. *)
  let seq =
    measure ~prefix:"pool"
      (fun fs -> Checker.check_files ~jobs:1 fs)
      files baseline_output
  in
  Printf.printf "  sequential (inline)   best %7.1f ms\n\n" (seq.e_best *. 1000.);
  let results =
    List.map
      (fun jobs ->
        let pool = Checker.make_pool ~jobs () in
        let pooled_cold fs =
          let p = Checker.make_pool ~jobs () in
          Fun.protect
            ~finally:(fun () -> Checker.shutdown_pool p)
            (fun () -> Checker.check_files ~jobs ~pool:p fs)
        in
        let pooled =
          Fun.protect
            ~finally:(fun () -> Checker.shutdown_pool pool)
            (fun () ->
              measure ~prefix:"pool" ~instrument:pooled_cold (pool_run ~pool ~jobs)
                files baseline_output)
        in
        let forkper =
          measure ~prefix:"runner" (forkper_run ~jobs) files baseline_output
        in
        Printf.printf "  -j %-2d  pool           best %7.1f ms  (all: %s)\n" jobs
          (pooled.e_best *. 1000.)
          (String.concat ", "
             (List.map (fun t -> Printf.sprintf "%.1f ms" (t *. 1000.)) pooled.e_runs));
        Printf.printf
          "         · %d spawns, %d batches, fork %d us, queue-wait %d us, \
           task-wall %d us\n"
          pooled.e_instr.i_spawns pooled.e_instr.i_batches pooled.e_instr.i_fork_us
          pooled.e_instr.i_queue_wait_us pooled.e_instr.i_task_wall_us;
        Printf.printf "         fork-per-task  best %7.1f ms  (all: %s)\n"
          (forkper.e_best *. 1000.)
          (String.concat ", "
             (List.map (fun t -> Printf.sprintf "%.1f ms" (t *. 1000.)) forkper.e_runs));
        Printf.printf "         · %d spawns, fork %d us, queue-wait %d us, task-wall %d us\n"
          forkper.e_instr.i_spawns forkper.e_instr.i_fork_us
          forkper.e_instr.i_queue_wait_us forkper.e_instr.i_task_wall_us;
        Printf.printf "         pool vs fork-per-task: %.2fx\n" (forkper.e_best /. pooled.e_best);
        (jobs, pooled, forkper))
      levels
  in
  Printf.printf "\n";
  List.iter
    (fun (jobs, pooled, _) ->
      Printf.printf "  pool speedup -j %d vs sequential: %.2fx\n" jobs
        (seq.e_best /. pooled.e_best))
    results;
  (* The -j 4 >= 1.5x floor: enforced in full mode where the hardware can
     express parallelism at all; skipped loudly on a single core. *)
  let floor_required = 1.5 in
  let floor_measured =
    List.find_map
      (fun (jobs, pooled, _) -> if jobs = 4 then Some (seq.e_best /. pooled.e_best) else None)
      results
  in
  let floor_enforced = (not smoke) && cores >= 2 in
  (match (floor_enforced, floor_measured) with
  | true, Some speedup when speedup < floor_required ->
    Printf.eprintf
      "FAIL: pool -j 4 speedup %.2fx is under the %.1fx floor on a %d-core \
       machine\n"
      speedup floor_required cores;
    exit 1
  | true, Some speedup ->
    Printf.printf "\nfloor: pool -j 4 speedup %.2fx >= %.1fx — OK\n" speedup floor_required
  | true, None ->
    Printf.eprintf "FAIL: no -j 4 level was measured, cannot enforce the floor\n";
    exit 1
  | false, _ ->
    Printf.printf
      "\nfloor: SKIPPED (%s) — the %.1fx -j 4 floor is only meaningful in full \
       mode on >= 2 cores; CI's multicore runners enforce it\n"
      (if smoke then "smoke mode" else Printf.sprintf "%d core online" cores)
      floor_required);
  let json =
    let engine_json ?(batches = false) (e : engine_result) =
      let per_file total = if corpus_size = 0 then 0 else total / corpus_size in
      Printf.sprintf
        "{\"best_seconds\": %.6f, \"all_seconds\": [%s], \
         \"speedup_vs_sequential\": %.3f, \"spawns\": %d%s, \"fork_us_total\": %d, \
         \"fork_us_per_file\": %d, \"queue_wait_us_total\": %d, \
         \"queue_wait_us_per_file\": %d, \"task_wall_us_total\": %d, \
         \"unit_total_us\": %d}"
        e.e_best
        (String.concat ", " (List.map (Printf.sprintf "%.6f") e.e_runs))
        (seq.e_best /. e.e_best) e.e_instr.i_spawns
        (if batches then Printf.sprintf ", \"batches\": %d" e.e_instr.i_batches else "")
        e.e_instr.i_fork_us
        (per_file e.e_instr.i_fork_us)
        e.e_instr.i_queue_wait_us
        (per_file e.e_instr.i_queue_wait_us)
        e.e_instr.i_task_wall_us e.e_instr.i_unit_total_us
    in
    let run_json (jobs, pooled, forkper) =
      Printf.sprintf
        "    {\"jobs\": %d,\n     \"pool\": %s,\n     \"fork_per_task\": %s,\n\
        \     \"pool_vs_fork_per_task_speedup\": %.3f}"
        jobs
        (engine_json ~batches:true pooled)
        (engine_json forkper)
        (forkper.e_best /. pooled.e_best)
    in
    Printf.sprintf
      "{\n  \"benchmark\": \"parallel_checking\",\n  \"corpus_files\": %d,\n\
      \  \"repeats\": %d,\n  \"cores_online\": %d,\n\
      \  \"disabled_obs_ns_per_call\": %.1f,\n\
      \  \"output_byte_identical_across_levels\": true,\n\
      \  \"sequential_best_seconds\": %.6f,\n\
      \  \"speedup_floor\": {\"required\": %.1f, \"jobs\": 4, \"enforced\": %b, \
       \"measured\": %s},\n\
      \  \"results\": [\n%s\n  ]\n}\n"
      corpus_size repeats cores overhead_ns seq.e_best floor_required floor_enforced
      (match floor_measured with
      | Some s -> Printf.sprintf "%.3f" s
      | None -> "null")
      (String.concat ",\n" (List.map run_json results))
  in
  let oc = open_out_bin "BENCH_parallel.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "\nwrote BENCH_parallel.json; output byte-identical across all levels\n";
  List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) files;
  try Unix.rmdir dir with Unix.Unix_error _ -> ()
