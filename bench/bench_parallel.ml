(* Parallel-checking benchmark: wall-clock for [shelley check -j N] levels
   over a synthetic corpus, via the same {!Checker.check_files} entry the
   CLI uses. Emits machine-readable results to BENCH_parallel.json and a
   human summary to stdout, and asserts two contracts along the way:

   - determinism: the concatenated output of every jobs level (with and
     without the observability recorder enabled) must be byte-identical
     to the sequential run;
   - zero disabled overhead: a disabled [Obs.count] must cost on the
     order of a branch — the run aborts if it exceeds a generous
     per-call budget.

   Besides wall times, each level gets one *instrumented* run whose pool
   counters (fork time, queue wait, task wall time) and per-unit totals
   go into the JSON — the data behind EXPERIMENTS.md's explanation of
   why -j > 1 can lose on a small machine.

   Run: dune exec bench/bench_parallel.exe [--smoke] [CORPUS_SIZE] *)

let smoke = Array.exists (String.equal "--smoke") Sys.argv

let corpus_size =
  let positional =
    Array.to_list Sys.argv |> List.tl
    |> List.find_opt (fun a -> a <> "--smoke")
  in
  match positional with
  | Some n -> int_of_string n
  | None -> if smoke then 6 else 24

let repeats = if smoke then 1 else 3

(* One corpus file = the paper's two listings together: a composite class
   with a claim, so each unit exercises parsing, inference, the product
   check and the LTL checker — a realistic per-file workload. *)
let file_source = Sources.valve ^ "\n" ^ Sources.bad_sector

let write_corpus dir =
  List.init corpus_size (fun i ->
      let path = Filename.concat dir (Printf.sprintf "unit_%02d.py" i) in
      let oc = open_out_bin path in
      output_string oc file_source;
      close_out oc;
      path)

let nproc () =
  (* getconf is POSIX; fall back to 1 if unavailable. *)
  let ic = Unix.open_process_in "getconf _NPROCESSORS_ONLN 2>/dev/null" in
  let n = try int_of_string (String.trim (input_line ic)) with _ -> 1 in
  ignore (Unix.close_process_in ic);
  max 1 n

let concat_output verdicts =
  String.concat "" (List.map (fun v -> v.Checker.output) verdicts)

let time_run ~jobs files =
  let t0 = Unix.gettimeofday () in
  let verdicts = Checker.check_files ~jobs files in
  let dt = Unix.gettimeofday () -. t0 in
  (dt, concat_output verdicts, Checker.exit_code verdicts)

(* The no-op guard for the zero-overhead claim: with the recorder disabled,
   [Obs.count] is one branch on a ref. 200 ns/call is ~two orders of
   magnitude above what that costs on any machine this runs on, so a failure
   means someone made the disabled path allocate or take a lock. *)
let disabled_overhead_ns_per_call () =
  assert (not (Obs.enabled ()));
  let calls = 10_000_000 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to calls do
    Obs.count "bench.noop" 1
  done;
  let dt = Unix.gettimeofday () -. t0 in
  dt *. 1e9 /. float_of_int calls

let obs_budget_ns = 200.0

(* One instrumented run per jobs level: same entry point, recorder on,
   pool/unit numbers harvested from the recorder afterwards. *)
type instrumented = {
  i_fork_us : int;
  i_queue_wait_us : int;
  i_task_wall_us : int;
  i_spawns : int;
  i_unit_total_us : int;  (* summed in-worker span time across units *)
}

let instrumented_run ~jobs files baseline_output =
  Obs.enable ~fake_clock:false ();
  let verdicts = Checker.check_files ~jobs files in
  if concat_output verdicts <> baseline_output then begin
    Printf.eprintf "DETERMINISM VIOLATION with observability enabled at -j %d\n" jobs;
    exit 1
  end;
  let counter key = Option.value ~default:0 (List.assoc_opt key (Obs.counters ())) in
  let unit_total =
    List.fold_left (fun acc (_, p) -> acc + Obs.profile_total_us p) 0 (Obs.units ())
  in
  let r =
    {
      i_fork_us = counter "runner.fork_us";
      i_queue_wait_us = counter "runner.queue_wait_us";
      i_task_wall_us = counter "runner.task_wall_us";
      i_spawns = counter "runner.spawns";
      i_unit_total_us = unit_total;
    }
  in
  Obs.disable ();
  r

let () =
  let overhead_ns = disabled_overhead_ns_per_call () in
  if overhead_ns > obs_budget_ns then begin
    Printf.eprintf
      "FAIL: disabled Obs.count costs %.1f ns/call (budget %.0f ns) — the \
       disabled path must stay one branch\n"
      overhead_ns obs_budget_ns;
    exit 1
  end;
  Printf.printf "disabled-obs overhead: %.1f ns per Obs.count call (budget %.0f)\n"
    overhead_ns obs_budget_ns;
  let dir = Filename.temp_file "shelley_bench" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let files = write_corpus dir in
  let cores = nproc () in
  let levels =
    List.sort_uniq compare [ 1; 2; 4; cores ] |> List.filter (fun j -> j >= 1)
  in
  Printf.printf "parallel checking: %d files x %d repeats, %d core(s) online%s\n\n"
    corpus_size repeats cores
    (if smoke then " [smoke]" else "");
  let baseline_output = ref "" in
  let results =
    List.map
      (fun jobs ->
        let runs =
          List.init repeats (fun _ ->
              let dt, out, code = time_run ~jobs files in
              if !baseline_output = "" then baseline_output := out
              else if out <> !baseline_output then begin
                Printf.eprintf "DETERMINISM VIOLATION at -j %d\n" jobs;
                exit 1
              end;
              if code <> 1 then begin
                (* bad_sector's claim fails by design: every run must say so *)
                Printf.eprintf "unexpected exit code %d at -j %d\n" code jobs;
                exit 1
              end;
              dt)
        in
        let instr = instrumented_run ~jobs files !baseline_output in
        let best = List.fold_left Float.min infinity runs in
        Printf.printf "  -j %-2d  best %7.1f ms  (all: %s)\n" jobs (best *. 1000.)
          (String.concat ", "
             (List.map (fun t -> Printf.sprintf "%.1f ms" (t *. 1000.)) runs));
        Printf.printf
          "         pool: %d spawns, fork %d us, queue-wait %d us, task-wall %d us, \
           in-worker spans %d us\n"
          instr.i_spawns instr.i_fork_us instr.i_queue_wait_us instr.i_task_wall_us
          instr.i_unit_total_us;
        (jobs, best, runs, instr))
      levels
  in
  let seq_best =
    match results with
    | (1, best, _, _) :: _ -> best
    | _ -> infinity
  in
  Printf.printf "\n";
  List.iter
    (fun (jobs, best, _, _) ->
      if jobs > 1 then
        Printf.printf "  speedup -j %d vs -j 1: %.2fx\n" jobs (seq_best /. best))
    results;
  let json =
    let run_json (jobs, best, runs, instr) =
      let per_file total =
        if corpus_size = 0 then 0 else total / corpus_size
      in
      Printf.sprintf
        "    {\"jobs\": %d, \"best_seconds\": %.6f, \"all_seconds\": [%s], \
         \"speedup_vs_sequential\": %.3f, \"spawns\": %d, \"fork_us_total\": %d, \
         \"fork_us_per_file\": %d, \"queue_wait_us_total\": %d, \
         \"queue_wait_us_per_file\": %d, \"task_wall_us_total\": %d, \
         \"unit_total_us\": %d}"
        jobs best
        (String.concat ", " (List.map (Printf.sprintf "%.6f") runs))
        (seq_best /. best) instr.i_spawns instr.i_fork_us (per_file instr.i_fork_us)
        instr.i_queue_wait_us
        (per_file instr.i_queue_wait_us)
        instr.i_task_wall_us instr.i_unit_total_us
    in
    Printf.sprintf
      "{\n  \"benchmark\": \"parallel_checking\",\n  \"corpus_files\": %d,\n\
      \  \"repeats\": %d,\n  \"cores_online\": %d,\n\
      \  \"disabled_obs_ns_per_call\": %.1f,\n\
      \  \"output_byte_identical_across_levels\": true,\n  \"results\": [\n%s\n  ]\n}\n"
      corpus_size repeats cores overhead_ns
      (String.concat ",\n" (List.map run_json results))
  in
  let oc = open_out_bin "BENCH_parallel.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "\nwrote BENCH_parallel.json; output byte-identical across all levels\n";
  List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) files;
  try Unix.rmdir dir with Unix.Unix_error _ -> ()
