(* Result-cache benchmark: cold vs warm wall-clock for [shelley check
   --cache] over a synthetic corpus, via the same {!Checker.check_files}
   entry the CLI uses. Emits machine-readable results to BENCH_cache.json
   and a human summary to stdout, and asserts the cache's two contracts
   along the way:

   - correctness: the concatenated output and exit code of every warm run
     (all hits), every mixed run (half the corpus primed) and every
     parallel warm run must be byte-identical to the uncached sequential
     run;
   - profitability: the best warm run must be at least [speedup_floor]
     times faster than the best cold run (asserted in full mode only;
     [--smoke] records the ratio without judging it, since a 1-repeat run
     on a loaded CI box is noise).

   Run: dune exec bench/bench_cache.exe [--smoke] [CORPUS_SIZE] *)

let smoke = Array.exists (String.equal "--smoke") Sys.argv

let corpus_size =
  let positional =
    Array.to_list Sys.argv |> List.tl
    |> List.find_opt (fun a -> a <> "--smoke")
  in
  match positional with
  | Some n -> int_of_string n
  | None -> if smoke then 6 else 24

let repeats = if smoke then 1 else 3
let speedup_floor = 5.0

(* Same per-file workload as bench_parallel: the paper's two listings
   together, so a unit exercises parsing, inference, the product check and
   the LTL checker — the work a hit gets to skip. A [salt] comment makes
   every file's bytes unique, so each occupies its own cache entry. *)
let file_source i =
  Printf.sprintf "# unit %d\n%s\n%s" i Sources.valve Sources.bad_sector

let write_corpus dir =
  List.init corpus_size (fun i ->
      let path = Filename.concat dir (Printf.sprintf "unit_%02d.py" i) in
      let oc = open_out_bin path in
      output_string oc (file_source i);
      close_out oc;
      path)

let concat_output verdicts =
  String.concat "" (List.map (fun v -> v.Checker.output) verdicts)

let time_run ?cache ~jobs files =
  let t0 = Unix.gettimeofday () in
  let verdicts = Checker.check_files ?cache ~jobs files in
  let dt = Unix.gettimeofday () -. t0 in
  (dt, concat_output verdicts, Checker.exit_code verdicts)

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let must_match ~label baseline (out, code) =
  if out <> baseline then die "DETERMINISM VIOLATION: %s output differs" label;
  if code <> 1 then die "unexpected exit code %d in %s run" code label

(* Harvest the cache counters of one observed warm run, to prove the
   speedup is the cache's doing and not a warm page cache. *)
let observed_warm ~cache files baseline =
  Obs.enable ~fake_clock:false ();
  let verdicts = Checker.check_files ~cache ~jobs:1 files in
  must_match ~label:"observed warm" baseline
    (concat_output verdicts, Checker.exit_code verdicts);
  let counter key =
    Option.value ~default:0 (List.assoc_opt key (Obs.stable_counters ()))
  in
  let r = (counter "cache.hits", counter "cache.misses", counter "cache.bytes_read") in
  Obs.disable ();
  r

let () =
  let dir = Filename.temp_file "shelley_bench_cache" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let cache_dir = Filename.concat dir "cache" in
  let files = write_corpus dir in
  Printf.printf "result cache: %d files x %d repeats%s\n\n" corpus_size repeats
    (if smoke then " [smoke]" else "");
  (* The uncached sequential run is the output oracle every cached run must
     reproduce byte for byte. *)
  let _, baseline, base_code = time_run ~jobs:1 files in
  if base_code <> 1 then die "unexpected baseline exit code %d" base_code;
  let fresh_cache () =
    let rec rm path =
      if Sys.is_directory path then begin
        Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
    in
    if Sys.file_exists cache_dir then rm cache_dir;
    match Cache.open_dir cache_dir with
    | Ok c -> c
    | Error msg -> die "cannot open cache: %s" msg
  in
  (* Cold: every run starts from an empty cache, so it pays full
     verification plus the store. *)
  let cold_times =
    List.init repeats (fun _ ->
        let cache = fresh_cache () in
        let dt, out, code = time_run ~cache ~jobs:1 files in
        must_match ~label:"cold" baseline (out, code);
        dt)
  in
  (* Warm: one priming run, then timed all-hit runs against the same
     directory. *)
  let cache = fresh_cache () in
  let _, prime_out, prime_code = time_run ~cache ~jobs:1 files in
  must_match ~label:"priming" baseline (prime_out, prime_code);
  let warm_times =
    List.init repeats (fun _ ->
        let dt, out, code = time_run ~cache ~jobs:1 files in
        must_match ~label:"warm" baseline (out, code);
        dt)
  in
  let _, wj4_out, wj4_code = time_run ~cache ~jobs:4 files in
  must_match ~label:"warm -j 4" baseline (wj4_out, wj4_code);
  (* Mixed: prime only half the corpus, then run the whole of it — hits and
     misses interleave and the output must still match. *)
  let mixed_cache = fresh_cache () in
  let half = List.filteri (fun i _ -> i mod 2 = 0) files in
  let _ = Checker.check_files ~cache:mixed_cache ~jobs:1 half in
  let _, mixed_out, mixed_code = time_run ~cache:mixed_cache ~jobs:4 files in
  must_match ~label:"mixed" baseline (mixed_out, mixed_code);
  let hits, misses, bytes_read = observed_warm ~cache files baseline in
  if hits <> corpus_size || misses <> 0 then
    die "warm run expected %d hits / 0 misses, saw %d / %d" corpus_size hits misses;
  let best l = List.fold_left Float.min infinity l in
  let cold_best = best cold_times and warm_best = best warm_times in
  let speedup = cold_best /. warm_best in
  Printf.printf "  cold  best %7.1f ms  (all: %s)\n" (cold_best *. 1000.)
    (String.concat ", "
       (List.map (fun t -> Printf.sprintf "%.1f ms" (t *. 1000.)) cold_times));
  Printf.printf "  warm  best %7.1f ms  (all: %s)\n" (warm_best *. 1000.)
    (String.concat ", "
       (List.map (fun t -> Printf.sprintf "%.1f ms" (t *. 1000.)) warm_times));
  Printf.printf "  speedup warm vs cold: %.1fx (floor %.0fx%s)\n" speedup speedup_floor
    (if smoke then ", not enforced in smoke mode" else "");
  Printf.printf "  warm counters: %d hits, %d misses, %d bytes read\n" hits misses
    bytes_read;
  if (not smoke) && speedup < speedup_floor then
    die "FAIL: warm speedup %.2fx is below the %.0fx floor" speedup speedup_floor;
  let json =
    Printf.sprintf
      "{\n  \"benchmark\": \"result_cache\",\n  \"corpus_files\": %d,\n\
      \  \"repeats\": %d,\n  \"cold_best_seconds\": %.6f,\n\
      \  \"cold_all_seconds\": [%s],\n  \"warm_best_seconds\": %.6f,\n\
      \  \"warm_all_seconds\": [%s],\n  \"warm_speedup\": %.2f,\n\
      \  \"speedup_floor\": %.1f,\n  \"floor_enforced\": %b,\n\
      \  \"warm_hits\": %d,\n  \"warm_misses\": %d,\n  \"warm_bytes_read\": %d,\n\
      \  \"output_byte_identical\": true\n}\n"
      corpus_size repeats cold_best
      (String.concat ", " (List.map (Printf.sprintf "%.6f") cold_times))
      warm_best
      (String.concat ", " (List.map (Printf.sprintf "%.6f") warm_times))
      speedup speedup_floor (not smoke) hits misses bytes_read
  in
  let oc = open_out_bin "BENCH_cache.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "\nwrote BENCH_cache.json; output byte-identical across cached runs\n";
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      try Unix.rmdir path with Unix.Unix_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()
  in
  rm dir
