bench/sources.ml: Buffer Printf
