bench/main.mli:
