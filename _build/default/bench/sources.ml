(* The paper's listings, shared by the benchmark harness. Identical to the
   examples' sources; duplicated here only because dune keeps example and
   bench module trees separate. *)

let valve =
  {|
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)
        self.clean = Pin(28, OUT)
        self.status = Pin(29, IN)

    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        self.control.on()
        return ["close"]

    @op_final
    def close(self):
        self.control.off()
        return ["test"]

    @op_final
    def clean(self):
        self.clean.on()
        return ["test"]
|}

let bad_sector =
  {|
@claim("(!a.open) W b.open")
@sys(["a", "b"])
class BadSector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def open_a(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                return ["open_b"]
            case ["clean"]:
                self.a.clean()
                print("a failed")
                return []

    @op_final
    def open_b(self):
        match self.b.test():
            case ["open"]:
                self.b.open()
                self.a.close()
                self.b.close()
                return []
            case ["clean"]:
                self.b.clean()
                print("b failed")
                self.a.close()
                return []
|}

let listing31_sector =
  {|
@sys(["a"])
class Sector:
    def __init__(self):
        self.a = Valve()

    @op_initial
    def open_a(self):
        if self.gauge.ok():
            return ["close_a", "open_b"]
        else:
            return ["clean_a"]

    @op
    def clean_a(self):
        return ["open_a"]

    @op
    def close_a(self):
        return ["open_a"]

    @op_final
    def open_b(self):
        if done:
            return []
        else:
            return []
|}

(* Synthetic composite with [n] middle operations chained in a ring, each
   exercising the valve — used for scaling benchmarks. *)
let chain_composite n =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "@sys([\"v\"])\nclass Chain:\n    def __init__(self):\n        self.v = Valve()\n\n";
  let op_name i = Printf.sprintf "step%d" i in
  for i = 0 to n - 1 do
    let decorator =
      if i = 0 then "@op_initial" else if i = n - 1 then "@op_final" else "@op"
    in
    let next = if i = n - 1 then "" else Printf.sprintf "\"%s\"" (op_name (i + 1)) in
    Buffer.add_string buf
      (Printf.sprintf
         "    %s\n    def %s(self):\n        match self.v.test():\n            case [\"open\"]:\n                self.v.open()\n                self.v.close()\n                return [%s]\n            case [\"clean\"]:\n                self.v.clean()\n                return [%s]\n\n"
         decorator (op_name i) next next)
  done;
  Buffer.contents buf

(* Like [chain_composite], but the final operation leaves the valve open —
   the verifier must walk the whole chain to exhibit the violation, which
   makes counterexample depth proportional to [n]. *)
let chain_with_leak n =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "@sys([\"v\"])\nclass LeakyChain:\n    def __init__(self):\n        self.v = Valve()\n\n";
  let op_name i = Printf.sprintf "step%d" i in
  for i = 0 to n - 1 do
    let decorator =
      if i = 0 && n = 1 then "@op_initial_final"
      else if i = 0 then "@op_initial"
      else if i = n - 1 then "@op_final"
      else "@op"
    in
    let next = if i = n - 1 then "" else Printf.sprintf "\"%s\"" (op_name (i + 1)) in
    if i = n - 1 then
      (* The bug: test, open, but never close. *)
      Buffer.add_string buf
        (Printf.sprintf
           "    %s\n    def %s(self):\n        match self.v.test():\n            case [\"open\"]:\n                self.v.open()\n                return []\n            case [\"clean\"]:\n                self.v.clean()\n                return []\n\n"
           decorator (op_name i))
    else
      Buffer.add_string buf
        (Printf.sprintf
           "    %s\n    def %s(self):\n        match self.v.test():\n            case [\"open\"]:\n                self.v.open()\n                self.v.close()\n                return [%s]\n            case [\"clean\"]:\n                self.v.clean()\n                return [%s]\n\n"
           decorator (op_name i) next next)
  done;
  Buffer.contents buf
