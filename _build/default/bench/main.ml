(* The benchmark harness.

   Part 1 regenerates every table and figure of the paper (it is a
   formalization paper, so its artifacts are tables, figures and error
   transcripts rather than performance numbers):

     T1  Table 1   annotation glossary
     T2  Table 2   return-statement shapes and meanings
     F1  Figure 1  Valve diagram (DOT)
     F2  Figure 2  BadSector diagram (DOT)
     F3  Figure 3  Sector (Listing 3.1) model / dependency graph (DOT)
     F4  Figure 4  Examples 1-3: semantics judgments and behavior inference
     E1  §2.2      INVALID SUBSYSTEM USAGE transcript
     E2  §2.2      FAIL TO MEET REQUIREMENT transcript

   Part 2 measures the implementation (Bechamel): inference scaling, the
   semantics-oracle baseline vs regex matching, Thompson vs Glushkov,
   Hopcroft vs Moore, derivative matching vs compiled DFA, LTLf progression,
   and the end-to-end pipeline — the ablations listed in DESIGN.md §5.

   Run everything:          dune exec bench/main.exe
   Only the artifacts:      dune exec bench/main.exe -- artifacts
   Only the measurements:   dune exec bench/main.exe -- perf *)

let section title =
  Printf.printf "\n================ %s ================\n\n" title

(* ------------------------------------------------------------------ *)
(* Part 1: artifact regeneration                                       *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "T1: Table 1 — Shelley annotations";
  Printf.printf "%-28s %-8s %s\n" "Annotation" "Applies" "Meaning";
  List.iter
    (fun (annotation, applies, meaning) ->
      Printf.printf "%-28s %-8s %s\n" annotation applies meaning)
    Annotations.table

let table2 () =
  section "T2: Table 2 — return statements and their meanings";
  let describe stmt =
    (* Parse the return value with the real parser and classify it exactly
       the way extraction does. *)
    let source =
      Printf.sprintf "class T:\n    @op_initial_final\n    def m(self):\n        return %s\n"
        stmt
    in
    let cls = Mpy_parser.parse_class source in
    let meth = Option.get (Mpy_ast.find_method cls "m") in
    match Mpy_ast.returns_of_method meth with
    | [ r ] ->
      let next =
        match r.Mpy_ast.ret_next with
        | Some [] -> "no method may follow"
        | Some ops ->
          Printf.sprintf "expecting %s to be invoked next"
            (String.concat " or " (List.map (Printf.sprintf "%S") ops))
        | None -> "not a next-operation list"
      in
      let value = if r.Mpy_ast.ret_has_value then " and return a user value" else "" in
      next ^ value
    | _ -> assert false
  in
  List.iter
    (fun stmt -> Printf.printf "return %-24s %s\n" stmt (describe stmt))
    [
      "[\"close\"]";
      "[\"open\", \"clean\"]";
      "[\"close\"], 2";
      "[\"close\"], True";
      "[\"open\", \"clean\"], 2";
    ]

let models_of source =
  Pipeline.verify_source_exn source

let figure1 () =
  section "F1: Figure 1 — Valve diagram";
  let result = models_of Sources.valve in
  print_string (Dot.of_model (Option.get (Pipeline.find_model result "Valve")))

let figure2 () =
  section "F2: Figure 2 — BadSector diagram";
  let result = models_of (Sources.valve ^ Sources.bad_sector) in
  print_string (Dot.of_model (Option.get (Pipeline.find_model result "BadSector")))

let figure3 () =
  section "F3: Figure 3 — Sector (Listing 3.1) dependency graph";
  let result = models_of (Sources.valve ^ Sources.listing31_sector) in
  let sector = Option.get (Pipeline.find_model result "Sector") in
  print_string (Dot.of_depgraph sector);
  print_newline ();
  print_string (Dot.of_model sector)

let figure4 () =
  section "F4: Figure 4 — semantics and behavior inference (Examples 1-3)";
  let p = Ir_examples.paper_loop in
  Format.printf "program p = %a@.@." Prog.pp p;
  Format.printf "Example 1:  0 |- [%a] in p   %b@." Trace.pp Ir_examples.example1_trace
    (Semantics.derivable Semantics.Ongoing Ir_examples.example1_trace p);
  Format.printf "Example 2:  R |- [%a] in p   %b@.@." Trace.pp Ir_examples.example2_trace
    (Semantics.derivable Semantics.Returned Ir_examples.example2_trace p);
  (match Derivation.search Semantics.Ongoing Ir_examples.example1_trace p with
  | Some d ->
    Format.printf "Example 1's derivation (%d rule applications, checker: %b):@.%a@."
      (Derivation.size d) (Derivation.check d) Derivation.pp d
  | None -> failwith "Example 1 derivation not found");
  (match Derivation.search Semantics.Returned Ir_examples.example2_trace p with
  | Some d ->
    Format.printf "Example 2's derivation (%d rule applications, checker: %b):@.%a@."
      (Derivation.size d) (Derivation.check d) Derivation.pp d
  | None -> failwith "Example 2 derivation not found");
  let d = Infer.denote p in
  Format.printf "Example 3:  [[p]] = %a@." Infer.pp_denotation d;
  Format.printf "            infer(p) = %a@.@." Regex.pp (Infer.infer p);
  Format.printf "paper's ongoing component (a·((b·0)+c))* is language-equal: %b@."
    (Equiv.equivalent d.Infer.ongoing Ir_examples.example3_expected_ongoing);
  let sem = Semantics.behavior_upto ~max_len:6 p in
  let inferred = Enumerate.words_upto ~max_len:6 (Infer.infer p) in
  Format.printf "Theorems 1+2 on p, bounded to length 6: L(p) = L(infer p): %b@."
    (Trace.Set.equal sem inferred)

let transcripts () =
  section "E1+E2: the two §2.2 error transcripts";
  let result = models_of (Sources.valve ^ Sources.bad_sector) in
  List.iter
    (fun r -> Format.printf "%a@.@." Report.pp r)
    (Report.errors result.Pipeline.reports)

let artifacts () =
  table1 ();
  table2 ();
  figure1 ();
  figure2 ();
  figure3 ();
  figure4 ();
  transcripts ()

(* ------------------------------------------------------------------ *)
(* Part 2: performance measurements                                    *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

let run_group name tests =
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) ~kde:None ~stabilize:false ()
  in
  let grouped = Test.make_grouped ~name tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun test_name ols_result acc ->
        let nanos =
          match Analyze.OLS.estimates ols_result with
          | Some (estimate :: _) -> estimate
          | _ -> nan
        in
        (test_name, nanos) :: acc)
      results []
    |> List.sort compare
  in
  Printf.printf "\n--- %s ---\n" name;
  List.iter
    (fun (test_name, nanos) ->
      let pretty =
        if nanos >= 1e9 then Printf.sprintf "%8.3f  s" (nanos /. 1e9)
        else if nanos >= 1e6 then Printf.sprintf "%8.3f ms" (nanos /. 1e6)
        else if nanos >= 1e3 then Printf.sprintf "%8.3f us" (nanos /. 1e3)
        else Printf.sprintf "%8.1f ns" nanos
      in
      Printf.printf "  %-55s %s/run\n" test_name pretty)
    rows

let staged = Staged.stage

let bench_inference () =
  (* Inference is one syntax-directed pass; this checks it scales linearly
     in program size. *)
  let family = Prog_gen.sized_family ~sizes:[ 10; 50; 200; 1000 ] ~seed:42 in
  run_group "behavior inference: infer(p) vs program size"
    (List.map
       (fun (size, p) ->
         Test.make
           ~name:(Printf.sprintf "infer size=%d" size)
           (staged (fun () -> Infer.infer p)))
       family)

let bench_oracle_vs_regex () =
  (* The semantics oracle (bounded lfp enumeration) against regex matching:
     the naive-baseline comparison on the same judgment. *)
  let p = Ir_examples.paper_loop in
  let trace = Trace.of_names [ "a"; "c"; "a"; "c"; "a"; "c"; "a"; "b" ] in
  let r = Infer.infer p in
  run_group "membership l in L(p): semantics oracle vs inferred regex"
    [
      Test.make ~name:"oracle (bounded-lfp enumeration)"
        (staged (fun () -> Semantics.in_behavior trace p));
      Test.make ~name:"inference (Brzozowski matching)"
        (staged (fun () -> Deriv.matches r trace));
    ]

let sized_program n = List.assoc n (Prog_gen.sized_family ~sizes:[ n ] ~seed:7)

let bench_constructions () =
  let regexes =
    [ ("paper", Infer.infer Ir_examples.paper_loop); ("size-200", Infer.infer (sized_program 200)) ]
  in
  run_group "regex to NFA: Thompson vs Glushkov"
    (List.concat_map
       (fun (tag, r) ->
         [
           Test.make
             ~name:(Printf.sprintf "thompson %s" tag)
             (staged (fun () -> Thompson.of_regex r));
           Test.make
             ~name:(Printf.sprintf "glushkov %s" tag)
             (staged (fun () -> Glushkov.of_regex r));
         ])
       regexes)

let bench_minimization () =
  let dfa = Determinize.determinize (Thompson.of_regex (Infer.infer (sized_program 200))) in
  run_group "DFA minimization: Hopcroft vs Moore"
    [
      Test.make ~name:"hopcroft" (staged (fun () -> Minimize.minimize_hopcroft dfa));
      Test.make ~name:"moore" (staged (fun () -> Minimize.minimize_moore dfa));
    ]

let bench_matching () =
  let r = Infer.infer Ir_examples.paper_loop in
  let dfa = Minimize.minimize (Determinize.determinize (Glushkov.of_regex r)) in
  let long_trace = List.concat (List.init 50 (fun _ -> Trace.of_names [ "a"; "c" ])) in
  run_group "matching a 100-event trace: derivatives vs compiled DFA"
    [
      Test.make ~name:"derivative matching" (staged (fun () -> Deriv.matches r long_trace));
      Test.make ~name:"DFA run" (staged (fun () -> Dfa.accepts dfa long_trace));
    ]

let bench_ltl () =
  let alphabet = List.map Symbol.intern [ "a.open"; "a.close"; "b.open"; "b.close" ] in
  let claims =
    [
      ("paper W-claim", Ltl_parser.parse "(!a.open) W b.open");
      ("response", Ltl_parser.parse "G (a.open -> F a.close)");
      ("nested", Ltl_parser.parse "G (a.open -> X ((!b.open) U a.close))");
    ]
  in
  run_group "LTLf automaton construction: progression DFA vs tableau NFA"
    (List.concat_map
       (fun (tag, f) ->
         [
           Test.make
             ~name:(Printf.sprintf "progression %s" tag)
             (staged (fun () -> Progression.to_dfa ~alphabet f));
           Test.make
             ~name:(Printf.sprintf "tableau %s" tag)
             (staged (fun () -> Tableau.to_nfa ~alphabet f));
         ])
       claims)

let bench_pipeline () =
  let paper_source = Sources.valve ^ Sources.bad_sector in
  let chain8 = Sources.valve ^ Sources.chain_composite 8 in
  let chain32 = Sources.valve ^ Sources.chain_composite 32 in
  run_group "end-to-end pipeline (parse, extract, verify)"
    [
      Test.make ~name:"paper example (Valve + BadSector)"
        (staged (fun () -> Pipeline.verify_source_exn paper_source));
      Test.make ~name:"chain composite, 8 ops"
        (staged (fun () -> Pipeline.verify_source_exn chain8));
      Test.make ~name:"chain composite, 32 ops"
        (staged (fun () -> Pipeline.verify_source_exn chain32));
    ]

let bench_usage_scaling () =
  let cases =
    List.map
      (fun n ->
        let result = Pipeline.verify_source_exn (Sources.valve ^ Sources.chain_composite n) in
        ( n,
          Option.get (Pipeline.find_model result "Chain"),
          Option.get (Pipeline.find_model result "Valve") ))
      [ 4; 16; 64 ]
  in
  run_group "subsystem-usage check vs composite size"
    (List.map
       (fun (n, chain, valve) ->
         let env name = if String.equal name "Valve" then Some valve else None in
         Test.make
           ~name:(Printf.sprintf "check chain n=%d" n)
           (staged (fun () ->
                Usage.check_subsystem ~env chain ~field:"v" ~subsystem_class:"Valve")))
       cases)

let bench_check_vs_baseline () =
  (* DESIGN.md decision 6: the exact product-BFS subsystem check against a
     naive baseline that enumerates complete composite traces up to a bound
     and validates each projection. On the tiny paper example the baseline
     is cheaper, but it is incomplete (misses counterexamples past the
     bound) and its cost is exponential in the bound, while the product
     check is exact and polynomial in the automaton sizes. *)
  let result = Pipeline.verify_source_exn (Sources.valve ^ Sources.bad_sector) in
  let bad = Option.get (Pipeline.find_model result "BadSector") in
  let valve = Option.get (Pipeline.find_model result "Valve") in
  let env name = if String.equal name "Valve" then Some valve else None in
  let expanded = Usage.expanded_nfa bad in
  let valve_usage = Depgraph.usage_nfa valve in
  let baseline () =
    Trace.Set.exists
      (fun w ->
        let projected = Usage.project_subsystem ~field:"a" w in
        not (Nfa.accepts valve_usage (Trace.of_names projected)))
      (Nfa.words_upto ~max_len:8 expanded)
  in
  run_group "subsystem check: exact product vs bounded enumeration baseline"
    [
      Test.make ~name:"exact (product BFS, complete)"
        (staged (fun () ->
             Usage.check_subsystem ~env bad ~field:"a" ~subsystem_class:"Valve"));
      Test.make ~name:"baseline (enumerate <= 8, incomplete)" (staged baseline);
    ]

let bench_nusmv_and_viz () =
  let result = Pipeline.verify_source_exn (Sources.valve ^ Sources.bad_sector) in
  let bad = Option.get (Pipeline.find_model result "BadSector") in
  run_group "back ends: DOT and NuSMV emission"
    [
      Test.make ~name:"DOT (Figure 2)" (staged (fun () -> Dot.of_model bad));
      Test.make ~name:"NuSMV translation" (staged (fun () -> Nusmv.model_of_class bad));
    ]

let bench_counterexample_depth () =
  (* The violation sits at the end of an n-op chain, so the shortest
     counterexample has length ~3n: how does BFS witness search scale? *)
  let cases =
    List.map
      (fun n ->
        let result = Pipeline.verify_source_exn (Sources.valve ^ Sources.chain_with_leak n) in
        ( n,
          Option.get (Pipeline.find_model result "LeakyChain"),
          Option.get (Pipeline.find_model result "Valve") ))
      [ 2; 8; 32 ]
  in
  List.iter
    (fun (n, chain, valve) ->
      let env name = if String.equal name "Valve" then Some valve else None in
      match Usage.check_subsystem ~env chain ~field:"v" ~subsystem_class:"Valve" with
      | Some _ -> ()
      | None -> failwith (Printf.sprintf "leaky chain n=%d unexpectedly verified" n))
    cases;
  run_group "counterexample search vs violation depth (leaky chain)"
    (List.map
       (fun (n, chain, valve) ->
         let env name = if String.equal name "Valve" then Some valve else None in
         Test.make
           ~name:(Printf.sprintf "find leak at depth %d" n)
           (staged (fun () ->
                Usage.check_subsystem ~env chain ~field:"v" ~subsystem_class:"Valve")))
       cases)

let obligations_table () =
  (* Not a timing: the size of the LTLf progression state space vs formula,
     the metric behind DESIGN.md decision 5. *)
  let alphabet = List.map Symbol.intern [ "a.open"; "a.close"; "b.open"; "b.close" ] in
  Printf.printf "\n--- LTLf state space: reachable obligations / minimized DFA states ---\n";
  List.iter
    (fun text ->
      let f = Ltl_parser.parse text in
      let obligations = Progression.num_reachable_obligations ~alphabet f in
      let dfa = Progression.to_dfa ~alphabet f in
      let minimal = Minimize.minimize dfa in
      let tableau = Tableau.to_nfa ~alphabet f in
      Printf.printf "  %-45s %3d obligations, %3d minimal DFA states, %3d tableau states\n"
        text obligations (Dfa.num_states minimal) (Nfa.num_states tableau))
    [
      "(!a.open) W b.open";
      "G (a.open -> F a.close)";
      "G (a.open -> X ((!b.open) U a.close))";
      "F a.open && F b.open && F a.close";
      "G (a.open -> WX (G !a.open))";
    ]

let perf () =
  section "performance measurements (Bechamel, OLS ns/run)";
  bench_inference ();
  bench_oracle_vs_regex ();
  bench_constructions ();
  bench_minimization ();
  bench_matching ();
  bench_ltl ();
  bench_pipeline ();
  bench_usage_scaling ();
  bench_counterexample_depth ();
  bench_check_vs_baseline ();
  bench_nusmv_and_viz ();
  obligations_table ()

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match mode with
  | "artifacts" -> artifacts ()
  | "perf" -> perf ()
  | "all" ->
    artifacts ();
    perf ()
  | other ->
    prerr_endline ("unknown mode " ^ other ^ " (expected: artifacts | perf | all)");
    exit 2
