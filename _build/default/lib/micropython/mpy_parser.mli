(** Recursive-descent parser for the MicroPython subset.

    Consumes the layout-token stream of {!Mpy_lexer} and produces
    {!Mpy_ast.program}. Anything the analysis does not model but Python
    allows in the subset's positions (arbitrary expressions, annotations,
    imports) is parsed and retained or explicitly erased; constructs outside
    the subset (nested [def], [try], [lambda], …) are parse errors with
    positions. *)

exception Parse_error of string * int * int
(** [(message, line, col)] *)

val parse_program : string -> Mpy_ast.program
(** @raise Parse_error on syntax errors.
    @raise Mpy_lexer.Lex_error on lexical errors. *)

val parse_class : string -> Mpy_ast.class_def
(** Convenience: parse a source expected to contain exactly one class.
    @raise Parse_error if there is not exactly one class definition. *)

val parse_expression : string -> Mpy_ast.expr
(** Parse a single expression (used by tests and the Table 2 bench). *)
