(** Tokens of the MicroPython subset, with source positions.

    The lexer is indentation-aware in the Python way: it emits [Newline],
    [Indent] and [Dedent] tokens from a stack of indentation columns, so the
    parser can treat blocks like bracketed ones. *)

type kind =
  | Name of string
  | Int_lit of int
  | Str_lit of string
  (* keywords *)
  | Kw_class
  | Kw_def
  | Kw_return
  | Kw_if
  | Kw_elif
  | Kw_else
  | Kw_match
  | Kw_case
  | Kw_for
  | Kw_while
  | Kw_in
  | Kw_pass
  | Kw_true
  | Kw_false
  | Kw_none
  | Kw_not
  | Kw_and
  | Kw_or
  | Kw_import
  | Kw_from
  | Kw_break
  | Kw_continue
  (* punctuation *)
  | At  (** [@] introducing a decorator *)
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Colon
  | Comma
  | Dot
  | Assign  (** [=] *)
  | Arrow  (** [->] in annotations, skipped *)
  | Operator of string  (** [==], [<], [+], … — uninterpreted by the analysis *)
  (* layout *)
  | Newline
  | Indent
  | Dedent
  | Eof

type t = {
  kind : kind;
  line : int;  (** 1-based *)
  col : int;  (** 0-based column of the first character *)
}

val describe : kind -> string
(** For error messages: ["keyword 'def'"], ["identifier \"valve\""], … *)

val pp : Format.formatter -> t -> unit
