exception Lex_error of string * int * int

let keyword_of = function
  | "class" -> Some Mpy_token.Kw_class
  | "def" -> Some Kw_def
  | "return" -> Some Kw_return
  | "if" -> Some Kw_if
  | "elif" -> Some Kw_elif
  | "else" -> Some Kw_else
  | "match" -> Some Kw_match
  | "case" -> Some Kw_case
  | "for" -> Some Kw_for
  | "while" -> Some Kw_while
  | "in" -> Some Kw_in
  | "pass" -> Some Kw_pass
  | "True" -> Some Kw_true
  | "False" -> Some Kw_false
  | "None" -> Some Kw_none
  | "not" -> Some Kw_not
  | "and" -> Some Kw_and
  | "or" -> Some Kw_or
  | "import" -> Some Kw_import
  | "from" -> Some Kw_from
  | "break" -> Some Kw_break
  | "continue" -> Some Kw_continue
  | _ -> None

let is_name_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_name_char c = is_name_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

type state = {
  input : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of the beginning of the current line *)
  mutable indents : int list;  (* indentation stack, innermost first *)
  mutable depth : int;  (* nesting of () and [] — suppresses layout *)
  mutable at_line_start : bool;
  mutable tokens : Mpy_token.t list;  (* reversed *)
}

let col st = st.pos - st.bol

let emit st kind =
  st.tokens <- { Mpy_token.kind; line = st.line; col = col st } :: st.tokens

let emit_at st kind ~line ~col = st.tokens <- { Mpy_token.kind; line; col } :: st.tokens
let error st msg = raise (Lex_error (msg, st.line, col st))
let peek_char st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let newline st =
  st.line <- st.line + 1;
  st.pos <- st.pos + 1;
  st.bol <- st.pos;
  st.at_line_start <- true

(* Measure the indentation of the line starting at st.pos; returns None if the
   line is blank or a pure comment (to be skipped entirely). *)
let rec measure_indent st =
  let width = ref 0 in
  let i = ref st.pos in
  let n = String.length st.input in
  while
    !i < n
    &&
    match st.input.[!i] with
    | ' ' ->
      incr width;
      true
    | '\t' ->
      width := (!width / 8 * 8) + 8;
      true
    | _ -> false
  do
    incr i
  done;
  st.pos <- !i;
  if !i >= n then None
  else
    match st.input.[!i] with
    | '\n' ->
      newline st;
      measure_indent st
    | '#' ->
      while st.pos < n && st.input.[st.pos] <> '\n' do
        st.pos <- st.pos + 1
      done;
      if st.pos < n then begin
        newline st;
        measure_indent st
      end
      else None
    | _ -> Some !width

let handle_indentation st =
  match measure_indent st with
  | None ->
    (* End of file reached while looking for the next logical line. *)
    st.at_line_start <- false
  | Some width ->
    st.at_line_start <- false;
    let current = List.hd st.indents in
    if width > current then begin
      st.indents <- width :: st.indents;
      emit st Mpy_token.Indent
    end
    else if width < current then begin
      let rec pop () =
        match st.indents with
        | top :: rest when width < top ->
          st.indents <- rest;
          emit st Mpy_token.Dedent;
          pop ()
        | top :: _ ->
          if width <> top then error st "inconsistent dedentation"
        | [] -> error st "inconsistent dedentation"
      in
      pop ()
    end

let lex_string st quote =
  let start_line = st.line and start_col = col st in
  let buf = Buffer.create 16 in
  st.pos <- st.pos + 1;
  let rec go () =
    match peek_char st with
    | None -> raise (Lex_error ("unterminated string literal", start_line, start_col))
    | Some '\n' -> raise (Lex_error ("unterminated string literal", start_line, start_col))
    | Some c when c = quote -> st.pos <- st.pos + 1
    | Some '\\' -> (
      st.pos <- st.pos + 1;
      match peek_char st with
      | Some 'n' ->
        Buffer.add_char buf '\n';
        st.pos <- st.pos + 1;
        go ()
      | Some 't' ->
        Buffer.add_char buf '\t';
        st.pos <- st.pos + 1;
        go ()
      | Some c ->
        Buffer.add_char buf c;
        st.pos <- st.pos + 1;
        go ()
      | None -> raise (Lex_error ("unterminated string literal", start_line, start_col)))
    | Some c ->
      Buffer.add_char buf c;
      st.pos <- st.pos + 1;
      go ()
  in
  go ();
  emit_at st (Mpy_token.Str_lit (Buffer.contents buf)) ~line:start_line ~col:start_col

let two_char_operators = [ "=="; "!="; "<="; ">="; "//"; "**"; "+="; "-="; "*="; "/=" ]

let tokenize input =
  (* Normalize CRLF/CR endings once so the layout code only sees '\n'. *)
  let input = String.concat "" (String.split_on_char '\r' input) in
  let st =
    {
      input;
      pos = 0;
      line = 1;
      bol = 0;
      indents = [ 0 ];
      depth = 0;
      at_line_start = true;
      tokens = [];
    }
  in
  let n = String.length input in
  let rec loop () =
    if st.at_line_start && st.depth = 0 then handle_indentation st;
    if st.pos >= n then ()
    else begin
      (match st.input.[st.pos] with
      | ' ' | '\t' -> st.pos <- st.pos + 1

      | '\n' ->
        if st.depth = 0 then begin
          (* Collapse runs of newlines into one logical Newline token. *)
          (match st.tokens with
          | { kind = Newline; _ } :: _ | [] | { kind = Indent; _ } :: _ -> ()
          | _ -> emit st Mpy_token.Newline);
          newline st
        end
        else newline st
      | '#' ->
        while st.pos < n && st.input.[st.pos] <> '\n' do
          st.pos <- st.pos + 1
        done
      | '\'' -> lex_string st '\''
      | '"' -> lex_string st '"'
      | '(' ->
        emit st Mpy_token.Lparen;
        st.depth <- st.depth + 1;
        st.pos <- st.pos + 1
      | ')' ->
        emit st Mpy_token.Rparen;
        st.depth <- max 0 (st.depth - 1);
        st.pos <- st.pos + 1
      | '[' ->
        emit st Mpy_token.Lbracket;
        st.depth <- st.depth + 1;
        st.pos <- st.pos + 1
      | ']' ->
        emit st Mpy_token.Rbracket;
        st.depth <- max 0 (st.depth - 1);
        st.pos <- st.pos + 1
      | ':' ->
        emit st Mpy_token.Colon;
        st.pos <- st.pos + 1
      | ',' ->
        emit st Mpy_token.Comma;
        st.pos <- st.pos + 1
      | '.' ->
        emit st Mpy_token.Dot;
        st.pos <- st.pos + 1
      | '@' ->
        emit st Mpy_token.At;
        st.pos <- st.pos + 1
      | c when is_name_start c ->
        let start = st.pos in
        while st.pos < n && is_name_char st.input.[st.pos] do
          st.pos <- st.pos + 1
        done;
        let word = String.sub st.input start (st.pos - start) in
        let line = st.line and col0 = start - st.bol in
        let kind =
          match keyword_of word with
          | Some kw -> kw
          | None -> Mpy_token.Name word
        in
        emit_at st kind ~line ~col:col0
      | c when is_digit c ->
        let start = st.pos in
        while st.pos < n && is_digit st.input.[st.pos] do
          st.pos <- st.pos + 1
        done;
        let line = st.line and col0 = start - st.bol in
        emit_at st
          (Mpy_token.Int_lit (int_of_string (String.sub st.input start (st.pos - start))))
          ~line ~col:col0
      | _ -> (
        let two =
          if st.pos + 1 < n then Some (String.sub st.input st.pos 2) else None
        in
        match two with
        | Some "->" ->
          emit st Mpy_token.Arrow;
          st.pos <- st.pos + 2
        | Some op when List.mem op two_char_operators ->
          emit st (Mpy_token.Operator op);
          st.pos <- st.pos + 2
        | _ -> (
          match st.input.[st.pos] with
          | '=' ->
            emit st Mpy_token.Assign;
            st.pos <- st.pos + 1
          | ('+' | '-' | '*' | '/' | '%' | '<' | '>') as c ->
            emit st (Mpy_token.Operator (String.make 1 c));
            st.pos <- st.pos + 1
          | c -> error st (Printf.sprintf "unexpected character %C" c))));
      loop ()
    end
  in
  loop ();
  (* Close the last logical line and all open blocks. *)
  (match st.tokens with
  | { kind = Newline; _ } :: _ | [] -> ()
  | _ -> emit st Mpy_token.Newline);
  List.iter
    (fun level -> if level > 0 then emit st Mpy_token.Dedent)
    (List.filter (fun l -> l > 0) st.indents);
  emit st Mpy_token.Eof;
  List.rev st.tokens
