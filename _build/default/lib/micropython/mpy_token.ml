type kind =
  | Name of string
  | Int_lit of int
  | Str_lit of string
  | Kw_class
  | Kw_def
  | Kw_return
  | Kw_if
  | Kw_elif
  | Kw_else
  | Kw_match
  | Kw_case
  | Kw_for
  | Kw_while
  | Kw_in
  | Kw_pass
  | Kw_true
  | Kw_false
  | Kw_none
  | Kw_not
  | Kw_and
  | Kw_or
  | Kw_import
  | Kw_from
  | Kw_break
  | Kw_continue
  | At
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Colon
  | Comma
  | Dot
  | Assign
  | Arrow
  | Operator of string
  | Newline
  | Indent
  | Dedent
  | Eof

type t = {
  kind : kind;
  line : int;
  col : int;
}

let describe = function
  | Name s -> Printf.sprintf "identifier %S" s
  | Int_lit n -> Printf.sprintf "integer %d" n
  | Str_lit s -> Printf.sprintf "string %S" s
  | Kw_class -> "keyword 'class'"
  | Kw_def -> "keyword 'def'"
  | Kw_return -> "keyword 'return'"
  | Kw_if -> "keyword 'if'"
  | Kw_elif -> "keyword 'elif'"
  | Kw_else -> "keyword 'else'"
  | Kw_match -> "keyword 'match'"
  | Kw_case -> "keyword 'case'"
  | Kw_for -> "keyword 'for'"
  | Kw_while -> "keyword 'while'"
  | Kw_in -> "keyword 'in'"
  | Kw_pass -> "keyword 'pass'"
  | Kw_true -> "'True'"
  | Kw_false -> "'False'"
  | Kw_none -> "'None'"
  | Kw_not -> "keyword 'not'"
  | Kw_and -> "keyword 'and'"
  | Kw_or -> "keyword 'or'"
  | Kw_import -> "keyword 'import'"
  | Kw_from -> "keyword 'from'"
  | Kw_break -> "keyword 'break'"
  | Kw_continue -> "keyword 'continue'"
  | At -> "'@'"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Lbracket -> "'['"
  | Rbracket -> "']'"
  | Colon -> "':'"
  | Comma -> "','"
  | Dot -> "'.'"
  | Assign -> "'='"
  | Arrow -> "'->'"
  | Operator op -> Printf.sprintf "operator %S" op
  | Newline -> "end of line"
  | Indent -> "indentation"
  | Dedent -> "dedentation"
  | Eof -> "end of input"

let pp fmt t = Format.fprintf fmt "%s at line %d, col %d" (describe t.kind) t.line t.col
