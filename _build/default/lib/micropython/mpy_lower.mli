(** Lowering MicroPython method bodies to the paper's IR (§3.2).

    The analysis erases values and keeps (a) control flow and (b) method
    calls on [self] fields, exactly as the paper's source-language
    abstraction prescribes: [if/elif/else] and [match/case] become
    nondeterministic choice, [for]/[while] become [loop(★)], everything else
    becomes [skip].

    Each [return] additionally becomes a distinguished *exit marker* event
    immediately before the IR [return], so that the per-exit behaviors (which
    the paper's §3.1 dependency graph links to next-operation sets) can be
    recovered from the single inference pass. [strip_markers] erases the
    markers again, giving the paper-faithful plain program. *)

type exit_info = {
  exit_index : int;  (** 0-based, in source order *)
  exit_line : int;
  exit_next : string list option;  (** as in {!Mpy_ast.return_desc} *)
  exit_has_value : bool;
}

type lowered = {
  low_name : string;  (** method name *)
  low_prog : Prog.t;  (** body with exit markers *)
  low_exits : exit_info list;
  low_warnings : string list;
      (** constructs lowered approximately ([break]/[continue] → [skip]) *)
}

val exit_marker : method_name:string -> int -> Symbol.t
(** The marker event for the k-th exit of a method. Marker names contain
    [%], which cannot occur in MicroPython identifiers, so they never collide
    with field-call events. *)

val is_exit_marker : Symbol.t -> (string * int) option
(** [Some (method_name, k)] if the symbol is an exit marker. *)

val strip_markers : Prog.t -> Prog.t
(** Replace every exit-marker call by [skip] — the paper-faithful program. *)

val field_call_events : Mpy_ast.expr -> Symbol.t list
(** The [self]-field method calls inside an expression, in evaluation order
    (arguments before the call that consumes them), as [field.method]
    events. *)

val lower_method : Mpy_ast.method_def -> lowered

val lower_block : method_name:string -> Mpy_ast.block -> Prog.t * exit_info list * string list
(** Lower a bare statement list (used by tests); exits are numbered from 0. *)
