(* Precedence levels mirror Mpy_parser: or=1, and=2, not=3, comparison=4,
   additive=5, multiplicative=6, unary=7, postfix/atom=8. A node is
   parenthesized when printed in a context tighter than its own level. *)

let level_of_binop = function
  | "or" -> 1
  | "and" -> 2
  | "==" | "!=" | "<" | ">" | "<=" | ">=" | "in" -> 4
  | "+" | "-" -> 5
  | _ -> 6 (* "*", "/", "//", "%", "**" *)

let rec expr_prec (e : Mpy_ast.expr) =
  match e with
  | Binop (op, _, _) -> level_of_binop op
  | Unop ("not", _) -> 3
  | Unop (_, _) -> 7
  | Tuple _ -> 0
  | Name _ | Attr _ | Call _ | Str _ | Int _ | Bool _ | None_lit | List _ | Subscript _ -> 8

and print_at prec (e : Mpy_ast.expr) =
  let body =
    match e with
    | Name n -> n
    | Attr (base, field) -> print_at 8 base ^ "." ^ field
    | Call (target, args) ->
      print_at 8 target ^ "(" ^ String.concat ", " (List.map (print_at 1) args) ^ ")"
    | Str s -> Printf.sprintf "%S" s
    | Int n -> string_of_int n
    | Bool true -> "True"
    | Bool false -> "False"
    | None_lit -> "None"
    | List items -> "[" ^ String.concat ", " (List.map (print_at 1) items) ^ "]"
    | Tuple items -> String.concat ", " (List.map (print_at 1) items)
    | Subscript (base, index) -> print_at 8 base ^ "[" ^ print_at 1 index ^ "]"
    | Unop ("not", operand) -> "not " ^ print_at 3 operand
    | Unop (op, operand) -> op ^ print_at 7 operand
    | Binop (op, left, right) ->
      let my = level_of_binop op in
      let sep = if op = "or" || op = "and" || op = "in" then " " ^ op ^ " " else " " ^ op ^ " " in
      (* or/and are parsed right-recursively, arithmetic left-recursively;
         printing left at my+1 / right at my (or vice versa) keeps the parse
         shape. *)
      (match op with
      | "or" | "and" -> print_at (my + 1) left ^ sep ^ print_at my right
      | _ -> print_at my left ^ sep ^ print_at (my + 1) right)
  in
  if expr_prec e < prec then "(" ^ body ^ ")" else body

let print_expr e = print_at 0 e

let pad indent = String.make (4 * indent) ' '

let print_pattern (p : Mpy_ast.pattern) =
  match p with
  | Pat_list names -> "[" ^ String.concat ", " (List.map (Printf.sprintf "%S") names) ^ "]"
  | Pat_wildcard -> "_"
  | Pat_capture n -> n
  | Pat_literal e -> print_expr e

let rec print_stmt ?(indent = 0) (s : Mpy_ast.stmt) =
  let line text = pad indent ^ text ^ "\n" in
  match s.stmt with
  | Expr_stmt e -> line (print_expr e)
  | Assign (target, value) -> line (print_expr target ^ " = " ^ print_expr value)
  | Return None -> line "return"
  | Return (Some e) -> line ("return " ^ print_expr e)
  | Pass -> line "pass"
  | Break -> line "break"
  | Continue -> line "continue"
  | Import -> line "import machine"
  | While (cond, body) -> line ("while " ^ print_expr cond ^ ":") ^ print_block ~indent body
  | For (var, iter, body) ->
    line ("for " ^ var ^ " in " ^ print_expr iter ^ ":") ^ print_block ~indent body
  | If (branches, else_block) ->
    let chains =
      List.mapi
        (fun i (cond, body) ->
          line ((if i = 0 then "if " else "elif ") ^ print_expr cond ^ ":")
          ^ print_block ~indent body)
        branches
    in
    let else_part =
      match else_block with
      | None -> ""
      | Some body -> line "else:" ^ print_block ~indent body
    in
    String.concat "" chains ^ else_part
  | Match (scrutinee, cases) ->
    line ("match " ^ print_expr scrutinee ^ ":")
    ^ String.concat ""
        (List.map
           (fun (pat, body) ->
             pad (indent + 1) ^ "case " ^ print_pattern pat ^ ":\n"
             ^ print_block ~indent:(indent + 1) body)
           cases)

and print_block ~indent body =
  String.concat "" (List.map (print_stmt ~indent:(indent + 1)) body)

let print_decorator indent (d : Mpy_ast.decorator) =
  pad indent ^ "@" ^ d.dec_name
  ^ (match d.dec_args with
    | [] -> ""
    | args -> "(" ^ String.concat ", " (List.map print_expr args) ^ ")")
  ^ "\n"

let print_method ?(indent = 0) (m : Mpy_ast.method_def) =
  String.concat "" (List.map (print_decorator indent) m.meth_decorators)
  ^ pad indent
  ^ Printf.sprintf "def %s(%s):\n" m.meth_name (String.concat ", " m.meth_params)
  ^ print_block ~indent m.meth_body

let print_class (c : Mpy_ast.class_def) =
  String.concat "" (List.map (print_decorator 0) c.cls_decorators)
  ^ Printf.sprintf "class %s%s:\n" c.cls_name
      (match c.cls_bases with
      | [] -> ""
      | bases -> "(" ^ String.concat ", " bases ^ ")")
  ^ String.concat "\n" (List.map (print_method ~indent:1) c.cls_methods)

let print_program (p : Mpy_ast.program) =
  String.concat "\n" (List.map print_class p.prog_classes)
  ^ (if p.prog_classes <> [] && p.prog_toplevel <> [] then "\n" else "")
  ^ String.concat "" (List.map (print_stmt ~indent:0) p.prog_toplevel)

(* --- Position-independent equality -------------------------------------------- *)

let rec equal_expr (a : Mpy_ast.expr) (b : Mpy_ast.expr) =
  match a, b with
  | Name x, Name y -> String.equal x y
  | Attr (e1, f1), Attr (e2, f2) -> String.equal f1 f2 && equal_expr e1 e2
  | Call (f1, args1), Call (f2, args2) ->
    equal_expr f1 f2 && List.equal equal_expr args1 args2
  | Str x, Str y -> String.equal x y
  | Int x, Int y -> Int.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | None_lit, None_lit -> true
  | List xs, List ys | Tuple xs, Tuple ys -> List.equal equal_expr xs ys
  | Binop (o1, l1, r1), Binop (o2, l2, r2) ->
    String.equal o1 o2 && equal_expr l1 l2 && equal_expr r1 r2
  | Unop (o1, e1), Unop (o2, e2) -> String.equal o1 o2 && equal_expr e1 e2
  | Subscript (e1, i1), Subscript (e2, i2) -> equal_expr e1 e2 && equal_expr i1 i2
  | ( ( Name _ | Attr _ | Call _ | Str _ | Int _ | Bool _ | None_lit | List _ | Tuple _
      | Binop _ | Unop _ | Subscript _ ),
      _ ) ->
    false

let equal_pattern (a : Mpy_ast.pattern) (b : Mpy_ast.pattern) =
  match a, b with
  | Pat_list xs, Pat_list ys -> List.equal String.equal xs ys
  | Pat_wildcard, Pat_wildcard -> true
  | Pat_capture x, Pat_capture y -> String.equal x y
  | Pat_literal x, Pat_literal y -> equal_expr x y
  | (Pat_list _ | Pat_wildcard | Pat_capture _ | Pat_literal _), _ -> false

let rec equal_stmt (a : Mpy_ast.stmt) (b : Mpy_ast.stmt) =
  match a.stmt, b.stmt with
  | Expr_stmt x, Expr_stmt y -> equal_expr x y
  | Assign (t1, v1), Assign (t2, v2) -> equal_expr t1 t2 && equal_expr v1 v2
  | Return None, Return None -> true
  | Return (Some x), Return (Some y) -> equal_expr x y
  | If (br1, e1), If (br2, e2) ->
    List.equal
      (fun (c1, b1) (c2, b2) -> equal_expr c1 c2 && equal_block b1 b2)
      br1 br2
    && Option.equal equal_block e1 e2
  | While (c1, b1), While (c2, b2) -> equal_expr c1 c2 && equal_block b1 b2
  | For (v1, i1, b1), For (v2, i2, b2) ->
    String.equal v1 v2 && equal_expr i1 i2 && equal_block b1 b2
  | Match (s1, cs1), Match (s2, cs2) ->
    equal_expr s1 s2
    && List.equal
         (fun (p1, b1) (p2, b2) -> equal_pattern p1 p2 && equal_block b1 b2)
         cs1 cs2
  | Pass, Pass | Break, Break | Continue, Continue | Import, Import -> true
  | ( ( Expr_stmt _ | Assign _ | Return _ | If _ | While _ | For _ | Match _ | Pass | Break
      | Continue | Import ),
      _ ) ->
    false

and equal_block a b = List.equal equal_stmt a b

let equal_decorator (a : Mpy_ast.decorator) (b : Mpy_ast.decorator) =
  String.equal a.dec_name b.dec_name && List.equal equal_expr a.dec_args b.dec_args

let equal_method (a : Mpy_ast.method_def) (b : Mpy_ast.method_def) =
  String.equal a.meth_name b.meth_name
  && List.equal String.equal a.meth_params b.meth_params
  && List.equal equal_decorator a.meth_decorators b.meth_decorators
  && equal_block a.meth_body b.meth_body

let equal_class (a : Mpy_ast.class_def) (b : Mpy_ast.class_def) =
  String.equal a.cls_name b.cls_name
  && List.equal String.equal a.cls_bases b.cls_bases
  && List.equal equal_decorator a.cls_decorators b.cls_decorators
  && List.equal equal_method a.cls_methods b.cls_methods

let equal_program (a : Mpy_ast.program) (b : Mpy_ast.program) =
  List.equal equal_class a.prog_classes b.prog_classes
  && List.equal equal_stmt a.prog_toplevel b.prog_toplevel
