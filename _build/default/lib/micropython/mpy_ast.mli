(** Abstract syntax of the MicroPython subset Shelley analyzes.

    The subset covers what the paper's §2 listings use: decorated classes,
    methods, field assignment in [__init__], [if/elif/else], [match/case],
    [for], [while], [return] of next-operation lists (optionally tupled with
    a user value), and arbitrary expressions that the analysis will later
    erase. Exceptions, nested functions, nested classes and aliasing are
    outside the subset, matching the paper's restrictions. *)

type expr =
  | Name of string
  | Attr of expr * string  (** [e.field] *)
  | Call of expr * expr list  (** [e(args)] *)
  | Str of string
  | Int of int
  | Bool of bool
  | None_lit
  | List of expr list
  | Tuple of expr list
  | Binop of string * expr * expr  (** uninterpreted: [==], [+], [and], … *)
  | Unop of string * expr  (** [not e], [-e] *)
  | Subscript of expr * expr

type pattern =
  | Pat_list of string list  (** [case ["open", "close"]:] *)
  | Pat_wildcard  (** [case _:] *)
  | Pat_capture of string  (** [case x:] *)
  | Pat_literal of expr  (** [case 2:], [case True:] *)

type stmt = {
  stmt : stmt_kind;
  stmt_line : int;
}

and stmt_kind =
  | Expr_stmt of expr
  | Assign of expr * expr  (** [target = value] (also [+=] etc., desugared) *)
  | Return of expr option
  | If of (expr * block) list * block option
      (** the [if]/[elif] chain with conditions, and the optional [else] *)
  | While of expr * block
  | For of string * expr * block
  | Match of expr * (pattern * block) list
  | Pass
  | Break
  | Continue
  | Import  (** any [import]/[from … import …] line, ignored *)

and block = stmt list

type decorator = {
  dec_name : string;
  dec_args : expr list;
  dec_line : int;
}

type method_def = {
  meth_name : string;
  meth_params : string list;  (** includes [self] *)
  meth_decorators : decorator list;
  meth_body : block;
  meth_line : int;
}

type class_def = {
  cls_name : string;
  cls_bases : string list;
  cls_decorators : decorator list;
  cls_methods : method_def list;
  cls_line : int;
}

type program = {
  prog_classes : class_def list;
  prog_toplevel : stmt list;
}

(** {1 Helpers} *)

val find_method : class_def -> string -> method_def option

type return_desc = {
  ret_line : int;
  ret_next : string list option;
      (** [Some ops] when the returned value is a next-op list (possibly in
          the first position of a tuple, per Table 2); [None] when it is not
          recognizable as one (bare [return], [return None], [return 2]). *)
  ret_has_value : bool;  (** a user value accompanies the list (tuple form) *)
}

val returns_of_method : method_def -> return_desc list
(** Every [return] statement in the method body (recursively), in source
    order. *)

val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_class : Format.formatter -> class_def -> unit
