(** Indentation-aware lexer for the MicroPython subset.

    Implements the Python layout algorithm: a stack of indentation columns,
    one logical [Newline] per non-blank line, [Indent]/[Dedent] tokens on
    column changes, blank lines and [#] comments skipped, and no layout
    tokens inside parentheses/brackets (implicit line joining). Tabs count
    as 8 columns, as in CPython. *)

exception Lex_error of string * int * int
(** [Lex_error (message, line, col)]. *)

val tokenize : string -> Mpy_token.t list
(** The token stream, terminated by [Eof] (preceded by enough [Dedent]s to
    close all open blocks).
    @raise Lex_error on unexpected characters, unterminated strings, or
    inconsistent dedentation. *)
