(** Source-level pretty-printing of the MicroPython AST.

    [print_program] re-emits parseable MicroPython: parsing the output gives
    an AST equal (up to positions) to the input — a property the test-suite
    checks on every sample and on random programs. Useful to normalize
    sources, splice generated classes into files, and debug the lowering. *)

val print_expr : Mpy_ast.expr -> string
val print_stmt : ?indent:int -> Mpy_ast.stmt -> string
val print_method : ?indent:int -> Mpy_ast.method_def -> string
val print_class : Mpy_ast.class_def -> string
val print_program : Mpy_ast.program -> string

(** {1 Position-independent equality}

    Structural equality that ignores the [*_line] position fields — the right
    notion for print/parse round-trips. *)

val equal_expr : Mpy_ast.expr -> Mpy_ast.expr -> bool
val equal_stmt : Mpy_ast.stmt -> Mpy_ast.stmt -> bool
val equal_class : Mpy_ast.class_def -> Mpy_ast.class_def -> bool
val equal_program : Mpy_ast.program -> Mpy_ast.program -> bool
