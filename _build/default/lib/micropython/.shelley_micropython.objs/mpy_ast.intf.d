lib/micropython/mpy_ast.mli: Format
