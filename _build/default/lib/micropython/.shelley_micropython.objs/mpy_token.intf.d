lib/micropython/mpy_token.mli: Format
