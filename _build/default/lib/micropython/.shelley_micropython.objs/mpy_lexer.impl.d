lib/micropython/mpy_lexer.ml: Buffer List Mpy_token Printf String
