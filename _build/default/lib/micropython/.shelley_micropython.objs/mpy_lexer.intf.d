lib/micropython/mpy_lexer.mli: Mpy_token
