lib/micropython/mpy_token.ml: Format Printf
