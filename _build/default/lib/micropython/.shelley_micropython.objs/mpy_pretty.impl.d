lib/micropython/mpy_pretty.ml: Bool Int List Mpy_ast Option Printf String
