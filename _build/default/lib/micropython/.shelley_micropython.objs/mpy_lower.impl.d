lib/micropython/mpy_lower.ml: Fun List Mpy_ast Option Printf Prog String Symbol
