lib/micropython/mpy_ast.ml: Format Fun List Option Printf String
