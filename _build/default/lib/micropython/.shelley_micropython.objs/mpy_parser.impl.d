lib/micropython/mpy_parser.ml: List Mpy_ast Mpy_lexer Mpy_token Printf String
