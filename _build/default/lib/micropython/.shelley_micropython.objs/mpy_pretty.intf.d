lib/micropython/mpy_pretty.mli: Mpy_ast
