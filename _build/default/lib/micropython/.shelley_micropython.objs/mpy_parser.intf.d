lib/micropython/mpy_parser.mli: Mpy_ast
