lib/micropython/mpy_lower.mli: Mpy_ast Prog Symbol
