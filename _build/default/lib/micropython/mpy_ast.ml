type expr =
  | Name of string
  | Attr of expr * string
  | Call of expr * expr list
  | Str of string
  | Int of int
  | Bool of bool
  | None_lit
  | List of expr list
  | Tuple of expr list
  | Binop of string * expr * expr
  | Unop of string * expr
  | Subscript of expr * expr

type pattern =
  | Pat_list of string list
  | Pat_wildcard
  | Pat_capture of string
  | Pat_literal of expr

type stmt = {
  stmt : stmt_kind;
  stmt_line : int;
}

and stmt_kind =
  | Expr_stmt of expr
  | Assign of expr * expr
  | Return of expr option
  | If of (expr * block) list * block option
  | While of expr * block
  | For of string * expr * block
  | Match of expr * (pattern * block) list
  | Pass
  | Break
  | Continue
  | Import

and block = stmt list

type decorator = {
  dec_name : string;
  dec_args : expr list;
  dec_line : int;
}

type method_def = {
  meth_name : string;
  meth_params : string list;
  meth_decorators : decorator list;
  meth_body : block;
  meth_line : int;
}

type class_def = {
  cls_name : string;
  cls_bases : string list;
  cls_decorators : decorator list;
  cls_methods : method_def list;
  cls_line : int;
}

type program = {
  prog_classes : class_def list;
  prog_toplevel : stmt list;
}

let find_method cls name =
  List.find_opt (fun m -> String.equal m.meth_name name) cls.cls_methods

type return_desc = {
  ret_line : int;
  ret_next : string list option;
  ret_has_value : bool;
}

(* Recognize the Table 2 return shapes. *)
let classify_return = function
  | None -> (None, false)
  | Some (List items) ->
    let names =
      List.map
        (function
          | Str s -> Some s
          | _ -> None)
        items
    in
    if List.for_all Option.is_some names then
      (Some (List.filter_map Fun.id names), false)
    else (None, false)
  | Some (Tuple (List items :: rest)) ->
    let names =
      List.map
        (function
          | Str s -> Some s
          | _ -> None)
        items
    in
    if List.for_all Option.is_some names then
      (Some (List.filter_map Fun.id names), rest <> [])
    else (None, rest <> [])
  | Some None_lit -> (None, false)
  | Some _ -> (None, true)

let returns_of_method meth =
  let acc = ref [] in
  let rec walk_block block = List.iter walk_stmt block
  and walk_stmt s =
    match s.stmt with
    | Return value ->
      let ret_next, ret_has_value = classify_return value in
      acc := { ret_line = s.stmt_line; ret_next; ret_has_value } :: !acc
    | If (branches, else_block) ->
      List.iter (fun (_, b) -> walk_block b) branches;
      Option.iter walk_block else_block
    | While (_, b) | For (_, _, b) -> walk_block b
    | Match (_, cases) -> List.iter (fun (_, b) -> walk_block b) cases
    | Expr_stmt _ | Assign _ | Pass | Break | Continue | Import -> ()
  in
  walk_block meth.meth_body;
  List.rev !acc

let rec pp_expr fmt = function
  | Name n -> Format.pp_print_string fmt n
  | Attr (e, f) -> Format.fprintf fmt "%a.%s" pp_expr e f
  | Call (f, args) ->
    Format.fprintf fmt "%a(%a)" pp_expr f
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ") pp_expr)
      args
  | Str s -> Format.fprintf fmt "%S" s
  | Int n -> Format.pp_print_int fmt n
  | Bool true -> Format.pp_print_string fmt "True"
  | Bool false -> Format.pp_print_string fmt "False"
  | None_lit -> Format.pp_print_string fmt "None"
  | List items ->
    Format.fprintf fmt "[%a]"
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ") pp_expr)
      items
  | Tuple items ->
    Format.fprintf fmt "%a"
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ") pp_expr)
      items
  | Binop (op, a, b) -> Format.fprintf fmt "(%a %s %a)" pp_expr a op pp_expr b
  | Unop (op, e) -> Format.fprintf fmt "(%s %a)" op pp_expr e
  | Subscript (e, i) -> Format.fprintf fmt "%a[%a]" pp_expr e pp_expr i

let pp_pattern fmt = function
  | Pat_list names ->
    Format.fprintf fmt "[%s]" (String.concat ", " (List.map (Printf.sprintf "%S") names))
  | Pat_wildcard -> Format.pp_print_string fmt "_"
  | Pat_capture n -> Format.pp_print_string fmt n
  | Pat_literal e -> pp_expr fmt e

let rec pp_stmt fmt s =
  match s.stmt with
  | Expr_stmt e -> pp_expr fmt e
  | Assign (t, v) -> Format.fprintf fmt "%a = %a" pp_expr t pp_expr v
  | Return None -> Format.pp_print_string fmt "return"
  | Return (Some e) -> Format.fprintf fmt "return %a" pp_expr e
  | If (branches, else_block) ->
    List.iteri
      (fun i (cond, body) ->
        Format.fprintf fmt "@[<v 4>%s %a:@,%a@]@," (if i = 0 then "if" else "elif") pp_expr
          cond pp_block body)
      branches;
    Option.iter (fun b -> Format.fprintf fmt "@[<v 4>else:@,%a@]" pp_block b) else_block
  | While (cond, body) -> Format.fprintf fmt "@[<v 4>while %a:@,%a@]" pp_expr cond pp_block body
  | For (var, iter, body) ->
    Format.fprintf fmt "@[<v 4>for %s in %a:@,%a@]" var pp_expr iter pp_block body
  | Match (e, cases) ->
    Format.fprintf fmt "@[<v 4>match %a:@,%a@]" pp_expr e
      (Format.pp_print_list (fun fmt (pat, body) ->
           Format.fprintf fmt "@[<v 4>case %a:@,%a@]" pp_pattern pat pp_block body))
      cases
  | Pass -> Format.pp_print_string fmt "pass"
  | Break -> Format.pp_print_string fmt "break"
  | Continue -> Format.pp_print_string fmt "continue"
  | Import -> Format.pp_print_string fmt "import ..."

and pp_block fmt block =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt fmt block

let pp_class fmt cls =
  List.iter
    (fun d ->
      Format.fprintf fmt "@@%s%s@," d.dec_name (if d.dec_args = [] then "" else "(...)"))
    cls.cls_decorators;
  Format.fprintf fmt "@[<v 4>class %s:@," cls.cls_name;
  Format.pp_print_list ~pp_sep:Format.pp_print_cut
    (fun fmt m ->
      List.iter (fun d -> Format.fprintf fmt "@@%s@," d.dec_name) m.meth_decorators;
      Format.fprintf fmt "@[<v 4>def %s(%s):@,%a@]" m.meth_name
        (String.concat ", " m.meth_params)
        pp_block m.meth_body)
    fmt cls.cls_methods;
  Format.fprintf fmt "@]"
