type exit_info = {
  exit_index : int;
  exit_line : int;
  exit_next : string list option;
  exit_has_value : bool;
}

type lowered = {
  low_name : string;
  low_prog : Prog.t;
  low_exits : exit_info list;
  low_warnings : string list;
}

let exit_marker ~method_name k = Symbol.intern (Printf.sprintf "%%exit:%s:%d" method_name k)

let is_exit_marker sym =
  let s = Symbol.name sym in
  match String.split_on_char ':' s with
  | [ "%exit"; meth; k ] -> (
    match int_of_string_opt k with
    | Some k -> Some (meth, k)
    | None -> None)
  | _ -> None

let rec strip_markers (p : Prog.t) : Prog.t =
  match p with
  | Call f -> if is_exit_marker f <> None then Prog.skip else p
  | Skip | Return -> p
  | Seq (a, b) -> Prog.seq (strip_markers a) (strip_markers b)
  | If (a, b) -> Prog.if_ (strip_markers a) (strip_markers b)
  | Loop body -> Prog.loop (strip_markers body)

(* The dotted field path of an expression rooted at [self], innermost first:
   self.a.b → Some ["a"; "b"]. *)
let rec self_path = function
  | Mpy_ast.Name "self" -> Some []
  | Mpy_ast.Attr (base, field) -> Option.map (fun path -> path @ [ field ]) (self_path base)
  | _ -> None

(* Events of an expression, in evaluation order. *)
let field_call_events expr =
  let events = ref [] in
  let rec walk = function
    | Mpy_ast.Name _ | Str _ | Int _ | Bool _ | None_lit -> ()
    | Attr (base, _) -> walk base
    | Call (target, args) -> (
      (* Python evaluates the callee object, then arguments, then calls. *)
      (match target with
      | Attr (receiver, _) -> walk receiver
      | other -> walk other);
      List.iter walk args;
      match target with
      | Attr (receiver, meth) -> (
        match self_path receiver with
        | Some (_ :: _ as path) ->
          events := Symbol.intern (String.concat "." path ^ "." ^ meth) :: !events
        | Some [] | None -> ())
      | _ -> ())
    | List items | Tuple items -> List.iter walk items
    | Binop (_, a, b) ->
      walk a;
      walk b
    | Unop (_, e) -> walk e
    | Subscript (e, i) ->
      walk e;
      walk i
  in
  walk expr;
  List.rev !events

let events_prog expr = Prog.seq_list (List.map Prog.call (field_call_events expr))

let lower_block ~method_name block =
  let exits = ref [] in
  let warnings = ref [] in
  let next_exit = ref 0 in
  let warn line msg = warnings := Printf.sprintf "line %d: %s" line msg :: !warnings in
  let classify_strings items =
    let names =
      List.map
        (function
          | Mpy_ast.Str s -> Some s
          | _ -> None)
        items
    in
    if List.for_all Option.is_some names then Some (List.filter_map Fun.id names) else None
  in
  let fresh_exit line value =
    let ret_next, ret_has_value =
      (* The Table 2 shapes: a list of op names, or a tuple whose first
         component is such a list and whose rest is a user value. *)
      match value with
      | None | Some Mpy_ast.None_lit -> (None, false)
      | Some (Mpy_ast.List items) -> (classify_strings items, false)
      | Some (Mpy_ast.Tuple (Mpy_ast.List items :: rest)) -> (classify_strings items, rest <> [])
      | Some _ -> (None, true)
    in
    let k = !next_exit in
    incr next_exit;
    exits :=
      { exit_index = k; exit_line = line; exit_next = ret_next; exit_has_value = ret_has_value }
      :: !exits;
    k
  in
  let rec lower_stmts stmts = Prog.seq_list (List.map lower_stmt stmts)
  and lower_stmt (s : Mpy_ast.stmt) =
    match s.stmt with
    | Expr_stmt e -> events_prog e
    | Assign (_, value) -> events_prog value
    | Return value ->
      let value_effects =
        match value with
        | Some e -> events_prog e
        | None -> Prog.skip
      in
      let k = fresh_exit s.stmt_line value in
      Prog.seq_list
        [ value_effects; Prog.call (exit_marker ~method_name k); Prog.return ]
    | If (branches, else_block) ->
      (* Conditions are evaluated in order; a branch body runs after its own
         condition and all earlier (failed) ones. The paper erases conditions
         entirely, so we approximate by emitting each taken branch's
         condition effects before its body and offering all branches as a
         nondeterministic choice. *)
      let arms =
        List.mapi
          (fun i (cond, body) ->
            let earlier =
              List.filteri (fun j _ -> j < i) branches
              |> List.map (fun (c, _) -> events_prog c)
            in
            Prog.seq_list (earlier @ [ events_prog cond; lower_stmts body ]))
          branches
      in
      let else_arm =
        let all_conds = List.map (fun (c, _) -> events_prog c) branches in
        match else_block with
        | Some body -> Prog.seq_list (all_conds @ [ lower_stmts body ])
        | None -> Prog.seq_list all_conds
      in
      Prog.choice (arms @ [ else_arm ])
    | While (cond, body) ->
      let cond_effects = events_prog cond in
      Prog.seq cond_effects (Prog.loop (Prog.seq (lower_stmts body) cond_effects))
    | For (_, iter, body) -> Prog.seq (events_prog iter) (Prog.loop (lower_stmts body))
    | Match (scrutinee, cases) ->
      let effects = events_prog scrutinee in
      Prog.seq effects (Prog.choice (List.map (fun (_, body) -> lower_stmts body) cases))
    | Pass | Import -> Prog.skip
    | Break ->
      warn s.stmt_line "'break' is approximated as 'skip' (extra loop behaviors possible)";
      Prog.skip
    | Continue ->
      warn s.stmt_line "'continue' is approximated as 'skip'";
      Prog.skip
  in
  let prog = lower_stmts block in
  (prog, List.rev !exits, List.rev !warnings)

let lower_method (meth : Mpy_ast.method_def) =
  let prog, exits, warnings = lower_block ~method_name:meth.meth_name meth.meth_body in
  { low_name = meth.meth_name; low_prog = prog; low_exits = exits; low_warnings = warnings }
