type t =
  | Atom of string
  | List of t list

let atom s = Atom s
let list l = List l

exception Parse_error of string

(* --- Printing ----------------------------------------------------------------- *)

let needs_quoting s =
  s = ""
  || String.exists
       (fun c ->
         match c with
         | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';' -> true
         | _ -> false)
       s

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let print_atom s = if needs_quoting s then quote s else s

let rec to_string = function
  | Atom s -> print_atom s
  | List items -> "(" ^ String.concat " " (List.map to_string items) ^ ")"

let rec atoms_only = function
  | Atom _ -> true
  | List items -> List.for_all atoms_only items && List.length items <= 4

let to_string_pretty sexp =
  let buf = Buffer.create 256 in
  let rec go indent sexp =
    match sexp with
    | Atom s -> Buffer.add_string buf (print_atom s)
    | List items when atoms_only sexp || List.length items <= 1 ->
      Buffer.add_string buf (to_string sexp)
    | List (head :: rest) ->
      Buffer.add_char buf '(';
      go indent head;
      List.iter
        (fun item ->
          Buffer.add_char buf '\n';
          Buffer.add_string buf (String.make (indent + 2) ' ');
          go (indent + 2) item)
        rest;
      Buffer.add_char buf ')'
    | List [] -> Buffer.add_string buf "()"
  in
  go 0 sexp;
  Buffer.contents buf

(* --- Reading ------------------------------------------------------------------- *)

type cursor = {
  input : string;
  mutable pos : int;
}

let peek cur = if cur.pos < String.length cur.input then Some cur.input.[cur.pos] else None

let rec skip_blanks cur =
  match peek cur with
  | Some (' ' | '\t' | '\n' | '\r') ->
    cur.pos <- cur.pos + 1;
    skip_blanks cur
  | Some ';' ->
    while peek cur <> None && peek cur <> Some '\n' do
      cur.pos <- cur.pos + 1
    done;
    skip_blanks cur
  | Some _ | None -> ()

let parse_quoted cur =
  (* Opening quote consumed by caller check; consume it here. *)
  cur.pos <- cur.pos + 1;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> raise (Parse_error "unterminated string")
    | Some '"' -> cur.pos <- cur.pos + 1
    | Some '\\' -> (
      cur.pos <- cur.pos + 1;
      match peek cur with
      | Some 'n' ->
        Buffer.add_char buf '\n';
        cur.pos <- cur.pos + 1;
        go ()
      | Some 't' ->
        Buffer.add_char buf '\t';
        cur.pos <- cur.pos + 1;
        go ()
      | Some c ->
        Buffer.add_char buf c;
        cur.pos <- cur.pos + 1;
        go ()
      | None -> raise (Parse_error "unterminated escape"))
    | Some c ->
      Buffer.add_char buf c;
      cur.pos <- cur.pos + 1;
      go ()
  in
  go ();
  Atom (Buffer.contents buf)

let parse_bare cur =
  let start = cur.pos in
  let rec go () =
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';') | None -> ()
    | Some _ ->
      cur.pos <- cur.pos + 1;
      go ()
  in
  go ();
  if cur.pos = start then raise (Parse_error "expected an atom");
  Atom (String.sub cur.input start (cur.pos - start))

let rec parse_one cur =
  skip_blanks cur;
  match peek cur with
  | None -> raise (Parse_error "unexpected end of input")
  | Some '(' ->
    cur.pos <- cur.pos + 1;
    let items = ref [] in
    let rec go () =
      skip_blanks cur;
      match peek cur with
      | Some ')' -> cur.pos <- cur.pos + 1
      | None -> raise (Parse_error "unclosed parenthesis")
      | Some _ ->
        items := parse_one cur :: !items;
        go ()
    in
    go ();
    List (List.rev !items)
  | Some ')' -> raise (Parse_error "unexpected ')'")
  | Some '"' -> parse_quoted cur
  | Some _ -> parse_bare cur

let parse input =
  let cur = { input; pos = 0 } in
  let sexp = parse_one cur in
  skip_blanks cur;
  if peek cur <> None then raise (Parse_error "trailing content after S-expression");
  sexp

let parse_many input =
  let cur = { input; pos = 0 } in
  let items = ref [] in
  let rec go () =
    skip_blanks cur;
    if peek cur <> None then begin
      items := parse_one cur :: !items;
      go ()
    end
  in
  go ();
  List.rev !items

(* --- Helpers -------------------------------------------------------------------- *)

let field name = function
  | List items ->
    List.find_map
      (function
        | List (Atom head :: rest) when String.equal head name -> Some rest
        | _ -> None)
      items
  | Atom _ -> None

let as_atom = function
  | Atom s -> Some s
  | List _ -> None

let field_atom name sexp =
  match field name sexp with
  | Some [ Atom value ] -> Some value
  | Some _ | None -> None

let field_one name sexp =
  match field name sexp with
  | Some [ single ] -> Some single
  | Some _ | None -> None
