(** A small, dependency-free S-expression reader/printer.

    Used by [Model_io] to persist extracted models (so substrates can be
    verified once and shared). Atoms that contain whitespace, parentheses,
    quotes or are empty are printed as double-quoted strings with escapes
    for backslash, quote, newline and tab; anything else prints bare. The
    reader accepts both forms plus semicolon-to-end-of-line comments. *)

type t =
  | Atom of string
  | List of t list

val atom : string -> t
val list : t list -> t

(** {1 Printing} *)

val to_string : t -> string
(** Compact single-line form. *)

val to_string_pretty : t -> string
(** Indented multi-line form (2-space indent, atoms-only lists kept on one
    line). *)

(** {1 Reading} *)

exception Parse_error of string

val parse : string -> t
(** Exactly one S-expression (surrounding whitespace/comments allowed).
    @raise Parse_error otherwise. *)

val parse_many : string -> t list

(** {1 Structure helpers}

    Conventions for records encoded as [(field value…)] lists. *)

val field : string -> t -> t list option
(** [field name sexp] finds the first sub-form whose head atom is [name]
    and returns its remainder, e.g. the [v1, v2] of [(name v1 v2)]. *)

val field_atom : string -> t -> string option
(** The remainder must be exactly one atom. *)

val field_one : string -> t -> t option
(** The remainder must be exactly one S-expression. *)

val as_atom : t -> string option
