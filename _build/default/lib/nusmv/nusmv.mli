(** Translation of Shelley automata and claims to NuSMV.

    The Shelley of the paper "delegates the actual model checking to NuSMV,
    by implementing a translation from a nondeterministic finite automaton
    (NFA) into a NuSMV model" (§5). Our pipeline checks natively, but this
    module provides that translation so the emitted models can be fed to an
    external NuSMV for cross-validation.

    Encoding: finite traces over an ω-engine, the standard trick the paper
    alludes to — one [event] input variable ranged over the alphabet plus a
    distinguished [_end] event, a [state] variable ranged over automaton
    state *sets* is avoided by first determinizing, and an LTLSPEC of shape
    [G (state = accepting-sink-detection)]. Acceptance of the finite word
    [w] corresponds to the DFA state after [w] being accepting when the
    first [_end] is read; claims φ become [LTLSPEC] over the same event
    variable. *)

val module_of_dfa : name:string -> Dfa.t -> string
(** A NuSMV [MODULE main] whose [event] variable ranges over the DFA
    alphabet plus [_end]; the boolean [accept] holds exactly when the run so
    far is accepted. Includes an [INVARSPEC] template marker comment. *)

val module_of_nfa : name:string -> Nfa.t -> string
(** Determinizes first, then {!module_of_dfa}. *)

val ltlspec_of_claim : Ltlf.t -> string
(** The LTLf claim compiled as a NuSMV [LTLSPEC] line over the [event]
    variable, using the standard finite-trace embedding: the formula is
    rewritten over the alive-prefix (before the first [_end]). *)

val model_of_class : Model.t -> string
(** Full NuSMV file for a composite class: the expanded automaton module and
    one LTLSPEC per claim. *)

val sanitize : string -> string
(** Make an event name a valid NuSMV identifier (dots become [__]).
    Exposed for tests. *)
