type t = {
  num_states : int;
  start : States.Set.t;
  accept : States.Set.t;
  delta : States.Set.t Symbol.Map.t array;
  eps : States.Set.t array;
  labels : string option array;
}

let check_state n q = if q < 0 || q >= n then invalid_arg "Nfa: state out of range"

let create ?(labels = []) ~num_states ~start ~accept ~transitions ?(epsilons = []) () =
  let delta = Array.make num_states Symbol.Map.empty in
  let eps = Array.make num_states States.Set.empty in
  let labels_arr = Array.make num_states None in
  List.iter (fun q -> check_state num_states q) start;
  List.iter (fun q -> check_state num_states q) accept;
  List.iter
    (fun (src, sym, dst) ->
      check_state num_states src;
      check_state num_states dst;
      let targets =
        match Symbol.Map.find_opt sym delta.(src) with
        | Some set -> States.Set.add dst set
        | None -> States.Set.singleton dst
      in
      delta.(src) <- Symbol.Map.add sym targets delta.(src))
    transitions;
  List.iter
    (fun (src, dst) ->
      check_state num_states src;
      check_state num_states dst;
      eps.(src) <- States.Set.add dst eps.(src))
    epsilons;
  List.iter
    (fun (q, label) ->
      check_state num_states q;
      labels_arr.(q) <- Some label)
    labels;
  {
    num_states;
    start = States.of_list start;
    accept = States.of_list accept;
    delta;
    eps;
    labels = labels_arr;
  }

let empty_language = create ~num_states:1 ~start:[ 0 ] ~accept:[] ~transitions:[] ()
let eps_language = create ~num_states:1 ~start:[ 0 ] ~accept:[ 0 ] ~transitions:[] ()

let symbol sym =
  create ~num_states:2 ~start:[ 0 ] ~accept:[ 1 ] ~transitions:[ (0, sym, 1) ] ()

let num_states nfa = nfa.num_states
let start nfa = nfa.start
let accept nfa = nfa.accept
let is_accept nfa q = States.Set.mem q nfa.accept
let label nfa q = nfa.labels.(q)

let transitions nfa =
  let acc = ref [] in
  Array.iteri
    (fun src by_sym ->
      Symbol.Map.iter
        (fun sym targets -> States.Set.iter (fun dst -> acc := (src, sym, dst) :: !acc) targets)
        by_sym)
    nfa.delta;
  List.rev !acc

let epsilons nfa =
  let acc = ref [] in
  Array.iteri
    (fun src targets -> States.Set.iter (fun dst -> acc := (src, dst) :: !acc) targets)
    nfa.eps;
  List.rev !acc

let alphabet nfa =
  Array.fold_left
    (fun acc by_sym -> Symbol.Map.fold (fun sym _ acc -> Symbol.Set.add sym acc) by_sym acc)
    Symbol.Set.empty nfa.delta

let successors nfa q sym =
  match Symbol.Map.find_opt sym nfa.delta.(q) with
  | Some set -> set
  | None -> States.Set.empty

let eps_closure nfa set =
  let rec go frontier closed =
    if States.Set.is_empty frontier then closed
    else
      let next =
        States.Set.fold
          (fun q acc -> States.Set.union acc (States.Set.diff nfa.eps.(q) closed))
          frontier States.Set.empty
      in
      go next (States.Set.union closed next)
  in
  go set set

let step nfa config sym =
  let direct =
    States.Set.fold (fun q acc -> States.Set.union acc (successors nfa q sym)) config
      States.Set.empty
  in
  eps_closure nfa direct

let initial_config nfa = eps_closure nfa nfa.start
let accepting_config nfa config = not (States.Set.disjoint config nfa.accept)

let accepts nfa trace =
  let final = List.fold_left (step nfa) (initial_config nfa) trace in
  accepting_config nfa final

(* --- Combinators --------------------------------------------------------- *)

let shift_list off l = List.map (fun (a, s, b) -> (a + off, s, b + off)) l
let shift_eps off l = List.map (fun (a, b) -> (a + off, b + off)) l
let shift_labels off l = List.map (fun (q, lab) -> (q + off, lab)) l

let all_labels nfa =
  Array.to_list nfa.labels
  |> List.mapi (fun q lab -> Option.map (fun l -> (q, l)) lab)
  |> List.filter_map Fun.id

let union a b =
  let off = a.num_states in
  create
    ~labels:(all_labels a @ shift_labels off (all_labels b))
    ~num_states:(a.num_states + b.num_states)
    ~start:(States.Set.elements a.start @ List.map (( + ) off) (States.Set.elements b.start))
    ~accept:(States.Set.elements a.accept @ List.map (( + ) off) (States.Set.elements b.accept))
    ~transitions:(transitions a @ shift_list off (transitions b))
    ~epsilons:(epsilons a @ shift_eps off (epsilons b))
    ()

let concat a b =
  let off = a.num_states in
  let bridge =
    List.concat_map
      (fun qa -> List.map (fun qb -> (qa, qb + off)) (States.Set.elements b.start))
      (States.Set.elements a.accept)
  in
  create
    ~labels:(all_labels a @ shift_labels off (all_labels b))
    ~num_states:(a.num_states + b.num_states)
    ~start:(States.Set.elements a.start)
    ~accept:(List.map (( + ) off) (States.Set.elements b.accept))
    ~transitions:(transitions a @ shift_list off (transitions b))
    ~epsilons:(epsilons a @ shift_eps off (epsilons b) @ bridge)
    ()

let star a =
  (* Fresh hub state: start and accept, ε to old starts, ε back from old
     accepts. The hub guarantees ε-acceptance without disturbing cycles. *)
  let hub = a.num_states in
  let to_starts = List.map (fun q -> (hub, q)) (States.Set.elements a.start) in
  let from_accepts = List.map (fun q -> (q, hub)) (States.Set.elements a.accept) in
  create ~labels:(all_labels a)
    ~num_states:(a.num_states + 1)
    ~start:[ hub ] ~accept:[ hub ] ~transitions:(transitions a)
    ~epsilons:(epsilons a @ to_starts @ from_accepts)
    ()

(* --- Transformations ------------------------------------------------------ *)

let map_symbols f nfa =
  let kept = ref [] in
  let new_eps = ref (epsilons nfa) in
  List.iter
    (fun (src, sym, dst) ->
      match f sym with
      | Some sym' -> kept := (src, sym', dst) :: !kept
      | None -> new_eps := (src, dst) :: !new_eps)
    (transitions nfa);
  create ~labels:(all_labels nfa) ~num_states:nfa.num_states
    ~start:(States.Set.elements nfa.start)
    ~accept:(States.Set.elements nfa.accept)
    ~transitions:!kept ~epsilons:!new_eps ()

let add_self_loops syms nfa =
  let loops =
    List.init nfa.num_states (fun q ->
        List.map (fun sym -> (q, sym, q)) (Symbol.Set.elements syms))
    |> List.concat
  in
  create ~labels:(all_labels nfa) ~num_states:nfa.num_states
    ~start:(States.Set.elements nfa.start)
    ~accept:(States.Set.elements nfa.accept)
    ~transitions:(loops @ transitions nfa)
    ~epsilons:(epsilons nfa) ()

let relabel_states f nfa =
  let labels =
    List.init nfa.num_states (fun q -> Option.map (fun l -> (q, l)) (f q))
    |> List.filter_map Fun.id
  in
  create ~labels ~num_states:nfa.num_states
    ~start:(States.Set.elements nfa.start)
    ~accept:(States.Set.elements nfa.accept)
    ~transitions:(transitions nfa) ~epsilons:(epsilons nfa) ()

let reverse nfa =
  create ~labels:(all_labels nfa) ~num_states:nfa.num_states
    ~start:(States.Set.elements nfa.accept)
    ~accept:(States.Set.elements nfa.start)
    ~transitions:(List.map (fun (a, s, b) -> (b, s, a)) (transitions nfa))
    ~epsilons:(List.map (fun (a, b) -> (b, a)) (epsilons nfa))
    ()

let reachable_from seeds ~next =
  let rec go frontier seen =
    if States.Set.is_empty frontier then seen
    else
      let advance =
        States.Set.fold (fun q acc -> States.Set.union acc (next q)) frontier States.Set.empty
      in
      let fresh = States.Set.diff advance seen in
      go fresh (States.Set.union seen fresh)
  in
  go seeds seeds

let trim nfa =
  let fwd_next q =
    Symbol.Map.fold (fun _ t acc -> States.Set.union t acc) nfa.delta.(q) nfa.eps.(q)
  in
  let forward = reachable_from nfa.start ~next:fwd_next in
  let rev = reverse nfa in
  let bwd_next q =
    Symbol.Map.fold (fun _ t acc -> States.Set.union t acc) rev.delta.(q) rev.eps.(q)
  in
  let backward = reachable_from rev.start ~next:bwd_next in
  let live = States.Set.inter forward backward in
  if States.Set.is_empty live then empty_language
  else begin
    let order = States.Set.elements live in
    let rename = Hashtbl.create 16 in
    List.iteri (fun i q -> Hashtbl.add rename q i) order;
    let keep q = Hashtbl.find_opt rename q in
    let map_pairs l =
      List.filter_map
        (fun (a, b) ->
          match keep a, keep b with
          | Some a', Some b' -> Some (a', b')
          | _ -> None)
        l
    in
    create
      ~labels:
        (List.filter_map
           (fun (q, lab) -> Option.map (fun q' -> (q', lab)) (keep q))
           (all_labels nfa))
      ~num_states:(List.length order)
      ~start:(List.filter_map keep (States.Set.elements nfa.start))
      ~accept:(List.filter_map keep (States.Set.elements nfa.accept))
      ~transitions:
        (List.filter_map
           (fun (a, s, b) ->
             match keep a, keep b with
             | Some a', Some b' -> Some (a', s, b')
             | _ -> None)
           (transitions nfa))
      ~epsilons:(map_pairs (epsilons nfa))
      ()
  end

(* --- Queries -------------------------------------------------------------- *)

module Config_set = Set.Make (States.Set)

(* BFS over ε-closed configurations; visits each configuration once, so the
   first accepting configuration found is reached by a shortest trace. *)
let bfs_configs nfa ~visit =
  let syms = Symbol.Set.elements (alphabet nfa) in
  let seen = ref Config_set.empty in
  let queue = Queue.create () in
  let push config rev_path =
    if not (Config_set.mem config !seen) then begin
      seen := Config_set.add config !seen;
      Queue.add (config, rev_path) queue
    end
  in
  push (initial_config nfa) [];
  let rec loop () =
    match Queue.take_opt queue with
    | None -> ()
    | Some (config, rev_path) -> (
      match visit config rev_path with
      | `Stop -> ()
      | `Continue ->
        List.iter
          (fun sym ->
            let next = step nfa config sym in
            if not (States.Set.is_empty next) then push next (sym :: rev_path))
          syms;
        loop ())
  in
  loop ()

let shortest_accepted nfa =
  let found = ref None in
  bfs_configs nfa ~visit:(fun config rev_path ->
      if accepting_config nfa config then begin
        found := Some (List.rev rev_path);
        `Stop
      end
      else `Continue);
  !found

let shortest_accepted_with_states nfa =
  match shortest_accepted nfa with
  | None -> None
  | Some trace ->
    (* Replay to collect the configuration at each position, then walk
       backward picking one concrete state per position. *)
    let rec replay cur acc = function
      | [] -> List.rev (cur :: acc)
      | sym :: rest -> replay (step nfa cur sym) (cur :: acc) rest
    in
    let configs_arr = Array.of_list (replay (initial_config nfa) [] trace) in
    let trace_arr = Array.of_list trace in
    let n = Array.length trace_arr in
    let step1 q sym = step nfa (eps_closure nfa (States.Set.singleton q)) sym in
    let final =
      States.Set.inter configs_arr.(n) nfa.accept |> States.Set.min_elt
    in
    let path = Array.make (n + 1) final in
    for i = n - 1 downto 0 do
      let sym = trace_arr.(i) in
      let candidates =
        States.Set.filter (fun q -> States.Set.mem path.(i + 1) (step1 q sym)) configs_arr.(i)
      in
      path.(i) <- States.Set.min_elt candidates
    done;
    Some (trace, Array.to_list path)

let is_empty nfa = Option.is_none (shortest_accepted nfa)

let words_upto ~max_len nfa =
  let acc = ref Trace.Set.empty in
  let syms = Symbol.Set.elements (alphabet nfa) in
  let rec go config rev_prefix depth =
    if accepting_config nfa config then acc := Trace.Set.add (List.rev rev_prefix) !acc;
    if depth < max_len then
      List.iter
        (fun sym ->
          let next = step nfa config sym in
          if not (States.Set.is_empty next) then go next (sym :: rev_prefix) (depth + 1))
        syms
  in
  go (initial_config nfa) [] 0;
  !acc

let count_states_and_transitions nfa =
  (nfa.num_states, List.length (transitions nfa) + List.length (epsilons nfa))

let pp fmt nfa =
  Format.fprintf fmt "@[<v>states: %d, start: %a, accept: %a@," nfa.num_states States.pp_set
    nfa.start States.pp_set nfa.accept;
  List.iter
    (fun (a, s, b) -> Format.fprintf fmt "%d --%a--> %d@," a Symbol.pp s b)
    (transitions nfa);
  List.iter (fun (a, b) -> Format.fprintf fmt "%d --eps--> %d@," a b) (epsilons nfa);
  Format.fprintf fmt "@]"
