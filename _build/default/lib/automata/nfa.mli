(** Nondeterministic finite automata with ε-transitions.

    The workhorse model type of the Shelley pipeline: inferred method
    behaviors, class usage automata, expanded composite systems and LTLf
    claim automata all pass through this representation. States are dense
    integers [0 .. num_states-1]; every state may carry an optional
    human-readable label used by diagrams and reports. *)

type t

(** {1 Construction} *)

val create :
  ?labels:(int * string) list ->
  num_states:int ->
  start:int list ->
  accept:int list ->
  transitions:(int * Symbol.t * int) list ->
  ?epsilons:(int * int) list ->
  unit ->
  t
(** Build an NFA. Raises [Invalid_argument] on out-of-range states. *)

val empty_language : t
(** Accepts nothing. *)

val eps_language : t
(** Accepts exactly the empty trace. *)

val symbol : Symbol.t -> t
(** Accepts exactly the one-event trace. *)

(** {1 Accessors} *)

val num_states : t -> int
val start : t -> States.Set.t
val accept : t -> States.Set.t
val is_accept : t -> States.t -> bool
val label : t -> States.t -> string option

val transitions : t -> (int * Symbol.t * int) list
(** All non-ε transitions, in no particular order. *)

val epsilons : t -> (int * int) list

val alphabet : t -> Symbol.Set.t
(** Symbols occurring on transitions. *)

val successors : t -> States.t -> Symbol.t -> States.Set.t
(** Direct (non-ε-closed) successors. *)

(** {1 Running} *)

val eps_closure : t -> States.Set.t -> States.Set.t

val step : t -> States.Set.t -> Symbol.t -> States.Set.t
(** ε-closed step: closure of successors of an (assumed closed) set. *)

val initial_config : t -> States.Set.t
(** ε-closure of the start states. *)

val accepts : t -> Trace.t -> bool

val accepting_config : t -> States.Set.t -> bool
(** Does the configuration contain an accepting state? *)

(** {1 Language combinators (Thompson-style)} *)

val union : t -> t -> t
val concat : t -> t -> t
val star : t -> t

(** {1 Transformations} *)

val map_symbols : (Symbol.t -> Symbol.t option) -> t -> t
(** Relabel transitions; [None] turns the transition into an ε-transition
    (erasure / projection onto a sub-alphabet). *)

val add_self_loops : Symbol.Set.t -> t -> t
(** Add, on every state, a self-loop for each given symbol — lifts a
    specification automaton to a larger alphabet whose extra symbols it
    ignores. *)

val relabel_states : (int -> string option) -> t -> t
(** Replace state labels. *)

val trim : t -> t
(** Remove states that are unreachable from the start or cannot reach an
    accepting state; renumbers states (labels follow). The empty-language
    automaton comes out as {!empty_language}. *)

val reverse : t -> t
(** Language reversal (start/accept swapped, arrows flipped). *)

(** {1 Queries} *)

val is_empty : t -> bool
(** No trace accepted at all. *)

val shortest_accepted : t -> Trace.t option
(** Length-lexicographically minimal accepted trace (BFS). *)

val shortest_accepted_with_states : t -> (Trace.t * States.t list) option
(** Same, also returning one witnessing state path (one state per trace
    position, plus the initial state) — used to attribute counterexamples to
    model locations in error reports. *)

val words_upto : max_len:int -> t -> Trace.Set.t
(** Bounded language, for cross-checks against {!Regex} enumeration. *)

val count_states_and_transitions : t -> int * int

val pp : Format.formatter -> t -> unit
(** Debug rendering: one line per transition. *)
