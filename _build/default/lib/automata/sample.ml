(* Distance from every state to the nearest accepting state (reverse BFS);
   max_int means acceptance is unreachable. *)
let distances_to_accept dfa =
  let n = Dfa.num_states dfa in
  let dist = Array.make n max_int in
  let preds = Hashtbl.create 64 in
  List.iter
    (fun q ->
      List.iter
        (fun sym ->
          let q' = Dfa.next dfa q sym in
          Hashtbl.replace preds q'
            (q :: (Option.value ~default:[] (Hashtbl.find_opt preds q'))))
        (Dfa.alphabet dfa))
    (List.init n Fun.id);
  let queue = Queue.create () in
  States.Set.iter
    (fun q ->
      dist.(q) <- 0;
      Queue.add q queue)
    (Dfa.accept_states dfa);
  let rec bfs () =
    match Queue.take_opt queue with
    | None -> ()
    | Some q ->
      List.iter
        (fun p ->
          if dist.(p) = max_int then begin
            dist.(p) <- dist.(q) + 1;
            Queue.add p queue
          end)
        (Option.value ~default:[] (Hashtbl.find_opt preds q));
      bfs ()
  in
  bfs ();
  dist

let from_dfa ?state ?(target_len = 12) dfa =
  let rng =
    match state with
    | Some s -> s
    | None -> Random.State.make_self_init ()
  in
  let dist = distances_to_accept dfa in
  if dist.(Dfa.start dfa) = max_int then None
  else begin
    let rec walk q acc len =
      let may_stop = Dfa.is_accept dfa q in
      if may_stop && (len >= target_len || Random.State.int rng 3 = 0) then List.rev acc
      else if len >= target_len + 8 then
        (* Hard cap: march straight to the nearest accepting state. *)
        finish q acc
      else begin
        let viable =
          List.filter (fun sym -> dist.(Dfa.next dfa q sym) < max_int) (Dfa.alphabet dfa)
        in
        match viable with
        | [] -> List.rev acc (* q must be accepting: dist q < max_int and no move *)
        | _ ->
          let sym = List.nth viable (Random.State.int rng (List.length viable)) in
          walk (Dfa.next dfa q sym) (sym :: acc) (len + 1)
      end
    and finish q acc =
      if Dfa.is_accept dfa q then List.rev acc
      else
        let sym =
          List.find (fun sym -> dist.(Dfa.next dfa q sym) < dist.(q)) (Dfa.alphabet dfa)
        in
        finish (Dfa.next dfa q sym) (sym :: acc)
    in
    Some (walk (Dfa.start dfa) [] 0)
  end

let from_nfa ?state ?target_len nfa =
  from_dfa ?state ?target_len (Determinize.determinize nfa)

let many ?state ?target_len ~count nfa =
  let dfa = Determinize.determinize nfa in
  List.init count (fun _ -> from_dfa ?state ?target_len dfa) |> List.filter_map Fun.id
