let of_regex r =
  let rec build (r : Regex.t) =
    match r with
    | Empty -> Nfa.empty_language
    | Eps -> Nfa.eps_language
    | Sym s -> Nfa.symbol s
    | Seq (a, b) -> Nfa.concat (build a) (build b)
    | Alt (a, b) -> Nfa.union (build a) (build b)
    | Star a -> Nfa.star (build a)
  in
  build r
