(** State elimination: NFA → regular expression.

    Closes the loop regex → NFA → DFA → regex, which the test-suite uses to
    exercise Corollary 1 (the behavior of a program is a regular language):
    the language must survive every round-trip. Elimination order is lowest
    degree first, a standard heuristic that keeps the output expression
    small. *)

val to_regex : Nfa.t -> Regex.t
