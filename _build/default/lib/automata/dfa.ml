type t = {
  alphabet : Symbol.t array;
  sym_index : int Symbol.Map.t;
  num_states : int;
  start : int;
  accept : bool array;
  table : int array array; (* state -> symbol index -> state *)
}

let create ~alphabet ~num_states ~start ~accept ~next =
  let alphabet = Array.of_list (List.sort_uniq Symbol.compare alphabet) in
  let sym_index =
    Array.to_list alphabet
    |> List.mapi (fun i sym -> (sym, i))
    |> List.fold_left (fun m (sym, i) -> Symbol.Map.add sym i m) Symbol.Map.empty
  in
  if num_states <= 0 then invalid_arg "Dfa.create: need at least one state";
  if start < 0 || start >= num_states then invalid_arg "Dfa.create: start out of range";
  let accept_arr = Array.make num_states false in
  List.iter
    (fun q ->
      if q < 0 || q >= num_states then invalid_arg "Dfa.create: accept out of range";
      accept_arr.(q) <- true)
    accept;
  let table =
    Array.init num_states (fun q ->
        Array.map
          (fun sym ->
            let q' = next q sym in
            if q' < 0 || q' >= num_states then invalid_arg "Dfa.create: next out of range";
            q')
          alphabet)
  in
  { alphabet; sym_index; num_states; start; accept = accept_arr; table }

let alphabet dfa = Array.to_list dfa.alphabet
let num_states dfa = dfa.num_states
let start dfa = dfa.start
let is_accept dfa q = dfa.accept.(q)

let accept_states dfa =
  let acc = ref States.Set.empty in
  Array.iteri (fun q b -> if b then acc := States.Set.add q !acc) dfa.accept;
  !acc

let mem_alphabet dfa sym = Symbol.Map.mem sym dfa.sym_index

let next dfa q sym =
  match Symbol.Map.find_opt sym dfa.sym_index with
  | Some i -> dfa.table.(q).(i)
  | None -> invalid_arg ("Dfa.next: symbol outside alphabet: " ^ Symbol.name sym)

let run dfa trace = List.fold_left (fun q sym -> next dfa q sym) dfa.start trace
let accepts dfa trace = dfa.accept.(run dfa trace)

let same_alphabet a b =
  Array.length a.alphabet = Array.length b.alphabet
  && Array.for_all2 Symbol.equal a.alphabet b.alphabet

let require_same_alphabet a b =
  if not (same_alphabet a b) then
    invalid_arg "Dfa: boolean operation on different alphabets"

let complement dfa = { dfa with accept = Array.map not dfa.accept }

(* Pair construction: state (q1, q2) encoded as q1 * n2 + q2. *)
let product ~combine a b =
  require_same_alphabet a b;
  let n2 = b.num_states in
  create
    ~alphabet:(Array.to_list a.alphabet)
    ~num_states:(a.num_states * n2)
    ~start:((a.start * n2) + b.start)
    ~accept:
      (List.concat_map
         (fun q1 ->
           List.filter_map
             (fun q2 ->
               if combine a.accept.(q1) b.accept.(q2) then Some ((q1 * n2) + q2) else None)
             (List.init n2 Fun.id))
         (List.init a.num_states Fun.id))
    ~next:(fun q sym ->
      let q1 = q / n2 and q2 = q mod n2 in
      (next a q1 sym * n2) + next b q2 sym)

let intersect = product ~combine:( && )
let union = product ~combine:( || )
let difference = product ~combine:(fun x y -> x && not y)

let reachable_states dfa =
  let seen = Array.make dfa.num_states false in
  let rec go q =
    if not seen.(q) then begin
      seen.(q) <- true;
      Array.iter go dfa.table.(q)
    end
  in
  go dfa.start;
  let acc = ref States.Set.empty in
  Array.iteri (fun q b -> if b then acc := States.Set.add q !acc) seen;
  !acc

(* BFS from the start state; first accepting state reached gives a shortest
   accepted trace. *)
let shortest_accepted dfa =
  let visited = Array.make dfa.num_states false in
  let queue = Queue.create () in
  visited.(dfa.start) <- true;
  Queue.add (dfa.start, []) queue;
  let rec loop () =
    match Queue.take_opt queue with
    | None -> None
    | Some (q, rev_path) ->
      if dfa.accept.(q) then Some (List.rev rev_path)
      else begin
        Array.iteri
          (fun i q' ->
            if not visited.(q') then begin
              visited.(q') <- true;
              Queue.add (q', dfa.alphabet.(i) :: rev_path) queue
            end)
          dfa.table.(q);
        loop ()
      end
  in
  loop ()

let is_empty dfa = Option.is_none (shortest_accepted dfa)
let counterexample_inclusion a b = shortest_accepted (difference a b)
let included a b = Option.is_none (counterexample_inclusion a b)

let equivalent a b =
  included a b && included b a

let words_upto ~max_len dfa =
  let acc = ref Trace.Set.empty in
  let rec go q rev_prefix depth =
    if dfa.accept.(q) then acc := Trace.Set.add (List.rev rev_prefix) !acc;
    if depth < max_len then
      Array.iteri
        (fun i q' -> go q' (dfa.alphabet.(i) :: rev_prefix) (depth + 1))
        dfa.table.(q)
  in
  go dfa.start [] 0;
  !acc

let to_nfa dfa =
  let transitions =
    List.concat_map
      (fun q ->
        List.mapi (fun i q' -> (q, dfa.alphabet.(i), q')) (Array.to_list dfa.table.(q)))
      (List.init dfa.num_states Fun.id)
  in
  Nfa.create ~num_states:dfa.num_states ~start:[ dfa.start ]
    ~accept:(States.Set.elements (accept_states dfa))
    ~transitions ()

let restrict_alphabet ~alphabet:new_alphabet dfa =
  let new_alphabet = List.sort_uniq Symbol.compare new_alphabet in
  (* A fresh sink absorbs the added symbols. *)
  let sink = dfa.num_states in
  create ~alphabet:new_alphabet ~num_states:(dfa.num_states + 1) ~start:dfa.start
    ~accept:(States.Set.elements (accept_states dfa))
    ~next:(fun q sym ->
      if q = sink then sink
      else if mem_alphabet dfa sym then next dfa q sym
      else sink)

let pp fmt dfa =
  Format.fprintf fmt "@[<v>states: %d, start: %d, accept: %a@," dfa.num_states dfa.start
    States.pp_set (accept_states dfa);
  Array.iteri
    (fun q row ->
      Array.iteri
        (fun i q' -> Format.fprintf fmt "%d --%a--> %d@," q Symbol.pp dfa.alphabet.(i) q')
        row)
    dfa.table;
  Format.fprintf fmt "@]"
