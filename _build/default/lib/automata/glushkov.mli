(** Glushkov's (position automaton) construction: regex → ε-free NFA.

    Each occurrence of a symbol in the expression becomes one state, plus a
    single initial state; there are no ε-transitions, so the automaton is
    ready for simulation or subset construction without closure computation.
    Computed from the classic [first]/[last]/[follow] position sets. *)

val of_regex : Regex.t -> Nfa.t
(** States: [0] is initial; state [i ≥ 1] is the i-th symbol position in
    left-to-right order, labeled with that symbol's name. *)
