(** Language-level comparisons between NFAs.

    These are the checks the Shelley verifier actually issues: is every trace
    an implementation can produce allowed by a specification, and if not,
    what is the shortest offending trace. Implemented by an on-the-fly
    product of subset constructions — no full determinization when a
    counterexample is close to the start state. *)

val inclusion_counterexample :
  ?alphabet:Symbol.Set.t -> impl:Nfa.t -> spec:Nfa.t -> unit -> Trace.t option
(** Shortest trace accepted by [impl] but not by [spec]. The alphabet
    defaults to the union of both automata's alphabets; pass a larger one if
    the implementation may emit symbols neither mentions. *)

val included : ?alphabet:Symbol.Set.t -> impl:Nfa.t -> spec:Nfa.t -> unit -> bool

val equivalence_counterexample : Nfa.t -> Nfa.t -> Trace.t option
(** Shortest trace in exactly one of the two languages. *)

val equivalent : Nfa.t -> Nfa.t -> bool

val intersect : Nfa.t -> Nfa.t -> Nfa.t
(** Product NFA accepting the intersection (ε-transitions are handled by
    closing configurations on the fly; the result is ε-free). *)
