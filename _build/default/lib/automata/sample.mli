(** Random sampling of accepted traces.

    Given a model automaton, produce random members of its language — useful
    to exercise a physical device with valid usage scenarios (the dual of
    verification: the model as a test generator). Sampling is uniform over
    allowed next-symbols at each step, biased to terminate around a target
    length; it never returns a rejected trace. *)

val from_dfa :
  ?state:Random.State.t -> ?target_len:int -> Dfa.t -> Trace.t option
(** [None] iff the language is empty. The walk only takes steps from which
    an accepting state stays reachable, stops with probability 1/3 whenever
    it may, and past [target_len] (default 12) follows a shortest path to
    acceptance. *)

val from_nfa :
  ?state:Random.State.t -> ?target_len:int -> Nfa.t -> Trace.t option
(** Determinizes, then {!from_dfa}. *)

val many :
  ?state:Random.State.t -> ?target_len:int -> count:int -> Nfa.t -> Trace.t list
(** [count] samples (possibly with repetitions; empty list iff the language
    is empty). *)
