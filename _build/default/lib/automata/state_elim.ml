(* Generalized NFA over regex-labeled edges, with fresh initial state [src]
   and final state [dst] beyond the NFA's own states. *)
let to_regex nfa =
  let n = Nfa.num_states nfa in
  let src = n and dst = n + 1 in
  let edges = Hashtbl.create 64 in
  let get p q =
    match Hashtbl.find_opt edges (p, q) with
    | Some r -> r
    | None -> Regex.empty
  in
  let add p q r = Hashtbl.replace edges (p, q) (Regex.alt (get p q) r) in
  States.Set.iter (fun q -> add src q Regex.eps) (Nfa.start nfa);
  States.Set.iter (fun q -> add q dst Regex.eps) (Nfa.accept nfa);
  List.iter (fun (a, sym, b) -> add a b (Regex.sym sym)) (Nfa.transitions nfa);
  List.iter (fun (a, b) -> add a b Regex.eps) (Nfa.epsilons nfa);
  (* Degree of a state = number of non-∅ incident edges; eliminating
     low-degree states first keeps intermediate expressions small. *)
  let degree s =
    let count = ref 0 in
    for q = 0 to n + 1 do
      if not (Regex.is_empty_syntactic (get s q)) then incr count;
      if not (Regex.is_empty_syntactic (get q s)) then incr count
    done;
    !count
  in
  let remaining = ref (List.init n Fun.id) in
  let eliminate s =
    let self = Regex.star (get s s) in
    let preds =
      List.filter (fun p -> p <> s && not (Regex.is_empty_syntactic (get p s)))
        (src :: !remaining)
    in
    let succs =
      List.filter (fun q -> q <> s && not (Regex.is_empty_syntactic (get s q)))
        (dst :: !remaining)
    in
    List.iter
      (fun p ->
        List.iter
          (fun q -> add p q (Regex.seq_list [ get p s; self; get s q ]))
          succs)
      preds;
    for q = 0 to n + 1 do
      Hashtbl.remove edges (s, q);
      Hashtbl.remove edges (q, s)
    done
  in
  while !remaining <> [] do
    let s =
      List.fold_left
        (fun best q -> if degree q < degree best then q else best)
        (List.hd !remaining) (List.tl !remaining)
    in
    remaining := List.filter (fun q -> q <> s) !remaining;
    eliminate s
  done;
  get src dst
