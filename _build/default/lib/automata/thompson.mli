(** Thompson's construction: regex → NFA with ε-transitions.

    Structural and allocation-light: one pass over the expression, a constant
    number of states per node. Produces more states than {!Glushkov} but
    builds faster; the benchmark suite compares the two (DESIGN.md
    decision 2). *)

val of_regex : Regex.t -> Nfa.t
