(** Subset construction: NFA → complete DFA.

    The resulting DFA's alphabet is the NFA's transition alphabet unless a
    larger one is supplied (Shelley lifts specification automata to the
    alphabet of the implementation before comparing languages). *)

val determinize : ?alphabet:Symbol.t list -> Nfa.t -> Dfa.t
(** Classic ε-closed subset construction. The empty configuration becomes the
    (rejecting, absorbing) sink, so the result is complete. *)
