type t = int

module Set = Set.Make (Int)
module Map = Map.Make (Int)

let pp_set fmt set =
  Format.fprintf fmt "{%s}"
    (Set.elements set |> List.map string_of_int |> String.concat ", ")

let of_list l = Set.of_list l
