(** Automaton states and state sets.

    States are dense integers local to one automaton; this module fixes the
    set/map instantiations shared by the whole automata library. *)

type t = int

module Set : Set.S with type elt = int
module Map : Map.S with type key = int

val pp_set : Format.formatter -> Set.t -> unit
(** Prints [{0, 3, 5}]. *)

val of_list : int list -> Set.t
