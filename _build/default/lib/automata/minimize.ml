(* Restrict a DFA to its reachable states (renumbered densely). *)
let restrict_reachable dfa =
  let reachable = States.Set.elements (Dfa.reachable_states dfa) in
  let rename = Hashtbl.create 16 in
  List.iteri (fun i q -> Hashtbl.add rename q i) reachable;
  let old_of = Array.of_list reachable in
  Dfa.create
    ~alphabet:(Dfa.alphabet dfa)
    ~num_states:(Array.length old_of)
    ~start:(Hashtbl.find rename (Dfa.start dfa))
    ~accept:
      (List.filter_map
         (fun q -> if Dfa.is_accept dfa q then Hashtbl.find_opt rename q else None)
         reachable)
    ~next:(fun q sym -> Hashtbl.find rename (Dfa.next dfa old_of.(q) sym))

(* Quotient a DFA by a partition given as a class id per state. *)
let quotient dfa class_of num_classes =
  let repr = Array.make num_classes (-1) in
  Array.iteri (fun q c -> if repr.(c) < 0 then repr.(c) <- q) class_of;
  Dfa.create
    ~alphabet:(Dfa.alphabet dfa)
    ~num_states:num_classes
    ~start:class_of.(Dfa.start dfa)
    ~accept:
      (List.filter_map
         (fun c -> if Dfa.is_accept dfa repr.(c) then Some c else None)
         (List.init num_classes Fun.id))
    ~next:(fun c sym -> class_of.(Dfa.next dfa repr.(c) sym))

let minimize_moore dfa =
  let dfa = restrict_reachable dfa in
  let n = Dfa.num_states dfa in
  let syms = Dfa.alphabet dfa in
  (* Iteratively split classes until the signature (own class, class of each
     successor) is constant within every class. *)
  let class_of = Array.init n (fun q -> if Dfa.is_accept dfa q then 1 else 0) in
  let rec refine () =
    let signatures = Hashtbl.create n in
    let next_class = ref 0 in
    let new_class = Array.make n 0 in
    for q = 0 to n - 1 do
      let signature =
        (class_of.(q), List.map (fun sym -> class_of.(Dfa.next dfa q sym)) syms)
      in
      let c =
        match Hashtbl.find_opt signatures signature with
        | Some c -> c
        | None ->
          let c = !next_class in
          incr next_class;
          Hashtbl.add signatures signature c;
          c
      in
      new_class.(q) <- c
    done;
    let changed = ref false in
    for q = 0 to n - 1 do
      if new_class.(q) <> class_of.(q) then changed := true;
      class_of.(q) <- new_class.(q)
    done;
    if !changed then refine () else !next_class
  in
  let num_classes = refine () in
  quotient dfa class_of num_classes

let minimize_hopcroft dfa =
  let dfa = restrict_reachable dfa in
  let n = Dfa.num_states dfa in
  let syms = Array.of_list (Dfa.alphabet dfa) in
  let num_syms = Array.length syms in
  (* Predecessor lists per symbol. *)
  let preds = Array.make_matrix num_syms n [] in
  for q = 0 to n - 1 do
    for s = 0 to num_syms - 1 do
      let q' = Dfa.next dfa q syms.(s) in
      preds.(s).(q') <- q :: preds.(s).(q')
    done
  done;
  let module ISet = States.Set in
  let accepting = Dfa.accept_states dfa in
  let all = ISet.of_list (List.init n Fun.id) in
  let rejecting = ISet.diff all accepting in
  let partition = ref (List.filter (fun c -> not (ISet.is_empty c)) [ accepting; rejecting ]) in
  let worklist = Queue.create () in
  List.iter (fun c -> Queue.add c worklist) !partition;
  let rec loop () =
    match Queue.take_opt worklist with
    | None -> ()
    | Some splitter ->
      for s = 0 to num_syms - 1 do
        (* X = states with an s-transition into the splitter. *)
        let x =
          ISet.fold (fun q acc -> List.fold_left (fun a p -> ISet.add p a) acc preds.(s).(q))
            splitter ISet.empty
        in
        if not (ISet.is_empty x) then
          partition :=
            List.concat_map
              (fun y ->
                let inter = ISet.inter y x in
                let diff = ISet.diff y x in
                if ISet.is_empty inter || ISet.is_empty diff then [ y ]
                else begin
                  (* Standard Hopcroft trick: enqueue the smaller half. *)
                  if ISet.cardinal inter <= ISet.cardinal diff then Queue.add inter worklist
                  else Queue.add diff worklist;
                  [ inter; diff ]
                end)
              !partition
      done;
      loop ()
  in
  loop ();
  let class_of = Array.make n 0 in
  List.iteri (fun c states -> ISet.iter (fun q -> class_of.(q) <- c) states) !partition;
  quotient dfa class_of (List.length !partition)

let minimize = minimize_hopcroft

let isomorphic a b =
  Dfa.num_states a = Dfa.num_states b
  && List.equal Symbol.equal (Dfa.alphabet a) (Dfa.alphabet b)
  &&
  let mapping = Hashtbl.create 16 in
  let ok = ref true in
  let rec walk qa qb =
    match Hashtbl.find_opt mapping qa with
    | Some qb' -> if qb' <> qb then ok := false
    | None ->
      Hashtbl.add mapping qa qb;
      if Dfa.is_accept a qa <> Dfa.is_accept b qb then ok := false
      else
        List.iter (fun sym -> if !ok then walk (Dfa.next a qa sym) (Dfa.next b qb sym))
          (Dfa.alphabet a)
  in
  walk (Dfa.start a) (Dfa.start b);
  !ok
