lib/automata/dfa.mli: Format Nfa States Symbol Trace
