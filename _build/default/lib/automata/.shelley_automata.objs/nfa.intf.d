lib/automata/nfa.mli: Format States Symbol Trace
