lib/automata/state_elim.mli: Nfa Regex
