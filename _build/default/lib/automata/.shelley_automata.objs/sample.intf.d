lib/automata/sample.mli: Dfa Nfa Random Trace
