lib/automata/states.ml: Format Int List Map Set String
