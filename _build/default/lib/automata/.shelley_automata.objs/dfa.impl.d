lib/automata/dfa.ml: Array Format Fun List Nfa Option Queue States Symbol Trace
