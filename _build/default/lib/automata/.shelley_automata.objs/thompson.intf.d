lib/automata/thompson.mli: Nfa Regex
