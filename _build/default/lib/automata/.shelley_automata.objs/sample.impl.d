lib/automata/sample.ml: Array Determinize Dfa Fun Hashtbl List Option Queue Random States
