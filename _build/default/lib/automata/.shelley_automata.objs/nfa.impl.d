lib/automata/nfa.ml: Array Format Fun Hashtbl List Option Queue Set States Symbol Trace
