lib/automata/states.mli: Format Map Set
