lib/automata/language.ml: Array Fun Hashtbl List Nfa Option Queue Set States Symbol
