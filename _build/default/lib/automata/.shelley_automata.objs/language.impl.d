lib/automata/language.ml: Array Fun Hashtbl Limits List Nfa Option Queue Set States Symbol
