lib/automata/glushkov.ml: Array List Nfa Regex States Symbol
