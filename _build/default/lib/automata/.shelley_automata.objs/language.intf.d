lib/automata/language.mli: Nfa Symbol Trace
