lib/automata/language.mli: Limits Nfa Symbol Trace
