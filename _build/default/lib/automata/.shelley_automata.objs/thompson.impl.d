lib/automata/thompson.ml: Nfa Regex
