lib/automata/determinize.mli: Dfa Nfa Symbol
