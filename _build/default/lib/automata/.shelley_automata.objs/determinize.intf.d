lib/automata/determinize.mli: Dfa Limits Nfa Symbol
