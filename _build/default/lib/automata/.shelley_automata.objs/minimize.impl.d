lib/automata/minimize.ml: Array Dfa Fun Hashtbl List Queue States Symbol
