lib/automata/glushkov.mli: Nfa Regex
