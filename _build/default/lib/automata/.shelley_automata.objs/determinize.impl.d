lib/automata/determinize.ml: Array Dfa Fun Hashtbl List Map Nfa Queue States Symbol
