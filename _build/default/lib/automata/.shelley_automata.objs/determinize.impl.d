lib/automata/determinize.ml: Array Dfa Fun Hashtbl Limits List Map Nfa Printf Queue States Symbol
