lib/automata/state_elim.ml: Fun Hashtbl List Nfa Regex States
