module ISet = States.Set

type info = {
  nullable : bool;
  first : ISet.t;
  last : ISet.t;
  follow : (int * int) list; (* accumulated follow pairs *)
}

let of_regex r =
  (* Number the symbol positions 1..n in left-to-right order. *)
  let positions = ref [] in
  let counter = ref 0 in
  let fresh sym =
    incr counter;
    positions := (!counter, sym) :: !positions;
    !counter
  in
  let cross a b =
    ISet.fold (fun x acc -> ISet.fold (fun y acc -> (x, y) :: acc) b acc) a []
  in
  let rec analyze (r : Regex.t) : info =
    match r with
    | Empty -> { nullable = false; first = ISet.empty; last = ISet.empty; follow = [] }
    | Eps -> { nullable = true; first = ISet.empty; last = ISet.empty; follow = [] }
    | Sym s ->
      let p = fresh s in
      { nullable = false; first = ISet.singleton p; last = ISet.singleton p; follow = [] }
    | Seq (a, b) ->
      let ia = analyze a in
      let ib = analyze b in
      {
        nullable = ia.nullable && ib.nullable;
        first = (if ia.nullable then ISet.union ia.first ib.first else ia.first);
        last = (if ib.nullable then ISet.union ia.last ib.last else ib.last);
        follow = cross ia.last ib.first @ ia.follow @ ib.follow;
      }
    | Alt (a, b) ->
      let ia = analyze a in
      let ib = analyze b in
      {
        nullable = ia.nullable || ib.nullable;
        first = ISet.union ia.first ib.first;
        last = ISet.union ia.last ib.last;
        follow = ia.follow @ ib.follow;
      }
    | Star a ->
      let ia = analyze a in
      {
        nullable = true;
        first = ia.first;
        last = ia.last;
        follow = cross ia.last ia.first @ ia.follow;
      }
  in
  let info = analyze r in
  let n = !counter in
  let sym_of = Array.make (n + 1) None in
  List.iter (fun (p, sym) -> sym_of.(p) <- Some sym) !positions;
  let sym_at p =
    match sym_of.(p) with
    | Some sym -> sym
    | None -> assert false
  in
  let transitions =
    List.map (fun p -> (0, sym_at p, p)) (ISet.elements info.first)
    @ List.map (fun (p, q) -> (p, sym_at q, q)) info.follow
  in
  let accept =
    (if info.nullable then [ 0 ] else []) @ ISet.elements info.last
  in
  let labels = List.map (fun (p, sym) -> (p, Symbol.name sym)) !positions in
  Nfa.create ~labels ~num_states:(n + 1) ~start:[ 0 ] ~accept ~transitions ()
