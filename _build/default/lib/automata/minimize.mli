(** DFA minimization.

    Two implementations are provided: Moore's O(n²·|Σ|) partition refinement
    (simple, the correctness reference) and Hopcroft's O(n·log n·|Σ|)
    worklist algorithm (the default). The test-suite cross-checks them; the
    benchmark suite races them (DESIGN.md decision 4). Both first restrict to
    reachable states, so the result is the canonical minimal complete DFA of
    the language. *)

val minimize : Dfa.t -> Dfa.t
(** Hopcroft. *)

val minimize_moore : Dfa.t -> Dfa.t

val minimize_hopcroft : Dfa.t -> Dfa.t

val isomorphic : Dfa.t -> Dfa.t -> bool
(** Structural isomorphism of two DFAs (same alphabet), checked by parallel
    walk from the start states. Minimal DFAs of equal languages are
    isomorphic — used to validate the two minimizers against each other. *)
