(** Complete deterministic finite automata.

    A DFA here is always *complete* over its declared alphabet (a sink state
    is materialized if needed), which keeps complementation a plain flip of
    the accepting set and makes the product constructions total. States are
    dense integers; state [start] need not be 0. *)

type t

(** {1 Construction} *)

val create :
  alphabet:Symbol.t list ->
  num_states:int ->
  start:int ->
  accept:int list ->
  next:(int -> Symbol.t -> int) ->
  t
(** Tabulates [next] over all states and alphabet symbols.
    Raises [Invalid_argument] if [next] leaves the state range. *)

(** {1 Accessors} *)

val alphabet : t -> Symbol.t list
val num_states : t -> int
val start : t -> int
val is_accept : t -> int -> bool
val accept_states : t -> States.Set.t
val next : t -> int -> Symbol.t -> int
(** Raises [Invalid_argument] if the symbol is outside the alphabet. *)

val mem_alphabet : t -> Symbol.t -> bool

(** {1 Running} *)

val run : t -> Trace.t -> int
(** Final state after consuming the trace (symbols outside the alphabet raise
    [Invalid_argument]). *)

val accepts : t -> Trace.t -> bool

(** {1 Boolean operations}

    The two operands must have the same alphabet (checked;
    [Invalid_argument] otherwise): Shelley compares languages only after
    lifting both sides to a common event alphabet. *)

val complement : t -> t
val intersect : t -> t -> t
val union : t -> t -> t
val difference : t -> t -> t

(** {1 Queries} *)

val is_empty : t -> bool
val shortest_accepted : t -> Trace.t option

val equivalent : t -> t -> bool
(** Same language (same-alphabet requirement as above). *)

val included : t -> t -> bool

val counterexample_inclusion : t -> t -> Trace.t option
(** Shortest trace accepted by the first but not the second. *)

val reachable_states : t -> States.Set.t

val words_upto : max_len:int -> t -> Trace.Set.t

(** {1 Conversions} *)

val to_nfa : t -> Nfa.t
(** Forgets determinism (and drops the sink's outgoing structure only by
    keeping it — [Nfa.trim] will remove a non-productive sink). *)

val restrict_alphabet : alphabet:Symbol.t list -> t -> t
(** Reinterprets the DFA over a *superset or subset* alphabet: symbols added
    are sent to a sink (i.e. rejected), symbols removed must not be needed to
    accept (their transitions are dropped). *)

val pp : Format.formatter -> t -> unit
