(** Linear temporal logic on finite traces (LTLf).

    Shelley claims (the [@claim] annotation) are LTLf formulas over event
    atoms: at each position of a trace exactly one event happens, and the
    atom [a.open] holds at a position iff that position's event is [a.open].
    The paper uses the weak-until operator: [φ₁ W φ₂ = (φ₁ U φ₂) ∨ G φ₁].

    Semantics follows De Giacomo & Vardi (IJCAI'13): [X] is the *strong*
    next (requires a successor position), [W]/[G] use the weak next. The
    empty trace satisfies [G φ] and [¬F φ] vacuously. *)

type t =
  | True
  | False
  | Atom of Symbol.t  (** the current event is this symbol *)
  | Not of t
  | And of t * t
  | Or of t * t
  | Next of t  (** strong next: there is a next position and φ holds there *)
  | Wnext of t  (** weak next: if there is a next position, φ holds there *)
  | Until of t * t
  | Wuntil of t * t  (** the paper's [W] *)
  | Globally of t
  | Finally of t

(** {1 Constructors} *)

val tt : t
val ff : t
val atom : Symbol.t -> t
val atom_name : string -> t
val neg : t -> t
val conj : t -> t -> t
val disj : t -> t -> t
val implies : t -> t -> t
val next : t -> t
val wnext : t -> t
val until : t -> t -> t
val wuntil : t -> t -> t
val globally : t -> t
val finally : t -> t

(** {1 Semantics} *)

val holds : t -> Trace.t -> bool
(** Direct recursive evaluation of the LTLf satisfaction relation
    [trace, 0 ⊨ φ] — the reference semantics the automaton construction is
    tested against. *)

(** {1 Observations} *)

val atoms : t -> Symbol.Set.t
val size : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Paper-style: [(!a.open) W b.open]. *)

val to_string : t -> string
