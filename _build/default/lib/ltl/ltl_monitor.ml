type verdict =
  | Definitely_true
  | Definitely_false
  | Presumably_true
  | Presumably_false

let pp_verdict fmt v =
  Format.pp_print_string fmt
    (match v with
    | Definitely_true -> "definitely true"
    | Definitely_false -> "definitely false"
    | Presumably_true -> "presumably true"
    | Presumably_false -> "presumably false")

let is_definitive = function
  | Definitely_true | Definitely_false -> true
  | Presumably_true | Presumably_false -> false

type t = {
  dfa : Dfa.t;
  verdicts : verdict array;
  state : int;
}

(* Forward reachability per state (states reachable from q, including q). *)
let reachability dfa =
  let n = Dfa.num_states dfa in
  let syms = Dfa.alphabet dfa in
  Array.init n (fun q ->
      let seen = Array.make n false in
      let rec go q =
        if not seen.(q) then begin
          seen.(q) <- true;
          List.iter (fun sym -> go (Dfa.next dfa q sym)) syms
        end
      in
      go q;
      seen)

let classify dfa =
  let n = Dfa.num_states dfa in
  let reach = reachability dfa in
  Array.init n (fun q ->
      let reachable_accepting = ref false in
      let reachable_rejecting = ref false in
      Array.iteri
        (fun q' reachable ->
          if reachable then
            if Dfa.is_accept dfa q' then reachable_accepting := true
            else reachable_rejecting := true)
        reach.(q);
      match !reachable_accepting, !reachable_rejecting with
      | true, false -> Definitely_true
      | false, _ -> Definitely_false
      | true, true -> if Dfa.is_accept dfa q then Presumably_true else Presumably_false)

let start ?limits ~alphabet formula =
  let dfa = Progression.to_dfa ?limits ~alphabet formula in
  { dfa; verdicts = classify dfa; state = Dfa.start dfa }

let step t event = { t with state = Dfa.next t.dfa t.state event }
let verdict t = t.verdicts.(t.state)

let run ?limits ~alphabet formula trace =
  verdict (List.fold_left step (start ?limits ~alphabet formula) trace)

let verdict_trajectory ?limits ~alphabet formula trace =
  let monitor = start ?limits ~alphabet formula in
  let rec go monitor acc = function
    | [] -> List.rev (verdict monitor :: acc)
    | e :: rest -> go (step monitor e) (verdict monitor :: acc) rest
  in
  go monitor [] trace
