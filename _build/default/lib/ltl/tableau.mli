(** Tableau-style LTLf → NFA construction.

    The alternative back end the paper's §5 asks about: checking claims
    "directly in regular languages". Where {!Progression} rewrites one
    obligation *formula* per step (yielding a deterministic automaton whose
    states are formulas), the tableau works on obligation *sets*: a formula
    in negation normal form is decomposed by the classical α/β rules

    {v
    φ∧ψ ⇒ {φ, ψ}            φ∨ψ ⇒ {φ} | {ψ}
    Gφ  ⇒ {φ, WX Gφ}        Fφ   ⇒ {φ} | {X Fφ}
    φUψ ⇒ {ψ} | {φ, X(φUψ)}  φWψ ⇒ {ψ} | {φ, WX(φWψ)}
    v}

    down to *elementary* sets containing only literals and [X]/[WX]
    obligations. Elementary sets are the NFA states: a transition on event
    [e] exists when the literals are consistent with [e], and leads to the
    expansions of the carried next-obligations; a state is accepting when
    the trace may end there (no positive literal, no strong [X]).

    The construction is nondeterministic (β-rules branch), so the result is
    a genuine NFA; the test-suite proves it language-equal to the
    progression DFA, and the benchmark harness compares sizes and
    construction cost (DESIGN.md decision 5). *)

val to_nfa : ?limits:Limits.t -> alphabet:Symbol.t list -> Ltlf.t -> Nfa.t
(** The input is normalized with {!Nnf.nnf} first. The [alphabet] bounds the
    transition labels exactly as in {!Progression.to_dfa}.
    @raise Limits.Budget_exceeded beyond [limits.max_states] (default
    {!Limits.default}) states. *)

val elementary_sets : Ltlf.t -> Ltlf.t list list
(** The initial elementary sets of (the NNF of) a formula, sorted — exposed
    for tests. *)

val check :
  ?limits:Limits.t ->
  ?alphabet:Symbol.Set.t ->
  impl:Nfa.t ->
  Ltlf.t ->
  (unit, Ltl_check.violation) result
(** Claim checking through the tableau back end — same contract as
    {!Ltl_check.check}. *)
