lib/ltl/tableau.ml: Array Fun Hashtbl Language Limits List Ltl_check Ltlf Nfa Nnf Queue Set Symbol
