lib/ltl/tableau.ml: Array Fun Hashtbl Language List Ltl_check Ltlf Nfa Nnf Progression Queue Set Symbol
