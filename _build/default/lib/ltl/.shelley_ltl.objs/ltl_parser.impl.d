lib/ltl/ltl_parser.ml: List Ltlf Printf String
