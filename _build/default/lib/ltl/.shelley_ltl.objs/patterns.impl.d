lib/ltl/patterns.ml: Ltlf
