lib/ltl/progression.mli: Dfa Limits Ltlf Symbol
