lib/ltl/progression.mli: Dfa Ltlf Symbol
