lib/ltl/ltl_parser.mli: Ltlf
