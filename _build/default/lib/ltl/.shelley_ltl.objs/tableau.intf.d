lib/ltl/tableau.mli: Ltl_check Ltlf Nfa Symbol
