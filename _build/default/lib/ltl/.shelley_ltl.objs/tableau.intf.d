lib/ltl/tableau.mli: Limits Ltl_check Ltlf Nfa Symbol
