lib/ltl/patterns.mli: Ltlf Symbol
