lib/ltl/ltlf.ml: Format List Stdlib Symbol
