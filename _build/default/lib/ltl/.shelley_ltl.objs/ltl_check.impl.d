lib/ltl/ltl_check.ml: Dfa Format Language Ltl_parser Ltlf Nfa Progression Symbol Trace
