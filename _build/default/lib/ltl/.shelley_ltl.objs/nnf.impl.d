lib/ltl/nnf.ml: Ltlf
