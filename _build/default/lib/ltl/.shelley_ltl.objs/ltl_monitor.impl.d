lib/ltl/ltl_monitor.ml: Array Dfa Format List Progression
