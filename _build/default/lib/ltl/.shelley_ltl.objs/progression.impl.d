lib/ltl/progression.ml: Array Dfa Fun Hashtbl List Ltlf Map Nnf Queue Symbol
