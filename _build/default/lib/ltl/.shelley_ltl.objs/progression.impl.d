lib/ltl/progression.ml: Array Dfa Fun Hashtbl Limits List Ltlf Map Nnf Printf Queue Symbol
