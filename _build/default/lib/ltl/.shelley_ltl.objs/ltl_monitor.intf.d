lib/ltl/ltl_monitor.mli: Format Limits Ltlf Symbol Trace
