lib/ltl/ltl_monitor.mli: Format Ltlf Symbol Trace
