lib/ltl/nnf.mli: Ltlf
