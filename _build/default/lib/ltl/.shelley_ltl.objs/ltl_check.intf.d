lib/ltl/ltl_check.mli: Format Limits Ltlf Nfa Symbol Trace
