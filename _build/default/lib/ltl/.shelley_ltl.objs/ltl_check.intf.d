lib/ltl/ltl_check.mli: Format Ltlf Nfa Symbol Trace
