lib/ltl/ltlf.mli: Format Symbol Trace
