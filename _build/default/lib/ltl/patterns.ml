let absence p = Ltlf.globally (Ltlf.neg (Ltlf.atom p))
let existence p = Ltlf.finally (Ltlf.atom p)
let universality p = Ltlf.globally (Ltlf.atom p)

let response ~cause ~effect =
  Ltlf.globally (Ltlf.implies (Ltlf.atom cause) (Ltlf.finally (Ltlf.atom effect)))

let precedence ~first ~before = Ltlf.wuntil (Ltlf.neg (Ltlf.atom before)) (Ltlf.atom first)

let absence_after ~trigger ~banned =
  Ltlf.globally
    (Ltlf.implies (Ltlf.atom trigger) (Ltlf.wnext (Ltlf.globally (Ltlf.neg (Ltlf.atom banned)))))

let existence_between ~open_ ~close =
  Ltlf.globally (Ltlf.implies (Ltlf.atom open_) (Ltlf.next (Ltlf.finally (Ltlf.atom close))))

let never_adjacent p =
  Ltlf.globally (Ltlf.implies (Ltlf.atom p) (Ltlf.wnext (Ltlf.neg (Ltlf.atom p))))

let all =
  [
    ("response", fun cause effect -> response ~cause ~effect);
    ("precedence", fun first before -> precedence ~first ~before);
    ("absence_after", fun trigger banned -> absence_after ~trigger ~banned);
    ("existence_between", fun open_ close -> existence_between ~open_ ~close);
  ]
