(** Property-specification patterns for claims (Dwyer et al.), instantiated
    for Shelley's event atoms.

    Writing temporal formulas by hand is error-prone; these constructors
    cover the shapes CPS requirements almost always take, and the test-suite
    pins each one against its textbook LTLf expansion. Every pattern is a
    plain {!Ltlf.t}, so they compose with the rest of the logic. *)

val absence : Symbol.t -> Ltlf.t
(** [G !p] — the event never happens. *)

val existence : Symbol.t -> Ltlf.t
(** [F p] — the event happens at least once. *)

val universality : Symbol.t -> Ltlf.t
(** [G p] — every event is this one. *)

val response : cause:Symbol.t -> effect:Symbol.t -> Ltlf.t
(** [G (cause -> F effect)] — every cause is eventually followed by the
    effect (e.g. every [a.open] is followed by [a.close]). *)

val precedence : first:Symbol.t -> before:Symbol.t -> Ltlf.t
(** [(!before) W first] — [before] cannot happen until [first] has (the
    paper's claim is [precedence ~first:b.open ~before:a.open]). *)

val absence_after : trigger:Symbol.t -> banned:Symbol.t -> Ltlf.t
(** [G (trigger -> WX (G !banned))] — once the trigger happens, the banned
    event never happens afterwards. *)

val existence_between : open_:Symbol.t -> close:Symbol.t -> Ltlf.t
(** [G (open_ -> X (F close))] — between an opening event and the end of the
    trace there is a closing event strictly later. The canonical
    "never leave the valve open" claim. *)

val never_adjacent : Symbol.t -> Ltlf.t
(** [G (p -> WX !p)] — the event never happens twice in a row. *)

val all : (string * (Symbol.t -> Symbol.t -> Ltlf.t)) list
(** The binary patterns by name, for CLI/binding use. *)
