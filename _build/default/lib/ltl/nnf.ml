let rec nnf (f : Ltlf.t) : Ltlf.t =
  match f with
  | True | False | Atom _ -> f
  | And (a, b) -> Ltlf.conj (nnf a) (nnf b)
  | Or (a, b) -> Ltlf.disj (nnf a) (nnf b)
  | Next a -> Ltlf.next (nnf a)
  | Wnext a -> Ltlf.wnext (nnf a)
  | Until (a, b) -> Ltlf.until (nnf a) (nnf b)
  | Wuntil (a, b) -> Ltlf.wuntil (nnf a) (nnf b)
  | Globally a -> Ltlf.globally (nnf a)
  | Finally a -> Ltlf.finally (nnf a)
  | Not g -> neg g

and neg (g : Ltlf.t) : Ltlf.t =
  match g with
  | True -> Ltlf.ff
  | False -> Ltlf.tt
  | Atom _ -> Ltlf.Not g
  | Not h -> nnf h
  | And (a, b) -> Ltlf.disj (neg a) (neg b)
  | Or (a, b) -> Ltlf.conj (neg a) (neg b)
  | Next a -> Ltlf.wnext (neg a)
  | Wnext a -> Ltlf.next (neg a)
  | Globally a -> Ltlf.finally (neg a)
  | Finally a -> Ltlf.globally (neg a)
  | Until (a, b) -> Ltlf.wuntil (neg b) (Ltlf.conj (neg a) (neg b))
  | Wuntil (a, b) -> Ltlf.until (neg b) (Ltlf.conj (neg a) (neg b))

let rec is_nnf (f : Ltlf.t) =
  match f with
  | True | False | Atom _ -> true
  | Not (Atom _) -> true
  | Not _ -> false
  | And (a, b) | Or (a, b) | Until (a, b) | Wuntil (a, b) -> is_nnf a && is_nnf b
  | Next a | Wnext a | Globally a | Finally a -> is_nnf a
