exception Parse_error of string

type token =
  | Ident of string
  | Kw_true
  | Kw_false
  | Op_not
  | Op_and
  | Op_or
  | Op_implies
  | Op_until
  | Op_wuntil
  | Op_next
  | Op_wnext
  | Op_globally
  | Op_finally
  | Lparen
  | Rparen
  | Eof

let describe = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Kw_true -> "'true'"
  | Kw_false -> "'false'"
  | Op_not -> "'!'"
  | Op_and -> "'&&'"
  | Op_or -> "'||'"
  | Op_implies -> "'->'"
  | Op_until -> "'U'"
  | Op_wuntil -> "'W'"
  | Op_next -> "'X'"
  | Op_wnext -> "'WX'"
  | Op_globally -> "'G'"
  | Op_finally -> "'F'"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Eof -> "end of input"

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  || c = '.'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let rec go i =
    if i >= n then emit Eof
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | '(' ->
        emit Lparen;
        go (i + 1)
      | ')' ->
        emit Rparen;
        go (i + 1)
      | '!' ->
        emit Op_not;
        go (i + 1)
      | '&' when i + 1 < n && input.[i + 1] = '&' ->
        emit Op_and;
        go (i + 2)
      | '|' when i + 1 < n && input.[i + 1] = '|' ->
        emit Op_or;
        go (i + 2)
      | '-' when i + 1 < n && input.[i + 1] = '>' ->
        emit Op_implies;
        go (i + 2)
      | c when is_ident_char c ->
        let j = ref i in
        while !j < n && is_ident_char input.[!j] do
          incr j
        done;
        let word = String.sub input i (!j - i) in
        let token =
          match word with
          | "true" -> Kw_true
          | "false" -> Kw_false
          | "U" -> Op_until
          | "W" -> Op_wuntil
          | "X" -> Op_next
          | "WX" -> Op_wnext
          | "G" -> Op_globally
          | "F" -> Op_finally
          | _ -> Ident word
        in
        emit token;
        go !j
      | c -> raise (Parse_error (Printf.sprintf "unexpected character %C at offset %d" c i))
  in
  go 0;
  List.rev !tokens

(* Recursive descent over a mutable token cursor. *)
type cursor = { mutable tokens : token list }

let peek cur =
  match cur.tokens with
  | [] -> Eof
  | t :: _ -> t

let advance cur =
  match cur.tokens with
  | [] -> ()
  | _ :: rest -> cur.tokens <- rest

let expect cur t =
  if peek cur = t then advance cur
  else
    raise
      (Parse_error
         (Printf.sprintf "expected %s but found %s" (describe t) (describe (peek cur))))

let rec parse_formula cur =
  (* Implication binds loosest, right-associative over until-level. *)
  let left = parse_until cur in
  match peek cur with
  | Op_implies ->
    advance cur;
    Ltlf.implies left (parse_formula cur)
  | _ -> left

and parse_until cur =
  let left = parse_or cur in
  match peek cur with
  | Op_until ->
    advance cur;
    Ltlf.until left (parse_until cur)
  | Op_wuntil ->
    advance cur;
    Ltlf.wuntil left (parse_until cur)
  | _ -> left

and parse_or cur =
  let left = parse_and cur in
  match peek cur with
  | Op_or ->
    advance cur;
    Ltlf.disj left (parse_or cur)
  | _ -> left

and parse_and cur =
  let left = parse_unary cur in
  match peek cur with
  | Op_and ->
    advance cur;
    Ltlf.conj left (parse_and cur)
  | _ -> left

and parse_unary cur =
  match peek cur with
  | Op_not ->
    advance cur;
    Ltlf.neg (parse_unary cur)
  | Op_next ->
    advance cur;
    Ltlf.next (parse_unary cur)
  | Op_wnext ->
    advance cur;
    Ltlf.wnext (parse_unary cur)
  | Op_globally ->
    advance cur;
    Ltlf.globally (parse_unary cur)
  | Op_finally ->
    advance cur;
    Ltlf.finally (parse_unary cur)
  | Kw_true ->
    advance cur;
    Ltlf.tt
  | Kw_false ->
    advance cur;
    Ltlf.ff
  | Ident name ->
    advance cur;
    Ltlf.atom_name name
  | Lparen ->
    advance cur;
    let f = parse_formula cur in
    expect cur Rparen;
    f
  | t -> raise (Parse_error (Printf.sprintf "expected a formula but found %s" (describe t)))

let parse input =
  let cur = { tokens = tokenize input } in
  let f = parse_formula cur in
  expect cur Eof;
  f

let parse_result input =
  match parse input with
  | f -> Ok f
  | exception Parse_error msg -> Error msg
