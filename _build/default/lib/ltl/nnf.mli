(** Negation normal form for LTLf.

    Negations are pushed down to atoms using the finite-trace dualities
    (note [X]/[WX] swap under negation, unlike infinite-trace LTL):

    {v
    ¬X φ    = WX ¬φ          ¬WX φ   = X ¬φ
    ¬G φ    = F ¬φ           ¬F φ    = G ¬φ
    ¬(φ U ψ) = (¬ψ) W (¬φ ∧ ¬ψ)
    ¬(φ W ψ) = (¬ψ) U (¬φ ∧ ¬ψ)
    v}

    The result contains [Not] only directly above [Atom]s (and [True]/[False]
    are normalized away where possible). Language-preserving — checked by the
    test-suite against {!Ltlf.holds}. The {!Tableau} construction requires
    its input in this form. *)

val nnf : Ltlf.t -> Ltlf.t

val is_nnf : Ltlf.t -> bool
(** [Not] appears only on atoms. *)
