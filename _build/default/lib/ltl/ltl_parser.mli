(** Parser for claim strings, e.g. ["(!a.open) W b.open"].

    Grammar (loosest binding first):

    {v
    formula  ::= or_f (('W' | 'U') or_f)*          right-associative
    or_f     ::= and_f ('||' and_f)*
    and_f    ::= unary ('&&' unary)*
    unary    ::= ('!' | 'X' | 'WX' | 'G' | 'F') unary
               | 'true' | 'false' | atom | '(' formula ')'
    atom     ::= ident ('.' ident)*                 e.g. a.open
    v}

    ['->'] is also accepted for implication (sugar over [!]/[||]). The
    single-letter temporal keywords are reserved: an event cannot be named
    [W], [U], [X], [G] or [F] (qualify it, e.g. [sys.W], if ever needed). *)

exception Parse_error of string
(** Raised with a human-readable message and position. *)

val parse : string -> Ltlf.t
(** @raise Parse_error on malformed input. *)

val parse_result : string -> (Ltlf.t, string) result
