(** Claim checking: does every trace of an implementation automaton satisfy
    an LTLf formula?

    This is the engine behind Shelley's
    ["Error in specification: FAIL TO MEET REQUIREMENT"] report: the
    implementation language is compared against the progression DFA of the
    claim, and a violation comes with a length-minimal counterexample
    trace. *)

type violation = {
  formula : Ltlf.t;
  counterexample : Trace.t;  (** a shortest implementation trace violating the formula *)
}

val pp_violation : Format.formatter -> violation -> unit
(** The paper's transcript shape:
    {v
    Formula: (!a.open) W b.open
    Counter example: a.test, a.open, ...
    v} *)

val check :
  ?limits:Limits.t ->
  ?alphabet:Symbol.Set.t ->
  impl:Nfa.t ->
  Ltlf.t ->
  (unit, violation) result
(** [check ~impl φ] verifies [L(impl) ⊆ L(φ)] over the union of the
    implementation alphabet, the formula's atoms, and [?alphabet].
    @raise Limits.Budget_exceeded if the claim automaton or the language
    product exceeds the budget (default {!Limits.default}). *)

val check_claim :
  ?limits:Limits.t ->
  ?alphabet:Symbol.Set.t ->
  impl:Nfa.t ->
  string ->
  (unit, violation) result
(** Parse then {!check}.
    @raise Ltl_parser.Parse_error on a malformed claim string. *)

val holds_on_all_words : max_len:int -> Ltlf.t -> Nfa.t -> bool
(** Test-oracle variant: evaluate {!Ltlf.holds} directly on every accepted
    word up to [max_len] — used to validate the automaton construction. *)
