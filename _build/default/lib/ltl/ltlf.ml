type t =
  | True
  | False
  | Atom of Symbol.t
  | Not of t
  | And of t * t
  | Or of t * t
  | Next of t
  | Wnext of t
  | Until of t * t
  | Wuntil of t * t
  | Globally of t
  | Finally of t

let tt = True
let ff = False
let atom s = Atom s
let atom_name n = Atom (Symbol.intern n)

let neg = function
  | True -> False
  | False -> True
  | Not f -> f
  | f -> Not f

let conj a b =
  match a, b with
  | True, f | f, True -> f
  | False, _ | _, False -> False
  | _ -> And (a, b)

let disj a b =
  match a, b with
  | False, f | f, False -> f
  | True, _ | _, True -> True
  | _ -> Or (a, b)

let implies a b = disj (neg a) b
let next f = Next f
let wnext f = Wnext f
let until a b = Until (a, b)
let wuntil a b = Wuntil (a, b)
let globally f = Globally f
let finally f = Finally f

(* Reference semantics: trace, i ⊨ φ evaluated on suffixes. *)
let rec holds_suffix f trace =
  match f, trace with
  | True, _ -> true
  | False, _ -> false
  | Atom a, e :: _ -> Symbol.equal a e
  | Atom _, [] -> false
  | Not g, _ -> not (holds_suffix g trace)
  | And (g, h), _ -> holds_suffix g trace && holds_suffix h trace
  | Or (g, h), _ -> holds_suffix g trace || holds_suffix h trace
  | Next g, _ :: rest -> rest <> [] && holds_suffix g rest
  | Next _, [] -> false
  | Wnext g, _ :: rest -> rest = [] || holds_suffix g rest
  | Wnext _, [] -> true
  | Until (g, h), _ ->
    (* ∃k. suffix k ⊨ h ∧ ∀j<k. suffix j ⊨ g — over non-empty suffixes. *)
    let rec scan trace =
      trace <> []
      && (holds_suffix h trace || (holds_suffix g trace && scan (List.tl trace)))
    in
    scan trace
  | Wuntil (g, h), _ ->
    let rec scan trace =
      match trace with
      | [] -> true
      | _ :: rest -> holds_suffix h trace || (holds_suffix g trace && scan rest)
    in
    scan trace
  | Globally g, _ ->
    let rec scan = function
      | [] -> true
      | _ :: rest as suffix -> holds_suffix g suffix && scan rest
    in
    scan trace
  | Finally g, _ ->
    let rec scan = function
      | [] -> false
      | _ :: rest as suffix -> holds_suffix g suffix || scan rest
    in
    scan trace

(* Position 0 of the empty trace: Until/Finally need a position; Next is
   false; the rest hold vacuously — handled by the suffix evaluation above,
   except that Atom on the empty trace must be false and Next on a singleton
   is false (no successor). One subtlety: at the *last* position, a trace of
   length 1 still has a current event, so holds_suffix sees [e] there; the
   empty trace [] means "past the end". *)
let holds f trace = holds_suffix f trace

let rec atoms = function
  | True | False -> Symbol.Set.empty
  | Atom a -> Symbol.Set.singleton a
  | Not f | Next f | Wnext f | Globally f | Finally f -> atoms f
  | And (a, b) | Or (a, b) | Until (a, b) | Wuntil (a, b) ->
    Symbol.Set.union (atoms a) (atoms b)

let rec size = function
  | True | False | Atom _ -> 1
  | Not f | Next f | Wnext f | Globally f | Finally f -> 1 + size f
  | And (a, b) | Or (a, b) | Until (a, b) | Wuntil (a, b) -> 1 + size a + size b

let compare = Stdlib.compare
let equal a b = compare a b = 0

(* Precedence: binary temporal (1) < or (2) < and (3) < unary (4). *)
let rec pp_prec prec fmt f =
  let prec_of = function
    | True | False | Atom _ -> 5
    | Not _ | Next _ | Wnext _ | Globally _ | Finally _ -> 4
    | And _ -> 3
    | Or _ -> 2
    | Until _ | Wuntil _ -> 1
  in
  let wrap body =
    if prec_of f < prec then Format.fprintf fmt "(%t)" body else body fmt
  in
  match f with
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Atom a -> Symbol.pp fmt a
  | Not g -> wrap (fun fmt -> Format.fprintf fmt "!%a" (pp_prec 4) g)
  | Next g -> wrap (fun fmt -> Format.fprintf fmt "X %a" (pp_prec 4) g)
  | Wnext g -> wrap (fun fmt -> Format.fprintf fmt "WX %a" (pp_prec 4) g)
  | Globally g -> wrap (fun fmt -> Format.fprintf fmt "G %a" (pp_prec 4) g)
  | Finally g -> wrap (fun fmt -> Format.fprintf fmt "F %a" (pp_prec 4) g)
  | And (a, b) -> wrap (fun fmt -> Format.fprintf fmt "%a && %a" (pp_prec 3) a (pp_prec 3) b)
  | Or (a, b) -> wrap (fun fmt -> Format.fprintf fmt "%a || %a" (pp_prec 2) a (pp_prec 2) b)
  | Until (a, b) -> wrap (fun fmt -> Format.fprintf fmt "%a U %a" (pp_prec 2) a (pp_prec 2) b)
  | Wuntil (a, b) -> wrap (fun fmt -> Format.fprintf fmt "%a W %a" (pp_prec 2) a (pp_prec 2) b)

let pp fmt f = pp_prec 0 fmt f
let to_string f = Format.asprintf "%a" pp f
