(** Behavioral refinement between class models.

    Two orderings on usage languages matter when one class is meant to stand
    in for another (the typestate-flavoured view the paper's related work
    discusses):

    - [refines ~impl ~spec]: every usage the implementation admits is also a
      legal usage of the specification ([L(impl) ⊆ L(spec)]) — the
      implementation never surprises a client that only knows the spec's
      protocol.
    - [substitutable ~sub ~super]: every usage that was legal for the
      superclass is still legal for the subclass ([L(super) ⊆ L(sub)]) —
      Liskov-style: existing clients keep working.

    A class that both refines and is substitutable for another has the
    *same* usage language (equivalent protocols).

    {!check_inheritance} applies [substitutable] to the MicroPython
    inheritance declared in the source ([class Child(Parent):]) whenever
    both sides carry [@sys]. *)

val refines : ?limits:Limits.t -> impl:Model.t -> spec:Model.t -> unit -> (unit, Trace.t) result
(** [Error w] gives a shortest usage of [impl] that [spec] forbids. *)

val substitutable :
  ?limits:Limits.t -> sub:Model.t -> super:Model.t -> unit -> (unit, Trace.t) result
(** [Error w] gives a shortest usage of [super] that [sub] forbids. *)

val equivalent_protocols : ?limits:Limits.t -> Model.t -> Model.t -> bool

val check_inheritance :
  ?limits:Limits.t -> env:Usage.env -> Mpy_ast.class_def -> Model.t -> Report.t list
(** Reports for every resolvable [@sys] base class the subclass is not
    substitutable for. *)
