lib/core/depgraph.ml: Annotations Format Hashtbl List Model Nfa Printf
