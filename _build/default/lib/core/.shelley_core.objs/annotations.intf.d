lib/core/annotations.mli: Format Mpy_ast
