lib/core/monitor.mli: Format Model
