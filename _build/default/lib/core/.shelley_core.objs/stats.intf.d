lib/core/stats.mli: Format Model
