lib/core/stats.ml: Depgraph Determinize Dfa Format List Minimize Model Nfa Printf Prog Trace Usage
