lib/core/refine.mli: Limits Model Mpy_ast Report Trace Usage
