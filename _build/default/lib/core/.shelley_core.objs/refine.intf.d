lib/core/refine.mli: Model Mpy_ast Report Trace Usage
