lib/core/usage.ml: Depgraph Extract Glushkov Hashtbl Language Limits List Model Mpy_lower Nfa Printf Regex Report States String Symbol
