lib/core/usage.ml: Depgraph Extract Glushkov Hashtbl Language List Model Mpy_lower Nfa Printf Regex Report States String Symbol
