lib/core/model_io.ml: Annotations Fun List Ltl_parser Model Mpy_lower Printf Prog Prog_parser Regex Regex_parser Result Sexp_lite String
