lib/core/usage.mli: Model Nfa Report Trace
