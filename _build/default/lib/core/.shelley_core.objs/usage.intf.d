lib/core/usage.mli: Limits Model Nfa Report Trace
