lib/core/invocation.ml: List Model Mpy_ast Option Printf Report String
