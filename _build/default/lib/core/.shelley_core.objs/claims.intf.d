lib/core/claims.mli: Limits Ltlf Model Nfa Report
