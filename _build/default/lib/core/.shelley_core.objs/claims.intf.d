lib/core/claims.mli: Ltlf Model Nfa Report
