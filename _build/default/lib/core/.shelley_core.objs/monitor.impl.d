lib/core/monitor.ml: Depgraph Format List Model Nfa Printf States String Symbol
