lib/core/validate.mli: Model Report
