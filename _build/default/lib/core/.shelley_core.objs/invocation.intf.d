lib/core/invocation.mli: Model Mpy_ast Report Usage
