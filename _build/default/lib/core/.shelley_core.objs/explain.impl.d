lib/core/explain.ml: Format List Model Report String Symbol Usage
