lib/core/model.mli: Annotations Format Ltlf Prog Regex Symbol
