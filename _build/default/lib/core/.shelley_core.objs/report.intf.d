lib/core/report.mli: Format Trace
