lib/core/report.ml: Format List Printf Trace
