lib/core/model_io.mli: Model Sexp_lite Usage
