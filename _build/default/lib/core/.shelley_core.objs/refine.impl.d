lib/core/refine.ml: Depgraph Language List Model Mpy_ast Nfa Printf Report Result Symbol Trace
