lib/core/validate.ml: Annotations Depgraph Hashtbl List Model Printf Report String
