lib/core/extract.mli: Model Mpy_ast Prog Regex Report
