lib/core/claims.ml: List Ltl_check Model Nfa Report Symbol Usage
