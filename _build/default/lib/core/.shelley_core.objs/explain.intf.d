lib/core/explain.mli: Format Model Report Symbol Trace
