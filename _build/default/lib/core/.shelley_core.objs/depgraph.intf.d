lib/core/depgraph.mli: Format Model Nfa
