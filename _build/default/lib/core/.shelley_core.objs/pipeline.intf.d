lib/core/pipeline.mli: Model Mpy_ast Report Result Usage
