lib/core/pipeline.mli: Limits Model Mpy_ast Report Usage
