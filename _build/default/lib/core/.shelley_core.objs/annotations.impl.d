lib/core/annotations.ml: Format Fun List Mpy_ast Option Printf
