lib/core/pipeline.ml: Claims Extract Invocation List Model Mpy_ast Mpy_lexer Mpy_parser Printf Refine Report String Usage Validate
