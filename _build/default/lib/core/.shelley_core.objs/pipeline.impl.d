lib/core/pipeline.ml: Claims Extract Invocation Limits List Model Mpy_ast Mpy_parser Printexc Refine Report String Usage Validate
