lib/core/extract.ml: Annotations Deriv Hashtbl Infer Int List Ltl_parser Model Mpy_ast Mpy_lower Option Printf Regex Report String Symbol
