lib/core/model.ml: Annotations Format Infer List Ltlf Printf Prog Regex String Symbol
