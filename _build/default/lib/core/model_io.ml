open Sexp_lite

let kind_to_string = function
  | Annotations.Initial -> "initial"
  | Annotations.Final -> "final"
  | Annotations.Initial_final -> "initial_final"
  | Annotations.Middle -> "middle"

let kind_of_string = function
  | "initial" -> Some Annotations.Initial
  | "final" -> Some Annotations.Final
  | "initial_final" -> Some Annotations.Initial_final
  | "middle" -> Some Annotations.Middle
  | _ -> None

let exit_to_sexp (e : Model.exit_point) =
  list
    [
      atom "exit";
      list [ atom "id"; atom (string_of_int e.exit_id) ];
      list [ atom "line"; atom (string_of_int e.exit_line) ];
      list (atom "next" :: List.map atom e.next_ops);
      list [ atom "value"; atom (string_of_bool e.has_user_value) ];
      list [ atom "implicit"; atom (string_of_bool e.implicit) ];
      list [ atom "behavior"; atom (Regex.to_string e.behavior) ];
    ]

let op_to_sexp (op : Model.operation) =
  list
    [
      atom "operation";
      list [ atom "name"; atom op.op_name ];
      list [ atom "kind"; atom (kind_to_string op.op_kind) ];
      list [ atom "line"; atom (string_of_int op.op_line) ];
      list [ atom "marked-body"; atom (Prog.to_string op.marked_body) ];
      list (atom "warnings" :: List.map atom op.lowering_warnings);
      list (atom "exits" :: List.map exit_to_sexp op.exits);
    ]

let to_sexp (model : Model.t) =
  list
    [
      atom "model";
      list [ atom "name"; atom model.name ];
      list [ atom "line"; atom (string_of_int model.line) ];
      list
        [
          atom "kind";
          atom
            (match model.kind with
            | `Base -> "base"
            | `Composite -> "composite");
        ];
      list (atom "declared-subsystems" :: List.map atom model.declared_subsystems);
      list
        (atom "subsystem-fields"
        :: List.map (fun (f, c) -> list [ atom f; atom c ]) model.subsystem_fields);
      list (atom "claims" :: List.map (fun (text, _) -> atom text) model.claims);
      list (atom "operations" :: List.map op_to_sexp model.operations);
    ]

let to_string model = Sexp_lite.to_string_pretty (to_sexp model) ^ "\n"

(* --- Reading -------------------------------------------------------------------- *)

let ( let* ) = Result.bind

let require what = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or malformed field %S" what)

let int_field name sexp =
  let* raw = require name (field_atom name sexp) in
  require (name ^ " (integer)") (int_of_string_opt raw)

let bool_field name sexp =
  let* raw = require name (field_atom name sexp) in
  require (name ^ " (boolean)") (bool_of_string_opt raw)

let atoms_field name sexp =
  let* items = require name (field name sexp) in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | Atom a :: rest -> collect (a :: acc) rest
    | List _ :: _ -> Error (Printf.sprintf "field %S must contain only atoms" name)
  in
  collect [] items

let exit_of_sexp sexp =
  let* exit_id = int_field "id" sexp in
  let* exit_line = int_field "line" sexp in
  let* next_ops = atoms_field "next" sexp in
  let* has_user_value = bool_field "value" sexp in
  let* implicit = bool_field "implicit" sexp in
  let* behavior_text = require "behavior" (field_atom "behavior" sexp) in
  let* behavior =
    Result.map_error
      (fun msg -> Printf.sprintf "exit %d behavior: %s" exit_id msg)
      (Regex_parser.parse_result behavior_text)
  in
  Ok { Model.exit_id; exit_line; next_ops; has_user_value; implicit; behavior }

let op_of_sexp sexp =
  let* op_name = require "name" (field_atom "name" sexp) in
  let* kind_text = require "kind" (field_atom "kind" sexp) in
  let* op_kind = require "kind (valid)" (kind_of_string kind_text) in
  let* op_line = int_field "line" sexp in
  let* marked_text = require "marked-body" (field_atom "marked-body" sexp) in
  let* marked_body =
    Result.map_error
      (fun msg -> Printf.sprintf "operation %s body: %s" op_name msg)
      (Prog_parser.parse_result marked_text)
  in
  let* lowering_warnings = atoms_field "warnings" sexp in
  let* exit_forms = require "exits" (field "exits" sexp) in
  let* exits =
    List.fold_left
      (fun acc form ->
        let* acc = acc in
        let* e = exit_of_sexp form in
        Ok (e :: acc))
      (Ok []) exit_forms
    |> Result.map List.rev
  in
  Ok
    {
      Model.op_name;
      op_kind;
      op_line;
      exits;
      marked_body;
      plain_body = Mpy_lower.strip_markers marked_body;
      lowering_warnings;
    }

let of_sexp sexp =
  match sexp with
  | List (Atom "model" :: _) ->
    let* name = require "name" (field_atom "name" sexp) in
    let* line = int_field "line" sexp in
    let* kind_text = require "kind" (field_atom "kind" sexp) in
    let* kind =
      match kind_text with
      | "base" -> Ok `Base
      | "composite" -> Ok `Composite
      | other -> Error (Printf.sprintf "unknown model kind %S" other)
    in
    let* declared_subsystems = atoms_field "declared-subsystems" sexp in
    let* field_forms = require "subsystem-fields" (field "subsystem-fields" sexp) in
    let* subsystem_fields =
      List.fold_left
        (fun acc form ->
          let* acc = acc in
          match form with
          | List [ Atom f; Atom c ] -> Ok ((f, c) :: acc)
          | _ -> Error "subsystem-fields entries must be (field class) pairs")
        (Ok []) field_forms
      |> Result.map List.rev
    in
    let* claim_texts = atoms_field "claims" sexp in
    let* claims =
      List.fold_left
        (fun acc text ->
          let* acc = acc in
          match Ltl_parser.parse_result text with
          | Ok formula -> Ok ((text, formula) :: acc)
          | Error msg -> Error (Printf.sprintf "claim %S: %s" text msg))
        (Ok []) claim_texts
      |> Result.map List.rev
    in
    let* op_forms = require "operations" (field "operations" sexp) in
    let* operations =
      List.fold_left
        (fun acc form ->
          let* acc = acc in
          let* op = op_of_sexp form in
          Ok (op :: acc))
        (Ok []) op_forms
      |> Result.map List.rev
    in
    Ok { Model.name; line; kind; declared_subsystems; subsystem_fields; claims; operations }
  | _ -> Error "expected a (model ...) form"

let of_string text =
  match Sexp_lite.parse text with
  | sexp -> of_sexp sexp
  | exception Sexp_lite.Parse_error msg -> Error msg

let save ~path model =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string model))

let load ~path =
  match open_in_bin path with
  | ic ->
    let content =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    Result.map_error (fun msg -> Printf.sprintf "%s: %s" path msg) (of_string content)
  | exception Sys_error msg -> Error msg

let env_of_files paths =
  let* models =
    List.fold_left
      (fun acc path ->
        let* acc = acc in
        let* model = load ~path in
        Ok (model :: acc))
      (Ok []) paths
  in
  Ok
    (fun name ->
      List.find_opt (fun (m : Model.t) -> String.equal m.Model.name name) models)
