let subsystem_call_nfa ?limits (model : Model.t) =
  let expanded = Usage.expanded_nfa ?limits model in
  Nfa.map_symbols
    (fun sym -> if Symbol.split_scope sym <> None then Some sym else None)
    expanded

let check_claim ?limits (model : Model.t) (text, formula) =
  let impl = subsystem_call_nfa ?limits model in
  match Ltl_check.check ?limits ~impl formula with
  | Ok () -> None
  | Error violation ->
    Some
      (Report.Requirement_failure
         {
           class_name = model.Model.name;
           formula = text;
           counterexample = violation.Ltl_check.counterexample;
         })

let check ?limits (model : Model.t) =
  List.filter_map (check_claim ?limits model) model.Model.claims
