let subsystem_call_nfa (model : Model.t) =
  let expanded = Usage.expanded_nfa model in
  Nfa.map_symbols
    (fun sym -> if Symbol.split_scope sym <> None then Some sym else None)
    expanded

let check_claim (model : Model.t) (text, formula) =
  let impl = subsystem_call_nfa model in
  match Ltl_check.check ~impl formula with
  | Ok () -> None
  | Error violation ->
    Some
      (Report.Requirement_failure
         {
           class_name = model.Model.name;
           formula = text;
           counterexample = violation.Ltl_check.counterexample;
         })

let check (model : Model.t) = List.filter_map (check_claim model) model.Model.claims
