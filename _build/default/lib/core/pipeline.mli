(** The end-to-end Shelley verification pipeline.

    Parse → extract each class (in file order, so substrates can precede the
    composites that use them) → validate structure → check subsystem usage →
    check temporal claims → run invocation analysis. All findings are
    returned as {!Report.t} values; {!verified} is the paper's notion of a
    program passing verification (no [Error]-severity reports). *)

type result = {
  models : Model.t list;  (** extraction results, in source order *)
  reports : Report.t list;
}

val verify_program : ?extra_env:Usage.env -> Mpy_ast.program -> result
(** [extra_env] resolves class names not defined in the program itself —
    typically models loaded from [.shelley] files ({!Model_io.env_of_files})
    for separate verification. Local definitions shadow it. *)

val verify_source : ?extra_env:Usage.env -> string -> (result, string) Result.t
(** Parse and verify; [Error message] on lexical or syntax errors. *)

val verify_source_exn : ?extra_env:Usage.env -> string -> result
(** @raise Mpy_parser.Parse_error / Mpy_lexer.Lex_error on bad input. *)

val verified : result -> bool
(** No error-severity report. *)

val env_of : result -> Usage.env
(** Lookup over the extracted models (by class name). *)

val find_model : result -> string -> Model.t option
