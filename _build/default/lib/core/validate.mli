(** Structural validation of an extracted model.

    These checks do not need the environment: they catch classes whose own
    annotation structure is inconsistent before any caller is verified.
    Severity [Error] means the model cannot be meaningfully checked against;
    [Warning] flags likely specification bugs (unreachable operations,
    guaranteed leaks). *)

val check : Model.t -> Report.t list
(** In order:
    - duplicate operation names (error);
    - no initial operation while operations exist (error);
    - no final operation while operations exist (error — every object's
      lifetime could never end legally);
    - a return list naming an operation the class does not declare (error);
    - a non-final operation with a terminal exit (empty next list): callers
      reaching it can neither continue nor stop legally (error);
    - operations unreachable from every initial operation (warning);
    - operations from which no final operation is reachable (warning). *)
