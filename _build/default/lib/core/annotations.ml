type op_kind =
  | Initial
  | Final
  | Initial_final
  | Middle

let is_initial = function
  | Initial | Initial_final -> true
  | Final | Middle -> false

let is_final = function
  | Final | Initial_final -> true
  | Initial | Middle -> false

let pp_op_kind fmt k =
  Format.pp_print_string fmt
    (match k with
    | Initial -> "initial"
    | Final -> "final"
    | Initial_final -> "initial, final"
    | Middle -> "op")

type class_annotation =
  | Sys of string list option
  | Claim of string

type classified = {
  class_annotations : class_annotation list;
  class_annotation_errors : (int * string) list;
}

let classify_class_decorators decorators =
  let annotations = ref [] in
  let errors = ref [] in
  let error line msg = errors := (line, msg) :: !errors in
  List.iter
    (fun (d : Mpy_ast.decorator) ->
      match d.dec_name, d.dec_args with
      | "sys", [] -> annotations := Sys None :: !annotations
      | "sys", [ Mpy_ast.List items ] ->
        let names =
          List.map
            (function
              | Mpy_ast.Str s -> Some s
              | _ -> None)
            items
        in
        if List.for_all Option.is_some names then
          annotations := Sys (Some (List.filter_map Fun.id names)) :: !annotations
        else error d.dec_line "@sys expects a list of subsystem field names (strings)"
      | "sys", _ -> error d.dec_line "@sys expects no argument or a list of field names"
      | "claim", [ Mpy_ast.Str text ] -> annotations := Claim text :: !annotations
      | "claim", _ -> error d.dec_line "@claim expects a single string argument"
      | ("op" | "op_initial" | "op_final" | "op_initial_final"), _ ->
        error d.dec_line
          (Printf.sprintf "@%s applies to methods, not classes" d.dec_name)
      | name, _ -> error d.dec_line (Printf.sprintf "unknown class annotation @%s" name))
    decorators;
  { class_annotations = List.rev !annotations; class_annotation_errors = List.rev !errors }

let classify_method_decorators decorators =
  let kinds =
    List.filter_map
      (fun (d : Mpy_ast.decorator) ->
        match d.dec_name with
        | "op" -> Some Middle
        | "op_initial" -> Some Initial
        | "op_final" -> Some Final
        | "op_initial_final" -> Some Initial_final
        | _ -> None)
      decorators
  in
  let unknown =
    List.filter
      (fun (d : Mpy_ast.decorator) ->
        not
          (List.mem d.dec_name
             [ "op"; "op_initial"; "op_final"; "op_initial_final"; "property"; "staticmethod" ]))
      decorators
  in
  match kinds, unknown with
  | _, d :: _ -> Error (Printf.sprintf "unknown method annotation @%s" d.Mpy_ast.dec_name)
  | [], [] -> Ok None
  | [ kind ], [] -> Ok (Some kind)
  | _ :: _ :: _, [] -> Error "conflicting operation annotations (use exactly one @op_* decorator)"

let table =
  [
    ("@claim", "class", "temporal requirement");
    ("@sys", "class", "base class");
    ("@sys([\"s1\", ..., \"sn\"])", "class", "composite class");
    ("@op_initial", "method", "invoke in first place");
    ("@op_final", "method", "invoke in last place");
    ("@op_initial_final", "method", "invoke in first and last places");
    ("@op", "method", "invoke in between an initial and final methods");
  ]
