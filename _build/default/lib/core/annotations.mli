(** Shelley's annotation vocabulary (the paper's Table 1) and its
    interpretation on parsed decorators. *)

type op_kind =
  | Initial  (** [@op_initial] — may be invoked first *)
  | Final  (** [@op_final] — may be invoked last *)
  | Initial_final  (** [@op_initial_final] *)
  | Middle  (** [@op] — in between initial and final methods *)

val is_initial : op_kind -> bool
val is_final : op_kind -> bool
val pp_op_kind : Format.formatter -> op_kind -> unit

type class_annotation =
  | Sys of string list option
      (** [@sys] (base class, [None]) or [@sys(["a", "b"])] (composite class
          with declared subsystem fields) *)
  | Claim of string  (** [@claim("…")] — raw formula text *)

type classified = {
  class_annotations : class_annotation list;
  class_annotation_errors : (int * string) list;  (** (line, message) *)
}

val classify_class_decorators : Mpy_ast.decorator list -> classified

val classify_method_decorators :
  Mpy_ast.decorator list -> (op_kind option, string) result
(** [Ok None] when the method carries no Shelley annotation (helper method or
    [__init__]); [Error _] on conflicting or malformed annotations. *)

val table : (string * string * string) list
(** The rows of the paper's Table 1: (annotation, applies to, meaning).
    Printed verbatim by the benchmark harness to regenerate the table. *)
