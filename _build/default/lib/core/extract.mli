(** Model extraction: annotated MicroPython class → {!Model.t} (§3).

    Runs the three steps the paper names: method dependency extraction
    (via the [return] lists), method behavior extraction (lowering to the IR
    and running the paper's [⟦·⟧] inference, recovering one behavior regex
    per exit from the exit markers), and leaves method invocation analysis
    to {!Invocation}. Extraction never fails: problems (bad annotations,
    unparseable claims, unrecognizable returns) are reported as diagnostics
    alongside a best-effort model. *)

type result = {
  model : Model.t;
  diagnostics : Report.t list;
}

val extract_class : Mpy_ast.class_def -> result

val exit_behaviors_of_marked : method_name:string -> Prog.t -> (int * Regex.t) list * Regex.t
(** Split the inferred denotation of a marked body into per-exit behaviors
    (keyed by exit index, markers stripped) and the ongoing (fall-through)
    behavior. Exposed for tests. *)
