(** Persisting extracted models as S-expressions.

    Verification of a composite only needs the *models* of its substrates,
    not their source — saving models enables separate verification: extract
    and validate a library class once, ship the [.shelley] model file, and
    verify applications against it without re-parsing the library.

    Round-trip guarantee (tested): [of_string (to_string m)] equals [m] up
    to behavior-regex normal form and the unrecoverable lowering warnings;
    in particular the usage automaton, the expanded automaton, every exit's
    next-set, the claims and the per-exit behavior *languages* are
    preserved exactly. *)

val to_sexp : Model.t -> Sexp_lite.t
val of_sexp : Sexp_lite.t -> (Model.t, string) result

val to_string : Model.t -> string
(** Pretty multi-line form, suitable for committing to a repository. *)

val of_string : string -> (Model.t, string) result

val save : path:string -> Model.t -> unit
val load : path:string -> (Model.t, string) result

val env_of_files : string list -> (Usage.env, string) result
(** Load several model files into a lookup environment (later files shadow
    earlier ones on name clashes). *)
