(** Runtime monitoring of operation ordering.

    A monitor tracks a live object against its extracted model, one
    operation at a time — runtime verification as the complement of the
    static check: deploy the same model that was verified and reject bad
    call sequences as they happen. Monitors are immutable values; stepping
    returns a new monitor, so speculative exploration is free. *)

type t

val start : Model.t -> t
(** A monitor in the object's initial state (nothing invoked yet). *)

type verdict =
  | Continue of t  (** the operation was allowed *)
  | Reject of {
      op : string;
      allowed : string list;  (** what would have been accepted instead *)
    }

val step : t -> string -> verdict
(** Observe one operation invocation. *)

val allowed : t -> string list
(** The operations acceptable next, sorted. *)

val may_stop : t -> bool
(** Is stopping now a legal end of the object's lifetime (the usage so far
    ends at a final operation, or nothing was invoked)? *)

val observed : t -> string list
(** Everything accepted so far, oldest first. *)

val run : Model.t -> string list -> (unit, string) result
(** Feed a whole trace; [Error message] on the first rejected operation or
    if the trace stops where stopping is illegal. *)

val pp : Format.formatter -> t -> unit
(** One-line status: observed trace, allowed set, stoppability. *)
