type node =
  | Entry of string
  | Exit of string * int

let node_label = function
  | Entry name -> name
  | Exit (name, k) -> Printf.sprintf "%s/%d" name k

type t = {
  nodes : node list;
  arcs : (node * node) list;
}

let of_model (model : Model.t) =
  let nodes =
    List.concat_map
      (fun (op : Model.operation) ->
        Entry op.op_name
        :: List.map (fun (e : Model.exit_point) -> Exit (op.op_name, e.exit_id)) op.exits)
      model.operations
  in
  let arcs =
    List.concat_map
      (fun (op : Model.operation) ->
        List.concat_map
          (fun (e : Model.exit_point) ->
            (Entry op.op_name, Exit (op.op_name, e.exit_id))
            :: List.filter_map
                 (fun next ->
                   (* Arcs to unknown operations are dropped here; Validate
                      reports them. *)
                   if Model.find_op model next <> None then
                     Some (Exit (op.op_name, e.exit_id), Entry next)
                   else None)
                 e.next_ops)
          op.exits)
      model.operations
  in
  { nodes; arcs }

(* State numbering: 0 is the start; exits are numbered densely after it. *)
let exit_states (model : Model.t) =
  let table = Hashtbl.create 16 in
  let next = ref 1 in
  List.iter
    (fun (op : Model.operation) ->
      List.iter
        (fun (e : Model.exit_point) ->
          Hashtbl.add table (op.op_name, e.exit_id) !next;
          incr next)
        op.exits)
    model.operations;
  (table, !next)

let usage_nfa (model : Model.t) =
  let table, num_states = exit_states model in
  let state_of op_name exit_id = Hashtbl.find table (op_name, exit_id) in
  let edges_for_invocation src (op : Model.operation) =
    List.map
      (fun (e : Model.exit_point) -> (src, Model.entry_symbol op, state_of op.op_name e.exit_id))
      op.exits
  in
  let from_start =
    List.concat_map (fun op -> edges_for_invocation 0 op) (Model.initial_ops model)
  in
  let from_exits =
    List.concat_map
      (fun (op : Model.operation) ->
        List.concat_map
          (fun (e : Model.exit_point) ->
            let src = state_of op.op_name e.exit_id in
            List.concat_map
              (fun next ->
                match Model.find_op model next with
                | Some next_op -> edges_for_invocation src next_op
                | None -> [])
              e.next_ops)
          op.exits)
      model.operations
  in
  let accept =
    0
    :: List.concat_map
         (fun (op : Model.operation) ->
           List.map (fun (e : Model.exit_point) -> state_of op.op_name e.exit_id) op.exits)
         (Model.final_ops model)
  in
  let labels =
    (0, "start")
    :: List.concat_map
         (fun (op : Model.operation) ->
           List.map
             (fun (e : Model.exit_point) ->
               (state_of op.op_name e.exit_id, node_label (Exit (op.op_name, e.exit_id))))
             op.exits)
         model.operations
  in
  Nfa.create ~labels ~num_states ~start:[ 0 ] ~accept
    ~transitions:(from_start @ from_exits) ()

let reachable_ops (model : Model.t) =
  let rec grow seen frontier =
    match frontier with
    | [] -> seen
    | name :: rest ->
      if List.mem name seen then grow seen rest
      else
        let next =
          match Model.find_op model name with
          | Some op ->
            List.concat_map (fun (e : Model.exit_point) -> e.next_ops) op.exits
            |> List.filter (fun n -> Model.find_op model n <> None)
          | None -> []
        in
        grow (name :: seen) (next @ rest)
  in
  grow [] (List.map (fun (op : Model.operation) -> op.op_name) (Model.initial_ops model))
  |> List.rev

let ops_reaching_final (model : Model.t) =
  (* Fixpoint over the reversed next-op graph. *)
  let reaches = Hashtbl.create 16 in
  List.iter
    (fun (op : Model.operation) ->
      if Annotations.is_final op.op_kind then Hashtbl.replace reaches op.op_name ())
    model.operations;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (op : Model.operation) ->
        if not (Hashtbl.mem reaches op.op_name) then
          let can =
            List.exists
              (fun (e : Model.exit_point) ->
                List.exists (fun next -> Hashtbl.mem reaches next) e.next_ops)
              op.exits
          in
          if can then begin
            Hashtbl.replace reaches op.op_name ();
            changed := true
          end)
      model.operations
  done;
  List.filter (fun name -> Hashtbl.mem reaches name) (Model.op_names model)

let pp fmt g =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (src, dst) -> Format.fprintf fmt "%s -> %s@," (node_label src) (node_label dst))
    g.arcs;
  Format.fprintf fmt "@]"
