(** Structured explanation of usage counterexamples.

    A raw counterexample like [open_a, a.test, a.open] interleaves operation
    entries with subsystem calls; this module segments it back into
    operations — each with its source line and the calls its body performed —
    and narrates what the offended subsystem observed. Drives the CLI's
    [check --explain] output. *)

type step = {
  op : string;  (** operation of the composite *)
  op_line : int;  (** its [def] line in the source *)
  calls : Symbol.t list;  (** subsystem calls performed during this step *)
}

type t = {
  steps : step list;
  field : string;
  subsystem_class : string;
  observed : string list;  (** the offended subsystem's projected call sequence *)
  failure : Report.usage_failure;
}

val of_usage_error :
  model:Model.t ->
  field:string ->
  subsystem_class:string ->
  counterexample:Trace.t ->
  failure:Report.usage_failure ->
  t
(** Segment a counterexample against the composite's model. Events before
    the first operation entry (there are none in well-formed traces) are
    ignored. *)

val of_report : model:Model.t -> Report.t -> t option
(** [Some _] only for [Invalid_subsystem_usage] reports about [model]. *)

val pp : Format.formatter -> t -> unit
(** Multi-line narration:
    {v
    1. open_a (line 9) — calls: a.test, a.open
    Valve 'a' observed: test, open
    after 'open' the valve may not stop (close expected)
    v} *)
