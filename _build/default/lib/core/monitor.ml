type t = {
  model : Model.t;
  nfa : Nfa.t;
  config : States.Set.t;
  observed_rev : string list;
}

let start model =
  let nfa = Depgraph.usage_nfa model in
  { model; nfa; config = Nfa.initial_config nfa; observed_rev = [] }

type verdict =
  | Continue of t
  | Reject of {
      op : string;
      allowed : string list;
    }

let allowed t =
  List.filter
    (fun name ->
      not (States.Set.is_empty (Nfa.step t.nfa t.config (Symbol.intern name))))
    (Model.op_names t.model)
  |> List.sort String.compare

let step t op =
  let next = Nfa.step t.nfa t.config (Symbol.intern op) in
  if States.Set.is_empty next then Reject { op; allowed = allowed t }
  else Continue { t with config = next; observed_rev = op :: t.observed_rev }

let may_stop t = Nfa.accepting_config t.nfa t.config
let observed t = List.rev t.observed_rev

let run model ops =
  let rec go t = function
    | [] ->
      if may_stop t then Ok ()
      else
        Error
          (Printf.sprintf
             "incomplete usage: cannot stop after '%s' (allowed next: %s)"
             (match t.observed_rev with
             | last :: _ -> last
             | [] -> "<nothing>")
             (String.concat ", " (allowed t)))
    | op :: rest -> (
      match step t op with
      | Continue t' -> go t' rest
      | Reject { op; allowed } ->
        Error
          (Printf.sprintf "operation '%s' not allowed here (allowed: %s)" op
             (String.concat ", " allowed)))
  in
  go (start model) ops

let pp fmt t =
  Format.fprintf fmt "[%s] allowed: {%s}%s"
    (String.concat ", " (observed t))
    (String.concat ", " (allowed t))
    (if may_stop t then " (may stop)" else "")
