(** Verification reports, formatted like the paper's transcripts (§2.2). *)

type severity =
  | Error
  | Warning
  | Info

type usage_failure =
  | Not_allowed of string
      (** the bracketed operation is not permitted at that point *)
  | Not_final of string
      (** the trace may stop after the bracketed operation, which is not
          final in the subsystem's specification *)

type t =
  | Invalid_subsystem_usage of {
      class_name : string;
      field : string;  (** e.g. ["a"] *)
      subsystem_class : string;  (** e.g. ["Valve"] *)
      counterexample : Trace.t;
          (** mixed trace of operation entries and subsystem calls, e.g.
              [open_a, a.test, a.open] *)
      projected : string list;  (** the field's own calls, unqualified *)
      failure : usage_failure;
    }
  | Requirement_failure of {
      class_name : string;
      formula : string;  (** as written in the [@claim] *)
      counterexample : Trace.t;
    }
  | Structural of {
      class_name : string;
      line : int option;
      severity : severity;
      message : string;
    }

val severity : t -> severity
val class_name : t -> string

val structural : ?line:int -> severity -> class_name:string -> string -> t

val pp : Format.formatter -> t -> unit
(** Paper-style rendering, e.g.
    {v
Error in specification: INVALID SUBSYSTEM USAGE
Counter example: open_a, a.test, a.open
Subsystems errors:
  * Valve 'a': test, >open< (not final)
    v} *)

val to_string : t -> string

val pp_all : Format.formatter -> t list -> unit

val errors : t list -> t list
(** Only the [Error]-severity reports. *)
