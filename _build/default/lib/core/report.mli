(** Verification reports, formatted like the paper's transcripts (§2.2). *)

type severity =
  | Error
  | Warning
  | Info

type usage_failure =
  | Not_allowed of string
      (** the bracketed operation is not permitted at that point *)
  | Not_final of string
      (** the trace may stop after the bracketed operation, which is not
          final in the subsystem's specification *)

type t =
  | Invalid_subsystem_usage of {
      class_name : string;
      field : string;  (** e.g. ["a"] *)
      subsystem_class : string;  (** e.g. ["Valve"] *)
      counterexample : Trace.t;
          (** mixed trace of operation entries and subsystem calls, e.g.
              [open_a, a.test, a.open] *)
      projected : string list;  (** the field's own calls, unqualified *)
      failure : usage_failure;
    }
  | Requirement_failure of {
      class_name : string;
      formula : string;  (** as written in the [@claim] *)
      counterexample : Trace.t;
    }
  | Structural of {
      class_name : string;
      line : int option;
      severity : severity;
      message : string;
    }
  | Syntax_error of {
      line : int;
      col : int;
      message : string;
    }
      (** A lexical or syntax error recovered by the tolerant parser; the
          rest of the file was still analyzed. *)
  | Resource_limit of {
      class_name : string;
      check : string;  (** which pipeline check was cut short, e.g. ["usage"] *)
      resource : string;  (** which budget ran out, e.g. ["progression obligations"] *)
      limit : int;
    }
      (** A check exceeded its {!Limits.t} budget and was skipped; every
          other check still ran. *)
  | Internal_error of {
      class_name : string;
      check : string;
      message : string;
    }
      (** A check raised an unexpected exception; it was skipped and every
          other check still ran. *)

val severity : t -> severity
(** [Syntax_error], [Resource_limit] and [Internal_error] are [Error]s:
    verification did not complete, so the program cannot be claimed
    verified. *)

val class_name : t -> string
(** ["<source>"] for [Syntax_error] (no class context). *)

val structural : ?line:int -> severity -> class_name:string -> string -> t

val syntax_error : line:int -> col:int -> string -> t

val is_syntax_error : t -> bool

val is_resource_limit : t -> bool

val pp : Format.formatter -> t -> unit
(** Paper-style rendering, e.g.
    {v
Error in specification: INVALID SUBSYSTEM USAGE
Counter example: open_a, a.test, a.open
Subsystems errors:
  * Valve 'a': test, >open< (not final)
    v} *)

val to_string : t -> string

val pp_all : Format.formatter -> t list -> unit

val errors : t list -> t list
(** Only the [Error]-severity reports. *)
