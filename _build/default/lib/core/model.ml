type exit_point = {
  exit_id : int;
  exit_line : int;
  next_ops : string list;
  has_user_value : bool;
  implicit : bool;
  behavior : Regex.t;
}

type operation = {
  op_name : string;
  op_kind : Annotations.op_kind;
  op_line : int;
  exits : exit_point list;
  marked_body : Prog.t;
  plain_body : Prog.t;
  lowering_warnings : string list;
}

type t = {
  name : string;
  line : int;
  kind : [ `Base | `Composite ];
  declared_subsystems : string list;
  subsystem_fields : (string * string) list;
  claims : (string * Ltlf.t) list;
  operations : operation list;
}

let find_op model name = List.find_opt (fun op -> String.equal op.op_name name) model.operations
let op_names model = List.map (fun op -> op.op_name) model.operations
let initial_ops model = List.filter (fun op -> Annotations.is_initial op.op_kind) model.operations
let final_ops model = List.filter (fun op -> Annotations.is_final op.op_kind) model.operations
let subsystem_class model field = List.assoc_opt field model.subsystem_fields
let behavior_of_op op = Infer.infer op.plain_body
let entry_symbol op = Symbol.intern op.op_name

let pp_exit fmt e =
  Format.fprintf fmt "exit %d%s -> [%s]%s" e.exit_id
    (if e.implicit then " (implicit)" else "")
    (String.concat ", " e.next_ops)
    (if e.has_user_value then " (+value)" else "");
  Format.fprintf fmt "  behavior: %a" Regex.pp e.behavior

let pp fmt model =
  Format.fprintf fmt "@[<v>%s %s%s@,"
    (match model.kind with
    | `Base -> "base class"
    | `Composite -> "composite class")
    model.name
    (match model.declared_subsystems with
    | [] -> ""
    | subs -> Printf.sprintf " over [%s]" (String.concat ", " subs));
  List.iter (fun (text, _) -> Format.fprintf fmt "claim: %s@," text) model.claims;
  List.iter
    (fun op ->
      Format.fprintf fmt "@[<v 2>%s (%a):@," op.op_name Annotations.pp_op_kind op.op_kind;
      List.iter (fun e -> Format.fprintf fmt "%a@," pp_exit e) op.exits;
      Format.fprintf fmt "@]")
    model.operations;
  Format.fprintf fmt "@]"
