type result = {
  models : Model.t list;
  reports : Report.t list;
}

let env_of result name =
  List.find_opt (fun (m : Model.t) -> String.equal m.Model.name name) result.models

let find_model = env_of

let verify_program ?(extra_env = fun _ -> None) (program : Mpy_ast.program) =
  let extractions = List.map Extract.extract_class program.Mpy_ast.prog_classes in
  let models = List.map (fun (e : Extract.result) -> e.Extract.model) extractions in
  let env name =
    match List.find_opt (fun (m : Model.t) -> String.equal m.Model.name name) models with
    | Some _ as found -> found
    | None -> extra_env name
  in
  let reports =
    List.concat_map
      (fun ((extraction : Extract.result), (cls : Mpy_ast.class_def)) ->
        let model = extraction.Extract.model in
        extraction.Extract.diagnostics
        @ Validate.check model
        @ Usage.check ~env model
        @ Claims.check model
        @ Invocation.check ~env ~model cls
        @ Refine.check_inheritance ~env cls model)
      (List.combine extractions program.Mpy_ast.prog_classes)
  in
  { models; reports }

let verify_source ?extra_env source =
  match Mpy_parser.parse_program source with
  | program -> Ok (verify_program ?extra_env program)
  | exception Mpy_parser.Parse_error (msg, line, col) ->
    Error (Printf.sprintf "syntax error at line %d, col %d: %s" line col msg)
  | exception Mpy_lexer.Lex_error (msg, line, col) ->
    Error (Printf.sprintf "lexical error at line %d, col %d: %s" line col msg)

let verify_source_exn ?extra_env source =
  verify_program ?extra_env (Mpy_parser.parse_program source)
let verified result = Report.errors result.reports = []
