type result = {
  model : Model.t;
  diagnostics : Report.t list;
}

(* A returned behavior of a marked body always ends with exactly one exit
   marker (markers are emitted immediately before every IR return and
   nowhere else). Walk the right spine of the normalized regex to split it
   off. *)
let rec split_trailing_marker (r : Regex.t) : (Regex.t * Symbol.t) option =
  match r with
  | Sym s -> if Mpy_lower.is_exit_marker s <> None then Some (Regex.eps, s) else None
  | Seq (a, b) ->
    Option.map (fun (prefix, marker) -> (Regex.seq a prefix, marker)) (split_trailing_marker b)
  | Empty | Eps | Alt _ | Star _ -> None

let exit_behaviors_of_marked ~method_name marked =
  let d = Infer.denote marked in
  let by_exit = Hashtbl.create 8 in
  List.iter
    (fun r ->
      match split_trailing_marker r with
      | Some (prefix, marker) -> (
        match Mpy_lower.is_exit_marker marker with
        | Some (meth, k) when String.equal meth method_name ->
          let existing =
            match Hashtbl.find_opt by_exit k with
            | Some r -> r
            | None -> Regex.empty
          in
          Hashtbl.replace by_exit k (Regex.alt existing prefix)
        | Some _ | None -> ())
      | None ->
        (* Unreachable by construction; be conservative and ignore. *)
        ())
    d.Infer.returned;
  let exits =
    Hashtbl.fold (fun k r acc -> (k, r) :: acc) by_exit []
    |> List.sort (fun (k1, _) (k2, _) -> Int.compare k1 k2)
  in
  (exits, d.Infer.ongoing)

let extract_operation ~class_name (meth : Mpy_ast.method_def) kind =
  let lowered = Mpy_lower.lower_method meth in
  let marked = lowered.Mpy_lower.low_prog in
  let plain = Mpy_lower.strip_markers marked in
  let behaviors, ongoing = exit_behaviors_of_marked ~method_name:meth.meth_name marked in
  let behavior_of k =
    match List.assoc_opt k behaviors with
    | Some r -> r
    | None -> Regex.empty (* return statement unreachable (dead code) *)
  in
  let diagnostics = ref [] in
  let explicit_exits =
    List.map
      (fun (info : Mpy_lower.exit_info) ->
        let next_ops =
          match info.exit_next with
          | Some ops -> ops
          | None ->
            diagnostics :=
              Report.structural ~line:info.exit_line Report.Warning ~class_name
                (Printf.sprintf
                   "operation '%s': return value is not a next-operation list; treated as \
                    terminal"
                   meth.meth_name)
              :: !diagnostics;
            []
        in
        {
          Model.exit_id = info.exit_index;
          exit_line = info.exit_line;
          next_ops;
          has_user_value = info.exit_has_value;
          implicit = false;
          behavior = behavior_of info.exit_index;
        })
      lowered.Mpy_lower.low_exits
  in
  let implicit_exit =
    if Deriv.is_empty_language ongoing then []
    else begin
      diagnostics :=
        Report.structural ~line:meth.meth_line Report.Warning ~class_name
          (Printf.sprintf
             "operation '%s': control can fall off the end of the method; an implicit \
              terminal exit was added"
             meth.meth_name)
        :: !diagnostics;
      [
        {
          Model.exit_id = List.length explicit_exits;
          exit_line = 0;
          next_ops = [];
          has_user_value = false;
          implicit = true;
          behavior = ongoing;
        };
      ]
    end
  in
  List.iter
    (fun w ->
      diagnostics :=
        Report.structural Report.Warning ~class_name
          (Printf.sprintf "operation '%s': %s" meth.meth_name w)
        :: !diagnostics)
    lowered.Mpy_lower.low_warnings;
  let op =
    {
      Model.op_name = meth.meth_name;
      op_kind = kind;
      op_line = meth.meth_line;
      exits = explicit_exits @ implicit_exit;
      marked_body = marked;
      plain_body = plain;
      lowering_warnings = lowered.Mpy_lower.low_warnings;
    }
  in
  (op, List.rev !diagnostics)

(* Subsystem fields: every "self.f = C(...)" in __init__. *)
let subsystem_fields_of (cls : Mpy_ast.class_def) =
  match Mpy_ast.find_method cls "__init__" with
  | None -> []
  | Some init ->
    List.filter_map
      (fun (s : Mpy_ast.stmt) ->
        match s.stmt with
        | Assign (Attr (Name "self", field), Call (Name cls_name, _)) -> Some (field, cls_name)
        | _ -> None)
      init.meth_body

let extract_class (cls : Mpy_ast.class_def) =
  let class_name = cls.cls_name in
  let diagnostics = ref [] in
  let add d = diagnostics := d :: !diagnostics in
  let classified = Annotations.classify_class_decorators cls.cls_decorators in
  List.iter
    (fun (line, msg) -> add (Report.structural ~line Report.Error ~class_name msg))
    classified.Annotations.class_annotation_errors;
  let sys_annotations =
    List.filter_map
      (function
        | Annotations.Sys subs -> Some subs
        | Annotations.Claim _ -> None)
      classified.Annotations.class_annotations
  in
  let kind, declared_subsystems =
    match sys_annotations with
    | [] ->
      add
        (Report.structural ~line:cls.cls_line Report.Warning ~class_name
           "class has no @sys annotation; it will not be verified against callers");
      (`Base, [])
    | [ None ] -> (`Base, [])
    | [ Some subs ] -> (`Composite, subs)
    | _ :: _ :: _ ->
      add
        (Report.structural ~line:cls.cls_line Report.Error ~class_name
           "multiple @sys annotations");
      (`Base, [])
  in
  let claims =
    List.filter_map
      (function
        | Annotations.Claim text -> (
          match Ltl_parser.parse_result text with
          | Ok formula -> Some (text, formula)
          | Error msg ->
            add
              (Report.structural ~line:cls.cls_line Report.Error ~class_name
                 (Printf.sprintf "unparseable @claim %S: %s" text msg));
            None)
        | Annotations.Sys _ -> None)
      classified.Annotations.class_annotations
  in
  let operations =
    List.filter_map
      (fun (meth : Mpy_ast.method_def) ->
        match Annotations.classify_method_decorators meth.meth_decorators with
        | Ok None -> None
        | Ok (Some kind) ->
          let op, op_diags = extract_operation ~class_name meth kind in
          List.iter add op_diags;
          Some op
        | Error msg ->
          add (Report.structural ~line:meth.meth_line Report.Error ~class_name msg);
          None)
      cls.cls_methods
  in
  let model =
    {
      Model.name = class_name;
      line = cls.cls_line;
      kind;
      declared_subsystems;
      subsystem_fields = subsystem_fields_of cls;
      claims;
      operations;
    }
  in
  { model; diagnostics = List.rev !diagnostics }
