let usage_inclusion_counterexample a b =
  let impl = Depgraph.usage_nfa a in
  let spec = Depgraph.usage_nfa b in
  let alphabet = Symbol.Set.union (Nfa.alphabet impl) (Nfa.alphabet spec) in
  Language.inclusion_counterexample ~alphabet ~impl ~spec ()

let refines ~impl ~spec =
  match usage_inclusion_counterexample impl spec with
  | None -> Ok ()
  | Some w -> Error w

let substitutable ~sub ~super =
  match usage_inclusion_counterexample super sub with
  | None -> Ok ()
  | Some w -> Error w

let equivalent_protocols a b =
  Result.is_ok (refines ~impl:a ~spec:b) && Result.is_ok (refines ~impl:b ~spec:a)

let check_inheritance ~env (cls : Mpy_ast.class_def) (model : Model.t) =
  List.filter_map
    (fun base ->
      match env base with
      | None -> None (* Pin, ADC, ... — not a verified class *)
      | Some super -> (
        match substitutable ~sub:model ~super with
        | Ok () -> None
        | Error witness ->
          Some
            (Report.structural ~line:cls.Mpy_ast.cls_line Report.Error
               ~class_name:model.Model.name
               (Printf.sprintf
                  "not substitutable for base class %s: the usage '%s' is legal for %s \
                   but not for %s"
                  base (Trace.to_string witness) base model.Model.name))))
    cls.Mpy_ast.cls_bases
