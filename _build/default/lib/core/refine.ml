let usage_inclusion_counterexample ?limits a b =
  let impl = Depgraph.usage_nfa a in
  let spec = Depgraph.usage_nfa b in
  let alphabet = Symbol.Set.union (Nfa.alphabet impl) (Nfa.alphabet spec) in
  Language.inclusion_counterexample ?limits ~alphabet ~impl ~spec ()

let refines ?limits ~impl ~spec () =
  match usage_inclusion_counterexample ?limits impl spec with
  | None -> Ok ()
  | Some w -> Error w

let substitutable ?limits ~sub ~super () =
  match usage_inclusion_counterexample ?limits super sub with
  | None -> Ok ()
  | Some w -> Error w

let equivalent_protocols ?limits a b =
  Result.is_ok (refines ?limits ~impl:a ~spec:b ())
  && Result.is_ok (refines ?limits ~impl:b ~spec:a ())

let check_inheritance ?limits ~env (cls : Mpy_ast.class_def) (model : Model.t) =
  List.filter_map
    (fun base ->
      match env base with
      | None -> None (* Pin, ADC, ... — not a verified class *)
      | Some super -> (
        match substitutable ?limits ~sub:model ~super () with
        | Ok () -> None
        | Error witness ->
          Some
            (Report.structural ~line:cls.Mpy_ast.cls_line Report.Error
               ~class_name:model.Model.name
               (Printf.sprintf
                  "not substitutable for base class %s: the usage '%s' is legal for %s \
                   but not for %s"
                  base (Trace.to_string witness) base model.Model.name))))
    cls.Mpy_ast.cls_bases
