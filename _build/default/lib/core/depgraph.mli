(** Method dependency extraction (§3.1).

    The dependency graph has one *entry* node per operation and one *exit*
    node per return statement; arcs link each entry to its exits, and each
    exit to the entries of the operations its return list names. The same
    structure, read as an automaton over operation names, is the class usage
    language: what Shelley checks callers of the class against. *)

type node =
  | Entry of string  (** operation name *)
  | Exit of string * int  (** operation name, exit id *)

val node_label : node -> string
(** ["open_a"] / ["open_a/1"] — stable labels for diagrams. *)

type t = {
  nodes : node list;
  arcs : (node * node) list;
}

val of_model : Model.t -> t

val usage_nfa : Model.t -> Nfa.t
(** The class usage automaton over operation-name symbols: from the start
    state, each initial operation may be invoked; invoking an operation
    nondeterministically selects one of its exits; from an exit, exactly the
    operations in its [next_ops] may follow. Accepting states: the start
    state (objects may be left unused) and every exit of a final
    operation. States are labeled for diagrams. *)

val reachable_ops : Model.t -> string list
(** Operations reachable from some initial operation through the graph. *)

val ops_reaching_final : Model.t -> string list
(** Operations from which some final operation's exit is reachable
    (final operations count as reaching themselves). *)

val pp : Format.formatter -> t -> unit
