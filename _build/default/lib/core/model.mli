(** Shelley models: the verification view of an annotated MicroPython class.

    A model collects, per operation, the exit points (each with the set of
    operations allowed next — the [return] lists of §2.1) and the inferred
    behavior of the method body *up to that exit* as a regular expression
    over subsystem-call events (§3.2). Composite classes also carry their
    declared subsystems and temporal claims. *)

type exit_point = {
  exit_id : int;  (** 0-based, source order; the implicit fall-through exit,
                      when present, comes last *)
  exit_line : int;  (** 0 for the implicit exit *)
  next_ops : string list;  (** operations allowed next; [] = terminal *)
  has_user_value : bool;
  implicit : bool;  (** control fell off the end of the method *)
  behavior : Regex.t;
      (** subsystem-call events emitted on a run ending at this exit *)
}

type operation = {
  op_name : string;
  op_kind : Annotations.op_kind;
  op_line : int;
  exits : exit_point list;
  marked_body : Prog.t;  (** IR with exit markers (see {!Mpy_lower}) *)
  plain_body : Prog.t;  (** paper-faithful IR, markers stripped *)
  lowering_warnings : string list;
}

type t = {
  name : string;
  line : int;
  kind : [ `Base | `Composite ];
      (** [`Base] for [@sys], [`Composite] for [@sys([...])] *)
  declared_subsystems : string list;  (** the [@sys([...])] field names *)
  subsystem_fields : (string * string) list;
      (** every [self.f = C(...)] in [__init__]: field name → class name *)
  claims : (string * Ltlf.t) list;  (** raw text and parsed formula *)
  operations : operation list;
}

(** {1 Lookup} *)

val find_op : t -> string -> operation option
val op_names : t -> string list
val initial_ops : t -> operation list
val final_ops : t -> operation list

val subsystem_class : t -> string -> string option
(** Class name of a declared subsystem field. *)

val behavior_of_op : operation -> Regex.t
(** The §3.2 [infer] of the operation body (markers stripped): the union of
    all exit behaviors (and the ongoing behavior if control can fall
    through). *)

val entry_symbol : operation -> Symbol.t
(** The event marking the invocation of this operation in composite traces
    (just the operation name; never contains a dot, so it cannot collide
    with subsystem-call events). *)

val pp : Format.formatter -> t -> unit
(** Human-readable model summary (one line per exit). *)
