(** Programs from the paper and a small corpus used across tests, examples
    and benchmarks. *)

val paper_loop : Prog.t
(** The program of Examples 1–3:
    [loop(★){a(); if(★){b(); return} else {c()}}]. *)

val example1_trace : Trace.t
(** [[a, c, a, c]] — ongoing in {!paper_loop} (Example 1). *)

val example2_trace : Trace.t
(** [[a, c, a, b]] — returned in {!paper_loop} (Example 2). *)

val example3_expected_ongoing : Regex.t
(** [(a·((b·∅)+c))*] — the ongoing component of [⟦paper_loop⟧] as printed in
    Example 3 (our normal form simplifies [b·∅] to [∅] and then drops it from
    the union; the language is unchanged). *)

val corpus : (string * Prog.t) list
(** Named programs covering every construct and the tricky interactions
    (early return under loop, return in both branches, nested loops, …). *)

val find : string -> Prog.t
(** Look up a corpus program by name.
    @raise Not_found if the name is unknown. *)
