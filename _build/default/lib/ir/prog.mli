(** The paper's imperative calculus (Figure 4, Syntax):

    {v p ::= f() | skip | return | p;p | if(★){p} else {p} | loop(★){p} v}

    A program abstracts one MicroPython method body: only control flow and
    the method calls of interest survive lowering; conditions, loop bounds
    and computed values are erased ([*] marks the erased condition). *)

type t =
  | Call of Symbol.t  (** [f()] — emit event [f]. *)
  | Skip  (** any instruction of no interest to the analysis *)
  | Return  (** return (the returned value is handled separately) *)
  | Seq of t * t  (** [p1; p2] *)
  | If of t * t  (** [if(★){p1} else {p2}] — nondeterministic choice *)
  | Loop of t  (** [loop(★){p}] — unknown number of iterations *)

(** {1 Construction helpers} *)

val call : Symbol.t -> t
val call_name : string -> t
val skip : t
val return : t

val seq : t -> t -> t
(** Sequencing, reassociated to the right so that equal statement sequences
    are structurally equal regardless of how they were grouped. *)

val seq_list : t list -> t
(** [seq_list []] is [skip]. *)

val if_ : t -> t -> t
val loop : t -> t

val choice : t list -> t
(** N-ary nondeterministic choice, encoded as nested [If]
    ([choice []] is [skip]). Used when lowering [if/elif/else] and
    [match/case] chains. *)

(** {1 Observations} *)

val size : t -> int
(** Number of AST nodes. *)

val depth : t -> int

val calls : t -> Symbol.Set.t
(** Every event that syntactically occurs. *)

val always_returns : t -> bool
(** Conservative check: every execution path ends in [return]. *)

val has_return : t -> bool

val compare : t -> t -> int
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Paper-style one-line rendering, e.g.
    [loop(★){a(); if(★){b(); return} else {c()}}]. *)

val to_string : t -> string
