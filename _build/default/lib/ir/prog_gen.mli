(** Random and exhaustive program generation.

    The QCheck suites wrap {!random}; the bounded-exhaustive theorem tests use
    {!all_of_size}; the benchmarks use {!sized_family} to sweep program size.
    Kept qcheck-free so the benchmark executable can use it too. *)

val default_alphabet : Symbol.t list
(** Four events [a, b, c, d] — enough to make collisions and interleavings
    interesting while keeping bounded languages small. *)

val random : ?state:Random.State.t -> size:int -> alphabet:Symbol.t list -> unit -> Prog.t
(** A random program with at most [size] AST nodes, biased roughly evenly
    over the six constructors (leaves when the budget runs out). *)

val all_of_size : size:int -> alphabet:Symbol.t list -> Prog.t list
(** Every program with exactly [size] AST nodes over the alphabet. Grows
    fast; sizes ≤ 5 with a 2-symbol alphabet stay in the low thousands. *)

val all_upto_size : size:int -> alphabet:Symbol.t list -> Prog.t list

val sized_family : sizes:int list -> seed:int -> (int * Prog.t) list
(** Deterministic benchmark family: one random program per requested size
    over {!default_alphabet}. *)

val shrink : Prog.t -> Prog.t list
(** Structural shrink candidates (subterms and leaf simplifications), for
    QCheck counterexample minimization. *)
