(** Parser for the paper's textual IR syntax:

    {v p ::= f() | skip | return | p; p | if(★){p} else {p} | loop(★){p} v}

    Accepts exactly what {!Prog.pp} prints (so printing round-trips), plus
    ASCII-friendly variants: the erased condition may be written with a star or left empty; the else-branch may be omitted (defaults to [skip]); trailing
    semicolons are tolerated. Used by the CLI's [infer] subcommand and the
    test-suite. *)

exception Parse_error of string

val parse : string -> Prog.t
(** @raise Parse_error on malformed input. *)

val parse_result : string -> (Prog.t, string) result
