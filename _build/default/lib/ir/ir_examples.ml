let a = Prog.call_name "a"
let b = Prog.call_name "b"
let c = Prog.call_name "c"
let d = Prog.call_name "d"

let paper_loop = Prog.loop (Prog.seq a (Prog.if_ (Prog.seq b Prog.return) c))
let example1_trace = Trace.of_names [ "a"; "c"; "a"; "c" ]
let example2_trace = Trace.of_names [ "a"; "c"; "a"; "b" ]

let example3_expected_ongoing =
  Regex.star
    (Regex.seq (Regex.sym_of_name "a")
       (Regex.alt (Regex.seq (Regex.sym_of_name "b") Regex.empty) (Regex.sym_of_name "c")))

let corpus =
  [
    ("single_call", a);
    ("skip", Prog.skip);
    ("return_only", Prog.return);
    ("call_then_return", Prog.seq a Prog.return);
    ("dead_code_after_return", Prog.seq Prog.return b);
    ("two_calls", Prog.seq a b);
    ("branch", Prog.if_ a b);
    ("branch_one_returns", Prog.if_ (Prog.seq a Prog.return) b);
    ("branch_both_return", Prog.if_ (Prog.seq a Prog.return) (Prog.seq b Prog.return));
    ("loop_simple", Prog.loop a);
    ("loop_skip_body", Prog.loop Prog.skip);
    ("loop_return_body", Prog.loop (Prog.seq a Prog.return));
    ("paper_loop", paper_loop);
    ("nested_loop", Prog.loop (Prog.seq a (Prog.loop b)));
    ("loop_then_call", Prog.seq (Prog.loop a) b);
    ("return_before_loop", Prog.seq Prog.return (Prog.loop a));
    ( "match_three_ways",
      Prog.choice
        [ Prog.seq a Prog.return; Prog.seq b Prog.return; Prog.seq c Prog.return ] );
    ( "valve_test_like",
      Prog.seq (Prog.call_name "status.value") (Prog.if_ Prog.return Prog.return) );
    ( "loop_with_nested_branch",
      Prog.loop (Prog.if_ (Prog.seq a (Prog.if_ b (Prog.seq c Prog.return))) d) );
    ( "deep_seq",
      Prog.seq_list [ a; b; c; d; a; b ] );
    ( "early_return_in_nested_loop",
      Prog.loop (Prog.seq a (Prog.loop (Prog.if_ (Prog.seq b Prog.return) c))) );
  ]

let find name = List.assoc name corpus
