lib/ir/derivation.ml: Format List Option Prog Semantics String Trace
