lib/ir/ir_examples.mli: Prog Regex Trace
