lib/ir/ir_examples.ml: List Prog Regex Trace
