lib/ir/infer.ml: Format List Prog Regex
