lib/ir/prog.ml: Format Int List Symbol
