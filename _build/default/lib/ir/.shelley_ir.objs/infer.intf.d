lib/ir/infer.mli: Format Prog Regex
