lib/ir/prog_parser.ml: List Printf Prog String
