lib/ir/semantics.mli: Format Prog Trace
