lib/ir/derivation.mli: Format Prog Semantics Trace
