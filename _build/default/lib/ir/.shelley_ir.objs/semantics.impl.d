lib/ir/semantics.ml: Format List Prog Trace
