lib/ir/prog_parser.mli: Prog
