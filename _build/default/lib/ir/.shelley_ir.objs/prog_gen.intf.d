lib/ir/prog_gen.mli: Prog Random Symbol
