lib/ir/prog_gen.ml: List Prog Random Symbol
