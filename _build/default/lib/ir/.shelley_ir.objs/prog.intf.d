lib/ir/prog.mli: Format Symbol
