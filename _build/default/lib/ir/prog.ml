type t =
  | Call of Symbol.t
  | Skip
  | Return
  | Seq of t * t
  | If of t * t
  | Loop of t

let call f = Call f
let call_name n = Call (Symbol.intern n)
let skip = Skip
let return = Return

(* Right-associated normal form, so structurally distinct spellings of the
   same statement sequence compare equal (sequencing is associative in both
   the semantics and the inference). *)
let rec seq a b =
  match a with
  | Seq (a1, a2) -> seq a1 (seq a2 b)
  | _ -> Seq (a, b)

let seq_list = function
  | [] -> Skip
  | first :: rest -> List.fold_left seq first rest

let if_ a b = If (a, b)
let loop p = Loop p

let rec choice = function
  | [] -> Skip
  | [ p ] -> p
  | p :: rest -> If (p, choice rest)

let rec size = function
  | Call _ | Skip | Return -> 1
  | Seq (a, b) | If (a, b) -> 1 + size a + size b
  | Loop p -> 1 + size p

let rec depth = function
  | Call _ | Skip | Return -> 1
  | Seq (a, b) | If (a, b) -> 1 + max (depth a) (depth b)
  | Loop p -> 1 + depth p

let rec calls = function
  | Call f -> Symbol.Set.singleton f
  | Skip | Return -> Symbol.Set.empty
  | Seq (a, b) | If (a, b) -> Symbol.Set.union (calls a) (calls b)
  | Loop p -> calls p

(* A path either ends in return or falls through; [Seq] returns on all paths
   when the first component does (no path reaches the second) or the second
   does (every fall-through path continues into it). A loop can always run
   zero iterations, so it never returns on all paths. *)
let rec always_returns = function
  | Call _ | Skip | Loop _ -> false
  | Return -> true
  | Seq (a, b) -> always_returns a || always_returns b
  | If (a, b) -> always_returns a && always_returns b

let rec has_return = function
  | Call _ | Skip -> false
  | Return -> true
  | Seq (a, b) | If (a, b) -> has_return a || has_return b
  | Loop p -> has_return p

let rec compare a b =
  let rank = function
    | Call _ -> 0
    | Skip -> 1
    | Return -> 2
    | Seq _ -> 3
    | If _ -> 4
    | Loop _ -> 5
  in
  match a, b with
  | Call f, Call g -> Symbol.compare f g
  | Skip, Skip | Return, Return -> 0
  | Seq (a1, a2), Seq (b1, b2) | If (a1, a2), If (b1, b2) ->
    let c = compare a1 b1 in
    if c <> 0 then c else compare a2 b2
  | Loop p, Loop q -> compare p q
  | _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let rec pp fmt = function
  | Call f -> Format.fprintf fmt "%a()" Symbol.pp f
  | Skip -> Format.pp_print_string fmt "skip"
  | Return -> Format.pp_print_string fmt "return"
  | Seq (a, b) -> Format.fprintf fmt "%a; %a" pp a pp b
  | If (a, b) -> Format.fprintf fmt "if(★){%a} else {%a}" pp a pp b
  | Loop p -> Format.fprintf fmt "loop(★){%a}" pp p

let to_string p = Format.asprintf "%a" pp p
