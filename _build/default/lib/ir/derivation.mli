(** Explicit derivation trees for the paper's judgment [s ⊢ l ∈ p].

    The Coq mechanization works with derivations as first-class objects; this
    module is the executable analogue. A {!t} is a proof tree whose nodes
    name the paper's ten rules (Figure 4, Semantics); {!check} validates
    every rule application against the side conditions, and {!search}
    constructs a derivation for a judgment whenever one exists, so

    {v check d && conclusion d = j   ⟺   j is derivable v}

    which the test-suite verifies against the set-based {!Semantics} oracle.
    {!pp} renders the tree in a proof-assistant-like indented form — the
    harness prints the derivations behind the paper's Examples 1 and 2. *)

type judgment = {
  status : Semantics.status;
  trace : Trace.t;
  prog : Prog.t;
}

val pp_judgment : Format.formatter -> judgment -> unit
(** [0 |- [a, c] ∈ loop(★){…}] *)

type t =
  | Call of judgment  (** CALL: [0 ⊢ [f] ∈ f()] *)
  | Skip of judgment  (** SKIP: [0 ⊢ [] ∈ skip] *)
  | Return of judgment  (** RETURN: [R ⊢ [] ∈ return] *)
  | Seq1 of judgment * t  (** SEQ-1: early return of [p1] *)
  | Seq2 of judgment * t * t  (** SEQ-2: [l1] from [p1] ongoing, then [l2] *)
  | If1 of judgment * t  (** IF-1: the then-branch *)
  | If2 of judgment * t  (** IF-2: the else-branch *)
  | Loop1 of judgment  (** LOOP-1: zero iterations *)
  | Loop2 of judgment * t  (** LOOP-2: the body returns *)
  | Loop3 of judgment * t * t  (** LOOP-3: one ongoing iteration, then the rest *)

val conclusion : t -> judgment

val rule_name : t -> string
(** ["CALL"], ["SEQ-2"], … as in the paper. *)

val check : t -> bool
(** Every node is a correct application of its rule: premises' conclusions
    line up, traces split as required, statuses match. *)

val size : t -> int
(** Number of rule applications. *)

val search : Semantics.status -> Trace.t -> Prog.t -> t option
(** A derivation of [s ⊢ l ∈ p], if the judgment is derivable. Searches
    loop unrollings breadth-wise over trace splits; terminates because every
    [Loop3] premise strictly shortens the trace or the program. *)

val pp : Format.formatter -> t -> unit
(** Indented proof tree, conclusion first:
    {v
    LOOP-3: 0 |- [a, c] ∈ loop(★){…}
      SEQ-2: 0 |- [a, c] ∈ a(); if(★){…}
        CALL: 0 |- [a] ∈ a()
        ...
    v} *)
