(** The paper's behavior inference (Figure 4, Behavior inference).

    [⟦p⟧ = (r, s)] computes a regular expression [r] for the *ongoing*
    behavior of [p] and a finite set [s] of regular expressions for its
    *returned* behaviors; [infer p = r + r'₁ + … + r'ₙ] merges them. The
    paper's Theorems 1/2 state [L(infer p) = L(p)]; the test-suite checks
    this against the independent {!Semantics} oracle, and Corollary 1
    ([L(p)] is regular) is inherited from the result type. *)

type denotation = {
  ongoing : Regex.t;  (** behavior of runs that have not returned *)
  returned : Regex.t list;
      (** behaviors of runs ended by [return] — kept as a canonically sorted
          duplicate-free list, the paper's finite set [s] *)
}

val denote : Prog.t -> denotation
(** The paper's [⟦p⟧]. *)

val infer : Prog.t -> Regex.t
(** The paper's [infer(p)]: the union of the ongoing behavior and every
    returned behavior. *)

val exit_behaviors : Prog.t -> Regex.t list
(** Just the returned component of [⟦p⟧] — one regex per way the method can
    return, used by exit-point analysis in the Shelley model builder. *)

val pp_denotation : Format.formatter -> denotation -> unit
(** Prints [(r, {r'₁, …, r'ₙ})] in the paper's pair notation. *)
