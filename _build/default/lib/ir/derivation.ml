type judgment = {
  status : Semantics.status;
  trace : Trace.t;
  prog : Prog.t;
}

let pp_judgment fmt j =
  Format.fprintf fmt "%a |- [%a] \xe2\x88\x88 %a" Semantics.pp_status j.status Trace.pp j.trace
    Prog.pp j.prog

type t =
  | Call of judgment
  | Skip of judgment
  | Return of judgment
  | Seq1 of judgment * t
  | Seq2 of judgment * t * t
  | If1 of judgment * t
  | If2 of judgment * t
  | Loop1 of judgment
  | Loop2 of judgment * t
  | Loop3 of judgment * t * t

let conclusion = function
  | Call j | Skip j | Return j | Seq1 (j, _) | Seq2 (j, _, _) | If1 (j, _) | If2 (j, _)
  | Loop1 j
  | Loop2 (j, _)
  | Loop3 (j, _, _) ->
    j

let rule_name = function
  | Call _ -> "CALL"
  | Skip _ -> "SKIP"
  | Return _ -> "RETURN"
  | Seq1 _ -> "SEQ-1"
  | Seq2 _ -> "SEQ-2"
  | If1 _ -> "IF-1"
  | If2 _ -> "IF-2"
  | Loop1 _ -> "LOOP-1"
  | Loop2 _ -> "LOOP-2"
  | Loop3 _ -> "LOOP-3"

let rec size = function
  | Call _ | Skip _ | Return _ | Loop1 _ -> 1
  | Seq1 (_, d) | If1 (_, d) | If2 (_, d) | Loop2 (_, d) -> 1 + size d
  | Seq2 (_, d1, d2) | Loop3 (_, d1, d2) -> 1 + size d1 + size d2

let judgment_equal a b =
  a.status = b.status && Trace.equal a.trace b.trace && Prog.equal a.prog b.prog

let rec check d =
  match d with
  | Call j -> (
    match j.prog with
    | Prog.Call f -> j.status = Semantics.Ongoing && Trace.equal j.trace [ f ]
    | _ -> false)
  | Skip j -> j.prog = Prog.Skip && j.status = Semantics.Ongoing && j.trace = []
  | Return j -> j.prog = Prog.Return && j.status = Semantics.Returned && j.trace = []
  | Seq1 (j, d1) -> (
    match j.prog with
    | Prog.Seq (p1, _) ->
      j.status = Semantics.Returned
      && judgment_equal (conclusion d1)
           { status = Semantics.Returned; trace = j.trace; prog = p1 }
      && check d1
    | _ -> false)
  | Seq2 (j, d1, d2) -> (
    match j.prog with
    | Prog.Seq (p1, p2) ->
      let c1 = conclusion d1 in
      let c2 = conclusion d2 in
      c1.status = Semantics.Ongoing
      && Prog.equal c1.prog p1
      && c2.status = j.status
      && Prog.equal c2.prog p2
      && Trace.equal j.trace (Trace.append c1.trace c2.trace)
      && check d1 && check d2
    | _ -> false)
  | If1 (j, d1) -> (
    match j.prog with
    | Prog.If (p1, _) ->
      judgment_equal (conclusion d1) { j with prog = p1 } && check d1
    | _ -> false)
  | If2 (j, d2) -> (
    match j.prog with
    | Prog.If (_, p2) ->
      judgment_equal (conclusion d2) { j with prog = p2 } && check d2
    | _ -> false)
  | Loop1 j -> (
    match j.prog with
    | Prog.Loop _ -> j.status = Semantics.Ongoing && j.trace = []
    | _ -> false)
  | Loop2 (j, d1) -> (
    match j.prog with
    | Prog.Loop body ->
      j.status = Semantics.Returned
      && judgment_equal (conclusion d1)
           { status = Semantics.Returned; trace = j.trace; prog = body }
      && check d1
    | _ -> false)
  | Loop3 (j, d1, d2) -> (
    match j.prog with
    | Prog.Loop body ->
      let c1 = conclusion d1 in
      let c2 = conclusion d2 in
      c1.status = Semantics.Ongoing
      && Prog.equal c1.prog body
      && c2.status = j.status
      && Prog.equal c2.prog j.prog
      && Trace.equal j.trace (Trace.append c1.trace c2.trace)
      && check d1 && check d2
    | _ -> false)

(* All ways to split l into l1 · l2, shortest l1 first. *)
let splits l =
  let rec go l1_rev l2 acc =
    let acc = (List.rev l1_rev, l2) :: acc in
    match l2 with
    | [] -> List.rev acc
    | x :: rest -> go (x :: l1_rev) rest acc
  in
  go [] l []

let rec search status trace (prog : Prog.t) : t option =
  let j = { status; trace; prog } in
  match prog with
  | Prog.Call f ->
    if status = Semantics.Ongoing && Trace.equal trace [ f ] then Some (Call j) else None
  | Prog.Skip ->
    if status = Semantics.Ongoing && trace = [] then Some (Skip j) else None
  | Prog.Return ->
    if status = Semantics.Returned && trace = [] then Some (Return j) else None
  | Prog.Seq (p1, p2) ->
    let seq1 =
      if status = Semantics.Returned then
        Option.map (fun d -> Seq1 (j, d)) (search Semantics.Returned trace p1)
      else None
    in
    let seq2 () =
      List.find_map
        (fun (l1, l2) ->
          match search Semantics.Ongoing l1 p1 with
          | None -> None
          | Some d1 ->
            Option.map (fun d2 -> Seq2 (j, d1, d2)) (search status l2 p2))
        (splits trace)
    in
    (match seq1 with
    | Some _ as found -> found
    | None -> seq2 ())
  | Prog.If (p1, p2) -> (
    match search status trace p1 with
    | Some d -> Some (If1 (j, d))
    | None -> Option.map (fun d -> If2 (j, d)) (search status trace p2))
  | Prog.Loop body -> (
    let loop1 =
      if status = Semantics.Ongoing && trace = [] then Some (Loop1 j) else None
    in
    let loop2 () =
      if status = Semantics.Returned then
        Option.map (fun d -> Loop2 (j, d)) (search Semantics.Returned trace body)
      else None
    in
    let loop3 () =
      (* l1 nonempty keeps the recursion well-founded; iterations with an
         empty ongoing trace never change derivability. *)
      List.find_map
        (fun (l1, l2) ->
          if l1 = [] then None
          else
            match search Semantics.Ongoing l1 body with
            | None -> None
            | Some d1 ->
              Option.map (fun d2 -> Loop3 (j, d1, d2)) (search status l2 prog))
        (splits trace)
    in
    match loop1 with
    | Some _ as found -> found
    | None -> (
      match loop2 () with
      | Some _ as found -> found
      | None -> loop3 ()))

let pp fmt d =
  let rec go indent d =
    Format.fprintf fmt "%s%s: %a@," (String.make indent ' ') (rule_name d) pp_judgment
      (conclusion d);
    match d with
    | Call _ | Skip _ | Return _ | Loop1 _ -> ()
    | Seq1 (_, d1) | If1 (_, d1) | If2 (_, d1) | Loop2 (_, d1) -> go (indent + 2) d1
    | Seq2 (_, d1, d2) | Loop3 (_, d1, d2) ->
      go (indent + 2) d1;
      go (indent + 2) d2
  in
  Format.fprintf fmt "@[<v>";
  go 0 d;
  Format.fprintf fmt "@]"
