let default_alphabet = List.map Symbol.intern [ "a"; "b"; "c"; "d" ]

let random ?state ~size ~alphabet () =
  let state =
    match state with
    | Some s -> s
    | None -> Random.State.make_self_init ()
  in
  let pick_sym () = List.nth alphabet (Random.State.int state (List.length alphabet)) in
  let rec go budget =
    if budget <= 1 then
      match Random.State.int state 3 with
      | 0 -> Prog.call (pick_sym ())
      | 1 -> Prog.skip
      | _ -> Prog.return
    else if budget = 2 then
      if Random.State.bool state then Prog.loop (go 1) else go 1
    else
      (* Weight internal nodes heavily so generated programs actually fill
         their size budget (a fair leaf/internal split makes the expected
         size a small constant regardless of budget). A binary node costs 1
         plus both children: split budget - 1. *)
      match Random.State.int state 8 with
      | 0 -> (
        match Random.State.int state 3 with
        | 0 -> Prog.call (pick_sym ())
        | 1 -> Prog.skip
        | _ -> Prog.return)
      | 1 | 2 | 3 ->
        let left = 1 + Random.State.int state (budget - 2) in
        Prog.seq (go left) (go (budget - 1 - left))
      | 4 | 5 ->
        let left = 1 + Random.State.int state (budget - 2) in
        Prog.if_ (go left) (go (budget - 1 - left))
      | _ -> Prog.loop (go (budget - 1))
  in
  go (max 1 size)

let leaves alphabet = Prog.skip :: Prog.return :: List.map Prog.call alphabet

let rec all_of_size ~size ~alphabet =
  if size <= 0 then []
  else if size = 1 then leaves alphabet
  else
    let unary = List.map Prog.loop (all_of_size ~size:(size - 1) ~alphabet) in
    let binary =
      List.concat_map
        (fun left_size ->
          let lefts = all_of_size ~size:left_size ~alphabet in
          let rights = all_of_size ~size:(size - 1 - left_size) ~alphabet in
          List.concat_map
            (fun l -> List.concat_map (fun r -> [ Prog.seq l r; Prog.if_ l r ]) rights)
            lefts)
        (List.init (size - 2) (fun i -> i + 1))
    in
    unary @ binary

let all_upto_size ~size ~alphabet =
  List.concat_map (fun n -> all_of_size ~size:n ~alphabet) (List.init size (fun i -> i + 1))

let sized_family ~sizes ~seed =
  let state = Random.State.make [| seed |] in
  List.map (fun size -> (size, random ~state ~size ~alphabet:default_alphabet ())) sizes

let shrink (p : Prog.t) : Prog.t list =
  match p with
  | Call _ -> [ Prog.skip ]
  | Skip -> []
  | Return -> [ Prog.skip ]
  | Seq (a, b) | If (a, b) -> [ a; b ]
  | Loop body -> [ body ]
