exception Parse_error of string

type token =
  | Ident of string
  | Kw_skip
  | Kw_return
  | Kw_if
  | Kw_else
  | Kw_loop
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Semi
  | Star
  | Eof

let describe = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Kw_skip -> "'skip'"
  | Kw_return -> "'return'"
  | Kw_if -> "'if'"
  | Kw_else -> "'else'"
  | Kw_loop -> "'loop'"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Semi -> "';'"
  | Star -> "'*'"
  | Eof -> "end of input"

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  || c = '.' || c = '%' || c = ':'

let star_utf8 = "\xe2\x98\x85"

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let rec go i =
    if i >= n then tokens := Eof :: !tokens
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | '(' ->
        tokens := Lparen :: !tokens;
        go (i + 1)
      | ')' ->
        tokens := Rparen :: !tokens;
        go (i + 1)
      | '{' ->
        tokens := Lbrace :: !tokens;
        go (i + 1)
      | '}' ->
        tokens := Rbrace :: !tokens;
        go (i + 1)
      | ';' ->
        tokens := Semi :: !tokens;
        go (i + 1)
      | '*' ->
        tokens := Star :: !tokens;
        go (i + 1)
      | c when is_ident_char c ->
        let j = ref i in
        while !j < n && is_ident_char input.[!j] do
          incr j
        done;
        let word = String.sub input i (!j - i) in
        let token =
          match word with
          | "skip" -> Kw_skip
          | "return" -> Kw_return
          | "if" -> Kw_if
          | "else" -> Kw_else
          | "loop" -> Kw_loop
          | _ -> Ident word
        in
        tokens := token :: !tokens;
        go !j
      | _ when i + 3 <= n && String.sub input i 3 = star_utf8 ->
        tokens := Star :: !tokens;
        go (i + 3)
      | c -> raise (Parse_error (Printf.sprintf "unexpected character %C at offset %d" c i))
  in
  go 0;
  List.rev !tokens

type cursor = { mutable tokens : token list }

let peek cur =
  match cur.tokens with
  | [] -> Eof
  | t :: _ -> t

let advance cur =
  match cur.tokens with
  | [] -> ()
  | _ :: rest -> cur.tokens <- rest

let expect cur t =
  if peek cur = t then advance cur
  else
    raise
      (Parse_error
         (Printf.sprintf "expected %s but found %s" (describe t) (describe (peek cur))))

(* The erased condition: a parenthesized star (ASCII or UTF-8) or (). *)
let parse_cond cur =
  expect cur Lparen;
  if peek cur = Star then advance cur;
  expect cur Rparen

let rec parse_seq cur =
  let first = parse_item cur in
  let rec continue_ acc =
    match peek cur with
    | Semi -> (
      advance cur;
      (* Tolerate a trailing semicolon before a closer. *)
      match peek cur with
      | Rbrace | Eof -> acc
      | _ -> continue_ (Prog.seq acc (parse_item cur)))
    | _ -> acc
  in
  continue_ first

and parse_item cur =
  match peek cur with
  | Kw_skip ->
    advance cur;
    Prog.skip
  | Kw_return ->
    advance cur;
    Prog.return
  | Kw_if ->
    advance cur;
    parse_cond cur;
    expect cur Lbrace;
    let then_branch = parse_seq cur in
    expect cur Rbrace;
    let else_branch =
      match peek cur with
      | Kw_else ->
        advance cur;
        expect cur Lbrace;
        let e = parse_seq cur in
        expect cur Rbrace;
        e
      | _ -> Prog.skip
    in
    Prog.if_ then_branch else_branch
  | Kw_loop ->
    advance cur;
    parse_cond cur;
    expect cur Lbrace;
    let body = parse_seq cur in
    expect cur Rbrace;
    Prog.loop body
  | Ident name ->
    advance cur;
    expect cur Lparen;
    expect cur Rparen;
    Prog.call_name name
  | t -> raise (Parse_error (Printf.sprintf "expected a program but found %s" (describe t)))

let parse input =
  let cur = { tokens = tokenize input } in
  let p = parse_seq cur in
  expect cur Eof;
  p

let parse_result input =
  match parse input with
  | p -> Ok p
  | exception Parse_error msg -> Error msg
