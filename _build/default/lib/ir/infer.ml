type denotation = {
  ongoing : Regex.t;
  returned : Regex.t list;
}

let normalize_set rs = List.sort_uniq Regex.compare rs

let rec denote (p : Prog.t) : denotation =
  match p with
  | Call f -> { ongoing = Regex.sym f; returned = [] }
  | Skip -> { ongoing = Regex.eps; returned = [] }
  | Return -> { ongoing = Regex.empty; returned = [ Regex.eps ] }
  | Seq (p1, p2) ->
    let d1 = denote p1 in
    let d2 = denote p2 in
    {
      ongoing = Regex.seq d1.ongoing d2.ongoing;
      returned = normalize_set (List.map (Regex.seq d1.ongoing) d2.returned @ d1.returned);
    }
  | If (p1, p2) ->
    let d1 = denote p1 in
    let d2 = denote p2 in
    {
      ongoing = Regex.alt d1.ongoing d2.ongoing;
      returned = normalize_set (d1.returned @ d2.returned);
    }
  | Loop body ->
    let d = denote body in
    let starred = Regex.star d.ongoing in
    { ongoing = starred; returned = normalize_set (List.map (Regex.seq starred) d.returned) }

let infer p =
  let d = denote p in
  Regex.alt_list (d.ongoing :: d.returned)

let exit_behaviors p = (denote p).returned

let pp_denotation fmt d =
  let pp_set fmt = function
    | [] -> Format.pp_print_string fmt "{}"
    | rs ->
      Format.fprintf fmt "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           Regex.pp)
        rs
  in
  Format.fprintf fmt "(%a, %a)" Regex.pp d.ongoing pp_set d.returned
