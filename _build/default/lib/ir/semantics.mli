(** The paper's trace-based semantics (Figure 4, Semantics), implemented as a
    bounded-exhaustive oracle.

    The judgment [s ⊢ l ∈ p] relates a status [s] (ongoing [0] or returned
    [R]), a trace [l] and a program [p]. Loops make the full trace set
    infinite, but the set of traces of length ≤ k is finite and computable as
    a least fixpoint; that bounded set is what this module produces.

    Crucially, this implementation follows the inference *rules* directly and
    shares no code with {!Infer}; the test-suite replays the paper's
    Theorems 1/2 by comparing the two on bounded languages. *)

type status =
  | Ongoing  (** the paper's [0] *)
  | Returned  (** the paper's [R] *)

val pp_status : Format.formatter -> status -> unit

type trace_sets = {
  ongoing : Trace.Set.t;  (** [{l | 0 ⊢ l ∈ p, |l| ≤ k}] *)
  returned : Trace.Set.t;  (** [{l | R ⊢ l ∈ p, |l| ≤ k}] *)
}

val traces_upto : max_len:int -> Prog.t -> trace_sets
(** Both bounded trace sets of a program. *)

val behavior_upto : max_len:int -> Prog.t -> Trace.Set.t
(** The paper's Definition 1, bounded:
    [L(p) ∩ {l | |l| ≤ k} = ongoing ∪ returned]. *)

val derivable : status -> Trace.t -> Prog.t -> bool
(** Decides the judgment [s ⊢ l ∈ p] (exactly — the bound is taken from the
    trace's own length). *)

val in_behavior : Trace.t -> Prog.t -> bool
(** Decides [l ∈ L(p)]. *)
