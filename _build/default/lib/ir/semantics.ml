type status =
  | Ongoing
  | Returned

let pp_status fmt = function
  | Ongoing -> Format.pp_print_string fmt "0"
  | Returned -> Format.pp_print_string fmt "R"

type trace_sets = {
  ongoing : Trace.Set.t;
  returned : Trace.Set.t;
}

(* All concatenations l1·l2 with l1 ∈ s1, l2 ∈ s2 and |l1·l2| ≤ max_len. *)
let concat_bounded ~max_len s1 s2 =
  Trace.Set.fold
    (fun l1 acc ->
      let room = max_len - List.length l1 in
      if room < 0 then acc
      else
        Trace.Set.fold
          (fun l2 acc ->
            if List.length l2 <= room then Trace.Set.add (Trace.append l1 l2) acc
            else acc)
          s2 acc)
    s1 Trace.Set.empty

(* Least fixpoint of X = {[]} ∪ body·X, bounded by max_len: the ongoing
   traces of loop(★){p} (rules LOOP-1 and LOOP-3 with s = 0). Terminates
   because the bounded trace universe is finite and X only grows. *)
let star_bounded ~max_len body =
  let rec grow x =
    let x' = Trace.Set.union x (concat_bounded ~max_len body x) in
    if Trace.Set.equal x' x then x else grow x'
  in
  grow (Trace.Set.singleton Trace.empty)

let rec traces_upto ~max_len p =
  let singleton l =
    if List.length l <= max_len then Trace.Set.singleton l else Trace.Set.empty
  in
  match (p : Prog.t) with
  | Call f ->
    (* CALL: 0 ⊢ [f] ∈ f() *)
    { ongoing = singleton [ f ]; returned = Trace.Set.empty }
  | Skip ->
    (* SKIP: 0 ⊢ [] ∈ skip *)
    { ongoing = singleton []; returned = Trace.Set.empty }
  | Return ->
    (* RETURN: R ⊢ [] ∈ return *)
    { ongoing = Trace.Set.empty; returned = singleton [] }
  | Seq (p1, p2) ->
    let t1 = traces_upto ~max_len p1 in
    let t2 = traces_upto ~max_len p2 in
    {
      (* SEQ-2 with s = 0 *)
      ongoing = concat_bounded ~max_len t1.ongoing t2.ongoing;
      (* SEQ-1 ∪ SEQ-2 with s = R *)
      returned = Trace.Set.union t1.returned (concat_bounded ~max_len t1.ongoing t2.returned);
    }
  | If (p1, p2) ->
    let t1 = traces_upto ~max_len p1 in
    let t2 = traces_upto ~max_len p2 in
    {
      (* IF-1 ∪ IF-2 *)
      ongoing = Trace.Set.union t1.ongoing t2.ongoing;
      returned = Trace.Set.union t1.returned t2.returned;
    }
  | Loop body ->
    let tb = traces_upto ~max_len body in
    (* LOOP-1/LOOP-3(s=0): ongoing = (ongoing body)* *)
    let ongoing = star_bounded ~max_len tb.ongoing in
    (* LOOP-2/LOOP-3(s=R): returned = (ongoing body)* · returned body *)
    { ongoing; returned = concat_bounded ~max_len ongoing tb.returned }

let behavior_upto ~max_len p =
  let t = traces_upto ~max_len p in
  Trace.Set.union t.ongoing t.returned

let derivable status l p =
  let t = traces_upto ~max_len:(List.length l) p in
  match status with
  | Ongoing -> Trace.Set.mem l t.ongoing
  | Returned -> Trace.Set.mem l t.returned

let in_behavior l p =
  let t = traces_upto ~max_len:(List.length l) p in
  Trace.Set.mem l t.ongoing || Trace.Set.mem l t.returned
