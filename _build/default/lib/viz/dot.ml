let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let of_nfa ?(name = "automaton") nfa =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "digraph %s {\n" (escape name);
  add "  rankdir=LR;\n  node [fontname=\"Helvetica\"];\n";
  for q = 0 to Nfa.num_states nfa - 1 do
    let label =
      match Nfa.label nfa q with
      | Some l -> l
      | None -> string_of_int q
    in
    let shape = if Nfa.is_accept nfa q then "doublecircle" else "circle" in
    add "  n%d [label=\"%s\", shape=%s];\n" q (escape label) shape
  done;
  States.Set.iter
    (fun q ->
      add "  start%d [shape=point, style=invis];\n" q;
      add "  start%d -> n%d;\n" q q)
    (Nfa.start nfa);
  List.iter
    (fun (a, sym, b) -> add "  n%d -> n%d [label=\"%s\"];\n" a b (escape (Symbol.name sym)))
    (Nfa.transitions nfa);
  List.iter
    (fun (a, b) -> add "  n%d -> n%d [label=\"\xce\xb5\", style=dashed];\n" a b)
    (Nfa.epsilons nfa);
  add "}\n";
  Buffer.contents buf

let of_model (model : Model.t) =
  of_nfa ~name:model.Model.name (Depgraph.usage_nfa model)

let of_depgraph (model : Model.t) =
  let g = Depgraph.of_model model in
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "digraph %s_deps {\n" (escape model.Model.name);
  add "  rankdir=LR;\n  node [fontname=\"Helvetica\"];\n";
  let node_id = function
    | Depgraph.Entry name -> Printf.sprintf "entry_%s" name
    | Depgraph.Exit (name, k) -> Printf.sprintf "exit_%s_%d" name k
  in
  let exit_label op_name k =
    match Model.find_op model op_name with
    | Some op -> (
      match List.find_opt (fun (e : Model.exit_point) -> e.Model.exit_id = k) op.Model.exits with
      | Some e -> Printf.sprintf "return [%s]" (String.concat ", " e.Model.next_ops)
      | None -> Depgraph.node_label (Depgraph.Exit (op_name, k)))
    | None -> Depgraph.node_label (Depgraph.Exit (op_name, k))
  in
  List.iter
    (fun node ->
      match node with
      | Depgraph.Entry name -> add "  %s [label=\"%s\", shape=box];\n" (node_id node) (escape name)
      | Depgraph.Exit (name, k) ->
        add "  %s [label=\"%s\", shape=ellipse];\n" (node_id node) (escape (exit_label name k)))
    g.Depgraph.nodes;
  List.iter
    (fun (src, dst) -> add "  %s -> %s;\n" (node_id src) (node_id dst))
    g.Depgraph.arcs;
  add "}\n";
  Buffer.contents buf

let of_operation (op : Model.operation) =
  (* One alternative per exit, each ending in a labeled exit state. *)
  let exit_regexes =
    List.map
      (fun (e : Model.exit_point) ->
        Regex.seq e.Model.behavior
          (Regex.sym
             (Symbol.intern
                (Printf.sprintf "-> exit %d [%s]" e.Model.exit_id
                   (String.concat ", " e.Model.next_ops)))))
      op.Model.exits
  in
  let nfa = Nfa.trim (Glushkov.of_regex (Regex.alt_list exit_regexes)) in
  of_nfa ~name:op.Model.op_name nfa
