(** Graphviz (DOT) rendering of Shelley models and automata.

    Shelley "includes a visualization tool that automatically generates
    behavior diagrams based on the code annotations and based on the control
    flow of the code under analysis" (§2); this module is that tool. The
    output reproduces the paper's figures: Figure 1 (Valve), Figure 2
    (BadSector) and Figure 3 (the Sector model of Listing 3.1). *)

val of_nfa : ?name:string -> Nfa.t -> string
(** Generic automaton rendering: double circles for accepting states, an
    entry arrow into each start state, state labels where present. *)

val of_model : Model.t -> string
(** The operation-level diagram of a class (the paper's Figures 1–2 style):
    one node per exit point plus a start node, edges labeled with operation
    names; exits of final operations are double-circled. *)

val of_depgraph : Model.t -> string
(** The §3.1 dependency graph (the paper's Figure 3 style): entry nodes as
    boxes, exit nodes as ellipses labeled with their return lists. *)

val escape : string -> string
(** DOT string escaping (exposed for tests). *)

val of_operation : Model.operation -> string
(** The control-flow behavior of one operation: the (trimmed) position
    automaton of its inferred behavior over subsystem-call events, one
    accepting state per exit point. *)
