(** Language equivalence and inclusion of regular expressions, decided by
    bisimulation on Brzozowski derivatives (Hopcroft–Karp style union-find is
    unnecessary at our sizes; a visited-pair set suffices).

    These checks back the correctness test-suite (e.g. that automata
    round-trips preserve languages) and the ablation benchmarks. *)

val equivalent : Regex.t -> Regex.t -> bool
(** [equivalent r1 r2] iff [L(r1) = L(r2)]. *)

val included : Regex.t -> Regex.t -> bool
(** [included r1 r2] iff [L(r1) ⊆ L(r2)]. *)

val counterexample : Regex.t -> Regex.t -> Trace.t option
(** A shortest trace in exactly one of the two languages, if the expressions
    are not equivalent. *)

val inclusion_counterexample : Regex.t -> Regex.t -> Trace.t option
(** A shortest trace in [L(r1) \ L(r2)], if inclusion fails. *)
