(** Regular expressions over event symbols.

    This is the target language of the paper's behavior inference (Figure 4):

    {v r ::= ε | ∅ | f | r · r | r + r | r* v}

    Values are kept in a light normal form by the smart constructors below
    ([seq], [alt], [star]): identities of [∅] and [ε] are applied, [+] is
    flattened, deduplicated and sorted (associativity/commutativity/
    idempotence), and nested stars collapse. The normal form keeps inferred
    expressions readable and makes derivative-based equivalence checking
    terminate quickly; it never changes the denoted language. *)

type t = private
  | Empty  (** [∅] — the empty language. *)
  | Eps  (** [ε] — the language containing only the empty trace. *)
  | Sym of Symbol.t  (** [f] — a single event. *)
  | Seq of t * t  (** [r1 · r2] — concatenation. *)
  | Alt of t * t  (** [r1 + r2] — union. *)
  | Star of t  (** [r*] — Kleene star. *)

(** {1 Constructors} *)

val empty : t
val eps : t
val sym : Symbol.t -> t

val sym_of_name : string -> t
(** [sym_of_name "a.open"] interns the name and wraps it. *)

val seq : t -> t -> t
(** Concatenation. [seq Empty r = Empty], [seq Eps r = r], and symmetrically;
    reassociates to the right. *)

val alt : t -> t -> t
(** Union in ACI-normal form: flattened, sorted, duplicates removed,
    [Empty] dropped. *)

val star : t -> t
(** Kleene star. [star Empty = Eps], [star Eps = Eps], [star (Star r) = star r]. *)

val seq_list : t list -> t
(** [seq_list [r1; …; rn]] is [r1 · … · rn] ([eps] when empty). *)

val alt_list : t list -> t
(** [alt_list [r1; …; rn]] is [r1 + … + rn] ([empty] when empty). *)

val word : Symbol.t list -> t
(** The regex denoting exactly one given trace. *)

val opt : t -> t
(** [opt r] is [ε + r]. *)

(** {1 Predicates and measures} *)

val nullable : t -> bool
(** Does the language contain the empty trace? *)

val is_empty_syntactic : t -> bool
(** [true] iff the value is literally [Empty]. (Because smart constructors
    normalize, an inferred expression denoting [∅] is usually literally
    [Empty], but use {!Deriv.is_empty_language} for a semantic check.) *)

val alphabet : t -> Symbol.Set.t
(** All symbols occurring in the expression. *)

val size : t -> int
(** Number of AST nodes. *)

val star_height : t -> int

val compare : t -> t -> int
(** Structural order (used by the normal form and by sets of regexes). *)

val equal : t -> t -> bool
(** Structural equality on normal forms. Language equivalence is
    {!Equiv.equivalent}. *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
(** Paper-style notation: [(a · (b · ∅ + c))* · (a · b)], with [ε] and [∅]. *)

val to_string : t -> string

val pp_ascii : Format.formatter -> t -> unit
(** Pure-ASCII variant ([0] for ∅, [1] for ε, [.] for ·) for logs and NuSMV
    comments. *)
