exception Parse_error of string

type token =
  | Event of string
  | Eps
  | Empty
  | Plus
  | Dot  (** explicit concatenation *)
  | Star
  | Lparen
  | Rparen
  | Eof

let describe = function
  | Event s -> Printf.sprintf "event %S" s
  | Eps -> "'\xce\xb5'"
  | Empty -> "'\xe2\x88\x85'"
  | Plus -> "'+'"
  | Dot -> "'\xc2\xb7'"
  | Star -> "'*'"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Eof -> "end of input"

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  || c = '.' || c = '%' || c = ':'

let eps_utf8 = "\xce\xb5"
let empty_utf8 = "\xe2\x88\x85"
let middot_utf8 = "\xc2\xb7"

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let rec go i =
    if i >= n then tokens := Eof :: !tokens
    else if i + 2 <= n && String.sub input i 2 = eps_utf8 then begin
      tokens := Eps :: !tokens;
      go (i + 2)
    end
    else if i + 2 <= n && String.sub input i 2 = middot_utf8 then begin
      tokens := Dot :: !tokens;
      go (i + 2)
    end
    else if i + 3 <= n && String.sub input i 3 = empty_utf8 then begin
      tokens := Empty :: !tokens;
      go (i + 3)
    end
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | '+' ->
        tokens := Plus :: !tokens;
        go (i + 1)
      | '*' ->
        tokens := Star :: !tokens;
        go (i + 1)
      | '(' ->
        tokens := Lparen :: !tokens;
        go (i + 1)
      | ')' ->
        tokens := Rparen :: !tokens;
        go (i + 1)
      | c when is_ident_char c ->
        let j = ref i in
        while !j < n && is_ident_char input.[!j] do
          incr j
        done;
        let word = String.sub input i (!j - i) in
        let token =
          match word with
          | "eps" | "1" -> Eps
          | "empty" | "0" -> Empty
          | _ -> Event word
        in
        tokens := token :: !tokens;
        go !j
      | c -> raise (Parse_error (Printf.sprintf "unexpected character %C at offset %d" c i))
  in
  go 0;
  List.rev !tokens

type cursor = { mutable tokens : token list }

let peek cur =
  match cur.tokens with
  | [] -> Eof
  | t :: _ -> t

let advance cur =
  match cur.tokens with
  | [] -> ()
  | _ :: rest -> cur.tokens <- rest

let expect cur t =
  if peek cur = t then advance cur
  else
    raise
      (Parse_error
         (Printf.sprintf "expected %s but found %s" (describe t) (describe (peek cur))))

let starts_atom = function
  | Event _ | Eps | Empty | Lparen -> true
  | Plus | Dot | Star | Rparen | Eof -> false

let rec parse_alt cur =
  let first = parse_cat cur in
  match peek cur with
  | Plus ->
    advance cur;
    Regex.alt first (parse_alt cur)
  | _ -> first

and parse_cat cur =
  let first = parse_star cur in
  let rec continue_ acc =
    match peek cur with
    | Dot ->
      advance cur;
      continue_ (Regex.seq acc (parse_star cur))
    | t when starts_atom t -> continue_ (Regex.seq acc (parse_star cur))
    | _ -> acc
  in
  continue_ first

and parse_star cur =
  let atom = parse_atom cur in
  let rec stars acc =
    match peek cur with
    | Star ->
      advance cur;
      stars (Regex.star acc)
    | _ -> acc
  in
  stars atom

and parse_atom cur =
  match peek cur with
  | Event name ->
    advance cur;
    Regex.sym_of_name name
  | Eps ->
    advance cur;
    Regex.eps
  | Empty ->
    advance cur;
    Regex.empty
  | Lparen ->
    advance cur;
    let r = parse_alt cur in
    expect cur Rparen;
    r
  | t ->
    raise
      (Parse_error (Printf.sprintf "expected an expression but found %s" (describe t)))

let parse input =
  let cur = { tokens = tokenize input } in
  let r = parse_alt cur in
  expect cur Eof;
  r

let parse_result input =
  match parse input with
  | r -> Ok r
  | exception Parse_error msg -> Error msg
