(** Parser for the paper's regular-expression notation.

    Accepts what {!Regex.pp} prints and convenient ASCII spellings:

    {v
    alt   ::= cat ('+' cat)*
    cat   ::= star (('·' star) | star)*        juxtaposition concatenates
    star  ::= atom '*'*
    atom  ::= event | 'ε' | 'eps' | '1' | '∅' | 'empty' | '0' | '(' alt ')'
    v}

    Event names may contain dots ([a.open]), so ASCII concatenation is
    written by juxtaposition ([a b c]) or with the UTF-8 middle dot; ['.'] is
    always part of an identifier. Used by the CLI's [lang] subcommand and the
    test-suite's round-trip properties. *)

exception Parse_error of string * int * int
(** [(message, line, col)] — the line is 1-based and the column 0-based,
    both pointing at the offending token (or character, for lexical
    errors). *)

val parse : string -> Regex.t
(** @raise Parse_error on malformed input. *)

val parse_result : string -> (Regex.t, string) result
(** [Error] carries a human-readable ["line %d, col %d: %s"] message. *)
