(** Bounded language enumeration.

    The test oracle for the paper's Theorems 1 and 2 compares the *bounded*
    language of an inferred regex with the trace set produced by the
    semantics; this module produces the former. *)

val words_upto : max_len:int -> Regex.t -> Trace.Set.t
(** All members of [L(r)] of length at most [max_len], enumerated by
    expanding derivatives over the expression's alphabet. *)

val words_upto_over : alphabet:Symbol.Set.t -> max_len:int -> Regex.t -> Trace.Set.t
(** Same, but trying the symbols of an explicitly supplied alphabet
    (useful when comparing languages of two expressions with different
    alphabets). Symbols outside [r]'s own alphabet can never occur in a
    member, so supplying a superset alphabet is sound. *)

val count_upto : max_len:int -> Regex.t -> int
(** [Trace.Set.cardinal (words_upto ~max_len r)], without materializing the
    intermediate list. *)
