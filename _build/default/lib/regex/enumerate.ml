let words_upto_over ~alphabet ~max_len r =
  let symbols = Symbol.Set.elements alphabet in
  let acc = ref Trace.Set.empty in
  (* Depth-bounded expansion of the derivative tree: at depth d the reversed
     prefix has length d; a nullable derivative contributes the prefix. *)
  let rec go state rev_prefix depth =
    if Regex.nullable state then acc := Trace.Set.add (List.rev rev_prefix) !acc;
    if depth < max_len then
      List.iter
        (fun a ->
          let next = Deriv.deriv a state in
          if not (Regex.is_empty_syntactic next) then go next (a :: rev_prefix) (depth + 1))
        symbols
  in
  go r [] 0;
  !acc

let words_upto ~max_len r = words_upto_over ~alphabet:(Regex.alphabet r) ~max_len r
let count_upto ~max_len r = Trace.Set.cardinal (words_upto ~max_len r)
