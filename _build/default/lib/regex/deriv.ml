let rec deriv a (r : Regex.t) : Regex.t =
  match r with
  | Empty | Eps -> Regex.empty
  | Sym b -> if Symbol.equal a b then Regex.eps else Regex.empty
  | Seq (r1, r2) ->
    let left = Regex.seq (deriv a r1) r2 in
    if Regex.nullable r1 then Regex.alt left (deriv a r2) else left
  | Alt (r1, r2) -> Regex.alt (deriv a r1) (deriv a r2)
  | Star r1 -> Regex.seq (deriv a r1) (Regex.star r1)

let deriv_word l r = List.fold_left (fun r a -> deriv a r) r l

let matches r l = Regex.nullable (deriv_word l r)

module Rset = Set.Make (struct
  type t = Regex.t

  let compare = Regex.compare
end)

(* Breadth-first over the derivative automaton; [f] sees each new state with
   the reversed trace that reaches it and may stop the search early. *)
let bfs r ~(visit : Regex.t -> Symbol.t list -> [ `Stop | `Continue ]) =
  let alphabet = Symbol.Set.elements (Regex.alphabet r) in
  let seen = ref Rset.empty in
  let queue = Queue.create () in
  let push state rev_path =
    if not (Rset.mem state !seen) then begin
      seen := Rset.add state !seen;
      Queue.add (state, rev_path) queue
    end
  in
  push r [];
  let rec loop () =
    match Queue.take_opt queue with
    | None -> ()
    | Some (state, rev_path) -> (
      match visit state rev_path with
      | `Stop -> ()
      | `Continue ->
        List.iter
          (fun a ->
            let next = deriv a state in
            if not (Regex.is_empty_syntactic next) then push next (a :: rev_path))
          alphabet;
        loop ())
  in
  loop ()

let shortest_member r =
  let found = ref None in
  bfs r ~visit:(fun state rev_path ->
      if Regex.nullable state then begin
        found := Some (List.rev rev_path);
        `Stop
      end
      else `Continue);
  !found

let is_empty_language r = Option.is_none (shortest_member r)

let derivative_closure r =
  let states = ref [] in
  bfs r ~visit:(fun state _ ->
      states := state :: !states;
      `Continue);
  List.rev !states
