type t =
  | Empty
  | Eps
  | Sym of Symbol.t
  | Seq of t * t
  | Alt of t * t
  | Star of t

let empty = Empty
let eps = Eps
let sym s = Sym s
let sym_of_name n = Sym (Symbol.intern n)

let rec compare a b =
  let rank = function
    | Empty -> 0
    | Eps -> 1
    | Sym _ -> 2
    | Seq _ -> 3
    | Alt _ -> 4
    | Star _ -> 5
  in
  match a, b with
  | Empty, Empty | Eps, Eps -> 0
  | Sym x, Sym y -> Symbol.compare x y
  | Seq (a1, a2), Seq (b1, b2) | Alt (a1, a2), Alt (b1, b2) ->
    let c = compare a1 b1 in
    if c <> 0 then c else compare a2 b2
  | Star x, Star y -> compare x y
  | _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

(* Right-associated concatenation with ∅/ε identities. *)
let rec seq a b =
  match a, b with
  | Empty, _ | _, Empty -> Empty
  | Eps, r | r, Eps -> r
  | Seq (a1, a2), _ -> seq a1 (seq a2 b)
  | _ -> Seq (a, b)

(* ACI-normal union: flatten, drop ∅, sort, dedup, rebuild right-associated. *)
let rec alt_flatten acc = function
  | Alt (a, b) -> alt_flatten (alt_flatten acc a) b
  | Empty -> acc
  | r -> r :: acc

let alt a b =
  let parts = alt_flatten (alt_flatten [] a) b in
  let parts = List.sort_uniq compare parts in
  match parts with
  | [] -> Empty
  | first :: rest -> List.fold_left (fun acc r -> Alt (acc, r)) first rest

let star r =
  match r with
  | Empty | Eps -> Eps
  | Star _ -> r
  | _ -> Star r

let seq_list rs = List.fold_right seq rs Eps
let alt_list rs = List.fold_left alt Empty rs
let word syms = seq_list (List.map sym syms)
let opt r = alt Eps r

let rec nullable = function
  | Empty | Sym _ -> false
  | Eps | Star _ -> true
  | Seq (a, b) -> nullable a && nullable b
  | Alt (a, b) -> nullable a || nullable b

let is_empty_syntactic = function
  | Empty -> true
  | _ -> false

let rec alphabet = function
  | Empty | Eps -> Symbol.Set.empty
  | Sym s -> Symbol.Set.singleton s
  | Seq (a, b) | Alt (a, b) -> Symbol.Set.union (alphabet a) (alphabet b)
  | Star r -> alphabet r

let rec size = function
  | Empty | Eps | Sym _ -> 1
  | Seq (a, b) | Alt (a, b) -> 1 + size a + size b
  | Star r -> 1 + size r

let rec star_height = function
  | Empty | Eps | Sym _ -> 0
  | Seq (a, b) | Alt (a, b) -> max (star_height a) (star_height b)
  | Star r -> 1 + star_height r

(* Precedence: Alt (1) < Seq (2) < Star (3); parenthesize a subterm whose
   precedence is lower than the context's. *)
let pp_with ~empty_s ~eps_s ~seq_s fmt r =
  let rec go prec fmt r =
    let prec_of = function
      | Empty | Eps | Sym _ -> 4
      | Star _ -> 3
      | Seq _ -> 2
      | Alt _ -> 1
    in
    let wrap needed body =
      if prec_of r < needed then Format.fprintf fmt "(%t)" body else body fmt
    in
    match r with
    | Empty -> Format.pp_print_string fmt empty_s
    | Eps -> Format.pp_print_string fmt eps_s
    | Sym s -> Symbol.pp fmt s
    | Seq (a, b) ->
      wrap prec (fun fmt -> Format.fprintf fmt "%a%s%a" (go 2) a seq_s (go 2) b)
    | Alt (a, b) ->
      wrap prec (fun fmt -> Format.fprintf fmt "%a + %a" (go 1) a (go 1) b)
    | Star a -> wrap prec (fun fmt -> Format.fprintf fmt "%a*" (go 4) a)
  in
  go 0 fmt r

let pp fmt r = pp_with ~empty_s:"\xe2\x88\x85" ~eps_s:"\xce\xb5" ~seq_s:" \xc2\xb7 " fmt r
let pp_ascii fmt r = pp_with ~empty_s:"0" ~eps_s:"1" ~seq_s:"." fmt r
let to_string r = Format.asprintf "%a" pp r
