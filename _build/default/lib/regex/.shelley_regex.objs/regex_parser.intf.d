lib/regex/regex_parser.mli: Regex
