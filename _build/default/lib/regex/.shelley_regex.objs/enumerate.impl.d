lib/regex/enumerate.ml: Deriv List Regex Symbol Trace
