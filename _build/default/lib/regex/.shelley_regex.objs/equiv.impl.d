lib/regex/equiv.ml: Deriv List Option Queue Regex Set Symbol
