lib/regex/enumerate.mli: Regex Symbol Trace
