lib/regex/equiv.mli: Regex Trace
