lib/regex/regex.mli: Format Symbol
