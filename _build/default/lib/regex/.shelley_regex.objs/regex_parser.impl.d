lib/regex/regex_parser.ml: List Printf Regex String
