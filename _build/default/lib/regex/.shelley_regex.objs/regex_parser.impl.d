lib/regex/regex_parser.ml: List Printexc Printf Regex String
