lib/regex/deriv.ml: List Option Queue Regex Set Symbol
