lib/regex/deriv.mli: Regex Symbol Trace
