lib/regex/regex.ml: Format Int List Symbol
