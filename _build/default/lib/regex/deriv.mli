(** Brzozowski derivatives.

    [deriv a r] denotes the language [{ l | a·l ∈ r }]. Because {!Regex}'s
    smart constructors keep expressions in ACI-normal form, repeated
    derivation reaches only finitely many distinct expressions, which makes
    the derivative automaton (and hence matching, emptiness and equivalence
    checking) terminate. *)

val deriv : Symbol.t -> Regex.t -> Regex.t
(** One-symbol derivative. *)

val deriv_word : Trace.t -> Regex.t -> Regex.t
(** Derivative by a whole trace, left to right. *)

val matches : Regex.t -> Trace.t -> bool
(** [matches r l] decides [l ∈ L(r)] by derivation: the derivative by [l]
    must be nullable. *)

val is_empty_language : Regex.t -> bool
(** Semantic emptiness: no trace at all is accepted. Decided by exploring the
    derivative automaton. *)

val shortest_member : Regex.t -> Trace.t option
(** A length-lexicographically minimal member of the language, if any —
    found by breadth-first search over derivatives. *)

val derivative_closure : Regex.t -> Regex.t list
(** All distinct expressions reachable from [r] by repeated derivation over
    [r]'s own alphabet (the states of the derivative automaton, [r] first). *)
