module Pair_set = Set.Make (struct
  type t = Regex.t * Regex.t

  let compare (a1, a2) (b1, b2) =
    let c = Regex.compare a1 b1 in
    if c <> 0 then c else Regex.compare a2 b2
end)

(* Breadth-first bisimulation over pairs of derivatives. [bad] decides when a
   pair witnesses a difference; the reversed path to the first bad pair is a
   shortest witness because exploration is breadth-first. *)
let find_witness ~bad r1 r2 =
  let alphabet = Symbol.Set.union (Regex.alphabet r1) (Regex.alphabet r2) in
  let symbols = Symbol.Set.elements alphabet in
  let seen = ref Pair_set.empty in
  let queue = Queue.create () in
  let push pair rev_path =
    if not (Pair_set.mem pair !seen) then begin
      seen := Pair_set.add pair !seen;
      Queue.add (pair, rev_path) queue
    end
  in
  push (r1, r2) [];
  let rec loop () =
    match Queue.take_opt queue with
    | None -> None
    | Some ((d1, d2), rev_path) ->
      if bad d1 d2 then Some (List.rev rev_path)
      else begin
        List.iter
          (fun a -> push (Deriv.deriv a d1, Deriv.deriv a d2) (a :: rev_path))
          symbols;
        loop ()
      end
  in
  loop ()

let counterexample r1 r2 =
  find_witness r1 r2 ~bad:(fun d1 d2 -> Regex.nullable d1 <> Regex.nullable d2)

let inclusion_counterexample r1 r2 =
  find_witness r1 r2 ~bad:(fun d1 d2 -> Regex.nullable d1 && not (Regex.nullable d2))

let equivalent r1 r2 = Option.is_none (counterexample r1 r2)
let included r1 r2 = Option.is_none (inclusion_counterexample r1 r2)
