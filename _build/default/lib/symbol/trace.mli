(** Traces: finite sequences of event symbols.

    The paper's semantics judges [s ⊢ l ∈ p] where [l] is a sequence of labels;
    this module is that sequence type together with the handful of operations
    the semantics, the regex engine and the reporters share. *)

type t = Symbol.t list

val empty : t
val singleton : Symbol.t -> t

val append : t -> t -> t
(** Sequence concatenation, written [l1 · l2] in the paper. *)

val compare : t -> t -> int
(** Total order: first by length, then lexicographically by symbol. Ordering
    by length first makes "shortest counterexample" selection a plain
    minimum. *)

val equal : t -> t -> bool
val length : t -> int

val of_names : string list -> t
(** Interns each name in order. *)

val to_names : t -> string list

val pp : Format.formatter -> t -> unit
(** Prints [a.test, a.open, b.open] — the paper's counterexample style. *)

val to_string : t -> string

module Set : Set.S with type elt = t
(** Sets of traces, used by the bounded-semantics oracle. *)

val pp_set : Format.formatter -> Set.t -> unit
