type t = int

(* The intern table is global and append-only: a symbol never changes meaning
   during a run, which is exactly the property reports and automata rely on. *)
let by_name : (string, t) Hashtbl.t = Hashtbl.create 256
let names = ref (Array.make 256 "")
let next = ref 0

let ensure_capacity n =
  if n > Array.length !names then begin
    let bigger = Array.make (max n (2 * Array.length !names)) "" in
    Array.blit !names 0 bigger 0 !next;
    names := bigger
  end

let intern s =
  match Hashtbl.find_opt by_name s with
  | Some id -> id
  | None ->
    let id = !next in
    ensure_capacity (id + 1);
    !names.(id) <- s;
    incr next;
    Hashtbl.add by_name s id;
    id

let name id =
  if id < 0 || id >= !next then invalid_arg "Symbol.name: unknown symbol";
  !names.(id)

let compare = Int.compare
let equal = Int.equal
let hash (id : t) = id
let to_int (id : t) = id
let pp fmt id = Format.pp_print_string fmt (name id)
let count () = !next
let scoped ~scope op = intern (scope ^ "." ^ op)

let split_scope id =
  let s = name id in
  match String.index_opt s '.' with
  | None -> None
  | Some i -> Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

module Set = Set.Make (Int)
module Map = Map.Make (Int)

let pp_set fmt set =
  let sorted = Set.elements set |> List.map name |> List.sort String.compare in
  Format.fprintf fmt "{%s}" (String.concat ", " sorted)
