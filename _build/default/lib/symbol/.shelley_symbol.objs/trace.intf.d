lib/symbol/trace.mli: Format Set Symbol
