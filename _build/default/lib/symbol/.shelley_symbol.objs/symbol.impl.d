lib/symbol/symbol.ml: Array Format Hashtbl Int List Map Set String
