lib/symbol/symbol.mli: Format Map Set
