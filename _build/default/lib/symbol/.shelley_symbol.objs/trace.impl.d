lib/symbol/trace.ml: Format Int List Set Symbol
