(** Interned event symbols.

    Every label that appears in a trace — a method name such as ["test"] or a
    qualified subsystem call such as ["a.open"] — is interned into a compact
    integer symbol. Interning makes alphabet operations, automata transition
    tables and trace comparisons cheap, while [name] recovers the original
    spelling for reports and diagrams. *)

type t
(** An interned symbol. Symbols are totally ordered and hashable; two symbols
    are equal iff their source strings are equal. *)

val intern : string -> t
(** [intern s] returns the unique symbol for string [s], creating it on first
    use. *)

val name : t -> string
(** [name sym] is the string that was interned to produce [sym]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val to_int : t -> int
(** Stable dense integer id, suitable for array indexing. *)

val pp : Format.formatter -> t -> unit
(** Prints the symbol's name. *)

val count : unit -> int
(** Number of distinct symbols interned so far (useful for sizing arrays). *)

val scoped : scope:string -> string -> t
(** [scoped ~scope op] interns ["scope.op"], the spelling Shelley uses for a
    call [self.scope.op()] on a constrained field. *)

val split_scope : t -> (string * string) option
(** [split_scope sym] is [Some (scope, op)] when [name sym] has the shape
    ["scope.op"] (splitting at the first dot), and [None] otherwise. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val pp_set : Format.formatter -> Set.t -> unit
(** Prints a symbol set as [{a, b, c}] in name order. *)
