type t = Symbol.t list

let empty : t = []
let singleton sym : t = [ sym ]
let append (l1 : t) (l2 : t) : t = l1 @ l2

let rec compare_lex a b =
  match a, b with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: a', y :: b' ->
    let c = Symbol.compare x y in
    if c <> 0 then c else compare_lex a' b'

let compare (a : t) (b : t) =
  let c = Int.compare (List.length a) (List.length b) in
  if c <> 0 then c else compare_lex a b

let equal a b = compare a b = 0
let length = List.length
let of_names names = List.map Symbol.intern names
let to_names l = List.map Symbol.name l

let pp fmt l =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
    Symbol.pp fmt l

let to_string l = Format.asprintf "%a" pp l

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

let pp_set fmt set =
  Format.fprintf fmt "@[<v>";
  Set.iter (fun l -> Format.fprintf fmt "[%a]@ " pp l) set;
  Format.fprintf fmt "@]"
