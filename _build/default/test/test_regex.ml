open Testutil

let a = Regex.sym_of_name "a"
let b = Regex.sym_of_name "b"
let c = Regex.sym_of_name "c"

(* --- Smart constructors ----------------------------------------------------- *)

let test_seq_identities () =
  Alcotest.check regex "empty absorbs left" Regex.empty (Regex.seq Regex.empty a);
  Alcotest.check regex "empty absorbs right" Regex.empty (Regex.seq a Regex.empty);
  Alcotest.check regex "eps unit left" a (Regex.seq Regex.eps a);
  Alcotest.check regex "eps unit right" a (Regex.seq a Regex.eps)

let test_seq_right_assoc () =
  Alcotest.check regex "reassociates"
    (Regex.seq a (Regex.seq b c))
    (Regex.seq (Regex.seq a b) c)

let test_alt_identities () =
  Alcotest.check regex "empty unit" a (Regex.alt Regex.empty a);
  Alcotest.check regex "idempotent" a (Regex.alt a a);
  Alcotest.check regex "commutative normal form" (Regex.alt a b) (Regex.alt b a)

let test_alt_flattening () =
  let left = Regex.alt (Regex.alt a b) c in
  let right = Regex.alt a (Regex.alt b c) in
  Alcotest.check regex "associativity normalizes" left right

let test_star_collapse () =
  Alcotest.check regex "star of empty" Regex.eps (Regex.star Regex.empty);
  Alcotest.check regex "star of eps" Regex.eps (Regex.star Regex.eps);
  Alcotest.check regex "star of star" (Regex.star a) (Regex.star (Regex.star a))

let test_word () =
  Alcotest.check regex "word builds seq"
    (Regex.seq a (Regex.seq b c))
    (Regex.word (List.map Symbol.intern [ "a"; "b"; "c" ]))

let test_nullable () =
  Alcotest.(check bool) "eps" true (Regex.nullable Regex.eps);
  Alcotest.(check bool) "empty" false (Regex.nullable Regex.empty);
  Alcotest.(check bool) "sym" false (Regex.nullable a);
  Alcotest.(check bool) "star" true (Regex.nullable (Regex.star a));
  Alcotest.(check bool) "seq both" false (Regex.nullable (Regex.seq (Regex.star a) b));
  Alcotest.(check bool) "opt" true (Regex.nullable (Regex.opt a))

let test_alphabet () =
  let r = Regex.seq a (Regex.star (Regex.alt b c)) in
  Alcotest.(check int) "three symbols" 3 (Symbol.Set.cardinal (Regex.alphabet r))

let test_pp () =
  let r = Regex.seq (Regex.star (Regex.alt a b)) c in
  Alcotest.(check string) "precedence printing" "(a + b)* \xc2\xb7 c" (Regex.to_string r);
  Alcotest.(check string)
    "ascii variant" "(a + b)*.c"
    (Format.asprintf "%a" Regex.pp_ascii r)

let test_pp_constants () =
  Alcotest.(check string) "eps" "\xce\xb5" (Regex.to_string Regex.eps);
  Alcotest.(check string) "empty" "\xe2\x88\x85" (Regex.to_string Regex.empty)

let test_size_and_height () =
  let r = Regex.star (Regex.seq a (Regex.star b)) in
  Alcotest.(check int) "size" 5 (Regex.size r);
  Alcotest.(check int) "star height" 2 (Regex.star_height r)

(* --- Derivatives ------------------------------------------------------------ *)

let test_deriv_sym () =
  Alcotest.check regex "matching symbol" Regex.eps (Deriv.deriv (sym "a") a);
  Alcotest.check regex "non-matching symbol" Regex.empty (Deriv.deriv (sym "b") a)

let test_deriv_seq_non_nullable () =
  let r = Regex.seq a b in
  Alcotest.check regex "consume head" b (Deriv.deriv (sym "a") r);
  Alcotest.check regex "wrong head" Regex.empty (Deriv.deriv (sym "b") r)

let test_deriv_seq_nullable () =
  let r = Regex.seq (Regex.opt a) b in
  Alcotest.check regex "skip optional head" Regex.eps (Deriv.deriv (sym "b") r)

let test_deriv_star () =
  let r = Regex.star a in
  Alcotest.check regex "unrolls once" r (Deriv.deriv (sym "a") r)

let test_matches_basic () =
  let r = Regex.seq (Regex.star a) b in
  Alcotest.(check bool) "b" true (Deriv.matches r (tr [ "b" ]));
  Alcotest.(check bool) "aab" true (Deriv.matches r (tr [ "a"; "a"; "b" ]));
  Alcotest.(check bool) "a" false (Deriv.matches r (tr [ "a" ]));
  Alcotest.(check bool) "ba" false (Deriv.matches r (tr [ "b"; "a" ]));
  Alcotest.(check bool) "empty trace" false (Deriv.matches r [])

let test_matches_empty_and_eps () =
  Alcotest.(check bool) "empty matches nothing" false (Deriv.matches Regex.empty []);
  Alcotest.(check bool) "eps matches empty" true (Deriv.matches Regex.eps []);
  Alcotest.(check bool) "eps rejects nonempty" false (Deriv.matches Regex.eps (tr [ "a" ]))

let test_shortest_member () =
  let r = Regex.seq (Regex.star a) (Regex.seq b c) in
  Alcotest.(check (option trace)) "bc" (Some (tr [ "b"; "c" ])) (Deriv.shortest_member r);
  Alcotest.(check (option trace)) "none for empty" None (Deriv.shortest_member Regex.empty);
  Alcotest.(check (option trace))
    "empty trace for star" (Some []) (Deriv.shortest_member (Regex.star a))

let test_is_empty_language () =
  Alcotest.(check bool) "empty" true (Deriv.is_empty_language Regex.empty);
  Alcotest.(check bool)
    "seq with empty" true
    (Deriv.is_empty_language (Regex.seq a Regex.empty));
  Alcotest.(check bool) "sym" false (Deriv.is_empty_language a)

let test_derivative_closure_finite () =
  let r = Regex.star (Regex.seq a (Regex.alt b (Regex.seq c Regex.empty))) in
  let states = Deriv.derivative_closure r in
  Alcotest.(check bool) "finitely many states" true (List.length states < 30);
  Alcotest.(check bool) "contains start" true (List.exists (Regex.equal r) states)

(* --- Enumeration ------------------------------------------------------------ *)

let test_words_upto () =
  let r = Regex.star a in
  let words = Enumerate.words_upto ~max_len:3 r in
  let expected =
    Trace.Set.of_list [ []; tr [ "a" ]; tr [ "a"; "a" ]; tr [ "a"; "a"; "a" ] ]
  in
  Alcotest.check trace_set "a* up to 3" expected words

let test_words_upto_finite_language () =
  let r = Regex.alt (Regex.seq a b) c in
  let words = Enumerate.words_upto ~max_len:5 r in
  Alcotest.check trace_set "exactly two words"
    (Trace.Set.of_list [ tr [ "a"; "b" ]; tr [ "c" ] ])
    words

let test_count_upto () =
  Alcotest.(check int) "binary strings" (1 + 2 + 4 + 8)
    (Enumerate.count_upto ~max_len:3 (Regex.star (Regex.alt a b)))

(* --- Equivalence ------------------------------------------------------------ *)

let test_equiv_star_unroll () =
  let star_a = Regex.star a in
  let unrolled = Regex.alt Regex.eps (Regex.seq a star_a) in
  Alcotest.(check bool) "a* = eps + a a*" true (Equiv.equivalent star_a unrolled)

let test_equiv_distribution () =
  let left = Regex.seq a (Regex.alt b c) in
  let right = Regex.alt (Regex.seq a b) (Regex.seq a c) in
  Alcotest.(check bool) "left distribution" true (Equiv.equivalent left right)

let test_not_equiv_with_counterexample () =
  let r1 = Regex.star (Regex.alt a b) in
  let r2 = Regex.star a in
  match Equiv.counterexample r1 r2 with
  | None -> Alcotest.fail "expected a counterexample"
  | Some w ->
    Alcotest.check trace "shortest difference" (tr [ "b" ]) w

let test_inclusion () =
  Alcotest.(check bool) "a ⊆ a+b" true (Equiv.included a (Regex.alt a b));
  Alcotest.(check bool) "a+b ⊄ a" false (Equiv.included (Regex.alt a b) a);
  Alcotest.(check (option trace))
    "witness" (Some (tr [ "b" ]))
    (Equiv.inclusion_counterexample (Regex.alt a b) a)

let test_inclusion_star () =
  Alcotest.(check bool)
    "(ab)* ⊆ (a+b)*" true
    (Equiv.included (Regex.star (Regex.seq a b)) (Regex.star (Regex.alt a b)))

(* --- Properties -------------------------------------------------------------- *)

let prop_matches_iff_enumerated =
  qtest "words_upto agrees with matches" ~count:100 default_regex_gen ~print:regex_print
    (fun r ->
      let words = Enumerate.words_upto ~max_len:4 r in
      Trace.Set.for_all (fun w -> Deriv.matches r w) words)

let prop_deriv_shifts_language =
  qtest "deriv shifts the language" ~count:100
    QCheck2.Gen.(pair default_regex_gen (oneofl Prog_gen.default_alphabet))
    ~print:(fun (r, s) -> regex_print r ^ " / " ^ Symbol.name s)
    (fun (r, s) ->
      let dr = Deriv.deriv s r in
      Enumerate.words_upto ~max_len:3 dr
      |> Trace.Set.for_all (fun w -> Deriv.matches r (s :: w)))

let prop_equivalence_reflexive_under_rewrites =
  qtest "r = r + r and r = r·eps" ~count:100 default_regex_gen ~print:regex_print
    (fun r ->
      Equiv.equivalent r (Regex.alt r r) && Equiv.equivalent r (Regex.seq r Regex.eps))

let prop_star_fixpoint =
  qtest "(r*)* = r* and r* = eps + r·r*" ~count:100 default_regex_gen ~print:regex_print
    (fun r ->
      let s = Regex.star r in
      Equiv.equivalent s (Regex.star s)
      && Equiv.equivalent s (Regex.alt Regex.eps (Regex.seq r s)))

let prop_shortest_member_is_shortest =
  qtest "shortest_member minimal" ~count:100 default_regex_gen ~print:regex_print
    (fun r ->
      match Deriv.shortest_member r with
      | None -> Trace.Set.is_empty (Enumerate.words_upto ~max_len:4 r)
      | Some w ->
        Deriv.matches r w
        && Trace.Set.for_all
             (fun w' -> List.length w' >= List.length w)
             (Enumerate.words_upto ~max_len:(List.length w) r))

(* --- Parser errors ----------------------------------------------------------- *)

(* Exact (line, col) blamed by Regex_parser, consistent with Mpy_parser's
   convention: 1-based lines, 0-based columns. *)
let parse_error_corpus =
  [
    ("unclosed paren", "(a b", 1, 4, "expected ')' but found end of input");
    ("stray rparen", "a b )", 1, 4, "expected end of input but found ')'");
    ("leading plus", "+ a", 1, 0, "expected an expression but found '+'");
    ("star alone", "*", 1, 0, "expected an expression but found '*'");
    ("bad character", "a # b", 1, 2, "unexpected character '#'");
    ("empty input", "", 1, 0, "expected an expression but found end of input");
    ("error after newline", "a +\nb + ?", 2, 4, "unexpected character '?'");
    ("trailing operator", "a \xc2\xb7", 1, 4, "expected an expression but found end of input");
  ]

let test_parse_error_positions () =
  List.iter
    (fun (name, input, line, col, message) ->
      match Regex_parser.parse input with
      | r -> Alcotest.failf "%s: parsed as %s" name (Regex.to_string r)
      | exception Regex_parser.Parse_error (msg, l, c) ->
        Alcotest.(check (pair int int)) (name ^ ": position") (line, col) (l, c);
        Alcotest.(check string) (name ^ ": message") message msg)
    parse_error_corpus

let test_parse_result_formats_position () =
  List.iter
    (fun (name, input, line, col, message) ->
      match Regex_parser.parse_result input with
      | Ok _ -> Alcotest.failf "%s: unexpectedly parsed" name
      | Error rendered ->
        Alcotest.(check string) name
          (Printf.sprintf "line %d, col %d: %s" line col message)
          rendered)
    parse_error_corpus

let () =
  Alcotest.run "regex"
    [
      ( "constructors",
        [
          Alcotest.test_case "seq identities" `Quick test_seq_identities;
          Alcotest.test_case "seq right assoc" `Quick test_seq_right_assoc;
          Alcotest.test_case "alt identities" `Quick test_alt_identities;
          Alcotest.test_case "alt flattening" `Quick test_alt_flattening;
          Alcotest.test_case "star collapse" `Quick test_star_collapse;
          Alcotest.test_case "word" `Quick test_word;
          Alcotest.test_case "nullable" `Quick test_nullable;
          Alcotest.test_case "alphabet" `Quick test_alphabet;
          Alcotest.test_case "pp precedence" `Quick test_pp;
          Alcotest.test_case "pp constants" `Quick test_pp_constants;
          Alcotest.test_case "size and height" `Quick test_size_and_height;
        ] );
      ( "parser errors",
        [
          Alcotest.test_case "positions and messages" `Quick test_parse_error_positions;
          Alcotest.test_case "parse_result rendering" `Quick test_parse_result_formats_position;
        ] );
      ( "derivatives",
        [
          Alcotest.test_case "deriv sym" `Quick test_deriv_sym;
          Alcotest.test_case "deriv seq" `Quick test_deriv_seq_non_nullable;
          Alcotest.test_case "deriv seq nullable" `Quick test_deriv_seq_nullable;
          Alcotest.test_case "deriv star" `Quick test_deriv_star;
          Alcotest.test_case "matches basic" `Quick test_matches_basic;
          Alcotest.test_case "matches constants" `Quick test_matches_empty_and_eps;
          Alcotest.test_case "shortest member" `Quick test_shortest_member;
          Alcotest.test_case "is_empty_language" `Quick test_is_empty_language;
          Alcotest.test_case "derivative closure finite" `Quick test_derivative_closure_finite;
        ] );
      ( "enumeration",
        [
          Alcotest.test_case "words_upto star" `Quick test_words_upto;
          Alcotest.test_case "words_upto finite" `Quick test_words_upto_finite_language;
          Alcotest.test_case "count_upto" `Quick test_count_upto;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "star unroll" `Quick test_equiv_star_unroll;
          Alcotest.test_case "distribution" `Quick test_equiv_distribution;
          Alcotest.test_case "counterexample" `Quick test_not_equiv_with_counterexample;
          Alcotest.test_case "inclusion" `Quick test_inclusion;
          Alcotest.test_case "inclusion star" `Quick test_inclusion_star;
        ] );
      ( "properties",
        [
          prop_matches_iff_enumerated;
          prop_deriv_shifts_language;
          prop_equivalence_reflexive_under_rewrites;
          prop_star_fixpoint;
          prop_shortest_member_is_shortest;
        ] );
    ]
