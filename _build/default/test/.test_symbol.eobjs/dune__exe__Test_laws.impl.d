test/test_laws.ml: Alcotest Deriv Determinize Dfa Enumerate Equiv Language List Ltlf Minimize Nfa Printf Prog_gen QCheck2 Random Regex Sample String Testutil Thompson Trace
