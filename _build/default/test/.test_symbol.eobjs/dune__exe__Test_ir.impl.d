test/test_ir.ml: Alcotest Deriv Equiv Format Infer Ir_examples List Printf Prog Prog_gen Random Regex Semantics Symbol Testutil Trace
