test/test_fault.ml: Alcotest Determinize Dfa Glushkov Language Limits List Model Option Pipeline Printexc Printf QCheck2 Regex Report String Symbol Testutil
