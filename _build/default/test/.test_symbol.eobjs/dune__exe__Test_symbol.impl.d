test/test_symbol.ml: Alcotest Format List Printf Symbol Testutil Trace
