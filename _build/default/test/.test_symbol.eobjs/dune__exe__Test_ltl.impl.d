test/test_ltl.ml: Alcotest Dfa Format Language Limits List Ltl_check Ltl_monitor Ltl_parser Ltlf Nfa Nnf Printf Progression QCheck2 Regex Symbol Tableau Testutil Thompson Trace
