test/test_backends.ml: Alcotest Determinize Dot Extract Infer Ir_examples List Ltl_parser Mpy_parser Nfa Nusmv Regex String Testutil Thompson Trace
