test/test_mpy.ml: Alcotest Format List Mpy_ast Mpy_lexer Mpy_lower Mpy_parser Mpy_pretty Mpy_token Option Printf Prog QCheck2 Semantics String Symbol Testutil
