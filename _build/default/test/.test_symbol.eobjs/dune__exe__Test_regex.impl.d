test/test_regex.ml: Alcotest Deriv Enumerate Equiv Format List Prog_gen QCheck2 Regex Symbol Testutil Trace
