test/test_regex.ml: Alcotest Deriv Enumerate Equiv Format List Printf Prog_gen QCheck2 Regex Regex_parser Symbol Testutil Trace
