test/testutil.ml: Alcotest List Nfa Prog Prog_gen QCheck2 QCheck_alcotest Regex Seq String Symbol Trace
