test/test_automata.ml: Alcotest Deriv Determinize Dfa Enumerate Equiv Glushkov Infer Ir_examples Language List Minimize Nfa QCheck2 Regex State_elim States Symbol Testutil Thompson Trace
