test/test_model_io.ml: Alcotest Depgraph Equiv Extract Filename Fmt Fun Language List Model Model_io Mpy_parser Option Report Sexp_lite String Sys Testutil Trace Usage
