test/test_theorems.ml: Alcotest Determinize Dfa Enumerate Equiv Glushkov Infer Ir_examples List Minimize Nfa Prog Prog_gen Regex Semantics State_elim Testutil Trace
