test/test_derivation.ml: Alcotest Derivation Format Ir_examples List Option Prog Prog_gen QCheck2 Semantics Testutil Trace
