test/test_reporting.ml: Alcotest Dot Explain Extract Format List Model Mpy_parser Option Pipeline Report Stats String Symbol Testutil
