test/test_mpy.mli:
