open Testutil

(* --- Prog ----------------------------------------------------------------- *)

let test_prog_pp () =
  Alcotest.(check string)
    "paper style" "loop(\xe2\x98\x85){a(); if(\xe2\x98\x85){b(); return} else {c()}}"
    (Prog.to_string Ir_examples.paper_loop)

let test_prog_size () =
  Alcotest.(check int) "paper loop size" 8 (Prog.size Ir_examples.paper_loop)

let test_prog_calls () =
  let calls = Prog.calls Ir_examples.paper_loop in
  Alcotest.(check int) "three events" 3 (Symbol.Set.cardinal calls)

let test_choice () =
  let p = Prog.choice [ Prog.call_name "a"; Prog.call_name "b"; Prog.call_name "c" ] in
  Alcotest.(check bool) "a derivable" true (Semantics.in_behavior (tr [ "a" ]) p);
  Alcotest.(check bool) "b derivable" true (Semantics.in_behavior (tr [ "b" ]) p);
  Alcotest.(check bool) "c derivable" true (Semantics.in_behavior (tr [ "c" ]) p);
  Alcotest.(check bool) "choice [] = skip" true (Prog.equal (Prog.choice []) Prog.skip)

let test_always_returns () =
  Alcotest.(check bool) "return" true (Prog.always_returns Prog.return);
  Alcotest.(check bool) "call" false (Prog.always_returns (Prog.call_name "a"));
  Alcotest.(check bool) "seq with early return" true
    (Prog.always_returns (Prog.seq Prog.return (Prog.call_name "a")));
  Alcotest.(check bool) "if both return" true
    (Prog.always_returns (Prog.if_ Prog.return Prog.return));
  Alcotest.(check bool) "if one branch" false
    (Prog.always_returns (Prog.if_ Prog.return Prog.skip));
  Alcotest.(check bool) "loop never guarantees" false
    (Prog.always_returns (Prog.loop Prog.return))

(* --- Semantics: the paper's rules one by one --------------------------------- *)

let test_rule_call () =
  let p = Prog.call_name "f" in
  Alcotest.(check bool) "0 ⊢ [f] ∈ f()" true (Semantics.derivable Semantics.Ongoing (tr [ "f" ]) p);
  Alcotest.(check bool) "R ⊬ [f]" false (Semantics.derivable Semantics.Returned (tr [ "f" ]) p);
  Alcotest.(check bool) "0 ⊬ []" false (Semantics.derivable Semantics.Ongoing [] p)

let test_rule_skip () =
  Alcotest.(check bool) "0 ⊢ [] ∈ skip" true (Semantics.derivable Semantics.Ongoing [] Prog.skip);
  Alcotest.(check bool) "R ⊬ [] ∈ skip" false (Semantics.derivable Semantics.Returned [] Prog.skip)

let test_rule_return () =
  Alcotest.(check bool) "R ⊢ [] ∈ return" true (Semantics.derivable Semantics.Returned [] Prog.return);
  Alcotest.(check bool) "0 ⊬ [] ∈ return" false (Semantics.derivable Semantics.Ongoing [] Prog.return)

let test_rule_seq_early_return () =
  (* SEQ-1: a(); return; b() never emits b. *)
  let p = Prog.seq_list [ Prog.call_name "a"; Prog.return; Prog.call_name "b" ] in
  Alcotest.(check bool) "R ⊢ [a]" true (Semantics.derivable Semantics.Returned (tr [ "a" ]) p);
  Alcotest.(check bool) "no [a, b]" false (Semantics.in_behavior (tr [ "a"; "b" ]) p)

let test_rule_seq_compose () =
  let p = Prog.seq (Prog.call_name "a") (Prog.call_name "b") in
  Alcotest.(check bool) "0 ⊢ [a, b]" true (Semantics.derivable Semantics.Ongoing (tr [ "a"; "b" ]) p);
  Alcotest.(check bool) "prefix alone not ongoing" false
    (Semantics.derivable Semantics.Ongoing (tr [ "a" ]) p)

let test_rule_if () =
  let p = Prog.if_ (Prog.call_name "a") (Prog.seq (Prog.call_name "b") Prog.return) in
  Alcotest.(check bool) "then branch ongoing" true (Semantics.derivable Semantics.Ongoing (tr [ "a" ]) p);
  Alcotest.(check bool) "else branch returned" true
    (Semantics.derivable Semantics.Returned (tr [ "b" ]) p);
  Alcotest.(check bool) "no mixing" false (Semantics.in_behavior (tr [ "a"; "b" ]) p)

let test_rule_loop_zero_iterations () =
  let p = Prog.loop (Prog.call_name "a") in
  Alcotest.(check bool) "LOOP-1" true (Semantics.derivable Semantics.Ongoing [] p)

let test_rule_loop_iterates () =
  let p = Prog.loop (Prog.call_name "a") in
  Alcotest.(check bool) "three iterations" true
    (Semantics.derivable Semantics.Ongoing (tr [ "a"; "a"; "a" ]) p)

let test_rule_loop_early_return () =
  let p = Prog.loop (Prog.if_ (Prog.seq (Prog.call_name "b") Prog.return) (Prog.call_name "c")) in
  Alcotest.(check bool) "c*b returned" true
    (Semantics.derivable Semantics.Returned (tr [ "c"; "c"; "b" ]) p);
  Alcotest.(check bool) "nothing after return" false
    (Semantics.in_behavior (tr [ "b"; "c" ]) p)

let test_paper_example_1 () =
  (* 0 ⊢ [a, c, a, c] ∈ loop(★){a(); if(★){b(); return} else {c()}} *)
  Alcotest.(check bool) "Example 1" true
    (Semantics.derivable Semantics.Ongoing Ir_examples.example1_trace Ir_examples.paper_loop)

let test_paper_example_2 () =
  (* R ⊢ [a, c, a, b] ∈ the same program *)
  Alcotest.(check bool) "Example 2" true
    (Semantics.derivable Semantics.Returned Ir_examples.example2_trace Ir_examples.paper_loop)

let test_paper_examples_not_swapped () =
  Alcotest.(check bool) "Example 1 trace is not returned" false
    (Semantics.derivable Semantics.Returned Ir_examples.example1_trace Ir_examples.paper_loop);
  Alcotest.(check bool) "Example 2 trace is not ongoing" false
    (Semantics.derivable Semantics.Ongoing Ir_examples.example2_trace Ir_examples.paper_loop)

let test_behavior_upto_dedup () =
  (* if(★){a} else {a} has the same behavior as a() *)
  let p = Prog.if_ (Prog.call_name "a") (Prog.call_name "a") in
  Alcotest.check trace_set "deduplicated"
    (Semantics.behavior_upto ~max_len:3 (Prog.call_name "a"))
    (Semantics.behavior_upto ~max_len:3 p)

let test_dead_code_after_return () =
  let p = Prog.seq Prog.return (Prog.loop (Prog.call_name "a")) in
  Alcotest.check trace_set "only the empty returned trace"
    (Trace.Set.singleton [])
    (Semantics.behavior_upto ~max_len:4 p)

let test_loop_skip_body () =
  (* loop(★){skip} can only ever produce the empty ongoing trace. *)
  let p = Prog.loop Prog.skip in
  Alcotest.check trace_set "empty trace only" (Trace.Set.singleton [])
    (Semantics.behavior_upto ~max_len:3 p)

(* --- Inference: Figure 4 bottom ----------------------------------------------- *)

let test_denote_call () =
  let d = Infer.denote (Prog.call_name "f") in
  Alcotest.check regex "ongoing f" (Regex.sym_of_name "f") d.Infer.ongoing;
  Alcotest.(check int) "no returned" 0 (List.length d.Infer.returned)

let test_denote_skip () =
  let d = Infer.denote Prog.skip in
  Alcotest.check regex "eps" Regex.eps d.Infer.ongoing;
  Alcotest.(check int) "no returned" 0 (List.length d.Infer.returned)

let test_denote_return () =
  let d = Infer.denote Prog.return in
  Alcotest.check regex "empty ongoing" Regex.empty d.Infer.ongoing;
  Alcotest.(check (list string)) "returned = {eps}" [ "\xce\xb5" ]
    (List.map Regex.to_string d.Infer.returned)

let test_denote_seq_early_return () =
  (* ⟦a(); return⟧ = (a·∅, {a·ε}) = (∅, {a}) in normal form *)
  let d = Infer.denote (Prog.seq (Prog.call_name "a") Prog.return) in
  Alcotest.check regex "ongoing empty" Regex.empty d.Infer.ongoing;
  Alcotest.(check (list string)) "returned {a}" [ "a" ]
    (List.map Regex.to_string d.Infer.returned)

let test_denote_paper_example_3 () =
  (* ⟦loop(★){a(); if(★){b(); return} else {c()}}⟧
     = ((a·((b·∅)+c))*, {(a·((b·∅)+c))*·a·b}).
     Our normal form reduces b·∅ to ∅ and (∅+c) to c; the language is the
     same, which is what we check. *)
  let d = Infer.denote Ir_examples.paper_loop in
  Alcotest.(check bool) "ongoing ≡ paper's ongoing" true
    (Equiv.equivalent d.Infer.ongoing Ir_examples.example3_expected_ongoing);
  match d.Infer.returned with
  | [ r ] ->
    let expected =
      Regex.seq Ir_examples.example3_expected_ongoing
        (Regex.seq (Regex.sym_of_name "a") (Regex.sym_of_name "b"))
    in
    Alcotest.(check bool) "returned ≡ paper's returned" true (Equiv.equivalent r expected)
  | other -> Alcotest.failf "expected one returned behavior, got %d" (List.length other)

let test_infer_merges () =
  let p = Prog.if_ (Prog.seq (Prog.call_name "a") Prog.return) (Prog.call_name "b") in
  let r = Infer.infer p in
  Alcotest.(check bool) "a from returned branch" true (Deriv.matches r (tr [ "a" ]));
  Alcotest.(check bool) "b from ongoing branch" true (Deriv.matches r (tr [ "b" ]))

let test_exit_behaviors () =
  (* Two return points, like method open_a of Listing 3.1. *)
  let p =
    Prog.if_
      (Prog.seq (Prog.call_name "x") Prog.return)
      (Prog.seq (Prog.call_name "y") Prog.return)
  in
  Alcotest.(check int) "two exits" 2 (List.length (Infer.exit_behaviors p))

let test_pp_denotation () =
  let d = Infer.denote (Prog.seq (Prog.call_name "a") Prog.return) in
  Alcotest.(check string) "pair form" "(\xe2\x88\x85, {a})"
    (Format.asprintf "%a" Infer.pp_denotation d)

(* --- Corpus sanity -------------------------------------------------------------- *)

let test_corpus_lookup () =
  Alcotest.(check bool) "paper_loop in corpus" true
    (Prog.equal (Ir_examples.find "paper_loop") Ir_examples.paper_loop)

let test_corpus_all_infer () =
  List.iter
    (fun (name, p) ->
      let r = Infer.infer p in
      (* Quick consistency probe on every corpus entry. *)
      let sem = Semantics.behavior_upto ~max_len:3 p in
      Trace.Set.iter
        (fun l ->
          if not (Deriv.matches r l) then
            Alcotest.failf "%s: semantic trace [%s] rejected by inference" name
              (Trace.to_string l))
        sem)
    Ir_examples.corpus

(* --- Generators ------------------------------------------------------------------ *)

let test_prog_gen_sizes () =
  let state = Random.State.make [| 42 |] in
  List.iter
    (fun size ->
      let p = Prog_gen.random ~state ~size ~alphabet:Prog_gen.default_alphabet () in
      Alcotest.(check bool)
        (Printf.sprintf "size %d respected" size)
        true
        (Prog.size p <= size))
    [ 1; 5; 10; 40 ]

let test_all_of_size_exact () =
  (* size 1 over {a}: call a, skip, return. *)
  let progs = Prog_gen.all_of_size ~size:1 ~alphabet:[ sym "a" ] in
  Alcotest.(check int) "three leaves" 3 (List.length progs);
  (* size 2: only loop of each leaf. *)
  let progs2 = Prog_gen.all_of_size ~size:2 ~alphabet:[ sym "a" ] in
  Alcotest.(check int) "three loops" 3 (List.length progs2)

let test_all_of_size_3 () =
  (* size 3 over {a}: loop(loop(leaf)) = 3, and (seq|if)(leaf, leaf) = 2*9. *)
  let progs = Prog_gen.all_of_size ~size:3 ~alphabet:[ sym "a" ] in
  Alcotest.(check int) "twenty-one programs" 21 (List.length progs)

let () =
  Alcotest.run "ir"
    [
      ( "prog",
        [
          Alcotest.test_case "pp" `Quick test_prog_pp;
          Alcotest.test_case "size" `Quick test_prog_size;
          Alcotest.test_case "calls" `Quick test_prog_calls;
          Alcotest.test_case "choice" `Quick test_choice;
          Alcotest.test_case "always_returns" `Quick test_always_returns;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "rule CALL" `Quick test_rule_call;
          Alcotest.test_case "rule SKIP" `Quick test_rule_skip;
          Alcotest.test_case "rule RETURN" `Quick test_rule_return;
          Alcotest.test_case "rule SEQ-1" `Quick test_rule_seq_early_return;
          Alcotest.test_case "rule SEQ-2" `Quick test_rule_seq_compose;
          Alcotest.test_case "rules IF-1/IF-2" `Quick test_rule_if;
          Alcotest.test_case "rule LOOP-1" `Quick test_rule_loop_zero_iterations;
          Alcotest.test_case "rule LOOP-3" `Quick test_rule_loop_iterates;
          Alcotest.test_case "rule LOOP-2" `Quick test_rule_loop_early_return;
          Alcotest.test_case "paper Example 1" `Quick test_paper_example_1;
          Alcotest.test_case "paper Example 2" `Quick test_paper_example_2;
          Alcotest.test_case "examples not swapped" `Quick test_paper_examples_not_swapped;
          Alcotest.test_case "behavior dedup" `Quick test_behavior_upto_dedup;
          Alcotest.test_case "dead code after return" `Quick test_dead_code_after_return;
          Alcotest.test_case "loop skip body" `Quick test_loop_skip_body;
        ] );
      ( "inference",
        [
          Alcotest.test_case "denote call" `Quick test_denote_call;
          Alcotest.test_case "denote skip" `Quick test_denote_skip;
          Alcotest.test_case "denote return" `Quick test_denote_return;
          Alcotest.test_case "denote seq early return" `Quick test_denote_seq_early_return;
          Alcotest.test_case "paper Example 3" `Quick test_denote_paper_example_3;
          Alcotest.test_case "infer merges" `Quick test_infer_merges;
          Alcotest.test_case "exit behaviors" `Quick test_exit_behaviors;
          Alcotest.test_case "pp denotation" `Quick test_pp_denotation;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "lookup" `Quick test_corpus_lookup;
          Alcotest.test_case "all infer consistently" `Quick test_corpus_all_infer;
        ] );
      ( "generators",
        [
          Alcotest.test_case "random sizes" `Quick test_prog_gen_sizes;
          Alcotest.test_case "exhaustive size 1-2" `Quick test_all_of_size_exact;
          Alcotest.test_case "exhaustive size 3" `Quick test_all_of_size_3;
        ] );
    ]
