(* Derivation trees for the paper's judgment: search completeness against
   the set-based oracle, the rule checker, and the paper's Examples 1-2 as
   explicit proofs. *)

open Testutil

let search = Derivation.search
let ongoing = Semantics.Ongoing
let returned = Semantics.Returned

(* --- The paper's examples as explicit proofs ----------------------------------- *)

let test_example1_derivation () =
  match search ongoing Ir_examples.example1_trace Ir_examples.paper_loop with
  | None -> Alcotest.fail "Example 1 must be derivable"
  | Some d ->
    Alcotest.(check bool) "checks" true (Derivation.check d);
    Alcotest.(check string) "root rule" "LOOP-3" (Derivation.rule_name d);
    let c = Derivation.conclusion d in
    Alcotest.check trace "conclusion trace" Ir_examples.example1_trace c.Derivation.trace

let test_example2_derivation () =
  match search returned Ir_examples.example2_trace Ir_examples.paper_loop with
  | None -> Alcotest.fail "Example 2 must be derivable"
  | Some d ->
    Alcotest.(check bool) "checks" true (Derivation.check d);
    Alcotest.(check bool) "non-trivial proof" true (Derivation.size d >= 6)

let test_underivable () =
  Alcotest.(check bool) "swapped status 1" true
    (search returned Ir_examples.example1_trace Ir_examples.paper_loop = None);
  Alcotest.(check bool) "swapped status 2" true
    (search ongoing Ir_examples.example2_trace Ir_examples.paper_loop = None);
  Alcotest.(check bool) "garbage trace" true
    (search ongoing (tr [ "z" ]) Ir_examples.paper_loop = None)

(* --- Axioms ---------------------------------------------------------------------- *)

let test_axioms () =
  (match search ongoing (tr [ "f" ]) (Prog.call_name "f") with
  | Some (Derivation.Call _ as d) -> Alcotest.(check bool) "CALL checks" true (Derivation.check d)
  | _ -> Alcotest.fail "CALL");
  (match search ongoing [] Prog.skip with
  | Some (Derivation.Skip _ as d) -> Alcotest.(check bool) "SKIP checks" true (Derivation.check d)
  | _ -> Alcotest.fail "SKIP");
  (match search returned [] Prog.return with
  | Some (Derivation.Return _ as d) ->
    Alcotest.(check bool) "RETURN checks" true (Derivation.check d)
  | _ -> Alcotest.fail "RETURN");
  match search ongoing [] (Prog.loop (Prog.call_name "a")) with
  | Some (Derivation.Loop1 _ as d) ->
    Alcotest.(check bool) "LOOP-1 checks" true (Derivation.check d)
  | _ -> Alcotest.fail "LOOP-1"

let test_seq_rules () =
  let p = Prog.seq (Prog.call_name "a") (Prog.call_name "b") in
  (match search ongoing (tr [ "a"; "b" ]) p with
  | Some (Derivation.Seq2 _ as d) -> Alcotest.(check bool) "SEQ-2" true (Derivation.check d)
  | _ -> Alcotest.fail "SEQ-2 expected");
  let early = Prog.seq Prog.return (Prog.call_name "b") in
  match search returned [] early with
  | Some (Derivation.Seq1 _ as d) -> Alcotest.(check bool) "SEQ-1" true (Derivation.check d)
  | _ -> Alcotest.fail "SEQ-1 expected"

(* --- The checker rejects malformed trees ------------------------------------------- *)

let test_check_rejects_wrong_axiom () =
  let bogus =
    Derivation.Call
      { Derivation.status = ongoing; trace = tr [ "g" ]; prog = Prog.call_name "f" }
  in
  Alcotest.(check bool) "wrong trace rejected" false (Derivation.check bogus)

let test_check_rejects_bad_split () =
  let p = Prog.seq (Prog.call_name "a") (Prog.call_name "b") in
  let j = { Derivation.status = ongoing; trace = tr [ "b"; "a" ]; prog = p } in
  let d1 =
    Derivation.Call
      { Derivation.status = ongoing; trace = tr [ "a" ]; prog = Prog.call_name "a" }
  in
  let d2 =
    Derivation.Call
      { Derivation.status = ongoing; trace = tr [ "b" ]; prog = Prog.call_name "b" }
  in
  (* Premises are fine individually, but a·b ≠ b·a. *)
  Alcotest.(check bool) "wrong concatenation rejected" false
    (Derivation.check (Derivation.Seq2 (j, d1, d2)))

let test_check_rejects_status_mismatch () =
  let p = Prog.loop (Prog.call_name "a") in
  let bogus = Derivation.Loop1 { Derivation.status = returned; trace = []; prog = p } in
  Alcotest.(check bool) "LOOP-1 must be ongoing" false (Derivation.check bogus)

(* --- Agreement with the set-based oracle --------------------------------------------- *)

let statuses = [ ongoing; returned ]

let traces_upto syms n =
  let rec go n =
    if n = 0 then [ [] ]
    else
      let shorter = go (n - 1) in
      shorter
      @ (List.concat_map
           (fun w -> List.map (fun s -> s :: w) syms)
           (List.filter (fun w -> List.length w = n - 1) shorter))
  in
  go n

let test_search_complete_exhaustive () =
  (* Over all programs of size ≤ 4 and traces of length ≤ 3 on {a, b}:
     search succeeds iff the oracle says derivable, and every found
     derivation checks and concludes the right judgment. *)
  let syms = [ sym "a"; sym "b" ] in
  let progs = Prog_gen.all_upto_size ~size:4 ~alphabet:syms in
  let traces = traces_upto syms 3 in
  List.iter
    (fun p ->
      List.iter
        (fun l ->
          List.iter
            (fun s ->
              let oracle = Semantics.derivable s l p in
              match Derivation.search s l p with
              | None ->
                if oracle then
                  Alcotest.failf "search missed %s on %s" (Prog.to_string p)
                    (Trace.to_string l)
              | Some d ->
                if not oracle then
                  Alcotest.failf "search over-approximated %s on %s" (Prog.to_string p)
                    (Trace.to_string l);
                if not (Derivation.check d) then
                  Alcotest.failf "invalid derivation for %s" (Prog.to_string p);
                let c = Derivation.conclusion d in
                if
                  not
                    (c.Derivation.status = s
                    && Trace.equal c.Derivation.trace l
                    && Prog.equal c.Derivation.prog p)
                then Alcotest.fail "conclusion mismatch")
            statuses)
        traces)
    progs

let prop_search_matches_oracle =
  qtest "search = oracle on random programs" ~count:150
    QCheck2.Gen.(
      pair default_prog_gen (list_size (int_range 0 4) (oneofl Prog_gen.default_alphabet)))
    ~print:(fun (p, l) -> Prog.to_string p ^ " / " ^ Trace.to_string l)
    (fun (p, l) ->
      List.for_all
        (fun s ->
          match Derivation.search s l p with
          | Some d ->
            Semantics.derivable s l p && Derivation.check d
            && (let c = Derivation.conclusion d in
                c.Derivation.status = s && Trace.equal c.Derivation.trace l
                && Prog.equal c.Derivation.prog p)
          | None -> not (Semantics.derivable s l p))
        statuses)

let test_pp_shape () =
  let d = Option.get (search ongoing Ir_examples.example1_trace Ir_examples.paper_loop) in
  let text = Format.asprintf "%a" Derivation.pp d in
  List.iter
    (fun fragment -> Alcotest.(check bool) fragment true (contains text fragment))
    [ "LOOP-3:"; "SEQ-2:"; "CALL:"; "IF-2:" ]

let () =
  Alcotest.run "derivation"
    [
      ( "paper",
        [
          Alcotest.test_case "Example 1 proof" `Quick test_example1_derivation;
          Alcotest.test_case "Example 2 proof" `Quick test_example2_derivation;
          Alcotest.test_case "underivable judgments" `Quick test_underivable;
          Alcotest.test_case "pp shape" `Quick test_pp_shape;
        ] );
      ( "rules",
        [
          Alcotest.test_case "axioms" `Quick test_axioms;
          Alcotest.test_case "sequencing" `Quick test_seq_rules;
        ] );
      ( "checker",
        [
          Alcotest.test_case "wrong axiom" `Quick test_check_rejects_wrong_axiom;
          Alcotest.test_case "bad split" `Quick test_check_rejects_bad_split;
          Alcotest.test_case "status mismatch" `Quick test_check_rejects_status_mismatch;
        ] );
      ( "oracle-agreement",
        [
          Alcotest.test_case "bounded exhaustive" `Slow test_search_complete_exhaustive;
          prop_search_matches_oracle;
        ] );
    ]
