open Testutil

(* --- Shared sources -------------------------------------------------------------- *)

let valve_source =
  {|
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)
        self.clean = Pin(28, OUT)
        self.status = Pin(29, IN)

    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        self.control.on()
        return ["close"]

    @op_final
    def close(self):
        self.control.off()
        return ["test"]

    @op_final
    def clean(self):
        self.clean.on()
        return ["test"]
|}

let bad_sector_source =
  {|
@claim("(!a.open) W b.open")
@sys(["a", "b"])
class BadSector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def open_a(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                return ["open_b"]
            case ["clean"]:
                self.a.clean()
                print("a failed")
                return []

    @op_final
    def open_b(self):
        match self.b.test():
            case ["open"]:
                self.b.open()
                self.a.close()
                self.b.close()
                return []
            case ["clean"]:
                self.b.clean()
                print("b failed")
                self.a.close()
                return []
|}

(* A corrected sector: valves are always released before any final exit, and
   b is opened before a, satisfying the claim (!a.open) W b.open. *)
let good_sector_source =
  {|
@claim("(!a.open) W b.open")
@sys(["a", "b"])
class GoodSector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial
    def start(self):
        match self.b.test():
            case ["open"]:
                self.b.open()
                return ["open_a", "drain"]
            case ["clean"]:
                self.b.clean()
                return ["abort"]

    @op
    def open_a(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                return ["shutdown"]
            case ["clean"]:
                self.a.clean()
                return ["drain"]

    @op_final
    def shutdown(self):
        self.a.close()
        self.b.close()
        return ["start"]

    @op_final
    def drain(self):
        self.b.close()
        return ["start"]

    @op_final
    def abort(self):
        return ["start"]
|}

(* The paper's Listing 3.1 (Sector, returns only). *)
let listing31_source =
  {|
@sys(["a"])
class Sector:
    def __init__(self):
        self.a = Valve()

    @op_initial
    def open_a(self):
        if cond:
            return ["close_a", "open_b"]
        else:
            return ["clean_a"]

    @op
    def clean_a(self):
        return ["open_a"]

    @op
    def close_a(self):
        return ["open_a"]

    @op_final
    def open_b(self):
        if c2:
            return []
        else:
            return []
|}

let parse_one source = Mpy_parser.parse_class source
let extract source = (Extract.extract_class (parse_one source)).Extract.model
let valve = extract valve_source

(* --- Annotations ------------------------------------------------------------------ *)

let test_annotation_table_rows () =
  Alcotest.(check int) "seven rows (Table 1)" 7 (List.length Annotations.table)

let test_classify_method () =
  let dec name = { Mpy_ast.dec_name = name; dec_args = []; dec_line = 1 } in
  Alcotest.(check bool) "op" true
    (Annotations.classify_method_decorators [ dec "op" ] = Ok (Some Annotations.Middle));
  Alcotest.(check bool) "initial_final" true
    (Annotations.classify_method_decorators [ dec "op_initial_final" ]
    = Ok (Some Annotations.Initial_final));
  Alcotest.(check bool) "none" true (Annotations.classify_method_decorators [] = Ok None);
  Alcotest.(check bool) "conflict" true
    (match Annotations.classify_method_decorators [ dec "op"; dec "op_final" ] with
    | Error _ -> true
    | Ok _ -> false)

let test_kind_predicates () =
  Alcotest.(check bool) "initial_final is initial" true
    (Annotations.is_initial Annotations.Initial_final);
  Alcotest.(check bool) "initial_final is final" true
    (Annotations.is_final Annotations.Initial_final);
  Alcotest.(check bool) "middle is neither" false
    (Annotations.is_initial Annotations.Middle || Annotations.is_final Annotations.Middle)

(* --- Extraction -------------------------------------------------------------------- *)

let test_extract_valve_shape () =
  Alcotest.(check string) "name" "Valve" valve.Model.name;
  Alcotest.(check bool) "base class" true (valve.Model.kind = `Base);
  Alcotest.(check (list string)) "operations" [ "test"; "open"; "close"; "clean" ]
    (Model.op_names valve);
  Alcotest.(check int) "no claims" 0 (List.length valve.Model.claims)

let test_extract_valve_exits () =
  let test_op = Option.get (Model.find_op valve "test") in
  Alcotest.(check int) "test has two exits" 2 (List.length test_op.Model.exits);
  let nexts = List.map (fun (e : Model.exit_point) -> e.Model.next_ops) test_op.Model.exits in
  Alcotest.(check (list (list string))) "next ops" [ [ "open" ]; [ "clean" ] ] nexts

let test_extract_valve_behaviors () =
  let open_op = Option.get (Model.find_op valve "open") in
  match open_op.Model.exits with
  | [ e ] ->
    Alcotest.(check bool) "behavior is control.on" true
      (Equiv.equivalent e.Model.behavior (Regex.sym_of_name "control.on"))
  | _ -> Alcotest.fail "expected one exit"

let test_extract_subsystem_fields () =
  let bad = extract bad_sector_source in
  Alcotest.(check bool) "composite" true (bad.Model.kind = `Composite);
  Alcotest.(check (list string)) "declared" [ "a"; "b" ] bad.Model.declared_subsystems;
  Alcotest.(check (option string)) "a is a Valve" (Some "Valve") (Model.subsystem_class bad "a")

let test_extract_claims_parsed () =
  let bad = extract bad_sector_source in
  match bad.Model.claims with
  | [ (text, formula) ] ->
    Alcotest.(check string) "raw text" "(!a.open) W b.open" text;
    Alcotest.(check string) "parsed" "!a.open W b.open" (Ltlf.to_string formula)
  | _ -> Alcotest.fail "expected one claim"

let test_extract_bad_claim_reported () =
  let source =
    "@claim(\"(((\")\n@sys\nclass C:\n    @op_initial_final\n    def go(self):\n        return []\n"
  in
  let result = Extract.extract_class (parse_one source) in
  Alcotest.(check bool) "claim error reported" true
    (List.exists (fun r -> Report.severity r = Report.Error) result.Extract.diagnostics)

let test_extract_implicit_exit () =
  let source =
    "@sys\nclass C:\n    @op_initial_final\n    def go(self):\n        self.p.fire()\n"
  in
  let model = extract source in
  let op = Option.get (Model.find_op model "go") in
  match op.Model.exits with
  | [ e ] ->
    Alcotest.(check bool) "implicit" true e.Model.implicit;
    Alcotest.(check (list string)) "terminal" [] e.Model.next_ops
  | _ -> Alcotest.fail "expected exactly the implicit exit"

let test_exit_behaviors_of_marked () =
  let marked =
    Prog.if_
      (Prog.seq_list
         [
           Prog.call_name "a.x";
           Prog.call (Mpy_lower.exit_marker ~method_name:"m" 0);
           Prog.return;
         ])
      (Prog.seq_list
         [
           Prog.call_name "a.y";
           Prog.call (Mpy_lower.exit_marker ~method_name:"m" 1);
           Prog.return;
         ])
  in
  let exits, ongoing = Extract.exit_behaviors_of_marked ~method_name:"m" marked in
  Alcotest.(check int) "two exits" 2 (List.length exits);
  Alcotest.(check bool) "exit 0 behavior" true
    (Equiv.equivalent (List.assoc 0 exits) (Regex.sym_of_name "a.x"));
  Alcotest.(check bool) "exit 1 behavior" true
    (Equiv.equivalent (List.assoc 1 exits) (Regex.sym_of_name "a.y"));
  Alcotest.(check bool) "no fall-through" true (Deriv.is_empty_language ongoing)

(* --- Dependency graph (§3.1) --------------------------------------------------------- *)

let listing31 = extract listing31_source

let test_depgraph_listing31 () =
  let g = Depgraph.of_model listing31 in
  (* 4 entries + (2 + 1 + 1 + 2) exits = 10 nodes. *)
  Alcotest.(check int) "nodes" 10 (List.length g.Depgraph.nodes);
  (* entry→exit: 6; exit→entry: open_a/0 → {close_a, open_b}, open_a/1 →
     clean_a, clean_a/0 → open_a, close_a/0 → open_a, open_b exits → none. *)
  Alcotest.(check int) "arcs" 11 (List.length g.Depgraph.arcs)

let test_usage_nfa_valve () =
  let nfa = Depgraph.usage_nfa valve in
  let ok names = Nfa.accepts nfa (tr names) in
  Alcotest.(check bool) "empty usage" true (ok []);
  Alcotest.(check bool) "test clean" true (ok [ "test"; "clean" ]);
  Alcotest.(check bool) "test open close" true (ok [ "test"; "open"; "close" ]);
  Alcotest.(check bool) "cycle" true (ok [ "test"; "open"; "close"; "test"; "clean" ]);
  Alcotest.(check bool) "cannot stop after open" false (ok [ "test"; "open" ]);
  Alcotest.(check bool) "cannot start with open" false (ok [ "open"; "close" ]);
  Alcotest.(check bool) "close alone invalid" false (ok [ "close" ])

let test_usage_nfa_shortest_traces () =
  let nfa = Depgraph.usage_nfa valve in
  Alcotest.(check (option trace)) "shortest valid usage is empty" (Some [])
    (Nfa.shortest_accepted nfa)

let test_reachability_helpers () =
  Alcotest.(check (list string)) "all reachable"
    [ "open_a"; "close_a"; "open_b"; "clean_a" ]
    (Depgraph.reachable_ops listing31);
  let reaching = Depgraph.ops_reaching_final listing31 in
  Alcotest.(check bool) "open_a reaches final" true (List.mem "open_a" reaching);
  Alcotest.(check bool) "clean_a reaches final" true (List.mem "clean_a" reaching)

(* --- Validation ------------------------------------------------------------------------ *)

let has_error_containing reports fragment =
  List.exists
    (fun r ->
      match r with
      | Report.Structural { message; severity = Report.Error; _ } -> contains message fragment
      | _ -> false)
    reports

let has_warning_containing reports fragment =
  List.exists
    (fun r ->
      match r with
      | Report.Structural { message; severity = Report.Warning; _ } -> contains message fragment
      | _ -> false)
    reports

let test_validate_valve_clean () =
  Alcotest.(check int) "no findings" 0 (List.length (Validate.check valve))

let test_validate_missing_initial () =
  let source = "@sys\nclass C:\n    @op_final\n    def stop(self):\n        return []\n" in
  let reports = Validate.check (extract source) in
  Alcotest.(check bool) "missing initial" true
    (has_error_containing reports "@op_initial")

let test_validate_unknown_next () =
  let source =
    "@sys\nclass C:\n    @op_initial_final\n    def go(self):\n        return [\"nope\"]\n"
  in
  let reports = Validate.check (extract source) in
  Alcotest.(check bool) "unknown op reported" true
    (has_error_containing reports "unknown operation 'nope'")

let test_validate_dead_end () =
  let source =
    "@sys\nclass C:\n\
    \    @op_initial\n\
    \    def start(self):\n\
    \        return [\"stuck\"]\n\
    \    @op\n\
    \    def stuck(self):\n\
    \        return []\n\
    \    @op_final\n\
    \    def stop(self):\n\
    \        return []\n"
  in
  let reports = Validate.check (extract source) in
  Alcotest.(check bool) "dead end reported" true
    (has_error_containing reports "terminal exit");
  Alcotest.(check bool) "stop unreachable warned" true
    (has_warning_containing reports "unreachable")

let test_validate_unreachable () =
  let source =
    "@sys\nclass C:\n\
    \    @op_initial_final\n\
    \    def go(self):\n\
    \        return [\"go\"]\n\
    \    @op_final\n\
    \    def orphan(self):\n\
    \        return []\n"
  in
  let reports = Validate.check (extract source) in
  Alcotest.(check bool) "unreachable warning" true
    (has_warning_containing reports "unreachable")

(* --- Usage verification (the paper's §2.2) ---------------------------------------------- *)

let bad_result () = Pipeline.verify_source_exn (valve_source ^ bad_sector_source)

let test_paper_invalid_subsystem_usage () =
  let result = bad_result () in
  let usage_errors =
    List.filter_map
      (function
        | Report.Invalid_subsystem_usage
            { field; subsystem_class; counterexample; projected; failure; _ } ->
          Some (field, subsystem_class, counterexample, projected, failure)
        | _ -> None)
      result.Pipeline.reports
  in
  match usage_errors with
  | [ (field, subsystem_class, counterexample, projected, failure) ] ->
    Alcotest.(check string) "field" "a" field;
    Alcotest.(check string) "class" "Valve" subsystem_class;
    Alcotest.check trace "the paper's counterexample"
      (tr [ "open_a"; "a.test"; "a.open" ])
      counterexample;
    Alcotest.(check (list string)) "projection" [ "test"; "open" ] projected;
    (match failure with
    | Report.Not_final "open" -> ()
    | _ -> Alcotest.fail "expected open flagged as not final")
  | rs -> Alcotest.failf "expected exactly one usage error, got %d" (List.length rs)

let test_paper_transcript_verbatim () =
  let result = bad_result () in
  let transcripts = List.map Report.to_string result.Pipeline.reports in
  Alcotest.(check bool) "INVALID SUBSYSTEM USAGE transcript" true
    (List.mem
       "Error in specification: INVALID SUBSYSTEM USAGE\n\
        Counter example: open_a, a.test, a.open\n\
        Subsystems errors:\n\
       \  * Valve 'a': test, >open< (not final)"
       transcripts)

let test_paper_claim_failure () =
  let result = bad_result () in
  let claim_errors =
    List.filter_map
      (function
        | Report.Requirement_failure { formula; counterexample; _ } ->
          Some (formula, counterexample)
        | _ -> None)
      result.Pipeline.reports
  in
  match claim_errors with
  | [ (formula_text, counterexample) ] ->
    Alcotest.(check string) "formula text" "(!a.open) W b.open" formula_text;
    (* Our counterexample is length-minimal (the paper's NuSMV back end
       reported a longer one); verify it really violates the claim. *)
    let formula = Ltl_parser.parse formula_text in
    Alcotest.(check bool) "counterexample violates claim" false
      (Ltlf.holds formula counterexample);
    Alcotest.check trace "shortest violation" (tr [ "a.test"; "a.open" ]) counterexample
  | rs -> Alcotest.failf "expected exactly one claim failure, got %d" (List.length rs)

let test_good_sector_verifies () =
  let result = Pipeline.verify_source_exn (valve_source ^ good_sector_source) in
  let errors = Report.errors result.Pipeline.reports in
  if errors <> [] then
    Alcotest.failf "unexpected errors:\n%s"
      (String.concat "\n---\n" (List.map Report.to_string errors));
  Alcotest.(check bool) "verified" true (Pipeline.verified result)

let test_expanded_nfa_language () =
  let bad = extract bad_sector_source in
  let nfa = Usage.expanded_nfa bad in
  let ok names = Nfa.accepts nfa (tr names) in
  Alcotest.(check bool) "unused object" true (ok []);
  Alcotest.(check bool) "open_a clean path" true (ok [ "open_a"; "a.test"; "a.clean" ]);
  Alcotest.(check bool) "open_a then open_b full" true
    (ok [ "open_a"; "a.test"; "a.open"; "open_b"; "b.test"; "b.open"; "a.close"; "b.close" ]);
  Alcotest.(check bool) "cannot start with open_b" false (ok [ "open_b"; "b.test"; "b.clean" ]);
  Alcotest.(check bool) "body calls must match the op" false (ok [ "open_a"; "b.test" ])

let test_projection () =
  Alcotest.(check (list string)) "project a" [ "test"; "open" ]
    (Usage.project_subsystem ~field:"a" (tr [ "open_a"; "a.test"; "b.test"; "a.open" ]));
  Alcotest.(check (list string)) "project b" [ "test" ]
    (Usage.project_subsystem ~field:"b" (tr [ "open_a"; "a.test"; "b.test"; "a.open" ]))

let test_usage_missing_field () =
  let source =
    "@sys([\"ghost\"])\nclass C:\n    @op_initial_final\n    def go(self):\n        return []\n"
  in
  let result = Pipeline.verify_source_exn (valve_source ^ source) in
  Alcotest.(check bool) "missing field reported" true
    (has_error_containing result.Pipeline.reports "never assigned")

let test_usage_unknown_class () =
  let source =
    "@sys([\"x\"])\nclass C:\n\
    \    def __init__(self):\n\
    \        self.x = Mystery()\n\
    \    @op_initial_final\n\
    \    def go(self):\n\
    \        return []\n"
  in
  let result = Pipeline.verify_source_exn source in
  Alcotest.(check bool) "unknown class reported" true
    (has_error_containing result.Pipeline.reports "unknown class")

let test_usage_not_allowed_failure () =
  (* Calling open twice in a row: the second open is not allowed. *)
  let source =
    "@sys([\"a\"])\nclass Doubler:\n\
    \    def __init__(self):\n\
    \        self.a = Valve()\n\
    \    @op_initial_final\n\
    \    def slam(self):\n\
    \        self.a.test()\n\
    \        self.a.open()\n\
    \        self.a.open()\n\
    \        self.a.close()\n\
    \        return []\n"
  in
  let result = Pipeline.verify_source_exn (valve_source ^ source) in
  let failures =
    List.filter_map
      (function
        | Report.Invalid_subsystem_usage { failure; _ } -> Some failure
        | _ -> None)
      result.Pipeline.reports
  in
  Alcotest.(check bool) "not-allowed failure" true
    (List.exists
       (function
         | Report.Not_allowed "open" -> true
         | _ -> false)
       failures)

(* --- Claims ------------------------------------------------------------------------------ *)

let test_claim_on_good_sector_language () =
  let good = extract good_sector_source in
  let impl = Claims.subsystem_call_nfa good in
  let claim = Ltl_parser.parse "(!a.open) W b.open" in
  Alcotest.(check bool) "all bounded words satisfy" true
    (Ltl_check.holds_on_all_words ~max_len:6 claim impl)

let test_claim_vacuous_when_no_calls () =
  let source =
    "@claim(\"G false\")\n@sys([\"a\"])\nclass Silent:\n\
    \    def __init__(self):\n\
    \        self.a = Valve()\n\
    \    @op_initial_final\n\
    \    def nop(self):\n\
    \        return []\n"
  in
  let result = Pipeline.verify_source_exn (valve_source ^ source) in
  (* The only subsystem-call trace is empty, which satisfies G false
     vacuously — claims constrain calls, not operation entries. *)
  let claim_failures =
    List.filter
      (function
        | Report.Requirement_failure _ -> true
        | _ -> false)
      result.Pipeline.reports
  in
  Alcotest.(check int) "no claim failure" 0 (List.length claim_failures)

(* --- Invocation analysis ------------------------------------------------------------------ *)

let test_invocation_undefined_op () =
  let source =
    "@sys([\"a\"])\nclass C:\n\
    \    def __init__(self):\n\
    \        self.a = Valve()\n\
    \    @op_initial_final\n\
    \    def go(self):\n\
    \        self.a.explode()\n\
    \        return []\n"
  in
  let result = Pipeline.verify_source_exn (valve_source ^ source) in
  Alcotest.(check bool) "undefined op reported" true
    (has_error_containing result.Pipeline.reports "undefined operation 'a.explode'")

let test_invocation_nonexhaustive_match () =
  (* Only the ["open"] case of test() is handled; ["clean"] is missing. *)
  let source =
    "@sys([\"a\"])\nclass C:\n\
    \    def __init__(self):\n\
    \        self.a = Valve()\n\
    \    @op_initial_final\n\
    \    def go(self):\n\
    \        match self.a.test():\n\
    \            case [\"open\"]:\n\
    \                self.a.open()\n\
    \                self.a.close()\n\
    \                return []\n"
  in
  let result = Pipeline.verify_source_exn (valve_source ^ source) in
  Alcotest.(check bool) "non-exhaustive match reported" true
    (has_error_containing result.Pipeline.reports "non-exhaustive match")

let test_invocation_impossible_case () =
  let source =
    "@sys([\"a\"])\nclass C:\n\
    \    def __init__(self):\n\
    \        self.a = Valve()\n\
    \    @op_initial_final\n\
    \    def go(self):\n\
    \        match self.a.test():\n\
    \            case [\"open\"]:\n\
    \                self.a.open()\n\
    \                self.a.close()\n\
    \                return []\n\
    \            case [\"clean\"]:\n\
    \                self.a.clean()\n\
    \                return []\n\
    \            case [\"frobnicate\"]:\n\
    \                return []\n"
  in
  let result = Pipeline.verify_source_exn (valve_source ^ source) in
  Alcotest.(check bool) "impossible case warned" true
    (List.exists
       (fun r ->
         match r with
         | Report.Structural { message; severity = Report.Warning; _ } ->
           contains message "never returns"
         | _ -> false)
       result.Pipeline.reports)

let test_invocation_wildcard_covers () =
  let source =
    "@sys([\"a\"])\nclass C:\n\
    \    def __init__(self):\n\
    \        self.a = Valve()\n\
    \    @op_initial_final\n\
    \    def go(self):\n\
    \        match self.a.test():\n\
    \            case [\"open\"]:\n\
    \                self.a.open()\n\
    \                self.a.close()\n\
    \                return []\n\
    \            case _:\n\
    \                self.a.clean()\n\
    \                return []\n"
  in
  let result = Pipeline.verify_source_exn (valve_source ^ source) in
  Alcotest.(check bool) "no non-exhaustive error" false
    (has_error_containing result.Pipeline.reports "non-exhaustive")

(* --- Pipeline --------------------------------------------------------------------------- *)

let test_pipeline_parse_error () =
  let result = Pipeline.verify_source "class C:\n  def broken(self)\n    return []\n" in
  Alcotest.(check bool) "has a syntax-error report" true
    (List.exists Report.is_syntax_error result.Pipeline.reports);
  Alcotest.(check bool) "not verified" false (Pipeline.verified result);
  match List.find Report.is_syntax_error result.Pipeline.reports with
  | Report.Syntax_error { line; _ } -> Alcotest.(check int) "error line" 2 line
  | _ -> assert false

let test_pipeline_models_in_order () =
  let result = bad_result () in
  Alcotest.(check (list string)) "source order" [ "Valve"; "BadSector" ]
    (List.map (fun (m : Model.t) -> m.Model.name) result.Pipeline.models)

let test_pipeline_env_lookup () =
  let result = bad_result () in
  Alcotest.(check bool) "finds Valve" true (Pipeline.find_model result "Valve" <> None);
  Alcotest.(check bool) "misses unknown" true (Pipeline.find_model result "Nope" = None)

let test_valve_alone_verifies () =
  let result = Pipeline.verify_source_exn valve_source in
  Alcotest.(check bool) "clean" true (Pipeline.verified result)

let () =
  Alcotest.run "core"
    [
      ( "annotations",
        [
          Alcotest.test_case "table rows" `Quick test_annotation_table_rows;
          Alcotest.test_case "classify method" `Quick test_classify_method;
          Alcotest.test_case "kind predicates" `Quick test_kind_predicates;
        ] );
      ( "extract",
        [
          Alcotest.test_case "valve shape" `Quick test_extract_valve_shape;
          Alcotest.test_case "valve exits" `Quick test_extract_valve_exits;
          Alcotest.test_case "valve behaviors" `Quick test_extract_valve_behaviors;
          Alcotest.test_case "subsystem fields" `Quick test_extract_subsystem_fields;
          Alcotest.test_case "claims parsed" `Quick test_extract_claims_parsed;
          Alcotest.test_case "bad claim reported" `Quick test_extract_bad_claim_reported;
          Alcotest.test_case "implicit exit" `Quick test_extract_implicit_exit;
          Alcotest.test_case "exit behaviors of marked" `Quick test_exit_behaviors_of_marked;
        ] );
      ( "depgraph",
        [
          Alcotest.test_case "listing 3.1 graph" `Quick test_depgraph_listing31;
          Alcotest.test_case "valve usage NFA" `Quick test_usage_nfa_valve;
          Alcotest.test_case "shortest usage" `Quick test_usage_nfa_shortest_traces;
          Alcotest.test_case "reachability" `Quick test_reachability_helpers;
        ] );
      ( "validate",
        [
          Alcotest.test_case "valve clean" `Quick test_validate_valve_clean;
          Alcotest.test_case "missing initial" `Quick test_validate_missing_initial;
          Alcotest.test_case "unknown next" `Quick test_validate_unknown_next;
          Alcotest.test_case "dead end" `Quick test_validate_dead_end;
          Alcotest.test_case "unreachable" `Quick test_validate_unreachable;
        ] );
      ( "usage",
        [
          Alcotest.test_case "paper: invalid subsystem usage" `Quick
            test_paper_invalid_subsystem_usage;
          Alcotest.test_case "paper: transcript verbatim" `Quick test_paper_transcript_verbatim;
          Alcotest.test_case "paper: claim failure" `Quick test_paper_claim_failure;
          Alcotest.test_case "good sector verifies" `Quick test_good_sector_verifies;
          Alcotest.test_case "expanded NFA language" `Quick test_expanded_nfa_language;
          Alcotest.test_case "projection" `Quick test_projection;
          Alcotest.test_case "missing field" `Quick test_usage_missing_field;
          Alcotest.test_case "unknown class" `Quick test_usage_unknown_class;
          Alcotest.test_case "not-allowed failure" `Quick test_usage_not_allowed_failure;
        ] );
      ( "claims",
        [
          Alcotest.test_case "good sector language" `Quick test_claim_on_good_sector_language;
          Alcotest.test_case "vacuous claim" `Quick test_claim_vacuous_when_no_calls;
        ] );
      ( "invocation",
        [
          Alcotest.test_case "undefined op" `Quick test_invocation_undefined_op;
          Alcotest.test_case "non-exhaustive match" `Quick test_invocation_nonexhaustive_match;
          Alcotest.test_case "impossible case" `Quick test_invocation_impossible_case;
          Alcotest.test_case "wildcard covers" `Quick test_invocation_wildcard_covers;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "parse error" `Quick test_pipeline_parse_error;
          Alcotest.test_case "models in order" `Quick test_pipeline_models_in_order;
          Alcotest.test_case "env lookup" `Quick test_pipeline_env_lookup;
          Alcotest.test_case "valve alone verifies" `Quick test_valve_alone_verifies;
        ] );
    ]
