(* Tests for the reporting layer: Stats metrics, Explain narration, Report
   formatting corners, and the per-operation DOT rendering. *)

open Testutil

let valve_source =
  {|
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)

    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        self.control.on()
        return ["close"]

    @op_final
    def close(self):
        self.control.off()
        return ["test"]

    @op_final
    def clean(self):
        self.clean.on()
        return ["test"]
|}

let bad_sector_source =
  {|
@claim("(!a.open) W b.open")
@sys(["a", "b"])
class BadSector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def open_a(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                return ["open_b"]
            case ["clean"]:
                self.a.clean()
                return []

    @op_final
    def open_b(self):
        match self.b.test():
            case ["open"]:
                self.b.open()
                self.a.close()
                self.b.close()
                return []
            case ["clean"]:
                self.b.clean()
                self.a.close()
                return []
|}

let extract source =
  (Extract.extract_class (Mpy_parser.parse_class source)).Extract.model

let valve = extract valve_source
let bad_sector = extract bad_sector_source

(* --- Stats ----------------------------------------------------------------------- *)

let test_stats_valve () =
  let s = Stats.of_model valve in
  Alcotest.(check string) "name" "Valve" s.Stats.class_name;
  Alcotest.(check int) "ops" 4 s.Stats.operations;
  Alcotest.(check int) "exits" 5 s.Stats.exit_points;
  Alcotest.(check int) "subsystems" 0 s.Stats.subsystems;
  Alcotest.(check int) "usage states: start + exits" 6 s.Stats.usage_states;
  Alcotest.(check bool) "min DFA no bigger" true
    (s.Stats.usage_min_dfa_states <= s.Stats.usage_states + 1);
  Alcotest.(check bool) "some usages" true (s.Stats.usages_upto_6 > 0)

let test_stats_composite () =
  let s = Stats.of_model bad_sector in
  Alcotest.(check int) "subsystems" 2 s.Stats.subsystems;
  Alcotest.(check int) "claims" 1 s.Stats.claims;
  Alcotest.(check bool) "expanded bigger than usage" true
    (s.Stats.expanded_states > s.Stats.usage_states)

let test_stats_row_alignment () =
  let row = Format.asprintf "%a" Stats.pp_row (Stats.of_model valve) in
  Alcotest.(check bool) "header and row same arity" true
    (String.length Stats.header > 0 && String.length row > 0)

(* --- Explain ----------------------------------------------------------------------- *)

let usage_error () =
  let result = Pipeline.verify_source_exn (valve_source ^ bad_sector_source) in
  let report =
    List.find
      (function
        | Report.Invalid_subsystem_usage _ -> true
        | _ -> false)
      result.Pipeline.reports
  in
  (Option.get (Pipeline.find_model result "BadSector"), report)

let test_explain_segments () =
  let model, report = usage_error () in
  match Explain.of_report ~model report with
  | None -> Alcotest.fail "expected an explanation"
  | Some e ->
    Alcotest.(check int) "one step" 1 (List.length e.Explain.steps);
    let step = List.hd e.Explain.steps in
    Alcotest.(check string) "op" "open_a" step.Explain.op;
    Alcotest.(check bool) "line recorded" true (step.Explain.op_line > 0);
    Alcotest.(check (list string)) "calls" [ "a.test"; "a.open" ]
      (List.map Symbol.name step.Explain.calls);
    Alcotest.(check (list string)) "observed" [ "test"; "open" ] e.Explain.observed

let test_explain_narration_shape () =
  let model, report = usage_error () in
  let e = Option.get (Explain.of_report ~model report) in
  let text = Format.asprintf "%a" Explain.pp e in
  List.iter
    (fun fragment -> Alcotest.(check bool) fragment true (contains text fragment))
    [ "1. open_a"; "calls: a.test, a.open"; "Valve 'a' observed: test, open"; "not a final" ]

let test_explain_other_reports_ignored () =
  let model, _ = usage_error () in
  let other = Report.structural Report.Warning ~class_name:"BadSector" "whatever" in
  Alcotest.(check bool) "structural not explained" true
    (Explain.of_report ~model other = None);
  let claim =
    Report.Requirement_failure
      { class_name = "BadSector"; formula = "x"; counterexample = [] }
  in
  Alcotest.(check bool) "claim not explained" true (Explain.of_report ~model claim = None)

let test_explain_multi_step () =
  (* A two-operation counterexample segments into two steps. *)
  let e =
    Explain.of_usage_error ~model:bad_sector ~field:"b" ~subsystem_class:"Valve"
      ~counterexample:
        (tr [ "open_a"; "a.test"; "a.open"; "open_b"; "b.test"; "b.open" ])
      ~failure:(Report.Not_final "open")
  in
  Alcotest.(check int) "two steps" 2 (List.length e.Explain.steps);
  Alcotest.(check (list string)) "second step calls" [ "b.test"; "b.open" ]
    (List.map Symbol.name (List.nth e.Explain.steps 1).Explain.calls);
  Alcotest.(check (list string)) "b's view" [ "test"; "open" ] e.Explain.observed

(* --- Report formatting corners -------------------------------------------------------- *)

let test_report_not_allowed_note () =
  let report =
    Report.Invalid_subsystem_usage
      {
        class_name = "C";
        field = "v";
        subsystem_class = "Valve";
        counterexample = tr [ "go"; "v.open" ];
        projected = [ "open" ];
        failure = Report.Not_allowed "open";
      }
  in
  Alcotest.(check bool) "note text" true
    (contains (Report.to_string report) ">open< (not allowed here)")

let test_report_severity_partition () =
  let reports =
    [
      Report.structural Report.Warning ~class_name:"C" "w";
      Report.structural Report.Error ~class_name:"C" "e";
      Report.structural Report.Info ~class_name:"C" "i";
    ]
  in
  Alcotest.(check int) "one error" 1 (List.length (Report.errors reports))

let test_report_structural_line () =
  let r = Report.structural ~line:42 Report.Error ~class_name:"C" "boom" in
  Alcotest.(check bool) "line shown" true (contains (Report.to_string r) "(line 42)");
  Alcotest.(check string) "class name" "C" (Report.class_name r)

(* --- Per-operation DOT ----------------------------------------------------------------- *)

let test_dot_of_operation () =
  let test_op = Option.get (Model.find_op valve "test") in
  let dot = Dot.of_operation test_op in
  List.iter
    (fun fragment -> Alcotest.(check bool) fragment true (contains dot fragment))
    [ "digraph test"; "status.value"; "exit 0 [open]"; "exit 1 [clean]"; "doublecircle" ]

let test_dot_of_operation_implicit () =
  let source =
    "@sys\nclass C:\n    @op_initial_final\n    def go(self):\n        self.p.fire()\n"
  in
  let model = extract source in
  let op = Option.get (Model.find_op model "go") in
  let dot = Dot.of_operation op in
  Alcotest.(check bool) "implicit exit labeled" true (contains dot "exit 0 []")

let () =
  Alcotest.run "reporting"
    [
      ( "stats",
        [
          Alcotest.test_case "valve" `Quick test_stats_valve;
          Alcotest.test_case "composite" `Quick test_stats_composite;
          Alcotest.test_case "row" `Quick test_stats_row_alignment;
        ] );
      ( "explain",
        [
          Alcotest.test_case "segments" `Quick test_explain_segments;
          Alcotest.test_case "narration shape" `Quick test_explain_narration_shape;
          Alcotest.test_case "other reports ignored" `Quick test_explain_other_reports_ignored;
          Alcotest.test_case "multi step" `Quick test_explain_multi_step;
        ] );
      ( "report",
        [
          Alcotest.test_case "not-allowed note" `Quick test_report_not_allowed_note;
          Alcotest.test_case "severity partition" `Quick test_report_severity_partition;
          Alcotest.test_case "structural line" `Quick test_report_structural_line;
        ] );
      ( "dot-operation",
        [
          Alcotest.test_case "explicit exits" `Quick test_dot_of_operation;
          Alcotest.test_case "implicit exit" `Quick test_dot_of_operation_implicit;
        ] );
    ]
