# One syntactically broken class followed by a valid one: the tolerant
# parser must keep Probe and report the fault in Broken.
class Broken:
    def m(self)
        return []

@sys
class Probe:
    @op_initial_final
    def ping(self):
        return []
