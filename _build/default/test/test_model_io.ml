(* S-expression layer and model persistence round-trips. *)

open Testutil

(* --- Sexp_lite --------------------------------------------------------------- *)

let sexp = Alcotest.testable (Fmt.of_to_string Sexp_lite.to_string) ( = )

let test_sexp_atoms () =
  Alcotest.check sexp "bare" (Sexp_lite.atom "hello") (Sexp_lite.parse "hello");
  Alcotest.check sexp "quoted" (Sexp_lite.atom "two words") (Sexp_lite.parse "\"two words\"");
  Alcotest.check sexp "escapes"
    (Sexp_lite.atom "a\"b\\c\nd")
    (Sexp_lite.parse "\"a\\\"b\\\\c\\nd\"")

let test_sexp_lists () =
  Alcotest.check sexp "nested"
    (Sexp_lite.list
       [ Sexp_lite.atom "a"; Sexp_lite.list [ Sexp_lite.atom "b"; Sexp_lite.atom "c" ] ])
    (Sexp_lite.parse "(a (b c))");
  Alcotest.check sexp "empty" (Sexp_lite.list []) (Sexp_lite.parse "()")

let test_sexp_comments_and_space () =
  Alcotest.check sexp "comments"
    (Sexp_lite.list [ Sexp_lite.atom "a" ])
    (Sexp_lite.parse "; header\n ( a ; trailing\n )\n")

let test_sexp_errors () =
  List.iter
    (fun bad ->
      match Sexp_lite.parse bad with
      | _ -> Alcotest.failf "expected failure on %S" bad
      | exception Sexp_lite.Parse_error _ -> ())
    [ ""; "("; ")"; "(a))"; "\"unterminated"; "a b" ]

let test_sexp_roundtrip () =
  let value =
    Sexp_lite.list
      [
        Sexp_lite.atom "model";
        Sexp_lite.list [ Sexp_lite.atom "name"; Sexp_lite.atom "weird (name)" ];
        Sexp_lite.list [ Sexp_lite.atom "empty"; Sexp_lite.atom "" ];
        Sexp_lite.list [];
      ]
  in
  Alcotest.check sexp "compact" value (Sexp_lite.parse (Sexp_lite.to_string value));
  Alcotest.check sexp "pretty" value (Sexp_lite.parse (Sexp_lite.to_string_pretty value))

let test_sexp_fields () =
  let record = Sexp_lite.parse "(r (name x) (items a b c) (one (pair u v)))" in
  Alcotest.(check (option string)) "atom field" (Some "x")
    (Sexp_lite.field_atom "name" record);
  Alcotest.(check (option int)) "list field arity" (Some 3)
    (Option.map List.length (Sexp_lite.field "items" record));
  Alcotest.(check bool) "one field" true (Sexp_lite.field_one "one" record <> None);
  Alcotest.(check (option string)) "missing" None (Sexp_lite.field_atom "nope" record)

(* --- Model round-trips --------------------------------------------------------- *)

let valve_source =
  {|
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)

    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        self.control.on()
        return ["close"]

    @op_final
    def close(self):
        self.control.off()
        return ["test"]

    @op_final
    def clean(self):
        self.clean.on()
        return ["test"]
|}

let bad_sector_source =
  {|
@claim("(!a.open) W b.open")
@sys(["a", "b"])
class BadSector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def open_a(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                return ["open_b"]
            case ["clean"]:
                self.a.clean()
                return []

    @op_final
    def open_b(self):
        match self.b.test():
            case ["open"]:
                self.b.open()
                self.a.close()
                self.b.close()
                return []
            case ["clean"]:
                self.b.clean()
                self.a.close()
                return []
|}

let extract source =
  (Extract.extract_class (Mpy_parser.parse_class source)).Extract.model

let valve = extract valve_source
let bad_sector = extract bad_sector_source

let roundtrip model =
  match Model_io.of_string (Model_io.to_string model) with
  | Ok m -> m
  | Error msg -> Alcotest.failf "round-trip failed: %s" msg

let test_model_metadata_roundtrip () =
  let m = roundtrip bad_sector in
  Alcotest.(check string) "name" "BadSector" m.Model.name;
  Alcotest.(check bool) "kind" true (m.Model.kind = `Composite);
  Alcotest.(check (list string)) "subsystems" [ "a"; "b" ] m.Model.declared_subsystems;
  Alcotest.(check (list (pair string string))) "fields"
    [ ("a", "Valve"); ("b", "Valve") ]
    m.Model.subsystem_fields;
  Alcotest.(check (list string)) "claims" [ "(!a.open) W b.open" ]
    (List.map fst m.Model.claims);
  Alcotest.(check (list string)) "ops" [ "open_a"; "open_b" ] (Model.op_names m)

let test_model_exits_roundtrip () =
  let m = roundtrip valve in
  let original = Option.get (Model.find_op valve "test") in
  let loaded = Option.get (Model.find_op m "test") in
  List.iter2
    (fun (a : Model.exit_point) (b : Model.exit_point) ->
      Alcotest.(check int) "exit id" a.Model.exit_id b.Model.exit_id;
      Alcotest.(check (list string)) "next" a.Model.next_ops b.Model.next_ops;
      Alcotest.(check bool) "behavior language preserved" true
        (Equiv.equivalent a.Model.behavior b.Model.behavior))
    original.Model.exits loaded.Model.exits

let test_model_usage_language_preserved () =
  let m = roundtrip valve in
  Alcotest.(check bool) "usage automata equivalent" true
    (Language.equivalent (Depgraph.usage_nfa valve) (Depgraph.usage_nfa m))

let test_model_expanded_language_preserved () =
  let m = roundtrip bad_sector in
  Alcotest.(check bool) "expanded automata equivalent" true
    (Language.equivalent (Usage.expanded_nfa bad_sector) (Usage.expanded_nfa m))

let test_model_verification_from_loaded () =
  (* Verify BadSector against a *loaded* Valve model: separate verification. *)
  let valve' = roundtrip valve in
  let env name = if String.equal name "Valve" then Some valve' else None in
  let reports = Usage.check ~env bad_sector in
  Alcotest.(check bool) "same error found" true
    (List.exists
       (function
         | Report.Invalid_subsystem_usage { counterexample; _ } ->
           Trace.equal counterexample (tr [ "open_a"; "a.test"; "a.open" ])
         | _ -> false)
       reports)

let test_model_save_load_file () =
  let path = Filename.temp_file "shelley_model" ".shelley" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Model_io.save ~path valve;
      match Model_io.load ~path with
      | Ok m -> Alcotest.(check string) "loaded" "Valve" m.Model.name
      | Error msg -> Alcotest.failf "load failed: %s" msg)

let test_env_of_files () =
  let p1 = Filename.temp_file "valve" ".shelley" in
  let p2 = Filename.temp_file "sector" ".shelley" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove p1;
      Sys.remove p2)
    (fun () ->
      Model_io.save ~path:p1 valve;
      Model_io.save ~path:p2 bad_sector;
      match Model_io.env_of_files [ p1; p2 ] with
      | Ok env ->
        Alcotest.(check bool) "valve found" true (env "Valve" <> None);
        Alcotest.(check bool) "sector found" true (env "BadSector" <> None);
        Alcotest.(check bool) "unknown absent" true (env "Nope" = None)
      | Error msg -> Alcotest.failf "env_of_files failed: %s" msg)

let test_model_io_rejects_garbage () =
  List.iter
    (fun bad ->
      match Model_io.of_string bad with
      | Ok _ -> Alcotest.failf "expected failure on %S" bad
      | Error _ -> ())
    [
      "";
      "(not-a-model)";
      "(model (name X))";
      "(model (name X) (line z) (kind base) (declared-subsystems) (subsystem-fields) (claims) (operations))";
    ]

let () =
  Alcotest.run "model-io"
    [
      ( "sexp",
        [
          Alcotest.test_case "atoms" `Quick test_sexp_atoms;
          Alcotest.test_case "lists" `Quick test_sexp_lists;
          Alcotest.test_case "comments" `Quick test_sexp_comments_and_space;
          Alcotest.test_case "errors" `Quick test_sexp_errors;
          Alcotest.test_case "round-trip" `Quick test_sexp_roundtrip;
          Alcotest.test_case "field helpers" `Quick test_sexp_fields;
        ] );
      ( "model",
        [
          Alcotest.test_case "metadata round-trip" `Quick test_model_metadata_roundtrip;
          Alcotest.test_case "exits round-trip" `Quick test_model_exits_roundtrip;
          Alcotest.test_case "usage language preserved" `Quick
            test_model_usage_language_preserved;
          Alcotest.test_case "expanded language preserved" `Quick
            test_model_expanded_language_preserved;
          Alcotest.test_case "separate verification" `Quick test_model_verification_from_loaded;
          Alcotest.test_case "save/load file" `Quick test_model_save_load_file;
          Alcotest.test_case "env of files" `Quick test_env_of_files;
          Alcotest.test_case "rejects garbage" `Quick test_model_io_rejects_garbage;
        ] );
    ]
