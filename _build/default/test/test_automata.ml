open Testutil

let a = Regex.sym_of_name "a"
let b = Regex.sym_of_name "b"
let c = Regex.sym_of_name "c"
let ab_star = Regex.star (Regex.seq a b)
let paper_regex = Infer.infer Ir_examples.paper_loop

(* --- NFA basics -------------------------------------------------------------- *)

let test_nfa_symbol () =
  let nfa = Nfa.symbol (sym "a") in
  Alcotest.(check bool) "accepts a" true (Nfa.accepts nfa (tr [ "a" ]));
  Alcotest.(check bool) "rejects empty" false (Nfa.accepts nfa []);
  Alcotest.(check bool) "rejects aa" false (Nfa.accepts nfa (tr [ "a"; "a" ]))

let test_nfa_eps_closure () =
  let nfa =
    Nfa.create ~num_states:4 ~start:[ 0 ] ~accept:[ 3 ]
      ~transitions:[ (1, sym "a", 2) ]
      ~epsilons:[ (0, 1); (2, 3) ]
      ()
  in
  Alcotest.(check bool) "accepts via eps" true (Nfa.accepts nfa (tr [ "a" ]));
  Alcotest.(check int) "closure of start" 2
    (States.Set.cardinal (Nfa.initial_config nfa))

let test_nfa_eps_cycle () =
  (* ε-cycles must not loop the closure computation. *)
  let nfa =
    Nfa.create ~num_states:3 ~start:[ 0 ] ~accept:[ 2 ]
      ~transitions:[ (1, sym "a", 2) ]
      ~epsilons:[ (0, 1); (1, 0) ]
      ()
  in
  Alcotest.(check bool) "accepts" true (Nfa.accepts nfa (tr [ "a" ]))

let test_nfa_union () =
  let nfa = Nfa.union (Nfa.symbol (sym "a")) (Nfa.symbol (sym "b")) in
  Alcotest.(check bool) "a" true (Nfa.accepts nfa (tr [ "a" ]));
  Alcotest.(check bool) "b" true (Nfa.accepts nfa (tr [ "b" ]));
  Alcotest.(check bool) "ab" false (Nfa.accepts nfa (tr [ "a"; "b" ]))

let test_nfa_concat () =
  let nfa = Nfa.concat (Nfa.symbol (sym "a")) (Nfa.symbol (sym "b")) in
  Alcotest.(check bool) "ab" true (Nfa.accepts nfa (tr [ "a"; "b" ]));
  Alcotest.(check bool) "a" false (Nfa.accepts nfa (tr [ "a" ]))

let test_nfa_star () =
  let nfa = Nfa.star (Nfa.symbol (sym "a")) in
  Alcotest.(check bool) "empty" true (Nfa.accepts nfa []);
  Alcotest.(check bool) "aaa" true (Nfa.accepts nfa (tr [ "a"; "a"; "a" ]))

let test_nfa_shortest () =
  let nfa = Thompson.of_regex (Regex.seq (Regex.star a) (Regex.seq b c)) in
  Alcotest.(check (option trace)) "bc" (Some (tr [ "b"; "c" ])) (Nfa.shortest_accepted nfa)

let test_nfa_shortest_with_states () =
  let nfa = Thompson.of_regex (Regex.seq a b) in
  match Nfa.shortest_accepted_with_states nfa with
  | None -> Alcotest.fail "expected a witness"
  | Some (trace_found, path) ->
    Alcotest.check trace "trace" (tr [ "a"; "b" ]) trace_found;
    Alcotest.(check int) "path length = trace length + 1" 3 (List.length path)

let test_nfa_map_symbols_projection () =
  (* Erase b: language of (ab)* projects to a*. *)
  let nfa = Thompson.of_regex ab_star in
  let projected =
    Nfa.map_symbols (fun s -> if Symbol.equal s (sym "a") then Some s else None) nfa
  in
  Alcotest.(check bool) "aa accepted" true (Nfa.accepts projected (tr [ "a"; "a" ]));
  Alcotest.(check bool) "b gone" false (Nfa.accepts projected (tr [ "b" ]))

let test_nfa_self_loops () =
  let nfa = Nfa.add_self_loops (Symbol.Set.singleton (sym "x")) (Nfa.symbol (sym "a")) in
  Alcotest.(check bool) "xax accepted" true (Nfa.accepts nfa (tr [ "x"; "a"; "x" ]));
  Alcotest.(check bool) "bare x rejected" false (Nfa.accepts nfa (tr [ "x" ]))

let test_nfa_trim () =
  let nfa =
    Nfa.create ~num_states:5 ~start:[ 0 ] ~accept:[ 2 ]
      ~transitions:[ (0, sym "a", 2); (0, sym "a", 3); (4, sym "b", 2) ]
      ()
  in
  let trimmed = Nfa.trim nfa in
  (* States 1 (isolated), 3 (dead end), 4 (unreachable) disappear. *)
  Alcotest.(check int) "two live states" 2 (Nfa.num_states trimmed);
  Alcotest.(check bool) "language preserved" true (Nfa.accepts trimmed (tr [ "a" ]))

let test_nfa_trim_empty () =
  let nfa = Nfa.create ~num_states:3 ~start:[ 0 ] ~accept:[] ~transitions:[] () in
  Alcotest.(check bool) "empty language" true (Nfa.is_empty (Nfa.trim nfa))

let test_nfa_reverse () =
  let nfa = Thompson.of_regex (Regex.seq a b) in
  Alcotest.(check bool) "reverse accepts ba" true (Nfa.accepts (Nfa.reverse nfa) (tr [ "b"; "a" ]))

(* --- Constructions agree ------------------------------------------------------ *)

let constructions_agree r =
  let thompson = Thompson.of_regex r in
  let glushkov = Glushkov.of_regex r in
  let words = Enumerate.words_upto ~max_len:4 r in
  let words_t = Nfa.words_upto ~max_len:4 thompson in
  let words_g = Nfa.words_upto ~max_len:4 glushkov in
  Trace.Set.equal words words_t && Trace.Set.equal words words_g

let test_constructions_on_paper_regex () =
  Alcotest.(check bool) "paper loop regex" true (constructions_agree paper_regex)

let test_glushkov_eps_free () =
  let nfa = Glushkov.of_regex (Regex.star (Regex.alt a (Regex.seq b c))) in
  Alcotest.(check int) "no epsilons" 0 (List.length (Nfa.epsilons nfa))

let prop_constructions_agree =
  qtest "thompson & glushkov match enumeration" ~count:100 default_regex_gen
    ~print:regex_print constructions_agree

(* --- Determinization / DFA ----------------------------------------------------- *)

let dfa_of r = Determinize.determinize (Thompson.of_regex r)

let test_determinize_preserves () =
  let dfa = dfa_of ab_star in
  Alcotest.(check bool) "abab" true (Dfa.accepts dfa (tr [ "a"; "b"; "a"; "b" ]));
  Alcotest.(check bool) "empty" true (Dfa.accepts dfa []);
  Alcotest.(check bool) "aba" false (Dfa.accepts dfa (tr [ "a"; "b"; "a" ]))

let test_determinize_explicit_alphabet () =
  let dfa = Determinize.determinize ~alphabet:[ sym "a"; sym "b"; sym "z" ] (Nfa.symbol (sym "a")) in
  Alcotest.(check bool) "z rejected not error" false (Dfa.accepts dfa (tr [ "z" ]))

let test_dfa_complement () =
  let dfa = Dfa.complement (dfa_of ab_star) in
  Alcotest.(check bool) "empty now rejected" false (Dfa.accepts dfa []);
  Alcotest.(check bool) "aba accepted" true (Dfa.accepts dfa (tr [ "a"; "b"; "a" ]))

let test_dfa_product_ops () =
  let d1 = dfa_of (Regex.star (Regex.alt a b)) in
  let d2 =
    Determinize.determinize ~alphabet:[ sym "a"; sym "b" ] (Thompson.of_regex (Regex.star a))
  in
  let inter = Dfa.intersect d1 d2 in
  Alcotest.(check bool) "aa in both" true (Dfa.accepts inter (tr [ "a"; "a" ]));
  Alcotest.(check bool) "ab only in first" false (Dfa.accepts inter (tr [ "a"; "b" ]));
  let diff = Dfa.difference d1 d2 in
  Alcotest.(check bool) "ab in difference" true (Dfa.accepts diff (tr [ "a"; "b" ]));
  Alcotest.(check bool) "aa not in difference" false (Dfa.accepts diff (tr [ "a"; "a" ]))

let test_dfa_alphabet_mismatch_rejected () =
  let d1 = dfa_of a in
  let d2 = dfa_of b in
  Alcotest.check_raises "different alphabets"
    (Invalid_argument "Dfa: boolean operation on different alphabets") (fun () ->
      ignore (Dfa.intersect d1 d2))

let test_dfa_shortest_counterexample () =
  let impl = dfa_of (Regex.star (Regex.alt a b)) in
  let spec =
    Determinize.determinize ~alphabet:[ sym "a"; sym "b" ] (Thompson.of_regex (Regex.star a))
  in
  Alcotest.(check (option trace)) "shortest divergence" (Some (tr [ "b" ]))
    (Dfa.counterexample_inclusion impl spec)

let test_dfa_restrict_alphabet () =
  let dfa = dfa_of a in
  let wider = Dfa.restrict_alphabet ~alphabet:[ sym "a"; sym "q" ] dfa in
  Alcotest.(check bool) "a still accepted" true (Dfa.accepts wider (tr [ "a" ]));
  Alcotest.(check bool) "q rejected" false (Dfa.accepts wider (tr [ "q" ]))

(* --- Minimization --------------------------------------------------------------- *)

let test_minimize_paper_regex () =
  let dfa = dfa_of paper_regex in
  let min_h = Minimize.minimize_hopcroft dfa in
  let min_m = Minimize.minimize_moore dfa in
  Alcotest.(check bool) "equivalent to source" true (Dfa.equivalent dfa min_h);
  Alcotest.(check bool) "hopcroft = moore (isomorphic)" true (Minimize.isomorphic min_h min_m);
  Alcotest.(check bool) "no bigger than source" true
    (Dfa.num_states min_h <= States.Set.cardinal (Dfa.reachable_states dfa))

let test_minimize_collapses () =
  (* a + b over {a, b}: minimal DFA has 3 states (start, accept, sink). *)
  let dfa = dfa_of (Regex.alt a b) in
  let minimized = Minimize.minimize dfa in
  Alcotest.(check int) "three states" 3 (Dfa.num_states minimized)

let prop_minimizers_agree =
  qtest "hopcroft and moore give isomorphic DFAs" ~count:80 default_regex_gen
    ~print:regex_print (fun r ->
      let dfa = dfa_of r in
      let h = Minimize.minimize_hopcroft dfa in
      let m = Minimize.minimize_moore dfa in
      Minimize.isomorphic h m && Dfa.equivalent h dfa)

let prop_minimize_idempotent =
  qtest "minimize is idempotent" ~count:80 default_regex_gen ~print:regex_print
    (fun r ->
      let m = Minimize.minimize (dfa_of r) in
      Dfa.num_states (Minimize.minimize m) = Dfa.num_states m)

(* --- State elimination (round-trip) -------------------------------------------- *)

let test_state_elim_roundtrip_paper () =
  let nfa = Thompson.of_regex paper_regex in
  let back = State_elim.to_regex nfa in
  Alcotest.(check bool) "round-trip equivalent" true (Equiv.equivalent paper_regex back)

let prop_state_elim_roundtrip =
  qtest "regex -> NFA -> regex preserves language" ~count:60 default_regex_gen
    ~print:regex_print (fun r ->
      Equiv.equivalent r (State_elim.to_regex (Thompson.of_regex r)))

(* --- Language-level checks ------------------------------------------------------- *)

let test_language_inclusion () =
  let impl = Thompson.of_regex (Regex.star (Regex.seq a b)) in
  let spec = Thompson.of_regex (Regex.star (Regex.alt a b)) in
  Alcotest.(check bool) "(ab)* ⊆ (a+b)*" true (Language.included ~impl ~spec ());
  Alcotest.(check (option trace)) "reverse direction fails on shortest"
    (Some (tr [ "a" ]))
    (Language.inclusion_counterexample ~impl:spec ~spec:impl ())

let test_language_equivalence () =
  let n1 = Thompson.of_regex (Regex.alt a (Regex.seq a b)) in
  let n2 = Thompson.of_regex (Regex.seq a (Regex.opt b)) in
  Alcotest.(check bool) "factored form equivalent" true (Language.equivalent n1 n2)

let test_language_intersect () =
  let n1 = Thompson.of_regex (Regex.star (Regex.alt a b)) in
  let n2 = Thompson.of_regex (Regex.seq a (Regex.star b)) in
  let inter = Language.intersect n1 n2 in
  Alcotest.(check bool) "abb" true (Nfa.accepts inter (tr [ "a"; "b"; "b" ]));
  Alcotest.(check bool) "ba" false (Nfa.accepts inter (tr [ "b"; "a" ]));
  Alcotest.(check int) "no epsilons" 0 (List.length (Nfa.epsilons inter))

let prop_language_counterexample_valid =
  qtest "inclusion counterexample is real" ~count:80
    QCheck2.Gen.(pair default_regex_gen default_regex_gen)
    ~print:(fun (r1, r2) -> regex_print r1 ^ " vs " ^ regex_print r2)
    (fun (r1, r2) ->
      let impl = Thompson.of_regex r1 in
      let spec = Thompson.of_regex r2 in
      match Language.inclusion_counterexample ~impl ~spec () with
      | None -> Equiv.included r1 r2
      | Some w -> Deriv.matches r1 w && not (Deriv.matches r2 w))

let prop_dfa_nfa_agree =
  qtest "DFA and NFA accept the same bounded language" ~count:80 default_regex_gen
    ~print:regex_print (fun r ->
      let nfa = Thompson.of_regex r in
      let dfa = Determinize.determinize nfa in
      Trace.Set.equal (Nfa.words_upto ~max_len:4 nfa) (Dfa.words_upto ~max_len:4 dfa))

let () =
  Alcotest.run "automata"
    [
      ( "nfa",
        [
          Alcotest.test_case "symbol" `Quick test_nfa_symbol;
          Alcotest.test_case "eps closure" `Quick test_nfa_eps_closure;
          Alcotest.test_case "eps cycle" `Quick test_nfa_eps_cycle;
          Alcotest.test_case "union" `Quick test_nfa_union;
          Alcotest.test_case "concat" `Quick test_nfa_concat;
          Alcotest.test_case "star" `Quick test_nfa_star;
          Alcotest.test_case "shortest accepted" `Quick test_nfa_shortest;
          Alcotest.test_case "shortest with states" `Quick test_nfa_shortest_with_states;
          Alcotest.test_case "projection" `Quick test_nfa_map_symbols_projection;
          Alcotest.test_case "self loops" `Quick test_nfa_self_loops;
          Alcotest.test_case "trim" `Quick test_nfa_trim;
          Alcotest.test_case "trim empty" `Quick test_nfa_trim_empty;
          Alcotest.test_case "reverse" `Quick test_nfa_reverse;
        ] );
      ( "constructions",
        [
          Alcotest.test_case "paper regex" `Quick test_constructions_on_paper_regex;
          Alcotest.test_case "glushkov eps-free" `Quick test_glushkov_eps_free;
          prop_constructions_agree;
        ] );
      ( "dfa",
        [
          Alcotest.test_case "determinize preserves" `Quick test_determinize_preserves;
          Alcotest.test_case "explicit alphabet" `Quick test_determinize_explicit_alphabet;
          Alcotest.test_case "complement" `Quick test_dfa_complement;
          Alcotest.test_case "product ops" `Quick test_dfa_product_ops;
          Alcotest.test_case "alphabet mismatch" `Quick test_dfa_alphabet_mismatch_rejected;
          Alcotest.test_case "shortest counterexample" `Quick test_dfa_shortest_counterexample;
          Alcotest.test_case "restrict alphabet" `Quick test_dfa_restrict_alphabet;
          prop_dfa_nfa_agree;
        ] );
      ( "minimize",
        [
          Alcotest.test_case "paper regex" `Quick test_minimize_paper_regex;
          Alcotest.test_case "collapses" `Quick test_minimize_collapses;
          prop_minimizers_agree;
          prop_minimize_idempotent;
        ] );
      ( "state-elim",
        [
          Alcotest.test_case "paper round-trip" `Quick test_state_elim_roundtrip_paper;
          prop_state_elim_roundtrip;
        ] );
      ( "language",
        [
          Alcotest.test_case "inclusion" `Quick test_language_inclusion;
          Alcotest.test_case "equivalence" `Quick test_language_equivalence;
          Alcotest.test_case "intersect" `Quick test_language_intersect;
          prop_language_counterexample_valid;
        ] );
    ]
