open Testutil

let a_open = Ltlf.atom_name "a.open"
let b_open = Ltlf.atom_name "b.open"
let paper_claim = Ltlf.wuntil (Ltlf.neg a_open) b_open

(* --- Direct semantics ---------------------------------------------------------- *)

let test_atom () =
  Alcotest.(check bool) "holds at head" true (Ltlf.holds a_open (tr [ "a.open" ]));
  Alcotest.(check bool) "fails elsewhere" false (Ltlf.holds a_open (tr [ "b.open" ]));
  Alcotest.(check bool) "fails on empty" false (Ltlf.holds a_open [])

let test_boolean_connectives () =
  let f = Ltlf.conj (Ltlf.neg a_open) (Ltlf.disj b_open Ltlf.tt) in
  Alcotest.(check bool) "conj/disj/neg" true (Ltlf.holds f (tr [ "b.open" ]));
  Alcotest.(check bool) "implies" true
    (Ltlf.holds (Ltlf.implies a_open b_open) (tr [ "c" ]))

let test_next_strong_vs_weak () =
  Alcotest.(check bool) "X needs successor" false (Ltlf.holds (Ltlf.next Ltlf.tt) (tr [ "a" ]));
  Alcotest.(check bool) "WX true at last" true (Ltlf.holds (Ltlf.wnext Ltlf.ff) (tr [ "a" ]));
  Alcotest.(check bool) "X on longer trace" true
    (Ltlf.holds (Ltlf.next b_open) (tr [ "a.open"; "b.open" ]))

let test_globally_finally () =
  let g = Ltlf.globally (Ltlf.neg a_open) in
  Alcotest.(check bool) "G on empty" true (Ltlf.holds g []);
  Alcotest.(check bool) "G holds" true (Ltlf.holds g (tr [ "b"; "c" ]));
  Alcotest.(check bool) "G fails" false (Ltlf.holds g (tr [ "b"; "a.open" ]));
  let f = Ltlf.finally a_open in
  Alcotest.(check bool) "F on empty" false (Ltlf.holds f []);
  Alcotest.(check bool) "F holds late" true (Ltlf.holds f (tr [ "b"; "a.open" ]))

let test_until () =
  let u = Ltlf.until (Ltlf.neg a_open) b_open in
  Alcotest.(check bool) "witness required" false (Ltlf.holds u (tr [ "c"; "c" ]));
  Alcotest.(check bool) "witness found" true (Ltlf.holds u (tr [ "c"; "b.open" ]));
  Alcotest.(check bool) "left must hold" false (Ltlf.holds u (tr [ "a.open"; "b.open" ]))

let test_weak_until_paper_claim () =
  (* (!a.open) W b.open *)
  Alcotest.(check bool) "vacuous on empty" true (Ltlf.holds paper_claim []);
  Alcotest.(check bool) "all quiet" true (Ltlf.holds paper_claim (tr [ "a.test"; "a.close" ]));
  Alcotest.(check bool) "b first then a" true
    (Ltlf.holds paper_claim (tr [ "b.open"; "a.open" ]));
  Alcotest.(check bool) "a before b violates" false
    (Ltlf.holds paper_claim (tr [ "a.test"; "a.open"; "b.open" ]));
  Alcotest.(check bool) "paper's counterexample violates" false
    (Ltlf.holds paper_claim
       (tr [ "a.test"; "a.open"; "b.open"; "b.test"; "b.open"; "a.close"; "b.close" ]))

let test_pp () =
  Alcotest.(check string) "paper style" "!a.open W b.open" (Ltlf.to_string paper_claim);
  Alcotest.(check string) "unary and binary"
    "G (!a.open || F b.open)"
    (Ltlf.to_string
       (Ltlf.globally (Ltlf.Or (Ltlf.neg a_open, Ltlf.finally b_open))))

(* --- Parser ---------------------------------------------------------------------- *)

let formula = Alcotest.testable Ltlf.pp Ltlf.equal

let test_parse_paper_claim () =
  Alcotest.check formula "paper claim" paper_claim (Ltl_parser.parse "(!a.open) W b.open")

let test_parse_precedence () =
  Alcotest.check formula "unary binds tighter"
    (Ltlf.wuntil (Ltlf.neg a_open) b_open)
    (Ltl_parser.parse "!a.open W b.open");
  Alcotest.check formula "and over or"
    (Ltlf.disj (Ltlf.conj a_open b_open) (Ltlf.atom_name "c"))
    (Ltl_parser.parse "a.open && b.open || c")

let test_parse_temporal () =
  Alcotest.check formula "globally finally"
    (Ltlf.globally (Ltlf.finally a_open))
    (Ltl_parser.parse "G F a.open");
  Alcotest.check formula "next" (Ltlf.next a_open) (Ltl_parser.parse "X a.open");
  Alcotest.check formula "weak next" (Ltlf.wnext a_open) (Ltl_parser.parse "WX a.open");
  Alcotest.check formula "until right assoc"
    (Ltlf.until a_open (Ltlf.until b_open (Ltlf.atom_name "c")))
    (Ltl_parser.parse "a.open U b.open U c")

let test_parse_implication () =
  Alcotest.check formula "sugar"
    (Ltlf.implies a_open (Ltlf.finally b_open))
    (Ltl_parser.parse "a.open -> F b.open")

let test_parse_constants () =
  Alcotest.check formula "true" Ltlf.tt (Ltl_parser.parse "true");
  Alcotest.check formula "false" Ltlf.ff (Ltl_parser.parse "false")

let test_parse_errors () =
  List.iter
    (fun bad ->
      match Ltl_parser.parse_result bad with
      | Ok _ -> Alcotest.failf "expected parse failure on %S" bad
      | Error _ -> ())
    [ ""; "(a.open"; "a.open W"; "&& b"; "a b"; "a.open )" ]

let test_parse_roundtrip () =
  (* pp output re-parses to the same formula. *)
  List.iter
    (fun f ->
      let printed = Ltlf.to_string f in
      Alcotest.check formula (Printf.sprintf "roundtrip %s" printed) f
        (Ltl_parser.parse printed))
    [
      paper_claim;
      Ltlf.globally (Ltlf.implies a_open (Ltlf.finally b_open));
      Ltlf.conj (Ltlf.neg a_open) (Ltlf.disj b_open (Ltlf.next a_open));
      Ltlf.until (Ltlf.wnext a_open) (Ltlf.wuntil b_open Ltlf.tt);
    ]

(* --- Progression & automaton ------------------------------------------------------- *)

let alphabet = List.map Symbol.intern [ "a.open"; "b.open"; "a.test" ]

(* Random formulas occasionally have doubly-exponential obligation closures;
   automaton-building properties run under a small state budget and treat an
   exceeded budget as "case skipped". *)
let budget = 1500

let limits = Limits.make ~max_states:budget ()

let with_budget prop = try prop () with Limits.Budget_exceeded _ -> true

let test_progression_invariant () =
  (* e·rest ⊨ φ  iff  rest ⊨ progress(φ, e) *)
  let formulas =
    [
      paper_claim;
      Ltlf.globally (Ltlf.neg a_open);
      Ltlf.finally b_open;
      Ltlf.next a_open;
      Ltlf.wnext a_open;
      Ltlf.until (Ltlf.neg a_open) b_open;
      Ltlf.neg (Ltlf.until (Ltlf.neg a_open) b_open);
    ]
  in
  let words =
    [ []; tr [ "a.open" ]; tr [ "b.open"; "a.open" ]; tr [ "a.test"; "a.open"; "b.open" ] ]
  in
  List.iter
    (fun f ->
      List.iter
        (fun e ->
          List.iter
            (fun rest ->
              let lhs = Ltlf.holds f (e :: rest) in
              let rhs = Ltlf.holds (Progression.progress f e) rest in
              if lhs <> rhs then
                Alcotest.failf "progression mismatch: %s on %s·%s" (Ltlf.to_string f)
                  (Symbol.name e)
                  (Trace.to_string rest))
            words)
        alphabet)
    formulas

let test_dfa_agrees_with_semantics () =
  let formulas =
    [
      paper_claim;
      Ltlf.globally (Ltlf.implies a_open (Ltlf.finally b_open));
      Ltlf.finally (Ltlf.conj a_open (Ltlf.next b_open));
      Ltlf.neg paper_claim;
    ]
  in
  List.iter
    (fun f ->
      let dfa = Progression.to_dfa ~alphabet f in
      (* Enumerate all words up to length 4 over the alphabet. *)
      let rec words len =
        if len = 0 then [ [] ]
        else
          let shorter = words (len - 1) in
          shorter
          @ List.concat_map (fun w -> List.map (fun s -> s :: w) alphabet)
              (List.filter (fun w -> List.length w = len - 1) shorter)
      in
      List.iter
        (fun w ->
          let expected = Ltlf.holds f w in
          let got = Dfa.accepts dfa w in
          if expected <> got then
            Alcotest.failf "automaton disagrees on %s for %s" (Trace.to_string w)
              (Ltlf.to_string f))
        (words 4))
    formulas

let test_state_space_reasonable () =
  let n = Progression.num_reachable_obligations ~alphabet paper_claim in
  Alcotest.(check bool) "small automaton" true (n <= 8)

(* --- Checking ----------------------------------------------------------------------- *)

let impl_of regex = Thompson.of_regex regex

let test_check_pass () =
  (* b.open then a.open satisfies the paper claim. *)
  let impl = impl_of (Regex.word (List.map Symbol.intern [ "b.open"; "a.open" ])) in
  match Ltl_check.check ~impl paper_claim with
  | Ok () -> ()
  | Error v -> Alcotest.failf "unexpected violation: %s" (Trace.to_string v.Ltl_check.counterexample)

let test_check_fail_shortest () =
  (* Language: (a.test)* · a.open — every nonempty completion violates. *)
  let impl =
    impl_of
      (Regex.seq
         (Regex.star (Regex.sym_of_name "a.test"))
         (Regex.sym_of_name "a.open"))
  in
  match Ltl_check.check ~impl paper_claim with
  | Ok () -> Alcotest.fail "expected a violation"
  | Error v ->
    Alcotest.check trace "shortest counterexample" (tr [ "a.open" ]) v.Ltl_check.counterexample

let test_check_empty_language () =
  match Ltl_check.check ~impl:Nfa.empty_language paper_claim with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "empty language satisfies every claim"

let test_check_claim_string () =
  let impl = impl_of (Regex.sym_of_name "a.open") in
  match Ltl_check.check_claim ~impl "(!a.open) W b.open" with
  | Ok () -> Alcotest.fail "expected a violation"
  | Error v -> Alcotest.(check string) "formula preserved" "!a.open W b.open"
                 (Ltlf.to_string v.Ltl_check.formula)

let test_violation_pp () =
  let v =
    { Ltl_check.formula = paper_claim; counterexample = tr [ "a.test"; "a.open" ] }
  in
  Alcotest.(check string) "paper transcript shape"
    "Formula: !a.open W b.open\nCounter example: a.test, a.open"
    (Format.asprintf "%a" Ltl_check.pp_violation v)

(* --- Properties ------------------------------------------------------------------------ *)

let ltl_gen : Ltlf.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let atom = map Ltlf.atom (oneofl alphabet) in
  let leaf = oneof [ atom; return Ltlf.tt; return Ltlf.ff ] in
  let rec tree n =
    if n <= 1 then leaf
    else
      oneof
        [
          leaf;
          map Ltlf.neg (tree (n - 1));
          map Ltlf.next (tree (n - 1));
          map Ltlf.wnext (tree (n - 1));
          map Ltlf.globally (tree (n - 1));
          map Ltlf.finally (tree (n - 1));
          map2 Ltlf.conj (tree (n / 2)) (tree (n / 2));
          map2 Ltlf.disj (tree (n / 2)) (tree (n / 2));
          map2 Ltlf.until (tree (n / 2)) (tree (n / 2));
          map2 Ltlf.wuntil (tree (n / 2)) (tree (n / 2));
        ]
  in
  (* Automaton constructions over these formulas can be doubly exponential
     in formula size; keep the random formulas small. *)
  int_range 1 5 >>= tree

let word_gen : Trace.t QCheck2.Gen.t =
  QCheck2.Gen.(list_size (int_range 0 5) (oneofl alphabet))

let prop_progression =
  qtest "progression invariant (random)" ~count:300
    QCheck2.Gen.(triple ltl_gen (oneofl alphabet) word_gen)
    ~print:(fun (f, e, w) ->
      Printf.sprintf "%s / %s / %s" (Ltlf.to_string f) (Symbol.name e) (Trace.to_string w))
    (fun (f, e, w) ->
      Ltlf.holds f (e :: w) = Ltlf.holds (Progression.progress f e) w)

let prop_dfa_semantics =
  qtest "progression DFA = direct semantics (random)" ~count:80
    QCheck2.Gen.(pair ltl_gen word_gen)
    ~print:(fun (f, w) -> Printf.sprintf "%s on %s" (Ltlf.to_string f) (Trace.to_string w))
    (fun (f, w) ->
      with_budget (fun () ->
          let dfa = Progression.to_dfa ~limits ~alphabet f in
          Dfa.accepts dfa w = Ltlf.holds f w))

let prop_normalize_preserves =
  qtest "normalize preserves satisfaction" ~count:200
    QCheck2.Gen.(pair ltl_gen word_gen)
    ~print:(fun (f, w) -> Printf.sprintf "%s on %s" (Ltlf.to_string f) (Trace.to_string w))
    (fun (f, w) -> Ltlf.holds f w = Ltlf.holds (Progression.normalize f) w)

let prop_negation_flips =
  qtest "negation flips the automaton" ~count:60
    QCheck2.Gen.(pair ltl_gen word_gen)
    ~print:(fun (f, w) -> Printf.sprintf "%s on %s" (Ltlf.to_string f) (Trace.to_string w))
    (fun (f, w) ->
      with_budget (fun () ->
          let d1 = Progression.to_dfa ~limits ~alphabet f in
          let d2 = Progression.to_dfa ~limits ~alphabet (Ltlf.neg f) in
          Dfa.accepts d1 w <> Dfa.accepts d2 w))

(* --- NNF ------------------------------------------------------------------------ *)

let test_nnf_dualities () =
  let check_form name input =
    let n = Nnf.nnf input in
    Alcotest.(check bool) (name ^ " is NNF") true (Nnf.is_nnf n)
  in
  check_form "neg next" (Ltlf.neg (Ltlf.next a_open));
  check_form "neg weak next" (Ltlf.neg (Ltlf.wnext a_open));
  check_form "neg globally" (Ltlf.neg (Ltlf.globally a_open));
  check_form "neg until" (Ltlf.neg (Ltlf.until a_open b_open));
  check_form "neg weak until" (Ltlf.neg paper_claim);
  check_form "double negation" (Ltlf.neg (Ltlf.neg (Ltlf.until a_open b_open)))

let prop_nnf_preserves =
  qtest "NNF preserves satisfaction" ~count:300
    QCheck2.Gen.(pair ltl_gen word_gen)
    ~print:(fun (f, w) -> Printf.sprintf "%s on %s" (Ltlf.to_string f) (Trace.to_string w))
    (fun (f, w) ->
      let n = Nnf.nnf f in
      Nnf.is_nnf n && Ltlf.holds f w = Ltlf.holds n w)

(* --- Tableau --------------------------------------------------------------------- *)

let test_tableau_elementary_paper_claim () =
  (* (!a.open) W b.open expands to {b.open} | {!a.open, WX claim}. *)
  let sets = Tableau.elementary_sets paper_claim in
  Alcotest.(check int) "two branches" 2 (List.length sets)

let test_tableau_agrees_on_corpus () =
  let formulas =
    [
      paper_claim;
      Ltlf.globally (Ltlf.implies a_open (Ltlf.finally b_open));
      Ltlf.finally (Ltlf.conj a_open (Ltlf.next b_open));
      Ltlf.neg paper_claim;
      Ltlf.next (Ltlf.next a_open);
      Ltlf.wnext Ltlf.ff;
    ]
  in
  List.iter
    (fun f ->
      let dfa = Progression.to_dfa ~alphabet f in
      let nfa = Tableau.to_nfa ~alphabet f in
      match Language.equivalence_counterexample (Dfa.to_nfa dfa) nfa with
      | None -> ()
      | Some w ->
        Alcotest.failf "tableau disagrees with progression on %s for %s"
          (Trace.to_string w) (Ltlf.to_string f))
    formulas

let prop_tableau_equals_progression =
  qtest "tableau NFA = progression DFA" ~count:80 ltl_gen ~print:Ltlf.to_string (fun f ->
      with_budget (fun () ->
          let dfa = Progression.to_dfa ~limits ~alphabet f in
          let nfa = Tableau.to_nfa ~limits ~alphabet f in
          Language.equivalent (Dfa.to_nfa dfa) nfa))

let prop_tableau_equals_semantics =
  qtest "tableau NFA = direct semantics" ~count:80
    QCheck2.Gen.(pair ltl_gen word_gen)
    ~print:(fun (f, w) -> Printf.sprintf "%s on %s" (Ltlf.to_string f) (Trace.to_string w))
    (fun (f, w) ->
      with_budget (fun () ->
          let nfa = Tableau.to_nfa ~limits ~alphabet f in
          Nfa.accepts nfa w = Ltlf.holds f w))

let test_tableau_check_agrees () =
  let impl =
    impl_of
      (Regex.seq (Regex.star (Regex.sym_of_name "a.test")) (Regex.sym_of_name "a.open"))
  in
  match Tableau.check ~impl paper_claim, Ltl_check.check ~impl paper_claim with
  | Error v1, Error v2 ->
    Alcotest.check trace "same shortest counterexample" v2.Ltl_check.counterexample
      v1.Ltl_check.counterexample
  | _ -> Alcotest.fail "both back ends must report a violation"

let test_tableau_unsatisfiable () =
  let f = Ltlf.conj (Ltlf.finally a_open) (Ltlf.globally (Ltlf.neg a_open)) in
  let nfa = Tableau.to_nfa ~alphabet f in
  Alcotest.(check bool) "empty language" true (Nfa.is_empty nfa)

(* --- Four-valued monitor ---------------------------------------------------------- *)

let verdict = Alcotest.testable Ltl_monitor.pp_verdict ( = )

let test_monitor_paper_claim_trajectory () =
  (* (!a.open) W b.open along the violating trace. *)
  Alcotest.(check (list verdict)) "trajectory"
    [
      Ltl_monitor.Presumably_true;
      (* after a.test: still fine, could still see b.open first *)
      Ltl_monitor.Presumably_true;
      (* after a.open before any b.open: no continuation can repair it *)
      Ltl_monitor.Definitely_false;
    ]
    (Ltl_monitor.verdict_trajectory ~alphabet paper_claim (tr [ "a.test"; "a.open" ]))

let test_monitor_definitely_true () =
  (* Once b.open happened, the weak-until is discharged forever. *)
  let m = Ltl_monitor.start ~alphabet paper_claim in
  let m = Ltl_monitor.step m (sym "b.open") in
  Alcotest.check verdict "discharged" Ltl_monitor.Definitely_true (Ltl_monitor.verdict m);
  let m = Ltl_monitor.step m (sym "a.open") in
  Alcotest.check verdict "stays true" Ltl_monitor.Definitely_true (Ltl_monitor.verdict m)

let test_monitor_presumably_false () =
  (* F b.open: false if we stop now, still satisfiable. *)
  let f = Ltlf.finally b_open in
  Alcotest.check verdict "pending obligation" Ltl_monitor.Presumably_false
    (Ltl_monitor.run ~alphabet f (tr [ "a.test" ]));
  Alcotest.check verdict "fulfilled" Ltl_monitor.Definitely_true
    (Ltl_monitor.run ~alphabet f (tr [ "a.test"; "b.open" ]))

let prop_monitor_agrees_with_holds =
  qtest "presumably = holds-on-prefix; definitive verdicts are sound" ~count:100
    QCheck2.Gen.(pair ltl_gen word_gen)
    ~print:(fun (f, w) -> Printf.sprintf "%s on %s" (Ltlf.to_string f) (Trace.to_string w))
    (fun (f, w) ->
      with_budget (fun () ->
      let v = Ltl_monitor.run ~limits ~alphabet f w in
      let now = Ltlf.holds f w in
      let positive =
        match v with
        | Ltl_monitor.Definitely_true | Ltl_monitor.Presumably_true -> true
        | Ltl_monitor.Definitely_false | Ltl_monitor.Presumably_false -> false
      in
      (* The sign always matches satisfaction of the trace as-if-complete. *)
      positive = now
      &&
      (* Definitive verdicts hold for all one-event extensions too. *)
      match v with
      | Ltl_monitor.Definitely_true ->
        List.for_all (fun e -> Ltlf.holds f (w @ [ e ])) alphabet
      | Ltl_monitor.Definitely_false ->
        List.for_all (fun e -> not (Ltlf.holds f (w @ [ e ]))) alphabet
      | _ -> true))

let prop_monitor_monotone =
  qtest "definitive verdicts are monotone" ~count:100
    QCheck2.Gen.(pair ltl_gen word_gen)
    ~print:(fun (f, w) -> Printf.sprintf "%s on %s" (Ltlf.to_string f) (Trace.to_string w))
    (fun (f, w) ->
      with_budget (fun () ->
      let trajectory = Ltl_monitor.verdict_trajectory ~limits ~alphabet f w in
      let rec check_mono = function
        | [] | [ _ ] -> true
        | v1 :: (v2 :: _ as rest) ->
          (if Ltl_monitor.is_definitive v1 then v1 = v2 else true) && check_mono rest
      in
      check_mono trajectory))

let () =
  Alcotest.run "ltl"
    [
      ( "monitor",
        [
          Alcotest.test_case "paper claim trajectory" `Quick
            test_monitor_paper_claim_trajectory;
          Alcotest.test_case "definitely true" `Quick test_monitor_definitely_true;
          Alcotest.test_case "presumably false" `Quick test_monitor_presumably_false;
          prop_monitor_agrees_with_holds;
          prop_monitor_monotone;
        ] );
      ( "nnf",
        [
          Alcotest.test_case "dualities produce NNF" `Quick test_nnf_dualities;
          prop_nnf_preserves;
        ] );
      ( "tableau",
        [
          Alcotest.test_case "paper claim branches" `Quick test_tableau_elementary_paper_claim;
          Alcotest.test_case "agrees on corpus" `Quick test_tableau_agrees_on_corpus;
          Alcotest.test_case "check agrees" `Quick test_tableau_check_agrees;
          Alcotest.test_case "unsatisfiable" `Quick test_tableau_unsatisfiable;
          prop_tableau_equals_progression;
          prop_tableau_equals_semantics;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "atom" `Quick test_atom;
          Alcotest.test_case "boolean connectives" `Quick test_boolean_connectives;
          Alcotest.test_case "strong vs weak next" `Quick test_next_strong_vs_weak;
          Alcotest.test_case "globally / finally" `Quick test_globally_finally;
          Alcotest.test_case "until" `Quick test_until;
          Alcotest.test_case "paper claim (weak until)" `Quick test_weak_until_paper_claim;
          Alcotest.test_case "pp" `Quick test_pp;
        ] );
      ( "parser",
        [
          Alcotest.test_case "paper claim" `Quick test_parse_paper_claim;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "temporal operators" `Quick test_parse_temporal;
          Alcotest.test_case "implication" `Quick test_parse_implication;
          Alcotest.test_case "constants" `Quick test_parse_constants;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "pp round-trip" `Quick test_parse_roundtrip;
        ] );
      ( "progression",
        [
          Alcotest.test_case "invariant on corpus" `Quick test_progression_invariant;
          Alcotest.test_case "DFA = semantics on corpus" `Quick test_dfa_agrees_with_semantics;
          Alcotest.test_case "state space" `Quick test_state_space_reasonable;
        ] );
      ( "check",
        [
          Alcotest.test_case "pass" `Quick test_check_pass;
          Alcotest.test_case "fail with shortest witness" `Quick test_check_fail_shortest;
          Alcotest.test_case "empty language" `Quick test_check_empty_language;
          Alcotest.test_case "claim string" `Quick test_check_claim_string;
          Alcotest.test_case "violation pp" `Quick test_violation_pp;
        ] );
      ( "properties",
        [ prop_progression; prop_dfa_semantics; prop_normalize_preserves; prop_negation_flips ] );
    ]
