  $ shelley check valve.py
  $ shelley check bad_sector.py
  $ shelley check --explain bad_sector.py | sed -n '7,9p'
  $ shelley trace valve.py -c Valve "test,open,close"
  $ shelley trace valve.py -c Valve "test,open"
  $ shelley monitor valve.py -c Valve "test,open,close"
  $ shelley monitor valve.py -c Valve "test,close"
  $ shelley sample valve.py -c Valve -n 3 --seed 7
  $ shelley infer paper_loop
  $ shelley lang "(a b)*" "(a b)* + a"
  $ shelley watch --claim "(!a.open) W b.open" "a.test,a.open,b.open"
  $ shelley export valve.py -o .
  $ head -4 Valve.shelley
  $ shelley model valve.py --stats
  $ shelley export valve.py -o . >/dev/null
  $ tail -31 bad_sector.py > sector_only.py
  $ shelley check --using Valve.shelley sector_only.py | head -5
  $ shelley check broken.py
  $ shelley check broken.py bad_sector.py
  $ shelley check valve.py broken.py
  $ shelley check --fuel 5 bad_sector.py
  $ shelley check --max-states 2 bad_sector.py
  $ shelley check bad_sector.py >/dev/null; echo "exit $?"
  $ shelley check no_such_file.py valve.py
