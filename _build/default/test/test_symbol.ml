open Testutil

let test_intern_idempotent () =
  let a1 = Symbol.intern "valve.open" in
  let a2 = Symbol.intern "valve.open" in
  Alcotest.(check bool) "same symbol" true (Symbol.equal a1 a2);
  Alcotest.(check string) "round-trip" "valve.open" (Symbol.name a1)

let test_distinct () =
  let a = Symbol.intern "open" in
  let b = Symbol.intern "close" in
  Alcotest.(check bool) "distinct" false (Symbol.equal a b);
  Alcotest.(check bool) "ordered consistently"
    true
    (Symbol.compare a b = -Symbol.compare b a)

let test_scoped () =
  let s = Symbol.scoped ~scope:"a" "test" in
  Alcotest.(check string) "scoped name" "a.test" (Symbol.name s);
  match Symbol.split_scope s with
  | Some (scope, op) ->
    Alcotest.(check string) "scope" "a" scope;
    Alcotest.(check string) "op" "test" op
  | None -> Alcotest.fail "expected a scope"

let test_split_scope_none () =
  Alcotest.(check bool) "unscoped" true (Symbol.split_scope (sym "open") = None)

let test_split_scope_first_dot () =
  match Symbol.split_scope (Symbol.intern "a.b.c") with
  | Some (scope, op) ->
    Alcotest.(check string) "scope" "a" scope;
    Alcotest.(check string) "rest" "b.c" op
  | None -> Alcotest.fail "expected a scope"

let test_count_monotone () =
  let before = Symbol.count () in
  ignore (Symbol.intern "fresh.symbol.for.count.test");
  Alcotest.(check bool) "count grew" true (Symbol.count () > before);
  let again = Symbol.count () in
  ignore (Symbol.intern "fresh.symbol.for.count.test");
  Alcotest.(check int) "reintern does not grow" again (Symbol.count ())

let test_many_symbols () =
  (* Force the intern table to grow past its initial capacity. *)
  let syms = List.init 600 (fun i -> Symbol.intern (Printf.sprintf "bulk_%d" i)) in
  List.iteri
    (fun i s ->
      Alcotest.(check string) "bulk name" (Printf.sprintf "bulk_%d" i) (Symbol.name s))
    syms

let test_pp_set () =
  let set = Symbol.Set.of_list [ sym "b"; sym "a"; sym "c" ] in
  Alcotest.(check string) "sorted by name" "{a, b, c}" (Format.asprintf "%a" Symbol.pp_set set)

(* --- Trace ----------------------------------------------------------------- *)

let test_trace_order_by_length () =
  Alcotest.(check bool) "shorter first" true (Trace.compare (tr [ "z" ]) (tr [ "a"; "a" ]) < 0)

let test_trace_lex () =
  Alcotest.(check bool)
    "lexicographic at equal length" true
    (Trace.compare (tr [ "a"; "b" ]) (tr [ "a"; "c" ]) < 0)

let test_trace_append () =
  Alcotest.check trace "concat" (tr [ "a"; "b"; "c" ])
    (Trace.append (tr [ "a" ]) (tr [ "b"; "c" ]))

let test_trace_pp () =
  Alcotest.(check string)
    "paper style" "a.test, a.open"
    (Trace.to_string (tr [ "a.test"; "a.open" ]))

let test_trace_roundtrip () =
  let names = [ "x"; "y"; "z" ] in
  Alcotest.(check (list string)) "names round-trip" names (Trace.to_names (tr names))

let test_trace_set_min_is_shortest () =
  let set = Trace.Set.of_list [ tr [ "b"; "b" ]; tr [ "c" ]; tr [ "a"; "a"; "a" ] ] in
  Alcotest.check trace "min elt is shortest" (tr [ "c" ]) (Trace.Set.min_elt set)

let () =
  Alcotest.run "symbol"
    [
      ( "symbol",
        [
          Alcotest.test_case "intern idempotent" `Quick test_intern_idempotent;
          Alcotest.test_case "distinct symbols" `Quick test_distinct;
          Alcotest.test_case "scoped" `Quick test_scoped;
          Alcotest.test_case "split_scope none" `Quick test_split_scope_none;
          Alcotest.test_case "split_scope first dot" `Quick test_split_scope_first_dot;
          Alcotest.test_case "count monotone" `Quick test_count_monotone;
          Alcotest.test_case "many symbols" `Quick test_many_symbols;
          Alcotest.test_case "pp_set" `Quick test_pp_set;
        ] );
      ( "trace",
        [
          Alcotest.test_case "order by length" `Quick test_trace_order_by_length;
          Alcotest.test_case "lexicographic" `Quick test_trace_lex;
          Alcotest.test_case "append" `Quick test_trace_append;
          Alcotest.test_case "pp" `Quick test_trace_pp;
          Alcotest.test_case "round-trip" `Quick test_trace_roundtrip;
          Alcotest.test_case "set min is shortest" `Quick test_trace_set_min_is_shortest;
        ] );
    ]
