examples/good_sector.mli:
