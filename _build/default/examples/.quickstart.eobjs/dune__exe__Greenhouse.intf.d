examples/greenhouse.mli:
