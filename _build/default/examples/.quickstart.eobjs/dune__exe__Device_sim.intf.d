examples/device_sim.mli:
