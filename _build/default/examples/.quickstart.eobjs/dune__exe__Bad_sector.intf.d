examples/bad_sector.mli:
