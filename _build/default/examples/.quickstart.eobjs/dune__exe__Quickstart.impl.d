examples/quickstart.ml: Depgraph Dot Format List Model Nfa Option Pipeline Regex Sources Trace
