examples/good_sector.ml: Claims Depgraph Dot Format List Ltl_check Ltl_parser Nfa Option Pipeline Report Sources Trace Usage
