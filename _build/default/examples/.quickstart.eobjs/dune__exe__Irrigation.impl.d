examples/irrigation.ml: Depgraph Format List Model Nfa Option Pipeline Report Sources Trace Usage
