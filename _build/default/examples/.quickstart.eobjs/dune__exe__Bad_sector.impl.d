examples/bad_sector.ml: Depgraph Dot Format List Ltl_parser Ltlf Nfa Nusmv Option Pipeline Printf Report Sources String Trace Usage
