examples/sources.ml:
