examples/device_sim.ml: Depgraph Filename Format Fun List Ltl_monitor Ltl_parser Model Model_io Monitor Option Pipeline Printf Random Refine Sample Sources String Symbol Sys Trace
