examples/greenhouse.ml: Array Filename Format Fun List Ltl_monitor Ltlf Model Model_io Option Patterns Pipeline Printf Report Sources Stats Symbol Sys Trace Usage
