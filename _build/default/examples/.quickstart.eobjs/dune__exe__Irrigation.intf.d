examples/irrigation.mli:
