examples/quickstart.mli:
