(* MicroPython sources shared by the examples — the paper's listings plus a
   corrected sector. Kept in one module so every example runs on exactly the
   same substrate code. *)

(* Listing 2.1. *)
let valve =
  {|
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)
        self.clean = Pin(28, OUT)
        self.status = Pin(29, IN)

    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        self.control.on()
        return ["close"]

    @op_final
    def close(self):
        self.control.off()
        return ["test"]

    @op_final
    def clean(self):
        self.clean.on()
        return ["test"]
|}

(* Listing 2.2. *)
let bad_sector =
  {|
@claim("(!a.open) W b.open")
@sys(["a", "b"])
class BadSector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def open_a(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                return ["open_b"]
            case ["clean"]:
                self.a.clean()
                print("a failed")
                return []

    @op_final
    def open_b(self):
        match self.b.test():
            case ["open"]:
                self.b.open()
                self.a.close()
                self.b.close()
                return []
            case ["clean"]:
                self.b.clean()
                print("b failed")
                self.a.close()
                return []
|}

(* A sector that respects the Valve specification and the claim. *)
let good_sector =
  {|
@claim("(!a.open) W b.open")
@sys(["a", "b"])
class GoodSector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial
    def start(self):
        match self.b.test():
            case ["open"]:
                self.b.open()
                return ["open_a", "drain"]
            case ["clean"]:
                self.b.clean()
                return ["abort"]

    @op
    def open_a(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                return ["shutdown"]
            case ["clean"]:
                self.a.clean()
                return ["drain"]

    @op_final
    def shutdown(self):
        self.a.close()
        self.b.close()
        return ["start"]

    @op_final
    def drain(self):
        self.b.close()
        return ["start"]

    @op_final
    def abort(self):
        return ["start"]
|}

(* Listing 3.1 — the Sector used for the Figure 3 dependency graph. *)
let listing31_sector =
  {|
@sys(["a"])
class Sector:
    def __init__(self):
        self.a = Valve()

    @op_initial
    def open_a(self):
        if self.gauge.ok():
            return ["close_a", "open_b"]
        else:
            return ["clean_a"]

    @op
    def clean_a(self):
        return ["open_a"]

    @op
    def close_a(self):
        return ["open_a"]

    @op_final
    def open_b(self):
        if done:
            return []
        else:
            return []
|}
