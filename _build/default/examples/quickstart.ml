(* Quickstart: verify the paper's Valve class (Listing 2.1), inspect its
   extracted model, and regenerate the Figure 1 diagram.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  print_endline "=== shelley quickstart: the Valve class (Listing 2.1) ===\n";

  (* 1. Parse and verify the source. *)
  let result =
    Pipeline.verify_source_exn Sources.valve
  in
  Format.printf "verified: %b (%d reports)@.@." (Pipeline.verified result)
    (List.length result.Pipeline.reports);

  (* 2. Look at the extracted model: operations, exits, behaviors. *)
  let valve = Option.get (Pipeline.find_model result "Valve") in
  Format.printf "--- extracted model ---@.%a@." Model.pp valve;

  (* 3. The class usage language (the §3.1 graph read as an automaton). *)
  let usage = Depgraph.usage_nfa valve in
  let show trace_names =
    let trace = Trace.of_names trace_names in
    Format.printf "  %-40s %s@."
      (Trace.to_string trace)
      (if Nfa.accepts usage trace then "valid" else "INVALID")
  in
  print_endline "--- usage traces ---";
  show [ "test"; "open"; "close" ];
  show [ "test"; "clean" ];
  show [ "test"; "open"; "close"; "test"; "clean" ];
  show [ "test"; "open" ];
  show [ "open" ];

  (* 4. Per-method behavior inference (the paper's §3.2). *)
  print_endline "\n--- method behaviors (infer) ---";
  List.iter
    (fun (op : Model.operation) ->
      Format.printf "  %-8s %a@." op.Model.op_name Regex.pp (Model.behavior_of_op op))
    valve.Model.operations;

  (* 5. Figure 1: the Valve diagram. *)
  print_endline "\n--- Figure 1 (DOT) ---";
  print_string (Dot.of_model valve)
