open Testutil

(* The paper's Listing 2.1. *)
let valve_source =
  {|
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)
        self.clean = Pin(28, OUT)
        self.status = Pin(29, IN)

    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        self.control.on()
        return ["close"]

    @op_final
    def close(self):
        self.control.off()
        return ["test"]

    @op_final
    def clean(self):
        self.clean.on()
        return ["test"]
|}

(* The paper's Listing 2.2. *)
let bad_sector_source =
  {|
@claim("(!a.open) W b.open")
@sys(["a", "b"])
class BadSector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def open_a(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                return ["open_b"]
            case ["clean"]:
                self.a.clean()
                print("a failed")
                return []

    @op_final
    def open_b(self):
        match self.b.test():
            case ["open"]:
                self.b.open()
                self.a.close()
                self.b.close()
                return []
            case ["clean"]:
                self.b.clean()
                print("b failed")
                self.a.close()
                return []
|}

(* --- Lexer ------------------------------------------------------------------- *)

let kinds source = List.map (fun t -> t.Mpy_token.kind) (Mpy_lexer.tokenize source)

let test_lex_simple_line () =
  match kinds "x = 1\n" with
  | [ Name "x"; Assign; Int_lit 1; Newline; Eof ] -> ()
  | ks -> Alcotest.failf "unexpected tokens: %s" (String.concat "; " (List.map Mpy_token.describe ks))

let test_lex_indentation () =
  let source = "if x:\n    y()\nz()\n" in
  match kinds source with
  | [
   Kw_if; Name "x"; Colon; Newline; Indent; Name "y"; Lparen; Rparen; Newline; Dedent;
   Name "z"; Lparen; Rparen; Newline; Eof;
  ] ->
    ()
  | ks -> Alcotest.failf "unexpected tokens: %s" (String.concat "; " (List.map Mpy_token.describe ks))

let test_lex_nested_dedents () =
  let source = "if a:\n    if b:\n        c()\nd()\n" in
  let dedents = List.filter (fun k -> k = Mpy_token.Dedent) (kinds source) in
  Alcotest.(check int) "two dedents" 2 (List.length dedents)

let test_lex_blank_lines_and_comments () =
  let source = "x()\n\n# comment only\n\ny()\n" in
  match kinds source with
  | [ Name "x"; Lparen; Rparen; Newline; Name "y"; Lparen; Rparen; Newline; Eof ] -> ()
  | ks -> Alcotest.failf "unexpected tokens: %s" (String.concat "; " (List.map Mpy_token.describe ks))

let test_lex_implicit_line_joining () =
  (* No layout tokens inside brackets. *)
  let source = "x = [1,\n     2]\n" in
  let layout =
    List.filter (fun k -> k = Mpy_token.Indent || k = Mpy_token.Dedent) (kinds source)
  in
  Alcotest.(check int) "no indents inside brackets" 0 (List.length layout)

let test_lex_string_escapes () =
  match kinds {|s = "a\nb"|} with
  | [ Name "s"; Assign; Str_lit "a\nb"; Newline; Eof ] -> ()
  | ks -> Alcotest.failf "unexpected tokens: %s" (String.concat "; " (List.map Mpy_token.describe ks))

let test_lex_unterminated_string () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Mpy_lexer.tokenize "s = \"oops\n");
       false
     with Mpy_lexer.Lex_error _ -> true)

let test_lex_inconsistent_dedent () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Mpy_lexer.tokenize "if a:\n        x()\n   y()\n");
       false
     with Mpy_lexer.Lex_error _ -> true)

let test_lex_eof_dedents () =
  let source = "if a:\n    x()" in
  let ks = kinds source in
  Alcotest.(check bool) "ends with dedent then eof" true
    (match List.rev ks with
    | Eof :: Dedent :: _ -> true
    | _ -> false)

let test_lex_decorator () =
  match kinds "@sys\nclass C:\n    pass\n" with
  | At :: Name "sys" :: Newline :: Kw_class :: _ -> ()
  | ks -> Alcotest.failf "unexpected tokens: %s" (String.concat "; " (List.map Mpy_token.describe ks))

let test_lex_positions () =
  let tokens = Mpy_lexer.tokenize "x = 1\ny = 2\n" in
  let second_line = List.filter (fun t -> t.Mpy_token.line = 2) tokens in
  Alcotest.(check bool) "tokens on line 2" true (List.length second_line >= 3)

(* --- Parser ----------------------------------------------------------------- *)

let test_parse_valve () =
  let cls = Mpy_parser.parse_class valve_source in
  Alcotest.(check string) "name" "Valve" cls.Mpy_ast.cls_name;
  Alcotest.(check int) "five methods" 5 (List.length cls.Mpy_ast.cls_methods);
  Alcotest.(check (list string)) "decorators" [ "sys" ]
    (List.map (fun d -> d.Mpy_ast.dec_name) cls.Mpy_ast.cls_decorators)

let test_parse_valve_method_decorators () =
  let cls = Mpy_parser.parse_class valve_source in
  let dec_of name =
    match Mpy_ast.find_method cls name with
    | Some m -> List.map (fun d -> d.Mpy_ast.dec_name) m.Mpy_ast.meth_decorators
    | None -> Alcotest.failf "method %s not found" name
  in
  Alcotest.(check (list string)) "test" [ "op_initial" ] (dec_of "test");
  Alcotest.(check (list string)) "open" [ "op" ] (dec_of "open");
  Alcotest.(check (list string)) "close" [ "op_final" ] (dec_of "close");
  Alcotest.(check (list string)) "init undecorated" [] (dec_of "__init__")

let test_parse_valve_returns () =
  let cls = Mpy_parser.parse_class valve_source in
  let m = Option.get (Mpy_ast.find_method cls "test") in
  let returns = Mpy_ast.returns_of_method m in
  Alcotest.(check int) "two exits" 2 (List.length returns);
  match returns with
  | [ r1; r2 ] ->
    Alcotest.(check (option (list string))) "first" (Some [ "open" ]) r1.Mpy_ast.ret_next;
    Alcotest.(check (option (list string))) "second" (Some [ "clean" ]) r2.Mpy_ast.ret_next
  | _ -> assert false

let test_parse_bad_sector () =
  let cls = Mpy_parser.parse_class bad_sector_source in
  Alcotest.(check string) "name" "BadSector" cls.Mpy_ast.cls_name;
  Alcotest.(check (list string)) "decorators" [ "claim"; "sys" ]
    (List.map (fun d -> d.Mpy_ast.dec_name) cls.Mpy_ast.cls_decorators);
  let claim = List.hd cls.Mpy_ast.cls_decorators in
  (match claim.Mpy_ast.dec_args with
  | [ Mpy_ast.Str s ] -> Alcotest.(check string) "claim text" "(!a.open) W b.open" s
  | _ -> Alcotest.fail "claim argument shape");
  let sys = List.nth cls.Mpy_ast.cls_decorators 1 in
  match sys.Mpy_ast.dec_args with
  | [ Mpy_ast.List [ Mpy_ast.Str "a"; Mpy_ast.Str "b" ] ] -> ()
  | _ -> Alcotest.fail "sys argument shape"

let test_parse_match_patterns () =
  let cls = Mpy_parser.parse_class bad_sector_source in
  let m = Option.get (Mpy_ast.find_method cls "open_a") in
  match m.Mpy_ast.meth_body with
  | [ { stmt = Mpy_ast.Match (scrutinee, cases); _ } ] ->
    (match scrutinee with
    | Mpy_ast.Call (Mpy_ast.Attr (Mpy_ast.Attr (Mpy_ast.Name "self", "a"), "test"), []) -> ()
    | e -> Alcotest.failf "unexpected scrutinee %s" (Format.asprintf "%a" Mpy_ast.pp_expr e));
    Alcotest.(check int) "two cases" 2 (List.length cases);
    (match List.map fst cases with
    | [ Mpy_ast.Pat_list [ "open" ]; Mpy_ast.Pat_list [ "clean" ] ] -> ()
    | _ -> Alcotest.fail "case patterns")
  | _ -> Alcotest.fail "body shape"

let test_parse_return_tuple () =
  let source = "class C:\n    def m(self):\n        return [\"close\"], 2\n" in
  let cls = Mpy_parser.parse_class source in
  let m = Option.get (Mpy_ast.find_method cls "m") in
  match Mpy_ast.returns_of_method m with
  | [ { ret_next = Some [ "close" ]; ret_has_value = true; _ } ] -> ()
  | _ -> Alcotest.fail "tuple return not recognized"

let test_parse_while_for () =
  let source =
    "class C:\n    def m(self):\n        while self.p.ready():\n            self.p.poll()\n        for i in range(3):\n            self.p.tick()\n        return []\n"
  in
  let cls = Mpy_parser.parse_class source in
  let m = Option.get (Mpy_ast.find_method cls "m") in
  Alcotest.(check int) "three statements" 3 (List.length m.Mpy_ast.meth_body)

let test_parse_errors_have_positions () =
  let source = "class C:\n    def m(self):\n        try:\n            pass\n" in
  (try
     ignore (Mpy_parser.parse_program source);
     Alcotest.fail "expected a parse error"
   with
  | Mpy_parser.Parse_error (_, line, _) -> Alcotest.(check bool) "line recorded" true (line >= 3)
  | Mpy_lexer.Lex_error _ -> ())

(* Table-driven corpus of malformed sources with the *exact* (line, col) the
   lexer/parser must blame, plus a fragment of the message. Positions are
   1-based lines and 0-based columns, matching the token positions. *)
type expected_error =
  | Lex of int * int * string
  | Parse of int * int * string

let position_corpus =
  [
    ("unterminated string dq", "s = \"oops\nx = 1\n", Lex (1, 4, "unterminated string"));
    ("unterminated string sq", "s = 'oops\n", Lex (1, 4, "unterminated string"));
    ("unterminated string at eof", "s = \"oops", Lex (1, 4, "unterminated string"));
    ( "unterminated string second line",
      "x = 1\ns = \"oops\n",
      Lex (2, 4, "unterminated string") );
    ("inconsistent dedent", "if a:\n        x()\n   y()\n", Lex (3, 3, "dedent"));
    ("unexpected character", "x = 1\ny = $\n", Lex (2, 4, "unexpected character '$'"));
    ("class missing colon", "class C\n    pass\n", Parse (1, 7, "expected ':'"));
    ( "def missing colon",
      "class C:\n    def m(self)\n        return []\n",
      Parse (2, 15, "expected ':'") );
    ( "nested def",
      "class C:\n    def m(self):\n        def h():\n            pass\n",
      Parse (3, 8, "nested function definitions") );
    ("bad match pattern", "class C:\n    def m(self):\n        match x:\n            case !: pass\n",
      Lex (4, 17, "unexpected character '!'"));
    ("dangling expression", "x = )\n", Parse (1, 4, "expected an expression"));
  ]

let test_error_positions_exact () =
  List.iter
    (fun (name, source, expected) ->
      let fail_got kind line col msg =
        Alcotest.failf "%s: got %s at %d:%d (%s)" name kind line col msg
      in
      match Mpy_parser.parse_program source with
      | _ -> Alcotest.failf "%s: expected an error" name
      | exception Mpy_lexer.Lex_error (msg, line, col) -> (
        match expected with
        | Lex (el, ec, fragment) ->
          Alcotest.(check (pair int int)) (name ^ ": position") (el, ec) (line, col);
          Alcotest.(check bool) (name ^ ": message") true (Testutil.contains msg fragment)
        | Parse _ -> fail_got "Lex_error" line col msg)
      | exception Mpy_parser.Parse_error (msg, line, col) -> (
        match expected with
        | Parse (el, ec, fragment) ->
          Alcotest.(check (pair int int)) (name ^ ": position") (el, ec) (line, col);
          Alcotest.(check bool) (name ^ ": message") true (Testutil.contains msg fragment)
        | Lex _ -> fail_got "Parse_error" line col msg))
    position_corpus

(* The tolerant parser must blame the same positions through its diagnostics. *)
let test_tolerant_diagnostics_same_positions () =
  List.iter
    (fun (name, source, expected) ->
      let _, diags = Mpy_parser.parse_program_tolerant source in
      let el, ec =
        match expected with
        | Lex (l, c, _) | Parse (l, c, _) -> (l, c)
      in
      Alcotest.(check bool)
        (name ^ ": diagnosed at same position")
        true
        (List.exists
           (fun d -> d.Mpy_parser.diag_line = el && d.Mpy_parser.diag_col = ec)
           diags))
    position_corpus

let test_parse_nested_def_rejected () =
  let source = "class C:\n    def m(self):\n        def helper():\n            pass\n" in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Mpy_parser.parse_program source);
       false
     with Mpy_parser.Parse_error _ -> true)

let test_parse_program_toplevel () =
  let source = "import machine\n\nv = Valve()\nv.test()\n" in
  let prog = Mpy_parser.parse_program source in
  Alcotest.(check int) "no classes" 0 (List.length prog.Mpy_ast.prog_classes);
  Alcotest.(check int) "three top-level stmts" 3 (List.length prog.Mpy_ast.prog_toplevel)

let test_parse_expression () =
  match Mpy_parser.parse_expression "self.a.test()" with
  | Mpy_ast.Call (Mpy_ast.Attr (Mpy_ast.Attr (Mpy_ast.Name "self", "a"), "test"), []) -> ()
  | e -> Alcotest.failf "unexpected expression %s" (Format.asprintf "%a" Mpy_ast.pp_expr e)

let test_parse_operators () =
  match Mpy_parser.parse_expression "1 + 2 * 3 == 7 and not x" with
  | Mpy_ast.Binop ("and", Mpy_ast.Binop ("==", _, _), Mpy_ast.Unop ("not", _)) -> ()
  | e -> Alcotest.failf "unexpected precedence: %s" (Format.asprintf "%a" Mpy_ast.pp_expr e)

(* --- Lowering ----------------------------------------------------------------- *)

let lower_method_of source name =
  let cls = Mpy_parser.parse_class source in
  Mpy_lower.lower_method (Option.get (Mpy_ast.find_method cls name))

let test_lower_valve_open () =
  let lowered = lower_method_of valve_source "open" in
  (* self.control.on() then return ["close"]: event, marker, return. *)
  let plain = Mpy_lower.strip_markers lowered.Mpy_lower.low_prog in
  Alcotest.(check bool) "control.on then return" true
    (Semantics.derivable Semantics.Returned (tr [ "control.on" ]) plain);
  Alcotest.(check int) "one exit" 1 (List.length lowered.Mpy_lower.low_exits)

let test_lower_valve_test_branches () =
  let lowered = lower_method_of valve_source "test" in
  let plain = Mpy_lower.strip_markers lowered.Mpy_lower.low_prog in
  (* Either branch reads the status pin then returns. *)
  Alcotest.(check bool) "status.value then return" true
    (Semantics.derivable Semantics.Returned (tr [ "status.value" ]) plain);
  Alcotest.(check int) "two exits" 2 (List.length lowered.Mpy_lower.low_exits)

let test_lower_exit_markers_distinct () =
  let lowered = lower_method_of valve_source "test" in
  let markers =
    Symbol.Set.filter
      (fun s -> Mpy_lower.is_exit_marker s <> None)
      (Prog.calls lowered.Mpy_lower.low_prog)
  in
  Alcotest.(check int) "two distinct markers" 2 (Symbol.Set.cardinal markers)

let test_exit_marker_roundtrip () =
  let m = Mpy_lower.exit_marker ~method_name:"open_a" 3 in
  Alcotest.(check (option (pair string int))) "roundtrip" (Some ("open_a", 3))
    (Mpy_lower.is_exit_marker m);
  Alcotest.(check (option (pair string int))) "ordinary symbol" None
    (Mpy_lower.is_exit_marker (sym "a.test"))

let test_field_call_events_order () =
  let e = Mpy_parser.parse_expression "self.a.combine(self.b.get(), self.c.get())" in
  Alcotest.(check (list string)) "arguments before call"
    [ "b.get"; "c.get"; "a.combine" ]
    (List.map Symbol.name (Mpy_lower.field_call_events e))

let test_field_call_ignores_non_fields () =
  let e = Mpy_parser.parse_expression "print(len(x), self.a.poll())" in
  Alcotest.(check (list string)) "only field calls" [ "a.poll" ]
    (List.map Symbol.name (Mpy_lower.field_call_events e))

let test_lower_match_is_choice () =
  let lowered = lower_method_of bad_sector_source "open_a" in
  let plain = Mpy_lower.strip_markers lowered.Mpy_lower.low_prog in
  Alcotest.(check bool) "open branch" true
    (Semantics.derivable Semantics.Returned (tr [ "a.test"; "a.open" ]) plain);
  Alcotest.(check bool) "clean branch" true
    (Semantics.derivable Semantics.Returned (tr [ "a.test"; "a.clean" ]) plain);
  Alcotest.(check bool) "branches don't mix" false
    (Semantics.in_behavior (tr [ "a.test"; "a.open"; "a.clean" ]) plain)

let test_lower_while_is_loop () =
  let source =
    "class C:\n    def m(self):\n        while self.p.more():\n            self.p.next()\n        return []\n"
  in
  let lowered = lower_method_of source "m" in
  let plain = Mpy_lower.strip_markers lowered.Mpy_lower.low_prog in
  (* cond, (body cond)*, return: more, (next more)* *)
  Alcotest.(check bool) "zero iterations" true
    (Semantics.derivable Semantics.Returned (tr [ "p.more" ]) plain);
  Alcotest.(check bool) "two iterations" true
    (Semantics.derivable Semantics.Returned
       (tr [ "p.more"; "p.next"; "p.more"; "p.next"; "p.more" ])
       plain)

let test_lower_break_warns () =
  let source =
    "class C:\n    def m(self):\n        while True:\n            break\n        return []\n"
  in
  let lowered = lower_method_of source "m" in
  Alcotest.(check bool) "warning emitted" true (lowered.Mpy_lower.low_warnings <> [])

let test_lower_implicit_else () =
  let source =
    "class C:\n    def m(self):\n        if x:\n            self.p.go()\n        return []\n"
  in
  let lowered = lower_method_of source "m" in
  let plain = Mpy_lower.strip_markers lowered.Mpy_lower.low_prog in
  Alcotest.(check bool) "skip branch exists" true
    (Semantics.derivable Semantics.Returned [] plain);
  Alcotest.(check bool) "go branch exists" true
    (Semantics.derivable Semantics.Returned (tr [ "p.go" ]) plain)

(* --- Pretty-printer round-trips -------------------------------------------------- *)

let roundtrip_class source =
  let ast = Mpy_parser.parse_class source in
  let printed = Mpy_pretty.print_class ast in
  let reparsed =
    try Mpy_parser.parse_class printed
    with
    | Mpy_parser.Parse_error (msg, line, col) ->
      Alcotest.failf "re-parse failed at %d:%d (%s) in:\n%s" line col msg printed
    | Mpy_lexer.Lex_error (msg, line, col) ->
      Alcotest.failf "re-lex failed at %d:%d (%s) in:\n%s" line col msg printed
  in
  if not (Mpy_pretty.equal_class ast reparsed) then
    Alcotest.failf "round-trip changed the AST; printed form:\n%s" printed

let test_pretty_valve_roundtrip () = roundtrip_class valve_source
let test_pretty_bad_sector_roundtrip () = roundtrip_class bad_sector_source

let test_pretty_operators_roundtrip () =
  let exprs =
    [
      "1 + 2 * 3";
      "(1 + 2) * 3";
      "a or b and not c";
      "(a or b) and c";
      "x == y + 1";
      "not x in ys";
      "self.a.f(self.b.g(1), [2, 3])";
      "-x + +y";
      "xs[0]";
      "(a, b)";
    ]
  in
  List.iter
    (fun text ->
      let e = Mpy_parser.parse_expression text in
      let printed = Mpy_pretty.print_expr e in
      let reparsed = Mpy_parser.parse_expression printed in
      if not (Mpy_pretty.equal_expr e reparsed) then
        Alcotest.failf "expression round-trip broke: %s -> %s" text printed)
    exprs

let test_pretty_statements_roundtrip () =
  roundtrip_class
    "class C:\n\
    \    def m(self):\n\
    \        pass\n\
    \        x = 1\n\
    \        while x < 3:\n\
    \            x += 1\n\
    \            continue\n\
    \        for i in range(3):\n\
    \            break\n\
    \        if a:\n\
    \            return\n\
    \        elif b:\n\
    \            return None\n\
    \        else:\n\
    \            return [\"m\"], 2\n"

let test_pretty_program_roundtrip () =
  let source = valve_source ^ bad_sector_source ^ "\nv = Valve()\nv.test()\n" in
  let ast = Mpy_parser.parse_program source in
  let printed = Mpy_pretty.print_program ast in
  let reparsed = Mpy_parser.parse_program printed in
  Alcotest.(check bool) "program round-trip" true (Mpy_pretty.equal_program ast reparsed)

let test_pretty_equal_ignores_lines () =
  let a = Mpy_parser.parse_class valve_source in
  let b = Mpy_parser.parse_class ("\n\n\n" ^ valve_source) in
  Alcotest.(check bool) "positions ignored" true (Mpy_pretty.equal_class a b)

(* --- Robustness: the frontend never crashes, it only raises its declared
   exceptions ------------------------------------------------------------- *)

let prop_parser_total =
  qtest "lexer/parser raise only declared exceptions" ~count:300
    QCheck2.Gen.(string_size ~gen:(char_range '\t' '~') (int_range 0 60))
    ~print:(Printf.sprintf "%S")
    (fun source ->
      match Mpy_parser.parse_program source with
      | _ -> true
      | exception Mpy_parser.Parse_error _ -> true
      | exception Mpy_lexer.Lex_error _ -> true)

let prop_parser_total_structured =
  (* Fuzz with token-ish fragments, which reach much deeper than raw chars. *)
  qtest "structured fuzz" ~count:300
    QCheck2.Gen.(
      map (String.concat " ")
        (list_size (int_range 0 25)
           (oneofl
              [
                "class"; "def"; "return"; "if"; "else"; "elif"; "match"; "case"; "while";
                "for"; "in"; "pass"; ":"; "("; ")"; "["; "]"; ","; "."; "="; "=="; "@";
                "self"; "x"; "f"; "\"s\""; "1"; "\n"; "\n    "; "\n        ";
              ])))
    ~print:(Printf.sprintf "%S")
    (fun source ->
      match Mpy_parser.parse_program source with
      | _ -> true
      | exception Mpy_parser.Parse_error _ -> true
      | exception Mpy_lexer.Lex_error _ -> true)

let () =
  Alcotest.run "micropython"
    [
      ( "lexer",
        [
          Alcotest.test_case "simple line" `Quick test_lex_simple_line;
          Alcotest.test_case "indentation" `Quick test_lex_indentation;
          Alcotest.test_case "nested dedents" `Quick test_lex_nested_dedents;
          Alcotest.test_case "blank lines and comments" `Quick test_lex_blank_lines_and_comments;
          Alcotest.test_case "implicit line joining" `Quick test_lex_implicit_line_joining;
          Alcotest.test_case "string escapes" `Quick test_lex_string_escapes;
          Alcotest.test_case "unterminated string" `Quick test_lex_unterminated_string;
          Alcotest.test_case "inconsistent dedent" `Quick test_lex_inconsistent_dedent;
          Alcotest.test_case "eof dedents" `Quick test_lex_eof_dedents;
          Alcotest.test_case "decorator" `Quick test_lex_decorator;
          Alcotest.test_case "positions" `Quick test_lex_positions;
        ] );
      ( "parser",
        [
          Alcotest.test_case "valve class" `Quick test_parse_valve;
          Alcotest.test_case "valve decorators" `Quick test_parse_valve_method_decorators;
          Alcotest.test_case "valve returns" `Quick test_parse_valve_returns;
          Alcotest.test_case "bad sector" `Quick test_parse_bad_sector;
          Alcotest.test_case "match patterns" `Quick test_parse_match_patterns;
          Alcotest.test_case "return tuple" `Quick test_parse_return_tuple;
          Alcotest.test_case "while and for" `Quick test_parse_while_for;
          Alcotest.test_case "errors have positions" `Quick test_parse_errors_have_positions;
          Alcotest.test_case "error positions exact" `Quick test_error_positions_exact;
          Alcotest.test_case "tolerant diagnostics positions" `Quick
            test_tolerant_diagnostics_same_positions;
          Alcotest.test_case "nested def rejected" `Quick test_parse_nested_def_rejected;
          Alcotest.test_case "top-level program" `Quick test_parse_program_toplevel;
          Alcotest.test_case "expression" `Quick test_parse_expression;
          Alcotest.test_case "operator precedence" `Quick test_parse_operators;
        ] );
      ( "lowering",
        [
          Alcotest.test_case "valve open" `Quick test_lower_valve_open;
          Alcotest.test_case "valve test branches" `Quick test_lower_valve_test_branches;
          Alcotest.test_case "exit markers distinct" `Quick test_lower_exit_markers_distinct;
          Alcotest.test_case "exit marker roundtrip" `Quick test_exit_marker_roundtrip;
          Alcotest.test_case "field call order" `Quick test_field_call_events_order;
          Alcotest.test_case "non-field calls ignored" `Quick test_field_call_ignores_non_fields;
          Alcotest.test_case "match is choice" `Quick test_lower_match_is_choice;
          Alcotest.test_case "while is loop" `Quick test_lower_while_is_loop;
          Alcotest.test_case "break warns" `Quick test_lower_break_warns;
          Alcotest.test_case "implicit else" `Quick test_lower_implicit_else;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "valve round-trip" `Quick test_pretty_valve_roundtrip;
          Alcotest.test_case "bad sector round-trip" `Quick test_pretty_bad_sector_roundtrip;
          Alcotest.test_case "operators round-trip" `Quick test_pretty_operators_roundtrip;
          Alcotest.test_case "statements round-trip" `Quick test_pretty_statements_roundtrip;
          Alcotest.test_case "program round-trip" `Quick test_pretty_program_roundtrip;
          Alcotest.test_case "equality ignores lines" `Quick test_pretty_equal_ignores_lines;
        ] );
      ("robustness", [ prop_parser_total; prop_parser_total_structured ]);
    ]
