(* The paper's theorems, replayed as bounded-exhaustive and property-based
   tests. The semantics oracle (lfp trace enumeration) and the inference
   (regex construction) are implemented independently; here they are forced
   to agree.

   Theorem 1 (Soundness):    l ∈ L(p) ⟹ l ∈ infer(p)
   Theorem 2 (Completeness): l ∈ infer(p) ⟹ l ∈ L(p)
   Corollary 1:              L(p) is regular (round-trips through automata) *)

open Testutil

let max_len = 4

let bounded_language_of_infer p =
  (* Enumerate L(infer p) over the *program's* alphabet: words can only use
     symbols of the regex, so this is exact. *)
  Enumerate.words_upto ~max_len (Infer.infer p)

let bounded_semantics p = Semantics.behavior_upto ~max_len p

let theorems_hold p =
  Trace.Set.equal (bounded_language_of_infer p) (bounded_semantics p)

let soundness_holds p =
  Trace.Set.subset (bounded_semantics p) (bounded_language_of_infer p)

let completeness_holds p =
  Trace.Set.subset (bounded_language_of_infer p) (bounded_semantics p)

(* Also split by status: ongoing traces must be in the ongoing component and
   returned traces in the union of the returned component. This is the pair
   (1)/(2) structure of the paper's proofs. *)
let lemma_split_holds p =
  let d = Infer.denote p in
  let sem = Semantics.traces_upto ~max_len p in
  let ongoing_ok =
    Trace.Set.equal sem.Semantics.ongoing (Enumerate.words_upto ~max_len d.Infer.ongoing)
  in
  let returned_language =
    List.fold_left
      (fun acc r -> Trace.Set.union acc (Enumerate.words_upto ~max_len r))
      Trace.Set.empty d.Infer.returned
  in
  let returned_ok = Trace.Set.equal sem.Semantics.returned returned_language in
  ongoing_ok && returned_ok

(* --- Bounded-exhaustive: every program up to size 6 over {a, b} -------------- *)

let small_alphabet = [ sym "a"; sym "b" ]
let tri_alphabet = [ sym "a"; sym "b"; sym "c" ]

(* The three-letter pass runs one size deeper in the nightly job
   (SHELLEY_THEOREMS_DEEP=1): 7030 programs instead of 1525. The default
   keeps tier-1 wall-clock in check while nightly buys the bigger net. *)
let tri_size = if Sys.getenv_opt "SHELLEY_THEOREMS_DEEP" <> None then 6 else 5

let test_exhaustive_small () =
  let progs = Prog_gen.all_upto_size ~size:6 ~alphabet:small_alphabet in
  Alcotest.(check bool) "non-trivial corpus" true (List.length progs > 3000);
  List.iter
    (fun p ->
      if not (theorems_hold p) then
        Alcotest.failf "theorems fail on %s" (Prog.to_string p))
    progs

let test_exhaustive_small_split () =
  let progs = Prog_gen.all_upto_size ~size:6 ~alphabet:small_alphabet in
  List.iter
    (fun p ->
      if not (lemma_split_holds p) then
        Alcotest.failf "status-split lemma fails on %s" (Prog.to_string p))
    progs

(* --- Named corpus --------------------------------------------------------------- *)

let test_corpus () =
  List.iter
    (fun (name, p) ->
      if not (theorems_hold p) then Alcotest.failf "theorems fail on corpus entry %s" name;
      if not (lemma_split_holds p) then Alcotest.failf "split fails on corpus entry %s" name)
    Ir_examples.corpus

let test_paper_loop_language () =
  (* The behavior of the paper's loop up to length 4. Note there is no
     prefix-closure: a trace is either a completed non-returned run (an
     (a·c)-alternation) or a returned run (ending in a·b). *)
  let expected =
    Trace.Set.of_list
      [
        [];
        tr [ "a"; "b" ];
        tr [ "a"; "c" ];
        tr [ "a"; "c"; "a"; "b" ];
        tr [ "a"; "c"; "a"; "c" ];
      ]
  in
  Alcotest.check trace_set "language up to 4" expected
    (bounded_semantics Ir_examples.paper_loop);
  Alcotest.check trace_set "inference agrees" expected
    (bounded_language_of_infer Ir_examples.paper_loop)

(* --- Properties (random larger programs, shrinking counterexamples) ---------------- *)

let prop_soundness =
  qtest_arb "Theorem 1 (soundness)" ~count:300 prog_arb soundness_holds

let prop_completeness =
  qtest_arb "Theorem 2 (completeness)" ~count:300 prog_arb completeness_holds

let prop_split =
  qtest_arb "proof lemmas (1)/(2): status split" ~count:200 prog_arb lemma_split_holds

(* Corollary 1: L(p) is regular. We realize the regular language as an
   automaton, minimize it, convert back to a regex, and require the bounded
   language to survive every leg of the trip. *)
let corollary_roundtrip p =
  let r = Infer.infer p in
  let sem = bounded_semantics p in
  let nfa = Glushkov.of_regex r in
  let dfa = Minimize.minimize (Determinize.determinize nfa) in
  let back = State_elim.to_regex (Dfa.to_nfa dfa) in
  Trace.Set.equal sem (Nfa.words_upto ~max_len nfa)
  && Trace.Set.equal sem (Dfa.words_upto ~max_len dfa)
  && Trace.Set.equal sem (Enumerate.words_upto_over ~alphabet:(Regex.alphabet r) ~max_len back)

let prop_corollary =
  qtest_arb "Corollary 1 (regularity round-trip)" ~count:150 prog_arb corollary_roundtrip

(* Theorems 1–2 and Corollary 1 pinned over a *three*-letter alphabet: the
   two-letter pass cannot distinguish, e.g., a bug that conflates the two
   non-looping symbols. Exhaustive up to [tri_size]. *)
let test_exhaustive_tri () =
  let progs = Prog_gen.all_upto_size ~size:tri_size ~alphabet:tri_alphabet in
  Alcotest.(check bool) "non-trivial corpus" true (List.length progs > 1000);
  List.iter
    (fun p ->
      if not (theorems_hold p) then
        Alcotest.failf "theorems fail on %s" (Prog.to_string p);
      if not (corollary_roundtrip p) then
        Alcotest.failf "round-trip fails on %s" (Prog.to_string p))
    progs

let test_corollary_on_corpus () =
  List.iter
    (fun (name, p) ->
      if not (corollary_roundtrip p) then Alcotest.failf "round-trip fails on %s" name)
    Ir_examples.corpus

(* The denotation refines the behavior: ongoing ∩ returned components need not
   be disjoint as *languages* (two paths can emit the same trace), but every
   returned regex must be included in infer(p). *)
let prop_returned_included =
  qtest_arb "returned behaviors included in infer" ~count:200 prog_arb
    (fun p ->
      let d = Infer.denote p in
      let whole = Infer.infer p in
      List.for_all (fun r -> Equiv.included r whole) (Regex.empty :: d.Infer.returned)
      && Equiv.included d.Infer.ongoing whole)

let () =
  Alcotest.run "theorems"
    [
      ( "bounded-exhaustive",
        [
          Alcotest.test_case "all programs ≤ size 6" `Slow test_exhaustive_small;
          Alcotest.test_case "status split ≤ size 6" `Slow test_exhaustive_small_split;
          Alcotest.test_case "three-letter alphabet" `Slow test_exhaustive_tri;
          Alcotest.test_case "named corpus" `Quick test_corpus;
          Alcotest.test_case "paper loop language" `Quick test_paper_loop_language;
          Alcotest.test_case "corollary on corpus" `Quick test_corollary_on_corpus;
        ] );
      ( "property-based",
        [
          prop_soundness;
          prop_completeness;
          prop_split;
          prop_corollary;
          prop_returned_included;
        ] );
    ]
