(* The static-analysis pass: rule registry, suppression scanner, engine
   determinism (same bytes for any -j level and any input order), exit
   codes, and the three renderers. *)

let valve_source =
  {|
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)

    @op_initial
    def test(self):
        return ["open"]

    @op
    def open(self):
        self.control.on()
        return ["close"]

    @op_final
    def close(self):
        self.control.off()
        return ["test"]
|}

let dead_op_source =
  {|
@sys
class Tank:
    def __init__(self):
        self.pump = Pin(1, OUT)

    @op_initial_final
    def fill(self):
        self.pump.on()
        return ["fill"]

    @op_final
    def drain(self):
        self.pump.off()
        return []
|}

let unsat_source =
  valve_source
  ^ {|
@claim("F (a.open && a.close)")
@sys(["a"])
class Rig:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def cycle(self):
        self.a.open()
        return []
|}

let broken_source = "class Broken:\n    def m(self:\n        return []\n"

let corpus_dir =
  lazy
    (let dir = Filename.temp_file "shelley_lint" "" in
     Sys.remove dir;
     Unix.mkdir dir 0o700;
     let write name contents =
       let path = Filename.concat dir name in
       let oc = open_out_bin path in
       output_string oc contents;
       close_out oc;
       path
     in
     [
       write "ok.py" valve_source;
       write "dead.py" dead_op_source;
       write "unsat.py" unsat_source;
       write "broken.py" broken_source;
     ])

let codes (r : Lint.file_result) = List.map (fun d -> d.Lint.rule) r.Lint.findings

(* --- Registry -------------------------------------------------------------- *)

let test_registry_codes_unique () =
  let cs = List.map (fun (r : Rules.t) -> r.Rules.code) Rules.all in
  Alcotest.(check int)
    "codes are unique" (List.length cs)
    (List.length (List.sort_uniq compare cs));
  List.iter
    (fun (r : Rules.t) ->
      match Rules.find_code r.Rules.code with
      | Some r' -> Alcotest.(check string) "find_code roundtrip" r.Rules.name r'.Rules.name
      | None -> Alcotest.failf "find_code misses %s" r.Rules.code)
    Rules.all;
  Alcotest.(check bool) "unknown code" true (Rules.find_code "SY999" = None)

(* The satellite contract: 'check' renders exactly Validate.diagnostics, so
   the two surfaces can never drift apart in wording. *)
let test_validate_routed_through_registry () =
  let cls = Mpy_parser.parse_class dead_op_source in
  let model = (Extract.extract_class cls).Extract.model in
  let from_diags =
    List.map
      (fun ((rule : Rules.t), line, msg) ->
        Report.structural ?line rule.Rules.severity ~class_name:model.Model.name msg)
      (Validate.diagnostics model)
  in
  Alcotest.(check (list string))
    "check = registry-routed diagnostics"
    (List.map Report.to_string (Validate.check model))
    (List.map Report.to_string from_diags)

(* --- Suppression scanner --------------------------------------------------- *)

let test_suppression_scanner () =
  let src =
    "x = 1  # shelley: disable=SY101,SY006\n# shelley: disable\n"
    ^ "   # shelley: disable=SY001\n# shelley:disable=SY002\n# unrelated\n"
  in
  match Mpy_parser.suppressions src with
  | [ a; b; c; d ] ->
    Alcotest.(check (list string)) "trailing codes" [ "SY101"; "SY006" ] a.Mpy_parser.sup_codes;
    Alcotest.(check bool) "trailing is not standalone" false a.Mpy_parser.sup_standalone;
    Alcotest.(check (list string)) "bare disable = all codes" [] b.Mpy_parser.sup_codes;
    Alcotest.(check bool) "standalone" true b.Mpy_parser.sup_standalone;
    Alcotest.(check int) "line numbers are 1-based" 3 c.Mpy_parser.sup_line;
    Alcotest.(check (list string)) "no space after colon" [ "SY002" ] d.Mpy_parser.sup_codes
  | sups -> Alcotest.failf "expected 4 suppressions, got %d" (List.length sups)

let test_suppression_silences () =
  (* dead_op_source: the SY006/SY101 pair sits on drain's def line. *)
  let lines = String.split_on_char '\n' dead_op_source in
  let with_comment =
    List.map
      (fun l ->
        if l = "    def drain(self):" then l ^ "  # shelley: disable=SY006,SY101" else l)
      lines
    |> String.concat "\n"
  in
  let plain = Lint.lint_source ~file:"t.py" dead_op_source in
  let silenced = Lint.lint_source ~file:"t.py" with_comment in
  Alcotest.(check (list string)) "plain findings" [ "SY006"; "SY101" ] (codes plain);
  Alcotest.(check (list string)) "all silenced" [] (codes silenced);
  Alcotest.(check int) "kept as suppressed" 2 (List.length silenced.Lint.suppressed);
  Alcotest.(check int) "exit 0 once suppressed" 0 (Lint.file_exit_code silenced)

let test_unknown_suppression_code () =
  let src = dead_op_source ^ "# shelley: disable=SY999\n" in
  let r = Lint.lint_source ~file:"t.py" src in
  Alcotest.(check bool) "SY012 reported" true (List.mem "SY012" (codes r))

(* --- Exit codes ------------------------------------------------------------ *)

let test_exit_codes () =
  let code src = Lint.file_exit_code (Lint.lint_source ~file:"t.py" src) in
  Alcotest.(check int) "clean file" 0 (code valve_source);
  Alcotest.(check int) "warnings only" 0 (code dead_op_source);
  Alcotest.(check int) "error finding" 1 (code unsat_source);
  Alcotest.(check int) "syntax error" 2 (code broken_source);
  Alcotest.(check int) "unreadable file" 2
    (Lint.file_exit_code (Lint.lint_path "definitely/not/a/file.py"));
  let tiny = Limits.make ~max_states:2 ~max_configs:2 () in
  Alcotest.(check int) "blown rule budget" 3
    (Lint.file_exit_code (Lint.lint_source ~limits:tiny ~file:"t.py" unsat_source));
  Alcotest.(check int) "aggregate = max" 2
    (Lint.exit_code
       [
         Lint.lint_source ~file:"a.py" valve_source;
         Lint.lint_source ~file:"b.py" broken_source;
       ])

(* --- Determinism ----------------------------------------------------------- *)

(* Random annotated classes: operation graphs with possibly-dangling
   returns, duplicate names, claims from a pool, and suppression comments —
   enough variety to drive every rule family through the engine. *)
let gen_source =
  let open QCheck2.Gen in
  let op_pool = [| "go"; "stop"; "ping"; "reset" |] in
  let claim_pool =
    [| "F a.open"; "a.open || !a.open"; "F (a.open && a.close)"; "(!a.open) W a.close" |]
  in
  let* n_ops = int_range 1 4 in
  let* ops =
    list_repeat n_ops
      (let* name = oneofa op_pool in
       let* deco = oneofa [| "@op"; "@op_initial"; "@op_final"; "@op_initial_final" |] in
       let* call = bool in
       let* nexts = list_size (int_range 0 2) (oneofa [| "go"; "stop"; "missing" |]) in
       let* suppress = bool in
       return (name, deco, call, nexts, suppress))
  in
  let* with_claim = bool in
  let* claim = oneofa claim_pool in
  let header = if with_claim then [ Printf.sprintf {|@claim("%s")|} claim ] else [] in
  let body =
    List.concat_map
      (fun (name, deco, call, nexts, suppress) ->
        let ret =
          Printf.sprintf "        return [%s]"
            (String.concat ", " (List.map (Printf.sprintf "\"%s\"") nexts))
        in
        let sup = if suppress then "  # shelley: disable=SY101,SY006,SY007" else "" in
        [
          Printf.sprintf "    %s" deco;
          Printf.sprintf "    def %s(self):%s" name sup;
          (if call then "        self.a.open()" else "        self.idle = 1");
          ret;
        ])
      ops
  in
  return
    (String.concat "\n"
       (valve_source
        :: (header
           @ [ {|@sys(["a"])|}; "class Rig:"; "    def __init__(self):";
               "        self.a = Valve()"; ]
           @ body))
    ^ "\n")

let test_lint_source_deterministic =
  QCheck2.Test.make ~count:60 ~name:"lint_source is a pure function of the source"
    gen_source (fun src ->
      let a = Lint.lint_source ~file:"gen.py" src in
      let b = Lint.lint_source ~file:"gen.py" src in
      String.equal (Lint_render.json [ a ]) (Lint_render.json [ b ])
      && String.equal (Lint_render.sarif [ a ]) (Lint_render.sarif [ b ]))

let shuffle seed l =
  let st = Random.State.make [| seed |] in
  let tagged = List.map (fun x -> (Random.State.bits st, x)) l in
  List.map snd (List.sort (fun (a, _) (b, _) -> compare a b) tagged)

(* The `shelley lint -j N` contract: per-file results depend only on the
   file, and aggregation follows input order — any jobs count and any
   input order render the same bytes per path. *)
let test_lint_files_deterministic =
  QCheck2.Test.make ~count:12 ~name:"lint -j N / shuffled inputs deterministic"
    QCheck2.Gen.(pair (int_range 1 4) int)
    (fun (jobs, seed) ->
      let paths = Lazy.force corpus_dir in
      let baseline = Checker.lint_files ~jobs:1 paths in
      let shuffled = shuffle seed paths in
      let got = Checker.lint_files ~jobs shuffled in
      List.iter2
        (fun path (r : Lint.file_result) -> assert (String.equal path r.Lint.lint_file))
        shuffled got;
      List.for_all
        (fun (r : Lint.file_result) ->
          let b =
            List.find
              (fun (b : Lint.file_result) ->
                String.equal b.Lint.lint_file r.Lint.lint_file)
              baseline
          in
          String.equal (Lint_render.text [ b ]) (Lint_render.text [ r ])
          && Lint.file_exit_code b = Lint.file_exit_code r)
        got)

(* --- check --lint ---------------------------------------------------------- *)

let test_check_lint_additive () =
  let paths = Lazy.force corpus_dir in
  let off = Checker.check_files ~jobs:1 paths in
  let off' = Checker.check_files ~jobs:1 ~lint:false paths in
  List.iter2
    (fun (a : Checker.verdict) (b : Checker.verdict) ->
      Alcotest.(check string) "lint:false output is classic" a.Checker.output
        b.Checker.output;
      Alcotest.(check int) "lint:false code is classic" a.Checker.code b.Checker.code)
    off off';
  let on = Checker.check_files ~jobs:1 ~lint:true paths in
  let find name l =
    List.find (fun (v : Checker.verdict) -> Filename.basename v.Checker.path = name) l
  in
  (* A clean file stays silent with linting on... *)
  Alcotest.(check string) "ok.py stays silent" ""
    (find "ok.py" off).Checker.output;
  Alcotest.(check string) "ok.py stays silent with --lint" ""
    (find "ok.py" on).Checker.output;
  (* ...a file with only semantic findings gains a block but keeps code 0
     (warnings), and an error-severity finding raises the code. *)
  Alcotest.(check string) "dead.py silent without lint" ""
    (find "dead.py" off).Checker.output;
  Alcotest.(check bool) "dead.py gains the SY101 line" true
    (Testutil.contains (find "dead.py" on).Checker.output "SY101");
  Alcotest.(check int) "warnings do not fail" 0 (find "dead.py" on).Checker.code;
  Alcotest.(check bool) "no SY006 duplication (check has no counterpart printed)" true
    (not (Testutil.contains (find "dead.py" on).Checker.output "SY00"));
  Alcotest.(check int) "unsat.py keeps its failure code" 1
    (find "unsat.py" on).Checker.code;
  Alcotest.(check bool) "unsat.py gains SY103" true
    (Testutil.contains (find "unsat.py" on).Checker.output "SY103")

(* --- Renderers ------------------------------------------------------------- *)

let test_text_line () =
  let d rule line cls =
    {
      Lint.rule;
      rule_name = "x";
      severity = Report.Warning;
      file = "f.py";
      line;
      class_name = cls;
      message = "msg";
    }
  in
  Alcotest.(check string) "full form" "f.py:3: warning SY101 [C]: msg"
    (Lint_render.text_line (d "SY101" 3 "C"));
  Alcotest.(check string) "no line, no class" "f.py: warning SY011: msg"
    (Lint_render.text_line (d "SY011" 0 ""))

let test_json_escaping () =
  let r =
    {
      Lint.lint_file = "f.py";
      findings =
        [
          {
            Lint.rule = "SY020";
            rule_name = "annotation-error";
            severity = Report.Error;
            file = "f.py";
            line = 1;
            class_name = "C";
            message = "quote \" backslash \\ tab \t end";
          };
        ];
      suppressed = [];
    }
  in
  let js = Lint_render.json [ r ] in
  Alcotest.(check bool) "escaped quote" true
    (Testutil.contains js {|quote \" backslash \\ tab \t end|});
  let sarif = Lint_render.sarif [ r ] in
  Alcotest.(check bool) "sarif carries the class prefix" true
    (Testutil.contains sarif {|[C] quote \"|})

let test_sarif_shape () =
  let results =
    [
      Lint.lint_source ~file:"dead.py" dead_op_source;
      Lint.lint_source ~file:"broken.py" broken_source;
    ]
  in
  let s = Lint_render.sarif results in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "sarif contains %s" needle) true
        (Testutil.contains s needle))
    [
      {|"version": "2.1.0"|};
      {|"name": "shelley"|};
      {|"id": "SY101"|};
      {|"ruleId": "SY101"|};
      {|"level": "warning"|};
      {|"uri": "dead.py"|};
      {|"startLine":|};
      {|"ruleId": "SY010"|};
    ];
  (* every diagnostic's rule is in the registry, so every result carries a
     ruleIndex into tool.driver.rules *)
  let occurrences needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i acc =
      if i + n > h then acc
      else go (i + 1) (if String.sub hay i n = needle then acc + 1 else acc)
    in
    go 0 0
  in
  Alcotest.(check int) "one ruleIndex per result"
    (occurrences {|"ruleId"|} s)
    (occurrences {|"ruleIndex"|} s)

let test_format_of_string () =
  Alcotest.(check bool) "text" true (Lint_render.format_of_string "text" = Ok Lint_render.Text);
  Alcotest.(check bool) "json" true (Lint_render.format_of_string "json" = Ok Lint_render.Json);
  Alcotest.(check bool) "sarif" true
    (Lint_render.format_of_string "sarif" = Ok Lint_render.Sarif);
  Alcotest.(check bool) "junk rejected" true
    (Result.is_error (Lint_render.format_of_string "yaml"))

let () =
  Alcotest.run "lint"
    [
      ( "registry",
        [
          Alcotest.test_case "codes unique, find_code total" `Quick
            test_registry_codes_unique;
          Alcotest.test_case "check routed through registry" `Quick
            test_validate_routed_through_registry;
        ] );
      ( "suppressions",
        [
          Alcotest.test_case "scanner" `Quick test_suppression_scanner;
          Alcotest.test_case "silences findings" `Quick test_suppression_silences;
          Alcotest.test_case "unknown code reported" `Quick test_unknown_suppression_code;
        ] );
      ("exit-codes", [ Alcotest.test_case "contract" `Quick test_exit_codes ]);
      ( "determinism",
        [
          QCheck_alcotest.to_alcotest test_lint_source_deterministic;
          QCheck_alcotest.to_alcotest test_lint_files_deterministic;
        ] );
      ("check-lint", [ Alcotest.test_case "strictly additive" `Quick test_check_lint_additive ]);
      ( "render",
        [
          Alcotest.test_case "text line forms" `Quick test_text_line;
          Alcotest.test_case "json escaping" `Quick test_json_escaping;
          Alcotest.test_case "sarif shape" `Quick test_sarif_shape;
          Alcotest.test_case "format parsing" `Quick test_format_of_string;
        ] );
    ]
