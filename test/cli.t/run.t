CLI golden tests. A clean class verifies:

  $ shelley check valve.py
  OK: specification verified

The paper's example reproduces both Section 2.2 transcripts:

  $ shelley check bad_sector.py
  == bad_sector.py ==
  Error in specification: INVALID SUBSYSTEM USAGE
  Counter example: open_a, a.test, a.open
  Subsystems errors:
    * Valve 'a': test, >open< (not final)
  
  Error in specification: FAIL TO MEET REQUIREMENT
  Formula: (!a.open) W b.open
  Counter example: a.test, a.open
  
  [1]

Counterexamples can be narrated:

  $ shelley check --explain bad_sector.py | sed -n '7,9p'
  1. open_a (line 42) — calls: a.test, a.open
  Valve 'a' observed: test, open
  the composite may stop here, but 'open' is not a final operation of Valve

Usage traces are checked against the class protocol:

  $ shelley trace valve.py -c Valve "test,open,close"
  VALID: test, open, close is a complete usage of Valve

  $ shelley trace valve.py -c Valve "test,open"
  INVALID: test, open is not a complete usage of Valve
  [1]

The runtime monitor narrates each step and flags illegal stops:

  $ shelley monitor valve.py -c Valve "test,open,close"
  [test] allowed: {clean, open}
  [test, open] allowed: {close}
  [test, open, close] allowed: {test} (may stop)
  [test, open, close] allowed: {test} (may stop)
  OK: legal stopping point

  $ shelley monitor valve.py -c Valve "test,close"
  [test] allowed: {clean, open}
  REJECTED 'close' (allowed: clean, open)
  [1]

Sampling is deterministic under a fixed seed:

  $ shelley sample valve.py -c Valve -n 3 --seed 7
  test, open, close, test, clean, test, clean, test, open, close
  (empty usage)
  test, open, close

The paper's behavior inference, on its own Example 1-3 program:

  $ shelley infer paper_loop
  program:   loop(★){a(); if(★){b(); return} else {c()}}
  denote:    ((a · c)*, {(a · c)* · a · b})
  infer:     (a · c)* · a · b + (a · c)*

Regular-language comparison:

  $ shelley lang "(a b)*" "(a b)* + a"
  r1 = (a · b)*
  r2 = a + (a · b)*
  r1 ⊆ r2: true
  r2 ⊆ r1: false
  distinguished by: a
  [1]

Four-valued claim monitoring:

  $ shelley watch --claim "(!a.open) W b.open" "a.test,a.open,b.open"
  (start)          presumably true
  a.test           presumably true
  a.open           definitely false
  b.open           definitely false
  [1]

Model export round-trips through the .shelley format:

  $ shelley export valve.py -o .
  wrote ./Valve.shelley
  $ head -4 Valve.shelley
  (model
    (name Valve)
    (line 3)
    (kind base)

Model metrics:

  $ shelley model valve.py --stats
  class           ops exits  sub irsize     usage  expanded   minDFA
  Valve             4     5    0     36    6/9      20/16          4

Separate verification: check a composite against exported substrate models
only (no Valve source in the checked file):

  $ shelley export valve.py -o . >/dev/null
  $ tail -31 bad_sector.py > sector_only.py
  $ shelley check --using Valve.shelley sector_only.py | head -5
  == sector_only.py ==
  Error in specification: INVALID SUBSYSTEM USAGE
  Counter example: open_a, a.test, a.open
  Subsystems errors:
    * Valve 'a': test, >open< (not final)

Fault tolerance: a file mixing one broken class with a valid one yields the
syntax diagnostic (exit 2), and one broken file never aborts the rest of the
run — every later file is still fully verified and the process exits with
the maximum per-file code:

  $ shelley check broken.py
  == broken.py ==
  Error: syntax error at line 4, col 15: expected ':' but found end of line
  
  [2]

  $ shelley check broken.py bad_sector.py
  == broken.py ==
  Error: syntax error at line 4, col 15: expected ':' but found end of line
  
  == bad_sector.py ==
  Error in specification: INVALID SUBSYSTEM USAGE
  Counter example: open_a, a.test, a.open
  Subsystems errors:
    * Valve 'a': test, >open< (not final)
  
  Error in specification: FAIL TO MEET REQUIREMENT
  Formula: (!a.open) W b.open
  Counter example: a.test, a.open
  
  [2]

A verified file alongside a broken one keeps the broken file's code:

  $ shelley check valve.py broken.py
  == broken.py ==
  Error: syntax error at line 4, col 15: expected ':' but found end of line
  
  [2]

Resource budgets: starving the automata checks degrades gracefully — the
blown check is reported (naming the exhausted budget), the other checks
still run, and the exit code is 3:

  $ shelley check --fuel 5 bad_sector.py
  == bad_sector.py ==
  Error in verification: RESOURCE LIMIT EXCEEDED
  Class: BadSector
  Check: usage (skipped; other checks still ran)
  Budget: language-product configurations (limit 5)
  
  Error in verification: RESOURCE LIMIT EXCEEDED
  Class: BadSector
  Check: claims (skipped; other checks still ran)
  Budget: language-product configurations (limit 5)
  
  [3]

  $ shelley check --max-states 2 bad_sector.py
  == bad_sector.py ==
  Error in specification: INVALID SUBSYSTEM USAGE
  Counter example: open_a, a.test, a.open
  Subsystems errors:
    * Valve 'a': test, >open< (not final)
  
  Error in verification: RESOURCE LIMIT EXCEEDED
  Class: BadSector
  Check: claims (skipped; other checks still ran)
  Budget: progression obligations (limit 2)
  
  [3]

Under the default budget the same file reports plain verification failures
(exit 1), so resource exhaustion is never confused with a specification bug:

  $ shelley check bad_sector.py >/dev/null; echo "exit $?"
  exit 1

An unreadable path is reported like any other per-file failure — it is not
rejected up front by argument parsing, and the remaining files still run:

  $ shelley check no_such_file.py valve.py
  == no_such_file.py ==
  Error: cannot read file: no_such_file.py: No such file or directory
  
  [2]

Parallel checking: -j N forks one worker per file and replays the report
blocks in input order, so the output is byte-identical to a sequential run
(same bytes, same exit code):

  $ shelley check valve.py bad_sector.py broken.py > seq.out 2>&1; echo "exit $?"
  exit 2
  $ shelley check -j 4 valve.py bad_sector.py broken.py > par.out 2>&1; echo "exit $?"
  exit 2
  $ cmp seq.out par.out && echo identical
  identical

Wall-clock deadlines: a unit that hangs (induced via the SHELLEY_FAULT test
hook, which is inert unless armed with --fault-injection) is killed at the
deadline, retried once under a reduced fuel budget, and reported as a
structured diagnostic. Every other file still completes, and the run exits
3 — the resource-limit code covers wall-clock timeouts too, since both mean
"a budget ran out before a verdict":

  $ SHELLEY_FAULT=hang:valve shelley check --fault-injection -j 2 --timeout 1 valve.py bad_sector.py
  == valve.py ==
  Error in verification: WALL-CLOCK DEADLINE EXCEEDED
  Unit: valve.py
  Deadline: 1s per attempt (2 attempts; the worker was killed; other units unaffected)
  
  == bad_sector.py ==
  Error in specification: INVALID SUBSYSTEM USAGE
  Counter example: open_a, a.test, a.open
  Subsystems errors:
    * Valve 'a': test, >open< (not final)
  
  Error in specification: FAIL TO MEET REQUIREMENT
  Formula: (!a.open) W b.open
  Counter example: a.test, a.open
  
  [3]

A worker killed outright (here by SIGKILL, as the kernel's OOM killer would)
is isolated and classified the same way, with the healthy file unaffected:

  $ SHELLEY_FAULT=crash:bad_sector shelley check --fault-injection -j 2 --timeout 5 valve.py bad_sector.py
  == bad_sector.py ==
  Error in verification: WORKER CRASHED
  Unit: bad_sector.py
  Failure: killed by SIGKILL (2 attempts; other units unaffected)
  
  [3]

Without the explicit --fault-injection opt-in the hook is inert: a stale
SHELLEY_FAULT variable inherited from some environment cannot sabotage a
real verification run:

  $ SHELLEY_FAULT=hang:valve shelley check -j 2 --timeout 5 valve.py; echo "exit $?"
  OK: specification verified
  exit 0

The smv subcommand emits the NuSMV translation (like nusmv) and with --run
executes the external checker. When the binary is absent the driver degrades
gracefully: a clear diagnostic and the classified exit 3, never a crash:

  $ shelley smv valve.py --run --binary ./no-such-nusmv
  == Valve ==
  NuSMV: NuSMV binary not found (searched: ./no-such-nusmv)
  [3]

A stub binary exercises the full spawn/classify path hermetically. A stub
that reports every spec false agrees with the native checker on bad_sector
(whose claim really fails), so the cross-check accepts and the exit code is
the counterexample's:

  $ cat > fake_false <<'EOF'
  > #!/bin/sh
  > echo '-- specification bogus  is false'
  > EOF
  $ chmod +x fake_false
  $ shelley smv bad_sector.py -c BadSector --run --cross-check --binary ./fake_false
  == BadSector ==
  NuSMV: counterexample (1 spec false)
  native claims: failed
  cross-check: agreement
  [1]

A stub that claims everything verified diverges from the native verdict on
the same class, and the divergence is reported with exit 1:

  $ cat > fake_true <<'EOF'
  > #!/bin/sh
  > echo '-- specification bogus  is true'
  > EOF
  $ chmod +x fake_true
  $ shelley smv bad_sector.py -c BadSector --run --cross-check --binary ./fake_true
  == BadSector ==
  NuSMV: verified (1 spec true)
  native claims: failed
  cross-check: DIVERGENCE (native=failed, NuSMV=verified)
  [1]

Observability: --stats prints a per-phase timing table and counter summary
to stderr (stdout keeps only the reports). Under SHELLEY_OBS_FAKE_CLOCK the
clock is a deterministic tick counter that restarts per verification unit,
so the table is byte-identical between a sequential and a parallel run:

  $ SHELLEY_OBS_FAKE_CLOCK=1 shelley check --stats -j 1 valve.py bad_sector.py >out1.txt 2>stats1.txt; echo "exit $?"
  exit 1
  $ SHELLEY_OBS_FAKE_CLOCK=1 shelley check --stats -j 4 valve.py bad_sector.py >out4.txt 2>stats4.txt; echo "exit $?"
  exit 1
  $ cmp stats1.txt stats4.txt && cmp out1.txt out4.txt && echo "identical"
  identical
  $ cat stats1.txt
  == shelley run stats (2 units, clock: fake) ==
  phase                                  count     total_us      mean_us
  parse                                      2         2000         1000
  extract                                    3         3000         1000
  refine                                     3         3000         1000
  invocation                                 3         3000         1000
  claims                                     3        11000         3666
  usage                                      3        11000         3666
  validate                                   3         3000         1000
  usage.expand                               3         3000         1000
  progression                                1         1000         1000
  language.product                           3         3000         1000
  ltl.check                                  1         5000         5000
  unit                                       2        58000        29000
  counters
    fuel.claims.behavior regex size                        17
    fuel.claims.language-product configurations             7
    fuel.claims.progression obligations                     3
    fuel.usage.language-product configurations             29
    language.configs                                       36
    models.extracted                                        3
    parse.classes                                           3
    parse.diagnostics                                       0
    progression.obligations                                 3
    usage.nfa_states                                       66
    usage.regex_size                                       84

The metrics and trace sinks write JSON files; the report stream on stdout
stays byte-identical to a run without any observability:

  $ shelley check --metrics-out m.json --trace-out t.json -j 4 valve.py bad_sector.py > obs.out 2>&1; echo "exit $?"
  exit 1
  $ shelley check -j 4 valve.py bad_sector.py > plain.out 2>&1; echo "exit $?"
  exit 1
  $ cmp obs.out plain.out && echo "stdout identical"
  stdout identical

The metrics JSON carries its schema tag and the three top-level sections:

  $ grep -o '"schema": "shelley.metrics/1"' m.json
  "schema": "shelley.metrics/1"
  $ grep -o '"units"\|"phases"\|"counters"' m.json | sort -u
  "counters"
  "phases"
  "units"

The Chrome trace names one timeline lane per worker process (two files on
a -j 4 pool occupy lanes 0 and 1):

  $ grep -o '"name": "worker [0-9]*"' t.json | sort -u
  "name": "worker 0"
  "name": "worker 1"
