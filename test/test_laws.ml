(* Algebraic laws connecting the substrate layers: Kleene-algebra identities
   on regexes, the boolean algebra of complete DFAs, NFA combinator/regex
   agreement, canonicity of minimization, and LTLf operator dualities. These
   are the invariants the verifier silently relies on; each is checked with
   QCheck over the shared generators. *)

open Testutil

let max_len = 4

let lang r = Enumerate.words_upto ~max_len r
let same_lang r1 r2 = Equiv.equivalent r1 r2

(* Tuples of the shared shrinking arbitrary: a failing algebraic identity
   comes back with each component minimized independently. *)
let pair_arb = QCheck.pair regex_arb regex_arb
let triple_arb = QCheck.triple regex_arb regex_arb regex_arb

(* --- Kleene algebra -------------------------------------------------------------- *)

let prop_alt_assoc_comm =
  qtest_arb "+ is associative and commutative" ~count:150 triple_arb
    (fun (a, b, c) ->
      same_lang (Regex.alt a (Regex.alt b c)) (Regex.alt (Regex.alt a b) c)
      && same_lang (Regex.alt a b) (Regex.alt b a))

let prop_seq_assoc =
  qtest_arb "· is associative" ~count:150 triple_arb (fun (a, b, c) ->
      same_lang (Regex.seq a (Regex.seq b c)) (Regex.seq (Regex.seq a b) c))

let prop_distribution =
  qtest_arb "· distributes over + on both sides" ~count:150 triple_arb
    (fun (a, b, c) ->
      same_lang (Regex.seq a (Regex.alt b c)) (Regex.alt (Regex.seq a b) (Regex.seq a c))
      && same_lang (Regex.seq (Regex.alt a b) c) (Regex.alt (Regex.seq a c) (Regex.seq b c)))

let prop_star_laws =
  qtest_arb "star unrolling and denesting" ~count:150 regex_arb
    (fun r ->
      let s = Regex.star r in
      same_lang s (Regex.alt Regex.eps (Regex.seq r s))
      && same_lang s (Regex.seq s s)
      && same_lang (Regex.star s) s)

let prop_star_of_sum =
  qtest_arb "(a+b)* = (a* b*)*" ~count:100 pair_arb (fun (a, b) ->
      same_lang
        (Regex.star (Regex.alt a b))
        (Regex.star (Regex.seq (Regex.star a) (Regex.star b))))

(* --- NFA combinators agree with regex operations ----------------------------------- *)

let nfa_lang nfa = Nfa.words_upto ~max_len nfa

let prop_nfa_union =
  qtest_arb "Nfa.union realizes +" ~count:100 pair_arb (fun (a, b) ->
      Trace.Set.equal
        (nfa_lang (Nfa.union (Thompson.of_regex a) (Thompson.of_regex b)))
        (lang (Regex.alt a b)))

let prop_nfa_concat =
  qtest_arb "Nfa.concat realizes ·" ~count:100 pair_arb (fun (a, b) ->
      Trace.Set.equal
        (nfa_lang (Nfa.concat (Thompson.of_regex a) (Thompson.of_regex b)))
        (lang (Regex.seq a b)))

let prop_nfa_star =
  qtest_arb "Nfa.star realizes *" ~count:100 regex_arb (fun r ->
      Trace.Set.equal (nfa_lang (Nfa.star (Thompson.of_regex r))) (lang (Regex.star r)))

let prop_trim_preserves =
  qtest_arb "trim preserves the language" ~count:100 regex_arb
    (fun r ->
      let nfa = Thompson.of_regex r in
      Trace.Set.equal (nfa_lang (Nfa.trim nfa)) (nfa_lang nfa))

let prop_reverse_involution =
  qtest_arb "reverse is an involution on the language" ~count:100 regex_arb (fun r ->
      let nfa = Thompson.of_regex r in
      Trace.Set.equal (nfa_lang (Nfa.reverse (Nfa.reverse nfa))) (nfa_lang nfa))

let prop_reverse_reverses_words =
  qtest_arb "reverse reverses every word" ~count:100 regex_arb
    (fun r ->
      let nfa = Thompson.of_regex r in
      let reversed = nfa_lang (Nfa.reverse nfa) in
      Trace.Set.for_all (fun w -> Trace.Set.mem (List.rev w) reversed) (nfa_lang nfa))

(* --- DFA boolean algebra -------------------------------------------------------------- *)

let full_alphabet = Prog_gen.default_alphabet

let dfa_of r = Determinize.determinize ~alphabet:full_alphabet (Thompson.of_regex r)

let dfa_lang dfa = Dfa.words_upto ~max_len dfa

let all_words =
  (* Σ^{≤max_len} for checking complements. *)
  lang (Regex.star (Regex.alt_list (List.map Regex.sym full_alphabet)))

let prop_complement =
  qtest_arb "complement flips membership" ~count:100 regex_arb
    (fun r ->
      let d = dfa_of r in
      let c = Dfa.complement d in
      Trace.Set.for_all (fun w -> Dfa.accepts d w <> Dfa.accepts c w) all_words)

let prop_double_complement =
  qtest_arb "double complement is identity" ~count:100 regex_arb
    (fun r ->
      let d = dfa_of r in
      Dfa.equivalent d (Dfa.complement (Dfa.complement d)))

let prop_de_morgan =
  qtest_arb "De Morgan: ¬(A ∪ B) = ¬A ∩ ¬B" ~count:80 pair_arb (fun (a, b) ->
      let da = dfa_of a and db = dfa_of b in
      Dfa.equivalent
        (Dfa.complement (Dfa.union da db))
        (Dfa.intersect (Dfa.complement da) (Dfa.complement db)))

let prop_difference =
  qtest_arb "A \\ B = A ∩ ¬B" ~count:80 pair_arb (fun (a, b) ->
      let da = dfa_of a and db = dfa_of b in
      Dfa.equivalent (Dfa.difference da db) (Dfa.intersect da (Dfa.complement db)))

let prop_intersection_language =
  qtest_arb "DFA and NFA intersection agree" ~count:80 pair_arb (fun (a, b) ->
      let via_dfa = dfa_lang (Dfa.intersect (dfa_of a) (dfa_of b)) in
      let via_nfa = nfa_lang (Language.intersect (Thompson.of_regex a) (Thompson.of_regex b)) in
      Trace.Set.equal via_dfa via_nfa)

(* --- Minimization canonicity ------------------------------------------------------------ *)

let prop_minimal_dfa_canonical =
  qtest_arb "equivalent regexes minimize to isomorphic DFAs" ~count:80 regex_arb (fun r ->
      (* r and a syntactically different equivalent form. *)
      let r' = Regex.alt r (Regex.seq r Regex.empty) |> Regex.alt r in
      let variant = Regex.alt (Regex.seq Regex.eps r) r' in
      let m1 = Minimize.minimize (dfa_of r) in
      let m2 = Minimize.minimize (dfa_of variant) in
      Minimize.isomorphic m1 m2)

let prop_minimize_smallest =
  qtest_arb "no equivalent DFA is smaller than the minimized one" ~count:60 regex_arb (fun r ->
      (* Weak but useful probe: minimizing twice, or via the other algorithm,
         never shrinks further. *)
      let m = Minimize.minimize_hopcroft (dfa_of r) in
      Dfa.num_states (Minimize.minimize_moore m) = Dfa.num_states m)

(* --- Sampling stays inside the language -------------------------------------------------- *)

let prop_sampling_sound =
  qtest_arb "samples are members" ~count:60 regex_arb (fun r ->
      let nfa = Thompson.of_regex r in
      let state = Random.State.make [| Regex.size r |] in
      match Sample.from_nfa ~state ~target_len:5 nfa with
      | None -> Deriv.is_empty_language r
      | Some w -> Deriv.matches r w)

(* --- LTLf dualities ------------------------------------------------------------------------ *)

let ltl_alphabet = Prog_gen.default_alphabet

let ltl_gen : Ltlf.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let leaf = oneof [ map Ltlf.atom (oneofl ltl_alphabet); return Ltlf.tt; return Ltlf.ff ] in
  let rec tree n =
    if n <= 1 then leaf
    else
      oneof
        [
          leaf;
          map Ltlf.neg (tree (n - 1));
          map Ltlf.next (tree (n - 1));
          map Ltlf.globally (tree (n - 1));
          map Ltlf.finally (tree (n - 1));
          map2 Ltlf.conj (tree (n / 2)) (tree (n / 2));
          map2 Ltlf.until (tree (n / 2)) (tree (n / 2));
          map2 Ltlf.wuntil (tree (n / 2)) (tree (n / 2));
        ]
  in
  int_range 1 6 >>= tree

let word_gen = QCheck2.Gen.(list_size (int_range 0 5) (oneofl ltl_alphabet))

let fw_print (f, w) = Ltlf.to_string f ^ " on " ^ Trace.to_string w

let prop_g_f_duality =
  qtest "¬G φ = F ¬φ" ~count:200
    QCheck2.Gen.(pair ltl_gen word_gen)
    ~print:fw_print
    (fun (f, w) ->
      Ltlf.holds (Ltlf.neg (Ltlf.globally f)) w
      = Ltlf.holds (Ltlf.finally (Ltlf.neg f)) w)

let prop_x_wx_duality =
  qtest "¬X φ = WX ¬φ" ~count:200
    QCheck2.Gen.(pair ltl_gen word_gen)
    ~print:fw_print
    (fun (f, w) ->
      Ltlf.holds (Ltlf.neg (Ltlf.next f)) w = Ltlf.holds (Ltlf.wnext (Ltlf.neg f)) w)

let prop_weak_until_decomposition =
  qtest "φ W ψ = (φ U ψ) ∨ G φ" ~count:200
    QCheck2.Gen.(triple ltl_gen ltl_gen word_gen)
    ~print:(fun (f, g, w) ->
      Printf.sprintf "%s W %s on %s" (Ltlf.to_string f) (Ltlf.to_string g) (Trace.to_string w))
    (fun (f, g, w) ->
      Ltlf.holds (Ltlf.wuntil f g) w
      = Ltlf.holds (Ltlf.disj (Ltlf.until f g) (Ltlf.globally f)) w)

let prop_until_unrolling =
  qtest "φ U ψ = ψ ∨ (φ ∧ X (φ U ψ))" ~count:200
    QCheck2.Gen.(triple ltl_gen ltl_gen word_gen)
    ~print:(fun (f, g, w) ->
      Printf.sprintf "%s U %s on %s" (Ltlf.to_string f) (Ltlf.to_string g) (Trace.to_string w))
    (fun (f, g, w) ->
      (* On nonempty traces only: the empty trace has no current position. *)
      w = []
      || Ltlf.holds (Ltlf.until f g) w
         = Ltlf.holds (Ltlf.disj g (Ltlf.conj f (Ltlf.next (Ltlf.until f g)))) w)

let prop_globally_unrolling =
  qtest "G φ = φ ∧ WX (G φ) on nonempty traces" ~count:200
    QCheck2.Gen.(pair ltl_gen word_gen)
    ~print:fw_print
    (fun (f, w) ->
      w = []
      || Ltlf.holds (Ltlf.globally f) w
         = Ltlf.holds (Ltlf.conj f (Ltlf.wnext (Ltlf.globally f))) w)

let () =
  Alcotest.run "laws"
    [
      ( "kleene",
        [
          prop_alt_assoc_comm;
          prop_seq_assoc;
          prop_distribution;
          prop_star_laws;
          prop_star_of_sum;
        ] );
      ( "nfa",
        [
          prop_nfa_union;
          prop_nfa_concat;
          prop_nfa_star;
          prop_trim_preserves;
          prop_reverse_involution;
          prop_reverse_reverses_words;
        ] );
      ( "dfa",
        [
          prop_complement;
          prop_double_complement;
          prop_de_morgan;
          prop_difference;
          prop_intersection_language;
        ] );
      ( "minimize", [ prop_minimal_dfa_canonical; prop_minimize_smallest ] );
      ( "sample", [ prop_sampling_sound ] );
      ( "ltl",
        [
          prop_g_f_duality;
          prop_x_wx_duality;
          prop_weak_until_decomposition;
          prop_until_unrolling;
          prop_globally_unrolling;
        ] );
    ]
